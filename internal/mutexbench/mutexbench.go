// Package mutexbench implements the paper's MutexBench microbenchmark
// (§7.1): T concurrent workers each loop { acquire L; critical
// section; release L; non-critical section }, reporting aggregate
// completed iterations. The critical section advances a shared MT19937
// generator one step; the moderate-contention variant's non-critical
// section draws a uniform value in [0, 250) from a private MT19937 and
// advances that private generator that many steps, with the generator
// state retained across operations so the work cannot be optimized
// away.
//
// This package owns only the workload; the run loop — phases, repeated
// runs, median-of-N selection, per-worker padded counters — is the
// shared engine in internal/harness, and locks are selected from the
// repository-wide catalog (internal/registry).
//
// Caveat recorded in EXPERIMENTS.md: under a single-processor Go
// scheduler, contended results measure scheduling efficiency as much
// as lock handoff; the coherence simulator (internal/simlocks) owns
// the contended-shape claims, while this harness provides real-
// execution evidence and uncontended latency.
package mutexbench

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/pad"
	"repro/internal/registry"
	"repro/internal/rwlock"
	"repro/internal/xrand"
)

// Unit is the primary metric unit this workload reports.
const Unit = "Mops/s"

// Config shapes one benchmark run.
type Config struct {
	Threads int
	// Duration bounds the measurement interval; if zero, Iterations
	// per thread bounds the run instead (deterministic, test-friendly).
	Duration   time.Duration
	Iterations int
	// Warmup runs the workload unmeasured before each measurement
	// interval (duration mode only).
	Warmup time.Duration
	// CSSteps is how many steps the critical section advances the
	// shared PRNG (the paper uses 1).
	CSSteps int
	// NCSMaxSteps is the exclusive bound on the private-PRNG advance
	// in the non-critical section (0 = empty NCS = maximal
	// contention; the paper's moderate configuration uses 250).
	NCSMaxSteps int
	// ReadFrac, when in (0,1], switches the kernel to the read-mostly
	// workload: each iteration is a read section with this probability
	// and a write (exclusive critical section over a guarded pair)
	// otherwise. Read sections go through the lock's strongest read
	// surface — RLock when it actually shares, OptimisticRead when the
	// lock is optimistic, and a plain exclusive section for everything
	// else, which is exactly the baseline the read-path combinators are
	// measured against.
	ReadFrac float64
	// Runs is the number of independent runs medianed (paper: 7).
	Runs int
	// Seed differentiates private PRNG streams.
	Seed uint32
}

// Result reports one configuration's outcome.
type Result struct {
	Name      string
	Threads   int
	Mops      float64 // aggregate million iterations/sec (median)
	AllRuns   []float64
	PerThread []uint64 // per-thread ops of the median-defining run
	Jain      float64
	Disparity float64
	Elapsed   time.Duration // wall time of the median-defining run
}

// engineConfig maps cfg onto the shared engine.
func engineConfig(cfg Config) harness.Config {
	return harness.Config{
		Threads:    cfg.Threads,
		Duration:   cfg.Duration,
		Iterations: cfg.Iterations,
		Warmup:     cfg.Warmup,
		Runs:       cfg.Runs,
		Seed:       uint64(cfg.Seed),
	}
}

// guardedPair is the read-mostly workload's shared state: two counters
// a writer advances in lockstep under the exclusive lock, placed on
// separate cache lines so reader traffic on one word does not
// false-share with the other. The words are atomic so optimistic
// (seqlock) read sections stay race-detector-clean.
type guardedPair struct {
	x atomic.Uint64
	_ [pad.CacheLineSize - 8]byte
	y atomic.Uint64
}

// readMostlyWorkload is the ReadFrac > 0 kernel: mostly read sections
// over the guarded pair, occasionally an exclusive write advancing it.
func readMostlyWorkload(lf registry.Entry, cfg Config) harness.Workload {
	var (
		l    sync.Locker
		p    *guardedPair
		seed uint32
	)
	readPct := int(cfg.ReadFrac*100 + 0.5)
	if readPct > 100 {
		readPct = 100
	}
	return &harness.WorkloadFunc{
		SetupFn: func(run harness.RunInfo) {
			seed = uint32(run.Seed)
			l = lf.New()
			p = &guardedPair{}
		},
		WorkerFn: func(id int) func() {
			rng := xrand.NewXorShift64(uint64(id)*0x9e3779b97f4a7c15 + uint64(seed) + 1)
			private := xrand.NewMT19937Seeded(uint32(id)*2654435761 + seed + 1)
			lk, gp := l, p
			ncs := cfg.NCSMaxSteps
			// Resolve the strongest real read surface once per worker:
			// a structural interface alone is not enough, decorators
			// expose fallback read methods (see rwlock.IsReadShared).
			var rw rwlock.RWLocker
			var opt rwlock.OptimisticLocker
			if r, ok := lk.(rwlock.RWLocker); ok && rwlock.IsReadShared(lk) {
				rw = r
			} else if o, ok := lk.(rwlock.OptimisticLocker); ok && rwlock.IsOptimistic(lk) {
				opt = o
			}
			var sink uint64
			readBody := func() { sink += gp.x.Load() + gp.y.Load() }
			return func() {
				if rng.Intn(100) < readPct {
					switch {
					case rw != nil:
						rw.RLock()
						readBody()
						rw.RUnlock()
					case opt != nil:
						opt.OptimisticRead(readBody)
					default:
						lk.Lock()
						readBody()
						lk.Unlock()
					}
				} else {
					lk.Lock()
					gp.x.Add(1)
					gp.y.Add(1)
					lk.Unlock()
				}
				if ncs > 0 {
					private.Skip(int(private.Uint32n(uint32(ncs))))
				}
			}
		},
	}
}

// Workload returns the §7.1 MutexBench kernel over one catalog entry
// as a harness workload: each run instantiates a fresh lock and a
// fresh shared generator; each worker captures a private generator.
// With cfg.ReadFrac > 0 the kernel is the read-mostly variant instead.
func Workload(lf registry.Entry, cfg Config) harness.Workload {
	if cfg.ReadFrac > 0 {
		return readMostlyWorkload(lf, cfg)
	}
	var (
		l      sync.Locker
		shared *xrand.MT19937
		seed   uint32
	)
	return &harness.WorkloadFunc{
		SetupFn: func(run harness.RunInfo) {
			seed = uint32(run.Seed)
			l = lf.New()
			shared = xrand.NewMT19937Seeded(12345 + seed)
		},
		WorkerFn: func(id int) func() {
			private := xrand.NewMT19937Seeded(uint32(id)*2654435761 + seed + 1)
			lk, sh := l, shared
			cs, ncs := cfg.CSSteps, cfg.NCSMaxSteps
			return func() {
				lk.Lock()
				for s := 0; s < cs; s++ {
					sh.Uint32()
				}
				lk.Unlock()
				if ncs > 0 {
					n := int(private.Uint32n(uint32(ncs)))
					private.Skip(n)
				}
			}
		},
	}
}

// Measure runs cfg against one catalog entry on the shared engine and
// returns the raw measurement (all runs plus the median-defining run
// index).
func Measure(lf registry.Entry, cfg Config) harness.Measurement {
	return harness.Measure(Workload(lf, cfg), engineConfig(cfg))
}

// Run executes cfg against one catalog entry and returns the median
// result. The per-thread vector (and the fairness statistics derived
// from it) comes from the median-defining run — the engine's
// invariant, pinned by tests there.
func Run(lf registry.Entry, cfg Config) Result {
	m := Measure(lf, cfg)
	sel := m.MedianOutcome()
	return Result{
		Name:      lf.Name,
		Threads:   cfg.Threads,
		Mops:      m.Median,
		AllRuns:   m.Scores,
		PerThread: sel.PerWorker,
		Jain:      m.Jain(),
		Disparity: m.Disparity(),
		Elapsed:   sel.Elapsed,
	}
}

// Sweep runs cfg across the given thread counts for every entry.
func Sweep(lfs []registry.Entry, threadCounts []int, cfg Config) []Result {
	var out []Result
	for _, lf := range lfs {
		for _, tc := range threadCounts {
			c := cfg
			c.Threads = tc
			out = append(out, Run(lf, c))
		}
	}
	return out
}

// WorkloadName renders cfg's workload cell label: "max" or "moderate"
// by NCS for the exclusive kernel, "readmostly/rNN" (NN = read
// percentage) for the read-mostly one.
func WorkloadName(cfg Config) string {
	if cfg.ReadFrac > 0 {
		pct := int(cfg.ReadFrac*100 + 0.5)
		if pct > 100 {
			pct = 100
		}
		return fmt.Sprintf("readmostly/r%d", pct)
	}
	if cfg.NCSMaxSteps > 0 {
		return "moderate"
	}
	return "max"
}

// SweepResult runs the sweep and renders it directly as the versioned
// harness result schema (workload per WorkloadName).
func SweepResult(lfs []registry.Entry, threadCounts []int, cfg Config) *harness.Result {
	workload := WorkloadName(cfg)
	res := harness.NewResult("mutexbench", "A", uint64(cfg.Seed))
	res.SetConfig("duration", cfg.Duration.String())
	res.SetConfig("runs", strconv.Itoa(cfg.Runs))
	res.SetConfig("cs_steps", strconv.Itoa(cfg.CSSteps))
	res.SetConfig("ncs_max_steps", strconv.Itoa(cfg.NCSMaxSteps))
	if cfg.ReadFrac > 0 {
		res.SetConfig("read_frac", strconv.FormatFloat(cfg.ReadFrac, 'g', -1, 64))
	}
	for _, lf := range lfs {
		for _, tc := range threadCounts {
			c := cfg
			c.Threads = tc
			m := Measure(lf, c)
			res.Add(harness.CellFromMeasurement(lf.Name, workload, Unit, m))
		}
	}
	return res
}
