// Package mutexbench implements the paper's MutexBench microbenchmark
// (§7.1): T concurrent workers each loop { acquire L; critical
// section; release L; non-critical section }, reporting aggregate
// completed iterations. The critical section advances a shared MT19937
// generator one step; the moderate-contention variant's non-critical
// section draws a uniform value in [0, 250) from a private MT19937 and
// advances that private generator that many steps, with the final
// generator outputs consumed so the work cannot be optimized away.
//
// The harness runs each configuration several times and reports the
// median, as the paper does (median of 7).
//
// Locks are selected from the repository-wide catalog
// (internal/registry); this package owns only the workload.
//
// Caveat recorded in EXPERIMENTS.md: under a single-processor Go
// scheduler, contended results measure scheduling efficiency as much
// as lock handoff; the coherence simulator (internal/simlocks) owns
// the contended-shape claims, while this harness provides real-
// execution evidence and uncontended latency.
package mutexbench

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/registry"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Config shapes one benchmark run.
type Config struct {
	Threads int
	// Duration bounds the measurement interval; if zero, Iterations
	// per thread bounds the run instead (deterministic, test-friendly).
	Duration   time.Duration
	Iterations int
	// CSSteps is how many steps the critical section advances the
	// shared PRNG (the paper uses 1).
	CSSteps int
	// NCSMaxSteps is the exclusive bound on the private-PRNG advance
	// in the non-critical section (0 = empty NCS = maximal
	// contention; the paper's moderate configuration uses 250).
	NCSMaxSteps int
	// Runs is the number of independent runs medianed (paper: 7).
	Runs int
	// Seed differentiates private PRNG streams.
	Seed uint32
}

// Result reports one configuration's outcome.
type Result struct {
	Name      string
	Threads   int
	Mops      float64 // aggregate million iterations/sec (median)
	AllRuns   []float64
	PerThread []uint64 // per-thread ops of the median-defining run
	Jain      float64
	Disparity float64
	Elapsed   time.Duration // wall time of the median-defining run
}

// oneRun is the raw outcome of a single run.
type oneRun struct {
	mops float64
	per  []uint64
	el   time.Duration
}

// Run executes cfg against one catalog entry and returns the median
// result. The per-thread vector (and the fairness statistics derived
// from it) comes from the median-defining run: the run whose score is
// the median, or — for even run counts, where the median averages the
// two middle scores — the run whose score is nearest it.
func Run(lf registry.Entry, cfg Config) Result {
	runs := cfg.Runs
	if runs <= 0 {
		runs = 1
	}
	scores := make([]float64, 0, runs)
	outs := make([]oneRun, 0, runs)
	for r := 0; r < runs; r++ {
		mops, per, el := runOnce(lf, cfg, uint32(r)+cfg.Seed)
		scores = append(scores, mops)
		outs = append(outs, oneRun{mops: mops, per: per, el: el})
	}
	med := stats.Median(scores)
	sel := outs[medianIndex(scores, med)]
	perF := make([]float64, len(sel.per))
	counts := make([]int64, len(sel.per))
	for i, v := range sel.per {
		perF[i] = float64(v)
		counts[i] = int64(v)
	}
	return Result{
		Name:      lf.Name,
		Threads:   cfg.Threads,
		Mops:      med,
		AllRuns:   scores,
		PerThread: sel.per,
		Jain:      stats.JainIndex(perF),
		Disparity: stats.DisparityRatio(counts),
		Elapsed:   sel.el,
	}
}

// medianIndex returns the index of the run whose score is closest to
// med (exactly the median run for odd run counts; ties keep the
// earliest run).
func medianIndex(scores []float64, med float64) int {
	best := 0
	for i, s := range scores {
		if math.Abs(s-med) < math.Abs(scores[best]-med) {
			best = i
		}
	}
	return best
}

func runOnce(lf registry.Entry, cfg Config, seed uint32) (float64, []uint64, time.Duration) {
	l := lf.New()
	shared := xrand.NewMT19937Seeded(12345 + seed)
	perThread := make([]uint64, cfg.Threads)
	var stop atomic.Bool
	var sink atomic.Uint32

	var begin, done sync.WaitGroup
	begin.Add(1)
	start := time.Now()
	for t := 0; t < cfg.Threads; t++ {
		t := t
		done.Add(1)
		go func() {
			defer done.Done()
			private := xrand.NewMT19937Seeded(uint32(t)*2654435761 + seed + 1)
			var ops uint64
			begin.Wait()
			for {
				if cfg.Iterations > 0 && ops >= uint64(cfg.Iterations) {
					break
				}
				if cfg.Iterations == 0 && stop.Load() {
					break
				}
				l.Lock()
				for s := 0; s < cfg.CSSteps; s++ {
					shared.Uint32()
				}
				l.Unlock()
				if cfg.NCSMaxSteps > 0 {
					n := int(private.Uint32n(uint32(cfg.NCSMaxSteps)))
					private.Skip(n)
				}
				ops++
			}
			// Consume the private generator so the NCS work cannot
			// be elided.
			sink.Add(private.Uint32())
			perThread[t] = ops
		}()
	}
	begin.Done()
	if cfg.Iterations == 0 {
		d := cfg.Duration
		if d <= 0 {
			d = time.Second
		}
		time.Sleep(d)
		stop.Store(true)
	}
	done.Wait()
	el := time.Since(start)
	_ = sink.Load()

	total := uint64(0)
	for _, v := range perThread {
		total += v
	}
	mops := float64(total) / el.Seconds() / 1e6
	return mops, perThread, el
}

// Sweep runs cfg across the given thread counts for every entry.
func Sweep(lfs []registry.Entry, threadCounts []int, cfg Config) []Result {
	var out []Result
	for _, lf := range lfs {
		for _, tc := range threadCounts {
			c := cfg
			c.Threads = tc
			out = append(out, Run(lf, c))
		}
	}
	return out
}
