// Package mutexbench implements the paper's MutexBench microbenchmark
// (§7.1): T concurrent workers each loop { acquire L; critical
// section; release L; non-critical section }, reporting aggregate
// completed iterations. The critical section advances a shared MT19937
// generator one step; the moderate-contention variant's non-critical
// section draws a uniform value in [0, 250) from a private MT19937 and
// advances that private generator that many steps, with the final
// generator outputs consumed so the work cannot be optimized away.
//
// The harness runs each configuration several times and reports the
// median, as the paper does (median of 7).
//
// Caveat recorded in EXPERIMENTS.md: under a single-processor Go
// scheduler, contended results measure scheduling efficiency as much
// as lock handoff; the coherence simulator (internal/simlocks) owns
// the contended-shape claims, while this harness provides real-
// execution evidence and uncontended latency.
package mutexbench

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// LockFactory names a lock implementation.
type LockFactory struct {
	Name string
	New  func() sync.Locker
}

// PaperSet returns the six locks evaluated in Figure 1, in the
// paper's legend order.
func PaperSet() []LockFactory {
	return []LockFactory{
		{"TKT", func() sync.Locker { return new(locks.TicketLock) }},
		{"MCS", func() sync.Locker { return new(locks.MCSLock) }},
		{"CLH", func() sync.Locker { return new(locks.CLHLock) }},
		{"TWA", func() sync.Locker { return new(locks.TWALock) }},
		{"HemLock", func() sync.Locker { return new(locks.HemLock) }},
		{"Recipro", func() sync.Locker { return new(core.Lock) }},
	}
}

// AllSet returns every lock in the repository, including the
// Reciprocating variants and extra baselines.
func AllSet() []LockFactory {
	extra := []LockFactory{
		{"TAS", func() sync.Locker { return new(locks.TASLock) }},
		{"TTAS", func() sync.Locker { return new(locks.TTASLock) }},
		{"Chen", func() sync.Locker { return new(locks.ChenLock) }},
		{"Retrograde", func() sync.Locker { return new(locks.RetrogradeLock) }},
		{"RetroRand", func() sync.Locker { return new(locks.RetrogradeRandLock) }},
		{"Recipro-L2", func() sync.Locker { return new(core.SimplifiedLock) }},
		{"Recipro-L3", func() sync.Locker { return new(core.RelayLock) }},
		{"Recipro-L4", func() sync.Locker { return new(core.FetchAddLock) }},
		{"Recipro-L5", func() sync.Locker { return new(core.SimplifiedEOSLock) }},
		{"Recipro-L6", func() sync.Locker { return new(core.CombinedLock) }},
		{"Gated", func() sync.Locker { return new(core.GatedLock) }},
		{"TwoLane", func() sync.Locker { return new(core.TwoLaneLock) }},
		{"Fair", func() sync.Locker { return new(core.FairLock) }},
		{"Recipro-CTR", func() sync.Locker { return new(core.CTRLock) }},
		{"Recipro-L2park", func() sync.Locker { return &core.SimplifiedLock{Park: true} }},
		// Real-world defaults for context: Go's runtime mutex and the
		// classic three-state futex mutex (the pthread_mutex shape §5
		// contrasts with).
		{"GoMutex", func() sync.Locker { return new(sync.Mutex) }},
		{"FutexMutex", func() sync.Locker { return new(locks.FutexMutex) }},
	}
	return append(PaperSet(), extra...)
}

// ByName finds a factory in AllSet.
func ByName(name string) (LockFactory, bool) {
	for _, lf := range AllSet() {
		if lf.Name == name {
			return lf, true
		}
	}
	return LockFactory{}, false
}

// Config shapes one benchmark run.
type Config struct {
	Threads int
	// Duration bounds the measurement interval; if zero, Iterations
	// per thread bounds the run instead (deterministic, test-friendly).
	Duration   time.Duration
	Iterations int
	// CSSteps is how many steps the critical section advances the
	// shared PRNG (the paper uses 1).
	CSSteps int
	// NCSMaxSteps is the exclusive bound on the private-PRNG advance
	// in the non-critical section (0 = empty NCS = maximal
	// contention; the paper's moderate configuration uses 250).
	NCSMaxSteps int
	// Runs is the number of independent runs medianed (paper: 7).
	Runs int
	// Seed differentiates private PRNG streams.
	Seed uint32
}

// Result reports one configuration's outcome.
type Result struct {
	Name      string
	Threads   int
	Mops      float64 // aggregate million iterations/sec (median)
	AllRuns   []float64
	PerThread []uint64 // per-thread ops of the median-defining run
	Jain      float64
	Disparity float64
	Elapsed   time.Duration
}

// Run executes cfg against one lock and returns the median result.
func Run(lf LockFactory, cfg Config) Result {
	runs := cfg.Runs
	if runs <= 0 {
		runs = 1
	}
	scores := make([]float64, 0, runs)
	var medianPerThread []uint64
	var elapsed time.Duration
	for r := 0; r < runs; r++ {
		mops, per, el := runOnce(lf, cfg, uint32(r)+cfg.Seed)
		scores = append(scores, mops)
		medianPerThread = per
		elapsed = el
	}
	med := stats.Median(scores)
	perF := make([]float64, len(medianPerThread))
	counts := make([]int64, len(medianPerThread))
	for i, v := range medianPerThread {
		perF[i] = float64(v)
		counts[i] = int64(v)
	}
	return Result{
		Name:      lf.Name,
		Threads:   cfg.Threads,
		Mops:      med,
		AllRuns:   scores,
		PerThread: medianPerThread,
		Jain:      stats.JainIndex(perF),
		Disparity: stats.DisparityRatio(counts),
		Elapsed:   elapsed,
	}
}

func runOnce(lf LockFactory, cfg Config, seed uint32) (float64, []uint64, time.Duration) {
	l := lf.New()
	shared := xrand.NewMT19937Seeded(12345 + seed)
	perThread := make([]uint64, cfg.Threads)
	var stop atomic.Bool
	var sink atomic.Uint32

	var begin, done sync.WaitGroup
	begin.Add(1)
	start := time.Now()
	for t := 0; t < cfg.Threads; t++ {
		t := t
		done.Add(1)
		go func() {
			defer done.Done()
			private := xrand.NewMT19937Seeded(uint32(t)*2654435761 + seed + 1)
			var ops uint64
			begin.Wait()
			for {
				if cfg.Iterations > 0 && ops >= uint64(cfg.Iterations) {
					break
				}
				if cfg.Iterations == 0 && stop.Load() {
					break
				}
				l.Lock()
				for s := 0; s < cfg.CSSteps; s++ {
					shared.Uint32()
				}
				l.Unlock()
				if cfg.NCSMaxSteps > 0 {
					n := int(private.Uint32n(uint32(cfg.NCSMaxSteps)))
					private.Skip(n)
				}
				ops++
			}
			// Consume the private generator so the NCS work cannot
			// be elided.
			sink.Add(private.Uint32())
			perThread[t] = ops
		}()
	}
	begin.Done()
	if cfg.Iterations == 0 {
		d := cfg.Duration
		if d <= 0 {
			d = time.Second
		}
		time.Sleep(d)
		stop.Store(true)
	}
	done.Wait()
	el := time.Since(start)
	_ = sink.Load()

	total := uint64(0)
	for _, v := range perThread {
		total += v
	}
	mops := float64(total) / el.Seconds() / 1e6
	return mops, perThread, el
}

// Sweep runs cfg across the given thread counts for every factory.
func Sweep(lfs []LockFactory, threadCounts []int, cfg Config) []Result {
	var out []Result
	for _, lf := range lfs {
		for _, tc := range threadCounts {
			c := cfg
			c.Threads = tc
			out = append(out, Run(lf, c))
		}
	}
	return out
}
