package mutexbench

import (
	"testing"
	"time"
)

func TestRunIterationMode(t *testing.T) {
	for _, lf := range PaperSet() {
		lf := lf
		t.Run(lf.Name, func(t *testing.T) {
			res := Run(lf, Config{Threads: 4, Iterations: 500, CSSteps: 1, Runs: 1})
			if res.Name != lf.Name || res.Threads != 4 {
				t.Fatalf("result identity wrong: %+v", res)
			}
			var total uint64
			for _, v := range res.PerThread {
				total += v
			}
			if total != 4*500 {
				t.Fatalf("total ops = %d, want %d", total, 4*500)
			}
			if res.Mops <= 0 {
				t.Fatal("non-positive throughput")
			}
			if res.Jain <= 0 || res.Jain > 1 {
				t.Fatalf("Jain = %v", res.Jain)
			}
		})
	}
}

func TestRunDurationMode(t *testing.T) {
	lf, ok := ByName("Recipro")
	if !ok {
		t.Fatal("Recipro missing from registry")
	}
	res := Run(lf, Config{Threads: 2, Duration: 50 * time.Millisecond, CSSteps: 1, Runs: 1})
	var total uint64
	for _, v := range res.PerThread {
		total += v
	}
	if total == 0 {
		t.Fatal("duration mode performed no iterations")
	}
}

func TestMedianOfRuns(t *testing.T) {
	lf, _ := ByName("TKT")
	res := Run(lf, Config{Threads: 2, Iterations: 300, CSSteps: 1, Runs: 3})
	if len(res.AllRuns) != 3 {
		t.Fatalf("runs recorded = %d", len(res.AllRuns))
	}
}

func TestSweepShape(t *testing.T) {
	lfs := PaperSet()[:2]
	res := Sweep(lfs, []int{1, 2}, Config{Iterations: 100, CSSteps: 1, Runs: 1})
	if len(res) != 4 {
		t.Fatalf("sweep rows = %d, want 4", len(res))
	}
}

func TestRegistryComplete(t *testing.T) {
	if len(PaperSet()) != 6 {
		t.Fatalf("paper set has %d locks, want 6 (Figure 1 legend)", len(PaperSet()))
	}
	names := map[string]bool{}
	for _, lf := range AllSet() {
		if names[lf.Name] {
			t.Fatalf("duplicate lock name %q", lf.Name)
		}
		names[lf.Name] = true
		l := lf.New()
		l.Lock()
		l.Unlock()
	}
	for _, want := range []string{"TKT", "MCS", "CLH", "TWA", "HemLock", "Recipro",
		"Recipro-L2", "Recipro-L3", "Recipro-L4", "Recipro-L5", "Recipro-L6",
		"Gated", "TwoLane", "Fair", "Chen", "Retrograde", "RetroRand"} {
		if !names[want] {
			t.Fatalf("registry missing %q", want)
		}
	}
}

// NCS work must actually vary workload: moderate contention performs
// fewer lock acquisitions per second than maximal contention under
// identical everything else.
func TestNCSReducesLockPressure(t *testing.T) {
	lf, _ := ByName("Recipro")
	maxC := Run(lf, Config{Threads: 2, Iterations: 2000, CSSteps: 1, NCSMaxSteps: 0, Runs: 1})
	modC := Run(lf, Config{Threads: 2, Iterations: 2000, CSSteps: 1, NCSMaxSteps: 250, Runs: 1})
	if modC.Mops >= maxC.Mops {
		t.Fatalf("moderate contention (%v Mops) should be slower per-iteration than maximal (%v Mops)",
			modC.Mops, maxC.Mops)
	}
}
