package mutexbench

import (
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/registry"
)

func TestRunIterationMode(t *testing.T) {
	for _, lf := range registry.Paper() {
		lf := lf
		t.Run(lf.Name, func(t *testing.T) {
			res := Run(lf, Config{Threads: 4, Iterations: 500, CSSteps: 1, Runs: 1})
			if res.Name != lf.Name || res.Threads != 4 {
				t.Fatalf("result identity wrong: %+v", res)
			}
			var total uint64
			for _, v := range res.PerThread {
				total += v
			}
			if total != 4*500 {
				t.Fatalf("total ops = %d, want %d", total, 4*500)
			}
			if res.Mops <= 0 {
				t.Fatal("non-positive throughput")
			}
			if res.Jain <= 0 || res.Jain > 1 {
				t.Fatalf("Jain = %v", res.Jain)
			}
		})
	}
}

func TestRunDurationMode(t *testing.T) {
	lf, ok := registry.Lookup("Recipro")
	if !ok {
		t.Fatal("Recipro missing from registry")
	}
	res := Run(lf, Config{Threads: 2, Duration: 50 * time.Millisecond, CSSteps: 1, Runs: 1})
	var total uint64
	for _, v := range res.PerThread {
		total += v
	}
	if total == 0 {
		t.Fatal("duration mode performed no iterations")
	}
}

func TestMedianOfRuns(t *testing.T) {
	lf, _ := registry.Lookup("TKT")
	res := Run(lf, Config{Threads: 2, Iterations: 300, CSSteps: 1, Runs: 3})
	if len(res.AllRuns) != 3 {
		t.Fatalf("runs recorded = %d", len(res.AllRuns))
	}
}

// The PerThread vector (and Jain/Disparity derived from it) must come
// from the median-defining run, not whichever run happened last. The
// selection logic lives in internal/harness (MedianIndex, pinned by
// tests there); this checks the wiring end to end.
func TestResultReportsMedianDefiningRun(t *testing.T) {
	lf, _ := registry.Lookup("TKT")
	res := Run(lf, Config{Threads: 2, Iterations: 400, CSSteps: 1, Runs: 5})
	idx := harness.MedianIndex(res.AllRuns, res.Mops)
	if res.AllRuns[idx] != res.Mops {
		// 5 runs: the median must be one run's exact score.
		t.Fatalf("median %v not the median-defining run's score %v", res.Mops, res.AllRuns[idx])
	}
	var total uint64
	for _, v := range res.PerThread {
		total += v
	}
	if total != 2*400 {
		t.Fatalf("PerThread total = %d, want %d (must be one run's exact vector)", total, 2*400)
	}
}

func TestSweepShape(t *testing.T) {
	lfs := registry.Paper()[:2]
	res := Sweep(lfs, []int{1, 2}, Config{Iterations: 100, CSSteps: 1, Runs: 1})
	if len(res) != 4 {
		t.Fatalf("sweep rows = %d, want 4", len(res))
	}
}

// The read-mostly kernel must run to completion on every read surface:
// a sharing wrapper (RLock path), an optimistic wrapper (OptimisticRead
// path), and a plain exclusive lock (the baseline fallback).
func TestReadMostlyAllSurfaces(t *testing.T) {
	for _, name := range []string{"rw:Recipro", "seq:Recipro", "occ:Recipro", "Recipro", "GoRWMutex"} {
		name := name
		t.Run(name, func(t *testing.T) {
			lf, ok := registry.Lookup(name)
			if !ok {
				t.Fatalf("Lookup(%q) failed", name)
			}
			res := Run(lf, Config{Threads: 4, Iterations: 500, ReadFrac: 0.9, Runs: 1})
			var total uint64
			for _, v := range res.PerThread {
				total += v
			}
			if total != 4*500 {
				t.Fatalf("total ops = %d, want %d", total, 4*500)
			}
			if res.Mops <= 0 {
				t.Fatal("non-positive throughput")
			}
		})
	}
}

// ReadFrac controls the cell label and is recorded in the result
// config, so readmostly sweeps land in bench_baseline.json as their
// own workload rather than overwriting max/moderate cells.
func TestReadMostlyWorkloadNaming(t *testing.T) {
	for _, tc := range []struct {
		cfg  Config
		want string
	}{
		{Config{}, "max"},
		{Config{NCSMaxSteps: 250}, "moderate"},
		{Config{ReadFrac: 0.9}, "readmostly/r90"},
		{Config{ReadFrac: 0.99, NCSMaxSteps: 250}, "readmostly/r99"},
		{Config{ReadFrac: 1}, "readmostly/r100"},
	} {
		if got := WorkloadName(tc.cfg); got != tc.want {
			t.Errorf("WorkloadName(%+v) = %q, want %q", tc.cfg, got, tc.want)
		}
	}

	lf, _ := registry.Lookup("rw:Recipro")
	res := SweepResult([]registry.Entry{lf}, []int{2}, Config{Iterations: 200, ReadFrac: 0.9, Runs: 1})
	if res.Config["read_frac"] != "0.9" {
		t.Fatalf("read_frac config = %q", res.Config["read_frac"])
	}
	if len(res.Cells) != 1 || res.Cells[0].Workload != "readmostly/r90" {
		t.Fatalf("cells = %+v", res.Cells)
	}
}

// NCS work must actually vary workload: moderate contention performs
// fewer lock acquisitions per second than maximal contention under
// identical everything else.
func TestNCSReducesLockPressure(t *testing.T) {
	lf, _ := registry.Lookup("Recipro")
	maxC := Run(lf, Config{Threads: 2, Iterations: 2000, CSSteps: 1, NCSMaxSteps: 0, Runs: 1})
	modC := Run(lf, Config{Threads: 2, Iterations: 2000, CSSteps: 1, NCSMaxSteps: 250, Runs: 1})
	if modC.Mops >= maxC.Mops {
		t.Fatalf("moderate contention (%v Mops) should be slower per-iteration than maximal (%v Mops)",
			modC.Mops, maxC.Mops)
	}
}
