package mutexbench

import (
	"testing"
	"time"

	"repro/internal/registry"
)

func TestRunIterationMode(t *testing.T) {
	for _, lf := range registry.Paper() {
		lf := lf
		t.Run(lf.Name, func(t *testing.T) {
			res := Run(lf, Config{Threads: 4, Iterations: 500, CSSteps: 1, Runs: 1})
			if res.Name != lf.Name || res.Threads != 4 {
				t.Fatalf("result identity wrong: %+v", res)
			}
			var total uint64
			for _, v := range res.PerThread {
				total += v
			}
			if total != 4*500 {
				t.Fatalf("total ops = %d, want %d", total, 4*500)
			}
			if res.Mops <= 0 {
				t.Fatal("non-positive throughput")
			}
			if res.Jain <= 0 || res.Jain > 1 {
				t.Fatalf("Jain = %v", res.Jain)
			}
		})
	}
}

func TestRunDurationMode(t *testing.T) {
	lf, ok := registry.Lookup("Recipro")
	if !ok {
		t.Fatal("Recipro missing from registry")
	}
	res := Run(lf, Config{Threads: 2, Duration: 50 * time.Millisecond, CSSteps: 1, Runs: 1})
	var total uint64
	for _, v := range res.PerThread {
		total += v
	}
	if total == 0 {
		t.Fatal("duration mode performed no iterations")
	}
}

func TestMedianOfRuns(t *testing.T) {
	lf, _ := registry.Lookup("TKT")
	res := Run(lf, Config{Threads: 2, Iterations: 300, CSSteps: 1, Runs: 3})
	if len(res.AllRuns) != 3 {
		t.Fatalf("runs recorded = %d", len(res.AllRuns))
	}
}

// The PerThread vector (and Jain/Disparity derived from it) must come
// from the median-defining run, not whichever run happened last.
func TestMedianIndexSelectsMedianRun(t *testing.T) {
	cases := []struct {
		scores []float64
		med    float64
		want   int
	}{
		{[]float64{3, 1, 2}, 2, 2},             // odd: exact median run
		{[]float64{5, 1, 9}, 5, 0},             // odd: exact, first position
		{[]float64{1, 2, 3, 100}, 2.5, 1},      // even: nearest to averaged median (tie → earliest)
		{[]float64{4, 1, 2, 8}, 3, 0},          // even: 4 (idx 0) and 2 (idx 2) tie at distance 1 → earliest wins
		{[]float64{7}, 7, 0},                   // single run
		{[]float64{2, 2, 2}, 2, 0},             // all equal → earliest
		{[]float64{1, 9, 10.5, 100}, 10.25, 2}, // even: 10.5 strictly nearest (binary-exact values)
	}
	for i, c := range cases {
		if got := medianIndex(c.scores, c.med); got != c.want {
			t.Errorf("case %d: medianIndex(%v, %v) = %d, want %d", i, c.scores, c.med, got, c.want)
		}
	}
}

func TestSweepShape(t *testing.T) {
	lfs := registry.Paper()[:2]
	res := Sweep(lfs, []int{1, 2}, Config{Iterations: 100, CSSteps: 1, Runs: 1})
	if len(res) != 4 {
		t.Fatalf("sweep rows = %d, want 4", len(res))
	}
}

// NCS work must actually vary workload: moderate contention performs
// fewer lock acquisitions per second than maximal contention under
// identical everything else.
func TestNCSReducesLockPressure(t *testing.T) {
	lf, _ := registry.Lookup("Recipro")
	maxC := Run(lf, Config{Threads: 2, Iterations: 2000, CSSteps: 1, NCSMaxSteps: 0, Runs: 1})
	modC := Run(lf, Config{Threads: 2, Iterations: 2000, CSSteps: 1, NCSMaxSteps: 250, Runs: 1})
	if modC.Mops >= maxC.Mops {
		t.Fatalf("moderate contention (%v Mops) should be slower per-iteration than maximal (%v Mops)",
			modC.Mops, maxC.Mops)
	}
}
