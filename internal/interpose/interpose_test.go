package interpose

import (
	"sync"
	"testing"
)

func TestDefaultSelection(t *testing.T) {
	resetForTesting()
	t.Setenv(EnvVar, "")
	name, err := Implementation()
	if err != nil || name != DefaultLock {
		t.Fatalf("Implementation() = %q, %v", name, err)
	}
}

func TestEnvSelection(t *testing.T) {
	for _, name := range []string{"MCS", "CLH", "TKT", "Recipro-L4", "GoMutex"} {
		resetForTesting()
		t.Setenv(EnvVar, name)
		got, err := Implementation()
		if err != nil || got != name {
			t.Fatalf("selected %q, got %q (%v)", name, got, err)
		}
		var m Mutex
		counter := 0
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					m.Lock()
					counter++
					m.Unlock()
				}
			}()
		}
		wg.Wait()
		if counter != 4000 {
			t.Fatalf("%s: counter = %d", name, counter)
		}
	}
}

func TestUnknownSelection(t *testing.T) {
	resetForTesting()
	t.Setenv(EnvVar, "NoSuchLock")
	if _, err := Implementation(); err == nil {
		t.Fatal("unknown lock accepted")
	}
	defer func() {
		resetForTesting()
		if recover() == nil {
			t.Fatal("Mutex.Lock should panic on unknown selection")
		}
	}()
	var m Mutex
	m.Lock()
}

func TestLazyInitRace(t *testing.T) {
	resetForTesting()
	t.Setenv(EnvVar, "Recipro")
	for round := 0; round < 100; round++ {
		var m Mutex
		var wg sync.WaitGroup
		n := 0
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				m.Lock()
				n++
				m.Unlock()
			}()
		}
		wg.Wait()
		if n != 8 {
			t.Fatalf("round %d: lazy-init race lost updates (%d)", round, n)
		}
	}
}

func TestTryLock(t *testing.T) {
	resetForTesting()
	t.Setenv(EnvVar, "Recipro")
	var m Mutex
	if !m.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	m.Unlock()
}
