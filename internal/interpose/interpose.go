// Package interpose reproduces the paper's measurement methodology in
// Go terms. The paper implements every user-mode lock inside
// LD_PRELOAD interposition libraries exposing the standard
// pthread_mutex_t interface, "allowing us to change lock
// implementations by varying the LD_PRELOAD environment variable and
// without modifying the application code that uses locks" (§7).
//
// Mutex is the analog: a pthread_mutex_t-shaped lock whose backing
// algorithm is chosen process-wide by the REPRO_LOCK environment
// variable (default: the Reciprocating Lock). Like a trivially
// initialized pthread_mutex, the zero value works with no constructor:
// the backing lock is materialized lazily on first use — the same
// on-demand strategy the paper applies to CLH's dummy node under
// trivial pthread initializers (§7.1).
package interpose

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/registry"
)

// EnvVar names the selection variable.
const EnvVar = "REPRO_LOCK"

// DefaultLock is used when EnvVar is unset.
const DefaultLock = "Recipro"

var (
	implOnce sync.Once
	implName string
	implErr  error
	implNew  func() sync.Locker
)

func resolve() {
	implOnce.Do(func() {
		name := os.Getenv(EnvVar)
		if name == "" {
			name = DefaultLock
		}
		lf, ok := registry.Lookup(name)
		if !ok {
			implErr = fmt.Errorf("interpose: unknown %s=%q", EnvVar, name)
			return
		}
		implName, implNew = lf.Name, lf.New
	})
}

// Implementation reports the selected lock algorithm's name.
func Implementation() (string, error) {
	resolve()
	return implName, implErr
}

// Mutex is an environment-selected mutual-exclusion lock with
// pthread_mutex semantics: trivial (zero-value) initialization,
// non-reentrant, must be unlocked by its holder. It implements
// sync.Locker.
type Mutex struct {
	impl atomic.Pointer[lockBox]
}

type lockBox struct{ l sync.Locker }

func (m *Mutex) get() sync.Locker {
	if b := m.impl.Load(); b != nil {
		return b.l
	}
	resolve()
	if implErr != nil {
		panic(implErr)
	}
	// Lazy, racy-but-idempotent initialization: the loser's lock is
	// discarded, mirroring the paper's on-demand population of
	// trivially initialized mutexes.
	b := &lockBox{l: implNew()}
	if m.impl.CompareAndSwap(nil, b) {
		return b.l
	}
	return m.impl.Load().l
}

// Lock acquires m.
func (m *Mutex) Lock() { m.get().Lock() }

// Unlock releases m.
func (m *Mutex) Unlock() { m.get().Unlock() }

// TryLock attempts a non-blocking acquire; it reports false when the
// selected implementation does not support trylock.
func (m *Mutex) TryLock() bool {
	type tl interface{ TryLock() bool }
	if t, ok := m.get().(tl); ok {
		return t.TryLock()
	}
	return false
}

// resetForTesting clears the process-wide selection (tests only).
func resetForTesting() {
	implOnce = sync.Once{}
	implName, implErr, implNew = "", nil, nil
}
