// Package coherence implements a deterministic MESI cache-coherence
// simulator: per-CPU caches tracking line states, a snooping bus that
// counts coherence events, an optional NUMA home map, and a cycle cost
// model.
//
// The paper derives its Table 1 "Invalidations per episode" column by
// running locks with degenerate critical sections and reading the ARM
// l2d_cache_inval hardware counter, and cross-checks the counts by
// static analysis of each algorithm's memory accesses (§6, §8). Those
// counts are a property of the access sequences, not of any particular
// machine, so a MESI model replaying the exact sequences reproduces
// them on hardware we don't have. The same model plus a per-event
// cycle cost turns simulated lock executions into contended-throughput
// estimates for the Figure 1 shape reproduction.
//
// The simulator is intentionally simple: one word per line (every
// interesting location in the lock algorithms is sequestered on its
// own line anyway, matching the 128-byte alignment the paper applies),
// writeback effects folded into miss costs, and a single bus with no
// queuing model. That is exactly the level of abstraction at which the
// paper itself reasons in §8's miss tallies.
package coherence

import "fmt"

// Addr identifies one simulated memory line (one word per line).
type Addr uint64

// State is a MESI line state.
type State uint8

// MESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// CPUStats tallies per-CPU coherence events. "Coherence misses" in the
// paper's sense — the events an acquire/release episode suffers — are
// LoadMisses + StoreMisses + Upgrades.
type CPUStats struct {
	Loads       uint64
	Stores      uint64
	LoadMisses  uint64 // load found line Invalid locally
	StoreMisses uint64 // store/RMW found line Invalid locally
	Upgrades    uint64 // store/RMW found line Shared (S→M upgrade)
	Invalidated uint64 // lines this CPU lost to remote writes
	RemoteMiss  uint64 // misses whose line is homed on another node
}

// CoherenceEvents returns the episode-relevant event count (the
// paper's invalidation/miss metric).
func (s CPUStats) CoherenceEvents() uint64 {
	return s.LoadMisses + s.StoreMisses + s.Upgrades
}

// Config shapes a simulated system.
type Config struct {
	CPUs int
	// NodeOf maps a CPU to its NUMA node; nil means single-node.
	NodeOf func(cpu int) int
	// HomeOf maps a line to its home node; nil homes every line on
	// node 0. Per-thread structures are typically homed on their
	// owner's node (the paper's §8 point (A)).
	HomeOf func(a Addr) int
	// WordsPerLine sets the coherence granule in words (default 1:
	// every word on its own line, modeling the paper's 128-byte
	// sequestration of all hot fields). Values > 1 make sequentially
	// allocated words share lines, enabling false-sharing studies.
	WordsPerLine int
}

// LineStats tallies coherence events attributed to one named line —
// the per-access-site breakdown behind §8's itemized miss tallies.
type LineStats struct {
	LoadMisses  uint64
	StoreMisses uint64
	Upgrades    uint64
}

// Events sums the line's coherence events.
func (l LineStats) Events() uint64 { return l.LoadMisses + l.StoreMisses + l.Upgrades }

// System is a simulated cache-coherent machine. Cache state is
// tracked per line; memory contents per word.
type System struct {
	cfg    Config
	wpl    Addr
	caches []map[Addr]State // keyed by line id
	mem    map[Addr]uint64  // keyed by word address
	stats  []CPUStats
	lines  map[string]*LineStats // keyed by line label
	next   Addr
	names  map[Addr]string
}

// NewSystem creates a system with the given configuration.
func NewSystem(cfg Config) *System {
	if cfg.CPUs <= 0 {
		panic("coherence: CPUs must be positive")
	}
	wpl := Addr(cfg.WordsPerLine)
	if wpl == 0 {
		wpl = 1
	}
	s := &System{
		cfg:    cfg,
		wpl:    wpl,
		caches: make([]map[Addr]State, cfg.CPUs),
		mem:    make(map[Addr]uint64),
		stats:  make([]CPUStats, cfg.CPUs),
		lines:  make(map[string]*LineStats),
		next:   1, // address 0 reserved as "null"
		names:  make(map[Addr]string),
	}
	for i := range s.caches {
		s.caches[i] = make(map[Addr]State)
	}
	return s
}

// lineOf maps a word address to its coherence line.
func (s *System) lineOf(a Addr) Addr { return (a - 1) / s.wpl }

// Alloc reserves a fresh line (zero-initialized) and labels it for
// diagnostics.
func (s *System) Alloc(name string) Addr {
	a := s.next
	s.next++
	s.names[a] = name
	return a
}

// Name returns the label given to a at Alloc time.
func (s *System) Name(a Addr) string { return s.names[a] }

// CPUs reports the configured CPU count.
func (s *System) CPUs() int { return s.cfg.CPUs }

func (s *System) nodeOf(cpu int) int {
	if s.cfg.NodeOf == nil {
		return 0
	}
	return s.cfg.NodeOf(cpu)
}

func (s *System) homeOf(a Addr) int {
	if s.cfg.HomeOf == nil {
		return 0
	}
	return s.cfg.HomeOf(a)
}

// Stats returns a copy of cpu's counters.
func (s *System) Stats(cpu int) CPUStats { return s.stats[cpu] }

// ResetStats zeroes all counters (used to skip warmup transients).
func (s *System) ResetStats() {
	for i := range s.stats {
		s.stats[i] = CPUStats{}
	}
	s.lines = make(map[string]*LineStats)
}

// lineStats returns the per-label accumulator for a word's line.
func (s *System) lineStats(a Addr) *LineStats {
	name := s.names[a]
	ls := s.lines[name]
	if ls == nil {
		ls = &LineStats{}
		s.lines[name] = ls
	}
	return ls
}

// LineBreakdown returns a copy of the per-label event tallies —
// "which access site pays which miss", the §8 itemization.
func (s *System) LineBreakdown() map[string]LineStats {
	out := make(map[string]LineStats, len(s.lines))
	for k, v := range s.lines {
		out[k] = *v
	}
	return out
}

// StateOf reports cpu's cached state for the line holding word a
// (tests/diagnostics).
func (s *System) StateOf(cpu int, a Addr) State { return s.caches[cpu][s.lineOf(a)] }

// Peek reads memory without coherence effects (tests/diagnostics).
func (s *System) Peek(a Addr) uint64 { return s.mem[a] }

// InitValue sets a line's initial contents without coherence effects.
// Use only during setup, before any simulated thread runs (the moral
// equivalent of static initialization).
func (s *System) InitValue(a Addr, v uint64) { s.mem[a] = v }

// Load performs a coherent read by cpu and returns the value.
func (s *System) Load(cpu int, a Addr) uint64 {
	st := &s.stats[cpu]
	st.Loads++
	ln := s.lineOf(a)
	switch s.caches[cpu][ln] {
	case Modified, Exclusive, Shared:
		return s.mem[a] // hit
	}
	// Miss: snoop. An M/E holder downgrades to Shared (writeback is
	// folded into the miss cost).
	st.LoadMisses++
	s.lineStats(a).LoadMisses++
	if s.homeOf(a) != s.nodeOf(cpu) {
		st.RemoteMiss++
	}
	others := false
	for c := range s.caches {
		if c == cpu {
			continue
		}
		switch s.caches[c][ln] {
		case Modified, Exclusive:
			s.caches[c][ln] = Shared
			others = true
		case Shared:
			others = true
		}
	}
	if others {
		s.caches[cpu][ln] = Shared
	} else {
		s.caches[cpu][ln] = Exclusive
	}
	return s.mem[a]
}

// Store performs a coherent write by cpu.
func (s *System) Store(cpu int, a Addr, v uint64) {
	s.writeAccess(cpu, a)
	s.mem[a] = v
}

// writeAccess acquires the word's line in Modified state, counting
// events.
func (s *System) writeAccess(cpu int, a Addr) {
	st := &s.stats[cpu]
	st.Stores++
	ln := s.lineOf(a)
	switch s.caches[cpu][ln] {
	case Modified:
		return // hit
	case Exclusive:
		s.caches[cpu][ln] = Modified // silent upgrade, free
		return
	case Shared:
		st.Upgrades++ // S→M: must invalidate peers
		s.lineStats(a).Upgrades++
	default:
		st.StoreMisses++
		s.lineStats(a).StoreMisses++
		if s.homeOf(a) != s.nodeOf(cpu) {
			st.RemoteMiss++
		}
	}
	for c := range s.caches {
		if c == cpu {
			continue
		}
		if s.caches[c][ln] != Invalid {
			s.caches[c][ln] = Invalid
			s.stats[c].Invalidated++
		}
	}
	s.caches[cpu][ln] = Modified
}

// Swap performs an atomic exchange by cpu (an RMW counts as a write
// access for coherence purposes).
func (s *System) Swap(cpu int, a Addr, v uint64) uint64 {
	s.writeAccess(cpu, a)
	old := s.mem[a]
	s.mem[a] = v
	return old
}

// CAS performs an atomic compare-and-swap by cpu. Like hardware
// CMPXCHG, it acquires the line exclusively whether or not it
// succeeds.
func (s *System) CAS(cpu int, a Addr, old, new uint64) bool {
	s.writeAccess(cpu, a)
	if s.mem[a] != old {
		return false
	}
	s.mem[a] = new
	return true
}

// FetchAdd performs an atomic fetch-and-add by cpu, returning the
// prior value.
func (s *System) FetchAdd(cpu int, a Addr, d uint64) uint64 {
	s.writeAccess(cpu, a)
	old := s.mem[a]
	s.mem[a] = old + d
	return old
}

// CheckInvariants validates MESI safety: at most one M/E holder per
// line, and an M/E holder excludes Shared copies. Tests call this
// after every operation batch.
func (s *System) CheckInvariants() error {
	lines := map[Addr]struct{}{}
	for _, c := range s.caches {
		for ln := range c {
			lines[ln] = struct{}{}
		}
	}
	for ln := range lines {
		owners, sharers := 0, 0
		for _, c := range s.caches {
			switch c[ln] {
			case Modified, Exclusive:
				owners++
			case Shared:
				sharers++
			}
		}
		if owners > 1 {
			return fmt.Errorf("line %d: %d M/E owners", ln, owners)
		}
		if owners == 1 && sharers > 0 {
			return fmt.Errorf("line %d: M/E owner coexists with %d sharers", ln, sharers)
		}
	}
	return nil
}
