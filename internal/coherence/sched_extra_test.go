package coherence

import "testing"

func TestStateStrings(t *testing.T) {
	want := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", State(9): "?"}
	for s, w := range want {
		if s.String() != w {
			t.Fatalf("State(%d).String() = %q, want %q", s, s.String(), w)
		}
	}
}

// A small timed end-to-end run touching the full Ctx surface: Swap,
// CAS, FetchAdd, Work, AwaitWrite, Clock, trace hook, and the derived
// result accessors.
func TestTimedEndToEndSurface(t *testing.T) {
	sys := NewSystem(Config{CPUs: 2})
	word := sys.Alloc("word")
	sys.InitValue(word, 5)
	if sys.Peek(word) != 5 {
		t.Fatal("InitValue not visible")
	}
	sched := NewScheduler(sys, Timed, DefaultCosts, 1, 0)
	traced := 0
	sched.Trace = func(cpu int, op string, a Addr, v uint64) { traced++ }
	res := sched.Run(func(c *Ctx) {
		if c.CPU == 0 {
			// Consumer: monitor-wait for the producer's signal, then
			// claim it with an exchange.
			c.AwaitWrite(word, func(v uint64) bool { return v == 99 })
			if got := c.Swap(word, 0); got != 99 {
				panic("claimed wrong value")
			}
			if !c.CAS(word, 0, 7) {
				panic("CAS failed")
			}
			c.Episode()
		} else {
			c.Work(25)
			if c.Clock() < 25 {
				panic("Work did not advance clock")
			}
			c.FetchAdd(word, 94) // 5 + 94 = 99: wakes the consumer
			c.Episode()
		}
	})
	if res.TotalEpisodes() != 2 {
		t.Fatalf("TotalEpisodes = %d", res.TotalEpisodes())
	}
	if res.Throughput() <= 0 {
		t.Fatal("Throughput not positive")
	}
	if traced == 0 {
		t.Fatal("trace hook never fired")
	}
	if sys.Peek(word) != 7 {
		t.Fatalf("final word = %d, want 7", sys.Peek(word))
	}
	bd := sys.LineBreakdown()
	if bd["word"].Events() == 0 {
		t.Fatal("line breakdown recorded no events for the contended word")
	}
	if sys.Stats(0).CoherenceEvents() == 0 {
		t.Fatal("cpu0 saw no coherence events")
	}
	if sched.System() != sys {
		t.Fatal("System accessor mismatch")
	}
}

// AwaitWrite's ready check must prevent a missed wakeup when the write
// precedes the park.
func TestAwaitWriteReadyShortCircuit(t *testing.T) {
	sys := NewSystem(Config{CPUs: 1})
	a := sys.Alloc("a")
	sys.InitValue(a, 1)
	sched := NewScheduler(sys, RoundRobin, DefaultCosts, 1, 1000)
	sched.Run(func(c *Ctx) {
		// Value already satisfies the predicate: must not park (a
		// park here would deadlock, since no writer exists).
		c.AwaitWrite(a, func(v uint64) bool { return v == 1 })
		c.Episode()
	})
}
