package coherence

import (
	"fmt"

	"repro/internal/xrand"
)

// CostModel assigns cycle costs to memory events for the timed
// scheduling mode. The defaults approximate the relative costs the
// paper reasons with: local hits are cheap, coherence misses dominate,
// misses homed on a remote NUMA node cost more still (§6 "Maximum
// Remote Misses", Intel UPI discussion), and S→M upgrades fall in
// between.
type CostModel struct {
	Hit        uint64
	Miss       uint64
	RemoteMiss uint64
	Upgrade    uint64
	// BusOccupancy is the interconnect serialization cost of one
	// coherence transaction (miss or upgrade) in timed mode. Every
	// transaction holds the bus for this long, so invalidation storms
	// — e.g. T spinners re-reading a granted ticket word — delay the
	// critical-path handoff miss behind them. This bandwidth term is
	// what makes global-spinning locks collapse under contention, the
	// central phenomenon of Figure 1.
	BusOccupancy uint64
}

// DefaultCosts is a reasonable commodity-server cost model. Note the
// S→M upgrade is priced close to a full miss: with remote sharers an
// upgrade still pays the invalidation round trip; the data-free
// discount is small (truly private upgrades go E→M silently and cost
// a hit).
var DefaultCosts = CostModel{Hit: 1, Miss: 40, RemoteMiss: 90, Upgrade: 34, BusOccupancy: 16}

// Mode selects how the scheduler interleaves threads.
type Mode int

const (
	// RoundRobin grants one operation to each runnable thread in
	// turn: fully deterministic, used for admission-schedule and
	// invalidation-count experiments.
	RoundRobin Mode = iota
	// Timed is a discrete-event mode: the thread with the smallest
	// local clock runs next and its clock advances by the cost of the
	// event it performed. Used for throughput-shape experiments.
	Timed
	// Random picks the next thread with a seeded PRNG: a determinism-
	// preserving way to explore interleavings in stress tests.
	Random
)

// Ctx is a simulated thread's handle onto the system. All memory
// operations yield to the scheduler, so every interleaving decision is
// the scheduler's.
type Ctx struct {
	CPU   int
	sched *Scheduler
	t     *thread
}

// eventKind classifies one operation for the cost model.
type eventKind uint8

const (
	evHit eventKind = iota
	evMiss
	evRemoteMiss
	evUpgrade
	evWork
)

type opResult struct {
	kind   eventKind
	cycles uint64 // used by evWork
	wrote  Addr   // nonzero if the op wrote this line (wake trigger)
	block  Addr   // nonzero: park until this line is next written
	// blockUnless, if set, is evaluated against the line's current
	// value at registration time (atomically with the scheduling
	// step): when it reports true the park is skipped. This closes
	// the monitor-arming race — a write landing between a caller's
	// last observation and the park cannot be missed.
	blockUnless func(uint64) bool
	finished    bool
}

type thread struct {
	id        int
	resume    chan struct{}
	yield     chan opResult
	finished  bool
	blockedOn Addr // nonzero: parked until this line is written
}

// Scheduler coordinates simulated threads over a System.
type Scheduler struct {
	sys      *System
	mode     Mode
	costs    CostModel
	seed     uint64
	maxSteps uint64

	clocks     []uint64
	busFreeAt  uint64
	episodes   []uint64
	admissions []int
	steps      uint64

	// Trace, when non-nil, receives every memory operation as it
	// executes (deterministically ordered). Used by the §4 scenario
	// narrator and for debugging simulated locks.
	Trace func(cpu int, op string, a Addr, value uint64)

	// guide carries the decision sequence for Guided mode (set by the
	// exploration driver in explore.go).
	guide *guidance
}

// NewScheduler creates a scheduler over sys. maxSteps bounds the total
// operation count (0 selects a large default); exceeding it panics,
// which converts livelock bugs into test failures.
func NewScheduler(sys *System, mode Mode, costs CostModel, seed uint64, maxSteps uint64) *Scheduler {
	if maxSteps == 0 {
		maxSteps = 200_000_000
	}
	return &Scheduler{
		sys:      sys,
		mode:     mode,
		costs:    costs,
		seed:     seed,
		maxSteps: maxSteps,
		clocks:   make([]uint64, sys.CPUs()),
		episodes: make([]uint64, sys.CPUs()),
	}
}

// Result summarizes one simulation run.
type Result struct {
	// Episodes counts completed lock episodes per thread.
	Episodes []uint64
	// Admissions is the order in which threads acquired the lock.
	Admissions []int
	// Clock is the final global clock (timed mode: max thread clock).
	Clock uint64
	// Steps is the total number of operations performed.
	Steps uint64
	// Stats holds final per-CPU coherence counters.
	Stats []CPUStats
}

// Throughput returns episodes per kilocycle (timed mode).
func (r Result) Throughput() float64 {
	if r.Clock == 0 {
		return 0
	}
	total := uint64(0)
	for _, e := range r.Episodes {
		total += e
	}
	return float64(total) / float64(r.Clock) * 1000
}

// TotalEpisodes sums per-thread episode counts.
func (r Result) TotalEpisodes() uint64 {
	total := uint64(0)
	for _, e := range r.Episodes {
		total += e
	}
	return total
}

// Run executes body once per CPU as a simulated thread and returns the
// aggregated result. It is deterministic for a given (mode, seed,
// body).
func (s *Scheduler) Run(body func(c *Ctx)) Result {
	n := s.sys.CPUs()
	threads := make([]*thread, n)
	for i := 0; i < n; i++ {
		t := &thread{id: i, resume: make(chan struct{}), yield: make(chan opResult)}
		threads[i] = t
		ctx := &Ctx{CPU: i, sched: s, t: t}
		go func() {
			<-t.resume
			body(ctx)
			t.yield <- opResult{finished: true}
		}()
	}

	rng := xrand.NewXorShift64(s.seed | 1)
	live := n
	rr := 0
	runnable := func(t *thread) bool { return !t.finished && t.blockedOn == 0 }
	for live > 0 {
		pick := -1
		switch s.mode {
		case Guided:
			pick = s.pickGuided(threads)
		case Timed:
			var best uint64
			for i, t := range threads {
				if !runnable(t) {
					continue
				}
				if pick < 0 || s.clocks[i] < best {
					pick, best = i, s.clocks[i]
				}
			}
		case Random:
			anyRunnable := false
			for _, t := range threads {
				if runnable(t) {
					anyRunnable = true
					break
				}
			}
			if anyRunnable {
				for {
					pick = rng.Intn(n)
					if runnable(threads[pick]) {
						break
					}
				}
			}
		default: // RoundRobin
			for i := 0; i < n; i++ {
				cand := (rr + i) % n
				if runnable(threads[cand]) {
					pick = cand
					rr = cand + 1
					break
				}
			}
		}
		if pick < 0 {
			// Every live thread is parked on a line nobody will
			// write: the simulated lock has deadlocked.
			blocked := []string{}
			for _, t := range threads {
				if !t.finished {
					blocked = append(blocked,
						fmt.Sprintf("cpu%d on %q", t.id, s.sys.Name(t.blockedOn)))
				}
			}
			panic(fmt.Sprintf("coherence: deadlock — all live threads parked (%v)", blocked))
		}

		t := threads[pick]
		t.resume <- struct{}{}
		res := <-t.yield
		if res.finished {
			t.finished = true
			live--
			continue
		}
		s.steps++
		if s.steps > s.maxSteps {
			panic(fmt.Sprintf("coherence: exceeded %d steps — livelock?", s.maxSteps))
		}
		s.advanceClock(pick, res)
		if res.block != 0 {
			if res.blockUnless == nil || !res.blockUnless(s.sys.Peek(res.block)) {
				t.blockedOn = res.block
			}
		}
		if res.wrote != 0 {
			// Wake every thread parked on the written *line* — a
			// write to any word of the line invalidates a spinner's
			// copy, forcing a re-read even when the watched word is
			// untouched (false sharing). Re-reads cannot begin before
			// the writer's op completed.
			wroteLine := s.sys.lineOf(res.wrote)
			for _, w := range threads {
				if w.blockedOn != 0 && s.sys.lineOf(w.blockedOn) == wroteLine {
					w.blockedOn = 0
					if s.mode == Timed && s.clocks[w.id] < s.clocks[pick] {
						s.clocks[w.id] = s.clocks[pick]
					}
				}
			}
		}
	}

	clock := uint64(0)
	for _, c := range s.clocks {
		if c > clock {
			clock = c
		}
	}
	stats := make([]CPUStats, n)
	for i := range stats {
		stats[i] = s.sys.Stats(i)
	}
	return Result{
		Episodes:   append([]uint64(nil), s.episodes...),
		Admissions: append([]int(nil), s.admissions...),
		Clock:      clock,
		Steps:      s.steps,
		Stats:      stats,
	}
}

// advanceClock applies the cost model to one event in timed mode
// (round-robin and random modes keep clocks for reporting but use
// uniform unit costs).
func (s *Scheduler) advanceClock(cpu int, res opResult) {
	if s.mode != Timed {
		s.clocks[cpu]++
		return
	}
	m := s.costs
	switch res.kind {
	case evWork:
		s.clocks[cpu] += res.cycles
	case evHit:
		s.clocks[cpu] += m.Hit
	default:
		// Coherence transaction: serialize on the bus, then pay the
		// latency.
		var lat uint64
		switch res.kind {
		case evRemoteMiss:
			lat = m.RemoteMiss
		case evUpgrade:
			lat = m.Upgrade
		default:
			lat = m.Miss
		}
		start := s.clocks[cpu]
		if s.busFreeAt > start {
			start = s.busFreeAt
		}
		s.busFreeAt = start + m.BusOccupancy
		s.clocks[cpu] = start + lat
	}
}

// yieldOp hands the turn back to the scheduler, reporting the event
// class of the operation just performed.
func (c *Ctx) yieldOp(kind eventKind, cycles uint64) {
	c.t.yield <- opResult{kind: kind, cycles: cycles}
	<-c.t.resume
}

// yieldWrite is yieldOp for write-class ops, which additionally wake
// any threads parked on the written line.
func (c *Ctx) yieldWrite(kind eventKind, a Addr) {
	c.t.yield <- opResult{kind: kind, wrote: a}
	<-c.t.resume
}

// classify converts the delta of the CPU's counters across one
// operation into an event class.
func (c *Ctx) classify(before CPUStats) eventKind {
	after := c.sched.sys.Stats(c.CPU)
	switch {
	case after.RemoteMiss > before.RemoteMiss:
		return evRemoteMiss
	case after.LoadMisses > before.LoadMisses || after.StoreMisses > before.StoreMisses:
		return evMiss
	case after.Upgrades > before.Upgrades:
		return evUpgrade
	default:
		return evHit
	}
}

func (c *Ctx) trace(op string, a Addr, v uint64) {
	if c.sched.Trace != nil {
		c.sched.Trace(c.CPU, op, a, v)
	}
}

// Load performs a coherent read.
func (c *Ctx) Load(a Addr) uint64 {
	before := c.sched.sys.Stats(c.CPU)
	v := c.sched.sys.Load(c.CPU, a)
	c.trace("load", a, v)
	c.yieldOp(c.classify(before), 0)
	return v
}

// Store performs a coherent write.
func (c *Ctx) Store(a Addr, v uint64) {
	before := c.sched.sys.Stats(c.CPU)
	c.sched.sys.Store(c.CPU, a, v)
	c.trace("store", a, v)
	c.yieldWrite(c.classify(before), a)
}

// Swap performs an atomic exchange.
func (c *Ctx) Swap(a Addr, v uint64) uint64 {
	before := c.sched.sys.Stats(c.CPU)
	old := c.sched.sys.Swap(c.CPU, a, v)
	c.trace("swap", a, v)
	c.yieldWrite(c.classify(before), a)
	return old
}

// CAS performs an atomic compare-and-swap.
func (c *Ctx) CAS(a Addr, old, new uint64) bool {
	before := c.sched.sys.Stats(c.CPU)
	ok := c.sched.sys.CAS(c.CPU, a, old, new)
	if ok {
		c.trace("cas-ok", a, new)
	} else {
		c.trace("cas-fail", a, old)
	}
	c.yieldWrite(c.classify(before), a)
	return ok
}

// FetchAdd performs an atomic fetch-and-add.
func (c *Ctx) FetchAdd(a Addr, d uint64) uint64 {
	before := c.sched.sys.Stats(c.CPU)
	old := c.sched.sys.FetchAdd(c.CPU, a, d)
	c.trace("fetchadd", a, old)
	c.yieldWrite(c.classify(before), a)
	return old
}

// Work consumes local computation cycles without touching memory
// (critical/non-critical section bodies).
func (c *Ctx) Work(cycles uint64) {
	c.yieldOp(evWork, cycles)
}

// AwaitWrite parks the thread until line a is next written, without
// reading the line — the MONITOR/MWAIT (Intel) / WFE (ARM) idiom the
// paper's §10 discusses: arm a monitor on the line and sleep until its
// invalidation arrives. ready is evaluated against the line's current
// value atomically with arming: if it already holds, the park is
// skipped (the hardware analog: MWAIT falls through when the armed
// line was touched since MONITOR). No coherence event is charged for
// the wait itself; callers typically follow with an atomic exchange to
// claim the value, avoiding the load+upgrade pair of a classic spin.
func (c *Ctx) AwaitWrite(a Addr, ready func(uint64) bool) {
	c.t.yield <- opResult{kind: evHit, block: a, blockUnless: ready}
	<-c.t.resume
}

// SpinUntil busy-waits on line a until pred holds for its value, and
// returns the satisfying value. Semantically it is a polite spin loop:
// while the line stays valid in our cache the spin costs nothing; when
// the value disappoints, the thread parks and is woken by the next
// write to the line, paying one coherence re-read per wakeup — exactly
// the cost pattern of hardware spinning, without simulating millions
// of idle loop iterations. A park with no future writer is reported as
// a deadlock by the scheduler, converting lost-wakeup bugs in
// simulated locks into immediate failures.
func (c *Ctx) SpinUntil(a Addr, pred func(uint64) bool) uint64 {
	for {
		before := c.sched.sys.Stats(c.CPU)
		v := c.sched.sys.Load(c.CPU, a)
		kind := c.classify(before)
		if pred(v) {
			c.yieldOp(kind, 0)
			return v
		}
		// Park until the line is next written.
		c.t.yield <- opResult{kind: kind, block: a}
		<-c.t.resume
	}
}

// Admit records that this thread just acquired the lock (admission-
// order tracing for the §9 experiments).
func (c *Ctx) Admit() {
	c.sched.admissions = append(c.sched.admissions, c.CPU)
}

// Episode records completion of one acquire/CS/release episode.
func (c *Ctx) Episode() {
	c.sched.episodes[c.CPU]++
}

// Clock reports this thread's local clock (timed mode).
func (c *Ctx) Clock() uint64 { return c.sched.clocks[c.CPU] }

// System exposes the underlying system (for allocation in lock
// constructors).
func (s *Scheduler) System() *System { return s.sys }
