package coherence

import (
	"testing"
	"testing/quick"
)

func twoCPU() *System { return NewSystem(Config{CPUs: 2}) }

func TestLoadStoreBasics(t *testing.T) {
	s := twoCPU()
	a := s.Alloc("x")
	if v := s.Load(0, a); v != 0 {
		t.Fatalf("fresh load = %d", v)
	}
	if s.StateOf(0, a) != Exclusive {
		t.Fatalf("sole reader state = %v, want E", s.StateOf(0, a))
	}
	s.Store(0, a, 7)
	if s.StateOf(0, a) != Modified {
		t.Fatalf("writer state = %v, want M (silent E→M)", s.StateOf(0, a))
	}
	if s.Stats(0).Upgrades != 0 {
		t.Fatal("E→M must be a silent (free) upgrade")
	}
	if v := s.Load(1, a); v != 7 {
		t.Fatalf("remote load = %d, want 7", v)
	}
	if s.StateOf(0, a) != Shared || s.StateOf(1, a) != Shared {
		t.Fatal("both caches should hold Shared after remote read of M line")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreInvalidatesSharers(t *testing.T) {
	s := NewSystem(Config{CPUs: 4})
	a := s.Alloc("x")
	for c := 0; c < 4; c++ {
		s.Load(c, a)
	}
	s.Store(0, a, 1)
	if s.Stats(0).Upgrades != 1 {
		t.Fatalf("S→M upgrades = %d, want 1", s.Stats(0).Upgrades)
	}
	for c := 1; c < 4; c++ {
		if s.StateOf(c, a) != Invalid {
			t.Fatalf("cpu %d state = %v, want I", c, s.StateOf(c, a))
		}
		if s.Stats(c).Invalidated != 1 {
			t.Fatalf("cpu %d invalidated = %d, want 1", c, s.Stats(c).Invalidated)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRMWSemantics(t *testing.T) {
	s := twoCPU()
	a := s.Alloc("x")
	if old := s.Swap(0, a, 5); old != 0 {
		t.Fatalf("Swap old = %d", old)
	}
	if !s.CAS(1, a, 5, 9) {
		t.Fatal("CAS should succeed")
	}
	if s.CAS(0, a, 5, 1) {
		t.Fatal("CAS should fail on stale expected value")
	}
	if s.Peek(a) != 9 {
		t.Fatalf("mem = %d, want 9", s.Peek(a))
	}
	if old := s.FetchAdd(0, a, 3); old != 9 {
		t.Fatalf("FetchAdd old = %d, want 9", old)
	}
	if s.Peek(a) != 12 {
		t.Fatalf("mem = %d, want 12", s.Peek(a))
	}
	// A failed CAS still acquired the line exclusively.
	if s.StateOf(1, a) != Invalid {
		t.Fatal("failed CAS holder should have been invalidated by cpu0's RMWs")
	}
}

// Global spinning cost model: T spinners on one line each miss once
// per write — the Ticket-lock pathology of Table 1.
func TestGlobalSpinInvalidationStorm(t *testing.T) {
	const cpus = 10
	s := NewSystem(Config{CPUs: cpus})
	a := s.Alloc("grant")
	for c := 1; c < cpus; c++ {
		s.Load(c, a)
	}
	s.ResetStats()
	s.Store(0, a, 1) // release: invalidates all 9 spinners
	invalidated := uint64(0)
	for c := 1; c < cpus; c++ {
		invalidated += s.Stats(c).Invalidated
	}
	if invalidated != cpus-1 {
		t.Fatalf("one grant store invalidated %d caches, want %d", invalidated, cpus-1)
	}
	// Each spinner re-reads: one load miss apiece.
	for c := 1; c < cpus; c++ {
		s.Load(c, a)
		if s.Stats(c).LoadMisses != 1 {
			t.Fatalf("cpu %d load misses = %d, want 1", c, s.Stats(c).LoadMisses)
		}
	}
}

func TestRemoteMissAccounting(t *testing.T) {
	s := NewSystem(Config{
		CPUs:   2,
		NodeOf: func(cpu int) int { return cpu }, // one CPU per node
		HomeOf: func(a Addr) int { return 0 },    // all lines homed on node 0
	})
	a := s.Alloc("x")
	s.Load(0, a)
	if s.Stats(0).RemoteMiss != 0 {
		t.Fatal("node-local miss miscounted as remote")
	}
	s.Load(1, a)
	if s.Stats(1).RemoteMiss != 1 {
		t.Fatalf("remote miss = %d, want 1", s.Stats(1).RemoteMiss)
	}
}

// Property: after any op sequence, MESI invariants hold and memory
// equals a sequential model replay (the bus serializes everything).
func TestRandomOpsMatchSequentialModel(t *testing.T) {
	type op struct {
		CPU  uint8
		Kind uint8
		A    uint8
		V    uint8
	}
	err := quick.Check(func(ops []op) bool {
		const cpus = 3
		const addrs = 4
		s := NewSystem(Config{CPUs: cpus})
		var as [addrs]Addr
		for i := range as {
			as[i] = s.Alloc("a")
		}
		model := map[Addr]uint64{}
		for _, o := range ops {
			cpu := int(o.CPU) % cpus
			a := as[int(o.A)%addrs]
			v := uint64(o.V)
			switch o.Kind % 5 {
			case 0:
				if s.Load(cpu, a) != model[a] {
					return false
				}
			case 1:
				s.Store(cpu, a, v)
				model[a] = v
			case 2:
				if s.Swap(cpu, a, v) != model[a] {
					return false
				}
				model[a] = v
			case 3:
				want := model[a] == v
				if s.CAS(cpu, a, v, v+1) != want {
					return false
				}
				if want {
					model[a] = v + 1
				}
			case 4:
				if s.FetchAdd(cpu, a, v) != model[a] {
					return false
				}
				model[a] += v
			}
			if err := s.CheckInvariants(); err != nil {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// Scheduler: round-robin mode is deterministic and every thread's ops
// interleave one at a time.
func TestSchedulerRoundRobinDeterministic(t *testing.T) {
	run := func() []int {
		s := NewSystem(Config{CPUs: 3})
		a := s.Alloc("x")
		sched := NewScheduler(s, RoundRobin, DefaultCosts, 1, 0)
		res := sched.Run(func(c *Ctx) {
			for i := 0; i < 5; i++ {
				c.FetchAdd(a, 1)
				c.Admit()
				c.Episode()
			}
		})
		return res.Admissions
	}
	a1, a2 := run(), run()
	if len(a1) != 15 {
		t.Fatalf("admissions = %d, want 15", len(a1))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("round-robin runs diverged")
		}
	}
}

func TestSchedulerRandomSeedStable(t *testing.T) {
	run := func(seed uint64) []int {
		s := NewSystem(Config{CPUs: 3})
		a := s.Alloc("x")
		sched := NewScheduler(s, Random, DefaultCosts, seed, 0)
		res := sched.Run(func(c *Ctx) {
			for i := 0; i < 10; i++ {
				c.FetchAdd(a, 1)
				c.Admit()
			}
		})
		return res.Admissions
	}
	a1, a2 := run(42), run(42)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same-seed random runs diverged")
		}
	}
	b := run(43)
	diff := false
	for i := range a1 {
		if a1[i] != b[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Log("different seeds produced identical schedules (possible but unlikely)")
	}
}

// Timed mode: a thread doing expensive (missing) ops accumulates clock
// faster and therefore runs fewer ops per unit time than a hitting
// thread.
func TestTimedModeFavorsCheapThreads(t *testing.T) {
	s := NewSystem(Config{CPUs: 2})
	shared := s.Alloc("shared")
	priv := s.Alloc("private")
	sched := NewScheduler(s, Timed, DefaultCosts, 1, 0)
	res := sched.Run(func(c *Ctx) {
		for i := 0; i < 200; i++ {
			if c.CPU == 0 {
				c.Load(priv) // always hits after first touch
			} else {
				c.Store(shared, uint64(i)) // contended-ish writes
			}
			c.Episode()
		}
	})
	if res.Episodes[0] != 200 || res.Episodes[1] != 200 {
		t.Fatalf("episodes = %v", res.Episodes)
	}
	if res.Clock == 0 {
		t.Fatal("timed mode produced zero clock")
	}
}

// Mutual exclusion built on the sim must hold: a sim ticket lock
// protects a sim counter.
func TestSimTicketLockExclusion(t *testing.T) {
	s := NewSystem(Config{CPUs: 4})
	ticket := s.Alloc("ticket")
	grant := s.Alloc("grant")
	counter := s.Alloc("counter")
	sched := NewScheduler(s, Random, DefaultCosts, 99, 0)
	const iters = 50
	sched.Run(func(c *Ctx) {
		for i := 0; i < iters; i++ {
			tx := c.FetchAdd(ticket, 1)
			for c.Load(grant) != tx {
			}
			c.Admit()
			// Unprotected RMW expressed as load+store: any mutual
			// exclusion failure loses increments.
			v := c.Load(counter)
			c.Store(counter, v+1)
			c.Episode()
			c.Store(grant, tx+1)
		}
	})
	if got := s.Peek(counter); got != 4*iters {
		t.Fatalf("counter = %d, want %d (exclusion violated)", got, 4*iters)
	}
}

func TestSchedulerLivelockGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected livelock panic")
		}
	}()
	s := NewSystem(Config{CPUs: 1})
	a := s.Alloc("x")
	sched := NewScheduler(s, RoundRobin, DefaultCosts, 1, 100)
	sched.Run(func(c *Ctx) {
		for {
			c.Load(a) // spins forever
		}
	})
}
