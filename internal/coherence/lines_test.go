package coherence

import "testing"

// With WordsPerLine > 1, sequentially allocated words share a line:
// writes to one word invalidate cached copies of its neighbors (false
// sharing), while WordsPerLine == 1 isolates every word.
func TestFalseSharingGranularity(t *testing.T) {
	s := NewSystem(Config{CPUs: 2, WordsPerLine: 4})
	a := s.Alloc("a") // words 1..4 share line 0
	b := s.Alloc("b")
	if s.lineOf(a) != s.lineOf(b) {
		t.Fatal("sequential words should share a line at WPL=4")
	}
	s.Load(0, a) // cpu0 caches the line
	s.Store(1, b, 7)
	if s.Stats(0).Invalidated != 1 {
		t.Fatal("write to neighbor word should invalidate cpu0's line (false sharing)")
	}
	if s.Load(0, a) != 0 {
		t.Fatal("a's value must be unaffected by b's store")
	}
	if s.Stats(0).LoadMisses != 2 {
		t.Fatalf("cpu0 load misses = %d, want 2 (initial + false-sharing re-read)", s.Stats(0).LoadMisses)
	}

	// Sequestered layout: no interference.
	s2 := NewSystem(Config{CPUs: 2, WordsPerLine: 1})
	a2 := s2.Alloc("a")
	b2 := s2.Alloc("b")
	if s2.lineOf(a2) == s2.lineOf(b2) {
		t.Fatal("WPL=1 must isolate words")
	}
	s2.Load(0, a2)
	s2.Store(1, b2, 7)
	if s2.Stats(0).Invalidated != 0 {
		t.Fatal("sequestered words must not false-share")
	}
}

func TestLineBoundaries(t *testing.T) {
	s := NewSystem(Config{CPUs: 1, WordsPerLine: 4})
	var addrs []Addr
	for i := 0; i < 9; i++ {
		addrs = append(addrs, s.Alloc("w"))
	}
	// Words 1-4 → line 0, 5-8 → line 1, 9 → line 2.
	for i, want := range []Addr{0, 0, 0, 0, 1, 1, 1, 1, 2} {
		if got := s.lineOf(addrs[i]); got != want {
			t.Fatalf("word %d on line %d, want %d", i+1, got, want)
		}
	}
}

// A parked spinner must be woken by a write to any word of its line
// and re-park after re-reading an unchanged watched word.
func TestSpinWakeOnLineNeighborWrite(t *testing.T) {
	s := NewSystem(Config{CPUs: 2, WordsPerLine: 2})
	flag := s.Alloc("flag")     // line 0
	neighbor := s.Alloc("nbr")  // line 0 (false-sharing neighbor)
	done := s.Alloc("disjoint") // line 1
	_ = done
	sched := NewScheduler(s, RoundRobin, DefaultCosts, 1, 0)
	sched.Run(func(c *Ctx) {
		if c.CPU == 0 {
			v := c.SpinUntil(flag, func(v uint64) bool { return v == 1 })
			if v != 1 {
				panic("woke with wrong value")
			}
		} else {
			// Pummel the neighbor word: each write wakes the spinner
			// (false sharing) but never satisfies it.
			for i := 0; i < 5; i++ {
				c.Store(neighbor, uint64(i))
			}
			c.Store(flag, 1)
		}
	})
	// The spinner's re-reads from false sharing show up as misses.
	if s.Stats(0).LoadMisses < 3 {
		t.Fatalf("spinner load misses = %d, want several false-sharing re-reads",
			s.Stats(0).LoadMisses)
	}
}

// Mutual exclusion still holds when lock words share lines (a packed
// ticket lock still works, just slower).
func TestPackedTicketLockStillCorrect(t *testing.T) {
	s := NewSystem(Config{CPUs: 4, WordsPerLine: 8})
	ticket := s.Alloc("ticket")
	grant := s.Alloc("grant")
	counter := s.Alloc("counter") // all three on one line
	sched := NewScheduler(s, Random, DefaultCosts, 3, 0)
	const iters = 40
	sched.Run(func(c *Ctx) {
		for i := 0; i < iters; i++ {
			tx := c.FetchAdd(ticket, 1)
			c.SpinUntil(grant, func(v uint64) bool { return v == tx })
			v := c.Load(counter)
			c.Store(counter, v+1)
			g := c.Load(grant)
			c.Store(grant, g+1)
		}
	})
	if got := s.Peek(counter); got != 4*iters {
		t.Fatalf("counter = %d, want %d", got, 4*iters)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
