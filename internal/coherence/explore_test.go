package coherence

import (
	"fmt"
	"testing"
)

// A correct sim ticket lock must survive exhaustive exploration of all
// interleavings (2 threads × 1 episode with a load/store critical
// section). SpinUntil parks rather than busy-iterating, so the
// decision tree stays small enough to exhaust.
func TestExploreTicketLockExhaustive(t *testing.T) {
	res := Explore(2, 0, func() (*System, func(c *Ctx)) {
		sys := NewSystem(Config{CPUs: 2})
		ticket := sys.Alloc("ticket")
		grant := sys.Alloc("grant")
		counter := sys.Alloc("counter")
		body := func(c *Ctx) {
			tx := c.FetchAdd(ticket, 1)
			c.SpinUntil(grant, func(v uint64) bool { return v == tx })
			v := c.Load(counter)
			c.Store(counter, v+1)
			g := c.Load(grant)
			c.Store(grant, g+1)
		}
		return sys, body
	}, func(sys *System) error {
		if got := sys.Peek(3); got != 2 {
			return fmt.Errorf("counter = %d, want 2", got)
		}
		return sys.CheckInvariants()
	})
	if res.Violation != nil {
		t.Fatalf("violation after %d schedules: %v (schedule %v)",
			res.Schedules, res.Violation, res.FailingSchedule)
	}
	if !res.Exhausted {
		t.Fatalf("tree not exhausted within %d schedules", res.Schedules)
	}
	if res.Schedules < 5 {
		t.Fatalf("suspiciously few schedules (%d)", res.Schedules)
	}
	t.Logf("ticket lock verified over %d interleavings", res.Schedules)
}

// A deliberately broken lock (single-shot test-then-set: no
// atomicity) must be caught: some interleaving admits both threads
// and loses an increment.
func TestExploreFindsBrokenLock(t *testing.T) {
	res := Explore(2, 0, func() (*System, func(c *Ctx)) {
		sys := NewSystem(Config{CPUs: 2})
		word := sys.Alloc("brokenlock")
		counter := sys.Alloc("counter")
		body := func(c *Ctx) {
			// Broken acquire: wait until the word looks free, then
			// store — the classic test-then-set race.
			c.SpinUntil(word, func(v uint64) bool { return v == 0 })
			c.Store(word, 1)
			v := c.Load(counter)
			c.Store(counter, v+1)
			c.Store(word, 0)
		}
		return sys, body
	}, func(sys *System) error {
		if got := sys.Peek(2); got != 2 {
			return fmt.Errorf("counter = %d, want 2 (exclusion violated)", got)
		}
		return nil
	})
	if res.Violation == nil {
		t.Fatalf("explorer failed to find the race in %d schedules", res.Schedules)
	}
	t.Logf("found violation after %d schedules: %v", res.Schedules, res.Violation)
}

// The explorer must catch lost-wakeup deadlocks: the signaler checks
// for a waiter before the waiter registers under some interleaving,
// and the waiter then parks forever.
func TestExploreFindsDeadlock(t *testing.T) {
	res := Explore(2, 0, func() (*System, func(c *Ctx)) {
		sys := NewSystem(Config{CPUs: 2})
		word := sys.Alloc("lostwakeup")
		body := func(c *Ctx) {
			if c.CPU == 0 {
				// Announce waiting, then wait for the signal.
				c.Store(word, 1)
				c.SpinUntil(word, func(v uint64) bool { return v == 2 })
			} else {
				// Signal only if the waiter is already visible — the
				// lost-wakeup bug.
				if c.Load(word) == 1 {
					c.Store(word, 2)
				}
			}
		}
		return sys, body
	}, func(sys *System) error { return nil })
	if res.Violation == nil {
		t.Fatalf("explorer failed to find the lost-wakeup deadlock in %d schedules", res.Schedules)
	}
	t.Logf("deadlock found after %d schedules: %v", res.Schedules, res.Violation)
}

// Schedule budget is respected when the tree is too large.
func TestExploreBudget(t *testing.T) {
	res := Explore(3, 25, func() (*System, func(c *Ctx)) {
		sys := NewSystem(Config{CPUs: 3})
		a := sys.Alloc("a")
		body := func(c *Ctx) {
			for i := 0; i < 6; i++ {
				c.FetchAdd(a, 1)
			}
		}
		return sys, body
	}, func(sys *System) error { return nil })
	if res.Schedules != 25 || res.Exhausted {
		t.Fatalf("schedules=%d exhausted=%v, want budget-limited 25", res.Schedules, res.Exhausted)
	}
}
