package coherence

import (
	"reflect"
	"strings"
	"testing"
)

// One full externally-driven interaction: a waiter parks on a gate
// word, the other thread finishes independently, a harness Poke opens
// the gate, and the woken thread completes — with admissions, step
// counts, and the final memory image all observable.
func TestStepperDrivesThreadsOneOpAtATime(t *testing.T) {
	sys := NewSystem(Config{CPUs: 2})
	x := sys.Alloc("x")
	gate := sys.Alloc("gate")
	bodies := []func(*Ctx){
		func(c *Ctx) { c.Admit(); c.Store(x, 7) },
		func(c *Ctx) {
			c.AwaitWrite(gate, func(v uint64) bool { return v == 1 })
			c.Admit()
			c.Store(x, c.Load(x)+1)
		},
	}
	st := NewStepper(sys, 100, bodies)
	if st.Threads() != 2 {
		t.Fatalf("Threads() = %d", st.Threads())
	}
	for id := 0; id < 2; id++ {
		if !st.Runnable(id) || st.Finished(id) || st.Blocked(id) {
			t.Fatalf("thread %d must start runnable/unfinished/unblocked", id)
		}
	}

	st.Step(1) // AwaitWrite: gate is 0, so thread 1 parks.
	if !st.Blocked(1) || st.Runnable(1) {
		t.Fatal("thread 1 must park on the closed gate")
	}

	st.Step(0) // Store x=7.
	st.Step(0) // body return.
	if !st.Finished(0) || st.Runnable(0) {
		t.Fatal("thread 0 must be finished after its last op")
	}
	// x and gate are distinct lines (one word per line by default), so
	// thread 0's store must not have woken the gate waiter.
	if !st.Blocked(1) {
		t.Fatal("store to an unrelated line woke the gate waiter")
	}

	st.Poke(gate, 1)
	if !st.Runnable(1) {
		t.Fatal("Poke on the gate line must wake the waiter")
	}
	st.Step(1) // Load x.
	st.Step(1) // Store x+1.
	st.Step(1) // body return.
	if !st.Finished(1) {
		t.Fatal("thread 1 must be finished")
	}

	if got := sys.Peek(x); got != 8 {
		t.Fatalf("x = %d, want 8", got)
	}
	if got := st.Admissions(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("admissions = %v, want [0 1]", got)
	}
	// Counted ops: AwaitWrite, store by 0, load, store — body returns
	// are not memory operations.
	if st.Steps() != 4 {
		t.Fatalf("Steps() = %d, want 4", st.Steps())
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// AwaitWrite with an already-satisfied predicate must not park: the
// blockUnless check runs against the current value at step time.
func TestStepperAwaitWriteSatisfiedPredicate(t *testing.T) {
	sys := NewSystem(Config{CPUs: 1})
	gate := sys.Alloc("gate")
	sys.InitValue(gate, 1)
	st := NewStepper(sys, 100, []func(*Ctx){
		func(c *Ctx) { c.AwaitWrite(gate, func(v uint64) bool { return v == 1 }) },
	})
	st.Step(0)
	if st.Blocked(0) {
		t.Fatal("AwaitWrite parked despite a satisfied predicate")
	}
	st.Step(0)
	if !st.Finished(0) {
		t.Fatal("thread did not finish")
	}
}

func TestStepperPanicsOnNonRunnableStep(t *testing.T) {
	sys := NewSystem(Config{CPUs: 1})
	gate := sys.Alloc("gate")
	st := NewStepper(sys, 100, []func(*Ctx){
		func(c *Ctx) { c.AwaitWrite(gate, func(v uint64) bool { return v == 1 }) },
	})
	st.Step(0) // parks
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Step on a blocked thread must panic")
		}
	}()
	st.Step(0)
}

func TestStepperBodyCountMismatchPanics(t *testing.T) {
	sys := NewSystem(Config{CPUs: 2})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("NewStepper with wrong body count must panic")
		}
	}()
	NewStepper(sys, 100, []func(*Ctx){func(c *Ctx) {}})
}

// Exceeding the step budget must convert a livelocked harness loop into
// a loud panic mentioning the budget.
func TestStepperMaxStepsPanics(t *testing.T) {
	sys := NewSystem(Config{CPUs: 1})
	x := sys.Alloc("x")
	st := NewStepper(sys, 1, []func(*Ctx){
		func(c *Ctx) { c.Store(x, 1); c.Store(x, 2) },
	})
	st.Step(0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second op past a 1-step budget must panic")
		}
		if !strings.Contains(r.(string), "steps") {
			t.Fatalf("panic %q does not mention the step budget", r)
		}
	}()
	st.Step(0)
}
