package coherence

import "fmt"

// This file implements bounded exhaustive interleaving exploration —
// stateless model checking in the style of systematic concurrency
// testers: every scheduling decision point (a step at which more than
// one simulated thread is runnable) becomes a branch, and the explorer
// enumerates the decision tree depth-first by replaying the entire
// (deterministic) simulation with a guided scheduler. For small
// configurations this covers *every* possible interleaving of the lock
// algorithms' memory operations, turning "the tests passed" into "no
// interleaving up to this bound violates mutual exclusion or
// deadlocks".

// Guided is the scheduler mode used by the explorer: scheduling
// choices are taken from a prescribed prefix and defaulted (and
// recorded) beyond it.
const Guided Mode = 97

// guidance carries the exploration state threaded through one run.
type guidance struct {
	// prefix holds the decisions to replay.
	prefix []int
	// chosen records the decision actually taken at each point.
	chosen []int
	// options records how many runnable threads existed at each
	// decision point (the branching factor).
	options []int
}

// setGuidance arms a scheduler for one guided run.
func (s *Scheduler) setGuidance(g *guidance) { s.guide = g }

// pickGuided selects the next thread in Guided mode. Runnable threads
// are considered in index order; only true decision points (more than
// one runnable) consume guidance.
func (s *Scheduler) pickGuided(threads []*thread) int {
	var runnable []int
	for i, t := range threads {
		if !t.finished && t.blockedOn == 0 {
			runnable = append(runnable, i)
		}
	}
	if len(runnable) == 0 {
		return -1
	}
	if len(runnable) == 1 {
		return runnable[0]
	}
	g := s.guide
	d := len(g.chosen)
	choice := 0
	if d < len(g.prefix) {
		choice = g.prefix[d]
	}
	if choice >= len(runnable) {
		choice = len(runnable) - 1
	}
	g.chosen = append(g.chosen, choice)
	g.options = append(g.options, len(runnable))
	return runnable[choice]
}

// ExploreResult summarizes an exploration.
type ExploreResult struct {
	// Schedules is the number of distinct interleavings executed.
	Schedules int
	// Exhausted reports whether the full decision tree was covered
	// (false: the schedule budget ran out first).
	Exhausted bool
	// Violation holds the first check failure, with the offending
	// decision sequence.
	Violation error
	// FailingSchedule is the decision prefix that produced Violation.
	FailingSchedule []int
}

// Explore enumerates interleavings of a simulated scenario.
//
// For each schedule, build is called to construct a fresh system and
// the per-thread body (systems must not be reused: exploration is
// stateless replay); after the run, check inspects the final system
// state and returns an error on an invariant violation. Exploration
// stops at the first violation or after maxSchedules runs.
//
// A run that panics inside the scheduler (simulated deadlock or
// livelock) is converted into a violation.
func Explore(
	cpus int,
	maxSchedules int,
	build func() (*System, func(c *Ctx)),
	check func(*System) error,
) ExploreResult {
	if maxSchedules <= 0 {
		maxSchedules = 100_000
	}
	res := ExploreResult{}
	prefix := []int{}
	for res.Schedules < maxSchedules {
		g := &guidance{prefix: prefix}
		sys, body := build()
		sched := NewScheduler(sys, Guided, DefaultCosts, 1, 5_000_000)
		sched.setGuidance(g)

		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("schedule %v: %v", g.chosen, r)
				}
			}()
			sched.Run(body)
			return check(sys)
		}()
		res.Schedules++
		if err != nil {
			res.Violation = err
			res.FailingSchedule = append([]int(nil), g.chosen...)
			return res
		}

		// Odometer step: advance the last decision that still has an
		// unexplored sibling, truncating deeper decisions.
		next := append([]int(nil), g.chosen...)
		i := len(next) - 1
		for i >= 0 && next[i]+1 >= g.options[i] {
			i--
		}
		if i < 0 {
			res.Exhausted = true
			return res
		}
		next[i]++
		prefix = next[:i+1]
	}
	return res
}
