package coherence

import "fmt"

// Stepper drives simulated threads one memory operation at a time under
// external control. Where Scheduler.Run owns the interleaving policy
// for a whole run, a Stepper inverts control: the caller decides which
// thread performs its next operation and when, which lets a test
// harness interleave simulated execution with events it injects from
// outside the simulated machine (the differential conformance checker
// drives a sim lock and a real lock through one shared event script
// this way).
//
// The Stepper reuses the Scheduler's thread machinery, so simulated
// code behaves identically: SpinUntil parks threads on lines, writes
// wake parked threads on the same cache line, AwaitWrite's ready
// predicate is evaluated atomically with parking, and Ctx.Admit
// records admission order.
type Stepper struct {
	sched   *Scheduler
	threads []*thread
}

// NewStepper creates a stepper over sys with one simulated thread per
// body; len(bodies) must equal sys.CPUs(). maxSteps bounds the total
// operation count (0 selects a large default); exceeding it panics,
// converting livelock into a loud failure. All threads start suspended
// before their first operation.
func NewStepper(sys *System, maxSteps uint64, bodies []func(c *Ctx)) *Stepper {
	if len(bodies) != sys.CPUs() {
		panic(fmt.Sprintf("coherence: %d bodies for %d CPUs", len(bodies), sys.CPUs()))
	}
	st := &Stepper{sched: NewScheduler(sys, RoundRobin, DefaultCosts, 1, maxSteps)}
	for i, body := range bodies {
		t := &thread{id: i, resume: make(chan struct{}), yield: make(chan opResult)}
		st.threads = append(st.threads, t)
		ctx := &Ctx{CPU: i, sched: st.sched, t: t}
		body := body
		go func() {
			<-t.resume
			body(ctx)
			t.yield <- opResult{finished: true}
		}()
	}
	return st
}

// Threads reports the number of simulated threads.
func (st *Stepper) Threads() int { return len(st.threads) }

// Finished reports whether thread id's body has returned.
func (st *Stepper) Finished(id int) bool { return st.threads[id].finished }

// Blocked reports whether thread id is parked on a line awaiting a
// write (SpinUntil or AwaitWrite).
func (st *Stepper) Blocked(id int) bool { return st.threads[id].blockedOn != 0 }

// Runnable reports whether thread id can perform another operation.
func (st *Stepper) Runnable(id int) bool {
	t := st.threads[id]
	return !t.finished && t.blockedOn == 0
}

// Step runs exactly one memory operation (or the body's return) of
// thread id. Calling Step on a non-runnable thread is a harness bug and
// panics.
func (st *Stepper) Step(id int) {
	t := st.threads[id]
	if t.finished || t.blockedOn != 0 {
		panic(fmt.Sprintf("coherence: Step(%d) on non-runnable thread", id))
	}
	t.resume <- struct{}{}
	res := <-t.yield
	if res.finished {
		t.finished = true
		return
	}
	s := st.sched
	s.steps++
	if s.steps > s.maxSteps {
		panic(fmt.Sprintf("coherence: exceeded %d steps — livelock?", s.maxSteps))
	}
	s.advanceClock(id, res)
	if res.block != 0 {
		if res.blockUnless == nil || !res.blockUnless(s.sys.Peek(res.block)) {
			t.blockedOn = res.block
		}
	}
	if res.wrote != 0 {
		st.wake(res.wrote)
	}
}

// wake unparks every thread blocked on the written address's cache
// line, mirroring Scheduler.Run's invalidation-wake rule.
func (st *Stepper) wake(a Addr) {
	ln := st.sched.sys.lineOf(a)
	for _, w := range st.threads {
		if w.blockedOn != 0 && st.sched.sys.lineOf(w.blockedOn) == ln {
			w.blockedOn = 0
		}
	}
}

// Poke performs a harness-level write: it sets a's value directly
// (outside the coherence cost model, like System.InitValue) and wakes
// threads parked on a's line. The conformance driver uses it to signal
// simulated threads from outside the machine — e.g. to release a
// critical-section hold gate.
func (st *Stepper) Poke(a Addr, v uint64) {
	st.sched.sys.InitValue(a, v)
	st.wake(a)
}

// Admissions returns a copy of the admission order recorded by
// Ctx.Admit so far.
func (st *Stepper) Admissions() []int {
	return append([]int(nil), st.sched.admissions...)
}

// Steps reports the total operations performed so far.
func (st *Stepper) Steps() uint64 { return st.sched.steps }
