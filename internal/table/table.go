// Package table renders fixed-width text tables and CSV for the
// benchmark harnesses' reports.
package table

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple header + rows text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends one row; cells beyond the header count are dropped and
// missing cells are blank.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned text rendering.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// RenderCSV writes the table as CSV (no quoting: callers only emit
// numbers and identifiers).
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Headers, ","))
	for _, r := range t.Rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F formats a float with the given precision.
func F(v float64, prec int) string { return strconv.FormatFloat(v, 'f', prec, 64) }

// I formats an integer.
func I(v int64) string { return strconv.FormatInt(v, 10) }

// U formats an unsigned integer.
func U(v uint64) string { return strconv.FormatUint(v, 10) }
