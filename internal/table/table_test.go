package table

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.Add("a", "1")
	tb.Add("longername", "22.5")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Column two must start at the same offset on every data line.
	hdr := lines[1]
	idx := strings.Index(hdr, "value")
	for _, ln := range lines[3:] {
		if len(ln) <= idx {
			continue
		}
		if ln[idx-1] != ' ' {
			t.Fatalf("misaligned row %q (value col at %d)", ln, idx)
		}
	}
}

func TestAddPadsAndTruncates(t *testing.T) {
	tb := New("", "a", "b")
	tb.Add("x")
	tb.Add("1", "2", "3")
	if tb.Rows[0][1] != "" {
		t.Fatal("missing cell not blank")
	}
	if len(tb.Rows[1]) != 2 {
		t.Fatal("extra cell not dropped")
	}
}

func TestRenderCSV(t *testing.T) {
	tb := New("t", "x", "y")
	tb.Add("1", "2")
	var b strings.Builder
	tb.RenderCSV(&b)
	if b.String() != "x,y\n1,2\n" {
		t.Fatalf("csv = %q", b.String())
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Fatal("F")
	}
	if I(-5) != "-5" || U(7) != "7" {
		t.Fatal("I/U")
	}
}
