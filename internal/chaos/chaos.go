// Package chaos is the repository's deterministic fault-injection
// substrate: named injection points threaded through the lock
// algorithms (internal/core, internal/locks), the waiting layer
// (internal/waiter, internal/futex) and the kvstore application, all
// governed by one seeded configuration.
//
// Design constraints, in order:
//
//  1. Disabled cost ~zero. Every hook reduces to a single atomic
//     pointer load and a predicted branch when no configuration is
//     installed, so the points can live permanently inside lock hot
//     paths (the same discipline as lockstat's nil-Stats fast path).
//  2. Deterministic per (seed, point, call index). Each point owns a
//     splitmix64 stream derived from the global seed and the point
//     name; the k-th hit of a point makes the same delay/preempt/fail
//     decisions in every run with that seed. The *interleaving* of
//     goroutines still varies run to run — determinism here means a
//     failing seed reproduces the same injection pressure, not the
//     same schedule.
//  3. Failure-only bias. Injections may add delays, force scheduler
//     preemptions at linearization points, report spurious wakeups, or
//     veto a TryLock/LockFor — all of which are legal behaviors of the
//     underlying primitives. An injection can therefore never *cause*
//     a correctness violation, only expose one.
//
// Typical use (cmd/torture -chaos):
//
//	chaos.Enable(chaos.DefaultConfig(seed))
//	defer chaos.Disable()
//	... run workload ...
//	for _, ps := range chaos.Report() { ... }
package chaos

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config selects injection probabilities. Probabilities are in [0, 1]
// and are evaluated independently per hit.
type Config struct {
	// Seed drives every per-point decision stream.
	Seed uint64
	// Delay is the probability that a Hit injects a sleep of up to
	// MaxDelay (uniform, deterministic per stream).
	Delay float64
	// MaxDelay caps injected delays; zero selects 100µs.
	MaxDelay time.Duration
	// Preempt is the probability that a Hit forces a runtime.Gosched,
	// simulating preemption at the instrumented linearization point.
	Preempt float64
	// TryFail is the probability that Fail() vetoes a TryLock/LockFor
	// attempt (a spurious failure, always legal for those operations).
	TryFail float64
	// SpuriousWake is the probability that Wake() reports true,
	// causing an instrumented blocking wait to return spuriously.
	SpuriousWake float64
}

// DefaultConfig returns the torture-harness defaults: aggressive
// preemption at linearization points, moderate delays, and occasional
// spurious failures/wakeups.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:         seed,
		Delay:        0.02,
		MaxDelay:     100 * time.Microsecond,
		Preempt:      0.05,
		TryFail:      0.02,
		SpuriousWake: 0.05,
	}
}

// active holds the installed configuration; nil means disabled. The
// single pointer load is the entire disabled-path cost of every hook.
var active atomic.Pointer[Config]

// registry tracks every point ever constructed so Enable can reset
// counters and Report can enumerate them.
var (
	regMu  sync.Mutex
	points []*Point
)

// Enable installs cfg and zeroes all point counters. It replaces any
// previous configuration.
func Enable(cfg Config) {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 100 * time.Microsecond
	}
	regMu.Lock()
	for _, p := range points {
		p.reset()
	}
	regMu.Unlock()
	c := cfg
	active.Store(&c)
}

// Disable uninstalls the configuration; all hooks revert to no-ops.
// Accumulated counters are retained until the next Enable so a report
// can be taken after the run.
func Disable() { active.Store(nil) }

// Enabled reports whether fault injection is currently armed.
func Enabled() bool { return active.Load() != nil }

// Seed returns the active seed (0 when disabled).
func Seed() uint64 {
	if c := active.Load(); c != nil {
		return c.Seed
	}
	return 0
}

// Point is a named injection site. Construct once at package scope
// (NewPoint) and call Hit/Fail/Wake from the instrumented code; the
// handle form keeps the armed path free of map lookups.
type Point struct {
	name string
	hash uint64

	calls    atomic.Uint64
	delays   atomic.Uint64
	preempts atomic.Uint64
	fails    atomic.Uint64
	wakes    atomic.Uint64
}

// NewPoint registers and returns a new injection point. Names are
// dotted paths ("reciprocating.arrive"); each call site should own a
// distinct name so Report attributes injections usefully.
func NewPoint(name string) *Point {
	p := &Point{name: name, hash: fnv64(name)}
	regMu.Lock()
	points = append(points, p)
	regMu.Unlock()
	return p
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

func (p *Point) reset() {
	p.calls.Store(0)
	p.delays.Store(0)
	p.preempts.Store(0)
	p.fails.Store(0)
	p.wakes.Store(0)
}

// draw advances the point's decision stream by one call and returns
// the call's 64-bit noise word. splitmix64 over (seed ^ name-hash) +
// k·φ is the canonical counter-based stream: call k always draws the
// same word for a given seed and name.
func (p *Point) draw(c *Config) uint64 {
	k := p.calls.Add(1)
	return splitmix64((c.Seed ^ p.hash) + k*0x9e3779b97f4a7c15)
}

// Hit possibly injects a scheduler preemption and/or a bounded delay
// at this point. It is a no-op unless chaos is enabled.
func (p *Point) Hit() {
	c := active.Load()
	if c == nil {
		return
	}
	x := p.draw(c)
	if c.Preempt > 0 && unit(x) < c.Preempt {
		p.preempts.Add(1)
		runtime.Gosched()
	}
	y := splitmix64(x)
	if c.Delay > 0 && unit(y) < c.Delay {
		p.delays.Add(1)
		d := time.Duration(splitmix64(y) % uint64(c.MaxDelay))
		time.Sleep(d)
	}
}

// Fail reports whether a TryLock/LockFor attempt at this point should
// fail spuriously. Always false when chaos is disabled.
func (p *Point) Fail() bool {
	c := active.Load()
	if c == nil {
		return false
	}
	if c.TryFail > 0 && unit(p.draw(c)) < c.TryFail {
		p.fails.Add(1)
		return true
	}
	return false
}

// Wake reports whether a blocking wait at this point should return
// spuriously. Always false when chaos is disabled.
func (p *Point) Wake() bool {
	c := active.Load()
	if c == nil {
		return false
	}
	if c.SpuriousWake > 0 && unit(p.draw(c)) < c.SpuriousWake {
		p.wakes.Add(1)
		return true
	}
	return false
}

// PointStat is one row of a chaos report.
type PointStat struct {
	Name     string
	Calls    uint64
	Delays   uint64
	Preempts uint64
	Fails    uint64
	Wakes    uint64
}

// Injected sums the injections (everything but plain calls).
func (s PointStat) Injected() uint64 {
	return s.Delays + s.Preempts + s.Fails + s.Wakes
}

// Report returns per-point statistics for every point that was hit at
// least once, sorted by name. Counters accumulate from the last
// Enable.
func Report() []PointStat {
	regMu.Lock()
	defer regMu.Unlock()
	var out []PointStat
	for _, p := range points {
		calls := p.calls.Load()
		if calls == 0 {
			continue
		}
		out = append(out, PointStat{
			Name:     p.name,
			Calls:    calls,
			Delays:   p.delays.Load(),
			Preempts: p.preempts.Load(),
			Fails:    p.fails.Load(),
			Wakes:    p.wakes.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// splitmix64 is the standard 64-bit finalizer (Vigna); full-period,
// passes BigCrush when used as a counter-based generator.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a noise word to [0, 1).
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// fnv64 is FNV-1a, used only to fold point names into stream seeds.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
