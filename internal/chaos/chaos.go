// Package chaos is the repository's deterministic fault-injection
// substrate: named injection points threaded through the lock
// algorithms (internal/core, internal/locks), the waiting layer
// (internal/waiter, internal/futex) and the kvstore application, all
// governed by one seeded configuration.
//
// Design constraints, in order:
//
//  1. Disabled cost ~zero. Every hook reduces to a single atomic
//     pointer load and a predicted branch when no configuration is
//     installed, so the points can live permanently inside lock hot
//     paths (the same discipline as lockstat's nil-Stats fast path).
//  2. Deterministic per (seed, point, call index). Each point owns a
//     splitmix64 stream derived from the global seed and the point
//     name; the k-th hit of a point makes the same delay/preempt/fail
//     decisions in every run with that seed. The *interleaving* of
//     goroutines still varies run to run — determinism here means a
//     failing seed reproduces the same injection pressure, not the
//     same schedule.
//  3. Failure-only bias. Injections may add delays, force scheduler
//     preemptions at linearization points, report spurious wakeups, or
//     veto a TryLock/LockFor — all of which are legal behaviors of the
//     underlying primitives. An injection can therefore never *cause*
//     a correctness violation, only expose one.
//
// Typical use (cmd/torture -chaos):
//
//	chaos.Enable(chaos.DefaultConfig(seed))
//	defer chaos.Disable()
//	... run workload ...
//	for _, ps := range chaos.Report() { ... }
package chaos

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
)

// Config selects injection probabilities. Probabilities are in [0, 1]
// and are evaluated independently per hit.
type Config struct {
	// Seed drives every per-point decision stream.
	Seed uint64
	// Delay is the probability that a Hit injects a sleep of up to
	// MaxDelay (uniform, deterministic per stream).
	Delay float64
	// MaxDelay caps injected delays; zero selects 100µs.
	MaxDelay time.Duration
	// Preempt is the probability that a Hit forces a runtime.Gosched,
	// simulating preemption at the instrumented linearization point.
	Preempt float64
	// TryFail is the probability that Fail() vetoes a TryLock/LockFor
	// attempt (a spurious failure, always legal for those operations).
	TryFail float64
	// SpuriousWake is the probability that Wake() reports true,
	// causing an instrumented blocking wait to return spuriously.
	SpuriousWake float64
	// Clock is the sleeper for injected delays (nil = wall clock), so
	// chaos runs under a virtual clock sleep on virtual time instead of
	// stalling the process.
	Clock clock.Clock
}

// DefaultConfig returns the torture-harness defaults: aggressive
// preemption at linearization points, moderate delays, and occasional
// spurious failures/wakeups.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:         seed,
		Delay:        0.02,
		MaxDelay:     100 * time.Microsecond,
		Preempt:      0.05,
		TryFail:      0.02,
		SpuriousWake: 0.05,
	}
}

// active holds the installed configuration; nil means disabled. The
// single pointer load is the entire disabled-path cost of every hook.
var active atomic.Pointer[Config]

// registry tracks every point ever constructed so Enable can reset
// counters and Report can enumerate them.
var (
	regMu  sync.Mutex
	points []*Point
)

// Enable installs cfg and zeroes all point counters and the recent-
// injection ring. It replaces any previous configuration.
func Enable(cfg Config) {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 100 * time.Microsecond
	}
	regMu.Lock()
	for _, p := range points {
		p.reset()
	}
	regMu.Unlock()
	recentMu.Lock()
	recentSeq = 0
	recentMu.Unlock()
	c := cfg
	active.Store(&c)
}

// Disable uninstalls the configuration; all hooks revert to no-ops.
// Accumulated counters are retained until the next Enable so a report
// can be taken after the run.
func Disable() { active.Store(nil) }

// Enabled reports whether fault injection is currently armed.
func Enabled() bool { return active.Load() != nil }

// Seed returns the active seed (0 when disabled).
func Seed() uint64 {
	if c := active.Load(); c != nil {
		return c.Seed
	}
	return 0
}

// Point is a named injection point. Construct once at package scope
// (NewPoint) and call Hit/Fail/Wake from the instrumented code; the
// handle form keeps the armed path free of map lookups. A point that
// serves several call sites can hand each one a labeled Site so
// reports and stall dumps name the faulting site, not just the point.
type Point struct {
	name string
	hash uint64

	calls    atomic.Uint64
	delays   atomic.Uint64
	preempts atomic.Uint64
	fails    atomic.Uint64
	wakes    atomic.Uint64

	sites []*Site
}

// NewPoint registers and returns a new injection point. Names are
// dotted paths ("reciprocating.arrive"); each call site should own a
// distinct name so Report attributes injections usefully.
func NewPoint(name string) *Point {
	p := &Point{name: name, hash: fnv64(name)}
	regMu.Lock()
	points = append(points, p)
	regMu.Unlock()
	return p
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

func (p *Point) reset() {
	p.calls.Store(0)
	p.delays.Store(0)
	p.preempts.Store(0)
	p.fails.Store(0)
	p.wakes.Store(0)
	for _, s := range p.sites {
		s.delays.Store(0)
		s.preempts.Store(0)
		s.fails.Store(0)
		s.wakes.Store(0)
	}
}

// Site is a labeled view of a Point for one call site. All sites of a
// point share the point's decision stream and call counter — labeling
// never changes which injections fire for a given seed — but record
// which site an injection actually hit, so a stall or violation dump
// can name the faulting code path ("locks.trylock@CLH.TryLock") rather
// than just the seed. Construct at package scope with Point.Site.
type Site struct {
	p     *Point
	label string

	delays   atomic.Uint64
	preempts atomic.Uint64
	fails    atomic.Uint64
	wakes    atomic.Uint64
}

// Site registers and returns a labeled view of p for one call site.
func (p *Point) Site(label string) *Site {
	s := &Site{p: p, label: label}
	regMu.Lock()
	p.sites = append(p.sites, s)
	regMu.Unlock()
	return s
}

// Label returns the site's label.
func (s *Site) Label() string { return s.label }

// Hit is Point.Hit attributed to this site.
func (s *Site) Hit() { s.p.hit(s) }

// Fail is Point.Fail attributed to this site.
func (s *Site) Fail() bool { return s.p.fail(s) }

// Wake is Point.Wake attributed to this site.
func (s *Site) Wake() bool { return s.p.wake(s) }

// draw advances the point's decision stream by one call and returns
// the call's 64-bit noise word. splitmix64 over (seed ^ name-hash) +
// k·φ is the canonical counter-based stream: call k always draws the
// same word for a given seed and name.
func (p *Point) draw(c *Config) uint64 {
	k := p.calls.Add(1)
	return splitmix64((c.Seed ^ p.hash) + k*0x9e3779b97f4a7c15)
}

// Hit possibly injects a scheduler preemption and/or a bounded delay
// at this point. It is a no-op unless chaos is enabled.
func (p *Point) Hit() { p.hit(nil) }

func (p *Point) hit(s *Site) {
	c := active.Load()
	if c == nil {
		return
	}
	x := p.draw(c)
	if c.Preempt > 0 && unit(x) < c.Preempt {
		p.preempts.Add(1)
		record(p, s, "preempt")
		runtime.Gosched()
	}
	y := splitmix64(x)
	if c.Delay > 0 && unit(y) < c.Delay {
		p.delays.Add(1)
		record(p, s, "delay")
		d := time.Duration(splitmix64(y) % uint64(c.MaxDelay))
		clock.Or(c.Clock).Sleep(d)
	}
}

// Fail reports whether a TryLock/LockFor attempt at this point should
// fail spuriously. Always false when chaos is disabled.
func (p *Point) Fail() bool { return p.fail(nil) }

func (p *Point) fail(s *Site) bool {
	c := active.Load()
	if c == nil {
		return false
	}
	if c.TryFail > 0 && unit(p.draw(c)) < c.TryFail {
		p.fails.Add(1)
		record(p, s, "fail")
		return true
	}
	return false
}

// Wake reports whether a blocking wait at this point should return
// spuriously. Always false when chaos is disabled.
func (p *Point) Wake() bool { return p.wake(nil) }

func (p *Point) wake(s *Site) bool {
	c := active.Load()
	if c == nil {
		return false
	}
	if c.SpuriousWake > 0 && unit(p.draw(c)) < c.SpuriousWake {
		p.wakes.Add(1)
		record(p, s, "wake")
		return true
	}
	return false
}

// recent is a small ring of the latest injections, labeled by site,
// so a stall or violation dump can say which code paths chaos was
// perturbing when the run wedged. The ring is only touched when an
// injection actually fires, so the mutex is off the no-injection path.
const recentCap = 64

var (
	recentMu  sync.Mutex
	recentBuf [recentCap]Injection
	recentSeq uint64
)

// Injection is one recorded injection: which point fired, at which
// labeled site (empty for unlabeled Point calls), and what it did.
type Injection struct {
	// Seq numbers injections from the last Enable, starting at 1.
	Seq uint64
	// Point is the injection point's registered name.
	Point string
	// Site is the call-site label, or "" for unlabeled calls.
	Site string
	// Kind is one of "delay", "preempt", "fail", "wake".
	Kind string
}

// String renders the injection as "point@site:kind" for dumps.
func (i Injection) String() string {
	at := i.Point
	if i.Site != "" {
		at += "@" + i.Site
	}
	return at + ":" + i.Kind
}

// record notes an injection in the site's counters and the recent
// ring. Called only when an injection fires.
func record(p *Point, s *Site, kind string) {
	label := ""
	if s != nil {
		label = s.label
		switch kind {
		case "delay":
			s.delays.Add(1)
		case "preempt":
			s.preempts.Add(1)
		case "fail":
			s.fails.Add(1)
		case "wake":
			s.wakes.Add(1)
		}
	}
	recentMu.Lock()
	recentSeq++
	recentBuf[recentSeq%recentCap] = Injection{Seq: recentSeq, Point: p.name, Site: label, Kind: kind}
	recentMu.Unlock()
}

// Recent returns the most recent injections (up to the ring capacity),
// oldest first. Counters accumulate from the last Enable.
func Recent() []Injection {
	recentMu.Lock()
	defer recentMu.Unlock()
	n := recentSeq
	if n > recentCap {
		n = recentCap
	}
	out := make([]Injection, 0, n)
	for seq := recentSeq - n + 1; seq <= recentSeq; seq++ {
		out = append(out, recentBuf[seq%recentCap])
	}
	return out
}

// SiteStat is the per-site injection breakdown inside a PointStat.
type SiteStat struct {
	Label    string
	Delays   uint64
	Preempts uint64
	Fails    uint64
	Wakes    uint64
}

// Injected sums the site's injections.
func (s SiteStat) Injected() uint64 {
	return s.Delays + s.Preempts + s.Fails + s.Wakes
}

// PointStat is one row of a chaos report.
type PointStat struct {
	Name     string
	Calls    uint64
	Delays   uint64
	Preempts uint64
	Fails    uint64
	Wakes    uint64
	// Sites breaks the injections down by call-site label, listing
	// only sites that absorbed at least one injection.
	Sites []SiteStat
}

// Injected sums the injections (everything but plain calls).
func (s PointStat) Injected() uint64 {
	return s.Delays + s.Preempts + s.Fails + s.Wakes
}

// Report returns per-point statistics for every point that was hit at
// least once, sorted by name. Counters accumulate from the last
// Enable.
func Report() []PointStat {
	regMu.Lock()
	defer regMu.Unlock()
	var out []PointStat
	for _, p := range points {
		calls := p.calls.Load()
		if calls == 0 {
			continue
		}
		ps := PointStat{
			Name:     p.name,
			Calls:    calls,
			Delays:   p.delays.Load(),
			Preempts: p.preempts.Load(),
			Fails:    p.fails.Load(),
			Wakes:    p.wakes.Load(),
		}
		for _, s := range p.sites {
			ss := SiteStat{
				Label:    s.label,
				Delays:   s.delays.Load(),
				Preempts: s.preempts.Load(),
				Fails:    s.fails.Load(),
				Wakes:    s.wakes.Load(),
			}
			if ss.Injected() > 0 {
				ps.Sites = append(ps.Sites, ss)
			}
		}
		sort.Slice(ps.Sites, func(i, j int) bool { return ps.Sites[i].Label < ps.Sites[j].Label })
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// splitmix64 is the standard 64-bit finalizer (Vigna); full-period,
// passes BigCrush when used as a counter-based generator.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a noise word to [0, 1).
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// fnv64 is FNV-1a, used only to fold point names into stream seeds.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
