package chaos

import (
	"sync"
	"testing"
	"time"
)

// Disabled points must be strict no-ops: Hit returns immediately, Fail
// and Wake report false, and no counters move.
func TestDisabledIsNoOp(t *testing.T) {
	Disable()
	p := NewPoint("test.disabled")
	for i := 0; i < 1000; i++ {
		p.Hit()
		if p.Fail() {
			t.Fatal("Fail returned true while disabled")
		}
		if p.Wake() {
			t.Fatal("Wake returned true while disabled")
		}
	}
	if p.calls.Load() != 0 {
		t.Fatalf("disabled point advanced its stream: %d calls", p.calls.Load())
	}
	if Enabled() {
		t.Fatal("Enabled() true after Disable")
	}
	if Seed() != 0 {
		t.Fatalf("Seed() = %d while disabled, want 0", Seed())
	}
}

// The same seed must reproduce the same injection decisions, point by
// point and call by call — that is the property that makes a failing
// torture seed replayable.
func TestDeterministicPerSeed(t *testing.T) {
	p := NewPoint("test.determinism")
	cfg := Config{Seed: 99, TryFail: 0.3, SpuriousWake: 0.2}

	run := func() []bool {
		Enable(cfg)
		defer Disable()
		out := make([]bool, 0, 400)
		for i := 0; i < 200; i++ {
			out = append(out, p.Fail())
		}
		for i := 0; i < 200; i++ {
			out = append(out, p.Wake())
		}
		return out
	}

	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical seeds: %v vs %v", i, a[i], b[i])
		}
	}

	// A different seed must produce a different decision sequence (the
	// probability of 400 identical draws at these rates is negligible).
	cfg.Seed = 100
	c := run()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 99 and 100 produced identical decision streams")
	}
}

// Injection rates must track the configured probabilities and the
// report must attribute them to the right point.
func TestRatesAndReport(t *testing.T) {
	p := NewPoint("test.rates")
	Enable(Config{Seed: 7, TryFail: 0.5})
	defer Disable()
	const n = 4000
	fails := 0
	for i := 0; i < n; i++ {
		if p.Fail() {
			fails++
		}
	}
	if fails < n*4/10 || fails > n*6/10 {
		t.Fatalf("TryFail=0.5 produced %d/%d failures", fails, n)
	}
	for _, ps := range Report() {
		if ps.Name != "test.rates" {
			continue
		}
		if ps.Calls != n || ps.Fails != uint64(fails) {
			t.Fatalf("report = %+v, want calls=%d fails=%d", ps, n, fails)
		}
		if ps.Injected() != uint64(fails) {
			t.Fatalf("Injected() = %d, want %d", ps.Injected(), fails)
		}
		return
	}
	t.Fatal("test.rates missing from report")
}

// Enable must zero the counters of every registered point so reports
// cover exactly one run.
func TestEnableResetsCounters(t *testing.T) {
	p := NewPoint("test.reset")
	Enable(Config{Seed: 1, TryFail: 1})
	p.Fail()
	if p.calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", p.calls.Load())
	}
	Enable(Config{Seed: 1, TryFail: 1})
	defer Disable()
	if p.calls.Load() != 0 {
		t.Fatalf("calls = %d after re-Enable, want 0", p.calls.Load())
	}
}

// Hit with delays enabled must actually sleep but stay within the
// configured cap (loose upper check only: scheduling noise).
func TestHitDelayBounded(t *testing.T) {
	p := NewPoint("test.delay")
	Enable(Config{Seed: 3, Delay: 1, MaxDelay: 100 * time.Microsecond})
	defer Disable()
	start := time.Now()
	for i := 0; i < 50; i++ {
		p.Hit()
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("50 capped delays took %v", el)
	}
	if p.delays.Load() == 0 {
		t.Fatal("Delay=1 never injected a delay")
	}
}

// Concurrent hits on one point must be race-free (the stream index is
// an atomic counter; decisions stay deterministic per index even if
// indices are claimed by different goroutines).
func TestConcurrentHits(t *testing.T) {
	p := NewPoint("test.concurrent")
	Enable(Config{Seed: 5, Preempt: 0.2, TryFail: 0.2, SpuriousWake: 0.2})
	defer Disable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p.Hit()
				p.Fail()
				p.Wake()
			}
		}()
	}
	wg.Wait()
	if got := p.calls.Load(); got != 8*500*3 {
		t.Fatalf("calls = %d, want %d", got, 8*500*3)
	}
}

// Sites share their point's decision stream — labeling a call site must
// never change which injections fire for a seed — while attributing
// each injection to the site that absorbed it.
func TestSiteSharesStreamAndAttributes(t *testing.T) {
	p := NewPoint("test.sites")
	sa := p.Site("SiteA")
	sb := p.Site("SiteB")
	cfg := Config{Seed: 21, TryFail: 0.4}

	// Baseline: decisions drawn through the bare point.
	Enable(cfg)
	bare := make([]bool, 400)
	for i := range bare {
		bare[i] = p.Fail()
	}
	Disable()

	// Same seed, same draws, but alternating through the two sites.
	Enable(cfg)
	defer Disable()
	var aFails, bFails uint64
	for i := range bare {
		var got bool
		if i%2 == 0 {
			got = sa.Fail()
		} else {
			got = sb.Fail()
		}
		if got != bare[i] {
			t.Fatalf("draw %d: site-routed decision %v differs from bare point's %v", i, got, bare[i])
		}
		if got {
			if i%2 == 0 {
				aFails++
			} else {
				bFails++
			}
		}
	}
	if sa.fails.Load() != aFails || sb.fails.Load() != bFails {
		t.Fatalf("site counters (%d, %d) != observed (%d, %d)",
			sa.fails.Load(), sb.fails.Load(), aFails, bFails)
	}
	if aFails == 0 || bFails == 0 {
		t.Fatalf("want injections at both sites, got (%d, %d)", aFails, bFails)
	}

	// The report breaks the point down by site.
	for _, ps := range Report() {
		if ps.Name != "test.sites" {
			continue
		}
		if ps.Fails != aFails+bFails {
			t.Fatalf("point fails = %d, want %d", ps.Fails, aFails+bFails)
		}
		want := map[string]uint64{"SiteA": aFails, "SiteB": bFails}
		for _, ss := range ps.Sites {
			if ss.Fails != want[ss.Label] {
				t.Fatalf("site %q fails = %d, want %d", ss.Label, ss.Fails, want[ss.Label])
			}
			delete(want, ss.Label)
		}
		if len(want) != 0 {
			t.Fatalf("report missing sites: %v", want)
		}
		return
	}
	t.Fatal("test.sites missing from report")
}

// The recent-injection ring must record fired injections oldest-first
// with their site labels, cap at the ring size, and reset on Enable.
func TestRecentRing(t *testing.T) {
	p := NewPoint("test.recent")
	s := p.Site("Recent.Fail")
	Enable(Config{Seed: 2, TryFail: 1})
	fired := 0
	for i := 0; i < recentCap+10; i++ {
		if s.Fail() {
			fired++
		}
	}
	if fired != recentCap+10 {
		t.Fatalf("TryFail=1 fired %d/%d", fired, recentCap+10)
	}
	recent := Recent()
	if len(recent) != recentCap {
		t.Fatalf("ring holds %d entries, want %d", len(recent), recentCap)
	}
	for i, inj := range recent {
		if i > 0 && inj.Seq != recent[i-1].Seq+1 {
			t.Fatalf("ring not oldest-first at %d: %d after %d", i, inj.Seq, recent[i-1].Seq)
		}
		if inj.Point != "test.recent" || inj.Site != "Recent.Fail" || inj.Kind != "fail" {
			t.Fatalf("entry %d = %+v", i, inj)
		}
	}
	if last := recent[len(recent)-1]; last.Seq != uint64(fired) {
		t.Fatalf("newest Seq = %d, want %d", last.Seq, fired)
	}
	if got, want := recent[0].String(), "test.recent@Recent.Fail:fail"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}

	// Unlabeled point calls record with an empty site.
	p.Fail()
	recent = Recent()
	if last := recent[len(recent)-1]; last.Site != "" || last.String() != "test.recent:fail" {
		t.Fatalf("unlabeled entry = %+v (%s)", last, last.String())
	}

	// Enable resets the ring and site counters.
	Enable(Config{Seed: 2, TryFail: 1})
	defer Disable()
	if got := Recent(); len(got) != 0 {
		t.Fatalf("ring not reset by Enable: %d entries", len(got))
	}
	if s.fails.Load() != 0 {
		t.Fatalf("site counter not reset by Enable: %d", s.fails.Load())
	}
}
