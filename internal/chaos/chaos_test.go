package chaos

import (
	"sync"
	"testing"
	"time"
)

// Disabled points must be strict no-ops: Hit returns immediately, Fail
// and Wake report false, and no counters move.
func TestDisabledIsNoOp(t *testing.T) {
	Disable()
	p := NewPoint("test.disabled")
	for i := 0; i < 1000; i++ {
		p.Hit()
		if p.Fail() {
			t.Fatal("Fail returned true while disabled")
		}
		if p.Wake() {
			t.Fatal("Wake returned true while disabled")
		}
	}
	if p.calls.Load() != 0 {
		t.Fatalf("disabled point advanced its stream: %d calls", p.calls.Load())
	}
	if Enabled() {
		t.Fatal("Enabled() true after Disable")
	}
	if Seed() != 0 {
		t.Fatalf("Seed() = %d while disabled, want 0", Seed())
	}
}

// The same seed must reproduce the same injection decisions, point by
// point and call by call — that is the property that makes a failing
// torture seed replayable.
func TestDeterministicPerSeed(t *testing.T) {
	p := NewPoint("test.determinism")
	cfg := Config{Seed: 99, TryFail: 0.3, SpuriousWake: 0.2}

	run := func() []bool {
		Enable(cfg)
		defer Disable()
		out := make([]bool, 0, 400)
		for i := 0; i < 200; i++ {
			out = append(out, p.Fail())
		}
		for i := 0; i < 200; i++ {
			out = append(out, p.Wake())
		}
		return out
	}

	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical seeds: %v vs %v", i, a[i], b[i])
		}
	}

	// A different seed must produce a different decision sequence (the
	// probability of 400 identical draws at these rates is negligible).
	cfg.Seed = 100
	c := run()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 99 and 100 produced identical decision streams")
	}
}

// Injection rates must track the configured probabilities and the
// report must attribute them to the right point.
func TestRatesAndReport(t *testing.T) {
	p := NewPoint("test.rates")
	Enable(Config{Seed: 7, TryFail: 0.5})
	defer Disable()
	const n = 4000
	fails := 0
	for i := 0; i < n; i++ {
		if p.Fail() {
			fails++
		}
	}
	if fails < n*4/10 || fails > n*6/10 {
		t.Fatalf("TryFail=0.5 produced %d/%d failures", fails, n)
	}
	for _, ps := range Report() {
		if ps.Name != "test.rates" {
			continue
		}
		if ps.Calls != n || ps.Fails != uint64(fails) {
			t.Fatalf("report = %+v, want calls=%d fails=%d", ps, n, fails)
		}
		if ps.Injected() != uint64(fails) {
			t.Fatalf("Injected() = %d, want %d", ps.Injected(), fails)
		}
		return
	}
	t.Fatal("test.rates missing from report")
}

// Enable must zero the counters of every registered point so reports
// cover exactly one run.
func TestEnableResetsCounters(t *testing.T) {
	p := NewPoint("test.reset")
	Enable(Config{Seed: 1, TryFail: 1})
	p.Fail()
	if p.calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", p.calls.Load())
	}
	Enable(Config{Seed: 1, TryFail: 1})
	defer Disable()
	if p.calls.Load() != 0 {
		t.Fatalf("calls = %d after re-Enable, want 0", p.calls.Load())
	}
}

// Hit with delays enabled must actually sleep but stay within the
// configured cap (loose upper check only: scheduling noise).
func TestHitDelayBounded(t *testing.T) {
	p := NewPoint("test.delay")
	Enable(Config{Seed: 3, Delay: 1, MaxDelay: 100 * time.Microsecond})
	defer Disable()
	start := time.Now()
	for i := 0; i < 50; i++ {
		p.Hit()
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("50 capped delays took %v", el)
	}
	if p.delays.Load() == 0 {
		t.Fatal("Delay=1 never injected a delay")
	}
}

// Concurrent hits on one point must be race-free (the stream index is
// an atomic counter; decisions stay deterministic per index even if
// indices are claimed by different goroutines).
func TestConcurrentHits(t *testing.T) {
	p := NewPoint("test.concurrent")
	Enable(Config{Seed: 5, Preempt: 0.2, TryFail: 0.2, SpuriousWake: 0.2})
	defer Disable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p.Hit()
				p.Fail()
				p.Wake()
			}
		}()
	}
	wg.Wait()
	if got := p.calls.Load(); got != 8*500*3 {
		t.Fatalf("calls = %d, want %d", got, 8*500*3)
	}
}
