// Package popstack implements the concurrent pop-stack of Avis and
// Newborn: a stack supporting only Push and DetachAll ("detach the
// whole stack at once"). The Reciprocating Lock's arrival segment is a
// pop-stack — the restriction to detach-all (never pop-one) is what
// makes the structure immune to the A-B-A pathology that plagues
// Treiber stacks with free-running pops (§2).
//
// Two flavors are provided:
//
//   - Stack[T]: a general-purpose boxed pop-stack with explicit nodes
//     (CAS push, exchange detach). Used by tests and tools.
//   - IntrusiveStack: the implicit-chain form the locks actually use,
//     where Push is a single wait-free atomic exchange and each pusher
//     learns only its immediate neighbor — no next pointers exist in
//     memory at all, exactly matching the paper's arrival word. The
//     chain is reconstructed by the consumers as succession proceeds.
package popstack

import "sync/atomic"

type node[T any] struct {
	v    T
	next *node[T]
}

// Stack is a concurrent pop-stack with explicit nodes. The zero value
// is an empty stack ready for use.
type Stack[T any] struct {
	top atomic.Pointer[node[T]]
}

// Push prepends v. It may retry under contention (lock-free, not
// wait-free; the locks use IntrusiveStack to get wait-freedom).
func (s *Stack[T]) Push(v T) {
	n := &node[T]{v: v}
	for {
		old := s.top.Load()
		n.next = old
		if s.top.CompareAndSwap(old, n) {
			return
		}
	}
}

// DetachAll atomically removes the entire stack and returns its
// elements in LIFO order (most recently pushed first). Because the
// whole chain is privatized by a single exchange, no A-B-A hazard
// exists.
func (s *Stack[T]) DetachAll() []T {
	head := s.top.Swap(nil)
	var out []T
	for n := head; n != nil; n = n.next {
		out = append(out, n.v)
	}
	return out
}

// Empty reports whether the stack was empty at the instant of the load.
func (s *Stack[T]) Empty() bool { return s.top.Load() == nil }

// IntrusiveStack is the implicit-chain pop-stack used by the lock
// algorithms: pushers install their element address with one atomic
// exchange and receive the previous top — their admission-order
// successor — as the return value. No next field is ever written, so a
// detached segment can only be traversed by relaying each element's
// neighbor through some out-of-band channel (the Gate/eos values in the
// locks).
type IntrusiveStack[T any] struct {
	top atomic.Pointer[T]
}

// Push installs e as the new top with a single wait-free exchange and
// returns the previous top (nil if the stack was empty). The caller
// owns the returned linkage information.
func (s *IntrusiveStack[T]) Push(e *T) *T { return s.top.Swap(e) }

// DetachAll privatizes the stack with a single exchange, leaving it
// empty, and returns the most recently pushed element (the head of the
// implicit chain), or nil.
func (s *IntrusiveStack[T]) DetachAll() *T { return s.top.Swap(nil) }

// Top returns the current top without modifying the stack.
func (s *IntrusiveStack[T]) Top() *T { return s.top.Load() }

// CompareAndSwap exposes CAS on the top for lock fast paths.
func (s *IntrusiveStack[T]) CompareAndSwap(old, new *T) bool {
	return s.top.CompareAndSwap(old, new)
}

// Swap exchanges the top for e and returns the previous value.
func (s *IntrusiveStack[T]) Swap(e *T) *T { return s.top.Swap(e) }
