package popstack

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestStackLIFOWithinDetach(t *testing.T) {
	var s Stack[int]
	for i := 0; i < 10; i++ {
		s.Push(i)
	}
	got := s.DetachAll()
	if len(got) != 10 {
		t.Fatalf("detached %d elements, want 10", len(got))
	}
	for i, v := range got {
		if v != 9-i {
			t.Fatalf("position %d = %d, want %d (LIFO)", i, v, 9-i)
		}
	}
	if !s.Empty() {
		t.Fatal("stack not empty after DetachAll")
	}
}

func TestDetachAllOnEmpty(t *testing.T) {
	var s Stack[string]
	if got := s.DetachAll(); len(got) != 0 {
		t.Fatalf("DetachAll on empty returned %v", got)
	}
}

// Multiset preservation: everything pushed by concurrent producers is
// recovered exactly once across interleaved detaches.
func TestConcurrentPushDetachMultiset(t *testing.T) {
	var s Stack[int]
	const producers = 8
	const perProducer = 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				s.Push(p*perProducer + i)
			}
		}()
	}
	var mu sync.Mutex
	var all []int
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		batch := s.DetachAll()
		mu.Lock()
		all = append(all, batch...)
		mu.Unlock()
		select {
		case <-done:
			all = append(all, s.DetachAll()...)
			goto verify
		default:
		}
	}
verify:
	if len(all) != producers*perProducer {
		t.Fatalf("recovered %d elements, want %d", len(all), producers*perProducer)
	}
	sort.Ints(all)
	for i, v := range all {
		if v != i {
			t.Fatalf("element %d missing or duplicated (saw %d)", i, v)
		}
	}
}

// Per-producer suborder: within one detached batch, a single producer's
// elements must appear in reverse push order (stack semantics survive
// interleaving).
func TestPerProducerOrderWithinBatch(t *testing.T) {
	var s Stack[[2]int] // {producer, seq}
	const producers = 4
	const perProducer = 5000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				s.Push([2]int{p, i})
			}
		}()
	}
	wg.Wait()
	batch := s.DetachAll()
	lastSeq := map[int]int{}
	for _, e := range batch {
		p, seq := e[0], e[1]
		if prev, ok := lastSeq[p]; ok && seq >= prev {
			t.Fatalf("producer %d sequence not descending: %d after %d", p, seq, prev)
		}
		lastSeq[p] = seq
	}
}

// Property test against a model: a serial sequence of pushes and
// detaches behaves like a slice-backed stack.
func TestStackMatchesModel(t *testing.T) {
	err := quick.Check(func(ops []uint8) bool {
		var s Stack[int]
		var model []int
		next := 0
		for _, op := range ops {
			if op%4 == 0 { // 25% detach
				got := s.DetachAll()
				want := make([]int, 0, len(model))
				for i := len(model) - 1; i >= 0; i-- {
					want = append(want, model[i])
				}
				if len(got) != len(want) {
					return false
				}
				for i := range got {
					if got[i] != want[i] {
						return false
					}
				}
				model = model[:0]
			} else {
				s.Push(next)
				model = append(model, next)
				next++
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

type elem struct {
	id   int
	prev *elem
}

func TestIntrusivePushReturnsNeighbor(t *testing.T) {
	var s IntrusiveStack[elem]
	es := make([]*elem, 5)
	for i := range es {
		es[i] = &elem{id: i}
	}
	if got := s.Push(es[0]); got != nil {
		t.Fatalf("first push returned %v, want nil", got)
	}
	for i := 1; i < len(es); i++ {
		got := s.Push(es[i])
		if got != es[i-1] {
			t.Fatalf("push %d returned element %v, want previous top %d", i, got, i-1)
		}
		es[i].prev = got
	}
	if s.Top() != es[4] {
		t.Fatal("Top is not the most recent pusher")
	}
	head := s.DetachAll()
	if head != es[4] {
		t.Fatal("DetachAll did not return most recent pusher")
	}
	if s.Top() != nil {
		t.Fatal("stack not empty after DetachAll")
	}
	// Implicit chain reconstruction: following prev pointers captured
	// at push time walks the whole segment.
	seen := 0
	for e := head; e != nil; e = e.prev {
		seen++
	}
	if seen != 5 {
		t.Fatalf("implicit chain length %d, want 5", seen)
	}
}

func TestIntrusiveCASFastPath(t *testing.T) {
	var s IntrusiveStack[elem]
	e := &elem{id: 1}
	if !s.CompareAndSwap(nil, e) {
		t.Fatal("CAS on empty failed")
	}
	if s.CompareAndSwap(nil, &elem{}) {
		t.Fatal("CAS should fail when top mismatches")
	}
	if got := s.Swap(nil); got != e {
		t.Fatalf("Swap returned %v", got)
	}
}

// Concurrent intrusive pushes: every pusher's returned neighbor chain,
// stitched together, must reconstruct the full set with no loss.
func TestIntrusiveConcurrentChainComplete(t *testing.T) {
	var s IntrusiveStack[elem]
	const n = 64
	var wg sync.WaitGroup
	prevs := make([]*elem, n)
	elems := make([]*elem, n)
	for i := 0; i < n; i++ {
		elems[i] = &elem{id: i}
	}
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			prevs[i] = s.Push(elems[i])
		}()
	}
	wg.Wait()
	// Build successor map: element -> what its pusher saw below it.
	below := map[*elem]*elem{}
	var root int
	roots := 0
	for i := 0; i < n; i++ {
		below[elems[i]] = prevs[i]
		if prevs[i] == nil {
			root = i
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("%d elements saw an empty stack, want exactly 1", roots)
	}
	_ = root
	head := s.DetachAll()
	count := 0
	for e := head; e != nil; e = below[e] {
		count++
		if count > n {
			t.Fatal("cycle in implicit chain")
		}
	}
	if count != n {
		t.Fatalf("chain visits %d elements, want %d", count, n)
	}
}
