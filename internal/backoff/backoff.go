// Package backoff implements the repository's one retry-delay policy:
// capped decorrelated jitter (the "decorrelated jitter" variant from
// the AWS architecture blog's backoff study), seeded and fully
// deterministic.
//
// Two retry paths share it:
//
//   - bounded.Polling, the TryLock-polling fallback of the bounded
//     acquisition contract, uses it for its sleep schedule once an
//     episode escalates past hot spinning.
//   - the cluster simulation's lease client (internal/cluster) uses it
//     for lease re-acquisition after a denial or an expiry.
//
// The package computes durations only — it never sleeps — so the same
// policy drives real time.Sleep retries and simulated-time retries
// under a discrete-event scheduler. Determinism is the point: given a
// seed, the k-th Next() is the same duration in every run, so a
// failing seed reproduces the same retry pressure.
//
// Decorrelated jitter grows the expected delay geometrically while
// keeping every delay uniformly spread over [Base, prev·Mult], which
// breaks retry synchronization (thundering herds re-colliding on the
// same schedule) without the dead-time cost of full exponential
// backoff; the cap bounds the worst-case reacquisition latency.
package backoff

import (
	"time"

	"repro/internal/xrand"
)

// Policy bounds a backoff sequence. The zero value selects defaults.
//
// Boundary behavior, pinned by tests because the virtual-time
// conformance schedules depend on it:
//
//   - The first Next() is exactly Base — no jitter on the first retry,
//     so livelock checkers have a guaranteed lower bound and the first
//     delay of a seeded schedule is seed-independent.
//   - Cap == Base degenerates sanely: every delay is exactly Base
//     (the draw span collapses to zero; the PRNG is never consulted).
//   - Mult < 0 is the zero-jitter sentinel, mirroring the cluster
//     sim's NetJitter < 0 convention: every delay is exactly Base and
//     the PRNG is never consulted, so the sequence is a pure constant
//     schedule independent of seed. Distinct from Mult == 0 (a zero
//     field), which selects the default multiplier.
type Policy struct {
	// Base is the minimum (and first) delay. Default 4ms.
	Base time.Duration
	// Cap bounds every delay. Default 64ms.
	Cap time.Duration
	// Mult is the decorrelation multiplier: delay k+1 is drawn
	// uniformly from [Base, delay_k · Mult]. Default 3. Negative
	// values select the zero-jitter sentinel (every delay == Base).
	Mult int
}

// WithDefaults fills zero fields with the package defaults. Negative
// Mult (the zero-jitter sentinel) is preserved, not defaulted.
func (p Policy) WithDefaults() Policy {
	if p.Base <= 0 {
		p.Base = 4 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 64 * time.Millisecond
	}
	if p.Cap < p.Base {
		p.Cap = p.Base
	}
	if p.Mult >= 0 && p.Mult < 2 {
		p.Mult = 3
	}
	return p
}

// Exp returns the capped exponential (jitter-free) delay for attempt n
// (n ≥ 0): min(Cap, Base·2ⁿ). This is the deterministic schedule
// waiter.PolicyBackoff follows; it is exposed here so the two packages
// share one tested implementation of the capped-doubling math.
func (p Policy) Exp(n int) time.Duration {
	p = p.WithDefaults()
	if n < 0 {
		n = 0
	}
	// Beyond 62 doublings any Base ≥ 1ns has saturated the cap; clamp
	// before shifting to avoid overflow.
	if n > 62 || p.Base<<uint(n) <= 0 || p.Base<<uint(n) > p.Cap {
		return p.Cap
	}
	return p.Base << uint(n)
}

// Backoff is one seeded retry sequence. Not safe for concurrent use;
// construct one per waiter (they are two words plus the policy).
type Backoff struct {
	p        Policy
	rng      xrand.XorShift64
	prev     time.Duration
	attempts int
}

// New returns a sequence governed by p (zero fields defaulted),
// deterministic for the given seed.
func New(p Policy, seed uint64) *Backoff {
	b := &Backoff{p: p.WithDefaults()}
	b.rng = *xrand.NewXorShift64(seed)
	return b
}

// Next returns the delay to wait before the next retry and advances
// the sequence: the first call returns Base exactly (fast first retry,
// and a guaranteed lower bound the livelock checkers can assert
// against); call k+1 draws uniformly from [Base, min(Cap, delay_k·Mult)].
func (b *Backoff) Next() time.Duration {
	b.attempts++
	if b.prev == 0 || b.p.Mult < 0 {
		b.prev = b.p.Base
		return b.prev
	}
	hi := b.prev * time.Duration(b.p.Mult)
	if hi > b.p.Cap {
		hi = b.p.Cap
	}
	d := b.p.Base
	if span := int64(hi - b.p.Base); span > 0 {
		d += time.Duration(b.rng.Uint64() % uint64(span+1))
	}
	b.prev = d
	return d
}

// Attempts reports how many delays have been drawn since the last
// Reset.
func (b *Backoff) Attempts() int { return b.attempts }

// Reset rewinds the sequence to its initial state (the next delay is
// Base again) without reseeding the generator, so a successful
// acquisition starts the next episode fast while the overall stream
// stays deterministic.
func (b *Backoff) Reset() {
	b.prev = 0
	b.attempts = 0
}
