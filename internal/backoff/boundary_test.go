package backoff

import (
	"testing"
	"time"
)

// Boundary-behavior pins (see the Policy doc block): the virtual-time
// conformance schedules and the cluster sim's livelock checkers depend
// on these exact semantics, so each is pinned by a test rather than
// left to the implementation's discretion.

// The first Next() is exactly Base — before and after Reset — for any
// seed: the first delay of a seeded schedule is seed-independent.
func TestFirstDelayIsExactlyBase(t *testing.T) {
	p := Policy{Base: 3 * time.Millisecond, Cap: 48 * time.Millisecond}
	for seed := uint64(1); seed <= 20; seed++ {
		b := New(p, seed)
		if d := b.Next(); d != p.Base {
			t.Fatalf("seed %d: first delay %v, want exactly Base %v", seed, d, p.Base)
		}
		for i := 0; i < 5; i++ {
			b.Next()
		}
		b.Reset()
		if d := b.Next(); d != p.Base {
			t.Fatalf("seed %d: first delay after Reset %v, want exactly Base %v", seed, d, p.Base)
		}
	}
}

// Cap == Base collapses the draw span to zero: every delay is exactly
// Base, and — because the PRNG is never consulted — the sequence is
// identical across seeds.
func TestCapEqualsBaseDegeneratesSanely(t *testing.T) {
	p := Policy{Base: 2 * time.Millisecond, Cap: 2 * time.Millisecond}
	for _, seed := range []uint64{1, 7, 12345} {
		b := New(p, seed)
		for i := 0; i < 50; i++ {
			if d := b.Next(); d != p.Base {
				t.Fatalf("seed %d draw %d: delay %v, want constant Base %v", seed, i, d, p.Base)
			}
		}
	}
}

// Mult < 0 is the zero-jitter sentinel (mirroring the cluster sim's
// NetJitter < 0 convention): every delay is exactly Base regardless of
// seed, even with a wide-open Cap that would otherwise draw jitter.
func TestZeroJitterSentinel(t *testing.T) {
	p := Policy{Base: 5 * time.Millisecond, Cap: time.Second, Mult: -1}
	if got := p.WithDefaults().Mult; got >= 0 {
		t.Fatalf("WithDefaults rewrote sentinel Mult -1 to %d", got)
	}
	for _, seed := range []uint64{1, 99, 1 << 40} {
		b := New(p, seed)
		for i := 0; i < 50; i++ {
			if d := b.Next(); d != p.Base {
				t.Fatalf("seed %d draw %d: delay %v, want constant Base %v", seed, i, d, p.Base)
			}
		}
	}
}

// Mult == 0 is a zero field, not the sentinel: it selects the default
// multiplier and the sequence does jitter past the first draw.
func TestMultZeroIsDefaultNotSentinel(t *testing.T) {
	p := Policy{Base: time.Millisecond, Cap: 64 * time.Millisecond, Mult: 0}
	if got := p.WithDefaults().Mult; got != 3 {
		t.Fatalf("WithDefaults(Mult=0) = %d, want default 3", got)
	}
	b := New(p, 42)
	b.Next() // Base, pinned above
	varied := false
	for i := 0; i < 50; i++ {
		if b.Next() != p.Base {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("Mult=0 sequence never left Base: sentinel semantics leaked into the zero value")
	}
}
