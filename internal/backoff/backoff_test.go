package backoff

import (
	"testing"
	"time"
)

// TestDeterministic pins the seed contract: the same seed yields the
// same sequence, different seeds diverge.
func TestDeterministic(t *testing.T) {
	a := New(Policy{}, 42)
	b := New(Policy{}, 42)
	c := New(Policy{}, 43)
	var diverged bool
	for i := 0; i < 64; i++ {
		da, db, dc := a.Next(), b.Next(), c.Next()
		if da != db {
			t.Fatalf("draw %d: seed 42 gave %v and %v", i, da, db)
		}
		if da != dc {
			diverged = true
		}
	}
	if !diverged {
		t.Fatalf("seeds 42 and 43 produced identical 64-draw sequences")
	}
}

// TestBounds verifies every delay stays in [Base, Cap], the first is
// exactly Base, and each delay is at most Mult× its predecessor.
func TestBounds(t *testing.T) {
	p := Policy{Base: 2 * time.Millisecond, Cap: 50 * time.Millisecond, Mult: 3}
	b := New(p, 7)
	prev := time.Duration(0)
	for i := 0; i < 200; i++ {
		d := b.Next()
		if i == 0 && d != p.Base {
			t.Fatalf("first delay = %v, want Base %v", d, p.Base)
		}
		if d < p.Base || d > p.Cap {
			t.Fatalf("draw %d: delay %v outside [%v, %v]", i, d, p.Base, p.Cap)
		}
		if prev > 0 && d > prev*time.Duration(p.Mult) {
			t.Fatalf("draw %d: delay %v > %d× previous %v", i, d, p.Mult, prev)
		}
		prev = d
	}
	if b.Attempts() != 200 {
		t.Fatalf("Attempts = %d, want 200", b.Attempts())
	}
}

// TestGrowth checks the sequence actually escalates: over many draws
// the mean delay must clearly exceed Base (decorrelated jitter grows
// geometrically in expectation until the cap).
func TestGrowth(t *testing.T) {
	p := Policy{Base: time.Millisecond, Cap: 100 * time.Millisecond, Mult: 3}
	b := New(p, 11)
	var sum time.Duration
	n := 100
	for i := 0; i < n; i++ {
		sum += b.Next()
	}
	if mean := sum / time.Duration(n); mean < 5*p.Base {
		t.Fatalf("mean delay %v over %d draws; escalation missing (Base %v)", mean, n, p.Base)
	}
}

// TestReset rewinds to a Base first-retry without reseeding.
func TestReset(t *testing.T) {
	b := New(Policy{}, 3)
	for i := 0; i < 10; i++ {
		b.Next()
	}
	b.Reset()
	if b.Attempts() != 0 {
		t.Fatalf("Attempts after Reset = %d", b.Attempts())
	}
	if d := b.Next(); d != b.p.Base {
		t.Fatalf("first delay after Reset = %v, want Base %v", d, b.p.Base)
	}
}

// TestExp pins the capped-doubling schedule shared with
// waiter.PolicyBackoff.
func TestExp(t *testing.T) {
	p := Policy{Base: time.Microsecond, Cap: 256 * time.Microsecond, Mult: 3}
	for n, want := range []time.Duration{
		1 * time.Microsecond, 2 * time.Microsecond, 4 * time.Microsecond,
		8 * time.Microsecond, 16 * time.Microsecond, 32 * time.Microsecond,
		64 * time.Microsecond, 128 * time.Microsecond, 256 * time.Microsecond,
		256 * time.Microsecond, // capped
	} {
		if got := p.Exp(n); got != want {
			t.Fatalf("Exp(%d) = %v, want %v", n, got, want)
		}
	}
	if got := p.Exp(-1); got != p.Base {
		t.Fatalf("Exp(-1) = %v, want Base", got)
	}
	if got := p.Exp(200); got != p.Cap {
		t.Fatalf("Exp(200) = %v, want Cap", got)
	}
	// Defaults fill in.
	if got := (Policy{}).Exp(0); got != 4*time.Millisecond {
		t.Fatalf("zero-policy Exp(0) = %v, want default Base", got)
	}
}
