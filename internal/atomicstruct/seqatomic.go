package atomicstruct

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/rwlock"
)

// SeqStripe is the optimistic-read variant of Stripe: the same
// address-hashed lock table, but each stripe lock is wrapped in a
// rwlock.Seqlock, so writers serialize through the underlying catalog
// lock (bumping the version stamp) while Load runs without writing any
// shared state at all. This is the repository's exemplar of the
// CapOptimisticRead path: the §7.2 workload with its read side lifted
// off the lock word entirely.
type SeqStripe struct {
	locks []*rwlock.Seqlock
}

// NewSeqStripe builds a stripe of n seqlocks, each over a fresh lock
// from mk. mk must return a TryLock-capable lock (every catalog entry
// qualifies); a lock without the doorway panics here, at construction.
// n rounds up to a power of two, like NewStripe.
func NewSeqStripe(n int, mk func() sync.Locker) *SeqStripe {
	if n < 1 {
		n = 1
	}
	size := 1
	for size < n {
		size <<= 1
	}
	s := &SeqStripe{locks: make([]*rwlock.Seqlock, size)}
	for i := range s.locks {
		s.locks[i] = rwlock.NewSeqlock(mk())
	}
	return s
}

// forAddr selects the covering seqlock for an object address (same
// Fibonacci mixing as Stripe.forAddr).
func (s *SeqStripe) forAddr(p unsafe.Pointer) *rwlock.Seqlock {
	h := uintptr(p) * 0x9e3779b97f4a7c15
	return s.locks[(h>>48)&uintptr(len(s.locks)-1)]
}

// Retries sums the optimistic-read retries absorbed across the stripe
// (diagnostics; a read-mostly workload should keep this near zero).
func (s *SeqStripe) Retries() uint64 {
	var n uint64
	for _, l := range s.locks {
		n += l.Retries()
	}
	return n
}

// SeqAtomic is a seqlock-covered atomic value: Store, Exchange and
// CompareExchange acquire the covering lock exactly like Atomic, but
// Load is an optimistic read section — it copies the value word by
// word with atomic loads and validates the version stamp, retrying
// under the combinator's bounded policy on conflict. Readers therefore
// never write shared state, which is the entire throughput argument of
// the optimistic read path.
//
// T must be word-sized-compatible: pointer-free (a torn pointer
// assembled from halves of two generations would be unsafe to
// materialize) and a multiple of 4 bytes (the copy granularity). NewSeq
// checks both and panics otherwise.
type SeqAtomic[T comparable] struct {
	stripe *SeqStripe
	words  uintptr
	val    T
}

// NewSeq creates a seqlock-covered atomic value on the stripe.
func NewSeq[T comparable](stripe *SeqStripe) *SeqAtomic[T] {
	var zero T
	if err := seqCompatible(reflect.TypeOf(zero)); err != nil {
		panic(fmt.Sprintf("atomicstruct: NewSeq[%T]: %v", zero, err))
	}
	return &SeqAtomic[T]{stripe: stripe, words: unsafe.Sizeof(zero) / 4}
}

// seqCompatible reports why t cannot be read optimistically, nil when
// it can.
func seqCompatible(t reflect.Type) error {
	if t.Size()%4 != 0 {
		return fmt.Errorf("size %d is not a multiple of the 4-byte copy word", t.Size())
	}
	if hasPointers(t) {
		return fmt.Errorf("type contains pointers, which cannot be copied torn")
	}
	return nil
}

func hasPointers(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Ptr, reflect.UnsafePointer, reflect.Chan, reflect.Func,
		reflect.Interface, reflect.Map, reflect.Slice, reflect.String:
		return true
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hasPointers(t.Field(i).Type) {
				return true
			}
		}
		return false
	case reflect.Array:
		return t.Len() > 0 && hasPointers(t.Elem())
	default:
		return false
	}
}

func (a *SeqAtomic[T]) lock() *rwlock.Seqlock {
	return a.stripe.forAddr(unsafe.Pointer(a))
}

// copyOut copies the value into dst with word-atomic loads. The copy
// may be torn; callers validate the stamp before trusting it (atomic
// granularity is what keeps a torn copy race-detector-clean and
// GC-safe rather than correct).
func (a *SeqAtomic[T]) copyOut(dst *T) {
	s := unsafe.Pointer(&a.val)
	d := unsafe.Pointer(dst)
	for i := uintptr(0); i < a.words; i++ {
		*(*uint32)(unsafe.Add(d, i*4)) = atomic.LoadUint32((*uint32)(unsafe.Add(s, i*4)))
	}
}

// copyIn installs *src with word-atomic stores; the caller holds the
// covering seqlock's write side.
func (a *SeqAtomic[T]) copyIn(src *T) {
	s := unsafe.Pointer(src)
	d := unsafe.Pointer(&a.val)
	for i := uintptr(0); i < a.words; i++ {
		atomic.StoreUint32((*uint32)(unsafe.Add(d, i*4)), *(*uint32)(unsafe.Add(s, i*4)))
	}
}

// Load returns the current value without acquiring anything: stamp,
// word-atomic copy, validate. The uncontended path is open-coded (no
// closure) so it stays allocation-free; conflicts fall into the
// combinator's packaged retry policy.
func (a *SeqAtomic[T]) Load() T {
	l := a.lock()
	var v T
	s := l.ReadBegin()
	if s&1 == 0 {
		a.copyOut(&v)
		if l.ReadValidate(s) {
			return v
		}
	}
	l.OptimisticRead(func() { a.copyOut(&v) })
	return v
}

// Store replaces the value under the covering seqlock's write side.
func (a *SeqAtomic[T]) Store(v T) {
	l := a.lock()
	l.Lock()
	a.copyIn(&v)
	l.Unlock()
}

// Exchange swaps in v and returns the prior value.
func (a *SeqAtomic[T]) Exchange(v T) T {
	l := a.lock()
	l.Lock()
	old := a.val
	a.copyIn(&v)
	l.Unlock()
	return old
}

// CompareExchange installs new if the current value equals old,
// returning the witnessed value and whether the exchange happened.
func (a *SeqAtomic[T]) CompareExchange(old, new T) (T, bool) {
	l := a.lock()
	l.Lock()
	cur := a.val
	if cur == old {
		a.copyIn(&new)
		l.Unlock()
		return cur, true
	}
	l.Unlock()
	return cur, false
}
