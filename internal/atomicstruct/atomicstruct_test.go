package atomicstruct

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/locks"
)

func stripes() map[string]*Stripe {
	return map[string]*Stripe{
		"Recipro": NewStripe(64, func() sync.Locker { return new(core.Lock) }),
		"TKT":     NewStripe(64, func() sync.Locker { return new(locks.TicketLock) }),
		"MCS":     NewStripe(64, func() sync.Locker { return new(locks.MCSLock) }),
	}
}

func TestStripeRounding(t *testing.T) {
	s := NewStripe(5, func() sync.Locker { return new(sync.Mutex) })
	if len(s.locks) != 8 {
		t.Fatalf("stripe size %d, want 8", len(s.locks))
	}
	if len(NewStripe(0, func() sync.Locker { return new(sync.Mutex) }).locks) != 1 {
		t.Fatal("zero stripe should round to 1")
	}
}

func TestLoadStoreExchange(t *testing.T) {
	for name, st := range stripes() {
		a := New[S](st)
		if (a.Load() != S{}) {
			t.Fatalf("%s: fresh Load not zero", name)
		}
		a.Store(S{1, 2, 3, 4, 5})
		if a.Load() != (S{1, 2, 3, 4, 5}) {
			t.Fatalf("%s: Store/Load mismatch", name)
		}
		old := a.Exchange(S{9, 9, 9, 9, 9})
		if old != (S{1, 2, 3, 4, 5}) {
			t.Fatalf("%s: Exchange returned %+v", name, old)
		}
	}
}

func TestCompareExchange(t *testing.T) {
	st := stripes()["Recipro"]
	a := New[S](st)
	a.Store(S{A: 1})
	if _, ok := a.CompareExchange(S{A: 2}, S{A: 3}); ok {
		t.Fatal("CAS with wrong expected succeeded")
	}
	wit, ok := a.CompareExchange(S{A: 1}, S{A: 7})
	if !ok || wit != (S{A: 1}) {
		t.Fatalf("CAS failed: wit=%+v ok=%v", wit, ok)
	}
	if a.Load() != (S{A: 7}) {
		t.Fatal("CAS did not install")
	}
}

// The Figure 2b pattern: concurrent increment of one field via
// load + modify + CAS-retry must not lose updates.
func TestCASLoopLosesNothing(t *testing.T) {
	for name, st := range stripes() {
		name, st := name, st
		t.Run(name, func(t *testing.T) {
			a := New[S](st)
			const goroutines = 6
			const iters = 2000
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						cur := a.Load()
						for {
							next := cur
							next.A++
							wit, ok := a.CompareExchange(cur, next)
							if ok {
								break
							}
							cur = wit
						}
					}
				}()
			}
			wg.Wait()
			if got := a.Load().A; got != goroutines*iters {
				t.Fatalf("A = %d, want %d", got, goroutines*iters)
			}
		})
	}
}

// Concurrent Exchange keeps values intact: every value swapped in is
// eventually swapped out exactly once (conservation).
func TestExchangeConservation(t *testing.T) {
	st := stripes()["Recipro"]
	a := New[S](st)
	const goroutines = 4
	const iters = 1000
	seen := make([][]int32, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v := int32(g*iters + i + 1)
				old := a.Exchange(S{A: v})
				seen[g] = append(seen[g], old.A)
			}
		}()
	}
	wg.Wait()
	final := a.Load().A
	all := map[int32]int{}
	for _, s := range seen {
		for _, v := range s {
			all[v]++
		}
	}
	all[final]++
	// Every injected value except those still "in flight" (exactly
	// one remains: the final) appears exactly once; zero appears once
	// (initial value).
	if all[0] != 1 {
		t.Fatalf("initial value observed %d times", all[0])
	}
	total := 0
	for v, n := range all {
		if n != 1 {
			t.Fatalf("value %d observed %d times", v, n)
		}
		total++
	}
	if total != goroutines*iters+1 {
		t.Fatalf("observed %d distinct values, want %d", total, goroutines*iters+1)
	}
}

func TestDistinctObjectsMayShareLocks(t *testing.T) {
	st := NewStripe(2, func() sync.Locker { return new(sync.Mutex) })
	objs := make([]*Atomic[S], 64)
	for i := range objs {
		objs[i] = New[S](st)
	}
	// All operations still work under heavy aliasing.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				o := objs[(g*7+i)%len(objs)]
				o.Exchange(S{A: int32(i)})
				o.Load()
			}
		}()
	}
	wg.Wait()
}
