// Package atomicstruct reproduces the substrate of the paper's §7.2
// benchmark: C++ std::atomic<S> for a struct too large for hardware
// atomics is implemented by hashing the object's address into a global
// array of mutexes and acquiring the covering lock around each
// operation — exactly what GCC/Clang's libatomic does. Parameterizing
// the stripe by lock algorithm turns every Load / Store / Exchange /
// CompareExchange on such objects into the lock workload Figure 2
// measures.
package atomicstruct

import (
	"sync"
	"unsafe"
)

// S is the benchmark struct from §7.2: five 32-bit integers (20
// bytes), too wide for hardware atomics.
type S struct {
	A, B, C, D, E int32
}

// Stripe is an address-hashed array of locks covering atomic objects.
type Stripe struct {
	locks []sync.Locker
}

// NewStripe builds a stripe of n locks created by mk. libatomic uses a
// power-of-two table; n is rounded up accordingly.
func NewStripe(n int, mk func() sync.Locker) *Stripe {
	if n < 1 {
		n = 1
	}
	size := 1
	for size < n {
		size <<= 1
	}
	s := &Stripe{locks: make([]sync.Locker, size)}
	for i := range s.locks {
		s.locks[i] = mk()
	}
	return s
}

// forAddr selects the covering lock for an object address, using the
// same Fibonacci mixing as libatomic-style implementations.
func (s *Stripe) forAddr(p unsafe.Pointer) sync.Locker {
	h := uintptr(p) * 0x9e3779b97f4a7c15
	return s.locks[(h>>48)&uintptr(len(s.locks)-1)]
}

// Atomic is a lock-covered atomic value of any comparable struct type.
type Atomic[T comparable] struct {
	stripe *Stripe
	val    T
}

// New creates an atomic value covered by the stripe.
func New[T comparable](stripe *Stripe) *Atomic[T] {
	return &Atomic[T]{stripe: stripe}
}

func (a *Atomic[T]) lock() sync.Locker {
	return a.stripe.forAddr(unsafe.Pointer(a))
}

// Load returns the current value, acquiring the covering lock.
func (a *Atomic[T]) Load() T {
	l := a.lock()
	l.Lock()
	v := a.val
	l.Unlock()
	return v
}

// Store replaces the value.
func (a *Atomic[T]) Store(v T) {
	l := a.lock()
	l.Lock()
	a.val = v
	l.Unlock()
}

// Exchange swaps in v and returns the prior value (§7.2's Figure 2a
// operation).
func (a *Atomic[T]) Exchange(v T) T {
	l := a.lock()
	l.Lock()
	old := a.val
	a.val = v
	l.Unlock()
	return old
}

// CompareExchange installs new if the current value equals old,
// returning the witnessed value and whether the exchange happened
// (§7.2's Figure 2b operation, matching compare_exchange_strong).
func (a *Atomic[T]) CompareExchange(old, new T) (T, bool) {
	l := a.lock()
	l.Lock()
	cur := a.val
	if cur == old {
		a.val = new
		l.Unlock()
		return cur, true
	}
	l.Unlock()
	return cur, false
}
