package atomicstruct

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/locks"
)

func seqStripes() map[string]*SeqStripe {
	return map[string]*SeqStripe{
		"Recipro": NewSeqStripe(64, func() sync.Locker { return new(core.Lock) }),
		"TKT":     NewSeqStripe(64, func() sync.Locker { return new(locks.TicketLock) }),
	}
}

// mkS renders generation g as a self-consistent S: any torn mix of two
// generations violates the ladder.
func mkS(g int32) S { return S{A: g, B: g + 1, C: g + 2, D: g + 3, E: g + 4} }

func consistentS(v S) bool {
	return v.B == v.A+1 && v.C == v.A+2 && v.D == v.A+3 && v.E == v.A+4
}

func TestNewSeqRejectsIncompatibleTypes(t *testing.T) {
	st := NewSeqStripe(1, func() sync.Locker { return new(sync.Mutex) })
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: NewSeq accepted an optimistic-read-unsafe type", name)
			}
		}()
		f()
	}
	mustPanic("pointerful", func() { NewSeq[struct{ P *int }](st) })
	mustPanic("stringful", func() { NewSeq[struct{ S string }](st) })
	mustPanic("odd-size", func() { NewSeq[struct{ B [3]byte }](st) })
	// The §7.2 struct itself must be accepted.
	NewSeq[S](st)
}

func TestSeqAtomicSemantics(t *testing.T) {
	for name, st := range seqStripes() {
		a := NewSeq[S](st)
		if (a.Load() != S{}) {
			t.Fatalf("%s: fresh Load not zero", name)
		}
		a.Store(S{1, 2, 3, 4, 5})
		if a.Load() != (S{1, 2, 3, 4, 5}) {
			t.Fatalf("%s: Store/Load mismatch", name)
		}
		old := a.Exchange(S{9, 9, 9, 9, 9})
		if old != (S{1, 2, 3, 4, 5}) {
			t.Fatalf("%s: Exchange returned %+v", name, old)
		}
		if _, ok := a.CompareExchange(S{A: 1}, S{A: 3}); ok {
			t.Fatalf("%s: CAS with wrong expected succeeded", name)
		}
		wit, ok := a.CompareExchange(S{9, 9, 9, 9, 9}, S{A: 7})
		if !ok || wit != (S{9, 9, 9, 9, 9}) {
			t.Fatalf("%s: CAS failed: wit=%+v ok=%v", name, wit, ok)
		}
		if a.Load() != (S{A: 7}) {
			t.Fatalf("%s: CAS did not install", name)
		}
	}
}

// Optimistic readers must never observe a torn value while writers
// churn generations (the race tier reruns this under -race, which
// additionally checks the word-atomic copy discipline).
func TestSeqAtomicLoadNeverTorn(t *testing.T) {
	for name, st := range seqStripes() {
		name, st := name, st
		t.Run(name, func(t *testing.T) {
			a := NewSeq[S](st)
			a.Store(mkS(0))
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					g := int32(w * 1_000_000)
					for {
						select {
						case <-stop:
							return
						default:
						}
						g++
						a.Store(mkS(g))
					}
				}(w)
			}
			for i := 0; i < 5000; i++ {
				if v := a.Load(); !consistentS(v) {
					close(stop)
					wg.Wait()
					t.Fatalf("torn read: %+v", v)
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}

// The CAS-retry increment pattern must lose nothing on the seqlock
// variant too (writers still fully serialize).
func TestSeqAtomicCASLoopLosesNothing(t *testing.T) {
	st := seqStripes()["Recipro"]
	a := NewSeq[S](st)
	const goroutines, iters = 4, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				cur := a.Load()
				for {
					next := cur
					next.A++
					wit, ok := a.CompareExchange(cur, next)
					if ok {
						break
					}
					cur = wit
				}
			}
		}()
	}
	wg.Wait()
	if got := a.Load().A; got != goroutines*iters {
		t.Fatalf("A = %d, want %d", got, goroutines*iters)
	}
}

// The zero-alloc gate for the optimistic read fast path: an
// uncontended Load is a stamp, five word loads, and a validate —
// nothing may escape to the heap (mirrors TestShardedGetAddsNoAllocs).
func TestSeqAtomicLoadAllocFree(t *testing.T) {
	st := NewSeqStripe(8, func() sync.Locker { return new(core.Lock) })
	a := NewSeq[S](st)
	a.Store(mkS(7))
	if n := testing.AllocsPerRun(2000, func() {
		if v := a.Load(); v.A != 7 {
			panic("wrong value")
		}
	}); n != 0 {
		t.Fatalf("optimistic Load allocates %.1f/op, want 0", n)
	}
}
