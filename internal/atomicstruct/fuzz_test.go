package atomicstruct

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// FuzzSeqlockRead differentially checks the seqlock-guarded SeqAtomic
// against a plain sequential model: a fuzz-decoded op stream drives
// both and every result must agree, then a concurrent phase churns
// writer generations while the reader asserts that optimistic Loads
// are never torn. The stripe size is fuzzed down to 1 so the
// maximum-aliasing case (every object sharing one seqlock) is covered.
func FuzzSeqlockRead(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 2, 3, 200, 90, 17})
	f.Add(uint8(1), []byte("optimistic read soup"))
	f.Add(uint8(8), []byte{7, 3, 7, 2, 7, 1, 7, 0, 255, 255})
	f.Fuzz(func(t *testing.T, stripeBits uint8, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		st := NewSeqStripe(int(stripeBits%8)+1, func() sync.Locker { return new(core.Lock) })
		a := NewSeq[S](st)
		var model S
		for i := 0; i+1 < len(ops); i += 2 {
			v := mkS(int32(ops[i]))
			switch ops[i+1] % 5 {
			case 0:
				a.Store(v)
				model = v
			case 1:
				if old := a.Exchange(v); old != model {
					t.Fatalf("Exchange returned %+v, model %+v", old, model)
				}
				model = v
			case 2:
				wit, ok := a.CompareExchange(model, v)
				if !ok || wit != model {
					t.Fatalf("CAS(model) failed: wit=%+v ok=%v model=%+v", wit, ok, model)
				}
				model = v
			case 3:
				// A CAS whose expected value differs from the model must
				// fail and witness the model.
				wrong := model
				wrong.E += 1000
				if wit, ok := a.CompareExchange(wrong, v); ok || wit != model {
					t.Fatalf("CAS(wrong) = %+v,%v; want %+v,false", wit, ok, model)
				}
			default:
				if got := a.Load(); got != model {
					t.Fatalf("Load = %+v, model %+v", got, model)
				}
			}
		}

		// Concurrent phase: generations are self-consistent, so any torn
		// mix of two writes violates the ladder.
		a.Store(mkS(0))
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			var g int32
			for {
				select {
				case <-stop:
					return
				default:
				}
				g++
				a.Store(mkS(g))
			}
		}()
		for i := 0; i < 500; i++ {
			if v := a.Load(); !consistentS(v) {
				close(stop)
				wg.Wait()
				t.Fatalf("torn optimistic read: %+v", v)
			}
		}
		close(stop)
		wg.Wait()
	})
}
