package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicstruct"
	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/mutexbench"
	"repro/internal/registry"
	"repro/internal/stats"
	"repro/internal/table"
)

// TrackANote is prepended to all real-execution (Track A) reports.
var TrackANote = fmt.Sprintf(
	`Track A: real goroutine execution on this host (GOMAXPROCS=%d).
Contended numbers are scheduler-influenced; the coherence simulator
(Track B) owns the contended-shape claims. See EXPERIMENTS.md.`,
	runtime.GOMAXPROCS(0))

// defaultThreads is the Track A sweep (goroutines, not processors).
func defaultThreads() []int { return []int{1, 2, 4, 8, 16, 32} }

// Fig1Real runs MutexBench (§7.1) for real: the Figure 1 lock set
// across a goroutine sweep. moderate selects the Figure 1b non-
// critical section (private MT19937 advanced uniform [0,250) steps).
func Fig1Real(moderate bool, dur time.Duration, runs int) *table.Table {
	if dur <= 0 {
		dur = 300 * time.Millisecond
	}
	if runs <= 0 {
		runs = 3
	}
	ncs := 0
	label := "max contention"
	if moderate {
		ncs = 250
		label = "moderate contention"
	}
	threads := defaultThreads()
	headers := []string{"Lock"}
	for _, tc := range threads {
		headers = append(headers, fmt.Sprintf("T=%d", tc))
	}
	t := table.New(fmt.Sprintf("Figure 1 (%s) — MutexBench aggregate Mops/s (median of %d)", label, runs), headers...)
	for _, lf := range registry.Paper() {
		row := []string{lf.Name}
		for _, tc := range threads {
			res := mutexbench.Run(lf, mutexbench.Config{
				Threads:     tc,
				Duration:    dur,
				CSSteps:     1,
				NCSMaxSteps: ncs,
				Runs:        runs,
			})
			row = append(row, table.F(res.Mops, 3))
		}
		t.Add(row...)
	}
	return t
}

// Fig2 reproduces §7.2 over the Figure 1 lock set; Fig2Locks accepts
// any catalog selection.
func Fig2(cas bool, dur time.Duration, runs int) *table.Table {
	return Fig2Locks(registry.Paper(), cas, dur, runs)
}

// Fig2Locks reproduces §7.2: a shared lock-striped Atomic[S] hammered
// by T threads with exchange (Figure 2a) or a load/modify/CAS-retry
// loop (Figure 2b), for each selected lock.
func Fig2Locks(lfs []registry.Entry, cas bool, dur time.Duration, runs int) *table.Table {
	if dur <= 0 {
		dur = 200 * time.Millisecond
	}
	if runs <= 0 {
		runs = 3
	}
	op := "exchange"
	if cas {
		op = "compare_exchange_strong"
	}
	threads := defaultThreads()
	headers := []string{"Lock"}
	for _, tc := range threads {
		headers = append(headers, fmt.Sprintf("T=%d", tc))
	}
	t := table.New(fmt.Sprintf("Figure 2 (%s) — std::atomic<S> ops Mops/s (median of %d)", op, runs), headers...)
	for _, lf := range lfs {
		row := []string{lf.Name}
		for _, tc := range threads {
			scores := make([]float64, 0, runs)
			for r := 0; r < runs; r++ {
				scores = append(scores, fig2Once(lf, tc, cas, dur))
			}
			row = append(row, table.F(stats.Median(scores), 3))
		}
		t.Add(row...)
	}
	return t
}

func fig2Once(lf registry.Entry, threads int, cas bool, dur time.Duration) float64 {
	stripe := atomicstruct.NewStripe(64, lf.New)
	shared := atomicstruct.New[atomicstruct.S](stripe)
	var stopFlag stopper
	var done sync.WaitGroup
	ops := make([]uint64, threads)
	start := time.Now()
	for t := 0; t < threads; t++ {
		t := t
		done.Add(1)
		go func() {
			defer done.Done()
			local := atomicstruct.S{A: int32(t)}
			var n uint64
			for !stopFlag.stopped() {
				if cas {
					// Figure 2b: load, bump first field, CAS-retry.
					cur := shared.Load()
					for {
						next := cur
						next.A++
						wit, ok := shared.CompareExchange(cur, next)
						if ok {
							break
						}
						cur = wit
					}
				} else {
					// Figure 2a: swap local and shared.
					local = shared.Exchange(local)
				}
				n++
			}
			ops[t] = n
		}()
	}
	time.Sleep(dur)
	stopFlag.stop()
	done.Wait()
	el := time.Since(start)
	var total uint64
	for _, v := range ops {
		total += v
	}
	return float64(total) / el.Seconds() / 1e6
}

// Fig3 reproduces §7.3 over the Figure 1 lock set; Fig3Locks accepts
// any catalog selection.
func Fig3(dur time.Duration, keys int, runs int) *table.Table {
	return Fig3Locks(registry.Paper(), dur, keys, runs)
}

// Fig3Locks reproduces §7.3: readrandom over the LSM-lite store
// guarded by each selected lock.
func Fig3Locks(lfs []registry.Entry, dur time.Duration, keys int, runs int) *table.Table {
	if dur <= 0 {
		dur = 300 * time.Millisecond
	}
	if keys <= 0 {
		keys = 50_000
	}
	if runs <= 0 {
		runs = 3
	}
	threads := defaultThreads()
	headers := []string{"Lock"}
	for _, tc := range threads {
		headers = append(headers, fmt.Sprintf("T=%d", tc))
	}
	t := table.New(fmt.Sprintf("Figure 3 — KV readrandom Mops/s over %d keys (median of %d)", keys, runs), headers...)
	for _, lf := range lfs {
		row := []string{lf.Name}
		for _, tc := range threads {
			scores := make([]float64, 0, runs)
			for r := 0; r < runs; r++ {
				db := kvstore.Open(kvstore.Options{Lock: lf.New(), MemTableBytes: 256 << 10})
				kvstore.FillSeq(db, keys, 100)
				res := kvstore.ReadRandom(db, kvstore.ReadRandomConfig{
					Threads:  tc,
					Keyspace: keys,
					Duration: dur,
					Seed:     uint64(r),
				})
				scores = append(scores, res.Mops)
			}
			row = append(row, table.F(stats.Median(scores), 3))
		}
		t.Add(row...)
	}
	return t
}

// UncontendedLatency measures single-thread acquire+release latency
// for every lock in the repository (the T=1 point of Figure 1, where
// the paper reports Ticket fastest, then HemLock, Reciprocating, CLH,
// MCS).
func UncontendedLatency(iters int) *table.Table {
	if iters <= 0 {
		iters = 2_000_000
	}
	t := table.New("Uncontended latency — single-thread Lock+Unlock", "Lock", "ns/op")
	for _, lf := range registry.All() {
		l := lf.New()
		// Warmup.
		for i := 0; i < 10_000; i++ {
			l.Lock()
			l.Unlock()
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			l.Lock()
			l.Unlock()
		}
		el := time.Since(start)
		t.Add(lf.Name, table.F(float64(el.Nanoseconds())/float64(iters), 1))
	}
	return t
}

// MitigationFairness contrasts long-term per-thread admission fairness
// (§9.2, §9.4) across the plain Reciprocating lock, the Bernoulli-
// deferral FairLock, the TwoLane formulation, the randomized
// retrograde ticket lock, and FIFO baselines, using real execution.
func MitigationFairness(dur time.Duration) *table.Table {
	if dur <= 0 {
		dur = 400 * time.Millisecond
	}
	t := table.New("§9.4 mitigation — long-term admission fairness (8 goroutines, Track A)",
		"Lock", "Jain", "Max/Min", "Mops")
	// Catalog entries plus two parameterized FairLock variants that
	// exist only for this ablation (and so are not catalog members);
	// "Fair(1/16)" relabels the catalog's default-probability Fair.
	set := []registry.Entry{
		fromCatalog("Recipro"),
		relabel(fromCatalog("Fair"), "Fair(1/16)"),
		{Name: "Fair(1/4)", New: func() sync.Locker { return &core.FairLock{DeferProb: 64} }},
		fromCatalog("TwoLane"),
		fromCatalog("RetroRand"),
		fromCatalog("Retrograde"),
		relabel(fromCatalog("TKT"), "TKT(FIFO)"),
	}
	for _, lf := range set {
		res := mutexbench.Run(lf, mutexbench.Config{
			Threads:  8,
			Duration: dur,
			CSSteps:  1,
			Runs:     1,
		})
		t.Add(lf.Name, table.F(res.Jain, 4), table.F(res.Disparity, 2), table.F(res.Mops, 3))
	}
	return t
}

// fromCatalog resolves a registry entry, panicking on a bad name —
// these are compile-time-known experiment sets, not user input.
func fromCatalog(name string) registry.Entry {
	e, ok := registry.Lookup(name)
	if !ok {
		panic("experiments: unknown catalog lock " + name)
	}
	return e
}

// relabel renames an entry for presentation in an ablation table.
func relabel(e registry.Entry, name string) registry.Entry {
	e.Name = name
	return e
}

// stopper is a tiny atomic stop flag.
type stopper struct {
	flag atomic.Bool
}

func (s *stopper) stop()         { s.flag.Store(true) }
func (s *stopper) stopped() bool { return s.flag.Load() }
