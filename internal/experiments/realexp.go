package experiments

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/atomicstruct"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/kvstore"
	"repro/internal/mutexbench"
	"repro/internal/registry"
	"repro/internal/table"
)

// TrackANote is prepended to all real-execution (Track A) reports.
var TrackANote = fmt.Sprintf(
	`Track A: real goroutine execution on this host (GOMAXPROCS=%d).
Contended numbers are scheduler-influenced; the coherence simulator
(Track B) owns the contended-shape claims. See EXPERIMENTS.md.`,
	runtime.GOMAXPROCS(0))

// defaultThreads is the Track A sweep (goroutines, not processors).
func defaultThreads() []int { return []int{1, 2, 4, 8, 16, 32} }

// Fig1RealResult runs MutexBench (§7.1) for real — the Figure 1 lock
// set across a goroutine sweep — and emits the versioned result
// schema. moderate selects the Figure 1b non-critical section
// (private MT19937 advanced uniform [0,250) steps).
func Fig1RealResult(moderate bool, dur time.Duration, runs int) *harness.Result {
	if dur <= 0 {
		dur = 300 * time.Millisecond
	}
	if runs <= 0 {
		runs = 3
	}
	ncs := 0
	if moderate {
		ncs = 250
	}
	return mutexbench.SweepResult(registry.Paper(), defaultThreads(), mutexbench.Config{
		Duration:    dur,
		CSSteps:     1,
		NCSMaxSteps: ncs,
		Runs:        runs,
	})
}

// Fig1Real renders Fig1RealResult as the familiar matrix table.
func Fig1Real(moderate bool, dur time.Duration, runs int) *table.Table {
	if runs <= 0 {
		runs = 3
	}
	label := "max contention"
	if moderate {
		label = "moderate contention"
	}
	res := Fig1RealResult(moderate, dur, runs)
	return harness.MatrixTable(res,
		fmt.Sprintf("Figure 1 (%s) — MutexBench aggregate Mops/s (median of %d)", label, runs))
}

// Fig2 reproduces §7.2 over the Figure 1 lock set; Fig2Locks accepts
// any catalog selection.
func Fig2(cas bool, dur time.Duration, runs int) *table.Table {
	return Fig2Locks(registry.Paper(), cas, dur, runs)
}

// fig2Workload is the §7.2 kernel on the shared engine: a shared
// lock-striped Atomic[S] hammered with exchange (Figure 2a) or a
// load/modify/CAS-retry loop (Figure 2b).
func fig2Workload(lf registry.Entry, cas bool) harness.Workload {
	var shared *atomicstruct.Atomic[atomicstruct.S]
	return &harness.WorkloadFunc{
		SetupFn: func(run harness.RunInfo) {
			stripe := atomicstruct.NewStripe(64, lf.New)
			shared = atomicstruct.New[atomicstruct.S](stripe)
		},
		WorkerFn: func(id int) func() {
			local := atomicstruct.S{A: int32(id)}
			sh := shared
			if cas {
				// Figure 2b: load, bump first field, CAS-retry.
				return func() {
					cur := sh.Load()
					for {
						next := cur
						next.A++
						wit, ok := sh.CompareExchange(cur, next)
						if ok {
							break
						}
						cur = wit
					}
				}
			}
			// Figure 2a: swap local and shared.
			return func() {
				local = sh.Exchange(local)
			}
		},
	}
}

// Fig2Results reproduces §7.2 for each selected lock, emitting the
// versioned result schema (workload "exchange" or "cas").
func Fig2Results(lfs []registry.Entry, cas bool, dur time.Duration, runs int) *harness.Result {
	if dur <= 0 {
		dur = 200 * time.Millisecond
	}
	if runs <= 0 {
		runs = 3
	}
	workload := "exchange"
	if cas {
		workload = "cas"
	}
	res := harness.NewResult("atomicbench", "A", 0)
	res.SetConfig("duration", dur.String())
	res.SetConfig("runs", strconv.Itoa(runs))
	for _, lf := range lfs {
		for _, tc := range defaultThreads() {
			m := harness.Measure(fig2Workload(lf, cas), harness.Config{
				Threads:  tc,
				Duration: dur,
				Runs:     runs,
			})
			res.Add(harness.CellFromMeasurement(lf.Name, workload, mutexbench.Unit, m))
		}
	}
	return res
}

// Fig2Locks renders Fig2Results as the familiar matrix table.
func Fig2Locks(lfs []registry.Entry, cas bool, dur time.Duration, runs int) *table.Table {
	if runs <= 0 {
		runs = 3
	}
	op := "exchange"
	if cas {
		op = "compare_exchange_strong"
	}
	res := Fig2Results(lfs, cas, dur, runs)
	return harness.MatrixTable(res,
		fmt.Sprintf("Figure 2 (%s) — std::atomic<S> ops Mops/s (median of %d)", op, runs))
}

// Fig3 reproduces §7.3 over the Figure 1 lock set; Fig3Locks accepts
// any catalog selection.
func Fig3(dur time.Duration, keys int, runs int) *table.Table {
	return Fig3Locks(registry.Paper(), dur, keys, runs)
}

// Fig3Results reproduces §7.3 — readrandom over the LSM-lite store
// guarded by each selected lock — emitting the versioned result
// schema. Each run opens and fills a fresh store, so runs are
// independent as the paper's protocol requires.
func Fig3Results(lfs []registry.Entry, dur time.Duration, keys int, runs int) *harness.Result {
	if dur <= 0 {
		dur = 300 * time.Millisecond
	}
	if keys <= 0 {
		keys = 50_000
	}
	if runs <= 0 {
		runs = 3
	}
	res := harness.NewResult("kvbench", "A", 0)
	res.SetConfig("duration", dur.String())
	res.SetConfig("keys", strconv.Itoa(keys))
	res.SetConfig("runs", strconv.Itoa(runs))
	for _, lf := range lfs {
		for _, tc := range defaultThreads() {
			m := KVReadRandomMeasure(lf, nil, kvstore.ReadRandomConfig{
				Threads:  tc,
				Keyspace: keys,
				Duration: dur,
			}, keys, runs)
			res.Add(harness.CellFromMeasurement(lf.Name, "readrandom", mutexbench.Unit, m))
		}
	}
	return res
}

// KVReadRandomMeasure drives the §7.3 readrandom workload for one
// lock on the shared engine: every run opens a fresh store guarded by
// a new lock instance (built by newLock when non-nil, else the
// catalog constructor) and fills it with keys sequential keys.
func KVReadRandomMeasure(lf registry.Entry, newLock func() sync.Locker, cfg kvstore.ReadRandomConfig, keys, runs int) harness.Measurement {
	return KVShardedReadRandomMeasure(lf, newLock, 1, cfg, keys, runs)
}

// KVShardedReadRandomMeasure generalizes KVReadRandomMeasure to the
// sharded store: shards ≤ 1 opens the coarse Figure 3 DB, larger
// counts open a ShardedDB whose per-shard locks come from the same
// factory and whose per-shard memtable budget is the coarse budget
// split evenly, so the total in-memory working set matches across the
// shard sweep.
func KVShardedReadRandomMeasure(lf registry.Entry, newLock func() sync.Locker, shards int, cfg kvstore.ReadRandomConfig, keys, runs int) harness.Measurement {
	mk := newLock
	if mk == nil {
		mk = lf.New
	}
	open := func(run harness.RunInfo) kvstore.Store {
		db := OpenKVStore(mk, shards)
		kvstore.FillSeq(db, keys, 100)
		return db
	}
	w := kvstore.ReadRandomWorkload(open, cfg)
	return harness.Measure(w, harness.Config{
		Threads:  cfg.Threads,
		Duration: cfg.Duration,
		Runs:     runs,
		Seed:     cfg.Seed,
	})
}

// kvMemTableBytes is the total memtable budget of every kvbench store
// (split across shards for the sharded shape).
const kvMemTableBytes = 256 << 10

// OpenKVStore opens the benchmark store at the given shard count —
// the coarse DB for shards ≤ 1, a ShardedDB otherwise — with the
// shared memtable budget and one lock per shard from mk.
func OpenKVStore(mk func() sync.Locker, shards int) kvstore.Store {
	if shards <= 1 {
		return kvstore.Open(kvstore.Options{Lock: mk(), MemTableBytes: kvMemTableBytes})
	}
	per := kvMemTableBytes / shards
	if per < 4<<10 {
		per = 4 << 10
	}
	return kvstore.OpenSharded(kvstore.ShardedOptions{
		Shards:        shards,
		NewLock:       mk,
		MemTableBytes: per,
	})
}

// ShardWorkload names a workload cell at a shard count: the base name
// for the coarse store, "<base>/s<N>" for N shards — keeping coarse
// cell keys identical to the pre-sharding schema so existing baselines
// stay comparable.
func ShardWorkload(base string, shards int) string {
	if shards <= 1 {
		return base
	}
	return fmt.Sprintf("%s/s%d", base, shards)
}

// Fig3Locks renders Fig3Results as the familiar matrix table.
func Fig3Locks(lfs []registry.Entry, dur time.Duration, keys int, runs int) *table.Table {
	if keys <= 0 {
		keys = 50_000
	}
	if runs <= 0 {
		runs = 3
	}
	res := Fig3Results(lfs, dur, keys, runs)
	return harness.MatrixTable(res,
		fmt.Sprintf("Figure 3 — KV readrandom Mops/s over %d keys (median of %d)", keys, runs))
}

// UncontendedLatencyResult measures single-thread acquire+release
// latency for every lock in the repository (the T=1 point of Figure 1,
// where the paper reports Ticket fastest, then HemLock, Reciprocating,
// CLH, MCS). Score is Mops/s (higher is better, like every cell);
// the ns/op view the table shows is carried as an extra.
func UncontendedLatencyResult(iters int) *harness.Result {
	if iters <= 0 {
		iters = 2_000_000
	}
	res := harness.NewResult("mutexbench", "A", 0)
	res.SetConfig("iters", strconv.Itoa(iters))
	for _, lf := range registry.All() {
		var l sync.Locker
		w := &harness.WorkloadFunc{
			SetupFn: func(run harness.RunInfo) {
				l = lf.New()
				// Warmup.
				for i := 0; i < 10_000; i++ {
					l.Lock()
					l.Unlock()
				}
			},
			WorkerFn: func(id int) func() {
				lk := l
				return func() {
					lk.Lock()
					lk.Unlock()
				}
			},
		}
		m := harness.Measure(w, harness.Config{Threads: 1, Iterations: iters, Runs: 1})
		c := harness.CellFromMeasurement(lf.Name, "uncontended", mutexbench.Unit, m)
		out := m.MedianOutcome()
		c.Extras = map[string]float64{
			"ns_per_op": float64(out.Elapsed.Nanoseconds()) / float64(iters),
		}
		res.Add(c)
	}
	return res
}

// UncontendedLatency renders UncontendedLatencyResult as ns/op.
func UncontendedLatency(iters int) *table.Table {
	res := UncontendedLatencyResult(iters)
	t := table.New("Uncontended latency — single-thread Lock+Unlock", "Lock", "ns/op")
	for _, c := range res.Cells {
		t.Add(c.Lock, table.F(c.Extras["ns_per_op"], 1))
	}
	return t
}

// MitigationFairnessResult contrasts long-term per-thread admission
// fairness (§9.2, §9.4) across the plain Reciprocating lock, the
// Bernoulli-deferral FairLock, the TwoLane formulation, the randomized
// retrograde ticket lock, and FIFO baselines, using real execution.
// Jain and disparity come from the median-defining run of each
// measurement (the engine's invariant).
func MitigationFairnessResult(dur time.Duration, runs int) *harness.Result {
	if dur <= 0 {
		dur = 400 * time.Millisecond
	}
	if runs <= 0 {
		runs = 1
	}
	// Catalog entries plus two parameterized FairLock variants that
	// exist only for this ablation (and so are not catalog members);
	// "Fair(1/16)" relabels the catalog's default-probability Fair.
	set := []registry.Entry{
		fromCatalog("Recipro"),
		relabel(fromCatalog("Fair"), "Fair(1/16)"),
		{Name: "Fair(1/4)", New: func() sync.Locker { return &core.FairLock{DeferProb: 64} }},
		fromCatalog("TwoLane"),
		fromCatalog("RetroRand"),
		fromCatalog("Retrograde"),
		relabel(fromCatalog("TKT"), "TKT(FIFO)"),
	}
	res := harness.NewResult("fairness", "A", 0)
	res.SetConfig("duration", dur.String())
	res.SetConfig("runs", strconv.Itoa(runs))
	for _, lf := range set {
		m := mutexbench.Measure(lf, mutexbench.Config{
			Threads:  8,
			Duration: dur,
			CSSteps:  1,
			Runs:     runs,
		})
		res.Add(harness.CellFromMeasurement(lf.Name, "mitigate", mutexbench.Unit, m))
	}
	return res
}

// MitigationFairness renders MitigationFairnessResult.
func MitigationFairness(dur time.Duration) *table.Table {
	res := MitigationFairnessResult(dur, 1)
	t := table.New("§9.4 mitigation — long-term admission fairness (8 goroutines, Track A)",
		"Lock", "Jain", "Max/Min", "Mops")
	for _, c := range res.Cells {
		t.Add(c.Lock, table.F(c.Jain, 4), table.F(c.Disparity, 2), table.F(c.Score, 3))
	}
	return t
}

// fromCatalog resolves a registry entry, panicking on a bad name —
// these are compile-time-known experiment sets, not user input.
func fromCatalog(name string) registry.Entry {
	e, ok := registry.Lookup(name)
	if !ok {
		panic("experiments: unknown catalog lock " + name)
	}
	return e
}

// relabel renames an entry for presentation in an ablation table.
func relabel(e registry.Entry, name string) registry.Entry {
	e.Name = name
	return e
}
