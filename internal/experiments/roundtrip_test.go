package experiments

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/kvstore"
	"repro/internal/mutexbench"
	"repro/internal/registry"
)

// Every harness family emits the same versioned Result schema; this
// round-trips one small result per family through the JSON
// encoder/decoder (which enforces the schema version), so a schema
// change that breaks any harness's emission fails here, not in CI's
// benchdiff step.
func TestAllHarnessResultsRoundTrip(t *testing.T) {
	lfs := registry.Paper()[:2]
	d := 5 * time.Millisecond
	families := map[string]func() *harness.Result{
		"mutexbench": func() *harness.Result {
			return mutexbench.SweepResult(lfs, []int{1, 2}, mutexbench.Config{
				Iterations: 200, CSSteps: 1, Runs: 2,
			})
		},
		"atomicbench": func() *harness.Result { return Fig2Results(lfs[:1], false, d, 1) },
		"kvbench": func() *harness.Result {
			res := harness.NewResult("kvbench", "A", 1)
			m := KVReadRandomMeasure(lfs[0], nil, kvstore.ReadRandomConfig{
				Threads: 2, Keyspace: 500, Duration: d,
			}, 500, 1)
			res.Add(harness.CellFromMeasurement(lfs[0].Name, "readrandom", mutexbench.Unit, m))
			return res
		},
		"fairness-mitigate":   func() *harness.Result { return MitigationFairnessResult(d, 1) },
		"fairness-longterm":   func() *harness.Result { return LongTermFairnessResult(3, 60) },
		"fairness-llc":        func() *harness.Result { return LLCResidencyResult(3) },
		"fairness-bypass":     func() *harness.Result { return BypassBoundResult(3, 200) },
		"fairness-tradeoff":   func() *harness.Result { return TradeoffResult(3, 60) },
		"fairness-latency":    func() *harness.Result { return AcquireLatencyResult(3, 60) },
		"fairness-retrograde": func() *harness.Result { return RetrogradeResult(3) },
		"cohsim-table2":       func() *harness.Result { return Table2Report(5, 60) },
	}
	for name, mk := range families {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			res := mk()
			if res.Schema != harness.SchemaVersion {
				t.Fatalf("schema = %d, want %d", res.Schema, harness.SchemaVersion)
			}
			if len(res.Cells) == 0 {
				t.Fatal("no cells emitted")
			}
			var buf bytes.Buffer
			if err := res.WriteJSON(&buf); err != nil {
				t.Fatalf("encode: %v", err)
			}
			back, err := harness.Decode(&buf)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if back.Harness != res.Harness || back.Track != res.Track {
				t.Fatalf("identity lost: %q/%q vs %q/%q", back.Harness, back.Track, res.Harness, res.Track)
			}
			if len(back.Cells) != len(res.Cells) {
				t.Fatalf("cells lost: %d vs %d", len(back.Cells), len(res.Cells))
			}
			for i, c := range back.Cells {
				if c.Key() != res.Cells[i].Key() {
					t.Fatalf("cell %d key %q vs %q", i, c.Key(), res.Cells[i].Key())
				}
			}
		})
	}
}
