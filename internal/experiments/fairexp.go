package experiments

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/admission"
	"repro/internal/coherence"
	"repro/internal/harness"
	"repro/internal/llcmodel"
	"repro/internal/simlocks"
	"repro/internal/stats"
	"repro/internal/table"
)

// simSet is the lock set shared by the simulator fairness
// experiments: named baselines plus every fairness-mitigation variant.
func simSet(names ...string) []struct {
	name string
	mk   simlocks.Factory
} {
	var set []struct {
		name string
		mk   simlocks.Factory
	}
	for _, n := range names {
		set = append(set, struct {
			name string
			mk   simlocks.Factory
		}{n, simlocks.ByName(n)})
	}
	for _, f := range simlocks.FairnessVariants() {
		f := f
		set = append(set, struct {
			name string
			mk   simlocks.Factory
		}{f().Name(), f})
	}
	return set
}

// LongTermFairnessResult measures §9.2's long-term admission
// unfairness on the simulator — per-thread admission counts over a
// long deterministic run of the Reciprocating lock, whose palindromic
// cycles favor interior threads by up to 2×, versus FIFO locks —
// emitting the versioned schema (score = Jain index; higher is
// fairer).
func LongTermFairnessResult(threads, episodes int) *harness.Result {
	if threads <= 0 {
		threads = 5
	}
	if episodes <= 0 {
		episodes = 400
	}
	res := harness.NewResult("fairness", "B", 1)
	res.SetConfig("episodes", strconv.Itoa(episodes))
	for _, entry := range simSet("Recipro", "Chen", "TKT", "MCS", "CLH") {
		out := simlocks.Run(entry.mk, simlocks.Config{
			Threads:  threads,
			Episodes: episodes,
			Mode:     coherence.RoundRobin,
			Seed:     1,
		})
		steady := middleWindow(out.AdmissionSchedule)
		f := admission.Fairness(steady, threads)
		c := harness.Cell{
			Lock: entry.name, Workload: "longterm", Threads: threads,
			Unit: "jain", Score: harness.Finite(f.Jain),
			Extras: map[string]float64{
				"disparity":  harness.Finite(f.Disparity),
				"max_bypass": float64(admission.MaxBypass(steady, threads)),
			},
		}
		if cyc, ok := admission.FindCycle(steady, 4); ok {
			c.Extras["cycle_period"] = float64(len(cyc))
			c.Notes = map[string]string{
				"cycle": fmt.Sprintf("period %d, palindromic=%v", len(cyc), admission.IsPalindromic(cyc)),
			}
		}
		res.Add(c)
	}
	return res
}

// LongTermFairnessSim renders LongTermFairnessResult.
func LongTermFairnessSim(threads, episodes int) *table.Table {
	if episodes <= 0 {
		episodes = 400
	}
	res := LongTermFairnessResult(threads, episodes)
	t := table.New(
		fmt.Sprintf("§9.2/§9.4 — long-term admission fairness over %d episodes/thread (simulator)", episodes),
		"Lock", "Jain", "Max/Min", "Palindromic cycle", "MaxBypass")
	for _, c := range res.Cells {
		pal := "none"
		if c.Notes["cycle"] != "" {
			pal = c.Notes["cycle"]
		}
		t.Add(c.Lock, table.F(c.Score, 4), table.F(c.Extras["disparity"], 2), pal,
			table.I(int64(c.Extras["max_bypass"])))
	}
	return t
}

// LLCResidencyResult reproduces Appendix C: the exponential-decay
// residual cache residency model evaluated over FIFO, true-palindrome,
// reciprocating-cycle and random admission schedules, across decay
// half-lives. Palindromic order must dominate FIFO in aggregate
// (Jensen's inequality) while introducing per-thread residency
// disparity. Score is the aggregate residual (higher is better); one
// cell per schedule × half-life, the half-life carried in the
// workload name.
func LLCResidencyResult(n int) *harness.Result {
	if n <= 0 {
		n = 5
	}
	res := harness.NewResult("fairness", "B", 1)
	res.SetConfig("threads", strconv.Itoa(n))
	schedules := []struct {
		name string
		s    []int
	}{
		{"FIFO", admission.FIFOSchedule(n, 1)},
		{"Palindrome", admission.PalindromeSchedule(n, 1)},
		{"ReciproCycle", admission.ReciprocatingCycleSchedule(n, 1)},
		{"Random", admission.RandomSchedule(n, 20000, 7)},
	}
	for _, hl := range []float64{1, 2, 4, 8} {
		lambda := llcmodel.LambdaFromHalfLife(hl)
		for _, sc := range schedules {
			rep := llcmodel.Evaluate(sc.s, n, lambda)
			res.Add(harness.Cell{
				Lock:     sc.name,
				Workload: fmt.Sprintf("llc-halflife=%g", hl),
				Threads:  n,
				Unit:     "residual",
				Score:    harness.Finite(rep.Aggregate),
				Extras: map[string]float64{
					"miss_rate":           harness.Finite(rep.MissRate),
					"residency_disparity": harness.Finite(rep.ResidencyDisparity()),
				},
			})
		}
	}
	return res
}

// LLCResidency renders LLCResidencyResult.
func LLCResidency(n int) *table.Table {
	if n <= 0 {
		n = 5
	}
	res := LLCResidencyResult(n)
	t := table.New(
		fmt.Sprintf("Appendix C — residual LLC residency model (%d threads)", n),
		"Schedule", "HalfLife", "AggResidual", "MissRate", "ResidencyMax/Min")
	for _, c := range res.Cells {
		var hl float64
		fmt.Sscanf(c.Workload, "llc-halflife=%g", &hl)
		t.Add(c.Lock, table.F(hl, 0), table.F(c.Score, 4),
			table.F(c.Extras["miss_rate"], 4), table.F(c.Extras["residency_disparity"], 3))
	}
	return t
}

// AcquireLatencyResult measures per-acquisition wait-latency
// percentiles on the timed simulator. Two paper claims are visible
// here: FIFO locks (TKT/MCS/CLH) produce tight, uniform waits, while
// Reciprocating's LIFO-within-segment admission yields the "bimodal
// distribution of progress" of §9.2 — a cheap fast mode (recently
// arrived threads admitted quickly off the stack top) paired with a
// long tail bounded by the bypass guarantee, and the mitigations pull
// the modes back together. The cells are informational (score 0):
// the percentiles live in the extras, keyed p10/p50/p90/p99/max plus
// the p90/p10 spread.
func AcquireLatencyResult(threads, episodes int) *harness.Result {
	if threads <= 0 {
		threads = 16
	}
	if episodes <= 0 {
		episodes = 300
	}
	res := harness.NewResult("fairness", "B", 1)
	res.SetConfig("episodes", strconv.Itoa(episodes))
	for _, entry := range simSet("TKT", "MCS", "CLH", "Recipro") {
		out := simlocks.Run(entry.mk, simlocks.Config{
			Threads:        threads,
			Episodes:       episodes,
			Warmup:         episodes / 5,
			Mode:           coherence.Timed,
			CSWork:         10,
			CollectLatency: true,
			Seed:           1,
		})
		ls := out.AcquireLatencies
		p10 := stats.Percentile(ls, 10)
		p90 := stats.Percentile(ls, 90)
		spread := math.Inf(1)
		if p10 > 0 {
			spread = p90 / p10
		}
		res.Add(harness.Cell{
			Lock: entry.name, Workload: "latency", Threads: threads, Unit: "cycles",
			Extras: map[string]float64{
				"p10": harness.Finite(p10),
				"p50": harness.Finite(stats.Percentile(ls, 50)),
				"p90": harness.Finite(p90),
				"p99": harness.Finite(stats.Percentile(ls, 99)),
				"max": harness.Finite(stats.Max(ls)),
				// Preserved as 0-means-unbounded when p10 is zero.
				"p90_over_p10": harness.Finite(spread),
			},
		})
	}
	return res
}

// AcquireLatencyDistribution renders AcquireLatencyResult.
func AcquireLatencyDistribution(threads, episodes int) *table.Table {
	if threads <= 0 {
		threads = 16
	}
	res := AcquireLatencyResult(threads, episodes)
	t := table.New(
		fmt.Sprintf("§9.2 — acquisition-latency distribution, %d threads (timed simulator, cycles)", threads),
		"Lock", "p10", "p50", "p90", "p99", "max", "p90/p10")
	for _, c := range res.Cells {
		x := c.Extras
		spread := "Inf"
		if x["p90_over_p10"] > 0 {
			spread = table.F(x["p90_over_p10"], 2)
		}
		t.Add(c.Lock,
			table.F(x["p10"], 0), table.F(x["p50"], 0),
			table.F(x["p90"], 0), table.F(x["p99"], 0),
			table.F(x["max"], 0), spread)
	}
	return t
}

// TradeoffResult sweeps the §9.4 deferral probability, measuring
// modeled throughput (timed simulator, the cell score) against
// steady-state admission disparity — Appendix G's "we use the tunable
// Bernoulli probability to strike a balance between fairness over a
// period and aggregate throughput" rendered as a curve.
//
// A finding worth calling out: the endpoint p=256 (defer always) is
// deterministic again, so the schedule can re-enter a periodic unfair
// cycle — randomness, not deferral per se, is what restores fairness.
// That is precisely why the paper prescribes a *Bernoulli trial*.
func TradeoffResult(threads, episodes int) *harness.Result {
	if threads <= 0 {
		threads = 8
	}
	if episodes <= 0 {
		episodes = 300
	}
	res := harness.NewResult("fairness", "B", 1)
	res.SetConfig("episodes", strconv.Itoa(episodes))
	probs := []int{-1, 16, 64, 128, 256} // -1 = plain Listing 1
	for _, p := range probs {
		var mk simlocks.Factory
		label := fmt.Sprintf("%d/256", p)
		if p < 0 {
			mk = simlocks.ByName("Recipro")
			label = "0 (plain)"
		} else {
			pp := p
			mk = func() simlocks.Lock { return &simlocks.ReciproFair{Prob: pp} }
		}
		// Throughput in timed mode.
		tp := simlocks.Run(mk, simlocks.Config{
			Threads:  threads,
			Episodes: episodes,
			Mode:     coherence.Timed,
			CSWork:   10,
			Seed:     1,
		}).Throughput
		// Fairness on the deterministic round-robin schedule.
		out := simlocks.Run(mk, simlocks.Config{
			Threads:  threads,
			Episodes: episodes,
			Mode:     coherence.RoundRobin,
			Seed:     1,
		})
		f := admission.Fairness(middleWindow(out.AdmissionSchedule), threads)
		res.Add(harness.Cell{
			Lock: label, Workload: "tradeoff", Threads: threads,
			Unit: "eps/kcycle", Score: harness.Finite(tp),
			Jain: harness.Finite(f.Jain),
			Extras: map[string]float64{
				"disparity": harness.Finite(f.Disparity),
			},
		})
	}
	return res
}

// FairnessThroughputTradeoff renders TradeoffResult.
func FairnessThroughputTradeoff(threads, episodes int) *table.Table {
	res := TradeoffResult(threads, episodes)
	t := table.New("§9.4/Appendix G — fairness vs throughput across deferral probability (simulator)",
		"DeferProb", "Throughput(eps/kcycle)", "Disparity", "Jain")
	for _, c := range res.Cells {
		t.Add(c.Lock, table.F(c.Score, 3), table.F(c.Extras["disparity"], 3), table.F(c.Jain, 4))
	}
	return t
}

// RetrogradeResult verifies Appendix G's claim that the retrograde
// ticket lock mimics Reciprocating admission: both produce
// LIFO-within-segment schedules with identical per-cycle disparity
// and bypass bounds. (The retrograde lock is a Track A lock; here we
// compare the reciprocating simulator schedule against the analytic
// reciprocating cycle.) Informational cells: the equivalence metrics
// live in extras and notes.
func RetrogradeResult(threads int) *harness.Result {
	if threads <= 0 {
		threads = 5
	}
	out := simlocks.Run(simlocks.ByName("Recipro"), simlocks.Config{
		Threads:  threads,
		Episodes: 200,
		Mode:     coherence.RoundRobin,
		Seed:     1,
	})
	analytic := admission.ReciprocatingCycleSchedule(threads, 50)

	res := harness.NewResult("fairness", "B", 1)
	add := func(name string, sched []int) {
		f := admission.Fairness(sched, threads)
		c := harness.Cell{
			Lock: name, Workload: "retrograde", Threads: threads,
			Extras: map[string]float64{
				"disparity":  harness.Finite(f.Disparity),
				"max_bypass": float64(admission.MaxBypass(sched, threads)),
			},
		}
		if cyc, ok := admission.FindCycle(sched, 4); ok {
			c.Extras["cycle_period"] = float64(len(cyc))
			c.Notes = map[string]string{
				"palindromic": fmt.Sprintf("%v", admission.IsPalindromic(cyc)),
			}
		}
		res.Add(c)
	}
	add("Reciprocating (simulated)", middleWindow(out.AdmissionSchedule))
	add("Retrograde cycle (analytic)", analytic)
	return res
}

// RetrogradeEquivalence renders RetrogradeResult.
func RetrogradeEquivalence(threads int) *table.Table {
	res := RetrogradeResult(threads)
	t := table.New("Appendix G — retrograde/reciprocating admission equivalence",
		"Schedule", "CyclePeriod", "Disparity", "MaxBypass", "Palindromic")
	for _, c := range res.Cells {
		period, pal := "-", "-"
		if _, ok := c.Extras["cycle_period"]; ok {
			period = table.I(int64(c.Extras["cycle_period"]))
			pal = c.Notes["palindromic"]
		}
		t.Add(c.Lock, period, table.F(c.Extras["disparity"], 2),
			table.I(int64(c.Extras["max_bypass"])), pal)
	}
	return t
}
