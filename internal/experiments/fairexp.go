package experiments

import (
	"fmt"
	"math"

	"repro/internal/admission"
	"repro/internal/coherence"
	"repro/internal/llcmodel"
	"repro/internal/simlocks"
	"repro/internal/stats"
	"repro/internal/table"
)

// LongTermFairnessSim measures §9.2's long-term admission unfairness
// on the simulator: per-thread admission counts over a long
// deterministic run of the Reciprocating lock, whose palindromic
// cycles favor interior threads by up to 2×, versus FIFO locks.
func LongTermFairnessSim(threads, episodes int) *table.Table {
	if threads <= 0 {
		threads = 5
	}
	if episodes <= 0 {
		episodes = 400
	}
	t := table.New(
		fmt.Sprintf("§9.2/§9.4 — long-term admission fairness over %d episodes/thread (simulator)", episodes),
		"Lock", "Jain", "Max/Min", "Palindromic cycle", "MaxBypass")
	set := []struct {
		name string
		mk   simlocks.Factory
	}{
		{"Recipro", simlocks.ByName("Recipro")},
		{"Chen", simlocks.ByName("Chen")},
		{"TKT", simlocks.ByName("TKT")},
		{"MCS", simlocks.ByName("MCS")},
		{"CLH", simlocks.ByName("CLH")},
	}
	for _, f := range simlocks.FairnessVariants() {
		f := f
		set = append(set, struct {
			name string
			mk   simlocks.Factory
		}{f().Name(), f})
	}
	for _, entry := range set {
		name := entry.name
		out := simlocks.Run(entry.mk, simlocks.Config{
			Threads:  threads,
			Episodes: episodes,
			Mode:     coherence.RoundRobin,
			Seed:     1,
		})
		steady := middleWindow(out.AdmissionSchedule)
		f := admission.Fairness(steady, threads)
		pal := "none"
		if cyc, ok := admission.FindCycle(steady, 4); ok {
			pal = fmt.Sprintf("period %d, palindromic=%v", len(cyc), admission.IsPalindromic(cyc))
		}
		t.Add(name, table.F(f.Jain, 4), table.F(f.Disparity, 2), pal,
			table.I(int64(admission.MaxBypass(steady, threads))))
	}
	return t
}

// LLCResidency reproduces Appendix C: the exponential-decay residual
// cache residency model evaluated over FIFO, true-palindrome,
// reciprocating-cycle and random admission schedules, across decay
// half-lives. Palindromic order must dominate FIFO in aggregate
// (Jensen's inequality) while introducing per-thread residency
// disparity.
func LLCResidency(n int) *table.Table {
	if n <= 0 {
		n = 5
	}
	t := table.New(
		fmt.Sprintf("Appendix C — residual LLC residency model (%d threads)", n),
		"Schedule", "HalfLife", "AggResidual", "MissRate", "ResidencyMax/Min")
	schedules := []struct {
		name string
		s    []int
	}{
		{"FIFO", admission.FIFOSchedule(n, 1)},
		{"Palindrome", admission.PalindromeSchedule(n, 1)},
		{"ReciproCycle", admission.ReciprocatingCycleSchedule(n, 1)},
		{"Random", admission.RandomSchedule(n, 20000, 7)},
	}
	for _, hl := range []float64{1, 2, 4, 8} {
		lambda := llcmodel.LambdaFromHalfLife(hl)
		for _, sc := range schedules {
			rep := llcmodel.Evaluate(sc.s, n, lambda)
			t.Add(sc.name, table.F(hl, 0), table.F(rep.Aggregate, 4),
				table.F(rep.MissRate, 4), table.F(rep.ResidencyDisparity(), 3))
		}
	}
	return t
}

// AcquireLatencyDistribution measures per-acquisition wait-latency
// percentiles on the timed simulator. Two paper claims are visible
// here: FIFO locks (TKT/MCS/CLH) produce tight, uniform waits, while
// Reciprocating's LIFO-within-segment admission yields the "bimodal
// distribution of progress" of §9.2 — a cheap fast mode (recently
// arrived threads admitted quickly off the stack top) paired with a
// long tail bounded by the bypass guarantee, and the mitigations pull
// the modes back together.
func AcquireLatencyDistribution(threads, episodes int) *table.Table {
	if threads <= 0 {
		threads = 16
	}
	if episodes <= 0 {
		episodes = 300
	}
	t := table.New(
		fmt.Sprintf("§9.2 — acquisition-latency distribution, %d threads (timed simulator, cycles)", threads),
		"Lock", "p10", "p50", "p90", "p99", "max", "p90/p10")
	set := []struct {
		name string
		mk   simlocks.Factory
	}{
		{"TKT", simlocks.ByName("TKT")},
		{"MCS", simlocks.ByName("MCS")},
		{"CLH", simlocks.ByName("CLH")},
		{"Recipro", simlocks.ByName("Recipro")},
	}
	for _, f := range simlocks.FairnessVariants() {
		f := f
		set = append(set, struct {
			name string
			mk   simlocks.Factory
		}{f().Name(), f})
	}
	for _, entry := range set {
		out := simlocks.Run(entry.mk, simlocks.Config{
			Threads:        threads,
			Episodes:       episodes,
			Warmup:         episodes / 5,
			Mode:           coherence.Timed,
			CSWork:         10,
			CollectLatency: true,
			Seed:           1,
		})
		ls := out.AcquireLatencies
		p10 := stats.Percentile(ls, 10)
		p90 := stats.Percentile(ls, 90)
		spread := math.Inf(1)
		if p10 > 0 {
			spread = p90 / p10
		}
		t.Add(entry.name,
			table.F(p10, 0), table.F(stats.Percentile(ls, 50), 0),
			table.F(p90, 0), table.F(stats.Percentile(ls, 99), 0),
			table.F(stats.Max(ls), 0), table.F(spread, 2))
	}
	return t
}

// FairnessThroughputTradeoff sweeps the §9.4 deferral probability,
// measuring modeled throughput (timed simulator) against steady-state
// admission disparity — Appendix G's "we use the tunable Bernoulli
// probability to strike a balance between fairness over a period and
// aggregate throughput" rendered as a curve.
//
// A finding worth calling out: the endpoint p=256 (defer always) is
// deterministic again, so the schedule can re-enter a periodic unfair
// cycle — randomness, not deferral per se, is what restores fairness.
// That is precisely why the paper prescribes a *Bernoulli trial*.
func FairnessThroughputTradeoff(threads, episodes int) *table.Table {
	if threads <= 0 {
		threads = 8
	}
	if episodes <= 0 {
		episodes = 300
	}
	t := table.New("§9.4/Appendix G — fairness vs throughput across deferral probability (simulator)",
		"DeferProb", "Throughput(eps/kcycle)", "Disparity", "Jain")
	probs := []int{-1, 16, 64, 128, 256} // -1 = plain Listing 1
	for _, p := range probs {
		var mk simlocks.Factory
		label := fmt.Sprintf("%d/256", p)
		if p < 0 {
			mk = simlocks.ByName("Recipro")
			label = "0 (plain)"
		} else {
			pp := p
			mk = func() simlocks.Lock { return &simlocks.ReciproFair{Prob: pp} }
		}
		// Throughput in timed mode.
		tp := simlocks.Run(mk, simlocks.Config{
			Threads:  threads,
			Episodes: episodes,
			Mode:     coherence.Timed,
			CSWork:   10,
			Seed:     1,
		}).Throughput
		// Fairness on the deterministic round-robin schedule.
		out := simlocks.Run(mk, simlocks.Config{
			Threads:  threads,
			Episodes: episodes,
			Mode:     coherence.RoundRobin,
			Seed:     1,
		})
		f := admission.Fairness(middleWindow(out.AdmissionSchedule), threads)
		t.Add(label, table.F(tp, 3), table.F(f.Disparity, 3), table.F(f.Jain, 4))
	}
	return t
}

// RetrogradeEquivalence verifies Appendix G's claim that the
// retrograde ticket lock mimics Reciprocating admission: both produce
// LIFO-within-segment schedules with identical per-cycle disparity
// and bypass bounds. (The retrograde lock is a Track A lock; here we
// compare the reciprocating simulator schedule against the analytic
// reciprocating cycle.)
func RetrogradeEquivalence(threads int) *table.Table {
	if threads <= 0 {
		threads = 5
	}
	out := simlocks.Run(simlocks.ByName("Recipro"), simlocks.Config{
		Threads:  threads,
		Episodes: 200,
		Mode:     coherence.RoundRobin,
		Seed:     1,
	})
	analytic := admission.ReciprocatingCycleSchedule(threads, 50)

	t := table.New("Appendix G — retrograde/reciprocating admission equivalence",
		"Schedule", "CyclePeriod", "Disparity", "MaxBypass", "Palindromic")
	row := func(name string, sched []int) {
		period := "-"
		pal := "-"
		if cyc, ok := admission.FindCycle(sched, 4); ok {
			period = table.I(int64(len(cyc)))
			pal = fmt.Sprintf("%v", admission.IsPalindromic(cyc))
		}
		f := admission.Fairness(sched, threads)
		t.Add(name, period, table.F(f.Disparity, 2),
			table.I(int64(admission.MaxBypass(sched, threads))), pal)
	}
	row("Reciprocating (simulated)", middleWindow(out.AdmissionSchedule))
	row("Retrograde cycle (analytic)", analytic)
	return t
}
