// Package experiments encodes the regeneration of every table and
// figure in the paper's evaluation. Each experiment returns rendered
// tables; the cmd/ tools and the root benchmark suite are thin
// wrappers over this package, so `go run ./cmd/figures` and the
// individual tools always agree.
package experiments

import "repro/internal/table"

// Table1Properties renders the static half of Table 1: the structural
// properties of each lock algorithm as cataloged in §6. The dynamic
// columns (invalidations and remote misses per episode) come from the
// coherence simulator (Table1Invalidations, Table1RemoteMisses).
//
// "Path atomics" substitutes for the paper's LLVM-IR instruction
// counts (a toolchain artifact unavailable here): the worst-case
// atomic RMW operations on the Acquire and Release paths, which is the
// architecturally meaningful component of path complexity.
func Table1Properties() *table.Table {
	t := table.New("Table 1 — lock algorithm properties (static)",
		"Lock", "Spinning", "ConstTimeUnlock", "FIFO", "ContextFree",
		"NodesCirculate", "CtorDtorRequired", "PathAtomics(Acq/Rel)", "Space")
	t.Add("TKT", "global", "yes", "yes", "yes", "no-nodes", "no", "1/0", "2L")
	t.Add("ABQL", "local", "yes", "yes", "no", "no", "yes(array)", "1/0", "2L+T*L")
	t.Add("TWA", "semi-global", "yes", "yes", "yes", "no-nodes", "no", "1/1", "2L+4096")
	t.Add("MCS", "local", "no", "yes", "no", "no", "no", "1/1", "2L+A*E")
	t.Add("CLH", "local", "yes", "yes", "no", "yes", "yes", "1/0", "2L+(T+L)*E")
	t.Add("HemLock", "semi-local", "no(ack)", "yes", "yes", "no", "no", "1/1", "1L+T*E")
	t.Add("Chen", "global", "yes", "no(bounded)", "no", "no", "no", "1/2", "3L+T*E")
	t.Add("Recipro", "local", "yes", "no(bounded)", "no", "no", "no", "1/2", "2L+T*E")
	return t
}

// Table1Notes explains the property columns and the paper
// correspondences.
const Table1Notes = `Legend (per §6):
  Spinning          local = each waiter on a private line; global = all
                    waiters on one line; semi-local = private line shared
                    across the locks a thread uses (HemLock); semi-global =
                    hashed shared waiting array (TWA).
  ConstTimeUnlock   MCS may wait for a mid-enqueue successor; HemLock is
                    constant-time only up to ownership transfer, then waits
                    for the successor's acknowledgement.
  FIFO              Chen and Reciprocating provide LIFO-within-segment /
                    FIFO-between-segments with population-bounded bypass.
  ContextFree       whether data must pass from Acquire to the matching
                    Release (stored in owner-owned lock-body words here,
                    as in the paper's pthread implementations; S=2).
  NodesCirculate    CLH queue nodes migrate between threads (NUMA-hostile,
                    forces ctor/dtor); Reciprocating/HemLock use a
                    per-thread singleton.
  PathAtomics       worst-case atomic RMWs on Acquire/Release (substitute
                    for the paper's LLVM-IR path-complexity counts).
  Space             L = locks, T = threads, A = held locks + waiting
                    threads, E = element size (ABQL's array is per lock).`
