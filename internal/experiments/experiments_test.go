package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTable1PropertiesComplete(t *testing.T) {
	tab := Table1Properties()
	if len(tab.Rows) != 8 {
		t.Fatalf("Table 1 has %d rows, want 8", len(tab.Rows))
	}
	s := tab.String()
	for _, lock := range []string{"TKT", "ABQL", "TWA", "MCS", "CLH", "HemLock", "Chen", "Recipro"} {
		if !strings.Contains(s, lock) {
			t.Fatalf("Table 1 missing %s", lock)
		}
	}
}

func TestTable1InvalidationsRendered(t *testing.T) {
	tab := Table1Invalidations(6, 100)
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.String(), "Recipro") {
		t.Fatal("missing Recipro row")
	}
}

func TestTable2Reproduction(t *testing.T) {
	res, tab := Table2(5, 150)
	if res.Cycle == nil {
		t.Fatal("no admission cycle found")
	}
	if len(res.Cycle) != 8 {
		t.Fatalf("cycle period %d, want 8 (=2N-2 for N=5): %v", len(res.Cycle), res.Cycle)
	}
	if !res.Palindromic {
		t.Fatalf("cycle %v not palindromic", res.Cycle)
	}
	if res.Disparity != 2 {
		t.Fatalf("cycle disparity %v, want exactly 2 (§9.2)", res.Disparity)
	}
	if res.MaxBypass > 2 {
		t.Fatalf("bypass bound violated: %d > 2", res.MaxBypass)
	}
	if tab.String() == "" {
		t.Fatal("empty table")
	}
}

func TestFig1SimProducesAllSeries(t *testing.T) {
	tab := Fig1Sim(ArchIntel, false, 40)
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 locks", len(tab.Rows))
	}
	if len(tab.Headers) != len(Fig1Threads(ArchIntel))+1 {
		t.Fatalf("headers = %d", len(tab.Headers))
	}
}

func TestArchSelection(t *testing.T) {
	if a, ok := ArchByName("arm"); !ok || a.Name != "arm" {
		t.Fatal("arm arch missing")
	}
	if a, ok := ArchByName(""); !ok || a.Name != "intel" {
		t.Fatal("default arch should be intel")
	}
	if _, ok := ArchByName("sparc"); ok {
		t.Fatal("unknown arch accepted")
	}
	if ts := Fig1Threads(ArchARM); ts[len(ts)-1] != 128 {
		t.Fatalf("ARM sweep should reach 128, got %v", ts)
	}
}

func TestLongTermFairnessSim(t *testing.T) {
	tab := LongTermFairnessSim(5, 120)
	if len(tab.Rows) != 7 { // 5 baselines + 2 simulated mitigations
		t.Fatalf("rows = %d, want 7", len(tab.Rows))
	}
}

func TestLLCResidencyTable(t *testing.T) {
	tab := LLCResidency(5)
	if len(tab.Rows) != 16 { // 4 schedules × 4 half-lives
		t.Fatalf("rows = %d, want 16", len(tab.Rows))
	}
}

func TestAcquireLatencyDistribution(t *testing.T) {
	tab := AcquireLatencyDistribution(8, 100)
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	// All percentiles must be present and positive for contended
	// waits.
	for _, row := range tab.Rows {
		if row[2] == "0" {
			t.Fatalf("lock %s has zero p50 wait under contention", row[0])
		}
	}
}

func TestRetrogradeEquivalence(t *testing.T) {
	tab := RetrogradeEquivalence(5)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

// Track A smoke tests: tiny durations, just verifying the harnesses
// produce complete tables.
func TestFig1RealSmoke(t *testing.T) {
	tab := Fig1Real(false, 5*time.Millisecond, 1)
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
}

func TestFig2Smoke(t *testing.T) {
	tab := Fig2(true, 3*time.Millisecond, 1)
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFig3Smoke(t *testing.T) {
	tab := Fig3(3*time.Millisecond, 2000, 1)
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestUncontendedLatencySmoke(t *testing.T) {
	tab := UncontendedLatency(20_000)
	if len(tab.Rows) < 15 {
		t.Fatalf("rows = %d, want every registered lock", len(tab.Rows))
	}
}

// The bypass-bound experiment must verify the paper's guarantees: the
// bounded-bypass locks stay at or below 2, FIFO locks at 1.
func TestBypassBoundGuarantees(t *testing.T) {
	tab := BypassBound(5, 2500)
	if len(tab.Rows) < 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	limits := map[string]int64{
		"Recipro": 2, "Recipro-L4": 2, "Fair": 2, "Chen": 2,
		"TKT": 1, "MCS": 1, "CLH": 1,
	}
	for _, row := range tab.Rows {
		if lim, ok := limits[row[0]]; ok {
			var got int64
			if _, err := fmt.Sscan(row[1], &got); err != nil {
				t.Fatalf("bad MaxBypass cell %q", row[1])
			}
			if got > lim {
				t.Errorf("%s: observed bypass %d exceeds guarantee %d", row[0], got, lim)
			}
		}
	}
}

func TestMitigationFairnessSmoke(t *testing.T) {
	tab := MitigationFairness(10 * time.Millisecond)
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

// The padding ablation must show sequestration reducing coherence
// events for every lock.
func TestPaddingAblationSim(t *testing.T) {
	tab := PaddingAblationSim(6, 150)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		var seq, packed float64
		fmt.Sscan(row[1], &seq)
		fmt.Sscan(row[2], &packed)
		if packed < seq {
			t.Errorf("%s: packed (%v) should not beat sequestered (%v)", row[0], packed, seq)
		}
	}
}

// §8's per-site tally: the breakdown must localize each lock's events
// to the expected lines and sum to the Table 1 totals.
func TestSection8TallyBreakdown(t *testing.T) {
	tab := Section8Tally(10, 300)
	if len(tab.Rows) < 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	sum := map[string]float64{}
	for _, row := range tab.Rows {
		var ev float64
		fmt.Sscan(row[5], &ev)
		sum[row[0]] += ev
	}
	if sum["Recipro"] < 3.5 || sum["Recipro"] > 4.5 {
		t.Errorf("Recipro per-site events sum to %.2f, want ≈4", sum["Recipro"])
	}
	if sum["CLH"] < 4.5 || sum["CLH"] > 5.5 {
		t.Errorf("CLH per-site events sum to %.2f, want ≈5", sum["CLH"])
	}
}

// The fairness/throughput tradeoff: disparity must fall monotonically
// toward 1 as the deferral probability rises.
func TestFairnessThroughputTradeoff(t *testing.T) {
	tab := FairnessThroughputTradeoff(6, 200)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var plain float64
	fmt.Sscan(tab.Rows[0][2], &plain)
	// Randomized settings (16..128/256) must beat the plain lock;
	// note p=256 (always defer) is deterministic again and may
	// re-enter a periodic unfair cycle — the reason the paper
	// specifies a *Bernoulli trial*, not unconditional deferral.
	best := plain
	for _, row := range tab.Rows[1:4] {
		var d float64
		fmt.Sscan(row[2], &d)
		if d < best {
			best = d
		}
	}
	if !(best < plain) {
		t.Errorf("no randomized deferral setting improved on plain disparity %.3f", plain)
	}
}

// §8's segment-scaling claim: release-path traffic on the arrival word
// must decline as threads grow.
func TestSegmentScalingDecline(t *testing.T) {
	tab := SegmentScaling(200)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var first, last float64
	fmt.Sscan(tab.Rows[0][1], &first)
	fmt.Sscan(tab.Rows[len(tab.Rows)-1][1], &last)
	if !(last < first) {
		t.Errorf("detach rate did not decline: T=2 %.4f vs T=32 %.4f", first, last)
	}
}
