package experiments

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/admission"
	"repro/internal/coherence"
	"repro/internal/harness"
	"repro/internal/simlocks"
	"repro/internal/table"
)

// Table1Invalidations reproduces Table 1's "Invalidations per episode"
// column on the coherence simulator: sustained contention, degenerate
// (local-only) critical section, context passed outside shared memory
// — the paper's exact methodology for the l2d_cache_inval measurement.
// threads defaults to the paper's 10.
func Table1Invalidations(threads, episodes int) *table.Table {
	if threads <= 0 {
		threads = 10
	}
	if episodes <= 0 {
		episodes = 500
	}
	t := table.New(
		fmt.Sprintf("Table 1 — coherence events per episode (%d threads, MESI simulator)", threads),
		"Lock", "Events/episode", "Expected")
	expect := map[string]string{
		"TKT": "≈T (global spinning)", "ABQL": "const", "TWA": "const",
		"MCS": "const", "CLH": "5 (§8 tally)", "HemLock": "const",
		"Chen": "≈T (global spinning)", "Recipro": "4 (§8 tally)",
	}
	for _, mk := range simlocks.All() {
		out := simlocks.Run(mk, simlocks.Config{
			Threads:  threads,
			Episodes: episodes,
			Warmup:   episodes / 5,
			Mode:     coherence.RoundRobin,
			CSWork:   5,
			Seed:     1,
		})
		t.Add(out.Lock, table.F(out.EventsPerEpisode, 2), expect[out.Lock])
	}
	return t
}

// Table1RemoteMisses reproduces Table 1's "Maximum Remote Misses"
// column: the same sustained-contention run on a 2-node NUMA home map.
// Reciprocating's waiter lines are homed with their threads, so its
// remote misses stay low; CLH's circulating nodes pick up remote
// misses (§8 point A).
func Table1RemoteMisses(threads, episodes int) *table.Table {
	if threads <= 0 {
		threads = 8
	}
	if episodes <= 0 {
		episodes = 500
	}
	t := table.New(
		fmt.Sprintf("Table 1 — remote misses per episode (%d threads, 2 NUMA nodes)", threads),
		"Lock", "RemoteMisses/episode")
	for _, mk := range simlocks.All() {
		out := simlocks.Run(mk, simlocks.Config{
			Threads:  threads,
			Episodes: episodes,
			Warmup:   episodes / 5,
			Mode:     coherence.RoundRobin,
			CSWork:   5,
			NodeCPUs: threads / 2,
			Seed:     1,
		})
		t.Add(out.Lock, table.F(out.RemotePerEpisode, 2))
	}
	return t
}

// Arch selects the modeled machine for Figure 1 simulations.
type Arch struct {
	Name     string
	NodeCPUs int // CPUs per NUMA node
	MaxCPUs  int
	Costs    coherence.CostModel
}

// ArchIntel models the paper's 2-socket 18-core Intel X5-2 (§7):
// threads spill onto the second socket above 18, where the UPI
// home-snooping fabric makes remote misses expensive.
var ArchIntel = Arch{
	Name:     "intel",
	NodeCPUs: 18,
	MaxCPUs:  64,
	Costs:    coherence.CostModel{Hit: 1, Miss: 40, RemoteMiss: 90, Upgrade: 34, BusOccupancy: 16},
}

// ArchARM models the Ampere Altra Max (§7.1): 128 cores, one socket,
// a flatter mesh (uniform miss costs, slightly cheaper bus).
var ArchARM = Arch{
	Name:     "arm",
	NodeCPUs: 0, // single node
	MaxCPUs:  128,
	Costs:    coherence.CostModel{Hit: 1, Miss: 36, RemoteMiss: 36, Upgrade: 30, BusOccupancy: 12},
}

// ArchByName resolves "intel" or "arm".
func ArchByName(name string) (Arch, bool) {
	switch name {
	case "intel", "":
		return ArchIntel, true
	case "arm":
		return ArchARM, true
	}
	return Arch{}, false
}

// Fig1Threads is the default sweep used for the Figure 1 curves.
func Fig1Threads(a Arch) []int {
	base := []int{1, 2, 4, 8, 12, 16, 24, 32, 48, 64}
	if a.MaxCPUs >= 128 {
		base = append(base, 96, 128)
	}
	out := base[:0]
	for _, t := range base {
		if t <= a.MaxCPUs {
			out = append(out, t)
		}
	}
	return out
}

// Fig1SimResult reproduces Figures 1a–1d on the simulator: aggregate
// modeled throughput (episodes per kilocycle) per lock across a thread
// sweep, emitted in the versioned result schema (Track B, so real and
// modeled curves stay diffable but are never silently compared).
// moderate=false is maximal contention (empty non-critical section,
// Figures 1a/1c); moderate=true draws non-critical work uniformly, the
// Figures 1b/1d configuration.
func Fig1SimResult(a Arch, moderate bool, episodes int) *harness.Result {
	if episodes <= 0 {
		episodes = 200
	}
	workload := "max"
	var ncs uint64
	if moderate {
		workload = "moderate"
		ncs = 1000
	}
	res := harness.NewResult("cohsim", "B", 1)
	res.SetConfig("arch", a.Name)
	res.SetConfig("episodes", strconv.Itoa(episodes))
	for _, mk := range simlocks.All() {
		for _, tc := range Fig1Threads(a) {
			out := simlocks.Run(mk, simlocks.Config{
				Threads:    tc,
				Episodes:   episodes,
				Mode:       coherence.Timed,
				Costs:      a.Costs,
				CSShared:   true,
				CSWork:     10,
				NCSMaxWork: ncs,
				NodeCPUs:   a.NodeCPUs,
				Seed:       1,
			})
			res.Add(harness.Cell{
				Lock:     out.Lock,
				Workload: workload,
				Threads:  tc,
				Unit:     "eps/kcycle",
				Score:    harness.Finite(out.Throughput),
				Extras: map[string]float64{
					"events_per_episode": harness.Finite(out.EventsPerEpisode),
				},
			})
		}
	}
	return res
}

// Fig1Sim renders Fig1SimResult as the familiar matrix table.
func Fig1Sim(a Arch, moderate bool, episodes int) *table.Table {
	label := "max contention"
	if moderate {
		label = "moderate contention"
	}
	res := Fig1SimResult(a, moderate, episodes)
	return harness.MatrixTable(res,
		fmt.Sprintf("Figure 1 (%s, %s) — modeled throughput, episodes/kcycle", a.Name, label))
}

// middleWindow drops the first and last quarter of a schedule,
// leaving the steady-state region.
func middleWindow(s []int) []int {
	if len(s) < 8 {
		return s
	}
	return s[len(s)/4 : len(s)*3/4]
}

// Section8Tally reproduces §8's itemized miss tallies: which access
// site of each algorithm pays which coherence event in an idealized
// contended acquire/release episode. The paper derives CLH = 5 (the
// node-prepare store, the exchange, the first and last waiting loads,
// and the release store) and Reciprocating = 4 (the Gate re-arm
// upgrade, the exchange, the wake load, and the grant store); the
// per-line breakdown shows exactly those sites.
func Section8Tally(threads, episodes int) *table.Table {
	if threads <= 0 {
		threads = 10
	}
	if episodes <= 0 {
		episodes = 500
	}
	t := table.New("§8 — per-access-site coherence events per episode (simulator)",
		"Lock", "Line", "LoadMiss", "StoreMiss", "Upgrade", "Events/episode")
	for _, name := range []string{"CLH", "Recipro"} {
		out := simlocks.Run(simlocks.ByName(name), simlocks.Config{
			Threads:  threads,
			Episodes: episodes,
			Warmup:   0, // whole-run attribution; onset is negligible
			Mode:     coherence.RoundRobin,
			CSWork:   5,
			Seed:     1,
		})
		n := float64(out.TotalEpisodes)
		labels := make([]string, 0, len(out.LineBreakdown))
		for l := range out.LineBreakdown {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			ls := out.LineBreakdown[l]
			if ls.Events() == 0 {
				continue
			}
			t.Add(name, l,
				table.F(float64(ls.LoadMisses)/n, 2),
				table.F(float64(ls.StoreMisses)/n, 2),
				table.F(float64(ls.Upgrades)/n, 2),
				table.F(float64(ls.Events())/n, 2))
		}
	}
	return t
}

// SegmentScaling verifies §8's "Handoff costs" observation: as the
// number of contending threads grows, Reciprocating's segments get
// longer, so the central arrival word is consulted (detached) less and
// less often — measured directly by counting detach operations per
// episode. Under sustained round-robin contention the mean segment
// length comes out at T/2 and the total coherence cost per episode
// stays pinned at 4 regardless.
func SegmentScaling(episodes int) *table.Table {
	if episodes <= 0 {
		episodes = 400
	}
	t := table.New("§8 — segment length and central-word traffic vs thread count (Reciprocating, simulator)",
		"Threads", "Detaches/episode", "MeanSegmentLength", "Events/episode")
	for _, threads := range []int{2, 4, 8, 16, 32} {
		out := simlocks.Run(simlocks.ByName("Recipro"), simlocks.Config{
			Threads:  threads,
			Episodes: episodes,
			Mode:     coherence.RoundRobin,
			CSWork:   5,
			Seed:     1,
		})
		n := float64(out.TotalEpisodes)
		det := float64(out.Instance.(*simlocks.Recipro).Detaches())
		seg := "∞"
		if det > 0 {
			seg = table.F(n/det, 1)
		}
		t.Add(table.I(int64(threads)), table.F(det/n, 4), seg,
			table.F(out.EventsPerEpisode, 3))
	}
	return t
}

// PaddingAblationSim quantifies the paper's 128-byte sequestration on
// the simulator: the same locks run with every hot word on its own
// line (the paper's alignment discipline) versus packed four words to
// a line (lock words and wait elements false-sharing with their
// neighbors). Events per episode inflate when hot words share lines.
func PaddingAblationSim(threads, episodes int) *table.Table {
	if threads <= 0 {
		threads = 8
	}
	if episodes <= 0 {
		episodes = 300
	}
	t := table.New("Padding ablation — coherence events/episode, sequestered vs packed (simulator)",
		"Lock", "Sequestered(128B)", "Packed(4/line)", "Inflation")
	for _, name := range []string{"TKT", "MCS", "CLH", "Recipro"} {
		run := func(wpl int) float64 {
			out := simlocks.Run(simlocks.ByName(name), simlocks.Config{
				Threads:      threads,
				Episodes:     episodes,
				Warmup:       episodes / 5,
				Mode:         coherence.RoundRobin,
				CSWork:       5,
				WordsPerLine: wpl,
				Seed:         1,
			})
			return out.EventsPerEpisode
		}
		seq := run(1)
		packed := run(4)
		t.Add(name, table.F(seq, 2), table.F(packed, 2), table.F(packed/seq, 2)+"x")
	}
	return t
}

// Table2Result carries the §9.1 palindromic-schedule reproduction.
type Table2Result struct {
	Schedule    []int
	Cycle       []int
	Palindromic bool
	Disparity   float64
	MaxBypass   int
}

// Table2 reproduces §9.1 / Table 2: five threads recirculating over a
// Reciprocating lock with empty critical and non-critical sections
// under a deterministic scheduler settle into a palindromic admission
// cycle with per-cycle admission disparity 2 and bypass bound 2.
func Table2(threads, episodes int) (Table2Result, *table.Table) {
	if threads <= 0 {
		threads = 5
	}
	if episodes <= 0 {
		episodes = 200
	}
	out := simlocks.Run(simlocks.ByName("Recipro"), simlocks.Config{
		Threads:  threads,
		Episodes: episodes,
		Mode:     coherence.RoundRobin,
		Seed:     1,
	})
	// Threads complete fixed episode counts, so the raw schedule has
	// an onset transient at the front and a drain phase (fewer live
	// threads) at the back; the steady-state cycle lives in the
	// middle window.
	steady := middleWindow(out.AdmissionSchedule)
	res := Table2Result{Schedule: out.AdmissionSchedule}
	if cyc, ok := admission.FindCycle(steady, 4); ok {
		res.Cycle = cyc
		res.Palindromic = admission.IsPalindromic(cyc)
		res.Disparity = admission.CycleDisparity(cyc, threads)
	}
	res.MaxBypass = admission.MaxBypass(steady, threads)

	t := table.New("Table 2 — palindromic admission schedule (Reciprocating, simulator)",
		"Metric", "Value", "Paper")
	t.Add("threads", table.I(int64(threads)), "5 (A..E)")
	t.Add("cycle detected", fmt.Sprintf("%v", res.Cycle != nil), "yes")
	t.Add("cycle", fmt.Sprintf("%v", res.Cycle), "A B C D E D C B")
	t.Add("cycle period", table.I(int64(len(res.Cycle))), "8 (=2N-2)")
	t.Add("palindromic", fmt.Sprintf("%v", res.Palindromic), "yes")
	t.Add("per-cycle admission disparity", table.F(res.Disparity, 2), "2.00 (§9.2 bound)")
	t.Add("max bypass observed", table.I(int64(res.MaxBypass)), "<=2 (bounded bypass)")
	return res, t
}

// Table2Report converts the §9.1 reproduction into the versioned
// result schema: one informational cell whose extras carry the cycle
// period, per-cycle disparity, bypass bound, and palindromicity
// (1=true), with the detected cycle itself in the notes.
func Table2Report(threads, episodes int) *harness.Result {
	if threads <= 0 {
		threads = 5
	}
	t2, _ := Table2(threads, episodes)
	res := harness.NewResult("cohsim", "B", 1)
	c := harness.Cell{
		Lock: "Recipro", Workload: "table2", Threads: threads,
		Extras: map[string]float64{
			"cycle_period": float64(len(t2.Cycle)),
			"disparity":    harness.Finite(t2.Disparity),
			"max_bypass":   float64(t2.MaxBypass),
			"palindromic":  b2f(t2.Palindromic),
		},
		Notes: map[string]string{"cycle": fmt.Sprintf("%v", t2.Cycle)},
	}
	res.Add(c)
	return res
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
