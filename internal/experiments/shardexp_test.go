package experiments

import (
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/registry"
)

func TestShardWorkloadNaming(t *testing.T) {
	cases := []struct {
		shards int
		want   string
	}{
		{0, "readrandom"},
		{1, "readrandom"},
		{2, "readrandom/s2"},
		{16, "readrandom/s16"},
	}
	for _, c := range cases {
		if got := ShardWorkload("readrandom", c.shards); got != c.want {
			t.Errorf("ShardWorkload(readrandom, %d) = %q, want %q", c.shards, got, c.want)
		}
		if back := workloadShards(c.want); c.shards > 1 && back != c.shards {
			t.Errorf("workloadShards(%q) = %d, want %d", c.want, back, c.shards)
		}
	}
	if workloadShards("readrandom") != 1 || workloadShards("readrandom/sX") != 1 {
		t.Error("workloadShards should default malformed names to 1")
	}
}

// The saturation model's shape, independent of any measurement: more
// shards never predict less throughput, the serial bound binds at one
// shard, and the processor bound caps the thread axis.
func TestShardModelBounds(t *testing.T) {
	m := ShardModel{TauNS: 100, CritNS: 50, Procs: 8}
	prev := 0.0
	for _, s := range []int{1, 2, 4, 8, 16} {
		x := m.PredictMops(8, s)
		if x < prev {
			t.Errorf("prediction fell from %.3f to %.3f at S=%d", prev, x, s)
		}
		prev = x
	}
	// S=1: bound is 1/c = 0.02 ops/ns = 20 Mops.
	if x := m.PredictMops(8, 1); x != 20 {
		t.Errorf("S=1 serial bound = %.3f Mops, want 20", x)
	}
	// Unbounded shards: bound is min(T,P)/τ = 8/100 ops/ns = 80 Mops.
	if x := m.PredictMops(8, 1024); x != 80 {
		t.Errorf("compute bound = %.3f Mops, want 80", x)
	}
	// Threads beyond Procs add nothing.
	if m.PredictMops(64, 1024) != m.PredictMops(8, 1024) {
		t.Error("threads beyond GOMAXPROCS should not raise the prediction")
	}
	if (ShardModel{}).PredictMops(4, 4) != 0 {
		t.Error("uncalibrated model must predict 0")
	}
}

func TestCalibrateShardModelSmoke(t *testing.T) {
	e, ok := registry.Lookup("GoMutex")
	if !ok {
		t.Fatal("GoMutex not in catalog")
	}
	m := CalibrateShardModel(e, 2000, 5*time.Millisecond)
	if m.TauNS <= 0 {
		t.Fatalf("calibration produced τ=%v", m.TauNS)
	}
	if m.CritNS <= 0 || m.CritNS > m.TauNS {
		t.Fatalf("c=%v outside (0, τ=%v]", m.CritNS, m.TauNS)
	}
	if m.Procs < 1 {
		t.Fatalf("Procs=%d", m.Procs)
	}
}

// End-to-end smoke of the prediction experiment: one lock, a tiny
// sweep, every cell carrying a positive score and the model extras in
// the shape cmd/benchdiff consumes.
func TestShardPredictionResultSmoke(t *testing.T) {
	e, ok := registry.Lookup("GoMutex")
	if !ok {
		t.Fatal("GoMutex not in catalog")
	}
	shards := []int{1, 4}
	threads := []int{1, 2}
	res := ShardPredictionResult([]registry.Entry{e}, shards, threads, 3*time.Millisecond, 2000, 1, 7)
	if res.Harness != "kvbench" {
		t.Fatalf("harness = %q", res.Harness)
	}
	if want := len(shards) * len(threads); len(res.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(res.Cells), want)
	}
	seen := map[string]bool{}
	for _, c := range res.Cells {
		seen[c.Key()] = true
		if c.Score <= 0 {
			t.Errorf("%s: non-positive measured score %v", c.Key(), c.Score)
		}
		for _, k := range []string{"predicted_mops", "model_tau_ns", "model_crit_ns", "prediction_ratio"} {
			if c.Extras[k] <= 0 {
				t.Errorf("%s: extra %q = %v, want > 0", c.Key(), k, c.Extras[k])
			}
		}
	}
	if len(seen) != len(res.Cells) {
		t.Fatalf("duplicate cell keys: %d unique of %d", len(seen), len(res.Cells))
	}
	if tab := ShardPredictionTable(res); len(tab.Rows) != len(res.Cells) {
		t.Fatalf("table rows = %d, want %d", len(tab.Rows), len(res.Cells))
	}
}

// The sharded measurement path must go through the shared engine and
// produce a defined median for shards > 1 (the coarse path is covered
// by the existing kvstore smoke tests).
func TestKVShardedReadRandomMeasureSmoke(t *testing.T) {
	e, ok := registry.Lookup("MCS")
	if !ok {
		t.Fatal("MCS not in catalog")
	}
	m := KVShardedReadRandomMeasure(e, nil, 4, kvstore.ReadRandomConfig{
		Threads:  2,
		Keyspace: 2000,
		Duration: 3 * time.Millisecond,
		Seed:     7,
	}, 2000, 1)
	if m.Median <= 0 {
		t.Fatalf("sharded readrandom median = %v", m.Median)
	}
}
