package experiments

import (
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/harness"
	"repro/internal/kvstore"
	"repro/internal/mutexbench"
	"repro/internal/registry"
	"repro/internal/table"
)

// This file reproduces the core of "Performance Prediction for
// Coarse-Grained Locking" (PAPERS.md) for the kvstore shard sweep: a
// two-parameter analytic model calibrated from one single-threaded
// run on the coarse store, then compared against measured throughput
// at every (shard count × thread count) point.
//
// Model. Each readrandom operation takes τ ns of total service time,
// of which c ns execute under the store's lock (Get acquires twice:
// the snapshot and the statistics update). With uniformly hashed keys
// over S shards and T worker goroutines on P processors, throughput
// is bounded by the compute bandwidth and by the aggregate serial
// bandwidth of the shards:
//
//	X(T,S) ≤ min(T, P)/τ    (workers, processors)
//	X(T,S) ≤ S/c            (each shard serializes c per op it owns)
//
// and the prediction is the smaller bound. This is the saturation
// skeleton of the paper's queueing model: it ignores queueing delay
// near the knee and hash imbalance, so it over-predicts slightly at
// the crossover — exactly the gap the predicted-vs-measured figure is
// meant to expose.

// ShardModel holds the calibrated model inputs for one lock.
type ShardModel struct {
	// TauNS is the per-operation service time at T=1, S=1.
	TauNS float64
	// CritNS is the per-operation lock-held time at T=1, S=1.
	CritNS float64
	// Procs is GOMAXPROCS at calibration time.
	Procs int
}

// PredictMops predicts readrandom throughput (Mops/s) at the given
// worker and shard counts.
func (m ShardModel) PredictMops(threads, shards int) float64 {
	if m.TauNS <= 0 {
		return 0
	}
	workers := float64(threads)
	if p := float64(m.Procs); p < workers {
		workers = p
	}
	x := workers / m.TauNS // ops per ns
	if m.CritNS > 0 {
		if serial := float64(shards) / m.CritNS; serial < x {
			x = serial
		}
	}
	return x * 1000 // ops/ns → Mops/s
}

// holdTimer measures the wall time a lock is held. It is a
// calibration-only wrapper: the single-threaded calibration run is the
// only writer, so plain fields suffice and the timer adds no
// synchronization of its own.
type holdTimer struct {
	inner  sync.Locker
	heldNS int64
	acqs   int64
	t0     time.Duration
}

func (h *holdTimer) Lock() {
	h.inner.Lock()
	h.t0 = clock.Wall.Now()
}

func (h *holdTimer) Unlock() {
	h.heldNS += (clock.Wall.Now() - h.t0).Nanoseconds()
	h.acqs++
	h.inner.Unlock()
}

func (h *holdTimer) reset() { h.heldNS, h.acqs = 0, 0 }

// CalibrateShardModel measures τ and c for one catalog lock with a
// single-threaded readrandom run over a coarse store. The hold timer
// brackets every acquisition, so c includes both of Get's critical
// sections; timer overhead inflates τ and c together, keeping their
// ratio — what the prediction hinges on — honest.
func CalibrateShardModel(lf registry.Entry, keys int, dur time.Duration) ShardModel {
	if keys <= 0 {
		keys = 50_000
	}
	if dur <= 0 {
		dur = 100 * time.Millisecond
	}
	ht := &holdTimer{inner: lf.New()}
	db := kvstore.Open(kvstore.Options{Lock: ht, MemTableBytes: kvMemTableBytes})
	kvstore.FillSeq(db, keys, 100)
	ht.reset() // exclude the fill's acquisitions from the model
	res := kvstore.ReadRandom(db, kvstore.ReadRandomConfig{
		Threads:  1,
		Keyspace: keys,
		Duration: dur,
	})
	m := ShardModel{Procs: runtime.GOMAXPROCS(0)}
	if res.Mops > 0 {
		m.TauNS = 1000 / res.Mops // Mops/s → ns per op
	}
	// Get acquires twice per operation, so ops = acqs/2; heldNS/ops is
	// then per-op critical time, independent of the engine's
	// measurement-window bounds.
	if ht.acqs > 0 {
		m.CritNS = 2 * float64(ht.heldNS) / float64(ht.acqs)
	}
	if m.CritNS > m.TauNS && m.TauNS > 0 {
		m.CritNS = m.TauNS // c is a fraction of τ by definition
	}
	return m
}

// ShardPredictionResult runs the coarse-vs-sharded prediction
// experiment: for each selected lock it calibrates the model once,
// then measures readrandom at every shard count × thread count and
// emits one harness cell per point — measured throughput as the
// score (so cmd/benchdiff gates it like any other cell) with the
// prediction and model parameters as extras.
func ShardPredictionResult(lfs []registry.Entry, shardCounts, threads []int, dur time.Duration, keys, runs int, seed uint64) *harness.Result {
	if dur <= 0 {
		dur = 100 * time.Millisecond
	}
	if keys <= 0 {
		keys = 50_000
	}
	if runs <= 0 {
		runs = 3
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8, 16}
	}
	if len(threads) == 0 {
		threads = defaultThreads()
	}
	res := harness.NewResult("kvbench", "A", seed)
	res.SetConfig("mode", "predict")
	res.SetConfig("duration", dur.String())
	res.SetConfig("keys", strconv.Itoa(keys))
	res.SetConfig("runs", strconv.Itoa(runs))
	res.SetConfig("shards", intList(shardCounts))
	for _, lf := range lfs {
		model := CalibrateShardModel(lf, keys, dur)
		for _, sc := range shardCounts {
			for _, tc := range threads {
				m := KVShardedReadRandomMeasure(lf, nil, sc, kvstore.ReadRandomConfig{
					Threads:  tc,
					Keyspace: keys,
					Duration: dur,
					Seed:     seed,
				}, keys, runs)
				cell := harness.CellFromMeasurement(lf.Name, ShardWorkload("readrandom", sc), mutexbench.Unit, m)
				if cell.Extras == nil {
					cell.Extras = map[string]float64{}
				}
				pred := model.PredictMops(tc, sc)
				cell.Extras["predicted_mops"] = pred
				cell.Extras["model_tau_ns"] = model.TauNS
				cell.Extras["model_crit_ns"] = model.CritNS
				if pred > 0 {
					cell.Extras["prediction_ratio"] = cell.Score / pred
				}
				res.Add(cell)
			}
		}
	}
	return res
}

// ShardPredictionTable renders a prediction result as a
// predicted-vs-measured table.
func ShardPredictionTable(res *harness.Result) *table.Table {
	t := table.New("Coarse vs sharded — predicted and measured readrandom Mops/s (model: min(min(T,P)/τ, S/c))",
		"Lock", "Shards", "Threads", "Measured", "Predicted", "Meas/Pred")
	for _, c := range res.Cells {
		t.Add(c.Lock,
			table.I(int64(workloadShards(c.Workload))),
			table.I(int64(c.Threads)),
			table.F(c.Score, 3),
			table.F(c.Extras["predicted_mops"], 3),
			table.F(c.Extras["prediction_ratio"], 2))
	}
	return t
}

// workloadShards parses the shard count back out of a ShardWorkload
// name ("readrandom" → 1, "readrandom/s8" → 8).
func workloadShards(workload string) int {
	i := strings.LastIndex(workload, "/s")
	if i < 0 {
		return 1
	}
	n, err := strconv.Atoi(workload[i+2:])
	if err != nil || n < 1 {
		return 1
	}
	return n
}

func intList(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}
