package experiments

import (
	"runtime"
	"sync"

	"repro/internal/admission"
	"repro/internal/harness"
	"repro/internal/registry"
	"repro/internal/table"
)

// recordAdmissions runs workers goroutines over one lock, each
// performing iters acquisitions, recording the admission order inside
// the critical section (which makes the recording itself safe).
// An occasional in-CS yield builds real queues on small GOMAXPROCS.
func recordAdmissions(l sync.Locker, workers, iters int) []int {
	schedule := make([]int, 0, workers*iters)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				schedule = append(schedule, w)
				if i%4 == 0 {
					runtime.Gosched()
				}
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	return schedule
}

// BypassBound measures §2's bounded-bypass property empirically on
// real goroutines: the maximum number of times any single competitor
// was admitted between two consecutive admissions of a waiting
// thread. Reciprocating Locks guarantee at most 2 (once ahead on the
// current segment, once via the next segment); FIFO locks show 1; the
// futex mutex (the real-world pthread default §5 describes) admits
// barging and can exhibit much larger — in principle unbounded —
// bypass.
//
// Caveat: on a small-GOMAXPROCS scheduler a waiter that never gets a
// processor cannot be bypassed *at the lock*; the in-CS yields make
// queues form, so observed bypass is a lower bound for barging locks
// and an upper-bound check for the bounded ones.
func BypassBound(workers, iters int) *table.Table {
	res := BypassBoundResult(workers, iters)
	t := table.New("§2/§5 — empirical bypass bound (Track A)",
		"Lock", "MaxBypass", "Guarantee")
	for _, c := range res.Cells {
		t.Add(c.Lock, table.I(int64(c.Extras["max_bypass"])), c.Notes["guarantee"])
	}
	return t
}

// BypassBoundResult is BypassBound in the versioned result schema:
// informational cells whose "max_bypass" extra carries the observed
// bound and whose notes restate the algorithmic guarantee.
func BypassBoundResult(workers, iters int) *harness.Result {
	if workers <= 0 {
		workers = 6
	}
	if iters <= 0 {
		iters = 4000
	}
	set := []struct {
		name      string
		guarantee string
	}{
		{"Recipro", "<=2 (population-bounded)"},
		{"Recipro-L4", "<=2 (population-bounded)"},
		{"Fair", "<=2 (intra-segment reorder only)"},
		{"TwoLane", "<=2 per lane"},
		{"Chen", "<=2 (same segments)"},
		{"TKT", "1 (strict FIFO)"},
		{"MCS", "1 (strict FIFO)"},
		{"CLH", "1 (strict FIFO)"},
		{"FutexMutex", "unbounded (barging)"},
		{"TAS", "unbounded (barging)"},
	}
	res := harness.NewResult("fairness", "A", 0)
	for _, entry := range set {
		lf, ok := registry.Lookup(entry.name)
		if !ok {
			continue
		}
		sched := recordAdmissions(lf.New(), workers, iters)
		res.Add(harness.Cell{
			Lock: entry.name, Workload: "bypass", Threads: workers,
			Extras: map[string]float64{
				"max_bypass": float64(admission.MaxBypass(sched, workers)),
			},
			Notes: map[string]string{"guarantee": entry.guarantee},
		})
	}
	return res
}
