package waiter

import (
	"testing"
	"time"

	"repro/internal/clock"
)

// Policies that poll the budget on every call (Yield yields each pause;
// Backoff sleeps each pause) must detect a long-expired deadline on the
// very first PauseBounded, without pausing at all.
func TestPauseBoundedNegativeDeadlineImmediate(t *testing.T) {
	for _, p := range []Policy{PolicyYield, PolicyBackoff} {
		rec := &recordingSink{}
		w := NewWithSink(p, rec)
		if w.PauseBounded(clock.Wall.Now()-time.Hour, nil) {
			t.Fatalf("policy %v: expired deadline not detected on first call", p)
		}
		if len(rec.events) != 0 {
			t.Fatalf("policy %v: exhausted return still paused (%q)", p, rec.events)
		}
	}
}

// An already-closed done channel (the already-expired-context case:
// bounded.LockCtx passes ctx.Done() straight through) must be detected
// within one spin stride even for hot-spinning policies, and
// immediately for polling-every-call policies.
func TestPauseBoundedPreClosedDone(t *testing.T) {
	done := make(chan struct{})
	close(done)

	w := NewWithSink(PolicyYield, nil)
	if w.PauseBounded(0, done) {
		t.Fatal("PolicyYield: pre-closed done not detected on first call")
	}

	w = NewWithSink(PolicySpin, nil)
	for i := 1; i <= deadlineStride; i++ {
		if !w.PauseBounded(0, done) {
			return
		}
	}
	t.Fatal("PolicySpin: pre-closed done not detected within one stride")
}

// Both bounds together: whichever trips first terminates the episode.
// A closed done channel wins over a generous deadline; an expired
// deadline wins over an open done channel.
func TestPauseBoundedCombinedBounds(t *testing.T) {
	done := make(chan struct{})
	close(done)
	w := NewWithSink(PolicyYield, nil)
	if w.PauseBounded(clock.Wall.Now()+time.Hour, done) {
		t.Fatal("closed done ignored because the deadline was far away")
	}

	open := make(chan struct{})
	defer close(open)
	w = NewWithSink(PolicyYield, nil)
	if w.PauseBounded(clock.Wall.Now()-time.Second, open) {
		t.Fatal("expired deadline ignored because done was open")
	}
}

// Sink discipline under PauseBounded: every true return pauses exactly
// once (one transition), and an exhausted (false) return pauses zero
// times — the caller is about to abandon and must not be charged a
// transition that never happened.
func TestPauseBoundedSinkTransitionOrdering(t *testing.T) {
	rec := &recordingSink{}
	w := NewWithSink(PolicyAdaptive, rec)
	const calls = spinBudget + yieldBudget + 10
	for i := 0; i < calls; i++ {
		if !w.PauseBounded(0, nil) {
			t.Fatal("unbounded episode reported exhaustion")
		}
	}
	if len(rec.events) != calls {
		t.Fatalf("%d transitions for %d bounded pauses — must be exactly one each", len(rec.events), calls)
	}
	// Same escalation order as Pause: spins, then yields, then parks.
	phase, order := 0, map[byte]int{'s': 0, 'y': 1, 'p': 2}
	for i, e := range rec.events {
		if order[e] < phase {
			t.Fatalf("event %d: %q regresses the spin→yield→park escalation", i, e)
		}
		phase = order[e]
	}

	before := len(rec.events)
	if w.PauseBounded(clock.Wall.Now()-time.Minute, nil) {
		t.Fatal("escalated waiter missed an expired deadline")
	}
	if len(rec.events) != before {
		t.Fatal("exhausted PauseBounded still reported a transition")
	}
}

// A zero deadline is "no time bound", not "expired at the epoch": with
// a nil done channel the episode must keep going indefinitely even for
// policies that poll every call.
func TestPauseBoundedZeroDeadlineMeansUnbounded(t *testing.T) {
	w := NewWithSink(PolicyYield, nil)
	for i := 0; i < 200; i++ {
		if !w.PauseBounded(0, nil) {
			t.Fatal("zero deadline treated as a bound")
		}
	}
}
