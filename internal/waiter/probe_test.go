package waiter

import (
	"testing"
	"time"
)

// The probe must fire exactly once, at the first transition of any
// kind, and keep forwarding every transition to its inner sink.
func TestArrivalProbeFiresOnceAndForwards(t *testing.T) {
	rec := &recordingSink{}
	p := NewArrivalProbe(rec)
	if p.Fired() {
		t.Fatal("fresh probe already fired")
	}
	select {
	case <-p.Published():
		t.Fatal("fresh probe's channel already closed")
	default:
	}

	w := NewWithSink(PolicySpin, p)
	w.Pause()
	if !p.Fired() {
		t.Fatal("first Pause did not fire the probe")
	}
	select {
	case <-p.Published():
	default:
		t.Fatal("Published channel not closed after first transition")
	}
	// Later transitions of every kind must forward without re-closing.
	p.CountYield()
	p.CountPark()
	p.CountSpin()
	if got := string(rec.events); got != "syps" {
		t.Fatalf("inner sink saw %q, want \"syps\"", got)
	}
}

// A probe with no inner sink must absorb transitions without panicking.
func TestArrivalProbeNilInner(t *testing.T) {
	p := NewArrivalProbe(nil)
	p.CountSpin()
	p.CountYield()
	p.CountPark()
	if !p.Fired() {
		t.Fatal("probe did not fire")
	}
}

// The conformance driver's installation pattern: SetSink(probe) before
// the arriving goroutine starts, so the goroutine's first Pause — after
// it has published its arrival to the lock — fires the probe.
func TestArrivalProbeGlobalPickup(t *testing.T) {
	p := NewArrivalProbe(nil)
	SetSink(p)
	defer SetSink(nil)
	done := make(chan struct{})
	go func() {
		w := New(PolicyYield)
		w.Pause()
		close(done)
	}()
	select {
	case <-p.Published():
	case <-time.After(5 * time.Second):
		t.Fatal("probe never fired through the global sink")
	}
	<-done
}
