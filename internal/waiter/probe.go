package waiter

import "sync/atomic"

// ArrivalProbe is a Sink that reports the first waiting transition of a
// lock-acquisition episode and forwards every transition to an optional
// inner sink. It exists for admission-schedule instrumentation: every
// lock in this repository publishes its arrival (swap, fetch-add, or
// queue link) before constructing a Waiter and pausing, so for a
// contended acquisition the first transition observed by a
// freshly-installed probe certifies "this goroutine's arrival is now
// visible to the lock" — the fact a deterministic admission-schedule
// driver needs before it may issue the next event.
//
// Install with SetSink immediately before starting the arriving
// goroutine; the probe is picked up by the Waiter the goroutine
// constructs after publishing itself. Waiters constructed earlier keep
// the sink that was active at their construction, so concurrent older
// waiters do not retrigger a new probe.
type ArrivalProbe struct {
	inner Sink
	fired atomic.Bool
	ch    chan struct{}
}

// NewArrivalProbe returns a probe forwarding to inner (which may be
// nil).
func NewArrivalProbe(inner Sink) *ArrivalProbe {
	return &ArrivalProbe{inner: inner, ch: make(chan struct{})}
}

// Published returns a channel closed at the probe's first observed
// transition.
func (p *ArrivalProbe) Published() <-chan struct{} { return p.ch }

// Fired reports whether any transition has been observed.
func (p *ArrivalProbe) Fired() bool { return p.fired.Load() }

func (p *ArrivalProbe) signal() {
	if p.fired.CompareAndSwap(false, true) {
		close(p.ch)
	}
}

// CountSpin implements Sink.
func (p *ArrivalProbe) CountSpin() {
	p.signal()
	if p.inner != nil {
		p.inner.CountSpin()
	}
}

// CountYield implements Sink.
func (p *ArrivalProbe) CountYield() {
	p.signal()
	if p.inner != nil {
		p.inner.CountYield()
	}
}

// CountPark implements Sink.
func (p *ArrivalProbe) CountPark() {
	p.signal()
	if p.inner != nil {
		p.inner.CountPark()
	}
}
