package waiter

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffBounded(t *testing.T) {
	w := New(PolicyBackoff)
	start := time.Now()
	for i := 0; i < 12; i++ {
		w.Pause()
	}
	// Sum of capped exponential sleeps stays well under a second.
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("backoff slept %v", el)
	}
}

func TestPauseCountsSpins(t *testing.T) {
	for _, p := range []Policy{PolicySpin, PolicyYield, PolicyAdaptive, PolicyBackoff} {
		w := New(p)
		for i := 0; i < 10; i++ {
			w.Pause()
		}
		if got := w.Spins(); got != 10 {
			t.Errorf("policy %v: Spins() = %d, want 10", p, got)
		}
		w.Reset()
		if got := w.Spins(); got != 0 {
			t.Errorf("policy %v: Spins() after Reset = %d, want 0", p, got)
		}
	}
}

// A waiter must allow another goroutine to make progress even on a
// single-processor scheduler: spin on a flag set by a second goroutine.
func TestPauseAllowsProgress(t *testing.T) {
	for _, p := range []Policy{PolicySpin, PolicyYield, PolicyAdaptive} {
		var flag atomic.Bool
		done := make(chan struct{})
		go func() {
			flag.Store(true)
			close(done)
		}()
		w := New(p)
		deadline := time.Now().Add(10 * time.Second)
		for !flag.Load() {
			if time.Now().After(deadline) {
				t.Fatalf("policy %v: flag never observed", p)
			}
			w.Pause()
		}
		<-done
	}
}

func TestAdaptiveEscalatesWithoutPanic(t *testing.T) {
	w := New(PolicyAdaptive)
	// Drive the waiter well past the sleep threshold; the sleep cap
	// keeps this fast.
	start := time.Now()
	for i := 0; i < spinBudget+yieldBudget+5; i++ {
		w.Pause()
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("adaptive waiter slept far too long")
	}
}

func TestZeroValueWaiterUsable(t *testing.T) {
	var w Waiter
	w.Pause()
	if w.Spins() != 1 {
		t.Fatalf("zero-value waiter Spins() = %d, want 1", w.Spins())
	}
}
