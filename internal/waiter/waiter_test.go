package waiter

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestBackoffBounded(t *testing.T) {
	w := New(PolicyBackoff)
	start := time.Now()
	for i := 0; i < 12; i++ {
		w.Pause()
	}
	// Sum of capped exponential sleeps stays well under a second.
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("backoff slept %v", el)
	}
}

func TestPauseCountsSpins(t *testing.T) {
	for _, p := range []Policy{PolicySpin, PolicyYield, PolicyAdaptive, PolicyBackoff} {
		w := New(p)
		for i := 0; i < 10; i++ {
			w.Pause()
		}
		if got := w.Spins(); got != 10 {
			t.Errorf("policy %v: Spins() = %d, want 10", p, got)
		}
		w.Reset()
		if got := w.Spins(); got != 0 {
			t.Errorf("policy %v: Spins() after Reset = %d, want 0", p, got)
		}
	}
}

// A waiter must allow another goroutine to make progress even on a
// single-processor scheduler: spin on a flag set by a second goroutine.
func TestPauseAllowsProgress(t *testing.T) {
	for _, p := range []Policy{PolicySpin, PolicyYield, PolicyAdaptive} {
		var flag atomic.Bool
		done := make(chan struct{})
		go func() {
			flag.Store(true)
			close(done)
		}()
		w := New(p)
		deadline := time.Now().Add(10 * time.Second)
		for !flag.Load() {
			if time.Now().After(deadline) {
				t.Fatalf("policy %v: flag never observed", p)
			}
			w.Pause()
		}
		<-done
	}
}

func TestAdaptiveEscalatesWithoutPanic(t *testing.T) {
	w := New(PolicyAdaptive)
	// Drive the waiter well past the sleep threshold; the sleep cap
	// keeps this fast.
	start := time.Now()
	for i := 0; i < spinBudget+yieldBudget+5; i++ {
		w.Pause()
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("adaptive waiter slept far too long")
	}
}

func TestZeroValueWaiterUsable(t *testing.T) {
	var w Waiter
	w.Pause()
	if w.Spins() != 1 {
		t.Fatalf("zero-value waiter Spins() = %d, want 1", w.Spins())
	}
}

// recordingSink logs every transition callback in order. Single-
// goroutine use only.
type recordingSink struct {
	events []byte // 's' spin, 'y' yield, 'p' park
}

func (r *recordingSink) CountSpin()  { r.events = append(r.events, 's') }
func (r *recordingSink) CountYield() { r.events = append(r.events, 'y') }
func (r *recordingSink) CountPark()  { r.events = append(r.events, 'p') }

func (r *recordingSink) count(c byte) int {
	n := 0
	for _, e := range r.events {
		if e == c {
			n++
		}
	}
	return n
}

// Every Pause must report exactly one transition, with per-policy
// counts matching the documented escalation schedule.
func TestSinkTransitionCounts(t *testing.T) {
	cases := []struct {
		name                 string
		policy               Policy
		pauses               int
		spins, yields, parks int
	}{
		// Adaptive: pauses 1..31 spin, 32..95 yield, 96.. park.
		{"Adaptive/spin-phase", PolicyAdaptive, spinBudget - 1, spinBudget - 1, 0, 0},
		{"Adaptive/yield-phase", PolicyAdaptive, spinBudget + 10, spinBudget - 1, 11, 0},
		// Park phase begins at pause spinBudget+yieldBudget (the first
		// pause past both budgets), so 5 extra pauses park 6 times.
		{"Adaptive/park-phase", PolicyAdaptive, spinBudget + yieldBudget + 5, spinBudget - 1, yieldBudget, 6},
		// Spin: every spinBudget-th pause yields, the rest spin hot.
		{"Spin", PolicySpin, 2 * spinBudget, 2*spinBudget - 2, 2, 0},
		// Yield: every pause yields.
		{"Yield", PolicyYield, 10, 0, 10, 0},
		// Backoff: every pause is a (sleeping) park.
		{"Backoff", PolicyBackoff, 5, 0, 0, 5},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			rec := &recordingSink{}
			w := NewWithSink(c.policy, rec)
			for i := 0; i < c.pauses; i++ {
				w.Pause()
			}
			if len(rec.events) != c.pauses {
				t.Fatalf("%d events for %d pauses — hooks must fire exactly once per transition", len(rec.events), c.pauses)
			}
			if s, y, p := rec.count('s'), rec.count('y'), rec.count('p'); s != c.spins || y != c.yields || p != c.parks {
				t.Errorf("spin/yield/park = %d/%d/%d, want %d/%d/%d", s, y, p, c.spins, c.yields, c.parks)
			}
		})
	}
}

// The adaptive policy must escalate monotonically: all spins strictly
// before the first yield, all yields strictly before the first park.
func TestAdaptiveTransitionOrdering(t *testing.T) {
	rec := &recordingSink{}
	w := NewWithSink(PolicyAdaptive, rec)
	for i := 0; i < spinBudget+yieldBudget+10; i++ {
		w.Pause()
	}
	phase := 0 // 0 spin, 1 yield, 2 park
	order := map[byte]int{'s': 0, 'y': 1, 'p': 2}
	for i, e := range rec.events {
		p := order[e]
		if p < phase {
			t.Fatalf("event %d: %q regresses from phase %d — order must be spin→yield→park", i, e, phase)
		}
		phase = p
	}
	if phase != 2 {
		t.Fatalf("escalation ended in phase %d, never parked", phase)
	}
}

// Reset starts a new episode (hot again) but keeps the attached sink.
func TestResetKeepsSink(t *testing.T) {
	rec := &recordingSink{}
	w := NewWithSink(PolicyAdaptive, rec)
	for i := 0; i < spinBudget+yieldBudget; i++ {
		w.Pause()
	}
	if rec.count('p') != 1 {
		t.Fatalf("parks before reset = %d, want 1", rec.count('p'))
	}
	w.Reset()
	rec.events = nil
	w.Pause()
	if len(rec.events) != 1 || rec.events[0] != 's' {
		t.Fatalf("first pause after Reset = %q, want spin (hot restart with sink attached)", rec.events)
	}
}

// New must pick up the global sink at construction; SetSink(nil)
// uninstalls it.
func TestGlobalSinkPickup(t *testing.T) {
	rec := &recordingSink{}
	SetSink(rec)
	defer SetSink(nil)
	w := New(PolicyYield)
	w.Pause()
	if rec.count('y') != 1 {
		t.Fatalf("yield not reported to global sink: %q", rec.events)
	}
	if ActiveSink() == nil {
		t.Fatal("ActiveSink() = nil while installed")
	}
	SetSink(nil)
	if ActiveSink() != nil {
		t.Fatal("ActiveSink() non-nil after uninstall")
	}
	w2 := New(PolicyYield)
	w2.Pause()
	if rec.count('y') != 1 {
		t.Fatal("waiter constructed after uninstall still reports")
	}
	// A waiter constructed while the sink was installed keeps it for
	// its whole episode (sink capture is per-construction).
	w.Pause()
	if rec.count('y') != 2 {
		t.Fatal("pre-uninstall waiter lost its captured sink")
	}
}

// PauseBounded with no budget at all must never report exhaustion.
func TestPauseBoundedUnbounded(t *testing.T) {
	w := New(PolicyAdaptive)
	for i := 0; i < 500; i++ {
		if !w.PauseBounded(0, nil) {
			t.Fatal("PauseBounded with no bounds reported exhaustion")
		}
	}
}

// A deadline in the past must be detected within one spin stride, and
// a live deadline must be detected soon after it passes: the waiter
// may overshoot by sleep clamping and stride granularity but not by
// a large factor.
func TestPauseBoundedDeadline(t *testing.T) {
	w := New(PolicyAdaptive)
	expired := clock.Wall.Now() - time.Millisecond
	for i := 0; i < deadlineStride+1; i++ {
		if !w.PauseBounded(expired, nil) {
			if i == 0 {
				t.Log("expired deadline detected on first pause")
			}
			goto detected
		}
	}
	t.Fatal("expired deadline not detected within one stride")
detected:

	w.Reset()
	const budget = 50 * time.Millisecond
	deadline := clock.Wall.Now() + budget
	start := time.Now()
	for w.PauseBounded(deadline, nil) {
		if time.Since(start) > 10*budget {
			t.Fatal("deadline overshot by 10x")
		}
	}
	if el := time.Since(start); el > 3*budget {
		t.Fatalf("deadline %v detected after %v", budget, el)
	}
}

// Closing the done channel must terminate the episode even with no
// deadline set.
func TestPauseBoundedDoneChannel(t *testing.T) {
	w := New(PolicyAdaptive)
	done := make(chan struct{})
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(done)
	}()
	start := time.Now()
	for w.PauseBounded(0, done) {
		if time.Since(start) > 10*time.Second {
			t.Fatal("done-channel close never detected")
		}
	}
}

// Sleeps must be clamped to the remaining budget: with a deadline just
// ahead, a deeply escalated waiter (which would normally sleep 100us
// per pause) must still return close to the deadline.
func TestPauseBoundedClampsSleep(t *testing.T) {
	w := New(PolicyAdaptive)
	// Escalate far past the spin and yield budgets.
	for i := 0; i < 400; i++ {
		w.Pause()
	}
	const budget = 5 * time.Millisecond
	deadline := clock.Wall.Now() + budget
	start := time.Now()
	for w.PauseBounded(deadline, nil) {
	}
	if el := time.Since(start); el > 20*budget {
		t.Fatalf("escalated waiter overshot %v deadline by %v", budget, el)
	}
}
