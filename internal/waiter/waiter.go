// Package waiter provides busy-wait ("Pause") policies for spin locks.
//
// The paper assumes a "polite" Pause() operator (x86 PAUSE / ARM YIELD)
// inside every busy-wait loop. Under the Go runtime — and in particular
// under GOMAXPROCS values smaller than the number of runnable
// goroutines — pure spinning starves the lock holder of a processor, so
// every practical policy here eventually yields to the scheduler.
//
// Three policies are provided:
//
//   - Spin: bounded hot spinning followed by runtime.Gosched. The
//     default; closest in spirit to PAUSE loops while remaining safe on
//     oversubscribed schedulers.
//   - Yield: immediate runtime.Gosched on every pause. Fastest handoff
//     when GOMAXPROCS == 1.
//   - Adaptive: spins hot while the number of pauses is small, then
//     yields, then sleeps in escalating increments. Robust default for
//     unknown oversubscription.
//
// Policies are expressed as small value types so that lock hot paths
// can inline the Pause call; a Waiter is cheap to construct per
// acquisition and holds only an iteration counter.
package waiter

import (
	"runtime"
	"time"
)

// Policy selects a busy-wait strategy.
type Policy int

const (
	// PolicyAdaptive spins briefly, then yields, then sleeps.
	PolicyAdaptive Policy = iota
	// PolicySpin spins hot for a fixed budget between yields.
	PolicySpin
	// PolicyYield yields to the scheduler on every pause.
	PolicyYield
	// PolicyBackoff sleeps for exponentially growing, capped
	// intervals — the classic randomized-backoff discipline the paper
	// rejects as not work conserving ("backoff delays ... constitute
	// dead time", §5). Provided as the contrast arm for ablations.
	PolicyBackoff
)

// Default is the policy used by locks unless overridden.
var Default = PolicyAdaptive

// spinBudget is the number of hot iterations performed before the
// first yield under PolicySpin and PolicyAdaptive.
const spinBudget = 32

// yieldBudget is the number of Gosched calls performed by
// PolicyAdaptive before it escalates to sleeping.
const yieldBudget = 64

// Waiter tracks progress of one waiting episode. The zero value is
// ready to use.
type Waiter struct {
	policy Policy
	n      int
}

// New returns a Waiter implementing the given policy.
func New(p Policy) Waiter { return Waiter{policy: p} }

// Pause performs one unit of polite waiting, escalating according to
// the policy as the episode lengthens.
func (w *Waiter) Pause() {
	w.n++
	switch w.policy {
	case PolicyYield:
		runtime.Gosched()
	case PolicyBackoff:
		// Exponential backoff: 1µs doubling to a 256µs cap. Any time
		// between the lock becoming free and the sleep expiring is
		// dead time — the §5 objection.
		shift := w.n
		if shift > 8 {
			shift = 8
		}
		time.Sleep(time.Duration(1<<shift) * time.Microsecond)
	case PolicySpin:
		if w.n%spinBudget == 0 {
			runtime.Gosched()
		} else {
			cpuRelax()
		}
	default: // PolicyAdaptive
		switch {
		case w.n < spinBudget:
			cpuRelax()
		case w.n < spinBudget+yieldBudget:
			runtime.Gosched()
		default:
			// Escalate to short sleeps; cap the sleep so that a
			// missed wakeup is bounded-cost.
			d := time.Duration(w.n-spinBudget-yieldBudget) * time.Microsecond
			if d > 100*time.Microsecond {
				d = 100 * time.Microsecond
			}
			time.Sleep(d)
		}
	}
}

// Reset rewinds the waiter so a new waiting episode starts hot.
func (w *Waiter) Reset() { w.n = 0 }

// Spins reports the number of Pause calls performed this episode.
func (w *Waiter) Spins() int { return w.n }

// cpuRelax burns a few cycles without touching shared memory. Go does
// not expose the PAUSE instruction; a short empty loop keeps the
// spinning core from saturating the load pipeline with the spin
// variable while remaining preemptible (Go 1.14+ async preemption).
//
//go:noinline
func cpuRelax() {
	for i := 0; i < 4; i++ {
		_ = i
	}
}
