// Package waiter provides busy-wait ("Pause") policies for spin locks.
//
// The paper assumes a "polite" Pause() operator (x86 PAUSE / ARM YIELD)
// inside every busy-wait loop. Under the Go runtime — and in particular
// under GOMAXPROCS values smaller than the number of runnable
// goroutines — pure spinning starves the lock holder of a processor, so
// every practical policy here eventually yields to the scheduler.
//
// Three policies are provided:
//
//   - Spin: bounded hot spinning followed by runtime.Gosched. The
//     default; closest in spirit to PAUSE loops while remaining safe on
//     oversubscribed schedulers.
//   - Yield: immediate runtime.Gosched on every pause. Fastest handoff
//     when GOMAXPROCS == 1.
//   - Adaptive: spins hot while the number of pauses is small, then
//     yields, then sleeps in escalating increments. Robust default for
//     unknown oversubscription.
//
// Policies are expressed as small value types so that lock hot paths
// can inline the Pause call; a Waiter is cheap to construct per
// acquisition and holds only an iteration counter.
package waiter

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/clock"
)

// Sink receives one callback per Pause, classified by what the pause
// actually did: a hot spin (CountSpin), a scheduler yield
// (CountYield), or a blocking wait — sleep or futex park —
// (CountPark). Counting here, at the policy layer, means no lock
// algorithm carries instrumentation in its own hot path; the telemetry
// package (internal/lockstat) implements Sink with atomic counters.
//
// Implementations must be safe for concurrent use: many waiters on
// many goroutines report to the same sink.
type Sink interface {
	CountSpin()
	CountYield()
	CountPark()
}

// sinkBox wraps a Sink so the global slot can distinguish "no sink"
// (nil box) from a cleared sink without atomic.Value's non-nil rule.
type sinkBox struct{ s Sink }

var globalSink atomic.Pointer[sinkBox]

// SetSink installs s as the process-wide transition sink picked up by
// every subsequently constructed Waiter (nil uninstalls). Benchmark
// harnesses install the Stats of the lock currently under measurement
// around each run; attribution is therefore per-installation-window,
// which is exact when one lock is hot at a time.
func SetSink(s Sink) {
	if s == nil {
		globalSink.Store(nil)
		return
	}
	globalSink.Store(&sinkBox{s: s})
}

// ActiveSink returns the currently installed sink, or nil.
func ActiveSink() Sink {
	if b := globalSink.Load(); b != nil {
		return b.s
	}
	return nil
}

// Policy selects a busy-wait strategy.
type Policy int

const (
	// PolicyAdaptive spins briefly, then yields, then sleeps.
	PolicyAdaptive Policy = iota
	// PolicySpin spins hot for a fixed budget between yields.
	PolicySpin
	// PolicyYield yields to the scheduler on every pause.
	PolicyYield
	// PolicyBackoff sleeps for exponentially growing, capped
	// intervals — the classic randomized-backoff discipline the paper
	// rejects as not work conserving ("backoff delays ... constitute
	// dead time", §5). Provided as the contrast arm for ablations.
	PolicyBackoff
)

// Default is the policy used by locks unless overridden.
var Default = PolicyAdaptive

// spinBudget is the number of hot iterations performed before the
// first yield under PolicySpin and PolicyAdaptive.
const spinBudget = 32

// yieldBudget is the number of Gosched calls performed by
// PolicyAdaptive before it escalates to sleeping.
const yieldBudget = 64

// backoffSchedule is PolicyBackoff's capped-doubling schedule,
// expressed through the shared backoff package so one implementation
// of the math serves every retry path in the repository.
var backoffSchedule = backoff.Policy{Base: time.Microsecond, Cap: 256 * time.Microsecond}

// Waiter tracks progress of one waiting episode. The zero value is
// ready to use (reports to no sink, sleeps on the wall clock).
type Waiter struct {
	policy Policy
	n      int
	sink   Sink
	clk    clock.Clock // nil = clock.Wall
}

// New returns a Waiter implementing the given policy, attached to the
// process-wide sink installed at construction time (if any).
func New(p Policy) Waiter { return Waiter{policy: p, sink: ActiveSink()} }

// NewClocked is New with an injected time source: parks sleep on c and
// bounded deadlines are instants on c. A nil c selects clock.Wall, so
// locks can pass their (normally nil) clock field straight through.
func NewClocked(p Policy, c clock.Clock) Waiter {
	return Waiter{policy: p, sink: ActiveSink(), clk: c}
}

// NewWithSink returns a Waiter reporting transitions to s, bypassing
// the global sink. Intended for tests and for callers that already
// hold a per-lock Stats.
func NewWithSink(p Policy, s Sink) Waiter { return Waiter{policy: p, sink: s} }

// Pause performs one unit of polite waiting, escalating according to
// the policy as the episode lengthens. Each call reports exactly one
// transition (spin, yield, or park) to the attached sink.
func (w *Waiter) Pause() {
	w.n++
	d, yield := w.plan()
	switch {
	case d > 0:
		w.park(d)
	case yield:
		w.yield()
	default:
		w.relax()
	}
}

// plan computes the next pause step for the current policy without
// performing it: d > 0 means sleep d, else yield selects a scheduler
// yield, else a hot spin. Factored out so Pause and PauseBounded share
// one escalation schedule.
func (w *Waiter) plan() (d time.Duration, yield bool) {
	switch w.policy {
	case PolicyYield:
		return 0, true
	case PolicyBackoff:
		// Exponential backoff: 1µs doubling to a 256µs cap (the capped
		// doubling is backoff.Policy.Exp, shared with the retry paths in
		// internal/bounded and internal/cluster). Any time between the
		// lock becoming free and the sleep expiring is dead time — the
		// §5 objection.
		return backoffSchedule.Exp(w.n), false
	case PolicySpin:
		if w.n%spinBudget == 0 {
			return 0, true
		}
		return 0, false
	default: // PolicyAdaptive
		switch {
		case w.n < spinBudget:
			return 0, false
		case w.n < spinBudget+yieldBudget:
			return 0, true
		default:
			// Escalate to short sleeps; cap the sleep so that a
			// missed wakeup is bounded-cost.
			d := time.Duration(w.n-spinBudget-yieldBudget) * time.Microsecond
			if d > 100*time.Microsecond {
				d = 100 * time.Microsecond
			}
			if d <= 0 {
				// First park step: a minimal sleep, so the transition
				// still classifies (and counts) as a park.
				d = 1
			}
			return d, false
		}
	}
}

// deadlineStride is how many hot-spin pauses elapse between budget
// checks in PauseBounded. Reading the clock (and polling the done
// channel) every iteration would dominate a short spin; checking every
// stride keeps the bounded wait within one stride of the unbounded
// wait's cost while bounding detection latency to a few dozen spins.
const deadlineStride = 16

// PauseBounded is Pause for deadline- or cancellation-bounded waiting
// episodes. It follows the same escalation schedule but clamps sleeps
// to the time remaining, and it polls the budget — deadline and done
// channel — before pausing: on every step once the episode has
// escalated past hot spinning, and only at stride boundaries while
// still spinning hot, so bounded waiting stays off the fast path's
// critical cycle count.
//
// The deadline is an absolute instant on the waiter's clock (see
// clock.Deadline for mapping a context's wall deadline); zero means no
// time bound. A nil done means no cancellation channel. PauseBounded
// reports false once the budget is exhausted — before pausing when the
// bound is already spent, or mid-park when done fires during a sleep —
// and the caller must then begin abandonment. It never reports false
// when both bounds are absent.
func (w *Waiter) PauseBounded(deadline time.Duration, done <-chan struct{}) bool {
	w.n++
	d, yield := w.plan()
	if d > 0 || yield || w.n%deadlineStride == 0 {
		if done != nil {
			select {
			case <-done:
				return false
			default:
			}
		}
		if deadline != 0 {
			rem := deadline - clock.Or(w.clk).Now()
			if rem <= 0 {
				return false
			}
			if d > rem {
				d = rem
			}
		}
	}
	switch {
	case d > 0:
		if w.sink != nil {
			w.sink.CountPark()
		}
		if !clock.Or(w.clk).ParkFor(d, done) {
			return false
		}
	case yield:
		w.yield()
	default:
		w.relax()
	}
	return true
}

func (w *Waiter) relax() {
	if w.sink != nil {
		w.sink.CountSpin()
	}
	cpuRelax()
}

func (w *Waiter) yield() {
	if w.sink != nil {
		w.sink.CountYield()
	}
	runtime.Gosched()
}

func (w *Waiter) park(d time.Duration) {
	if w.sink != nil {
		w.sink.CountPark()
	}
	clock.Or(w.clk).Sleep(d)
}

// Reset rewinds the waiter so a new waiting episode starts hot. The
// attached sink is retained.
func (w *Waiter) Reset() { w.n = 0 }

// Spins reports the number of Pause calls performed this episode.
func (w *Waiter) Spins() int { return w.n }

// Sink returns the transition sink attached to this waiter, or nil.
// Locks that block outside Pause (futex-style parking) use it to
// report those parks through the same channel.
func (w *Waiter) Sink() Sink { return w.sink }

// cpuRelax burns a few cycles without touching shared memory. Go does
// not expose the PAUSE instruction; a short empty loop keeps the
// spinning core from saturating the load pipeline with the spin
// variable while remaining preemptible (Go 1.14+ async preemption).
//
//go:noinline
func cpuRelax() {
	for i := 0; i < 4; i++ {
		_ = i
	}
}
