package simlocks

import "repro/internal/coherence"

// This file adds simulated versions of two Reciprocating variants so
// their algorithmic behaviour can be verified under exhaustive
// deterministic interleaving and their coherence profiles compared in
// the eos-placement ablation:
//
//	ReciproL2 — Listing 2: the end-of-segment marker lives in a
//	            sequestered lock-body word instead of flowing through
//	            the wait elements' gates.
//	ReciproFA — Listing 4: tagged arrival word driven by fetch-add;
//	            one atomic in Release, delegation on the arrival race.

// ReciproL2 is the Listing 2 (Appendix E) variant over simulated
// memory.
type ReciproL2 struct {
	arrivals coherence.Addr
	eosWord  coherence.Addr
	gate     []coherence.Addr
	succ     []uint64
}

// Name identifies the lock.
func (l *ReciproL2) Name() string { return "Recipro-L2" }

// Setup allocates the lock words and per-thread gates.
func (l *ReciproL2) Setup(sys *coherence.System, threads int) {
	l.arrivals = sys.Alloc("rl2.arrivals")
	l.eosWord = sys.Alloc("rl2.eos") // sequestered: own line by construction
	l.gate = make([]coherence.Addr, threads)
	for i := 0; i < threads; i++ {
		l.gate[i] = sys.Alloc("rl2.gate")
	}
	l.succ = make([]uint64, threads)
}

// Acquire enters the lock.
func (l *ReciproL2) Acquire(c *coherence.Ctx, tid int) {
	e := uint64(l.gate[tid])
	c.Store(l.gate[tid], 0)
	succ := c.Swap(l.arrivals, e)
	if succ == 0 {
		// Fast path: publish ourselves as the prospective terminus.
		c.Store(l.eosWord, e)
		l.succ[tid] = 0
		return
	}
	if succ == simLockedEmpty {
		succ = 0
	}
	c.SpinUntil(l.gate[tid], func(v uint64) bool { return v != 0 })
	// Crucially the eos word is stable under sustained contention, so
	// this load tends to hit (Listing 2's design point).
	if veos := c.Load(l.eosWord); veos == succ && succ != 0 {
		succ = 0
		c.Store(l.eosWord, simLockedEmpty)
	}
	l.succ[tid] = succ
}

// Release exits the lock.
func (l *ReciproL2) Release(c *coherence.Ctx, tid int) {
	e := uint64(l.gate[tid])
	succ := l.succ[tid]
	if succ != 0 {
		c.Store(coherence.Addr(succ), 1)
		return
	}
	k := c.Load(l.arrivals)
	if k == e || k == simLockedEmpty {
		if c.CAS(l.arrivals, k, 0) {
			return
		}
	}
	w := c.Swap(l.arrivals, simLockedEmpty)
	c.Store(coherence.Addr(w), 1)
}

// ReciproFA is the Listing 4 fetch-add variant over simulated memory.
// The arrival word packs (element << 2 | tag); elements are gate-line
// addresses, guaranteed >= 4 by allocation order, so the tag bits are
// free. Tags: 00 locked+stack, 01 locked+detached, 10 unlocked.
type ReciproFA struct {
	arrivals coherence.Addr
	gate     []coherence.Addr
	succ     []uint64
}

// Name identifies the lock.
func (l *ReciproFA) Name() string { return "Recipro-FA" }

// Setup allocates the lock word and per-thread gates, and initializes
// the word to the unlocked encoding (0:10).
func (l *ReciproFA) Setup(sys *coherence.System, threads int) {
	l.arrivals = sys.Alloc("rfa.arrivals")
	sys.InitValue(l.arrivals, 2)
	l.gate = make([]coherence.Addr, threads)
	for i := 0; i < threads; i++ {
		l.gate[i] = sys.Alloc("rfa.gate")
	}
	l.succ = make([]uint64, threads)
}

func (l *ReciproFA) enc(tid int) uint64 { return uint64(l.gate[tid]) << 2 }

// Acquire enters the lock.
func (l *ReciproFA) Acquire(c *coherence.Ctx, tid int) {
	c.Store(l.gate[tid], 0)
	prev := c.Swap(l.arrivals, l.enc(tid))
	if prev&2 != 0 {
		// Uncontended: mark the stack detached, reclaiming our own
		// element if the window stayed closed.
		r := c.FetchAdd(l.arrivals, 1)
		if r == l.enc(tid) {
			l.succ[tid] = 0
			return
		}
		// Delegation: new arrivals landed in the window; grant the
		// head of the freshly detached segment and join the waiters.
		c.Store(coherence.Addr(r>>2), 1)
		c.SpinUntil(l.gate[tid], func(v uint64) bool { return v != 0 })
		l.succ[tid] = 0
		return
	}
	var succ uint64
	if prev&1 == 0 {
		succ = prev >> 2
	}
	c.SpinUntil(l.gate[tid], func(v uint64) bool { return v != 0 })
	l.succ[tid] = succ
}

// Release exits the lock with a single atomic.
func (l *ReciproFA) Release(c *coherence.Ctx, tid int) {
	succ := l.succ[tid]
	if succ == 0 {
		old := c.FetchAdd(l.arrivals, 1)
		if old&1 != 0 {
			return // detached+empty → unlocked
		}
		succ = old >> 2
	}
	c.Store(coherence.Addr(succ), 1)
}

// ReciproCTR is the §10 future-work exploration: Reciprocating Locks
// with HemLock's coherence-traffic-reduction waiting, modeled in its
// strongest architectural form — MONITOR/MWAIT-style waiting for the
// line's invalidation followed by an atomic exchange that claims the
// grant and leaves the Gate line Modified in the waiter's cache.
// Steady-state contended episodes then cost 3 coherence events instead
// of Listing 1's 4: the re-arm upgrade disappears (the line is already
// Modified and nil) and the wake load+consume collapse into one RMW.
type ReciproCTR struct {
	arrivals  coherence.Addr
	gate      []coherence.Addr
	succ, eos []uint64
}

// Name identifies the lock.
func (l *ReciproCTR) Name() string { return "Recipro-CTR" }

// Setup allocates the lock word and per-thread gates.
func (l *ReciproCTR) Setup(sys *coherence.System, threads int) {
	l.arrivals = sys.Alloc("rctr.arrivals")
	l.gate = make([]coherence.Addr, threads)
	for i := 0; i < threads; i++ {
		l.gate[i] = sys.Alloc("rctr.gate")
	}
	l.succ = make([]uint64, threads)
	l.eos = make([]uint64, threads)
}

// Acquire enters the lock.
func (l *ReciproCTR) Acquire(c *coherence.Ctx, tid int) {
	e := uint64(l.gate[tid])
	// CTR invariant: the gate is nil and Modified in our cache from
	// the previous episode's consuming exchange — no re-arm store.
	succ := uint64(0)
	eos := e
	tail := c.Swap(l.arrivals, e)
	if tail != 0 {
		if tail != simLockedEmpty {
			succ = tail
		}
		// Monitor-wait for the granting store's invalidation, then
		// claim the grant with one exchange (consumes and re-arms in
		// a single RMW). The readiness predicate is evaluated
		// atomically with arming, so a grant landing just before the
		// park is never missed.
		ready := func(v uint64) bool { return v != 0 }
		for {
			c.AwaitWrite(l.gate[tid], ready)
			eos = c.Swap(l.gate[tid], 0)
			if eos != 0 {
				break
			}
		}
		if succ == eos {
			succ = 0
			eos = simLockedEmpty
		}
	}
	l.succ[tid], l.eos[tid] = succ, eos
}

// Release exits the lock (identical to the Listing 1 release).
func (l *ReciproCTR) Release(c *coherence.Ctx, tid int) {
	succ, eos := l.succ[tid], l.eos[tid]
	if succ != 0 {
		c.Store(coherence.Addr(succ), eos)
		return
	}
	if c.CAS(l.arrivals, eos, 0) {
		return
	}
	w := c.Swap(l.arrivals, simLockedEmpty)
	c.Store(coherence.Addr(w), eos)
}

// Variants returns the extra simulated Reciprocating variants (not
// part of the Table 1 set).
func Variants() []Factory {
	return []Factory{
		func() Lock { return &ReciproL2{} },
		func() Lock { return &ReciproFA{} },
		func() Lock { return &ReciproCTR{} },
	}
}
