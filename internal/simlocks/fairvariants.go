package simlocks

import (
	"repro/internal/coherence"
	"repro/internal/xrand"
)

// This file provides simulator twins of the paper's fairness
// mitigations so the §9.4 claims can be established deterministically:
//
//	ReciproFair — Listing 1 plus the §9.4 Bernoulli intra-segment
//	              deferral (the deferred thread percolates to the
//	              segment tail).
//	TwoLaneSim  — Appendix I's two-lane formulation with randomized
//	              lane selection under a ticket leader lock.
//
// Both use deterministic seeded generators, so runs are reproducible.

// ReciproFair is the §9.4 mitigation over simulated memory. Each
// thread owns two lines: a gate (whose address is the element
// identity) and a deferred-conveyance line at gate+1 (guaranteed by
// paired allocation).
type ReciproFair struct {
	arrivals  coherence.Addr
	gate      []coherence.Addr
	deferred  []coherence.Addr
	deferOf   map[uint64]coherence.Addr
	succ, eos []uint64
	carried   []uint64
	rng       *xrand.XorShift64
	// Prob is the deferral probability in 1/256 units (0 → 64).
	Prob int
}

// Name identifies the lock.
func (l *ReciproFair) Name() string { return "Recipro-Fair" }

// Setup allocates lines.
func (l *ReciproFair) Setup(sys *coherence.System, threads int) {
	l.arrivals = sys.Alloc("rfair.arrivals")
	l.gate = make([]coherence.Addr, threads)
	l.deferred = make([]coherence.Addr, threads)
	l.deferOf = make(map[uint64]coherence.Addr, threads)
	for i := 0; i < threads; i++ {
		l.gate[i] = sys.Alloc("rfair.gate")
		l.deferred[i] = sys.Alloc("rfair.deferred")
		l.deferOf[uint64(l.gate[i])] = l.deferred[i]
	}
	l.succ = make([]uint64, threads)
	l.eos = make([]uint64, threads)
	l.carried = make([]uint64, threads)
	l.rng = xrand.NewXorShift64(0xfa1357)
}

// bernoulli draws the deferral trial. Only the lock owner draws, so
// the plain Go-side generator is serialized and deterministic.
func (l *ReciproFair) bernoulli() bool {
	p := l.Prob
	if p == 0 {
		p = 64
	}
	return int(l.rng.Uint64()&255) < p
}

// Acquire enters the lock.
func (l *ReciproFair) Acquire(c *coherence.Ctx, tid int) {
	e := uint64(l.gate[tid])
	c.Store(l.gate[tid], 0)
	c.Store(l.deferred[tid], 0)
	succ := uint64(0)
	eos := e
	tail := c.Swap(l.arrivals, e)
	if tail == 0 {
		l.succ[tid], l.eos[tid], l.carried[tid] = 0, e, 0
		return
	}
	if tail != simLockedEmpty {
		succ = tail
	}
	deferredOnce := false
	for {
		eos = c.SpinUntil(l.gate[tid], func(v uint64) bool { return v != 0 })
		d := c.Swap(l.deferred[tid], 0)
		if succ == eos {
			// Terminus: the percolated deferred thread (if any)
			// becomes the segment's final member.
			succ, d, eos = d, 0, simLockedEmpty
		}
		if succ == 0 && d != 0 {
			succ, d = d, 0
		}
		if succ != 0 && d == 0 && !deferredOnce && l.bernoulli() {
			// Defer: cede to succ, registering ourselves as the
			// percolating deferred element, and wait to be
			// re-granted at the segment's end.
			deferredOnce = true
			c.Store(l.gate[tid], 0)
			s := succ
			succ = 0
			c.Store(l.deferOf[s], e)
			c.Store(coherence.Addr(s), eos)
			continue
		}
		l.succ[tid], l.eos[tid], l.carried[tid] = succ, eos, d
		return
	}
}

// Release exits the lock.
func (l *ReciproFair) Release(c *coherence.Ctx, tid int) {
	succ, eos, d := l.succ[tid], l.eos[tid], l.carried[tid]
	if succ != 0 {
		if d != 0 {
			c.Store(l.deferOf[succ], d)
		}
		c.Store(coherence.Addr(succ), eos)
		return
	}
	if c.CAS(l.arrivals, eos, 0) {
		return
	}
	w := c.Swap(l.arrivals, simLockedEmpty)
	c.Store(coherence.Addr(w), eos)
}

// TwoLaneSim is Appendix I over simulated memory: two pop-stack lanes
// with randomized selection, arbitrated by a ticket leader lock. The
// per-thread line doubles as element identity and eos/gate channel.
type TwoLaneSim struct {
	lanes         [2]coherence.Addr
	ticket, grant coherence.Addr
	elem          []coherence.Addr
	cbrn          uint32

	// Owner/waiter context.
	leader []bool
	lane   []int
	prv    []uint64
	eos    []uint64
}

// Name identifies the lock.
func (l *TwoLaneSim) Name() string { return "Recipro-2Lane" }

// Setup allocates lines.
func (l *TwoLaneSim) Setup(sys *coherence.System, threads int) {
	l.lanes[0] = sys.Alloc("r2l.lane0")
	l.lanes[1] = sys.Alloc("r2l.lane1")
	l.ticket = sys.Alloc("r2l.ticket")
	l.grant = sys.Alloc("r2l.grant")
	l.elem = make([]coherence.Addr, threads)
	for i := 0; i < threads; i++ {
		l.elem[i] = sys.Alloc("r2l.elem")
	}
	l.leader = make([]bool, threads)
	l.lane = make([]int, threads)
	l.prv = make([]uint64, threads)
	l.eos = make([]uint64, threads)
}

// Acquire enters the lock.
func (l *TwoLaneSim) Acquire(c *coherence.Ctx, tid int) {
	e := uint64(l.elem[tid])
	c.Store(l.elem[tid], 0)
	// Appendix I lane selection: counter-based RNG via Fibonacci
	// hashing. The counter is owner-side Go state, advanced once per
	// arrival (arrivals are serialized by the cooperative scheduler).
	l.cbrn++
	lane := int(xrand.HashPhi32(l.cbrn) & 1)

	prv := c.Swap(l.lanes[lane], e)
	if prv != 0 {
		// Follower: wait for ownership + eos through our element.
		eos := c.SpinUntil(l.elem[tid], func(v uint64) bool { return v != 0 })
		l.leader[tid], l.lane[tid], l.prv[tid], l.eos[tid] = false, lane, prv, eos
		return
	}
	// Lane leader: acquire the ticket leader lock (at most two
	// competitors).
	tx := c.FetchAdd(l.ticket, 1)
	c.SpinUntil(l.grant, func(v uint64) bool { return v == tx })
	l.leader[tid], l.lane[tid] = true, lane
}

// Release exits the lock.
func (l *TwoLaneSim) Release(c *coherence.Ctx, tid int) {
	e := uint64(l.elem[tid])
	if l.leader[tid] {
		detached := c.Swap(l.lanes[l.lane[tid]], 0)
		if detached != e {
			// Relay ownership down the detached chain, conveying our
			// buried element as the logical end-of-segment.
			c.Store(coherence.Addr(detached), e)
		} else {
			// Appendix I: a full fetch-add is not required here, but
			// it empirically scales better on UPI, so the listing
			// (and we) use one.
			c.FetchAdd(l.grant, 1)
		}
		return
	}
	if l.eos[tid] != l.prv[tid] {
		// Systolic propagation toward the chain's distal end.
		c.Store(coherence.Addr(l.prv[tid]), l.eos[tid])
	} else {
		// Terminus: surrender the leader lock.
		c.FetchAdd(l.grant, 1)
	}
}

// FairnessVariants returns the simulated mitigation locks.
func FairnessVariants() []Factory {
	return []Factory{
		func() Lock { return &ReciproFair{} },
		func() Lock { return &TwoLaneSim{} },
	}
}
