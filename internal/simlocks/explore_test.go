package simlocks

import (
	"fmt"
	"testing"

	"repro/internal/coherence"
)

// exploreLock exhaustively (or budget-boundedly) model-checks a
// simulated lock: every interleaving must preserve mutual exclusion
// (no lost counter increments), reach completion (no deadlock — the
// scheduler panics on all-parked, which Explore converts into a
// violation), and respect MESI invariants.
func exploreLock(t *testing.T, mk Factory, threads, episodes, budget int) coherence.ExploreResult {
	t.Helper()
	var counterAddr coherence.Addr
	res := coherence.Explore(threads, budget, func() (*coherence.System, func(c *coherence.Ctx)) {
		sys := coherence.NewSystem(coherence.Config{CPUs: threads})
		lock := mk()
		lock.Setup(sys, threads)
		counterAddr = sys.Alloc("counter")
		body := func(c *coherence.Ctx) {
			for i := 0; i < episodes; i++ {
				lock.Acquire(c, c.CPU)
				v := c.Load(counterAddr)
				c.Store(counterAddr, v+1)
				lock.Release(c, c.CPU)
			}
		}
		return sys, body
	}, func(sys *coherence.System) error {
		want := uint64(threads * episodes)
		if got := sys.Peek(counterAddr); got != want {
			return fmt.Errorf("counter = %d, want %d (mutual exclusion violated)", got, want)
		}
		return sys.CheckInvariants()
	})
	if res.Violation != nil {
		t.Fatalf("%s: violation after %d schedules: %v\nschedule: %v",
			mk().Name(), res.Schedules, res.Violation, res.FailingSchedule)
	}
	return res
}

// Exhaustive model checking of the Reciprocating Lock at 2 threads ×
// 1 episode: every interleaving of an arrival race, contended handoff,
// and uncontended episode is covered completely.
func TestExploreReciprocatingExhaustive(t *testing.T) {
	res := exploreLock(t, ByName("Recipro"), 2, 1, 500_000)
	if !res.Exhausted {
		t.Fatalf("tree not exhausted (%d schedules)", res.Schedules)
	}
	t.Logf("Reciprocating verified over ALL %d interleavings (2 threads × 1 episode)", res.Schedules)
}

// Bounded model checking at richer configurations: recirculation with
// zombie end-of-segment markers (2×2) and multi-waiter segments (3×1).
// The decision trees exceed a practical exhaustive budget, so this is
// a no-violation check over a deterministic 150k-schedule prefix.
func TestExploreReciprocatingBounded(t *testing.T) {
	for _, cfg := range []struct{ threads, episodes int }{{2, 2}, {3, 1}} {
		res := exploreLock(t, ByName("Recipro"), cfg.threads, cfg.episodes, 150_000)
		t.Logf("%dx%d: %d schedules checked, exhausted=%v",
			cfg.threads, cfg.episodes, res.Schedules, res.Exhausted)
	}
}

// Every simulated Reciprocating variant and fairness mitigation passes
// the same checks (exhaustive where the tree permits).
func TestExploreVariants(t *testing.T) {
	for _, mk := range append(Variants(), FairnessVariants()...) {
		mk := mk
		t.Run(mk().Name(), func(t *testing.T) {
			res := exploreLock(t, mk, 2, 1, 200_000)
			t.Logf("%s: %d schedules, exhausted=%v", mk().Name(), res.Schedules, res.Exhausted)
		})
	}
}

// The baselines, bounded: any found violation still fails the test.
func TestExploreBaselinesBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("model checking sweep")
	}
	for _, mk := range All() {
		mk := mk
		t.Run(mk().Name(), func(t *testing.T) {
			res := exploreLock(t, mk, 2, 1, 100_000)
			t.Logf("%s: %d schedules, exhausted=%v", mk().Name(), res.Schedules, res.Exhausted)
		})
	}
}
