package simlocks

import (
	"testing"

	"repro/internal/coherence"
)

// everyLock covers the Table 1 set plus the extra simulated
// Reciprocating variants and fairness mitigations.
func everyLock() []Factory {
	out := append(All(), Variants()...)
	return append(out, FairnessVariants()...)
}

// Every simulated lock must provide mutual exclusion under randomized
// interleavings: an unprotected load+store counter loses updates on
// any violation.
func TestSimulatedMutualExclusion(t *testing.T) {
	for _, mk := range everyLock() {
		mk := mk
		t.Run(mk().Name(), func(t *testing.T) {
			for _, seed := range []uint64{1, 7, 42, 1234} {
				const threads = 5
				const iters = 60
				sys := coherence.NewSystem(coherence.Config{CPUs: threads})
				lock := mk()
				lock.Setup(sys, threads)
				counter := sys.Alloc("counter")
				sched := coherence.NewScheduler(sys, coherence.Random, coherence.DefaultCosts, seed, 0)
				sched.Run(func(c *coherence.Ctx) {
					for i := 0; i < iters; i++ {
						lock.Acquire(c, c.CPU)
						v := c.Load(counter)
						c.Store(counter, v+1)
						lock.Release(c, c.CPU)
					}
				})
				if got := sys.Peek(counter); got != threads*iters {
					t.Fatalf("seed %d: counter = %d, want %d", seed, got, threads*iters)
				}
				if err := sys.CheckInvariants(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// Deterministic runs: identical configs give identical admission
// schedules.
func TestRunDeterminism(t *testing.T) {
	cfg := Config{Threads: 4, Episodes: 50, Mode: coherence.RoundRobin, Seed: 3}
	for _, mk := range All() {
		a := Run(mk, cfg).AdmissionSchedule
		b := Run(mk, cfg).AdmissionSchedule
		if len(a) != len(b) || len(a) != 4*50 {
			t.Fatalf("%s: admissions %d/%d, want %d", mk().Name(), len(a), len(b), 4*50)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: runs diverged at %d", mk().Name(), i)
			}
		}
	}
}

// The Table 1 reproduction: under sustained contention with local
// critical sections, per-episode coherence events must be (a) small
// constants for the local-spinning locks, (b) ~T for the ticket lock,
// and (c) ordered Recipro < CLH as the paper reports (4 vs 5).
func TestTable1InvalidationCounts(t *testing.T) {
	const threads = 10
	run := func(name string) float64 {
		out := Run(ByName(name), Config{
			Threads:  threads,
			Episodes: 300,
			Warmup:   50,
			Mode:     coherence.RoundRobin,
			CSWork:   5,
			Seed:     1,
		})
		return out.EventsPerEpisode
	}

	tkt := run("TKT")
	clh := run("CLH")
	mcs := run("MCS")
	hem := run("HemLock")
	rcp := run("Recipro")
	chen := run("Chen")
	t.Logf("events/episode: TKT=%.2f MCS=%.2f CLH=%.2f Hem=%.2f Chen=%.2f Recipro=%.2f",
		tkt, mcs, clh, hem, chen, rcp)

	// Ticket: global spinning scales with thread count.
	if tkt < float64(threads)-2 {
		t.Errorf("TKT events/episode = %.2f, expected ≈T (%d)", tkt, threads)
	}
	// Local-spinning locks: constant, far below T.
	for name, v := range map[string]float64{"CLH": clh, "MCS": mcs, "Recipro": rcp} {
		if v > 8 {
			t.Errorf("%s events/episode = %.2f, expected small constant", name, v)
		}
	}
	// The headline Table 1 relation: Reciprocating beats CLH.
	if !(rcp < clh) {
		t.Errorf("Recipro (%.2f) should incur fewer events/episode than CLH (%.2f)", rcp, clh)
	}
	// Chen spins globally: worse than Recipro despite same admission
	// structure.
	if !(rcp < chen) {
		t.Errorf("Recipro (%.2f) should beat Chen's global spinning (%.2f)", rcp, chen)
	}
}

// The exact steady-state constants the paper derives in §8: 4 events
// per episode for Reciprocating, 5 for CLH.
func TestSection8SteadyStateTallies(t *testing.T) {
	run := func(name string) float64 {
		out := Run(ByName(name), Config{
			Threads:  10,
			Episodes: 500,
			Warmup:   100,
			Mode:     coherence.RoundRobin,
			Seed:     1,
		})
		return out.EventsPerEpisode
	}
	rcp := run("Recipro")
	clh := run("CLH")
	if rcp < 3.5 || rcp > 4.5 {
		t.Errorf("Recipro steady-state events/episode = %.3f, paper derives 4", rcp)
	}
	if clh < 4.5 || clh > 5.5 {
		t.Errorf("CLH steady-state events/episode = %.3f, paper derives 5", clh)
	}
}

// NUMA remote misses: Reciprocating's waiter lines are homed on their
// own node, so its remote misses per episode stay below CLH's, whose
// nodes circulate across nodes (§8 point A, Table 1 remote-miss
// column).
func TestRemoteMissesNUMAAdvantage(t *testing.T) {
	run := func(name string) float64 {
		out := Run(ByName(name), Config{
			Threads:  8,
			Episodes: 300,
			Warmup:   50,
			Mode:     coherence.RoundRobin,
			NodeCPUs: 4,
			Seed:     1,
		})
		return out.RemotePerEpisode
	}
	rcp := run("Recipro")
	clh := run("CLH")
	tkt := run("TKT")
	t.Logf("remote misses/episode: Recipro=%.2f CLH=%.2f TKT=%.2f", rcp, clh, tkt)
	if !(rcp < clh) {
		t.Errorf("Recipro remote misses (%.2f) should be below CLH (%.2f)", rcp, clh)
	}
}

// Figure 1a shape: under maximal contention in timed mode, the ticket
// lock's throughput collapses as threads grow, while Reciprocating
// stays competitive with (and typically above) MCS/CLH at high thread
// counts.
func TestFigure1Shape(t *testing.T) {
	tp := func(name string, threads int) float64 {
		out := Run(ByName(name), Config{
			Threads:  threads,
			Episodes: 200,
			Mode:     coherence.Timed,
			CSShared: true,
			CSWork:   10,
			Seed:     1,
		})
		return out.Throughput
	}

	// Ticket collapse: throughput at 32 threads far below its 2-thread
	// value.
	tkt2, tkt32 := tp("TKT", 2), tp("TKT", 32)
	if tkt32 > tkt2*0.7 {
		t.Errorf("TKT did not collapse: 2T=%.3f 32T=%.3f", tkt2, tkt32)
	}

	// Queue locks hold up much better.
	mcs2, mcs32 := tp("MCS", 2), tp("MCS", 32)
	rcp32 := tp("Recipro", 32)
	clh32 := tp("CLH", 32)
	t.Logf("32T throughput: TKT=%.3f MCS=%.3f CLH=%.3f Recipro=%.3f (MCS 2T=%.3f)",
		tkt32, mcs32, clh32, rcp32, mcs2)
	if mcs32 < tkt32 {
		t.Errorf("MCS (%.3f) should beat TKT (%.3f) at 32 threads", mcs32, tkt32)
	}
	// The paper's headline: Reciprocating provides the best throughput
	// at high thread counts among the queue locks.
	if rcp32 < mcs32*0.95 || rcp32 < clh32*0.95 {
		t.Errorf("Recipro (%.3f) should be competitive with MCS (%.3f) and CLH (%.3f) at 32T",
			rcp32, mcs32, clh32)
	}
}

// The eos-placement ablation (Listing 1 vs Listing 2): conveying the
// terminus through the wait elements and parking it in a sequestered
// lock-body word must both reach the same ≈4 events/episode in steady
// state — Listing 2's eos word is stable under sustained contention so
// its extra load hits in-cache (Appendix E's design point). The
// fetch-add variant saves the release CAS and lands at ≈4 as well.
func TestVariantSteadyStateEvents(t *testing.T) {
	run := func(mk Factory) float64 {
		out := Run(mk, Config{
			Threads:  10,
			Episodes: 500,
			Warmup:   100,
			Mode:     coherence.RoundRobin,
			Seed:     1,
		})
		return out.EventsPerEpisode
	}
	l1 := run(ByName("Recipro"))
	l2 := run(func() Lock { return &ReciproL2{} })
	fa := run(func() Lock { return &ReciproFA{} })
	ctr := run(func() Lock { return &ReciproCTR{} })
	t.Logf("events/episode: Listing1=%.3f Listing2=%.3f FetchAdd=%.3f CTR=%.3f", l1, l2, fa, ctr)
	for name, v := range map[string]float64{"Listing2": l2, "FetchAdd": fa} {
		if v < 3.5 || v > 5.0 {
			t.Errorf("%s steady-state events/episode = %.3f, expected ≈4", name, v)
		}
	}
	// §10 future work: MONITOR/MWAIT + exchange waiting shaves one
	// coherence event off the steady-state episode (4 → 3).
	if ctr < 2.5 || ctr > 3.5 {
		t.Errorf("CTR steady-state events/episode = %.3f, expected ≈3", ctr)
	}
	if !(ctr < l1) {
		t.Errorf("CTR (%.3f) should beat Listing 1 (%.3f)", ctr, l1)
	}
}

// Admission order equivalence: under a deterministic schedule with
// empty critical sections, Recipro produces LIFO-within-segment
// admission; the Chen lock shares the same segment structure and so
// the same schedule.
func TestReciproChenSameAdmissionStructure(t *testing.T) {
	cfg := Config{Threads: 5, Episodes: 40, Mode: coherence.RoundRobin, Seed: 1}
	a := Run(ByName("Recipro"), cfg).AdmissionSchedule
	b := Run(ByName("Chen"), cfg).AdmissionSchedule
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("empty admission schedules")
	}
	// Identical interleaving rules need not give identical traces
	// (different memory-op counts shift the round-robin phase), but
	// both must exhibit non-FIFO admission with every thread admitted
	// the right number of times.
	count := func(s []int) map[int]int {
		m := map[int]int{}
		for _, x := range s {
			m[x]++
		}
		return m
	}
	for tid, n := range count(a) {
		if n != 40 {
			t.Errorf("Recipro thread %d admitted %d times, want 40", tid, n)
		}
	}
	for tid, n := range count(b) {
		if n != 40 {
			t.Errorf("Chen thread %d admitted %d times, want 40", tid, n)
		}
	}
}

// Regression: under moderate contention in timed mode the lock
// repeatedly transitions between contended and uncontended regimes;
// any stale-grant / lost-wakeup bug surfaces as a scheduler deadlock
// panic. (Found the simulated Chen lock's stale central-grant bug.)
func TestModerateContentionNoLostWakeups(t *testing.T) {
	for _, mk := range everyLock() {
		mk := mk
		t.Run(mk().Name(), func(t *testing.T) {
			for _, threads := range []int{2, 4, 9, 20} {
				Run(mk, Config{
					Threads:    threads,
					Episodes:   60,
					Mode:       coherence.Timed,
					CSShared:   true,
					CSWork:     10,
					NCSMaxWork: 1000,
					NodeCPUs:   18,
					Seed:       uint64(threads),
				})
			}
		})
	}
}

// §9.4 on the simulator: the mitigations break the palindromic cycle
// and restore long-term statistical fairness, while the plain lock
// sits at the 2x disparity bound. Deterministic — no scheduler noise.
func TestMitigationsRestoreFairnessSim(t *testing.T) {
	measure := func(mk Factory) (float64, bool) {
		out := Run(mk, Config{
			Threads:  5,
			Episodes: 600,
			Mode:     coherence.RoundRobin,
			Seed:     1,
		})
		sched := out.AdmissionSchedule
		sched = sched[len(sched)/4 : len(sched)*3/4] // steady window
		counts := map[int]int64{}
		for _, s := range sched {
			counts[s]++
		}
		var mn, mx int64
		first := true
		for _, c := range counts {
			if first {
				mn, mx = c, c
				first = false
			}
			if c < mn {
				mn = c
			}
			if c > mx {
				mx = c
			}
		}
		disparity := float64(mx) / float64(mn)
		_, cyclic := findCycleForTest(sched)
		return disparity, cyclic
	}

	plain, plainCyclic := measure(ByName("Recipro"))
	if plain < 1.8 || plain > 2.2 {
		t.Errorf("plain Recipro steady disparity = %.3f, want ≈2 (§9.2)", plain)
	}
	if !plainCyclic {
		t.Error("plain Recipro should settle into a repeating cycle")
	}

	fair, _ := measure(func() Lock { return &ReciproFair{Prob: 64} })
	twolane, _ := measure(func() Lock { return &TwoLaneSim{} })
	t.Logf("steady disparity: plain=%.3f fair=%.3f twolane=%.3f", plain, fair, twolane)
	if fair >= plain {
		t.Errorf("FairLock disparity %.3f should improve on plain %.3f", fair, plain)
	}
	if twolane >= plain {
		t.Errorf("TwoLane disparity %.3f should improve on plain %.3f", twolane, plain)
	}
}

// findCycleForTest: minimal tail-cycle detection (mirrors
// admission.FindCycle without the import cycle risk in this package's
// tests).
func findCycleForTest(s []int) (int, bool) {
	n := len(s)
	for p := 1; p*3 <= n; p++ {
		ok := true
		for i := n - 2*p; i < n; i++ {
			if s[i] != s[i-p] {
				ok = false
				break
			}
		}
		if ok {
			return p, true
		}
	}
	return 0, false
}

// Every lock drains cleanly: after the run, a fresh acquire/release on
// thread 0 must still work (no stranded state).
func TestLocksQuiesce(t *testing.T) {
	for _, mk := range everyLock() {
		mk := mk
		t.Run(mk().Name(), func(t *testing.T) {
			const threads = 4
			sys := coherence.NewSystem(coherence.Config{CPUs: threads})
			lock := mk()
			lock.Setup(sys, threads)
			sched := coherence.NewScheduler(sys, coherence.Random, coherence.DefaultCosts, 5, 0)
			sched.Run(func(c *coherence.Ctx) {
				for i := 0; i < 30; i++ {
					lock.Acquire(c, c.CPU)
					lock.Release(c, c.CPU)
				}
				if c.CPU == 0 {
					// One extra uncontended episode at the end.
					lock.Acquire(c, 0)
					lock.Release(c, 0)
				}
			})
		})
	}
}
