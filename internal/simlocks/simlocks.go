// Package simlocks re-implements the paper's Table 1 lock algorithms
// as deterministic programs over the internal/coherence MESI
// simulator. Running them under the simulator's schedulers yields:
//
//   - coherence events (misses + upgrades) per acquire/release episode
//     — the Table 1 "Invalidations per episode" column;
//   - remote-miss counts under a NUMA home map — the Table 1 "Maximum
//     Remote Misses" column;
//   - admission-order traces — the §9/Table 2 palindromic-schedule
//     experiments;
//   - modeled contended throughput under the timed, bus-bandwidth-
//     aware scheduler — the Figure 1 shape reproduction.
//
// Acquire-to-release context is held in plain Go per-thread slots,
// mirroring the paper's measurement methodology ("pass any context
// from Acquire to Release via thread-local storage, in order to reduce
// mutation of shared memory", §6).
package simlocks

import "repro/internal/coherence"

// Lock is a mutual-exclusion algorithm over simulated memory. Setup is
// called once before threads run; Acquire/Release are called by
// simulated thread tid.
type Lock interface {
	Name() string
	Setup(sys *coherence.System, threads int)
	Acquire(c *coherence.Ctx, tid int)
	Release(c *coherence.Ctx, tid int)
}

// Factory builds a fresh lock instance.
type Factory func() Lock

// All returns factories for every simulated lock, in the paper's
// Table 1 ordering.
func All() []Factory {
	return []Factory{
		func() Lock { return &Ticket{} },
		func() Lock { return &ABQL{} },
		func() Lock { return &TWA{} },
		func() Lock { return &MCS{} },
		func() Lock { return &CLH{} },
		func() Lock { return &Hem{} },
		func() Lock { return &Chen{} },
		func() Lock { return &Recipro{} },
	}
}

// ByName returns the factory whose lock has the given name, or nil.
// All families are searched: the Table 1 set, the Reciprocating
// variants, and the fairness variants.
func ByName(name string) Factory {
	for _, f := range Catalog() {
		if f().Name() == name {
			return f
		}
	}
	return nil
}

// Catalog returns every simulated lock factory: the Table 1 set
// followed by the Reciprocating variants and the fairness variants.
func Catalog() []Factory {
	out := All()
	out = append(out, Variants()...)
	return append(out, FairnessVariants()...)
}

// Names lists all simulated lock names.
func Names() []string {
	var out []string
	for _, f := range All() {
		out = append(out, f().Name())
	}
	return out
}
