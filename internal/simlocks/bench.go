package simlocks

import (
	"repro/internal/coherence"
	"repro/internal/xrand"
)

// Config shapes one simulated MutexBench run.
type Config struct {
	Threads  int
	Episodes int // per thread
	Warmup   int // episodes excluded from event-rate accounting

	Mode  coherence.Mode
	Costs coherence.CostModel
	Seed  uint64

	// CSShared makes the critical section advance a shared PRNG line
	// (one load + one store), as MutexBench's critical section does;
	// otherwise the CS is purely local work, as in the paper's
	// invalidation-count methodology.
	CSShared bool
	// CSWork is local computation inside the critical section, in
	// cycles.
	CSWork uint64
	// NCSMaxWork is the non-critical section's maximum local work;
	// each episode draws uniformly from [0, NCSMaxWork) with a
	// per-thread generator (0 = empty NCS: maximal contention).
	NCSMaxWork uint64

	// NodeCPUs is the number of CPUs per NUMA node (0 = all CPUs on
	// one node). CPUs fill nodes in contiguous blocks — mirroring the
	// paper's Intel X5-2, where the kernel spills onto the second
	// 18-core socket above 18 ready threads. Per-thread lock lines
	// are homed on their owner's node; shared lock lines on node 0
	// (§8 point A).
	NodeCPUs int

	// CollectLatency records each post-warmup acquisition's latency
	// in cycles (timed mode) into Outcome.AcquireLatencies.
	CollectLatency bool

	// WordsPerLine sets the simulated coherence granule (default 1 =
	// every hot word sequestered, the paper's 128-byte alignment;
	// larger values pack sequentially allocated words onto shared
	// lines for false-sharing ablations).
	WordsPerLine int

	MaxSteps uint64
}

// Outcome summarizes one run.
type Outcome struct {
	Lock               string
	Result             coherence.Result
	EventsPerEpisode   float64 // coherence events per episode (Table 1)
	RemotePerEpisode   float64 // remote misses per episode (Table 1)
	Throughput         float64 // episodes per kilocycle (timed mode)
	InvalidatedPerOp   float64
	AdmissionSchedule  []int
	EpisodesPerThread  []uint64
	PostWarmupEpisodes uint64
	// AcquireLatencies holds per-acquisition wait latencies in cycles
	// (timed mode, post-warmup, all threads pooled), when requested.
	AcquireLatencies []float64
	// LineBreakdown attributes coherence events to named lines over
	// the whole run (§8's per-access-site tally); TotalEpisodes
	// (including warmup) is the normalizer.
	LineBreakdown map[string]coherence.LineStats
	TotalEpisodes uint64
	// Instance is the lock object the run used, for lock-specific
	// diagnostics (e.g. Recipro.Detaches).
	Instance Lock
}

// Run executes the benchmark for one lock under cfg.
func Run(mk Factory, cfg Config) Outcome {
	if cfg.Threads <= 0 {
		panic("simlocks: Threads must be positive")
	}
	if cfg.Episodes <= 0 {
		cfg.Episodes = 100
	}
	perNode := cfg.NodeCPUs
	if perNode <= 0 {
		perNode = cfg.Threads
	}
	nodeOf := func(cpu int) int { return cpu / perNode }

	// Home map: filled in during setup via a closure over a table.
	home := map[coherence.Addr]int{}
	sys := coherence.NewSystem(coherence.Config{
		CPUs:         cfg.Threads,
		NodeOf:       nodeOf,
		HomeOf:       func(a coherence.Addr) int { return home[a] },
		WordsPerLine: cfg.WordsPerLine,
	})

	lock := mk()
	lock.Setup(sys, cfg.Threads)
	// Per-thread lines are homed with their thread: Setup allocates
	// lock-global lines first, then per-thread lines in thread order.
	// Rather than guess allocation order, home lines by name: lines
	// named with per-thread suffix conventions get striped. Setup
	// allocated in a known pattern: global lines then one (or more)
	// per thread, so stripe everything allocated after the globals.
	assignHomes(sys, home, cfg.Threads, nodeOf)

	var csLine coherence.Addr
	if cfg.CSShared {
		csLine = sys.Alloc("bench.sharedPRNG")
	}

	costs := cfg.Costs
	if costs == (coherence.CostModel{}) {
		costs = coherence.DefaultCosts
	}
	sched := coherence.NewScheduler(sys, cfg.Mode, costs, cfg.Seed, cfg.MaxSteps)

	warmEvents := make([]uint64, cfg.Threads)
	warmRemote := make([]uint64, cfg.Threads)
	warmInval := make([]uint64, cfg.Threads)
	latencies := make([][]float64, cfg.Threads)

	res := sched.Run(func(c *coherence.Ctx) {
		rng := xrand.NewXorShift64(uint64(c.CPU)*0x9e3779b9 + cfg.Seed + 1)
		total := cfg.Episodes + cfg.Warmup
		for i := 0; i < total; i++ {
			if i == cfg.Warmup {
				st := sys.Stats(c.CPU)
				warmEvents[c.CPU] = st.CoherenceEvents()
				warmRemote[c.CPU] = st.RemoteMiss
				warmInval[c.CPU] = st.Invalidated
			}
			t0 := c.Clock()
			lock.Acquire(c, c.CPU)
			if cfg.CollectLatency && i >= cfg.Warmup {
				latencies[c.CPU] = append(latencies[c.CPU], float64(c.Clock()-t0))
			}
			c.Admit()
			if cfg.CSShared {
				v := c.Load(csLine)
				c.Store(csLine, v*6364136223846793005+1442695040888963407)
			}
			if cfg.CSWork > 0 {
				c.Work(cfg.CSWork)
			}
			lock.Release(c, c.CPU)
			c.Episode()
			if cfg.NCSMaxWork > 0 {
				c.Work(1 + rng.Uint64()%cfg.NCSMaxWork)
			}
		}
	})

	var events, remote, inval uint64
	for cpu := 0; cpu < cfg.Threads; cpu++ {
		st := res.Stats[cpu]
		events += st.CoherenceEvents() - warmEvents[cpu]
		remote += st.RemoteMiss - warmRemote[cpu]
		inval += st.Invalidated - warmInval[cpu]
	}
	post := uint64(cfg.Threads * cfg.Episodes)

	out := Outcome{
		Lock:               lock.Name(),
		Result:             res,
		Throughput:         res.Throughput(),
		AdmissionSchedule:  res.Admissions,
		EpisodesPerThread:  res.Episodes,
		PostWarmupEpisodes: post,
	}
	if post > 0 {
		out.EventsPerEpisode = float64(events) / float64(post)
		out.RemotePerEpisode = float64(remote) / float64(post)
		out.InvalidatedPerOp = float64(inval) / float64(post)
	}
	if cfg.CollectLatency {
		for _, l := range latencies {
			out.AcquireLatencies = append(out.AcquireLatencies, l...)
		}
	}
	out.LineBreakdown = sys.LineBreakdown()
	out.TotalEpisodes = uint64(cfg.Threads * (cfg.Episodes + cfg.Warmup))
	out.Instance = lock
	return out
}

// assignHomes homes every line allocated so far: the heuristic matches
// the Setup conventions in this package — lines whose label contains a
// per-thread structure name are striped across threads in allocation
// order; lock-global lines live on node 0.
func assignHomes(sys *coherence.System, home map[coherence.Addr]int, threads int, nodeOf func(int) int) {
	perThread := map[string]int{} // name -> next thread index
	for a := coherence.Addr(1); ; a++ {
		name := sys.Name(a)
		if name == "" {
			break
		}
		if isPerThreadLine(name) {
			t := perThread[name]
			perThread[name] = t + 1
			home[a] = nodeOf(t % threads)
		} else {
			home[a] = 0
		}
	}
}

// isPerThreadLine recognizes the per-thread line labels used by the
// lock Setups in this package.
func isPerThreadLine(name string) bool {
	switch name {
	case "mcs.next", "mcs.locked", "hem.grant", "chen.elem", "rcp.gate":
		return true
	}
	// CLH nodes circulate, so they are deliberately NOT thread-homed:
	// that is precisely the paper's point about CLH on NUMA systems.
	return false
}
