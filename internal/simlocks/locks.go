package simlocks

import "repro/internal/coherence"

// Element/node identities are encoded as the uint64 value of the
// line's address; 0 is "null". Reciprocating's LOCKEDEMPTY is 1, so
// lock setup always allocates the lock words before any per-thread
// lines, guaranteeing element addresses are >= 2.
const simLockedEmpty = 1

// Ticket is the classic FIFO ticket lock: constant-time paths but
// global spinning — every waiter parks on the grant line and re-reads
// (one miss each) at every release, producing Table 1's T-proportional
// invalidation count.
type Ticket struct {
	ticket, grant coherence.Addr
}

func (l *Ticket) Name() string { return "TKT" }

func (l *Ticket) Setup(sys *coherence.System, threads int) {
	l.ticket = sys.Alloc("tkt.ticket")
	l.grant = sys.Alloc("tkt.grant")
}

func (l *Ticket) Acquire(c *coherence.Ctx, tid int) {
	tx := c.FetchAdd(l.ticket, 1)
	c.SpinUntil(l.grant, func(v uint64) bool { return v == tx })
}

func (l *Ticket) Release(c *coherence.Ctx, tid int) {
	g := c.Load(l.grant)
	c.Store(l.grant, g+1)
}

// ABQL is Anderson's array-based queue lock: ticket dispersal into a
// per-lock slot array gives local spinning at the cost of T*L space.
type ABQL struct {
	ticket coherence.Addr
	slots  []coherence.Addr
	self   []uint64
}

func (l *ABQL) Name() string { return "ABQL" }

func (l *ABQL) Setup(sys *coherence.System, threads int) {
	l.ticket = sys.Alloc("abql.ticket")
	l.slots = make([]coherence.Addr, threads)
	for i := range l.slots {
		l.slots[i] = sys.Alloc("abql.slot")
	}
	sys.InitValue(l.slots[0], 1)
	l.self = make([]uint64, threads)
}

func (l *ABQL) Acquire(c *coherence.Ctx, tid int) {
	tx := c.FetchAdd(l.ticket, 1)
	idx := tx % uint64(len(l.slots))
	c.SpinUntil(l.slots[idx], func(v uint64) bool { return v == 1 })
	c.Store(l.slots[idx], 0)
	l.self[tid] = idx
}

func (l *ABQL) Release(c *coherence.Ctx, tid int) {
	next := (l.self[tid] + 1) % uint64(len(l.slots))
	c.Store(l.slots[next], 1)
}

// TWA is the ticket lock augmented with a waiting array: waiters more
// than one ticket away park on a hashed slot of a shared array, so at
// most one thread spins on grant and the invalidation storm vanishes.
type TWA struct {
	ticket, grant coherence.Addr
	slots         []coherence.Addr
}

const twaSlots = 64

func (l *TWA) Name() string { return "TWA" }

func (l *TWA) Setup(sys *coherence.System, threads int) {
	l.ticket = sys.Alloc("twa.ticket")
	l.grant = sys.Alloc("twa.grant")
	l.slots = make([]coherence.Addr, twaSlots)
	for i := range l.slots {
		l.slots[i] = sys.Alloc("twa.slot")
	}
}

func (l *TWA) slotFor(ticket uint64) coherence.Addr {
	return l.slots[(ticket*0x9e3779b97f4a7c15>>58)&(twaSlots-1)]
}

func (l *TWA) Acquire(c *coherence.Ctx, tid int) {
	tx := c.FetchAdd(l.ticket, 1)
	for {
		g := c.Load(l.grant)
		if tx == g {
			return
		}
		if tx-g == 1 {
			// Short-term: spin on grant (at most one thread here).
			c.SpinUntil(l.grant, func(v uint64) bool { return v == tx })
			return
		}
		// Long-term: park on the hashed slot. The release that moves
		// grant to tx-1 bumps our slot. Ordering makes this airtight
		// under the simulator's sequential consistency: the bump
		// follows the grant store, so either our slot snapshot
		// already includes it (and the re-read of grant sees dist<=1)
		// or the bump arrives later and wakes us.
		s := c.Load(l.slotFor(tx))
		if tx-c.Load(l.grant) <= 1 {
			continue
		}
		c.SpinUntil(l.slotFor(tx), func(v uint64) bool { return v != s })
	}
}

func (l *TWA) Release(c *coherence.Ctx, tid int) {
	g := c.Load(l.grant)
	c.Store(l.grant, g+1)
	// Promote the thread two tickets out from long- to short-term.
	c.FetchAdd(l.slotFor(g+2), 1)
}

// MCS is the classic Mellor-Crummey–Scott queue lock with per-thread
// nodes (next + locked lines) and local spinning.
type MCS struct {
	tail         coherence.Addr
	next, locked []coherence.Addr
}

func (l *MCS) Name() string { return "MCS" }

func (l *MCS) Setup(sys *coherence.System, threads int) {
	l.tail = sys.Alloc("mcs.tail")
	l.next = make([]coherence.Addr, threads)
	l.locked = make([]coherence.Addr, threads)
	for i := 0; i < threads; i++ {
		l.next[i] = sys.Alloc("mcs.next")
		l.locked[i] = sys.Alloc("mcs.locked")
	}
}

func (l *MCS) Acquire(c *coherence.Ctx, tid int) {
	me := uint64(tid + 1)
	c.Store(l.next[tid], 0)
	c.Store(l.locked[tid], 1)
	pred := c.Swap(l.tail, me)
	if pred != 0 {
		c.Store(l.next[pred-1], me)
		c.SpinUntil(l.locked[tid], func(v uint64) bool { return v == 0 })
	}
}

func (l *MCS) Release(c *coherence.Ctx, tid int) {
	me := uint64(tid + 1)
	if c.Load(l.next[tid]) == 0 {
		if c.CAS(l.tail, me, 0) {
			return
		}
		// Successor is mid-enqueue: the non-constant-time tail of
		// MCS release.
		c.SpinUntil(l.next[tid], func(v uint64) bool { return v != 0 })
	}
	succ := c.Load(l.next[tid])
	c.Store(l.locked[succ-1], 0)
}

// CLH is the CLH queue lock: implicit queue, local spinning on the
// predecessor's node, nodes circulate between threads. The circulation
// is why CLH pays an extra miss per episode (the "prepare" store hits
// a node last written by another thread — §8's tally of 5).
type CLH struct {
	tail  coherence.Addr
	nodes []coherence.Addr // threads+1 nodes; ids are 1-based indexes
	free  []int            // per-thread node currently owned for reuse
	owned []int            // per-thread node installed at acquire
}

func (l *CLH) Name() string { return "CLH" }

func (l *CLH) Setup(sys *coherence.System, threads int) {
	l.tail = sys.Alloc("clh.tail")
	l.nodes = make([]coherence.Addr, threads+1)
	for i := range l.nodes {
		l.nodes[i] = sys.Alloc("clh.node")
	}
	// nodes[threads] is the dummy, initially granted; tail points at
	// it (node ids are index+1).
	sys.InitValue(l.tail, uint64(threads+1))
	l.free = make([]int, threads)
	l.owned = make([]int, threads)
	for i := range l.free {
		l.free[i] = i + 1
	}
}

func (l *CLH) Acquire(c *coherence.Ctx, tid int) {
	n := l.free[tid]
	// Prepare the inherited node: a miss when it migrated from
	// another thread.
	c.Store(l.nodes[n-1], 1)
	pred := c.Swap(l.tail, uint64(n))
	// Dependent load: the spin address is unknown until the exchange
	// returns (§8's stall observation).
	c.SpinUntil(l.nodes[pred-1], func(v uint64) bool { return v == 0 })
	l.owned[tid] = n
	l.free[tid] = int(pred) // inherit the predecessor's node
}

func (l *CLH) Release(c *coherence.Ctx, tid int) {
	c.Store(l.nodes[l.owned[tid]-1], 0)
}

// Hem is HemLock: single tail word, address-based grant through the
// releasing thread's element, synchronous acknowledgement (CTR).
type Hem struct {
	tail  coherence.Addr
	grant []coherence.Addr
	token uint64
}

func (l *Hem) Name() string { return "HemLock" }

func (l *Hem) Setup(sys *coherence.System, threads int) {
	l.tail = sys.Alloc("hem.tail")
	l.token = uint64(l.tail) // unique non-zero lock identity
	l.grant = make([]coherence.Addr, threads)
	for i := 0; i < threads; i++ {
		l.grant[i] = sys.Alloc("hem.grant")
	}
}

func (l *Hem) Acquire(c *coherence.Ctx, tid int) {
	me := uint64(tid + 1)
	pred := c.Swap(l.tail, me)
	if pred != 0 {
		// Wait for the predecessor to publish this lock's address.
		c.SpinUntil(l.grant[pred-1], func(v uint64) bool { return v == l.token })
		// Acknowledge so the predecessor may retire its element.
		c.Store(l.grant[pred-1], 0)
	}
}

func (l *Hem) Release(c *coherence.Ctx, tid int) {
	me := uint64(tid + 1)
	if c.Load(l.tail) == me && c.CAS(l.tail, me, 0) {
		return
	}
	c.Store(l.grant[tid], l.token)
	c.SpinUntil(l.grant[tid], func(v uint64) bool { return v == 0 })
}

// Chen models Chen & Huang's stack-based lock: identical segment
// structure to Reciprocating but ownership is published through
// central shared words (current + eos), so waiting is global and every
// contended release writes shared state.
type Chen struct {
	arrivals, current, eos coherence.Addr
	elem                   []coherence.Addr
	succ                   []uint64
}

func (l *Chen) Name() string { return "Chen" }

func (l *Chen) Setup(sys *coherence.System, threads int) {
	l.arrivals = sys.Alloc("chen.arrivals")
	l.current = sys.Alloc("chen.current")
	l.eos = sys.Alloc("chen.eos")
	l.elem = make([]coherence.Addr, threads)
	for i := 0; i < threads; i++ {
		l.elem[i] = sys.Alloc("chen.elem")
	}
	l.succ = make([]uint64, threads)
}

func (l *Chen) Acquire(c *coherence.Ctx, tid int) {
	e := uint64(l.elem[tid])
	succ := c.Swap(l.arrivals, e)
	if succ == 0 {
		c.Store(l.eos, e)
		l.succ[tid] = 0
		return
	}
	if succ == simLockedEmpty {
		succ = 0
	}
	// Global spinning on the shared current word.
	c.SpinUntil(l.current, func(v uint64) bool { return v == e })
	// Consume the grant: simulated elements have fixed identities
	// (one per thread), so a stale grant left in current would
	// otherwise falsely re-admit us next episode. (The real Go
	// implementation gets this uniqueness from fresh allocation; the
	// consume store is also faithful to Chen's use of mutable central
	// state.)
	c.Store(l.current, 0)
	if veos := c.Load(l.eos); veos == succ && succ != 0 {
		succ = 0
		c.Store(l.eos, simLockedEmpty)
	}
	l.succ[tid] = succ
}

func (l *Chen) Release(c *coherence.Ctx, tid int) {
	e := uint64(l.elem[tid])
	succ := l.succ[tid]
	if succ != 0 {
		c.Store(l.current, succ)
		return
	}
	k := c.Load(l.arrivals)
	if k == e || k == simLockedEmpty {
		if c.CAS(l.arrivals, k, 0) {
			return
		}
	}
	w := c.Swap(l.arrivals, simLockedEmpty)
	c.Store(l.current, w)
}

// Recipro is the canonical Reciprocating Lock of Listing 1: one-word
// lock, wait-free exchange doorway, segments, end-of-segment address
// conveyed through the waiters' Gate lines.
type Recipro struct {
	arrivals  coherence.Addr
	gate      []coherence.Addr
	succ, eos []uint64
	// detaches counts arrival-segment detach operations; episodes /
	// detaches is the mean segment length (§8's handoff-cost
	// discussion).
	detaches uint64
}

// Detaches reports how many times the arrival segment was detached.
func (l *Recipro) Detaches() uint64 { return l.detaches }

func (l *Recipro) Name() string { return "Recipro" }

func (l *Recipro) Setup(sys *coherence.System, threads int) {
	l.arrivals = sys.Alloc("rcp.arrivals")
	l.gate = make([]coherence.Addr, threads)
	for i := 0; i < threads; i++ {
		l.gate[i] = sys.Alloc("rcp.gate")
	}
	l.succ = make([]uint64, threads)
	l.eos = make([]uint64, threads)
}

func (l *Recipro) Acquire(c *coherence.Ctx, tid int) {
	e := uint64(l.gate[tid])
	// Re-arm the gate (S→M upgrade in steady state: §8's first tally
	// entry).
	c.Store(l.gate[tid], 0)
	succ := uint64(0)
	eos := e // anticipate fast path

	tail := c.Swap(l.arrivals, e)
	if tail != 0 {
		if tail != simLockedEmpty {
			succ = tail
		}
		// Local spin on our own gate; the granted value is the eos.
		eos = c.SpinUntil(l.gate[tid], func(v uint64) bool { return v != 0 })
		if succ == eos {
			succ = 0
			eos = simLockedEmpty
		}
	}
	l.succ[tid], l.eos[tid] = succ, eos
}

func (l *Recipro) Release(c *coherence.Ctx, tid int) {
	succ, eos := l.succ[tid], l.eos[tid]
	if succ != 0 {
		c.Store(coherence.Addr(succ), eos)
		return
	}
	if c.CAS(l.arrivals, eos, 0) {
		return
	}
	l.detaches++
	w := c.Swap(l.arrivals, simLockedEmpty)
	c.Store(coherence.Addr(w), eos)
}
