// Package llcmodel implements Appendix C's shared last-level-cache
// residency model: while a thread waits for a lock, its LLC footprint
// decays exponentially under the traffic of the running threads;
// admission-schedule shape therefore changes aggregate miss rates.
//
//	Residual(T) = exp(-T * lambda)
//
// where T is the sojourn (quanta since the thread last ran) and lambda
// parameterizes decay. Because Residual is convex, Jensen's inequality
// makes alternating short/long gaps (palindromic schedules) retain the
// same or more residency than the constant gaps of FIFO — the paper's
// argument for why Reciprocating admission can beat FIFO throughput
// while introducing residency unfairness.
package llcmodel

import "math"

// Residual returns the residual LLC residency fraction after waiting
// t quanta with decay parameter lambda.
func Residual(t float64, lambda float64) float64 {
	return math.Exp(-t * lambda)
}

// LambdaFromHalfLife converts a half-life (in quanta) into the decay
// parameter, the paper's usual parameterization.
func LambdaFromHalfLife(halfLife float64) float64 {
	return math.Ln2 / halfLife
}

// Report summarizes the residency consequences of one admission
// schedule.
type Report struct {
	// PerThreadResidual is the mean residual residency each thread
	// enjoys at the moments it is admitted.
	PerThreadResidual []float64
	// Aggregate is the admission-weighted mean residual across all
	// threads (higher = fewer cache-reload misses = better aggregate
	// throughput).
	Aggregate float64
	// MissRate is 1 - Aggregate: the mean cache-reload transient.
	MissRate float64
	// MinResidual and MaxResidual expose the per-thread disparity —
	// Appendix C's "different form of unfairness".
	MinResidual, MaxResidual float64
}

// Evaluate computes the report for a cyclic admission schedule over n
// threads. The schedule is treated as repeating: waiting times wrap
// around, so one period of a cycle fully determines the steady state.
// Threads that appear fewer than once are skipped. The waiting time
// for an admission is the number of quanta since the thread's previous
// admission, exclusive of its own slot (so FIFO over 5 threads gives
// a wait of 4, matching Appendix C's example).
func Evaluate(schedule []int, n int, lambda float64) Report {
	l := len(schedule)
	sum := make([]float64, n)
	cnt := make([]int, n)

	// Collect each thread's admission positions within one period.
	positions := make([][]int, n)
	for i, t := range schedule {
		if t >= 0 && t < n {
			positions[t] = append(positions[t], i)
		}
	}
	// Cyclic gaps: the wait before admission p[j] is the distance
	// from the previous admission (wrapping to the prior period),
	// exclusive of the thread's own slot.
	for t := 0; t < n; t++ {
		ps := positions[t]
		k := len(ps)
		if k == 0 {
			continue
		}
		for j := 0; j < k; j++ {
			prev := ps[(j+k-1)%k]
			gap := ps[j] - prev
			if gap <= 0 {
				gap += l
			}
			sum[t] += Residual(float64(gap-1), lambda)
			cnt[t]++
		}
	}

	rep := Report{PerThreadResidual: make([]float64, n)}
	var total float64
	var totalCnt int
	rep.MinResidual = math.Inf(1)
	rep.MaxResidual = math.Inf(-1)
	for t := 0; t < n; t++ {
		if cnt[t] == 0 {
			rep.PerThreadResidual[t] = math.NaN()
			continue
		}
		m := sum[t] / float64(cnt[t])
		rep.PerThreadResidual[t] = m
		total += sum[t]
		totalCnt += cnt[t]
		if m < rep.MinResidual {
			rep.MinResidual = m
		}
		if m > rep.MaxResidual {
			rep.MaxResidual = m
		}
	}
	if totalCnt > 0 {
		rep.Aggregate = total / float64(totalCnt)
	}
	rep.MissRate = 1 - rep.Aggregate
	return rep
}

// ResidencyDisparity returns MaxResidual/MinResidual — the Appendix C
// residency-unfairness measure.
func (r Report) ResidencyDisparity() float64 {
	if r.MinResidual <= 0 {
		return math.Inf(1)
	}
	return r.MaxResidual / r.MinResidual
}
