package llcmodel

import (
	"math"
	"testing"

	"repro/internal/admission"
)

func TestResidualBasics(t *testing.T) {
	if Residual(0, 0.5) != 1 {
		t.Fatal("Residual(0) != 1")
	}
	if Residual(10, 0.5) >= Residual(5, 0.5) {
		t.Fatal("Residual not decreasing")
	}
	l := LambdaFromHalfLife(4)
	if math.Abs(Residual(4, l)-0.5) > 1e-12 {
		t.Fatalf("half-life residual = %v, want 0.5", Residual(4, l))
	}
}

// Appendix C's worked example: under FIFO over 5 threads every wait is
// 4; under the palindrome schedule thread B's waits alternate 2 and 6.
func TestAppendixCWaitTimes(t *testing.T) {
	lambda := LambdaFromHalfLife(3)
	fifo := Evaluate(admission.FIFOSchedule(5, 1), 5, lambda)
	want := Residual(4, lambda)
	for tid, r := range fifo.PerThreadResidual {
		if math.Abs(r-want) > 1e-12 {
			t.Fatalf("FIFO thread %d residual %v, want %v", tid, r, want)
		}
	}

	pal := Evaluate(admission.PalindromeSchedule(5, 1), 5, lambda)
	// Thread 1 (B): waits 2 and 6 (positions 1 and 8 in period 10).
	wantB := (Residual(2, lambda) + Residual(6, lambda)) / 2
	if math.Abs(pal.PerThreadResidual[1]-wantB) > 1e-12 {
		t.Fatalf("palindrome thread B residual %v, want %v", pal.PerThreadResidual[1], wantB)
	}
}

// The central Appendix C claim (Jensen's inequality): every thread's
// residual under the palindrome schedule is >= its FIFO residual, so
// the aggregate miss rate is lower.
func TestJensenPalindromeBeatsFIFO(t *testing.T) {
	for _, halfLife := range []float64{0.5, 1, 2, 4, 16} {
		lambda := LambdaFromHalfLife(halfLife)
		for _, n := range []int{3, 5, 9, 16} {
			fifo := Evaluate(admission.FIFOSchedule(n, 1), n, lambda)
			pal := Evaluate(admission.PalindromeSchedule(n, 1), n, lambda)
			for tid := 0; tid < n; tid++ {
				if pal.PerThreadResidual[tid] < fifo.PerThreadResidual[tid]-1e-12 {
					t.Fatalf("n=%d hl=%v: thread %d palindrome residual %v < FIFO %v",
						n, halfLife, tid, pal.PerThreadResidual[tid], fifo.PerThreadResidual[tid])
				}
			}
			if pal.Aggregate < fifo.Aggregate-1e-12 {
				t.Fatalf("n=%d hl=%v: palindrome aggregate %v < FIFO %v",
					n, halfLife, pal.Aggregate, fifo.Aggregate)
			}
			if pal.MissRate > fifo.MissRate+1e-12 {
				t.Fatalf("n=%d hl=%v: palindrome miss rate %v > FIFO %v",
					n, halfLife, pal.MissRate, fifo.MissRate)
			}
		}
	}
}

// The reciprocating cycle (Table 2) also beats FIFO in aggregate, and
// exhibits residency disparity across threads — the "different form of
// unfairness" (§9.3).
func TestReciprocatingCycleResidency(t *testing.T) {
	lambda := LambdaFromHalfLife(2)
	n := 5
	fifo := Evaluate(admission.FIFOSchedule(n, 1), n, lambda)
	rcp := Evaluate(admission.ReciprocatingCycleSchedule(n, 1), n, lambda)
	if rcp.Aggregate <= fifo.Aggregate {
		t.Fatalf("reciprocating aggregate %v should beat FIFO %v", rcp.Aggregate, fifo.Aggregate)
	}
	if rcp.ResidencyDisparity() <= 1 {
		t.Fatalf("reciprocating disparity %v should exceed 1", rcp.ResidencyDisparity())
	}
	if fifo.ResidencyDisparity() != 1 {
		t.Fatalf("FIFO disparity %v should be exactly 1", fifo.ResidencyDisparity())
	}
}

// A random schedule is statistically long-term fair while still
// beating FIFO's aggregate miss rate (§9.4 / Appendix C note).
func TestRandomScheduleBeatsFIFOAggregate(t *testing.T) {
	lambda := LambdaFromHalfLife(2)
	n := 5
	fifo := Evaluate(admission.FIFOSchedule(n, 1000), n, lambda)
	rnd := Evaluate(admission.RandomSchedule(n, 5000*n, 7), n, lambda)
	if rnd.Aggregate <= fifo.Aggregate {
		t.Fatalf("random aggregate %v should beat FIFO %v", rnd.Aggregate, fifo.Aggregate)
	}
	// Fairness: per-thread residuals close to each other.
	if rnd.ResidencyDisparity() > 1.2 {
		t.Fatalf("random schedule residency disparity %v too high", rnd.ResidencyDisparity())
	}
}

func TestEvaluateSkipsAbsentThreads(t *testing.T) {
	rep := Evaluate([]int{0, 1, 0, 1}, 3, 0.3)
	if !math.IsNaN(rep.PerThreadResidual[2]) {
		t.Fatal("absent thread should have NaN residual")
	}
	if math.IsNaN(rep.Aggregate) || rep.Aggregate <= 0 {
		t.Fatal("aggregate should ignore absent threads")
	}
}
