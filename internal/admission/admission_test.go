package admission

import (
	"testing"
	"testing/quick"
)

func TestCounts(t *testing.T) {
	s := []int{0, 1, 1, 2, 0, 0}
	got := Counts(s, 3)
	want := []int64{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Counts = %v, want %v", got, want)
		}
	}
}

func TestFindCycleOnTable2Schedule(t *testing.T) {
	// §9.1's cycle with a transient prefix.
	prefix := []int{4, 2, 0}
	cycle := []int{0, 1, 2, 3, 4, 3, 2, 1} // ABCDEDCB
	s := append([]int{}, prefix...)
	for r := 0; r < 6; r++ {
		s = append(s, cycle...)
	}
	got, ok := FindCycle(s, 3)
	if !ok {
		t.Fatal("cycle not found")
	}
	if len(got) != 8 {
		t.Fatalf("period %d, want 8", len(got))
	}
	// The returned cycle is a rotation of the canonical one; verify
	// multiset and palindromicity.
	counts := Counts(got, 5)
	if counts[0] != 1 || counts[4] != 1 || counts[1] != 2 || counts[2] != 2 || counts[3] != 2 {
		t.Fatalf("cycle counts %v, want [1 2 2 2 1]", counts)
	}
	if !IsPalindromic(got) {
		t.Fatalf("Table 2 cycle %v not recognized as palindromic", got)
	}
}

func TestFindCycleRejectsAperiodic(t *testing.T) {
	s := []int{0, 1, 2, 0, 2, 1, 1, 0, 2, 2, 0, 1, 0, 0, 1, 2, 1, 0}
	if cyc, ok := FindCycle(s, 4); ok {
		t.Fatalf("found bogus cycle %v in aperiodic schedule", cyc)
	}
}

func TestFindCycleShortestPeriod(t *testing.T) {
	// Period-2 schedule must report period 2, not 4.
	s := []int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	cyc, ok := FindCycle(s, 3)
	if !ok || len(cyc) != 2 {
		t.Fatalf("cycle %v ok=%v, want period 2", cyc, ok)
	}
}

func TestIsPalindromicVariants(t *testing.T) {
	cases := []struct {
		name  string
		cycle []int
		want  bool
	}{
		{"table2", []int{0, 1, 2, 3, 4, 3, 2, 1}, true},
		{"table2 rotated", []int{3, 2, 1, 0, 1, 2, 3, 4}, true},
		{"true palindrome", []int{0, 1, 2, 3, 4, 4, 3, 2, 1, 0}, true},
		{"fifo", []int{0, 1, 2, 3, 4}, false},
		{"fifo even", []int{0, 1, 2, 3}, false},
		{"two threads", []int{0, 1, 0, 1}, false},
		{"random-ish", []int{0, 2, 1, 3, 0, 2}, false},
		{"tiny", []int{0, 1}, false},
	}
	for _, c := range cases {
		if got := IsPalindromic(c.cycle); got != c.want {
			t.Errorf("%s: IsPalindromic(%v) = %v, want %v", c.name, c.cycle, got, c.want)
		}
	}
}

func TestCycleDisparityTable2(t *testing.T) {
	// ABCDEDCB: B,C,D admitted twice; A,E once → disparity exactly 2
	// (§9.2's bound).
	d := CycleDisparity([]int{0, 1, 2, 3, 4, 3, 2, 1}, 5)
	if d != 2 {
		t.Fatalf("disparity = %v, want 2", d)
	}
	if d := CycleDisparity(FIFOSchedule(5, 1), 5); d != 1 {
		t.Fatalf("FIFO disparity = %v, want 1", d)
	}
}

func TestMaxBypass(t *testing.T) {
	// FIFO: nobody is admitted twice between two admissions of any
	// thread.
	if b := MaxBypass(FIFOSchedule(4, 10), 4); b != 1 {
		t.Fatalf("FIFO bypass = %d, want 1", b)
	}
	// Reciprocating cycle: interior threads run twice between the
	// endpoints' admissions → bound 2.
	if b := MaxBypass(ReciprocatingCycleSchedule(5, 10), 5); b != 2 {
		t.Fatalf("reciprocating bypass = %d, want 2", b)
	}
	// A starving schedule shows unbounded bypass.
	starve := []int{0, 1, 1, 1, 1, 1, 0}
	if b := MaxBypass(starve, 2); b != 5 {
		t.Fatalf("starvation bypass = %d, want 5", b)
	}
}

func TestFairnessMetrics(t *testing.T) {
	f := Fairness(ReciprocatingCycleSchedule(5, 100), 5)
	if f.Disparity != 2 {
		t.Fatalf("reciprocating long-run disparity = %v, want 2", f.Disparity)
	}
	if f.Jain >= 1 || f.Jain < 0.8 {
		t.Fatalf("reciprocating Jain = %v, want slightly below 1", f.Jain)
	}
	ff := Fairness(FIFOSchedule(5, 100), 5)
	if ff.Disparity != 1 || ff.Jain != 1 {
		t.Fatalf("FIFO fairness = %+v, want perfect", ff)
	}
}

func TestGeneratorsShape(t *testing.T) {
	if got := len(PalindromeSchedule(5, 3)); got != 30 {
		t.Fatalf("palindrome length %d, want 30", got)
	}
	if got := len(ReciprocatingCycleSchedule(5, 3)); got != 24 {
		t.Fatalf("reciprocating length %d, want 24", got)
	}
	r := RandomSchedule(5, 1000, 42)
	if len(r) != 1000 {
		t.Fatal("random length")
	}
	for _, x := range r {
		if x < 0 || x >= 5 {
			t.Fatalf("random schedule value %d out of range", x)
		}
	}
	// Deterministic per seed.
	r2 := RandomSchedule(5, 1000, 42)
	for i := range r {
		if r[i] != r2[i] {
			t.Fatal("random schedule not reproducible")
		}
	}
}

// Property: FindCycle always returns a true period of the tail.
func TestFindCycleProperty(t *testing.T) {
	err := quick.Check(func(base []uint8, reps uint8) bool {
		if len(base) == 0 || len(base) > 10 {
			return true
		}
		n := int(reps%5) + 3
		var s []int
		for r := 0; r < n; r++ {
			for _, b := range base {
				s = append(s, int(b%4))
			}
		}
		cyc, ok := FindCycle(s, 3)
		if !ok {
			return false // a repeated base must yield some cycle
		}
		// The found period must divide into the tail consistently.
		p := len(cyc)
		for i := len(s) - p; i < len(s); i++ {
			if i-p >= 0 && s[i] != s[i-p] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
