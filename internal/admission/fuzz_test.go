package admission

import "testing"

// FuzzFindCycle: any schedule formed by repeating a base pattern must
// yield a detected period that genuinely tiles the tail, and the
// analysis functions must never panic on arbitrary schedules.
func FuzzFindCycle(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 3, 2, 1}, uint8(5))
	f.Add([]byte{1}, uint8(3))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, base []byte, reps uint8) {
		const n = 6
		var sched []int
		r := int(reps%6) + 3
		for i := 0; i < r; i++ {
			for _, b := range base {
				sched = append(sched, int(b%n))
			}
		}
		// Analyses must be total.
		Counts(sched, n)
		Fairness(sched, n)
		MaxBypass(sched, n)
		cyc, ok := FindCycle(sched, 3)
		if len(base) > 0 && len(base) <= len(sched)/3 && !ok {
			t.Fatalf("repeated base %v (x%d) yielded no cycle", base, r)
		}
		if ok {
			p := len(cyc)
			if p == 0 || p > len(sched) {
				t.Fatalf("bogus period %d", p)
			}
			for i := len(sched) - p; i < len(sched); i++ {
				if i-p >= 0 && sched[i] != sched[i-p] {
					t.Fatalf("period %d does not tile the tail", p)
				}
			}
			IsPalindromic(cyc)
			CycleDisparity(cyc, n)
		}
	})
}
