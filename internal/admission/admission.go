// Package admission analyzes lock admission schedules: repeating-cycle
// detection, palindromic-structure recognition, per-cycle fairness
// accounting, and bounded-bypass verification — the machinery behind
// the paper's §9 (Table 2) palindromic-schedule experiments and the §2
// bounded-bypass claim.
package admission

import (
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Counts tallies admissions per thread for an n-thread schedule.
func Counts(schedule []int, n int) []int64 {
	out := make([]int64, n)
	for _, t := range schedule {
		if t >= 0 && t < n {
			out[t]++
		}
	}
	return out
}

// FindCycle locates the shortest period p such that the tail of the
// schedule repeats with period p for at least minReps repetitions.
// It returns the cycle (one period, taken from the very end) and true
// on success. Lock schedules settle into cycles only after an onset
// transient, which examining the tail skips automatically.
func FindCycle(schedule []int, minReps int) ([]int, bool) {
	if minReps < 2 {
		minReps = 2
	}
	n := len(schedule)
	for p := 1; p*minReps <= n; p++ {
		ok := true
		// Compare the last (minReps-1)*p entries against their
		// predecessors one period earlier.
		for i := n - (minReps-1)*p; i < n; i++ {
			if schedule[i] != schedule[i-p] {
				ok = false
				break
			}
		}
		if ok {
			return append([]int(nil), schedule[n-p:]...), true
		}
	}
	return nil, false
}

// IsPalindromic reports whether a cyclic schedule has the paper's
// palindromic structure: some rotation of the cycle can be written as
// a forward walk followed by the reverse of its interior — e.g.
// A B C D E D C B (§9.1's Table 2 cycle, period 8 for 5 threads).
// Trivial cycles (length < 3 or a single thread) are not palindromic.
func IsPalindromic(cycle []int) bool {
	l := len(cycle)
	if l < 3 {
		return false
	}
	distinct := map[int]bool{}
	for _, x := range cycle {
		distinct[x] = true
	}
	// Require at least 3 distinct participants so ABAB-style
	// alternation is not misclassified.
	if len(distinct) < 3 || l%2 != 0 {
		return false
	}
	m := l / 2
	for rot := 0; rot < l; rot++ {
		c := make([]int, l)
		for i := range c {
			c[i] = cycle[(rot+i)%l]
		}
		// Reciprocating style (§9.1): a0..am then reverse of the
		// interior a1..a_{m-1} — single endpoints (A B C D E D C B).
		okInterior := true
		for k := 1; k < m; k++ {
			if c[m+k] != c[m-k] {
				okInterior = false
				break
			}
		}
		if okInterior {
			return true
		}
		// True-palindrome style (Appendix C): the rotation reads the
		// same forward and backward — doubled endpoints
		// (A B C D E E D C B A).
		okMirror := true
		for i := 0; i < m; i++ {
			if c[i] != c[l-1-i] {
				okMirror = false
				break
			}
		}
		if okMirror {
			return true
		}
	}
	return false
}

// CycleDisparity computes the max/min per-thread admission ratio
// within one cycle, for the n threads that appear at all. The paper's
// §9.2 bound for reciprocating schedules is 2.
func CycleDisparity(cycle []int, n int) float64 {
	counts := Counts(cycle, n)
	present := counts[:0:0]
	for _, c := range counts {
		if c > 0 {
			present = append(present, c)
		}
	}
	return stats.DisparityRatio(present)
}

// MaxBypass computes the empirical bypass bound: for every pair of
// consecutive admissions of each thread, the maximum number of times
// any single other thread was admitted in between. Reciprocating
// Locks' thread-specific bounded bypass guarantees this never exceeds
// 2 (§2, §9.2): an overtaking thread can be admitted at most twice —
// once ahead on the current segment and once by pushing onto the next
// — before the waiter is granted.
func MaxBypass(schedule []int, n int) int {
	last := make([]int, n)
	for i := range last {
		last[i] = -1
	}
	max := 0
	between := make([]int, n)
	for i, t := range schedule {
		if t < 0 || t >= n {
			continue
		}
		if last[t] >= 0 {
			for j := range between {
				between[j] = 0
			}
			for k := last[t] + 1; k < i; k++ {
				o := schedule[k]
				if o >= 0 && o < n && o != t {
					between[o]++
					if between[o] > max {
						max = between[o]
					}
				}
			}
		}
		last[t] = i
	}
	return max
}

// LongRunFairness summarizes a schedule: per-thread counts, Jain
// index, and disparity ratio.
type LongRunFairness struct {
	Counts    []int64
	Jain      float64
	Disparity float64
}

// Fairness computes long-run fairness metrics over a schedule.
func Fairness(schedule []int, n int) LongRunFairness {
	counts := Counts(schedule, n)
	f := make([]float64, n)
	for i, c := range counts {
		f[i] = float64(c)
	}
	return LongRunFairness{
		Counts:    counts,
		Jain:      stats.JainIndex(f),
		Disparity: stats.DisparityRatio(counts),
	}
}

// FIFOSchedule generates reps rounds of round-robin admission over n
// threads (the classic FIFO baseline of Appendix C).
func FIFOSchedule(n, reps int) []int {
	out := make([]int, 0, n*reps)
	for r := 0; r < reps; r++ {
		for t := 0; t < n; t++ {
			out = append(out, t)
		}
	}
	return out
}

// PalindromeSchedule generates reps repetitions of the true palindrome
// A..E E..A described in Appendix C.
func PalindromeSchedule(n, reps int) []int {
	out := make([]int, 0, 2*n*reps)
	for r := 0; r < reps; r++ {
		for t := 0; t < n; t++ {
			out = append(out, t)
		}
		for t := n - 1; t >= 0; t-- {
			out = append(out, t)
		}
	}
	return out
}

// ReciprocatingCycleSchedule generates reps repetitions of the §9.1
// Table 2 cycle (A B C D E D C B for n=5): a forward walk followed by
// the reverse of its interior.
func ReciprocatingCycleSchedule(n, reps int) []int {
	out := make([]int, 0, (2*n-2)*reps)
	for r := 0; r < reps; r++ {
		for t := 0; t < n; t++ {
			out = append(out, t)
		}
		for t := n - 2; t >= 1; t-- {
			out = append(out, t)
		}
	}
	return out
}

// RandomSchedule draws length admissions uniformly over n threads
// with a seeded generator (the statistically fair baseline §9.4
// mentions).
func RandomSchedule(n, length int, seed uint64) []int {
	rng := xrand.NewXorShift64(seed | 1)
	out := make([]int, length)
	for i := range out {
		out[i] = rng.Intn(n)
	}
	return out
}
