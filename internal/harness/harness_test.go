package harness

import (
	"sync/atomic"
	"testing"
	"time"
)

// countingWorkload counts Setup/Teardown calls and performs a trivial
// atomic op per invocation.
type countingWorkload struct {
	setups    int
	teardowns int
	lastRun   RunInfo
	total     atomic.Uint64
}

func (w *countingWorkload) Setup(run RunInfo) { w.setups++; w.lastRun = run }
func (w *countingWorkload) Teardown()         { w.teardowns++ }
func (w *countingWorkload) Worker(id int) func() {
	return func() { w.total.Add(1) }
}

func TestIterationModeExactCounts(t *testing.T) {
	w := &countingWorkload{}
	m := Measure(w, Config{Threads: 4, Iterations: 500, Runs: 3, Seed: 7})
	if w.setups != 3 || w.teardowns != 3 {
		t.Fatalf("setup/teardown = %d/%d, want 3/3", w.setups, w.teardowns)
	}
	if len(m.Outs) != 3 || len(m.Scores) != 3 {
		t.Fatalf("outcome count = %d/%d", len(m.Outs), len(m.Scores))
	}
	for r, out := range m.Outs {
		var total uint64
		for i, v := range out.PerWorker {
			if v != 500 {
				t.Fatalf("run %d worker %d ops = %d, want 500", r, i, v)
			}
			total += v
		}
		if total != 2000 {
			t.Fatalf("run %d total = %d", r, total)
		}
		if out.Score <= 0 {
			t.Fatalf("run %d non-positive score", r)
		}
	}
	if w.total.Load() != 3*4*500 {
		t.Fatalf("workload op invocations = %d, want %d", w.total.Load(), 3*4*500)
	}
	if w.lastRun.Seed != 7+2 || w.lastRun.Run != 2 || w.lastRun.Threads != 4 {
		t.Fatalf("last RunInfo = %+v", w.lastRun)
	}
}

func TestDurationModeMeasures(t *testing.T) {
	w := &countingWorkload{}
	m := Measure(w, Config{Threads: 2, Duration: 30 * time.Millisecond, Runs: 1})
	out := m.MedianOutcome()
	var total uint64
	for _, v := range out.PerWorker {
		total += v
	}
	if total == 0 {
		t.Fatal("duration mode performed no operations")
	}
	if out.Elapsed <= 0 {
		t.Fatal("no elapsed time recorded")
	}
}

func TestWarmupExcludedFromElapsed(t *testing.T) {
	w := &countingWorkload{}
	m := Measure(w, Config{
		Threads:  1,
		Duration: 20 * time.Millisecond,
		Warmup:   40 * time.Millisecond,
		Runs:     1,
	})
	out := m.MedianOutcome()
	// The measured interval must reflect Duration, not Warmup+Duration:
	// if warmup leaked into the interval, elapsed would be ≥60ms.
	if out.Elapsed >= 55*time.Millisecond {
		t.Fatalf("elapsed %v includes the warmup phase", out.Elapsed)
	}
}

func TestMedianIndex(t *testing.T) {
	cases := []struct {
		scores []float64
		med    float64
		want   int
	}{
		{[]float64{3, 1, 2}, 2, 2},             // odd: exact median run
		{[]float64{5, 1, 9}, 5, 0},             // odd: exact, first position
		{[]float64{1, 2, 3, 100}, 2.5, 1},      // even: nearest to averaged median (tie → earliest)
		{[]float64{4, 1, 2, 8}, 3, 0},          // even: 4 (idx 0) and 2 (idx 2) tie at distance 1 → earliest wins
		{[]float64{7}, 7, 0},                   // single run
		{[]float64{2, 2, 2}, 2, 0},             // all equal → earliest
		{[]float64{1, 9, 10.5, 100}, 10.25, 2}, // even: 10.5 strictly nearest (binary-exact values)
	}
	for i, c := range cases {
		if got := MedianIndex(c.scores, c.med); got != c.want {
			t.Errorf("case %d: MedianIndex(%v, %v) = %d, want %d", i, c.scores, c.med, got, c.want)
		}
	}
}

// Regression test for the bug class fixed in mutexbench in PR 3 and
// centralized here: per-run fairness metrics (per-worker vector, Jain,
// disparity) must come from the median-defining run, never from
// whichever run executed last. The last run below is perfectly fair;
// the median-defining run (index 1, score 2 = median of {1,2,3}) is
// maximally skewed — the cell must report the skew.
func TestCellMetricsComeFromMedianDefiningRun(t *testing.T) {
	m := Measurement{
		Threads: 2,
		Outs: []RunOutcome{
			{Score: 1, PerWorker: []uint64{10, 10}, Elapsed: time.Millisecond},
			{Score: 2, PerWorker: []uint64{30, 10}, Elapsed: 2 * time.Millisecond},
			{Score: 3, PerWorker: []uint64{20, 20}, Elapsed: 3 * time.Millisecond},
		},
		Scores: []float64{1, 2, 3},
	}
	m.Median = 2
	m.MedianRun = MedianIndex(m.Scores, m.Median)
	if m.MedianRun != 1 {
		t.Fatalf("median run = %d, want 1", m.MedianRun)
	}
	c := CellFromMeasurement("L", "w", "Mops/s", m)
	if c.PerWorker[0] != 30 || c.PerWorker[1] != 10 {
		t.Fatalf("PerWorker = %v taken from the wrong run", c.PerWorker)
	}
	if c.Disparity != 3 {
		t.Fatalf("Disparity = %v, want 3 (median-defining run's 30/10)", c.Disparity)
	}
	if c.Jain >= 1 {
		t.Fatalf("Jain = %v; the last run's perfect fairness leaked into the cell", c.Jain)
	}
	if c.ElapsedNS != (2 * time.Millisecond).Nanoseconds() {
		t.Fatalf("ElapsedNS = %d taken from the wrong run", c.ElapsedNS)
	}
}

func TestMeasureSelectsMedianRun(t *testing.T) {
	w := &countingWorkload{}
	m := Measure(w, Config{Threads: 2, Iterations: 200, Runs: 5})
	want := MedianIndex(m.Scores, m.Median)
	if m.MedianRun != want {
		t.Fatalf("MedianRun = %d, want %d (scores %v, median %v)",
			m.MedianRun, want, m.Scores, m.Median)
	}
	if got := m.MedianOutcome().Score; got != m.Scores[want] {
		t.Fatalf("MedianOutcome score %v != scores[%d] %v", got, want, m.Scores[want])
	}
}

// A starved worker (zero ops in the median-defining run) must not
// crash JSON emission: +Inf disparity is clamped and preserved as a
// note.
func TestNonFiniteMetricsEncode(t *testing.T) {
	m := Measurement{
		Threads: 2,
		Outs:    []RunOutcome{{Score: 1, PerWorker: []uint64{100, 0}}},
		Scores:  []float64{1},
		Median:  1,
	}
	c := CellFromMeasurement("L", "w", "Mops/s", m)
	if c.Disparity != 0 {
		t.Fatalf("infinite disparity not clamped: %v", c.Disparity)
	}
	if c.Notes["disparity"] == "" {
		t.Fatal("infinite disparity lost without a note")
	}
	r := NewResult("test", "A", 1)
	r.Add(c)
	var sink discard
	if err := r.WriteJSON(&sink); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestExtrasCollected(t *testing.T) {
	w := &WorkloadFunc{
		WorkerFn: func(id int) func() { return func() {} },
		ExtrasFn: func() map[string]float64 { return map[string]float64{"hits": 42} },
	}
	m := Measure(w, Config{Threads: 1, Iterations: 10, Runs: 2})
	for r, out := range m.Outs {
		if out.Extras["hits"] != 42 {
			t.Fatalf("run %d extras = %v", r, out.Extras)
		}
	}
	c := CellFromMeasurement("L", "w", "Mops/s", m)
	if c.Extras["hits"] != 42 {
		t.Fatalf("cell extras = %v", c.Extras)
	}
}
