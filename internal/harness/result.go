package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"

	"repro/internal/chaos"
	"repro/internal/lockstat"
	"repro/internal/stats"
)

// SchemaVersion is the version of the JSON result schema. Decode
// rejects any other value so that future schema changes fail loudly
// instead of silently misparsing old baselines; bump it whenever a
// field's meaning changes or a required field is added/removed.
const SchemaVersion = 1

// Env captures the execution environment of a measurement, following
// the OCC-for-Go study's practice of recording runtime/scheduler
// configuration alongside every result — two result files are only
// comparable if their environments are.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// GitSHA is the repository commit the binary was built from
	// (best-effort; empty when git is unavailable).
	GitSHA string `json:"git_sha,omitempty"`
	Seed   uint64 `json:"seed"`
	// Chaos records whether deterministic fault injection was armed;
	// chaotic results are never comparable to clean ones.
	Chaos bool `json:"chaos,omitempty"`
}

var (
	gitSHAOnce sync.Once
	gitSHA     string
)

// CaptureEnv snapshots the current environment. seed is the harness's
// top-level seed; chaos arming is read from internal/chaos directly.
func CaptureEnv(seed uint64) Env {
	gitSHAOnce.Do(func() {
		out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
		if err == nil {
			gitSHA = strings.TrimSpace(string(out))
		}
	})
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitSHA:     gitSHA,
		Seed:       seed,
		Chaos:      chaos.Enabled(),
	}
}

// Summary embeds the internal/stats description of a score sample.
type Summary struct {
	Median float64 `json:"median"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Summarize computes the Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		Median: stats.Median(xs),
		Mean:   stats.Mean(xs),
		StdDev: stats.StdDev(xs),
		Min:    stats.Min(xs),
		Max:    stats.Max(xs),
	}
}

// Cell is one measured configuration: one lock (or schedule, or
// variant) × workload × thread count. Score is the cell's primary
// metric in Unit; higher is always better, so the regression
// comparator needs no per-unit direction table.
type Cell struct {
	Lock     string `json:"lock,omitempty"`
	Workload string `json:"workload"`
	Threads  int    `json:"threads,omitempty"`
	Unit     string `json:"unit"`

	Score float64 `json:"score"`
	// Runs holds every independent run's score, in run order; Summary
	// describes them. Both are omitted for single-shot cells.
	Runs    []float64 `json:"runs,omitempty"`
	Summary *Summary  `json:"summary,omitempty"`

	// Fairness metrics of the median-defining run.
	Jain      float64  `json:"jain,omitempty"`
	Disparity float64  `json:"disparity,omitempty"`
	PerWorker []uint64 `json:"per_worker,omitempty"`

	ElapsedNS int64 `json:"elapsed_ns,omitempty"`

	// Extras carries workload-specific auxiliary metrics (kv hits,
	// writer ops, bypass bounds, cycle periods, ...).
	Extras map[string]float64 `json:"extras,omitempty"`
	// Notes carries workload-specific non-numeric annotations (e.g.
	// a detected admission cycle).
	Notes map[string]string `json:"notes,omitempty"`
}

// Key identifies a cell for cross-file comparison.
func (c Cell) Key() string {
	return fmt.Sprintf("%s|%s|T=%d", c.Workload, c.Lock, c.Threads)
}

// Result is one harness invocation's machine-readable outcome — the
// unit cmd/benchdiff compares. Every harness command emits this exact
// schema under -json.
type Result struct {
	Schema  int    `json:"schema"`
	Harness string `json:"harness"`
	// Track is "A" (real goroutine execution) or "B" (deterministic
	// coherence simulation); results are only comparable within a
	// track.
	Track  string            `json:"track,omitempty"`
	Config map[string]string `json:"config,omitempty"`
	Env    Env               `json:"env"`
	Cells  []Cell            `json:"cells"`
	// Lockstat holds optional per-lock telemetry snapshots (pooled
	// across the harness run), keyed by lock name.
	Lockstat map[string]lockstat.Snapshot `json:"lockstat,omitempty"`
}

// NewResult constructs an empty result for the named harness with the
// environment captured now.
func NewResult(harnessName, track string, seed uint64) *Result {
	return &Result{
		Schema:  SchemaVersion,
		Harness: harnessName,
		Track:   track,
		Config:  map[string]string{},
		Env:     CaptureEnv(seed),
	}
}

// CellFromMeasurement renders one engine measurement as a schema cell.
func CellFromMeasurement(lock, workload, unit string, m Measurement) Cell {
	sum := Summarize(m.Scores)
	med := m.MedianOutcome()
	c := Cell{
		Lock:      lock,
		Workload:  workload,
		Threads:   m.Threads,
		Unit:      unit,
		Score:     m.Median,
		Runs:      append([]float64(nil), m.Scores...),
		Summary:   &sum,
		Jain:      Finite(m.Jain()),
		Disparity: Finite(m.Disparity()),
		PerWorker: append([]uint64(nil), med.PerWorker...),
		ElapsedNS: med.Elapsed.Nanoseconds(),
		Extras:    med.Extras,
	}
	// encoding/json rejects non-finite values outright; an unbounded
	// disparity (a worker starved to zero ops) is real signal, so it
	// is preserved as a note rather than crashing the encoder.
	if math.IsInf(m.Disparity(), 1) {
		c.Notes = map[string]string{"disparity": "+Inf (a worker completed zero operations)"}
	}
	return c
}

// Finite maps NaN/±Inf to 0 so cells always encode; encoding/json
// refuses non-finite floats. Callers preserve the lost signal in
// Cell.Notes when it matters.
func Finite(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// Add appends a cell.
func (r *Result) Add(c Cell) { r.Cells = append(r.Cells, c) }

// SetConfig records one configuration key (duration, mode, keys, ...)
// for provenance.
func (r *Result) SetConfig(k, v string) {
	if r.Config == nil {
		r.Config = map[string]string{}
	}
	r.Config[k] = v
}

// WriteJSON encodes r as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes r to path (creating parent-less files 0644).
func (r *Result) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Decode parses one Result, enforcing the schema version: a missing or
// mismatched version is an error, never a silent misparse.
func Decode(r io.Reader) (*Result, error) {
	var res Result
	dec := json.NewDecoder(r)
	if err := dec.Decode(&res); err != nil {
		return nil, fmt.Errorf("harness: decoding result: %w", err)
	}
	if res.Schema != SchemaVersion {
		return nil, fmt.Errorf("harness: result schema version %d, this binary expects %d (regenerate the file or use a matching binary)",
			res.Schema, SchemaVersion)
	}
	return &res, nil
}

// ReadFile loads and version-checks one result file.
func ReadFile(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}
