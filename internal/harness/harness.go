// Package harness is the shared benchmark engine behind every
// command-line harness in the repository (mutexbench, kvbench,
// atomicbench, fairness, scenarios) and behind the Track A figure
// reproductions in internal/experiments.
//
// Before this package existed each harness reimplemented its own
// warmup/measure loop, flag surface, and text-only reporting. The
// engine factors that into one place:
//
//   - Workload: what one benchmark does (per-run setup, a per-worker
//     operation closure, teardown).
//   - Measure: the phased driver — warmup, calibrated measurement,
//     cooldown — repeated Runs times with the median reported, exactly
//     the paper's §7 median-of-7 protocol. Per-worker operation
//     counters are sector-padded (internal/pad) so the measurement
//     infrastructure does not itself induce false sharing.
//   - Result: a versioned, machine-readable JSON schema (result.go)
//     embedding the internal/stats summaries and environment capture,
//     consumed by cmd/benchdiff as the repo's perf-regression gate.
//
// The fairness statistics of a measurement (per-worker operation
// vector, Jain index, disparity) are always taken from the
// median-defining run — the run whose score is the median (or nearest
// it, for even run counts) — never from whichever run happened to
// execute last. That rule was violated once (mutexbench, fixed in
// PR 3); the engine centralizes it and pins it with a regression test.
package harness

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pad"
	"repro/internal/stats"
)

// Workload is one benchmark kernel. The engine calls Setup once per
// run, asks for one operation closure per worker, drives the closures
// through the phase protocol, and calls Teardown after the run.
type Workload interface {
	// Setup prepares fresh state for one run (e.g. a new lock
	// instance, a freshly populated store).
	Setup(run RunInfo)
	// Worker returns the per-operation closure for worker id
	// (0-based). The closure is invoked repeatedly from a single
	// goroutine; per-worker private state (PRNGs, scratch) should be
	// captured in the closure at creation time.
	Worker(id int) func()
	// Teardown releases the run's state.
	Teardown()
}

// ExtraMetrics is optionally implemented by workloads that produce
// auxiliary per-run metrics beyond the operation count (e.g. kvstore
// read hits, writer ops). It is consulted after each run's Teardown,
// so metrics finalized by teardown (a background writer's tally) are
// complete.
type ExtraMetrics interface {
	Extras() map[string]float64
}

// RunInfo identifies one run of a measurement to the workload.
type RunInfo struct {
	Run     int    // run index, 0-based
	Threads int    // worker count for this run
	Seed    uint64 // per-run seed (Config.Seed + run index)
}

// Config shapes one measurement (all runs of one lock × workload ×
// thread-count cell).
type Config struct {
	Threads int
	// Duration bounds the measurement phase; if zero, Iterations per
	// worker bounds the run instead (deterministic, test-friendly).
	Duration time.Duration
	// Iterations is the exact per-worker operation count when
	// Duration is zero.
	Iterations int
	// Warmup runs the workload unmeasured before the measurement
	// interval begins (duration mode only; iteration mode is exact by
	// construction). Counters are snapshotted at the warmup/measure
	// boundary, so warmup work never pollutes the score.
	Warmup time.Duration
	// Cooldown sleeps between runs, letting background work (GC,
	// lingering unparks) drain before the next run starts.
	Cooldown time.Duration
	// Runs is the number of independent runs medianed (paper: 7).
	// Values below 1 are treated as 1.
	Runs int
	// Seed differentiates PRNG streams; run r sees Seed+r.
	Seed uint64
}

// RunOutcome is the raw outcome of one run.
type RunOutcome struct {
	Score     float64 // million operations per second
	PerWorker []uint64
	Elapsed   time.Duration
	Extras    map[string]float64
}

// Measurement aggregates the runs of one cell.
type Measurement struct {
	Threads int
	Outs    []RunOutcome
	Scores  []float64 // Outs[i].Score, in run order
	Median  float64
	// MedianRun indexes the median-defining run in Outs: the run
	// whose score is the median, or — for even run counts, where the
	// median averages the two middle scores — the run whose score is
	// nearest it (ties keep the earliest run).
	MedianRun int
}

// MedianOutcome returns the median-defining run's outcome. Fairness
// metrics (per-worker vectors, Jain, disparity) must derive from this
// run, never from the last run executed.
func (m Measurement) MedianOutcome() RunOutcome { return m.Outs[m.MedianRun] }

// Jain returns Jain's fairness index over the median-defining run's
// per-worker operation counts.
func (m Measurement) Jain() float64 {
	per := m.MedianOutcome().PerWorker
	xs := make([]float64, len(per))
	for i, v := range per {
		xs[i] = float64(v)
	}
	return stats.JainIndex(xs)
}

// Disparity returns the max/min per-worker operation ratio of the
// median-defining run.
func (m Measurement) Disparity() float64 {
	per := m.MedianOutcome().PerWorker
	counts := make([]int64, len(per))
	for i, v := range per {
		counts[i] = int64(v)
	}
	return stats.DisparityRatio(counts)
}

// MedianIndex returns the index of the score closest to med (exactly
// the median run for odd run counts; ties keep the earliest run).
func MedianIndex(scores []float64, med float64) int {
	best := 0
	for i, s := range scores {
		if abs(s-med) < abs(scores[best]-med) {
			best = i
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Measure drives w through cfg.Runs runs and aggregates them. It is
// the single run loop shared by every harness.
func Measure(w Workload, cfg Config) Measurement {
	runs := cfg.Runs
	if runs <= 0 {
		runs = 1
	}
	m := Measurement{Threads: cfg.Threads}
	for r := 0; r < runs; r++ {
		info := RunInfo{Run: r, Threads: cfg.Threads, Seed: cfg.Seed + uint64(r)}
		w.Setup(info)
		out := runOnce(w, cfg)
		w.Teardown()
		if x, ok := w.(ExtraMetrics); ok {
			out.Extras = x.Extras()
		}
		m.Outs = append(m.Outs, out)
		m.Scores = append(m.Scores, out.Score)
		if cfg.Cooldown > 0 && r != runs-1 {
			time.Sleep(cfg.Cooldown)
		}
	}
	m.Median = stats.Median(m.Scores)
	m.MedianRun = MedianIndex(m.Scores, m.Median)
	return m
}

// counter is a sector-padded per-worker operation counter: each
// worker's hot count lives on its own 128-byte sector so the
// measurement itself cannot induce false sharing between workers.
type counter struct {
	n atomic.Uint64
	_ [pad.SectorSize - 8]byte
}

// runOnce executes one warmup→measure→stop cycle (or an exact
// iteration-bounded run) and returns the raw outcome.
func runOnce(w Workload, cfg Config) RunOutcome {
	threads := cfg.Threads
	if threads <= 0 {
		threads = 1
	}
	counters := make([]counter, threads)
	var stop atomic.Bool

	var begin, done sync.WaitGroup
	begin.Add(1)
	for t := 0; t < threads; t++ {
		t := t
		op := w.Worker(t)
		done.Add(1)
		go func() {
			defer done.Done()
			c := &counters[t]
			begin.Wait()
			if cfg.Duration <= 0 {
				// Deterministic iteration mode: exactly Iterations
				// operations per worker.
				n := cfg.Iterations
				for i := 0; i < n; i++ {
					op()
				}
				c.n.Store(uint64(n))
				return
			}
			for !stop.Load() {
				op()
				// Monotonic per-worker count; the driver snapshots
				// the counters at the measurement boundaries, so
				// warmup operations are excluded by subtraction.
				c.n.Add(1)
			}
		}()
	}

	snapshot := func() []uint64 {
		s := make([]uint64, threads)
		for i := range counters {
			s[i] = counters[i].n.Load()
		}
		return s
	}

	var base []uint64
	start := time.Now()
	begin.Done()
	if cfg.Duration > 0 {
		if cfg.Warmup > 0 {
			time.Sleep(cfg.Warmup)
		}
		base = snapshot()
		start = time.Now()
		time.Sleep(cfg.Duration)
	}
	// In iteration mode workers terminate on their own; in duration
	// mode the elapsed interval ends where the final snapshot is
	// taken, immediately before workers are released.
	var el time.Duration
	var per []uint64
	if cfg.Duration > 0 {
		per = snapshot()
		el = time.Since(start)
		stop.Store(true)
		done.Wait()
		for i := range per {
			per[i] -= base[i]
		}
	} else {
		done.Wait()
		el = time.Since(start)
		per = snapshot()
	}

	var total uint64
	for _, v := range per {
		total += v
	}
	score := 0.0
	if s := el.Seconds(); s > 0 {
		score = float64(total) / s / 1e6
	}
	return RunOutcome{Score: score, PerWorker: per, Elapsed: el}
}

// WorkloadFunc adapts a stateless operation factory into a Workload:
// setup constructs per-run shared state, worker returns the per-worker
// closure. Either hook may be nil.
type WorkloadFunc struct {
	SetupFn    func(run RunInfo)
	WorkerFn   func(id int) func()
	TeardownFn func()
	ExtrasFn   func() map[string]float64
}

// Setup implements Workload.
func (f *WorkloadFunc) Setup(run RunInfo) {
	if f.SetupFn != nil {
		f.SetupFn(run)
	}
}

// Worker implements Workload.
func (f *WorkloadFunc) Worker(id int) func() { return f.WorkerFn(id) }

// Teardown implements Workload.
func (f *WorkloadFunc) Teardown() {
	if f.TeardownFn != nil {
		f.TeardownFn()
	}
}

// Extras implements ExtraMetrics.
func (f *WorkloadFunc) Extras() map[string]float64 {
	if f.ExtrasFn != nil {
		return f.ExtrasFn()
	}
	return nil
}
