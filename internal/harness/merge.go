package harness

import (
	"fmt"

	"repro/internal/lockstat"
)

// Merge combines several harness invocations' results into one file
// published under a new harness name — the way a committed baseline
// covers more than one benchmark command (e.g. a mutexbench sweep plus
// a sharded kvbench sweep) while staying a single schema-versioned
// unit for cmd/benchdiff, whose comparator refuses cross-harness
// diffs precisely so that only deliberately merged files span
// harnesses.
//
// Rules: every input must share one track (comparability is
// per-track); cell keys must be globally unique after merging, so an
// accidental double-include of the same sweep fails loudly instead of
// silently shadowing cells; per-source config and lockstat entries
// are preserved under "<harness>."-prefixed keys. The first input's
// environment is kept — merging is for files produced back-to-back on
// one host, and the per-source envs would disagree only in ways the
// diff's env warnings should have caught upstream.
func Merge(name string, rs ...*Result) (*Result, error) {
	if name == "" {
		return nil, fmt.Errorf("harness: merge needs a non-empty merged harness name")
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("harness: nothing to merge")
	}
	merged := &Result{
		Schema:  SchemaVersion,
		Harness: name,
		Track:   rs[0].Track,
		Config:  map[string]string{},
		Env:     rs[0].Env,
	}
	seen := map[string]string{} // cell key → source harness
	for _, r := range rs {
		if r.Track != merged.Track {
			return nil, fmt.Errorf("harness: cannot merge track %q (%s) with track %q (%s)",
				merged.Track, rs[0].Harness, r.Track, r.Harness)
		}
		for k, v := range r.Config {
			merged.Config[r.Harness+"."+k] = v
		}
		for _, c := range r.Cells {
			if src, dup := seen[c.Key()]; dup {
				return nil, fmt.Errorf("harness: merge collision on cell %s (present in %s and %s)",
					c.Key(), src, r.Harness)
			}
			seen[c.Key()] = r.Harness
			merged.Add(c)
		}
		for lock, snap := range r.Lockstat {
			if merged.Lockstat == nil {
				merged.Lockstat = map[string]lockstat.Snapshot{}
			}
			merged.Lockstat[r.Harness+"."+lock] = snap
		}
	}
	return merged, nil
}
