package harness

import (
	"fmt"

	"repro/internal/table"
)

// MatrixTable renders a result's cells as the familiar lock × thread
// matrix (rows in first-seen lock order, columns in first-seen thread
// order) — the text twin of the JSON emission, so -json and the
// default table always agree because both read the same cells.
//
// Rows are keyed by lock name alone, so results whose cells span
// several workloads (e.g. a shard sweep) must use MatrixTableBy with a
// label that disambiguates, or later workloads silently overwrite
// earlier ones.
func MatrixTable(r *Result, title string) *table.Table {
	return MatrixTableBy(r, title, func(c Cell) string { return c.Lock })
}

// MatrixTableBy is MatrixTable with a caller-chosen row label: cells
// sharing a label share a row, columns are still thread counts.
func MatrixTableBy(r *Result, title string, rowLabel func(Cell) string) *table.Table {
	var locks []string
	var threads []int
	seenLock := map[string]bool{}
	seenT := map[int]bool{}
	score := map[string]float64{}
	for _, c := range r.Cells {
		label := rowLabel(c)
		if !seenLock[label] {
			seenLock[label] = true
			locks = append(locks, label)
		}
		if !seenT[c.Threads] {
			seenT[c.Threads] = true
			threads = append(threads, c.Threads)
		}
		score[fmt.Sprintf("%s|%d", label, c.Threads)] = c.Score
	}
	headers := []string{"Lock"}
	for _, tc := range threads {
		headers = append(headers, fmt.Sprintf("T=%d", tc))
	}
	t := table.New(title, headers...)
	for _, l := range locks {
		row := []string{l}
		for _, tc := range threads {
			if v, ok := score[fmt.Sprintf("%s|%d", l, tc)]; ok {
				row = append(row, table.F(v, 3))
			} else {
				row = append(row, "-")
			}
		}
		t.Add(row...)
	}
	return t
}
