package harness

import (
	"flag"
	"io"
	"reflect"
	"testing"
	"time"
)

func TestParseThreads(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"1,2,4", []int{1, 2, 4}, false},
		{" 1 , 2 ", []int{1, 2}, false},
		{"8", []int{8}, false},
		{"", nil, true},
		{"  ", nil, true},
		{"0", nil, true},
		{"-3", nil, true},
		{"two", nil, true},
		{"1,,2", nil, true},
		{"1,2,x", nil, true},
	}
	for _, c := range cases {
		got, err := ParseThreads(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseThreads(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseThreads(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Table test over the shared flag surface: defaults apply, every
// shared flag parses, and suppressed flags are not registered.
func TestRegisterFlagTable(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		args []string
		want Flags
	}{
		{
			name: "defaults",
			spec: Spec{Duration: 300 * time.Millisecond, Runs: 3, Threads: "1,2", Seed: 1},
			args: nil,
			want: Flags{Duration: 300 * time.Millisecond, Runs: 3, Threads: "1,2", Seed: 1},
		},
		{
			name: "all overridden",
			spec: Spec{Duration: 300 * time.Millisecond, Runs: 3, Threads: "1,2", Seed: 1},
			args: []string{"-duration=50ms", "-warmup=10ms", "-runs=7", "-threads=4,8", "-seed=42", "-json", "-csv", "-out=x.json"},
			want: Flags{Duration: 50 * time.Millisecond, Warmup: 10 * time.Millisecond, Runs: 7,
				Threads: "4,8", Seed: 42, JSON: true, CSV: true, Out: "x.json"},
		},
		{
			name: "json only surface",
			spec: Spec{NoDuration: true, NoRuns: true, NoThreads: true, NoSeed: true},
			args: []string{"-json"},
			want: Flags{JSON: true},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fs := flag.NewFlagSet(c.name, flag.ContinueOnError)
			fs.SetOutput(io.Discard)
			f := Register(fs, c.spec)
			if err := fs.Parse(c.args); err != nil {
				t.Fatalf("parse: %v", err)
			}
			if *f != c.want {
				t.Fatalf("flags = %+v, want %+v", *f, c.want)
			}
		})
	}
}

func TestRegisterSuppressesFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	Register(fs, Spec{NoDuration: true, NoRuns: true, NoThreads: true, NoSeed: true})
	for _, name := range []string{"duration", "warmup", "runs", "threads", "seed"} {
		if fs.Lookup(name) != nil {
			t.Errorf("suppressed flag -%s still registered", name)
		}
	}
	for _, name := range []string{"json", "out", "csv"} {
		if fs.Lookup(name) == nil {
			t.Errorf("always-on flag -%s missing", name)
		}
	}
}

func TestThreadCounts(t *testing.T) {
	f := &Flags{Threads: "2,4"}
	got, err := f.ThreadCounts()
	if err != nil || !reflect.DeepEqual(got, []int{2, 4}) {
		t.Fatalf("ThreadCounts = %v, %v", got, err)
	}
}
