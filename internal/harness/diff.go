package harness

import (
	"fmt"
	"sort"

	"repro/internal/table"
)

// DiffOptions tune the regression comparator.
type DiffOptions struct {
	// Threshold is the minimum relative change flagged, e.g. 0.10
	// flags a >10% score drop as a regression (and a >10% gain as an
	// improvement).
	Threshold float64
	// NoiseMult widens the per-cell threshold by the measured run
	// noise: the effective threshold is
	//
	//	max(Threshold, NoiseMult × max(cv_old, cv_new))
	//
	// where cv is a cell's coefficient of variation (stddev/median of
	// its runs). A cell whose own runs scatter by 8% cannot honestly
	// flag a 10% delta at NoiseMult 2; the comparator widens instead
	// of crying wolf.
	NoiseMult float64
}

// DefaultDiffOptions matches the Makefile gate: 12% floor, 3× noise.
func DefaultDiffOptions() DiffOptions { return DiffOptions{Threshold: 0.12, NoiseMult: 3} }

// Delta is one cell's old→new comparison.
type Delta struct {
	Key         string
	Old, New    float64
	Rel         float64 // (New-Old)/Old
	Threshold   float64 // effective, after noise widening
	Regression  bool
	Improvement bool
}

// Report is the outcome of comparing two result files.
type Report struct {
	OldHarness, NewHarness string
	Deltas                 []Delta
	// MissingInNew / AddedInNew list cell keys present on only one
	// side; coverage loss is reported, not silently dropped.
	MissingInNew []string
	AddedInNew   []string
	// EnvWarnings flag environment differences (GOMAXPROCS, CPU
	// count, Go version, chaos arming) that make the comparison
	// suspect.
	EnvWarnings []string
}

// Regressions counts flagged regressions.
func (r *Report) Regressions() int {
	n := 0
	for _, d := range r.Deltas {
		if d.Regression {
			n++
		}
	}
	return n
}

// Improvements counts flagged improvements.
func (r *Report) Improvements() int {
	n := 0
	for _, d := range r.Deltas {
		if d.Improvement {
			n++
		}
	}
	return n
}

// cv returns a cell's coefficient of variation, 0 when unknowable.
func cv(c Cell) float64 {
	if c.Summary == nil || c.Summary.Median <= 0 {
		return 0
	}
	return c.Summary.StdDev / c.Summary.Median
}

// Diff compares two results cell-by-cell (keyed on
// workload|lock|threads). It refuses cross-harness and cross-track
// comparisons — those are different experiments, not a trajectory.
func Diff(oldR, newR *Result, opt DiffOptions) (*Report, error) {
	if oldR.Harness != newR.Harness {
		return nil, fmt.Errorf("harness mismatch: %q vs %q", oldR.Harness, newR.Harness)
	}
	if oldR.Track != newR.Track {
		return nil, fmt.Errorf("track mismatch: %q vs %q", oldR.Track, newR.Track)
	}
	if opt.Threshold <= 0 {
		opt.Threshold = DefaultDiffOptions().Threshold
	}
	if opt.NoiseMult <= 0 {
		opt.NoiseMult = DefaultDiffOptions().NoiseMult
	}
	rep := &Report{OldHarness: oldR.Harness, NewHarness: newR.Harness}
	rep.EnvWarnings = envWarnings(oldR.Env, newR.Env)

	oldCells := map[string]Cell{}
	for _, c := range oldR.Cells {
		oldCells[c.Key()] = c
	}
	seen := map[string]bool{}
	for _, nc := range newR.Cells {
		key := nc.Key()
		seen[key] = true
		oc, ok := oldCells[key]
		if !ok {
			rep.AddedInNew = append(rep.AddedInNew, key)
			continue
		}
		d := Delta{Key: key, Old: oc.Score, New: nc.Score}
		d.Threshold = opt.Threshold
		if noise := opt.NoiseMult * maxF(cv(oc), cv(nc)); noise > d.Threshold {
			d.Threshold = noise
		}
		if oc.Score > 0 {
			d.Rel = (nc.Score - oc.Score) / oc.Score
			d.Regression = d.Rel < -d.Threshold
			d.Improvement = d.Rel > d.Threshold
		} else if nc.Score > 0 {
			// A cell resurrected from zero is an improvement by fiat.
			d.Improvement = true
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	for key := range oldCells {
		if !seen[key] {
			rep.MissingInNew = append(rep.MissingInNew, key)
		}
	}
	sort.Strings(rep.MissingInNew)
	sort.Strings(rep.AddedInNew)
	return rep, nil
}

func envWarnings(a, b Env) []string {
	var w []string
	if a.GOMAXPROCS != b.GOMAXPROCS {
		w = append(w, fmt.Sprintf("GOMAXPROCS %d vs %d", a.GOMAXPROCS, b.GOMAXPROCS))
	}
	if a.NumCPU != b.NumCPU {
		w = append(w, fmt.Sprintf("NumCPU %d vs %d", a.NumCPU, b.NumCPU))
	}
	if a.GoVersion != b.GoVersion {
		w = append(w, fmt.Sprintf("Go version %s vs %s", a.GoVersion, b.GoVersion))
	}
	if a.Chaos != b.Chaos {
		w = append(w, fmt.Sprintf("chaos arming %v vs %v — chaotic and clean results are never comparable", a.Chaos, b.Chaos))
	}
	return w
}

// Table renders the comparison, worst regression first.
func (r *Report) Table(title string) *table.Table {
	t := table.New(title, "Cell", "Old", "New", "Δ%", "Gate%", "Verdict")
	deltas := append([]Delta(nil), r.Deltas...)
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Rel < deltas[j].Rel })
	for _, d := range deltas {
		verdict := "ok"
		if d.Regression {
			verdict = "REGRESSION"
		} else if d.Improvement {
			verdict = "improved"
		}
		t.Add(d.Key, table.F(d.Old, 3), table.F(d.New, 3),
			table.F(d.Rel*100, 1), table.F(d.Threshold*100, 1), verdict)
	}
	return t
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
