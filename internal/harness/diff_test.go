package harness

import (
	"strings"
	"testing"
)

func baseline() *Result {
	r := NewResult("mutexbench", "A", 1)
	sumTight := Summarize([]float64{1.98, 2.0, 2.02}) // cv ≈ 1%
	r.Add(Cell{Lock: "Recipro", Workload: "max", Threads: 4, Unit: "Mops/s",
		Score: 2.0, Runs: []float64{1.98, 2.0, 2.02}, Summary: &sumTight})
	sumNoisy := Summarize([]float64{0.7, 1.0, 1.3}) // cv ≈ 30%
	r.Add(Cell{Lock: "TKT", Workload: "max", Threads: 4, Unit: "Mops/s",
		Score: 1.0, Runs: []float64{0.7, 1.0, 1.3}, Summary: &sumNoisy})
	return r
}

func clone(r *Result) *Result {
	c := *r
	c.Cells = append([]Cell(nil), r.Cells...)
	return &c
}

// Self-diff must never flag anything — the benchdiff -check smoke.
func TestSelfDiffClean(t *testing.T) {
	r := baseline()
	rep, err := Diff(r, r, DefaultDiffOptions())
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if rep.Regressions() != 0 || rep.Improvements() != 0 {
		t.Fatalf("self-diff flagged: %+v", rep.Deltas)
	}
	if len(rep.MissingInNew) != 0 || len(rep.AddedInNew) != 0 {
		t.Fatalf("self-diff coverage drift: %+v", rep)
	}
}

// An injected synthetic regression (50% drop on a tight cell) must be
// flagged.
func TestInjectedRegressionFlagged(t *testing.T) {
	oldR := baseline()
	newR := clone(oldR)
	newR.Cells[0].Score = 1.0 // Recipro: 2.0 → 1.0
	rep, err := Diff(oldR, newR, DefaultDiffOptions())
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if rep.Regressions() != 1 {
		t.Fatalf("regressions = %d, want 1: %+v", rep.Regressions(), rep.Deltas)
	}
	var d Delta
	for _, x := range rep.Deltas {
		if x.Regression {
			d = x
		}
	}
	if !strings.Contains(d.Key, "Recipro") || d.Rel > -0.49 {
		t.Fatalf("wrong delta flagged: %+v", d)
	}
}

// A drop inside a noisy cell's own run scatter must NOT be flagged:
// the noise widening (3 × 30% cv) swallows a 20% delta that the flat
// 12% floor would have flagged.
func TestNoiseWideningSuppressesNoisyCell(t *testing.T) {
	oldR := baseline()
	newR := clone(oldR)
	newR.Cells[1].Score = 0.8 // TKT: 1.0 → 0.8, −20%, cv 30%
	rep, err := Diff(oldR, newR, DefaultDiffOptions())
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if rep.Regressions() != 0 {
		t.Fatalf("noisy within-scatter delta flagged: %+v", rep.Deltas)
	}
	// The same −20% on the tight cell IS a regression.
	newR2 := clone(oldR)
	newR2.Cells[0].Score = 1.6
	rep2, _ := Diff(oldR, newR2, DefaultDiffOptions())
	if rep2.Regressions() != 1 {
		t.Fatalf("tight-cell −20%% not flagged: %+v", rep2.Deltas)
	}
}

func TestImprovementFlagged(t *testing.T) {
	oldR := baseline()
	newR := clone(oldR)
	newR.Cells[0].Score = 3.0
	rep, _ := Diff(oldR, newR, DefaultDiffOptions())
	if rep.Improvements() != 1 || rep.Regressions() != 0 {
		t.Fatalf("report: %+v", rep.Deltas)
	}
}

func TestCoverageDriftReported(t *testing.T) {
	oldR := baseline()
	newR := clone(oldR)
	newR.Cells = newR.Cells[:1]
	newR.Add(Cell{Lock: "MCS", Workload: "max", Threads: 4, Unit: "Mops/s", Score: 1})
	rep, err := Diff(oldR, newR, DefaultDiffOptions())
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if len(rep.MissingInNew) != 1 || !strings.Contains(rep.MissingInNew[0], "TKT") {
		t.Fatalf("missing = %v", rep.MissingInNew)
	}
	if len(rep.AddedInNew) != 1 || !strings.Contains(rep.AddedInNew[0], "MCS") {
		t.Fatalf("added = %v", rep.AddedInNew)
	}
}

func TestCrossHarnessRefused(t *testing.T) {
	a := baseline()
	b := clone(a)
	b.Harness = "kvbench"
	if _, err := Diff(a, b, DefaultDiffOptions()); err == nil {
		t.Fatal("cross-harness diff accepted")
	}
	c := clone(a)
	c.Track = "B"
	if _, err := Diff(a, c, DefaultDiffOptions()); err == nil {
		t.Fatal("cross-track diff accepted")
	}
}

func TestEnvWarnings(t *testing.T) {
	a := baseline()
	b := clone(a)
	b.Env.GOMAXPROCS = a.Env.GOMAXPROCS + 1
	b.Env.Chaos = true
	rep, err := Diff(a, b, DefaultDiffOptions())
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if len(rep.EnvWarnings) < 2 {
		t.Fatalf("env warnings = %v", rep.EnvWarnings)
	}
}

func TestReportTable(t *testing.T) {
	oldR := baseline()
	newR := clone(oldR)
	newR.Cells[0].Score = 1.0
	rep, _ := Diff(oldR, newR, DefaultDiffOptions())
	s := rep.Table("diff").String()
	if !strings.Contains(s, "REGRESSION") || !strings.Contains(s, "Recipro") {
		t.Fatalf("table:\n%s", s)
	}
}
