package harness

import (
	"strings"
	"testing"
)

func TestMergeCombinesDisjointResults(t *testing.T) {
	a := sampleResult() // mutexbench: max|Recipro|T=4, max|TKT|T=4
	b := NewResult("kvbench", "A", 9)
	b.SetConfig("mode", "readrandom")
	b.Add(Cell{Lock: "Recipro", Workload: "readrandom/s4", Threads: 4, Unit: "Mops/s", Score: 3})

	m, err := Merge("suite", a, b)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if m.Harness != "suite" || m.Track != "A" || m.Schema != SchemaVersion {
		t.Fatalf("merged identity: %+v", m)
	}
	if len(m.Cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(m.Cells))
	}
	// Per-source config survives under prefixed keys.
	if m.Config["mutexbench.mode"] != "max" || m.Config["kvbench.mode"] != "readrandom" {
		t.Fatalf("config provenance lost: %v", m.Config)
	}
	// The merged file must self-diff clean like any other result.
	if _, err := Diff(m, m, DefaultDiffOptions()); err != nil {
		t.Fatalf("merged result does not self-diff: %v", err)
	}
}

func TestMergeRejectsCollisionsAndMismatches(t *testing.T) {
	a := sampleResult()
	if _, err := Merge("suite", a, sampleResult()); err == nil || !strings.Contains(err.Error(), "collision") {
		t.Fatalf("duplicate cells accepted: %v", err)
	}

	bTrack := NewResult("simbench", "B", 9)
	bTrack.Add(Cell{Lock: "MCS", Workload: "sim", Threads: 2, Unit: "Mops/s", Score: 1})
	if _, err := Merge("suite", a, bTrack); err == nil || !strings.Contains(err.Error(), "track") {
		t.Fatalf("cross-track merge accepted: %v", err)
	}

	if _, err := Merge("suite"); err == nil {
		t.Fatal("empty merge accepted")
	}
	if _, err := Merge("", a); err == nil {
		t.Fatal("empty merged name accepted")
	}
}
