package harness

import (
	"bytes"
	"strings"
	"testing"
)

func sampleResult() *Result {
	r := NewResult("mutexbench", "A", 9)
	r.SetConfig("mode", "max")
	sum := Summarize([]float64{1, 2, 3})
	r.Add(Cell{
		Lock: "Recipro", Workload: "max", Threads: 4, Unit: "Mops/s",
		Score: 2, Runs: []float64{1, 2, 3}, Summary: &sum,
		Jain: 0.97, Disparity: 1.4, PerWorker: []uint64{10, 11, 9, 10},
		Extras: map[string]float64{"hits": 5},
	})
	r.Add(Cell{Lock: "TKT", Workload: "max", Threads: 4, Unit: "Mops/s", Score: 1.5})
	return r
}

// The shared round-trip test: what every harness emits must decode
// back identically through the version-checked decoder.
func TestResultRoundTrip(t *testing.T) {
	r := sampleResult()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Schema != SchemaVersion || got.Harness != "mutexbench" || got.Track != "A" {
		t.Fatalf("identity fields lost: %+v", got)
	}
	if got.Config["mode"] != "max" {
		t.Fatalf("config lost: %v", got.Config)
	}
	if len(got.Cells) != 2 {
		t.Fatalf("cells = %d", len(got.Cells))
	}
	c := got.Cells[0]
	if c.Lock != "Recipro" || c.Score != 2 || c.Summary == nil || c.Summary.Median != 2 {
		t.Fatalf("cell lost fields: %+v", c)
	}
	if c.Extras["hits"] != 5 || len(c.PerWorker) != 4 || len(c.Runs) != 3 {
		t.Fatalf("cell payload lost: %+v", c)
	}
	if got.Env.GOMAXPROCS <= 0 || got.Env.GoVersion == "" || got.Env.Seed != 9 {
		t.Fatalf("env lost: %+v", got.Env)
	}
}

// Future (or past) schema versions must fail loudly at decode time,
// never silently misparse.
func TestDecodeRejectsWrongSchemaVersion(t *testing.T) {
	cases := []string{
		`{"schema": 2, "harness": "mutexbench", "env": {}, "cells": []}`,
		`{"schema": 0, "harness": "mutexbench", "env": {}, "cells": []}`,
		`{"harness": "mutexbench", "env": {}, "cells": []}`, // missing version
	}
	for i, in := range cases {
		_, err := Decode(strings.NewReader(in))
		if err == nil {
			t.Fatalf("case %d: wrong-version document decoded without error", i)
		}
		if !strings.Contains(err.Error(), "schema version") {
			t.Fatalf("case %d: unhelpful error %v", i, err)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestReadWriteFile(t *testing.T) {
	path := t.TempDir() + "/r.json"
	r := sampleResult()
	if err := r.WriteFile(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got.Cells) != 2 {
		t.Fatalf("cells = %d", len(got.Cells))
	}
}

func TestCellKey(t *testing.T) {
	c := Cell{Lock: "MCS", Workload: "readrandom", Threads: 8}
	if c.Key() != "readrandom|MCS|T=8" {
		t.Fatalf("key = %q", c.Key())
	}
}

func TestMatrixTable(t *testing.T) {
	r := sampleResult()
	r.Add(Cell{Lock: "Recipro", Workload: "max", Threads: 8, Unit: "Mops/s", Score: 3.25})
	tab := MatrixTable(r, "title")
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	s := tab.String()
	for _, want := range []string{"T=4", "T=8", "Recipro", "TKT", "3.250"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
	// TKT has no T=8 cell: rendered as a hole, not dropped.
	if !strings.Contains(s, "-") {
		t.Fatalf("missing-cell hole not rendered:\n%s", s)
	}
}
