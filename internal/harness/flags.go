package harness

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Flags is the flag surface shared by the benchmark commands. Before
// this helper each command re-declared -seed/-duration/-threads/-runs
// with drifting defaults and usage strings (and kvbench's
// readwhilewriting mode silently ignored -runs); registering them in
// one place keeps the surface identical everywhere, parallel to
// registry.LocksFlag for -locks.
type Flags struct {
	Duration time.Duration
	Warmup   time.Duration
	Runs     int
	Seed     uint64
	Threads  string
	JSON     bool
	Out      string
	CSV      bool
}

// Spec parameterizes Register: defaults for each shared flag, plus
// suppressors for commands where a flag is meaningless (scenarios has
// no -threads; fairness experiments fix their own thread counts).
type Spec struct {
	Duration time.Duration
	Runs     int
	Threads  string
	Seed     uint64

	NoDuration, NoRuns, NoThreads, NoSeed bool
}

// Register declares the shared flags on fs and returns the bound
// value set. -json and -out are always registered: every harness
// command emits the versioned Result schema.
func Register(fs *flag.FlagSet, s Spec) *Flags {
	f := &Flags{}
	if !s.NoDuration {
		fs.DurationVar(&f.Duration, "duration", s.Duration, "measurement interval per configuration")
		fs.DurationVar(&f.Warmup, "warmup", 0, "unmeasured warmup before each measurement interval")
	}
	if !s.NoRuns {
		fs.IntVar(&f.Runs, "runs", s.Runs, "independent runs per configuration (median reported)")
	}
	if !s.NoThreads {
		fs.StringVar(&f.Threads, "threads", s.Threads, "comma-separated worker (goroutine) counts")
	}
	if !s.NoSeed {
		fs.Uint64Var(&f.Seed, "seed", s.Seed, "top-level seed (PRNG streams, chaos injection)")
	}
	fs.BoolVar(&f.JSON, "json", false, "emit the versioned harness Result JSON instead of text tables")
	fs.StringVar(&f.Out, "out", "", "write the report to this file instead of stdout")
	fs.BoolVar(&f.CSV, "csv", false, "emit CSV instead of an aligned text table")
	return f
}

// ThreadCounts parses the -threads spec.
func (f *Flags) ThreadCounts() ([]int, error) { return ParseThreads(f.Threads) }

// ParseThreads parses a comma-separated list of positive worker
// counts ("1,2,4"). Whitespace around items is tolerated; empty
// specs, non-integers, and non-positive counts are errors.
func ParseThreads(spec string) ([]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("empty thread list")
	}
	var out []int
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// OutputFile resolves -out: stdout when empty, else the created file.
// The returned close func is a no-op for stdout.
func (f *Flags) OutputFile() (*os.File, func() error, error) {
	if f.Out == "" {
		return os.Stdout, func() error { return nil }, nil
	}
	file, err := os.Create(f.Out)
	if err != nil {
		return nil, nil, err
	}
	return file, file.Close, nil
}
