package rwlock

import (
	"sync"
	"sync/atomic"

	"repro/internal/backoff"
	"repro/internal/clock"
	"repro/internal/waiter"
)

// OCC is the optimistic-then-fallback combinator, the software analogue
// of hardware-transactional lock elision: a read section first runs a
// bounded number of seqlock-optimistic attempts (no acquisition, stamp
// validation), and if conflicts persist it falls back to acquiring the
// wrapped lock for a guaranteed-consistent read. Read latency is
// therefore bounded by the wrapped lock's acquisition latency even
// under a continuous writer storm — the property the conformance
// suite's chaos conflict-storm check pins down.
//
// Writers behave exactly as under Seqlock: wrapped lock plus an
// even/odd stamp so optimistic readers can detect them.
type OCC struct {
	w   tryLocker
	seq atomic.Uint64
	// retries / fallbacks count conflict-path events only; the
	// optimistic fast path writes no shared memory.
	retries   atomic.Uint64
	fallbacks atomic.Uint64
	// clk paces conflict-path retry sleeps (nil = wall clock).
	clk clock.Clock
}

// occMaxAttempts is the total optimistic budget (hot pauses, then
// jittered sleeps) an OCC read spends before taking the real lock.
const occMaxAttempts = optHotRetries + 4

// NewOCC wraps base (which must expose TryLock) in the
// optimistic-then-fallback combinator.
func NewOCC(base sync.Locker) *OCC {
	return &OCC{w: requireTry(base, "OCC")}
}

// SetClock injects the time source, forwarding to the base lock when it
// accepts one, so registry.WithClock reaches both layers.
func (l *OCC) SetClock(c clock.Clock) {
	l.clk = c
	if cl, ok := l.w.(clock.Clocked); ok {
		cl.SetClock(c)
	}
}

// Lock enters a write section: the wrapped lock, then stamp → odd.
func (l *OCC) Lock() {
	l.w.Lock()
	l.seq.Add(1)
}

// Unlock exits a write section: stamp → even, then the wrapped lock.
func (l *OCC) Unlock() {
	l.seq.Add(1)
	l.w.Unlock()
}

// TryLock attempts a write section without blocking.
func (l *OCC) TryLock() bool {
	if !l.w.TryLock() {
		return false
	}
	l.seq.Add(1)
	return true
}

// ReadBegin samples the version stamp (odd ⇒ writer in flight).
func (l *OCC) ReadBegin() uint64 { return l.seq.Load() }

// ReadValidate reports whether a read section begun at s ran
// unconflicted.
func (l *OCC) ReadValidate(s uint64) bool {
	return s&1 == 0 && l.seq.Load() == s
}

// OptimisticRead runs f optimistically up to occMaxAttempts times —
// hot waiter pauses first, then decorrelated-jitter sleeps — and on
// sustained conflict acquires the wrapped lock and runs f once under
// real exclusion. The fallback read does not bump the stamp (it
// mutates nothing), so concurrent optimistic readers still validate.
func (l *OCC) OptimisticRead(f func()) {
	s := l.seq.Load()
	if s&1 == 0 {
		f()
		if l.seq.Load() == s {
			return
		}
	}
	l.optimisticSlow(f)
}

func (l *OCC) optimisticSlow(f func()) {
	w := waiter.NewClocked(waiter.Default, l.clk)
	var bo *backoff.Backoff
	for attempt := 1; attempt < occMaxAttempts; attempt++ {
		l.retries.Add(1)
		if attempt <= optHotRetries {
			w.Pause()
		} else {
			if bo == nil {
				bo = backoff.New(readRetryPolicy, retrySeq.Add(1))
			}
			clock.Or(l.clk).Sleep(bo.Next())
		}
		s := l.seq.Load()
		if s&1 != 0 {
			continue
		}
		f()
		if l.seq.Load() == s {
			return
		}
	}
	l.fallbacks.Add(1)
	l.w.Lock()
	f()
	l.w.Unlock()
}

// Retries reports cumulative failed optimistic attempts.
func (l *OCC) Retries() uint64 { return l.retries.Load() }

// Fallbacks reports how many reads gave up on optimism and took the
// wrapped lock.
func (l *OCC) Fallbacks() uint64 { return l.fallbacks.Load() }
