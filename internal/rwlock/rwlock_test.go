package rwlock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestRWConcurrentReadersAdmitted(t *testing.T) {
	l := NewRW(&sync.Mutex{})
	const readers = 4
	var inside atomic.Int64
	var peak atomic.Int64
	var release sync.WaitGroup
	release.Add(1)
	var done sync.WaitGroup
	for i := 0; i < readers; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			l.RLock()
			n := inside.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			release.Wait()
			inside.Add(-1)
			l.RUnlock()
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for inside.Load() != readers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d readers admitted concurrently", inside.Load(), readers)
		}
		time.Sleep(time.Millisecond)
	}
	release.Done()
	done.Wait()
	if peak.Load() != readers {
		t.Fatalf("peak concurrent readers = %d, want %d", peak.Load(), readers)
	}
	if l.Readers() != 0 {
		t.Fatalf("reader count %d after all released", l.Readers())
	}
}

func TestRWWriterExcludesReaders(t *testing.T) {
	l := NewRW(&sync.Mutex{})
	var x, y atomic.Uint64
	stop := make(chan struct{})
	var torn atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.RLock()
				a, b := x.Load(), y.Load()
				if a != b {
					torn.Add(1)
				}
				l.RUnlock()
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		l.Lock()
		x.Add(1)
		y.Add(1)
		l.Unlock()
	}
	close(stop)
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("readers observed %d torn states under writer exclusion", n)
	}
}

func TestRWWriterDrainsActiveReader(t *testing.T) {
	l := NewRW(&sync.Mutex{})
	l.RLock()
	acquired := make(chan struct{})
	go func() {
		l.Lock()
		close(acquired)
		l.Unlock()
	}()
	select {
	case <-acquired:
		t.Fatal("writer acquired while a reader was active")
	case <-time.After(20 * time.Millisecond):
	}
	l.RUnlock()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("writer never acquired after reader drained")
	}
}

func TestRWTryLock(t *testing.T) {
	l := NewRW(&sync.Mutex{})
	if !l.TryLock() {
		t.Fatal("TryLock failed on free lock")
	}
	l.Unlock()
	l.RLock()
	if l.TryLock() {
		t.Fatal("TryLock succeeded with an active reader")
	}
	l.RUnlock()
	if !l.TryLock() {
		t.Fatal("TryLock failed after reader released")
	}
	l.Unlock()
}

func TestRWRUnlockWithoutRLockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RUnlock of unheld RW did not panic")
		}
	}()
	NewRW(&sync.Mutex{}).RUnlock()
}

func TestRequireTryPanicsOnPlainLocker(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRW over a TryLock-less base did not panic")
		}
	}()
	// A Locker with no TryLock doorway.
	type bare struct{ sync.Locker }
	NewRW(bare{&sync.Mutex{}})
}

func TestSeqlockStampParity(t *testing.T) {
	l := NewSeqlock(&sync.Mutex{})
	if s := l.ReadBegin(); s != 0 || !l.ReadValidate(s) {
		t.Fatalf("fresh seqlock stamp %d should validate", s)
	}
	l.Lock()
	s := l.ReadBegin()
	if s&1 == 0 {
		t.Fatalf("stamp %d even inside write section", s)
	}
	if l.ReadValidate(s) {
		t.Fatal("odd begin stamp validated")
	}
	l.Unlock()
	s = l.ReadBegin()
	if s&1 != 0 || !l.ReadValidate(s) {
		t.Fatalf("stamp %d after unlock should be even and valid", s)
	}
}

func TestSeqlockReadValidateDetectsWriter(t *testing.T) {
	l := NewSeqlock(&sync.Mutex{})
	s := l.ReadBegin()
	l.Lock()
	l.Unlock()
	if l.ReadValidate(s) {
		t.Fatal("stale stamp validated across a write section")
	}
}

func TestSeqlockOptimisticReadNeverTorn(t *testing.T) {
	l := NewSeqlock(&sync.Mutex{})
	var x, y atomic.Uint64
	stop := make(chan struct{})
	var torn atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var a, b uint64
				l.OptimisticRead(func() {
					a, b = x.Load(), y.Load()
				})
				if a != b {
					torn.Add(1)
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		l.Lock()
		x.Add(1)
		y.Add(1)
		l.Unlock()
	}
	close(stop)
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d validated optimistic reads observed torn state", n)
	}
}

func TestOCCFallbackTerminatesUnderPersistentConflict(t *testing.T) {
	// Hold the stamp odd forever: every optimistic attempt must fail,
	// so OptimisticRead must exhaust its budget and take the wrapped
	// lock — which this test hands over once the fallback blocks on it.
	l := NewOCC(&sync.Mutex{})
	l.Lock() // stamp now odd, wrapped lock held
	ran := make(chan struct{})
	go func() {
		l.OptimisticRead(func() {})
		close(ran)
	}()
	// Wait for the reader to give up optimism and register a fallback.
	deadline := time.Now().Add(10 * time.Second)
	for l.Fallbacks() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("OCC read never fell back under persistent conflict")
		}
		time.Sleep(time.Millisecond)
	}
	l.Unlock()
	select {
	case <-ran:
	case <-time.After(10 * time.Second):
		t.Fatal("OCC fallback read never completed after writer released")
	}
	if l.Retries() < occMaxAttempts-1 {
		t.Fatalf("retries = %d, want full budget %d", l.Retries(), occMaxAttempts-1)
	}
}

// recordingClock wraps the wall clock but records (and elides) every
// Sleep — the injection point the combinators' escalated retry path
// sleeps through.
type recordingClock struct {
	clock.Clock
	mu     sync.Mutex
	delays []time.Duration
}

func (c *recordingClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.delays = append(c.delays, d)
	c.mu.Unlock()
}

func (c *recordingClock) recorded() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.delays...)
}

func TestOptimisticRetrySleepsDrawFromBackoffFloor(t *testing.T) {
	// Inject a recording clock and force a conflict storm long enough
	// to escalate past the hot retries; every recorded delay must obey
	// the decorrelated-jitter floor and cap.
	rc := &recordingClock{Clock: clock.Wall}

	l := NewSeqlock(&sync.Mutex{})
	l.SetClock(rc)
	l.seq.Store(1) // permanently odd: every attempt conflicts
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			if len(rc.recorded()) >= 5 {
				l.seq.Store(2) // go even: next attempt validates
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	l.OptimisticRead(func() {})
	<-done

	delays := rc.recorded()
	if len(delays) == 0 {
		t.Fatal("conflict storm never escalated to the backoff floor")
	}
	if delays[0] != readRetryPolicy.Base {
		t.Fatalf("first escalated delay %v, want exactly the floor %v", delays[0], readRetryPolicy.Base)
	}
	for i, d := range delays {
		if d < readRetryPolicy.Base || d > readRetryPolicy.Cap {
			t.Fatalf("delay[%d] = %v outside [%v, %v]", i, d, readRetryPolicy.Base, readRetryPolicy.Cap)
		}
	}
}

func TestSeqlockOptimisticReadFastPathAllocFree(t *testing.T) {
	l := NewSeqlock(&sync.Mutex{})
	var x atomic.Uint64
	var sink uint64
	read := func() { sink = x.Load() }
	if n := testing.AllocsPerRun(2000, func() {
		l.OptimisticRead(read)
	}); n != 0 {
		t.Fatalf("seqlock optimistic read fast path allocates %.1f/op, want 0", n)
	}
	_ = sink
}

// Interface conformance pins: the combinators must satisfy the
// read-path contracts they are registered under.
var (
	_ RWLocker         = (*RW)(nil)
	_ OptimisticLocker = (*Seqlock)(nil)
	_ OptimisticLocker = (*OCC)(nil)
	_ RWLocker         = (*sync.RWMutex)(nil)
)
