package rwlock

import (
	"sync"
	"sync/atomic"

	"repro/internal/backoff"
	"repro/internal/clock"
	"repro/internal/waiter"
)

// Seqlock is the version-stamped optimistic-read combinator: writers
// take the wrapped catalog lock and bump the stamp to odd on entry and
// back to even on exit; readers acquire nothing, sample the stamp,
// read, and revalidate. A validated read is linearizable (it saw no
// concurrent writer); a failed validation means the section may have
// observed torn state and must be retried or discarded.
//
// The read fast path writes no shared memory at all — the property
// that makes seqlocks the canonical answer to reader-side coherence
// traffic — so under a read-mostly load the stamp line stays in
// shared state in every reader's cache and the wrapped lock is
// touched only by writers.
type Seqlock struct {
	w   tryLocker
	seq atomic.Uint64
	// retries counts optimistic attempts that failed validation —
	// conflict-path only, so the fast path stays write-free.
	retries atomic.Uint64
	// clk paces conflict-path retry sleeps (nil = wall clock).
	clk clock.Clock
}

// NewSeqlock wraps base (which must expose TryLock) in the
// version-stamped combinator.
func NewSeqlock(base sync.Locker) *Seqlock {
	return &Seqlock{w: requireTry(base, "Seqlock")}
}

// SetClock injects the time source, forwarding to the base lock when it
// accepts one, so registry.WithClock reaches both layers.
func (l *Seqlock) SetClock(c clock.Clock) {
	l.clk = c
	if cl, ok := l.w.(clock.Clocked); ok {
		cl.SetClock(c)
	}
}

// Lock enters a write section: the wrapped lock, then stamp → odd.
func (l *Seqlock) Lock() {
	l.w.Lock()
	l.seq.Add(1)
}

// Unlock exits a write section: stamp → even, then the wrapped lock.
func (l *Seqlock) Unlock() {
	l.seq.Add(1)
	l.w.Unlock()
}

// TryLock attempts a write section without blocking.
func (l *Seqlock) TryLock() bool {
	if !l.w.TryLock() {
		return false
	}
	l.seq.Add(1)
	return true
}

// ReadBegin samples the version stamp (odd ⇒ writer in flight).
func (l *Seqlock) ReadBegin() uint64 { return l.seq.Load() }

// ReadValidate reports whether a read section begun at s ran
// unconflicted: the begin stamp was even (no writer mid-section) and
// is still current (no writer since).
func (l *Seqlock) ReadValidate(s uint64) bool {
	return s&1 == 0 && l.seq.Load() == s
}

// OptimisticRead runs f until one execution validates. Conflicts are
// retried hot under the waiter pause policy for optHotRetries
// attempts, then on the decorrelated-jitter backoff floor — a writer
// storm degrades readers to bounded sleeping, never unbounded spin.
// When a begin stamp is odd the section is skipped entirely (it could
// not validate) and counts as a conflict.
func (l *Seqlock) OptimisticRead(f func()) {
	s := l.seq.Load()
	if s&1 == 0 {
		f()
		if l.seq.Load() == s {
			return
		}
	}
	l.optimisticSlow(f)
}

// optimisticSlow is the conflict path: waiter pauses, then jittered
// sleeps drawn from readRetryPolicy.
func (l *Seqlock) optimisticSlow(f func()) {
	w := waiter.NewClocked(waiter.Default, l.clk)
	var bo *backoff.Backoff
	for attempt := 1; ; attempt++ {
		l.retries.Add(1)
		if attempt <= optHotRetries {
			w.Pause()
		} else {
			if bo == nil {
				bo = backoff.New(readRetryPolicy, retrySeq.Add(1))
			}
			clock.Or(l.clk).Sleep(bo.Next())
		}
		s := l.seq.Load()
		if s&1 != 0 {
			continue
		}
		f()
		if l.seq.Load() == s {
			return
		}
	}
}

// Retries reports the cumulative count of optimistic attempts that
// failed validation (diagnostics and conformance).
func (l *Seqlock) Retries() uint64 { return l.retries.Load() }
