// Package rwlock generalizes the repository's lock abstraction to the
// read path: shared (reader/writer) and optimistic (seqlock/OCC)
// read-side protocols as generic combinators over any catalog lock.
//
// The paper's contention analysis — and the OCC-for-Go and
// coarse-grained-locking papers in PAPERS.md — all locate the real
// throughput win of read-mostly workloads in the same place: readers
// that do not serialize through the writer's lock word. This package
// supplies that capability as composition rather than as new lock
// algorithms: each combinator wraps an existing exclusive lock (which
// keeps supplying writer mutual exclusion, fairness, and waiting
// policy) and adds a read-side protocol around it.
//
//   - RW: a writer-preference reader/writer adapter — an atomic reader
//     count plus a writer-intent flag over the wrapped lock. Readers
//     share; a pending writer blocks new readers, drains active ones,
//     then runs exclusively.
//   - Seqlock: a version-stamped optimistic read path — writers bump
//     the stamp to odd on entry and even on exit; readers run without
//     writing any shared state and retry on stamp conflicts, with the
//     internal/backoff decorrelated-jitter floor bounding the retry
//     spin.
//   - OCC: optimistic-then-fallback in the HTM style — a bounded
//     number of seqlock-optimistic attempts, then the real lock, so
//     read latency is bounded even under a writer storm.
//
// Two interfaces export the read paths; the registry declares them as
// the capability bits CapReadShared and CapOptimisticRead, and the
// decorator pipeline (chaos veto → bounded → lockstat) preserves them
// structurally, so harnesses and stores discover read capability with
// one interface assertion on the built lock.
package rwlock

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/clock"
	"repro/internal/pad"
	"repro/internal/waiter"
)

// RWLocker is the shared-read contract: RLock admits any number of
// concurrent readers while excluding writers (Lock) entirely.
// Writers use the plain sync.Locker surface.
type RWLocker interface {
	sync.Locker
	RLock()
	RUnlock()
}

// OptimisticLocker is the optimistic-read contract. A read section
// runs without acquiring anything: ReadBegin samples the version
// stamp, the caller performs its reads, and ReadValidate reports
// whether the section ran unconflicted (stamp even and unchanged).
// On false the caller observed potentially torn state and must retry
// or fall back; OptimisticRead packages the full retry policy.
//
// Read sections must be side-effect-free on shared state and must
// tolerate inconsistent (torn) values until validation succeeds; to
// stay race-detector-clean they should read shared words with atomic
// loads (see internal/atomicstruct.SeqAtomic for the word-atomic
// pattern over whole structs).
type OptimisticLocker interface {
	sync.Locker
	// ReadBegin returns the current version stamp. An odd stamp means
	// a writer is mid-section; validation of that stamp always fails.
	ReadBegin() uint64
	// ReadValidate reports whether a read section that began at stamp
	// s observed no concurrent writer: s is even and still current.
	ReadValidate(s uint64) bool
	// OptimisticRead runs f until one execution validates, applying
	// the combinator's retry policy (bounded hot retries, then
	// decorrelated-jitter sleeps, then — for OCC — the real lock).
	OptimisticRead(f func())
}

// capProber lets decorators that expose read-path methods with an
// exclusive fallback (bounded.Polling, lockstat.Instrumented) report
// whether the path underneath them actually shares; IsReadShared and
// IsOptimistic prefer the probe over a bare interface assertion.
type capProber interface {
	ReadSharedCapable() bool
	OptimisticCapable() bool
}

// IsReadShared reports whether l's RLock path actually admits
// concurrent readers — as opposed to a decorator's exclusive-fallback
// RLock, which satisfies RWLocker structurally but serializes. Stores
// use this (together with the registry's CapReadShared claim) to
// decide whether routing reads through RLock buys anything.
func IsReadShared(l sync.Locker) bool {
	if p, ok := l.(capProber); ok {
		return p.ReadSharedCapable()
	}
	_, ok := l.(RWLocker)
	return ok
}

// IsOptimistic reports whether l's optimistic read path is real (see
// IsReadShared).
func IsOptimistic(l sync.Locker) bool {
	if p, ok := l.(capProber); ok {
		return p.OptimisticCapable()
	}
	_, ok := l.(OptimisticLocker)
	return ok
}

// tryLocker is the non-blocking doorway the combinators require of
// their base lock (for their own TryLock surface and the OCC
// fallback's bounded acquisition paths).
type tryLocker interface {
	sync.Locker
	TryLock() bool
}

// requireTry asserts the base lock's TryLock doorway at construction,
// where a misuse is attributable, instead of failing at first use.
func requireTry(base sync.Locker, combinator string) tryLocker {
	t, ok := base.(tryLocker)
	if !ok {
		panic("rwlock: " + combinator + " requires a TryLock-capable base lock")
	}
	return t
}

// readRetryPolicy is the shared jitter floor for optimistic-read
// retries: once a read section has lost its hot retries it sleeps on
// the capped decorrelated-jitter schedule instead of spinning, so a
// writer storm degrades readers to bounded sleeping, never to
// unbounded busy-waiting. The base is deliberately small — a read
// section is tens of nanoseconds, so even the first sleep all but
// guarantees the next attempt lands between writes.
var readRetryPolicy = backoff.Policy{Base: 10 * time.Microsecond, Cap: time.Millisecond}

// optHotRetries is how many failed optimistic attempts a reader makes
// under the waiter pause policy before escalating to the jitter floor.
const optHotRetries = 8

// retrySeq decorrelates concurrent readers' jitter streams,
// deterministically per process.
var retrySeq atomic.Uint64

// RW is the reader/writer adapter: writer mutual exclusion is the
// wrapped catalog lock, read sharing is an atomic reader count, and
// writer preference is an intent flag that stops new readers before
// the writer drains the active ones.
//
// The protocol is the classic flag-and-count scheme. A writer takes
// the inner lock (serializing against other writers and inheriting the
// inner algorithm's queue discipline), raises the intent flag, and
// spins — under the repository's waiter policy — until the reader
// count drains to zero. A reader increments the count and then
// re-checks the flag: if a writer raised intent concurrently the
// reader backs out and waits, which is what gives writers preference
// (a continuous reader stream cannot starve a writer; a continuous
// writer stream can starve readers, the standard trade-off of this
// orientation, chosen because the write path is the scarce resource in
// the read-mostly regime this package targets).
type RW struct {
	w    sync.Locker
	wtry tryLocker

	// readers counts active (admitted) readers; it is the only word
	// the read fast path writes.
	readers atomic.Int64
	_       [pad.CacheLineSize - 8]byte

	// wflag is writer intent: raised between the writer's inner-lock
	// acquisition and its release. Kept off the readers line so
	// reader admissions do not false-share with writer polling.
	wflag atomic.Bool

	// clk paces the writer's reader-drain spin and the slow read path
	// (nil = wall clock).
	clk clock.Clock
}

// NewRW wraps base (which must expose TryLock) in the reader/writer
// adapter.
func NewRW(base sync.Locker) *RW {
	return &RW{w: base, wtry: requireTry(base, "RW")}
}

// SetClock injects the time source, forwarding to the base lock when it
// accepts one, so registry.WithClock reaches both layers.
func (l *RW) SetClock(c clock.Clock) {
	l.clk = c
	if cl, ok := l.w.(clock.Clocked); ok {
		cl.SetClock(c)
	}
}

// Lock acquires write exclusion: the inner lock, then a drain of the
// active readers.
func (l *RW) Lock() {
	l.w.Lock()
	l.wflag.Store(true)
	if l.readers.Load() == 0 {
		return
	}
	w := waiter.NewClocked(waiter.Default, l.clk)
	for l.readers.Load() != 0 {
		w.Pause()
	}
}

// Unlock releases write exclusion.
func (l *RW) Unlock() {
	l.wflag.Store(false)
	l.w.Unlock()
}

// TryLock attempts write exclusion without blocking: the inner
// doorway, then an instantaneous reader-drain check (any active
// reader fails the attempt — draining would block).
func (l *RW) TryLock() bool {
	if !l.wtry.TryLock() {
		return false
	}
	l.wflag.Store(true)
	if l.readers.Load() != 0 {
		l.wflag.Store(false)
		l.wtry.Unlock()
		return false
	}
	return true
}

// RLock admits a reader: increment, then re-check writer intent and
// back out if a writer arrived in the window. The uncontended path is
// two atomic loads and one atomic add.
func (l *RW) RLock() {
	if !l.wflag.Load() {
		l.readers.Add(1)
		if !l.wflag.Load() {
			return
		}
		l.readers.Add(-1)
	}
	l.rlockSlow()
}

// rlockSlow waits out writer intent under the waiter policy.
func (l *RW) rlockSlow() {
	w := waiter.NewClocked(waiter.Default, l.clk)
	for {
		for l.wflag.Load() {
			w.Pause()
		}
		l.readers.Add(1)
		if !l.wflag.Load() {
			return
		}
		l.readers.Add(-1)
	}
}

// RUnlock releases one reader admission.
func (l *RW) RUnlock() {
	if l.readers.Add(-1) < 0 {
		panic("rwlock: RUnlock without RLock")
	}
}

// Readers reports the current admitted-reader count (diagnostics and
// conformance).
func (l *RW) Readers() int64 { return l.readers.Load() }
