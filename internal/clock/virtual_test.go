package clock

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/xrand"
)

func TestWallNowMonotone(t *testing.T) {
	a := Wall.Now()
	b := Wall.Now()
	if b < a {
		t.Fatalf("Wall.Now went backwards: %v then %v", a, b)
	}
}

func TestWallTimerFireAndStop(t *testing.T) {
	tm := Wall.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(5 * time.Second):
		t.Fatal("wall timer never fired")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire reported cancellation")
	}
	tm2 := Wall.NewTimer(time.Hour)
	if !tm2.Stop() {
		t.Fatal("Stop before fire reported false")
	}
	if tm2.Stop() {
		t.Fatal("second Stop reported true")
	}
}

func TestWallParkFor(t *testing.T) {
	if !Wall.ParkFor(time.Millisecond, nil) {
		t.Fatal("uninterrupted ParkFor reported early wake")
	}
	done := make(chan struct{})
	close(done)
	if Wall.ParkFor(time.Hour, done) {
		t.Fatal("ParkFor with ready done reported full elapse")
	}
	if Wall.ParkFor(0, done) {
		t.Fatal("unbounded ParkFor with ready done reported full elapse")
	}
}

func TestOrDefaultsToWall(t *testing.T) {
	if Or(nil) != Wall {
		t.Fatal("Or(nil) != Wall")
	}
	v := NewVirtual()
	if Or(v) != Clock(v) {
		t.Fatal("Or(v) != v")
	}
}

func TestDeadlineMapping(t *testing.T) {
	if d := Deadline(Wall, time.Time{}); d != 0 {
		t.Fatalf("zero time mapped to %v, want 0 sentinel", d)
	}
	d := Deadline(Wall, time.Now().Add(time.Hour))
	if d <= Wall.Now() {
		t.Fatalf("future wall deadline mapped to past instant %v", d)
	}
	past := Deadline(Wall, time.Now().Add(-time.Hour))
	if past == 0 || past >= Wall.Now() {
		t.Fatalf("past wall deadline mapped to %v (now %v)", past, Wall.Now())
	}
}

// waitLen blocks until the guarded slice reaches length n.
func waitLen(t *testing.T, mu *sync.Mutex, s *[]int, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		got := len(*s)
		mu.Unlock()
		if got >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d recorded wakes (have %d)", n, got)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// --- Virtual: manual advancement edges ---

func TestVirtualAdvanceFiresInOrder(t *testing.T) {
	v := NewVirtual()
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	sleep := func(id int, d time.Duration) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.Sleep(d)
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		}()
		v.WaitBlocked(id) // serialize registration: ids are 1-based
	}
	sleep(1, 30*time.Millisecond)
	sleep(2, 10*time.Millisecond)
	sleep(3, 20*time.Millisecond)
	// Step one at a time so each wake's recording is observed before
	// the next fire.
	for i, want := range []time.Duration{10, 20, 30} {
		deadline, ok := v.Step()
		if !ok || deadline != want*time.Millisecond {
			t.Fatalf("step %d fired at %v,%v, want %v", i, deadline, ok, want*time.Millisecond)
		}
		waitLen(t, &mu, &order, i+1)
	}
	wg.Wait()
	if fmt.Sprint(order) != "[2 3 1]" {
		t.Fatalf("wake order %v, want [2 3 1]", order)
	}
	if n := v.Advance(time.Second); n != 0 {
		t.Fatalf("extra timers fired: %d", n)
	}
	if now := v.Now(); now != time.Second+30*time.Millisecond {
		t.Fatalf("Now() = %v, want 1.03s", now)
	}
}

// Two sleepers due at the same instant wake in registration order —
// the deterministic tiebreak the (when, seq) heap order pins.
func TestVirtualSameInstantTiebreak(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		v := NewVirtual()
		var order []int
		var mu sync.Mutex
		var wg sync.WaitGroup
		for id := 1; id <= 3; id++ {
			id := id
			wg.Add(1)
			go func() {
				defer wg.Done()
				v.Sleep(5 * time.Millisecond)
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
			}()
			v.WaitBlocked(id) // registration order = 1, 2, 3
		}
		// Fire one at a time so wake processing order is observable.
		for i := 0; i < 3; i++ {
			deadline, ok := v.Step()
			if !ok || deadline != 5*time.Millisecond {
				t.Fatalf("Step = %v,%v", deadline, ok)
			}
			waitLen(t, &mu, &order, i+1)
		}
		wg.Wait()
		if fmt.Sprint(order) != "[1 2 3]" {
			t.Fatalf("trial %d: same-instant wake order %v, want [1 2 3]", trial, order)
		}
	}
}

// A zero-duration virtual sleep is a scheduling point: it blocks until
// the next advance (even Advance(0)) rather than returning inline.
func TestVirtualZeroDurationSleepOrdering(t *testing.T) {
	v := NewVirtual()
	var woke atomic.Bool
	donech := make(chan struct{})
	go func() {
		v.Sleep(0)
		woke.Store(true)
		close(donech)
	}()
	v.WaitBlocked(1)
	if woke.Load() {
		t.Fatal("Sleep(0) returned before any advance")
	}
	if n := v.Advance(0); n != 1 {
		t.Fatalf("Advance(0) fired %d, want 1", n)
	}
	<-donech
	if v.Now() != 0 {
		t.Fatalf("Advance(0) moved the clock to %v", v.Now())
	}
}

// Timer cancel vs fire: Stop before the deadline wins and the timer
// never fires; Stop after the deadline loses and reports false; and
// the two resolutions are mutually exclusive no matter how close the
// race (here: stop at exactly the pending deadline, before advancing).
func TestVirtualTimerCancelVsFire(t *testing.T) {
	v := NewVirtual()
	tm := v.NewTimer(10 * time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop before fire reported false")
	}
	if n := v.Advance(time.Second); n != 0 {
		t.Fatalf("stopped timer fired (%d)", n)
	}
	select {
	case <-tm.C():
		t.Fatal("stopped timer's channel closed")
	default:
	}

	tm2 := v.NewTimer(10 * time.Millisecond)
	v.Advance(10 * time.Millisecond)
	if tm2.Stop() {
		t.Fatal("Stop after fire reported cancellation")
	}
	select {
	case <-tm2.C():
	default:
		t.Fatal("fired timer's channel not closed")
	}

	// Exactly-at-deadline: the timer is due but unfired; Stop must
	// still win because no advance has processed it.
	tm3 := v.NewTimer(0)
	if !tm3.Stop() {
		t.Fatal("Stop of due-but-unfired timer reported false")
	}
	if n := v.Advance(0); n != 0 {
		t.Fatalf("cancelled due timer fired (%d)", n)
	}
}

func TestVirtualParkForDoneWake(t *testing.T) {
	v := NewVirtual()
	done := make(chan struct{})
	res := make(chan bool, 1)
	go func() { res <- v.ParkFor(time.Hour, done) }()
	v.WaitBlocked(1)
	close(done)
	if <-res {
		t.Fatal("ParkFor reported full elapse after done wake")
	}
	// The withdrawn timer must not fire later.
	if n := v.Advance(2 * time.Hour); n != 0 {
		t.Fatalf("withdrawn park timer fired (%d)", n)
	}

	// Elapse path.
	go func() { res <- v.ParkFor(time.Millisecond, make(chan struct{})) }()
	v.WaitBlocked(1)
	v.Advance(time.Millisecond)
	if !<-res {
		t.Fatal("ParkFor reported early wake with idle done")
	}
}

// --- Virtual: runner mode ---

func TestVirtualRunnerDrivesWorkers(t *testing.T) {
	v := NewVirtual()
	var log []string
	var mu sync.Mutex
	note := func(f string, a ...any) {
		mu.Lock()
		log = append(log, fmt.Sprintf("%v "+f, append([]any{v.Now()}, a...)...))
		mu.Unlock()
	}
	v.Go(func() {
		v.Sleep(10 * time.Millisecond)
		note("w1 tick")
		v.Sleep(20 * time.Millisecond)
		note("w1 done")
	})
	v.Go(func() {
		v.Sleep(15 * time.Millisecond)
		note("w2 done")
	})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[10ms w1 tick 15ms w2 done 30ms w1 done]"
	if got := fmt.Sprint(log); got != want {
		t.Fatalf("runner log %v, want %v", got, want)
	}
}

func TestVirtualRunnerDeadlock(t *testing.T) {
	v := NewVirtual()
	v.Go(func() {
		v.ParkFor(0, make(chan struct{})) // nobody will ever wake this
	})
	if err := v.Run(); err == nil {
		t.Fatal("Run returned nil for a parked worker with no timers")
	}
}

// Seeded determinism round-trip: a randomized sleep/park workload over
// several workers produces the identical event log on every run with
// the same seed, and a different log for a different seed.
func TestVirtualSeededDeterminismRoundTrip(t *testing.T) {
	run := func(seed uint64) string {
		v := NewVirtual()
		var mu sync.Mutex
		var log []string
		for w := 0; w < 4; w++ {
			w := w
			rng := xrand.NewXorShift64(seed + uint64(w)*1000)
			v.Go(func() {
				for i := 0; i < 8; i++ {
					d := time.Duration(rng.Uint64()%5000) * time.Microsecond
					v.Sleep(d)
					mu.Lock()
					log = append(log, fmt.Sprintf("%v w%d.%d", v.Now(), w, i))
					mu.Unlock()
				}
			})
			// Serialize startup so registration order (the same-instant
			// tiebreak) is part of the seeded schedule, not a race.
			v.WaitBlocked(w + 1)
		}
		if err := v.Run(); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(log)
	}
	a, b, c := run(42), run(42), run(43)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if a == c {
		t.Fatal("different seeds produced identical schedules")
	}
}
