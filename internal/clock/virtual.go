package clock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Virtual is a deterministic discrete-event clock, modeled on the
// cluster simulation's event heap: pending timers are a min-heap
// ordered by (deadline, registration sequence), so two timers due at
// the same instant fire in registration order — a deterministic
// tiebreak instead of a scheduler race.
//
// Time never advances on its own. Two driving modes:
//
//   - Manual: the test calls Advance / AdvanceTo; due timers fire (and
//     sleepers wake) in heap order as the clock steps through them.
//   - Runner: worker goroutines are registered with Go, and Run steps
//     the clock whenever every live worker is blocked in a virtual
//     wait (Sleep / ParkFor / a fired-for timer), firing exactly one
//     timer per step. One-at-a-time firing means two workers due at
//     the same instant wake sequentially in registration order, so a
//     schedule's visible outcomes (who acquired, who timed out, at
//     which virtual instant) are functions of the schedule alone.
//
// The zero value is not ready; use NewVirtual.
type Virtual struct {
	mu   sync.Mutex
	cond *sync.Cond

	now time.Duration
	seq uint64
	h   vheap

	workers int // live worker goroutines registered via Go
	blocked int // workers currently inside a virtual wait
}

// NewVirtual returns a virtual clock at instant 0 with no pending
// timers.
func NewVirtual() *Virtual {
	v := &Virtual{}
	v.cond = sync.NewCond(&v.mu)
	return v
}

// vtimer is one heap entry. sleeper marks waits that count toward the
// runner's blocked tally (Sleep, ParkFor); firing one of those
// transfers its blocked slot back to the runner atomically with the
// fire, so the runner can never step twice into the same wake.
type vtimer struct {
	owner   *Virtual
	when    time.Duration
	seq     uint64
	idx     int // heap index; -1 once fired or stopped
	sleeper bool
	c       chan struct{}
}

func (t *vtimer) C() <-chan struct{} { return t.c }

// Stop cancels the timer, reporting whether it did so before the fire.
func (t *vtimer) Stop() bool { return t.owner.stop(t) }

var _ Timer = (*vtimer)(nil)

// Now returns the current virtual instant.
func (v *Virtual) Now() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// NewTimer registers a one-shot timer due at Now()+d (due immediately
// at the current instant for d <= 0 — it still waits for the next
// advance, making a zero-duration timer a deterministic scheduling
// point rather than a no-op).
func (v *Virtual) NewTimer(d time.Duration) Timer {
	v.mu.Lock()
	t := v.newTimerLocked(d, false)
	v.mu.Unlock()
	return t
}

func (v *Virtual) newTimerLocked(d time.Duration, sleeper bool) *vtimer {
	if d < 0 {
		d = 0
	}
	v.seq++
	t := &vtimer{when: v.now + d, seq: v.seq, sleeper: sleeper, c: make(chan struct{}), owner: v}
	heap.Push(&v.h, t)
	v.cond.Broadcast()
	return t
}

func (v *Virtual) stop(t *vtimer) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.idx < 0 {
		return false
	}
	heap.Remove(&v.h, t.idx)
	t.idx = -1
	return true
}

// Sleep blocks the caller until the virtual clock advances to
// Now()+d. Sleep(0) blocks until the next advance — a deterministic
// scheduling point, unlike time.Sleep(0).
func (v *Virtual) Sleep(d time.Duration) {
	v.mu.Lock()
	t := v.newTimerLocked(d, true)
	v.blocked++
	v.cond.Broadcast()
	v.mu.Unlock()
	<-t.c
}

// ParkFor parks the caller until the clock advances past d or done
// becomes ready, whichever is first; it reports whether the full
// duration elapsed. d <= 0 parks unboundedly on done.
//
// When the timer fire and done race, the winner is the select winner —
// deterministic schedules must therefore resolve cancellation and
// expiry at distinct instants (the conformance virtual-time schedules
// pass done == nil, where no race exists).
func (v *Virtual) ParkFor(d time.Duration, done <-chan struct{}) bool {
	if d <= 0 {
		if done == nil {
			panic("clock: unbounded ParkFor with no wake channel")
		}
		v.mu.Lock()
		v.blocked++
		v.cond.Broadcast()
		v.mu.Unlock()
		<-done
		v.mu.Lock()
		v.blocked--
		v.mu.Unlock()
		return false
	}
	v.mu.Lock()
	t := v.newTimerLocked(d, true)
	v.blocked++
	v.cond.Broadcast()
	v.mu.Unlock()
	if done == nil {
		<-t.c
		return true
	}
	select {
	case <-t.c:
		return true
	case <-done:
		v.mu.Lock()
		if t.idx >= 0 {
			// Unfired: withdraw the timer and reclaim our blocked slot
			// (a fired timer already handed it to the advancer).
			heap.Remove(&v.h, t.idx)
			t.idx = -1
			v.blocked--
		}
		v.mu.Unlock()
		return false
	}
}

// fireLocked pops and fires the earliest timer, advancing now to its
// deadline. Callers hold v.mu.
func (v *Virtual) fireLocked() {
	t := heap.Pop(&v.h).(*vtimer)
	t.idx = -1
	if t.when > v.now {
		v.now = t.when
	}
	if t.sleeper {
		v.blocked--
	}
	close(t.c)
}

// Advance moves the clock forward by d, firing every timer due on the
// way in (deadline, registration) order, and returns how many fired.
// Advance(0) fires timers due at exactly the current instant. Manual
// driving only — the runner (Run) advances by itself.
func (v *Virtual) Advance(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.advanceToLocked(v.now + d)
}

// AdvanceTo moves the clock to instant t (no-op if t is in the past),
// firing due timers in order, and returns how many fired.
func (v *Virtual) AdvanceTo(t time.Duration) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.advanceToLocked(t)
}

func (v *Virtual) advanceToLocked(target time.Duration) int {
	fired := 0
	for len(v.h) > 0 && v.h[0].when <= target {
		v.fireLocked()
		fired++
	}
	if target > v.now {
		v.now = target
	}
	return fired
}

// Step fires exactly the earliest pending timer (advancing the clock
// to its deadline) and reports that deadline; ok is false, and the
// clock unmoved, when no timer is pending. Manual driving's
// fine-grained form: same-instant timers fire one Step at a time, in
// registration order.
func (v *Virtual) Step() (fired time.Duration, ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.h) == 0 {
		return 0, false
	}
	when := v.h[0].when
	v.fireLocked()
	return when, true
}

// NextDeadline reports the earliest pending timer deadline, if any.
func (v *Virtual) NextDeadline() (time.Duration, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.h) == 0 {
		return 0, false
	}
	return v.h[0].when, true
}

// WaitBlocked blocks until at least n goroutines are inside virtual
// waits — the synchronization manual-mode tests need between starting
// sleepers and advancing the clock (registration order, and therefore
// same-instant tiebreak order, is then under the test's control).
func (v *Virtual) WaitBlocked(n int) {
	v.mu.Lock()
	for v.blocked < n {
		v.cond.Wait()
	}
	v.mu.Unlock()
}

// Go registers and starts one runner-driven worker goroutine. Workers
// may block on the clock (Sleep, ParkFor) and on each other's wakes;
// Run treats "every worker blocked in a virtual wait" as the signal to
// advance. A worker ends when f returns.
func (v *Virtual) Go(f func()) {
	v.mu.Lock()
	v.workers++
	v.mu.Unlock()
	go func() {
		defer func() {
			v.mu.Lock()
			v.workers--
			v.cond.Broadcast()
			v.mu.Unlock()
		}()
		f()
	}()
}

// Run drives the clock until every worker registered with Go has
// finished: whenever all live workers are blocked in virtual waits it
// fires exactly one timer (the earliest by (deadline, registration)),
// then waits for the woken worker to run until it blocks again,
// finishes, or wakes others. Returns an error if every worker is
// blocked with no pending timer — a deadlock no advance can resolve.
func (v *Virtual) Run() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	for v.workers > 0 {
		if v.blocked == v.workers {
			if len(v.h) == 0 {
				return fmt.Errorf("clock: deadlock at %v: all %d workers parked, no pending timers", v.now, v.workers)
			}
			v.fireLocked()
			continue
		}
		v.cond.Wait()
	}
	return nil
}

// vheap is the (when, seq) min-heap of pending timers.
type vheap []*vtimer

func (h vheap) Len() int { return len(h) }
func (h vheap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h vheap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *vheap) Push(x any) {
	t := x.(*vtimer)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *vheap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
