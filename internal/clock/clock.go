// Package clock is the repository's virtual-time substrate: every
// timing-dependent layer (waiting, backoff sleeps, bounded-acquisition
// deadlines, chaos delay injection, telemetry timestamps, lease
// clients) reads time and sleeps through a small Clock interface
// instead of calling the time package directly, so the same lock
// algorithms run against the wall clock in production and against a
// deterministic, manually- or runner-advanced virtual clock in tests.
//
// Two implementations:
//
//   - Wall: the process clock. Now is monotonic nanoseconds since
//     process start (the same epoch trick lockstat's timestamps used);
//     Sleep and ParkFor are the real primitives. This is the
//     zero-value default everywhere: locks carry a nil Clock and treat
//     it as Wall, so injection costs nothing when unused.
//   - Virtual (virtual.go): a discrete-event clock modeled on
//     internal/cluster's event heap. Time advances only when something
//     advances it — manually (Advance) or by the runner (Go/Run),
//     which steps time to the next timer deadline whenever every
//     registered worker goroutine is blocked in a virtual wait. Same
//     seed ⇒ same schedule ⇒ byte-identical traces.
//
// Time is expressed as time.Duration since the clock's epoch rather
// than time.Time: a virtual clock has no wall anchoring, and duration
// arithmetic (deadline = Now() + d) is branch-free and allocation-free
// on the hot bounded-acquisition paths.
//
// A custom lint (lint_test.go) forbids direct time.Now / time.Sleep /
// time.After / timer construction outside this package and
// internal/harness, so no layer can silently reattach itself to the
// wall clock.
package clock

import (
	"sync"
	"time"
)

// Clock is the time source abstraction.
//
// Now returns monotonic elapsed time since the clock's epoch. Sleep
// blocks the caller for d. NewTimer returns a cancellable one-shot
// timer (After with cancel). ParkFor is the park/unpark-compatible
// wait primitive the waiting layer (internal/waiter, internal/futex)
// blocks on: it parks the caller for up to d, unparked early when done
// becomes ready, and reports whether the full duration elapsed (false
// means done fired first). d <= 0 parks unboundedly on done alone.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	Now() time.Duration
	Sleep(d time.Duration)
	NewTimer(d time.Duration) Timer
	ParkFor(d time.Duration, done <-chan struct{}) bool
}

// Timer is a cancellable one-shot timer. C is closed when the timer
// fires; Stop cancels the timer and reports whether it did so before
// the fire (false means C is, or is about to be, closed).
type Timer interface {
	C() <-chan struct{}
	Stop() bool
}

// Clocked is implemented by values that accept an injected clock —
// every catalog lock, the bounded-polling adapter, the rwlock
// combinators, and the lockstat wrapper. registry.WithClock threads a
// clock through the decorator pipeline via this interface.
type Clocked interface {
	SetClock(c Clock)
}

// Or returns c, or Wall when c is nil — the idiom for the nil-default
// clock fields lock structs carry.
func Or(c Clock) Clock {
	if c == nil {
		return Wall
	}
	return c
}

// Deadline converts a wall-clock time.Time deadline (as carried by
// context.Context) into an absolute instant on c: the wall time
// remaining, re-anchored at c.Now(). Exact for Wall; for a virtual
// clock it interprets the remaining wall duration as virtual duration,
// which is the only meaningful reading a wall-anchored context has
// there. Returns 0 (the "no deadline" sentinel) only for the zero
// time.Time.
func Deadline(c Clock, t time.Time) time.Duration {
	if t.IsZero() {
		return 0
	}
	d := c.Now() + time.Until(t)
	if d == 0 {
		// An exactly-at-epoch result would read as "no deadline";
		// nudge to the earliest expressible expired instant.
		d = -1
	}
	return d
}

// Wall is the process wall clock (monotonic, epoch = package init).
var Wall Clock = wallClock{}

// wallEpoch anchors Wall.Now; time.Since uses the runtime's monotonic
// reading, so Wall.Now is immune to wall-time steps.
var wallEpoch = time.Now()

type wallClock struct{}

func (wallClock) Now() time.Duration { return time.Since(wallEpoch) }

func (wallClock) Sleep(d time.Duration) { time.Sleep(d) }

func (wallClock) NewTimer(d time.Duration) Timer {
	t := &wallTimer{c: make(chan struct{})}
	t.t = time.AfterFunc(d, t.fire)
	return t
}

// ParkFor parks on a real timer racing done. d <= 0 with a nil done
// would park forever with no waker, which is always a caller bug.
func (wallClock) ParkFor(d time.Duration, done <-chan struct{}) bool {
	if done == nil {
		if d <= 0 {
			panic("clock: unbounded ParkFor with no wake channel")
		}
		time.Sleep(d)
		return true
	}
	if d <= 0 {
		<-done
		return false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}

// wallTimer adapts time.AfterFunc to the Timer contract. AfterFunc
// (rather than NewTimer plus a forwarding goroutine) means a stopped
// timer leaks nothing.
type wallTimer struct {
	mu      sync.Mutex
	t       *time.Timer
	c       chan struct{}
	fired   bool
	stopped bool
}

func (t *wallTimer) fire() {
	t.mu.Lock()
	if !t.stopped {
		t.fired = true
		close(t.c)
	}
	t.mu.Unlock()
}

func (t *wallTimer) C() <-chan struct{} { return t.c }

func (t *wallTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	t.t.Stop()
	return true
}
