package clock

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// The wall-clock lint: every timing layer must go through an injected
// clock.Clock (or clock.Wall explicitly), so direct use of the time
// package's clock-reading and sleeping functions is forbidden outside
// this package. One call site left on the raw wall clock is one layer
// a virtual-time harness cannot control — exactly the class of bug the
// clock extraction exists to make impossible.
//
// Scope: non-test Go files under internal/ and cmd/. Test files may
// use wall timeouts freely (they guard against hangs, not pace
// algorithms), and examples/ (if any) are documentation.

// forbidden are the selectors of time-package functions that read or
// wait on the wall clock. Pure conversions and constructors
// (time.Duration, time.Since is NOT here because it reads the clock —
// it is forbidden) stay allowed.
var forbidden = map[string]bool{
	"time.Now":       true,
	"time.Sleep":     true,
	"time.After":     true,
	"time.Since":     true,
	"time.Until":     true,
	"time.Tick":      true,
	"time.NewTimer":  true,
	"time.NewTicker": true,
	"time.AfterFunc": true,
}

// allowed lists the packages (by repo-relative directory) that may
// touch the wall clock directly: this package implements clock.Wall,
// and the harness's watchdog/reporting layer deliberately runs on
// wall time (it measures the real world, including virtual-time runs
// that wedge).
var allowed = map[string]bool{
	"internal/clock":   true,
	"internal/harness": true,
}

func TestNoDirectWallClockOutsideAllowlist(t *testing.T) {
	root := repoRoot(t)
	var violations []string
	for _, top := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(filepath.Join(root, top), func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			if allowed[filepath.ToSlash(filepath.Dir(rel))] {
				return nil
			}
			violations = append(violations, lintFile(t, path, rel)...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(violations)
	for _, v := range violations {
		t.Error(v)
	}
	if len(violations) > 0 {
		t.Errorf("%d direct wall-clock call(s); route them through an injected clock.Clock (or clock.Wall explicitly)", len(violations))
	}
}

// lintFile parses one file and reports every forbidden selector call.
// The match is AST-based on the imported package's local name, so
// aliased imports (tm "time") are caught and unrelated identifiers
// named "time" are not.
func lintFile(t *testing.T, path, rel string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatalf("%s: %v", rel, err)
	}
	// Resolve the local name(s) the time package is imported under.
	timeNames := map[string]bool{}
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != "time" {
			continue
		}
		name := "time"
		if imp.Name != nil {
			name = imp.Name.Name
		}
		timeNames[name] = true
	}
	if len(timeNames) == 0 {
		return nil
	}
	var out []string
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || !timeNames[id.Name] || id.Obj != nil {
			return true
		}
		if forbidden["time."+sel.Sel.Name] {
			pos := fset.Position(sel.Pos())
			out = append(out, fmt.Sprintf("%s:%d: time.%s reads the wall clock directly", rel, pos.Line, sel.Sel.Name))
		}
		return true
	})
	return out
}

// repoRoot walks up from this package's directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the clock package")
		}
		dir = parent
	}
}
