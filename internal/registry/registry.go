// Package registry is the single source of truth for the repository's
// lock catalog: every pluggable sync.Locker — the paper's Figure 1
// set, the Reciprocating variants, and the extra baselines — together
// with its aliases, algorithm family, paper-set membership, and a
// declared capability set (TryLock, native bounded acquisition,
// parking, allocation-free explicit API).
//
// It is the Go analog of the paper's LD_PRELOAD methodology (§7): the
// paper swaps lock implementations under unmodified applications by
// varying one environment variable; here every harness, command, and
// library entry point selects locks from this one catalog, so "what
// locks exist and what they can do" is declared once and tested once
// (capability claims are verified against runtime behavior in the
// package tests) instead of being rediscovered by scattered type
// assertions.
//
// The three surfaces:
//
//   - Catalog: All, Paper, Lookup, Names enumerate and resolve
//     entries; each Entry declares its Capability set.
//   - Decorator pipeline: Build / Entry.Build compose the canonical
//     wrapper stack — chaos veto, bounded-acquisition guarantee,
//     lockstat instrumentation — in one fixed order (see build.go).
//   - Flag: LocksFlag is the shared -locks parser used identically by
//     cmd/mutexbench, cmd/kvbench, cmd/torture and cmd/atomicbench,
//     including "-locks list" to print the capability matrix.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/rwlock"
)

// Capability is a bit set of mechanically verifiable lock properties.
// The claims declared in the catalog are enforced by the package
// tests: a TryLock claim must match a runtime interface assertion, a
// NativeBounded claim must match the bounded.Locker contract, and so
// on — capabilities are promises, not hints.
type Capability uint32

const (
	// CapTryLock: the lock exposes a non-blocking TryLock doorway.
	CapTryLock Capability = 1 << iota
	// CapNativeBounded: LockFor/LockCtx are implemented inside the
	// algorithm (safe abandonment of a published waiter), not by
	// TryLock polling.
	CapNativeBounded
	// CapPark: contended waiters eventually block (futex or runtime
	// parking) instead of spinning indefinitely.
	CapPark
	// CapAllocFree: the lock offers the explicit wait-element
	// Acquire/Release API, allowing allocation-free critical sections.
	CapAllocFree
	// CapSimTwin: the entry declares a Track B twin — a deterministic
	// internal/simlocks re-implementation of the same algorithm — in
	// its SimTwin field, and the differential conformance checker
	// (internal/conformance) verifies the two produce identical
	// admission schedules. The pairing is a promise: CapSimTwin without
	// a resolvable SimTwin name (or vice versa) fails the registry
	// tests.
	CapSimTwin
	// CapReadShared: the lock exposes the rwlock.RWLocker read path
	// (RLock/RUnlock) and admits concurrent readers while a writer
	// excludes them all — verified by conformance CheckReadSharing.
	CapReadShared
	// CapOptimisticRead: the lock exposes the rwlock.OptimisticLocker
	// read path (ReadBegin/ReadValidate/OptimisticRead): version-
	// stamped sections that acquire nothing and retry on conflict,
	// never returning a torn validated read — verified by conformance
	// CheckReadSharing.
	CapOptimisticRead
)

// Has reports whether c includes every bit of x.
func (c Capability) Has(x Capability) bool { return c&x == x }

// String renders the set as "TryLock|NativeBounded|..." ("-" when
// empty).
func (c Capability) String() string {
	var parts []string
	for _, b := range []struct {
		bit  Capability
		name string
	}{
		{CapTryLock, "TryLock"},
		{CapNativeBounded, "NativeBounded"},
		{CapPark, "Park"},
		{CapAllocFree, "AllocFree"},
		{CapSimTwin, "SimTwin"},
		{CapReadShared, "ReadShared"},
		{CapOptimisticRead, "OptimisticRead"},
	} {
		if c.Has(b.bit) {
			parts = append(parts, b.name)
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "|")
}

// Family groups catalog entries by algorithmic lineage.
type Family string

const (
	FamilyReciprocating Family = "reciprocating" // paper's algorithm and its variants
	FamilySegment       Family = "segment"       // Chen & Huang — same segment discipline, global spinning
	FamilyQueue         Family = "queue"         // MCS/CLH/HemLock/ABQL queue locks
	FamilyTicket        Family = "ticket"        // ticket lock and descendants
	FamilySpin          Family = "spin"          // centralized test-and-set spinning
	FamilyFutex         Family = "futex"         // three-state futex mutex
	FamilyRuntime       Family = "runtime"       // Go runtime's own mutex
	FamilyCombinator    Family = "combinator"    // read-path wrappers over a base lock (internal/rwlock)
)

// Entry is one catalog row: an identity, a constructor, and a set of
// declared, test-enforced capabilities.
type Entry struct {
	// Name is the canonical selection name (the paper's legend name
	// where one exists).
	Name string
	// Aliases are accepted alternative names (case-insensitive, like
	// Name itself).
	Aliases []string
	// Family is the algorithmic lineage.
	Family Family
	// Paper marks membership in the Figure 1 evaluation set.
	Paper bool
	// Caps declares the lock's capability set.
	Caps Capability
	// Doc is a one-line description for the catalog listing.
	Doc string
	// SimTwin names the internal/simlocks re-implementation of this
	// algorithm (its Lock.Name), when one exists; set iff Caps has
	// CapSimTwin. The name is a string rather than a factory so the
	// catalog does not pull the coherence simulator into every binary
	// that selects locks; internal/conformance resolves and enforces
	// the pairing.
	SimTwin string
	// New constructs a fresh, unlocked instance.
	New func() sync.Locker
}

// Boundable reports whether the entry supports bounded acquisition at
// all — natively, or through TryLock polling (bounded.For succeeds).
func (e Entry) Boundable() bool {
	return e.Caps&(CapTryLock|CapNativeBounded) != 0
}

// BoundedTier names the strongest bounded-acquisition discipline the
// entry supports: "native", "polling", or "-".
func (e Entry) BoundedTier() string {
	switch {
	case e.Caps.Has(CapNativeBounded):
		return "native"
	case e.Caps.Has(CapTryLock):
		return "polling"
	default:
		return "-"
	}
}

// DefaultABQLCapacity is the fixed participant capacity (holders plus
// waiters) of the catalog's ABQL entry. Anderson's lock requires the
// maximum simultaneous-participant count at construction (§5's
// objection to the family); the catalog picks a bound comfortably
// above every harness's goroutine count.
const DefaultABQLCapacity = 512

// catalog returns the full entry list in canonical order: the Figure 1
// legend set first (in legend order), then the remaining baselines and
// variants. A fresh slice is returned so callers may reorder it.
func catalog() []Entry {
	return []Entry{
		// --- Figure 1 legend set (paper order) ---
		{Name: "TKT", Aliases: []string{"Ticket"}, Family: FamilyTicket, Paper: true,
			Caps: CapTryLock | CapNativeBounded | CapSimTwin, SimTwin: "TKT",
			Doc: "classic FIFO ticket lock",
			New: func() sync.Locker { return new(locks.TicketLock) }},
		{Name: "MCS", Family: FamilyQueue, Paper: true,
			Caps: CapTryLock | CapNativeBounded | CapSimTwin, SimTwin: "MCS",
			Doc: "MCS queue lock, local spinning on own node",
			New: func() sync.Locker { return new(locks.MCSLock) }},
		{Name: "CLH", Family: FamilyQueue, Paper: true,
			Caps: CapTryLock | CapNativeBounded | CapSimTwin, SimTwin: "CLH",
			Doc: "CLH queue lock, spins on predecessor's node",
			New: func() sync.Locker { return new(locks.CLHLock) }},
		{Name: "TWA", Family: FamilyTicket, Paper: true,
			Caps: CapTryLock | CapSimTwin, SimTwin: "TWA",
			Doc: "ticket lock with waiting array",
			New: func() sync.Locker { return new(locks.TWALock) }},
		{Name: "HemLock", Family: FamilyQueue, Paper: true,
			Caps: CapTryLock | CapSimTwin, SimTwin: "HemLock",
			Doc: "Hemisphere lock, one element per thread",
			New: func() sync.Locker { return new(locks.HemLock) }},
		{Name: "Recipro", Aliases: []string{"Reciprocating", "L1"}, Family: FamilyReciprocating, Paper: true,
			Caps: CapTryLock | CapNativeBounded | CapAllocFree | CapSimTwin, SimTwin: "Recipro",
			Doc: "canonical Reciprocating Lock (Listing 1)",
			New: func() sync.Locker { return new(core.Lock) }},

		// --- extra baselines ---
		{Name: "TAS", Family: FamilySpin,
			Caps: CapTryLock | CapNativeBounded,
			Doc:  "test-and-set spin lock",
			New:  func() sync.Locker { return new(locks.TASLock) }},
		{Name: "TTAS", Family: FamilySpin,
			Caps: CapTryLock | CapNativeBounded,
			Doc:  "test-and-test-and-set spin lock",
			New:  func() sync.Locker { return new(locks.TTASLock) }},
		{Name: "ABQL", Aliases: []string{"Anderson"}, Family: FamilyQueue,
			Caps: CapTryLock | CapSimTwin, SimTwin: "ABQL",
			Doc: "Anderson array-based queue lock (fixed capacity)",
			New: func() sync.Locker { return locks.NewABQL(DefaultABQLCapacity) }},
		{Name: "Chen", Family: FamilySegment,
			Caps: CapTryLock | CapSimTwin, SimTwin: "Chen",
			Doc: "Chen & Huang segment lock, global spinning",
			New: func() sync.Locker { return new(locks.ChenLock) }},
		{Name: "Retrograde", Family: FamilyTicket,
			Caps: CapTryLock,
			Doc:  "Listing 7 retrograde ticket lock",
			New:  func() sync.Locker { return new(locks.RetrogradeLock) }},
		{Name: "RetroRand", Aliases: []string{"RetrogradeRand"}, Family: FamilyTicket,
			Caps: CapTryLock,
			Doc:  "randomized retrograde ticket lock",
			New:  func() sync.Locker { return new(locks.RetrogradeRandLock) }},

		// --- Reciprocating variants ---
		{Name: "Recipro-L2", Aliases: []string{"L2", "Simplified"}, Family: FamilyReciprocating,
			Caps: CapTryLock | CapNativeBounded | CapSimTwin, SimTwin: "Recipro-L2",
			Doc: "Listing 2, eos in the lock body",
			New: func() sync.Locker { return new(core.SimplifiedLock) }},
		{Name: "Recipro-L3", Aliases: []string{"L3", "Relay"}, Family: FamilyReciprocating,
			Caps: CapTryLock,
			Doc:  "Listing 3, double-swap relay",
			New:  func() sync.Locker { return new(core.RelayLock) }},
		{Name: "Recipro-L4", Aliases: []string{"L4", "FetchAdd"}, Family: FamilyReciprocating,
			Caps: CapTryLock,
			Doc:  "Listing 4, tagged word with fetch-add release",
			New:  func() sync.Locker { return new(core.FetchAddLock) }},
		{Name: "Recipro-L5", Aliases: []string{"L5"}, Family: FamilyReciprocating,
			Caps: CapTryLock,
			Doc:  "Listing 5, tagged word with per-element eos",
			New:  func() sync.Locker { return new(core.SimplifiedEOSLock) }},
		{Name: "Recipro-L6", Aliases: []string{"L6", "Combined"}, Family: FamilyReciprocating,
			Caps: CapTryLock,
			Doc:  "Listing 6, combined Listings 3+5",
			New:  func() sync.Locker { return new(core.CombinedLock) }},
		{Name: "Gated", Family: FamilyReciprocating,
			Caps: 0,
			Doc:  "Appendix H pop-stack with leader gate",
			New:  func() sync.Locker { return new(core.GatedLock) }},
		{Name: "TwoLane", Family: FamilyReciprocating,
			Caps: 0,
			Doc:  "Appendix I randomized two-lane, long-term fair",
			New:  func() sync.Locker { return new(core.TwoLaneLock) }},
		{Name: "Fair", Family: FamilyReciprocating,
			Caps: CapTryLock | CapAllocFree,
			Doc:  "§9.4 Bernoulli-deferral fairness mitigation",
			New:  func() sync.Locker { return new(core.FairLock) }},
		{Name: "Recipro-CTR", Aliases: []string{"CTR"}, Family: FamilyReciprocating,
			Caps: CapTryLock | CapAllocFree,
			Doc:  "§10 CTR (consume-the-grant) waiting discipline",
			New:  func() sync.Locker { return new(core.CTRLock) }},
		{Name: "Recipro-L2park", Aliases: []string{"L2park"}, Family: FamilyReciprocating,
			Caps: CapTryLock | CapNativeBounded | CapPark | CapSimTwin, SimTwin: "Recipro-L2",
			Doc: "Listing 2 with §8 futex parking",
			New: func() sync.Locker { return &core.SimplifiedLock{Park: true} }},

		// --- read-path combinators (internal/rwlock) ---
		// Registered over the canonical Reciprocating base; any other
		// TryLock-capable base is reachable through the dynamic
		// "rw:<lock>" / "seq:<lock>" / "occ:<lock>" selection prefixes.
		{Name: "RW-Recipro", Aliases: []string{"RW"}, Family: FamilyCombinator,
			Caps: CapTryLock | CapReadShared,
			Doc:  "writer-preference reader/writer adapter over Recipro",
			New:  func() sync.Locker { return rwlock.NewRW(new(core.Lock)) }},
		{Name: "Seq-Recipro", Aliases: []string{"Seqlock", "Seq"}, Family: FamilyCombinator,
			Caps: CapTryLock | CapOptimisticRead,
			Doc:  "version-stamped seqlock (retry-on-conflict reads) over Recipro",
			New:  func() sync.Locker { return rwlock.NewSeqlock(new(core.Lock)) }},
		{Name: "OCC-Recipro", Aliases: []string{"OCC"}, Family: FamilyCombinator,
			Caps: CapTryLock | CapOptimisticRead,
			Doc:  "optimistic reads with bounded retries, then the real lock",
			New:  func() sync.Locker { return rwlock.NewOCC(new(core.Lock)) }},

		// --- real-world defaults for context ---
		{Name: "GoMutex", Aliases: []string{"Mutex", "sync.Mutex"}, Family: FamilyRuntime,
			Caps: CapTryLock | CapPark,
			Doc:  "Go runtime sync.Mutex (parks in the runtime)",
			New:  func() sync.Locker { return new(sync.Mutex) }},
		{Name: "GoRWMutex", Aliases: []string{"RWMutex", "sync.RWMutex"}, Family: FamilyRuntime,
			Caps: CapTryLock | CapPark | CapReadShared,
			Doc:  "Go runtime sync.RWMutex (native shared read path)",
			New:  func() sync.Locker { return new(sync.RWMutex) }},
		{Name: "FutexMutex", Aliases: []string{"Futex"}, Family: FamilyFutex,
			Caps: CapTryLock | CapPark,
			Doc:  "three-state futex mutex, the pthread default shape",
			New:  func() sync.Locker { return new(locks.FutexMutex) }},
	}
}

// All returns every catalog entry in canonical order.
func All() []Entry { return catalog() }

// Paper returns the six locks evaluated in Figure 1, in the paper's
// legend order.
func Paper() []Entry {
	var out []Entry
	for _, e := range catalog() {
		if e.Paper {
			out = append(out, e)
		}
	}
	return out
}

// Lookup resolves a canonical name or alias, case-insensitively. The
// prefixes "rw:", "seq:" and "occ:" derive a read-path combinator over
// any TryLock-capable entry — "rw:MCS" is the reader/writer adapter
// over the MCS lock — producing an Entry that behaves like a catalog
// row (Build pipeline, capability claims) but is not listed by All.
func Lookup(name string) (Entry, bool) {
	want := strings.ToLower(strings.TrimSpace(name))
	for _, p := range []string{"rw:", "seq:", "occ:"} {
		if strings.HasPrefix(want, p) {
			base, ok := Lookup(want[len(p):])
			if !ok || !base.Caps.Has(CapTryLock) {
				return Entry{}, false
			}
			return deriveCombinator(p, base), true
		}
	}
	for _, e := range catalog() {
		if strings.ToLower(e.Name) == want {
			return e, true
		}
		for _, a := range e.Aliases {
			if strings.ToLower(a) == want {
				return e, true
			}
		}
	}
	return Entry{}, false
}

// Names returns every canonical name in catalog order.
func Names() []string {
	var out []string
	for _, e := range catalog() {
		out = append(out, e.Name)
	}
	return out
}

// Select resolves a selection spec: a comma-separated list whose
// elements are canonical names, aliases, or the keywords "paper" (the
// Figure 1 set) and "all" (the whole catalog). Duplicates are removed,
// keeping first-occurrence order.
func Select(spec string) ([]Entry, error) {
	var out []Entry
	seen := map[string]bool{}
	add := func(e Entry) {
		if !seen[e.Name] {
			seen[e.Name] = true
			out = append(out, e)
		}
	}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		switch strings.ToLower(tok) {
		case "paper":
			for _, e := range Paper() {
				add(e)
			}
		case "all":
			for _, e := range All() {
				add(e)
			}
		default:
			e, ok := Lookup(tok)
			if !ok {
				return nil, &UnknownLockError{Name: tok}
			}
			add(e)
		}
	}
	if len(out) == 0 {
		return nil, &UnknownLockError{Name: spec}
	}
	return out, nil
}

// deriveCombinator builds the dynamic catalog row for a read-path
// combinator over base. The derived entry keeps base's SimTwin out (a
// twin models the base's admission order, not the wrapper's read
// protocol) and claims only what the wrapper itself promises: TryLock
// plus the read capability.
func deriveCombinator(prefix string, base Entry) Entry {
	inner := base.New
	switch prefix {
	case "rw:":
		return Entry{
			Name: "RW:" + base.Name, Family: FamilyCombinator,
			Caps: CapTryLock | CapReadShared,
			Doc:  "writer-preference reader/writer adapter over " + base.Name,
			New:  func() sync.Locker { return rwlock.NewRW(inner()) },
		}
	case "seq:":
		return Entry{
			Name: "Seq:" + base.Name, Family: FamilyCombinator,
			Caps: CapTryLock | CapOptimisticRead,
			Doc:  "version-stamped seqlock over " + base.Name,
			New:  func() sync.Locker { return rwlock.NewSeqlock(inner()) },
		}
	case "occ:":
		return Entry{
			Name: "OCC:" + base.Name, Family: FamilyCombinator,
			Caps: CapTryLock | CapOptimisticRead,
			Doc:  "optimistic-then-fallback reads over " + base.Name,
			New:  func() sync.Locker { return rwlock.NewOCC(inner()) },
		}
	}
	panic("registry: unknown combinator prefix " + prefix)
}

// UnknownLockError reports a selection token that resolves to no
// catalog entry; its message lists the known names.
type UnknownLockError struct{ Name string }

func (e *UnknownLockError) Error() string {
	names := Names()
	sort.Strings(names)
	return fmt.Sprintf("unknown lock %q (known: %s; use -locks=list to print the catalog)",
		e.Name, strings.Join(names, ", "))
}
