package registry

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bounded"
	"repro/internal/chaos"
	"repro/internal/lockstat"
)

func TestBuildBare(t *testing.T) {
	l, err := Build("Recipro")
	if err != nil {
		t.Fatal(err)
	}
	if _, wrapped := l.(*lockstat.Instrumented); wrapped {
		t.Fatal("bare Build must not wrap")
	}
	l.Lock()
	l.Unlock()

	if _, err := Build("bogus"); err == nil {
		t.Fatal("Build of unknown name succeeded")
	}
}

func TestBuildWithBounded(t *testing.T) {
	// Natively bounded: the lock itself satisfies the contract.
	l, err := Build("MCS", WithBounded())
	if err != nil {
		t.Fatal(err)
	}
	b, ok := l.(bounded.Locker)
	if !ok {
		t.Fatal("WithBounded result does not implement bounded.Locker")
	}
	if !b.LockFor(10 * time.Millisecond) {
		t.Fatal("LockFor failed on unheld lock")
	}
	b.Unlock()

	// TryLock-only: the polling adapter must be interposed.
	l, err = Build("TWA", WithBounded())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.(bounded.Locker); !ok {
		t.Fatal("polling-tier entry did not gain bounded.Locker")
	}

	// No doorway at all: Build must fail, not hand back a lock that
	// cannot honor the request.
	for _, name := range []string{"Gated", "TwoLane"} {
		if _, err := Build(name, WithBounded()); err == nil {
			t.Errorf("Build(%s, WithBounded()) succeeded for an unboundable lock", name)
		} else if !strings.Contains(err.Error(), name) {
			t.Errorf("error should name the entry: %v", err)
		}
	}
}

func TestBuildWithStats(t *testing.T) {
	st := lockstat.New()
	l, err := Build("TKT", WithStats(st))
	if err != nil {
		t.Fatal(err)
	}
	w, ok := l.(*lockstat.Instrumented)
	if !ok {
		t.Fatal("WithStats did not produce an Instrumented lock")
	}
	w.Lock()
	w.Unlock()
	if snap := st.Snapshot(); snap.Acquisitions != 1 || snap.Unlocks != 1 {
		t.Fatalf("telemetry not recorded: %+v", snap)
	}
	if !w.Boundable() {
		t.Fatal("instrumented TKT lost boundability")
	}

	// Telemetry must be outermost: with bounded too, the wrapper still
	// exposes the Instrumented surface.
	l, err = Build("TWA", WithStats(lockstat.New()), WithBounded())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.(*lockstat.Instrumented); !ok {
		t.Fatal("pipeline order broken: Instrumented is not outermost")
	}
}

// The veto shim must neither gain nor lose capability tier.
func TestVetoPreservesTier(t *testing.T) {
	// Native tier stays native.
	l, err := Build("MCS", WithChaosVeto("test.veto.mcs"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.(bounded.Locker); !ok {
		t.Fatal("veto demoted a natively bounded lock")
	}

	// TryLock tier stays TryLock (and does not become bounded).
	l, err = Build("TWA", WithChaosVeto("test.veto.twa"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.(bounded.TryLocker); !ok {
		t.Fatal("veto lost the TryLock doorway")
	}
	if _, ok := l.(bounded.Locker); ok {
		t.Fatal("veto promoted a TryLock-only lock to bounded.Locker")
	}

	// No doorway: nothing to veto, lock passes through untouched.
	e, _ := Lookup("Gated")
	l, err = e.Build(WithChaosVeto("test.veto.gated"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.(bounded.TryLocker); ok {
		t.Fatal("veto invented a TryLock doorway")
	}
}

// With chaos disarmed the shim is transparent; with TryFail forced to
// certainty every TryLock and LockFor attempt is vetoed, while plain
// Lock and LockCtx are untouched.
func TestVetoUnderChaos(t *testing.T) {
	l, err := Build("Recipro", WithChaosVeto("test.veto.recipro"))
	if err != nil {
		t.Fatal(err)
	}
	b := l.(bounded.Locker)

	if !b.TryLock() {
		t.Fatal("disarmed veto blocked TryLock")
	}
	b.Unlock()

	chaos.Enable(chaos.Config{Seed: 7, TryFail: 1})
	defer chaos.Disable()

	if b.TryLock() {
		t.Fatal("TryLock succeeded under a certain veto")
	}
	if b.LockFor(time.Millisecond) {
		t.Fatal("LockFor succeeded under a certain veto")
	}
	// A veto is failure-only: blocking acquisition still works.
	b.Lock()
	b.Unlock()
}

func TestFactory(t *testing.T) {
	e, _ := Lookup("CLH")
	fac, err := e.Factory()
	if err != nil {
		t.Fatal(err)
	}
	a, b := fac(), fac()
	if a == b {
		t.Fatal("Factory returned a shared instance")
	}
	a.Lock()
	// Distinct instances: b must be acquirable while a is held.
	done := make(chan struct{})
	go func() {
		b.Lock()
		b.Unlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("factory instances share state")
	}
	a.Unlock()

	// Invalid pipelines fail at Factory time, not per construction.
	g, _ := Lookup("Gated")
	if _, err := g.Factory(WithBounded()); err == nil {
		t.Fatal("Factory validated an impossible pipeline")
	}
}

// Repeated builds with the same veto point must share one chaos
// point — the injection stream is per-name, not per-instance.
func TestVetoPointInterning(t *testing.T) {
	const name = "test.veto.interned"
	a := vetoPoint(name)
	b := vetoPoint(name)
	if a != b {
		t.Fatal("veto points not interned")
	}
}

// The pipeline built concurrently must be race-free (exercised under
// make race).
func TestBuildConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l, err := Build("Recipro", WithStats(nil), WithChaosVeto(""), WithBounded())
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 100; j++ {
				l.Lock()
				l.Unlock()
			}
		}()
	}
	wg.Wait()
}
