package registry

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/bounded"
	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/lockstat"
	"repro/internal/rwlock"
)

// The canonical decorator pipeline. Every harness used to stack the
// lockstat and bounded wrappers by hand, each in its own order; Build
// composes them once, innermost to outermost:
//
//	base lock → chaos veto → bounded guarantee → lockstat telemetry
//
// The order is load-bearing: the veto sits against the raw lock so
// injected TryLock failures exercise the algorithm's own retry paths;
// the bounded adaptation wraps the vetoed lock so polling fallbacks
// feel the injected pressure; and telemetry is outermost so vetoed
// attempts are recorded as try-failures and abandoned bounded waits as
// abandons, exactly as real ones are.

// Option configures one Build.
type Option func(*buildConfig)

type buildConfig struct {
	stats     *lockstat.Stats
	statsSet  bool
	bounded   bool
	veto      bool
	vetoPoint string
	clk       clock.Clock
	clkSet    bool
}

// WithStats wraps the built lock in lockstat.Instrumented recording
// into st. A nil st still installs the wrapper (the nil-Stats
// fast path), which is the cheap-to-leave-on configuration.
func WithStats(st *lockstat.Stats) Option {
	return func(c *buildConfig) { c.stats, c.statsSet = st, true }
}

// WithBounded requires the built lock to support bounded acquisition
// (LockFor/LockCtx): Build fails for entries that support neither
// native bounding nor TryLock polling, and otherwise guarantees the
// returned value implements bounded.Locker.
func WithBounded() Option {
	return func(c *buildConfig) { c.bounded = true }
}

// WithClock injects c as the time source for every layer of the built
// pipeline: the base algorithm's waiting (park pacing, bounded
// deadlines), the polling fallback's sleeps, and the telemetry
// wrapper's latency timestamps. Build fails for entries whose base
// lock accepts no clock (e.g. the sync.Mutex baseline) — silently
// building a wall-clocked lock under a virtual-time harness would
// deadlock it. A nil c restores the wall clock.
func WithClock(c clock.Clock) Option {
	return func(cfg *buildConfig) { cfg.clk, cfg.clkSet = c, true }
}

// WithChaosVeto inserts a fault-injection shim that can spuriously
// veto TryLock and LockFor attempts through a chaos point named
// point (or "registry.veto.<entry name>" when point is empty). The
// shim is inert until chaos.Enable arms the process, and a veto is
// always a legal outcome of the vetoed operation, so it can expose
// bugs but never cause one. Entries with no TryLock doorway have
// nothing to veto and pass through unchanged.
func WithChaosVeto(point string) Option {
	return func(c *buildConfig) { c.veto, c.vetoPoint = true, point }
}

// Build looks name up in the catalog and builds it through the
// decorator pipeline.
func Build(name string, opts ...Option) (sync.Locker, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, &UnknownLockError{Name: name}
	}
	return e.Build(opts...)
}

// Build constructs a fresh lock and applies the canonical decorator
// pipeline for the given options.
func (e Entry) Build(opts ...Option) (sync.Locker, error) {
	var cfg buildConfig
	for _, o := range opts {
		o(&cfg)
	}
	l := e.New()
	if cfg.clkSet {
		cl, ok := l.(clock.Clocked)
		if !ok {
			return nil, fmt.Errorf("registry: lock %s accepts no injected clock (its waiting is not clock-paced)", e.Name)
		}
		cl.SetClock(cfg.clk)
	}
	if cfg.veto {
		name := cfg.vetoPoint
		if name == "" {
			name = "registry.veto." + e.Name
		}
		l = vetoWrap(l, vetoPoint(name))
	}
	if cfg.bounded {
		b, ok := bounded.For(l)
		if !ok {
			return nil, fmt.Errorf("registry: lock %s supports no bounded acquisition (no TryLock doorway and no native LockFor)", e.Name)
		}
		l = b
	}
	if cfg.statsSet {
		l = lockstat.Wrap(l, cfg.stats)
	}
	// The outer decorators (Polling fallback, Instrumented) carry their
	// own clocks for sleeps and timestamps; re-inject at the top so
	// every Clocked layer of the finished pipeline is on cfg.clk.
	if cfg.clkSet {
		if cl, ok := l.(clock.Clocked); ok {
			cl.SetClock(cfg.clk)
		}
	}
	return l, nil
}

// Factory validates the pipeline once and returns a constructor that
// builds a fresh decorated lock per call — the shape the benchmark
// harnesses need (e.g. one shared Stats, fresh lock per run).
func (e Entry) Factory(opts ...Option) (func() sync.Locker, error) {
	if _, err := e.Build(opts...); err != nil {
		return nil, err
	}
	return func() sync.Locker {
		l, _ := e.Build(opts...)
		return l
	}, nil
}

// vetoPoints interns chaos points by name so repeated Builds of the
// same entry share one injection stream instead of growing the chaos
// registry per instance.
var (
	vetoMu     sync.Mutex
	vetoPoints = map[string]*chaos.Point{}
)

func vetoPoint(name string) *chaos.Point {
	vetoMu.Lock()
	defer vetoMu.Unlock()
	p, ok := vetoPoints[name]
	if !ok {
		p = chaos.NewPoint(name)
		vetoPoints[name] = p
	}
	return p
}

// vetoWrap shields l behind a chaos veto shim matching l's strongest
// non-blocking surface, so no capability is gained or lost: a
// bounded.Locker stays natively bounded, a plain TryLocker stays a
// TryLocker, and a lock with no doorway is returned unchanged. Read
// paths are preserved: a shared read path (RWLocker) passes through
// unvetoed (RLock has no failure mode to inject), and an optimistic
// read path keeps ReadBegin/OptimisticRead while ReadValidate gains a
// spurious-failure veto — a failed validation is always a legal
// outcome, so the shim exercises reader retry loops without being
// able to fabricate a torn read.
func vetoWrap(l sync.Locker, pt *chaos.Point) sync.Locker {
	if b, ok := l.(bounded.Locker); ok {
		// No catalog lock offers both native bounding and a read path
		// (the rwlock combinators bound via TryLock polling), so the
		// bounded shim carries no read surface.
		return &vetoBounded{inner: b, pt: pt}
	}
	if t, ok := l.(bounded.TryLocker); ok {
		if rw, ok := l.(rwlock.RWLocker); ok {
			return &vetoTryRW{vetoTry: vetoTry{inner: t, pt: pt}, rw: rw}
		}
		if opt, ok := l.(rwlock.OptimisticLocker); ok {
			return &vetoTryOpt{vetoTry: vetoTry{inner: t, pt: pt}, opt: opt}
		}
		return &vetoTry{inner: t, pt: pt}
	}
	return l
}

// vetoTry vetoes TryLock on a plain TryLocker.
type vetoTry struct {
	inner bounded.TryLocker
	pt    *chaos.Point
}

func (v *vetoTry) Lock()   { v.inner.Lock() }
func (v *vetoTry) Unlock() { v.inner.Unlock() }

// TryLock attempts the inner doorway unless the chaos point vetoes the
// attempt (a spurious failure, always legal for TryLock).
func (v *vetoTry) TryLock() bool {
	if v.pt.Fail() {
		return false
	}
	return v.inner.TryLock()
}

// vetoTryRW is vetoTry plus an unvetoed shared read path: RLock has no
// spurious-failure mode in its contract, so there is nothing legal to
// inject.
type vetoTryRW struct {
	vetoTry
	rw rwlock.RWLocker
}

func (v *vetoTryRW) RLock()   { v.rw.RLock() }
func (v *vetoTryRW) RUnlock() { v.rw.RUnlock() }

// vetoTryOpt is vetoTry plus the optimistic read path, with a
// spurious-failure veto on ReadValidate (a failed validation is always
// legal and forces the caller's retry/fallback path). OptimisticRead
// passes through: its termination contract is the inner combinator's
// bounded retry policy, which the conformance conflict-storm check
// stresses with real writers instead.
type vetoTryOpt struct {
	vetoTry
	opt rwlock.OptimisticLocker
}

func (v *vetoTryOpt) ReadBegin() uint64 { return v.opt.ReadBegin() }

func (v *vetoTryOpt) ReadValidate(s uint64) bool {
	if v.pt.Fail() {
		return false
	}
	return v.opt.ReadValidate(s)
}

func (v *vetoTryOpt) OptimisticRead(f func()) { v.opt.OptimisticRead(f) }

// vetoBounded vetoes TryLock and LockFor on a natively bounded lock.
// LockCtx is deliberately not vetoed: its contract ties a false return
// to the context's own error, and fabricating one would turn the shim
// from failure-only into a liar.
type vetoBounded struct {
	inner bounded.Locker
	pt    *chaos.Point
}

func (v *vetoBounded) Lock()   { v.inner.Lock() }
func (v *vetoBounded) Unlock() { v.inner.Unlock() }

func (v *vetoBounded) TryLock() bool {
	if v.pt.Fail() {
		return false
	}
	return v.inner.TryLock()
}

// LockFor attempts a bounded acquire unless vetoed; a veto is an
// immediate spurious timeout, which LockFor callers must tolerate
// anyway.
func (v *vetoBounded) LockFor(d time.Duration) bool {
	if v.pt.Fail() {
		return false
	}
	return v.inner.LockFor(d)
}

func (v *vetoBounded) LockCtx(ctx context.Context) error {
	return v.inner.LockCtx(ctx)
}
