package registry

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bounded"
	"repro/internal/core"
	"repro/internal/rwlock"
	"repro/internal/waiter"
)

// The catalog must have globally unique selection tokens: no name or
// alias (case-insensitively) may resolve ambiguously, and the
// keywords are reserved.
func TestCatalogNamesUnique(t *testing.T) {
	seen := map[string]string{}
	claim := func(tok, owner string) {
		k := strings.ToLower(tok)
		if k == "paper" || k == "all" || k == "list" {
			t.Errorf("entry %s uses reserved selection keyword %q", owner, tok)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("selection token %q claimed by both %s and %s", tok, prev, owner)
		}
		seen[k] = owner
	}
	for _, e := range All() {
		if e.Name == "" || e.New == nil || e.Doc == "" || e.Family == "" {
			t.Errorf("entry %+v is missing identity fields", e)
		}
		claim(e.Name, e.Name)
		for _, a := range e.Aliases {
			claim(a, e.Name)
		}
	}
}

func TestPaperSetIsFigureOneLegend(t *testing.T) {
	want := []string{"TKT", "MCS", "CLH", "TWA", "HemLock", "Recipro"}
	var got []string
	for _, e := range Paper() {
		got = append(got, e.Name)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Paper() = %v, want the Figure 1 legend %v", got, want)
	}
}

func TestLookupAliasesAndCase(t *testing.T) {
	cases := map[string]string{
		"Recipro": "Recipro", "reciprocating": "Recipro", "l1": "Recipro",
		"mcs": "MCS", "Ticket": "TKT", "SYNC.MUTEX": "GoMutex",
		"l2park": "Recipro-L2park", " CLH ": "CLH", "anderson": "ABQL",
	}
	for in, want := range cases {
		e, ok := Lookup(in)
		if !ok || e.Name != want {
			t.Errorf("Lookup(%q) = (%q, %v), want %q", in, e.Name, ok, want)
		}
	}
	if _, ok := Lookup("no-such-lock"); ok {
		t.Error("Lookup accepted a bogus name")
	}
}

func TestSelect(t *testing.T) {
	names := func(es []Entry) []string {
		var out []string
		for _, e := range es {
			out = append(out, e.Name)
		}
		return out
	}

	got, err := Select("mcs, L2,TKT")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"MCS", "Recipro-L2", "TKT"}; !reflect.DeepEqual(names(got), want) {
		t.Fatalf("Select order = %v, want %v", names(got), want)
	}

	got, err = Select("paper,Recipro,TAS") // Recipro already in paper → dedup
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 || got[6].Name != "TAS" {
		t.Fatalf("Select(paper,Recipro,TAS) = %v", names(got))
	}

	if all, err := Select("all"); err != nil || len(all) != len(All()) {
		t.Fatalf("Select(all) = %d entries, err %v", len(all), err)
	}

	_, err = Select("TKT,bogus")
	var ue *UnknownLockError
	if !errorsAs(err, &ue) || ue.Name != "bogus" {
		t.Fatalf("Select with bogus token: err = %v", err)
	}
	if !strings.Contains(err.Error(), "-locks=list") {
		t.Errorf("unknown-lock error should point at -locks=list: %q", err)
	}

	if _, err := Select(""); err == nil {
		t.Error("empty spec must not resolve to an empty selection silently")
	}
}

// errorsAs avoids importing errors just for one assertion.
func errorsAs(err error, target **UnknownLockError) bool {
	if e, ok := err.(*UnknownLockError); ok {
		*target = e
		return true
	}
	return false
}

// Capability claims are promises: every declared bit must match the
// constructed lock's actual interface surface and behavior, and every
// undeclared bit must be genuinely absent.
func TestCapabilityClaims(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			l := e.New()

			// Smoke: a fresh lock locks and unlocks.
			l.Lock()
			l.Unlock()

			// TryLock claim ⟺ interface assertion.
			tl, isTry := l.(bounded.TryLocker)
			if isTry != e.Caps.Has(CapTryLock) {
				t.Fatalf("CapTryLock declared %v but TryLocker assertion is %v",
					e.Caps.Has(CapTryLock), isTry)
			}
			if isTry {
				if !tl.TryLock() {
					t.Fatal("TryLock on an unheld lock failed")
				}
				if tl.TryLock() {
					t.Fatal("TryLock on a held lock succeeded")
				}
				tl.Unlock()
				if !tl.TryLock() {
					t.Fatal("TryLock after release failed")
				}
				tl.Unlock()
			}

			// NativeBounded claim ⟺ the lock itself implements the
			// bounded contract (not via the polling adapter).
			bl, isNative := l.(bounded.Locker)
			if isNative != e.Caps.Has(CapNativeBounded) {
				t.Fatalf("CapNativeBounded declared %v but bounded.Locker assertion is %v",
					e.Caps.Has(CapNativeBounded), isNative)
			}
			if isNative {
				if !bl.LockFor(10 * time.Millisecond) {
					t.Fatal("LockFor on an unheld lock failed")
				}
				bl.Unlock()
				bl.Lock()
				if bl.LockFor(time.Millisecond) {
					t.Fatal("LockFor on a held lock succeeded")
				}
				bl.Unlock()
				// The lock must remain usable after an abandoned wait.
				bl.Lock()
				bl.Unlock()
			}

			// Boundable ⟺ the bounded package can adapt it at all.
			if got := bounded.Boundable(e.New()); got != e.Boundable() {
				t.Fatalf("Boundable() = %v but bounded.Boundable = %v", e.Boundable(), got)
			}

			// ReadShared claim ⟺ the rwlock.RWLocker surface, with a
			// working RLock round-trip.
			rw, isRW := l.(rwlock.RWLocker)
			if isRW != e.Caps.Has(CapReadShared) {
				t.Fatalf("CapReadShared declared %v but RWLocker assertion is %v",
					e.Caps.Has(CapReadShared), isRW)
			}
			if isRW {
				rw.RLock()
				rw.RUnlock()
				rw.Lock()
				rw.Unlock()
			}

			// OptimisticRead claim ⟺ the rwlock.OptimisticLocker
			// surface, with working stamp and section round-trips.
			opt, isOpt := l.(rwlock.OptimisticLocker)
			if isOpt != e.Caps.Has(CapOptimisticRead) {
				t.Fatalf("CapOptimisticRead declared %v but OptimisticLocker assertion is %v",
					e.Caps.Has(CapOptimisticRead), isOpt)
			}
			if isOpt {
				s := opt.ReadBegin()
				if !opt.ReadValidate(s) {
					t.Fatal("quiescent optimistic section failed to validate")
				}
				opt.Lock()
				if opt.ReadValidate(s) {
					t.Fatal("stamp validated while a writer holds the lock")
				}
				opt.Unlock()
				ran := false
				opt.OptimisticRead(func() { ran = true })
				if !ran {
					t.Fatal("OptimisticRead never ran its section")
				}
			}

			checkAllocFree(t, e)
		})
	}
}

// checkAllocFree verifies the CapAllocFree claim by reflection: the
// capability means the lock exposes the explicit wait-element API —
// Acquire taking exactly a *core.WaitElement and Release taking
// exactly Acquire's result — and that a round-trip through it works.
func checkAllocFree(t *testing.T, e Entry) {
	t.Helper()
	v := reflect.ValueOf(e.New())
	weType := reflect.TypeOf(&core.WaitElement{})

	acq := v.MethodByName("Acquire")
	hasAPI := acq.IsValid() &&
		acq.Type().NumIn() == 1 && acq.Type().In(0) == weType &&
		acq.Type().NumOut() == 1
	if hasAPI {
		rel := v.MethodByName("Release")
		hasAPI = rel.IsValid() &&
			rel.Type().NumIn() == 1 && rel.Type().In(0) == acq.Type().Out(0)
	}
	if hasAPI != e.Caps.Has(CapAllocFree) {
		t.Fatalf("CapAllocFree declared %v but wait-element API presence is %v",
			e.Caps.Has(CapAllocFree), hasAPI)
	}
	if !hasAPI {
		return
	}
	tok := acq.Call([]reflect.Value{reflect.ValueOf(new(core.WaitElement))})
	v.MethodByName("Release").Call(tok)
	// The explicit API must compose with plain Lock/Unlock.
	l := v.Interface().(sync.Locker)
	l.Lock()
	l.Unlock()
}

// countingSink records park transitions for the CapPark test.
type countingSink struct{ parks atomic.Int64 }

func (s *countingSink) CountSpin()  {}
func (s *countingSink) CountYield() {}
func (s *countingSink) CountPark()  { s.parks.Add(1) }

// CapPark entries must actually block a contended waiter (observed via
// the waiter sink) rather than spin indefinitely. GoMutex is exempt:
// it parks inside the Go runtime, invisible to the repository's sink.
// The converse is deliberately not asserted — the adaptive wait policy
// escalates any long episode to sleeping, so "no parks" is not a
// testable property of non-parking locks.
func TestCapParkBlocksContendedWaiter(t *testing.T) {
	for _, e := range All() {
		if !e.Caps.Has(CapPark) || e.Family == FamilyRuntime {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			sink := &countingSink{}
			waiter.SetSink(sink)
			defer waiter.SetSink(nil)

			l := e.New()
			l.Lock()
			acquired := make(chan struct{})
			go func() {
				l.Lock() // must park: the holder sits on the lock
				l.Unlock()
				close(acquired)
			}()

			deadline := time.After(5 * time.Second)
			for sink.parks.Load() == 0 {
				select {
				case <-deadline:
					t.Fatal("contended waiter never parked")
				case <-time.After(time.Millisecond):
				}
			}
			l.Unlock()
			select {
			case <-acquired:
			case <-deadline:
				t.Fatal("parked waiter was never woken")
			}
		})
	}
}

// Every exported Lock()-bearing type in internal/core and
// internal/locks must appear in the catalog: adding a lock without
// registering it is a build-the-catalog-first repository rule. This
// supersedes the old per-harness completeness check that lived in
// internal/mutexbench.
func TestCatalogComplete(t *testing.T) {
	implemented := map[string]bool{}
	for _, dir := range []string{"../core", "../locks"} {
		pkg := dir[strings.LastIndex(dir, "/")+1:]
		for _, name := range exportedLockTypes(t, dir) {
			implemented[pkg+"."+name] = true
		}
	}

	registered := map[string]bool{}
	for _, e := range All() {
		rt := reflect.TypeOf(e.New())
		for rt.Kind() == reflect.Ptr {
			rt = rt.Elem()
		}
		pkg := rt.PkgPath()
		registered[pkg[strings.LastIndex(pkg, "/")+1:]+"."+rt.Name()] = true
	}

	for name := range implemented {
		if !registered[name] {
			t.Errorf("%s implements sync.Locker but has no catalog entry", name)
		}
	}
	if len(implemented) == 0 {
		t.Fatal("AST scan found no lock types — scan is broken")
	}
}

// exportedLockTypes parses dir and returns the exported receiver type
// names that declare a niladic Lock method.
func exportedLockTypes(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	var out []string
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Name.Name != "Lock" || fn.Recv == nil ||
					len(fn.Type.Params.List) != 0 || fn.Type.Results != nil {
					continue
				}
				recv := fn.Recv.List[0].Type
				if star, ok := recv.(*ast.StarExpr); ok {
					recv = star.X
				}
				id, ok := recv.(*ast.Ident)
				if ok && ast.IsExported(id.Name) {
					out = append(out, id.Name)
				}
			}
		}
	}
	return out
}

// The rw:/seq:/occ: prefixes derive combinator entries over any
// TryLock-capable base; bases without the doorway are rejected, and
// derived entries carry the right capability claims and constructors.
func TestCombinatorLookup(t *testing.T) {
	cases := []struct {
		spec, name string
		caps       Capability
	}{
		{"rw:MCS", "RW:MCS", CapTryLock | CapReadShared},
		{"seq:tkt", "Seq:TKT", CapTryLock | CapOptimisticRead},
		{"occ:clh", "OCC:CLH", CapTryLock | CapOptimisticRead},
		{"RW:GoMutex", "RW:GoMutex", CapTryLock | CapReadShared},
		// Nesting: the outer combinator sees the inner one's TryLock.
		{"rw:seq:MCS", "RW:Seq:MCS", CapTryLock | CapReadShared},
	}
	for _, c := range cases {
		e, ok := Lookup(c.spec)
		if !ok {
			t.Fatalf("Lookup(%q) failed", c.spec)
		}
		if e.Name != c.name || e.Caps != c.caps || e.Family != FamilyCombinator {
			t.Fatalf("Lookup(%q) = {Name:%s Caps:%v Family:%s}, want {%s %v combinator}",
				c.spec, e.Name, e.Caps, e.Family, c.name, c.caps)
		}
		l := e.New()
		l.Lock()
		l.Unlock()
		if _, isRW := l.(rwlock.RWLocker); isRW != e.Caps.Has(CapReadShared) {
			t.Fatalf("%s: RWLocker surface %v mismatches claim", e.Name, isRW)
		}
		if _, isOpt := l.(rwlock.OptimisticLocker); isOpt != e.Caps.Has(CapOptimisticRead) {
			t.Fatalf("%s: OptimisticLocker surface %v mismatches claim", e.Name, isOpt)
		}
	}
	for _, bad := range []string{"rw:Gated", "seq:TwoLane", "rw:bogus", "rw:", "occ:"} {
		if _, ok := Lookup(bad); ok {
			t.Errorf("Lookup(%q) resolved; want rejection", bad)
		}
	}
	// Derived entries flow through Select like catalog rows.
	es, err := Select("rw:MCS,seq:MCS")
	if err != nil || len(es) != 2 {
		t.Fatalf("Select over combinator specs: %v, err %v", es, err)
	}
}

// The full decorator pipeline must preserve the read-path surfaces of
// read-capable entries — a chaos veto, a bounded adapter, or lockstat
// instrumentation must never cost a lock its RLock/OptimisticRead.
func TestBuildPreservesReadSurfaces(t *testing.T) {
	opts := []Option{WithChaosVeto(""), WithBounded(), WithStats(nil)}
	for _, name := range []string{"RW-Recipro", "GoRWMutex", "rw:MCS"} {
		l, err := Build(name, opts...)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		rw, ok := l.(rwlock.RWLocker)
		if !ok {
			t.Fatalf("built %s lost its RWLocker surface (%T)", name, l)
		}
		rw.RLock()
		rw.RUnlock()
		rw.Lock()
		rw.Unlock()
	}
	for _, name := range []string{"Seq-Recipro", "OCC-Recipro", "seq:TKT", "occ:CLH"} {
		l, err := Build(name, opts...)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		opt, ok := l.(rwlock.OptimisticLocker)
		if !ok {
			t.Fatalf("built %s lost its OptimisticLocker surface (%T)", name, l)
		}
		s := opt.ReadBegin()
		_ = opt.ReadValidate(s) // may be vetoed; must not panic
		ran := false
		opt.OptimisticRead(func() { ran = true })
		if !ran {
			t.Fatalf("built %s OptimisticRead never ran its section", name)
		}
		opt.Lock()
		opt.Unlock()
	}
}

func TestBoundedTier(t *testing.T) {
	cases := map[string]string{
		"Recipro": "native", "MCS": "native", "TWA": "polling",
		"HemLock": "polling", "Gated": "-", "TwoLane": "-",
	}
	for name, want := range cases {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if got := e.BoundedTier(); got != want {
			t.Errorf("%s.BoundedTier() = %q, want %q", name, got, want)
		}
	}
}

func TestCapabilityString(t *testing.T) {
	if got := (CapTryLock | CapPark).String(); got != "TryLock|Park" {
		t.Errorf("String() = %q", got)
	}
	if got := Capability(0).String(); got != "-" {
		t.Errorf("empty String() = %q", got)
	}
}
