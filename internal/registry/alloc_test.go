package registry

import (
	"testing"
	"time"

	"repro/internal/bounded"
	"repro/internal/clock"
)

// The zero-overhead guard for the clock refactor: threading an
// injected clock.Clock through every lock added a pointer field and an
// interface read on the slow paths only — the uncontended Lock/Unlock
// and LockFor fast paths must still run allocation-free, under the
// default wall clock and under an injected virtual clock alike. A
// regression here means the substrate stopped being free when unused.

// allocLocks are the fast paths the PR pins: the paper's lock and the
// two queue baselines the vtime schedules run.
var allocLocks = []string{"Recipro", "MCS", "CLH"}

func buildForAlloc(t *testing.T, name string, virtual bool) (bounded.Locker, *clock.Virtual) {
	t.Helper()
	opts := []Option{WithBounded()}
	var v *clock.Virtual
	if virtual {
		v = clock.NewVirtual()
		opts = append(opts, WithClock(v))
	}
	l, err := Build(name, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return l.(bounded.Locker), v
}

func TestLockUnlockFastPathAllocFree(t *testing.T) {
	for _, name := range allocLocks {
		for _, virtual := range []bool{false, true} {
			b, _ := buildForAlloc(t, name, virtual)
			// Warm element/node pools so the measurement sees the steady
			// state, not first-use pool fills.
			for i := 0; i < 64; i++ {
				b.Lock()
				b.Unlock()
			}
			if n := testing.AllocsPerRun(2000, func() {
				b.Lock()
				b.Unlock()
			}); n != 0 {
				t.Errorf("%s (virtual=%v): Lock/Unlock fast path allocates %.1f/op, want 0", name, virtual, n)
			}
		}
	}
}

func TestLockForFastPathAllocFree(t *testing.T) {
	for _, name := range allocLocks {
		for _, virtual := range []bool{false, true} {
			b, _ := buildForAlloc(t, name, virtual)
			for i := 0; i < 64; i++ {
				if !b.LockFor(time.Millisecond) {
					t.Fatalf("%s: uncontended LockFor failed", name)
				}
				b.Unlock()
			}
			if n := testing.AllocsPerRun(2000, func() {
				if !b.LockFor(time.Millisecond) {
					panic("uncontended LockFor failed")
				}
				b.Unlock()
			}); n != 0 {
				t.Errorf("%s (virtual=%v): LockFor fast path allocates %.1f/op, want 0", name, virtual, n)
			}
		}
	}
}
