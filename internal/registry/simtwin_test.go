package registry

import (
	"testing"

	"repro/internal/simlocks"
)

// The CapSimTwin capability must be an honest claim in both directions:
// a declared twin name without the capability bit (or vice versa) would
// silently drop the entry from the differential conformance tier, and a
// twin name that no longer resolves in simlocks would turn the tier
// into a hard failure. The paper-set queue/ticket locks and the two
// Reciprocating variants with simulator models are required to stay in
// the differential tier.
func TestSimTwinClaims(t *testing.T) {
	required := map[string]bool{
		"Recipro": false, "Recipro-L2": false,
		"CLH": false, "MCS": false, "TKT": false,
	}
	for _, e := range All() {
		if e.Caps.Has(CapSimTwin) != (e.SimTwin != "") {
			t.Errorf("%s: CapSimTwin=%v but SimTwin=%q — capability and field must agree",
				e.Name, e.Caps.Has(CapSimTwin), e.SimTwin)
		}
		if e.SimTwin == "" {
			continue
		}
		mk := simlocks.ByName(e.SimTwin)
		if mk == nil {
			t.Errorf("%s: sim twin %q does not resolve via simlocks.ByName", e.Name, e.SimTwin)
			continue
		}
		if got := mk().Name(); got != e.SimTwin {
			t.Errorf("%s: simlocks.ByName(%q) returned model %q", e.Name, e.SimTwin, got)
		}
		if _, ok := required[e.Name]; ok {
			required[e.Name] = true
		}
	}
	for name, seen := range required {
		if !seen {
			t.Errorf("%s must declare a sim twin (differential conformance floor)", name)
		}
	}
}
