package registry

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseLocks drives arbitrary selection specs through the shared
// -locks parsing path (LocksFlag.Set → Resolve → Select) and checks
// its structural guarantees on every input:
//
//   - never panics, whatever bytes arrive (junk must produce an
//     UnknownLockError, not a crash);
//   - a successful selection is non-empty, duplicate-free, and every
//     returned entry is a live catalog entry with a usable factory;
//   - "list" (any case, surrounding space) always lists, never selects;
//   - resolution is case-insensitive: a spec and its lower-cased form
//     agree on success and on the selected names.
func FuzzParseLocks(f *testing.F) {
	seeds := []string{
		"paper", "all", "list", " List ", "ALL",
		"paper,all", "TKT,MCS,CLH", "tkt , mcs ,tkt", "recipro",
		"Recipro-L2park", "mutex", ",,,", "", "paper,TKT",
		"no-such-lock", "TKT;MCS", "all,паперъ", "\x00\xff", "TKT,",
	}
	for _, e := range All() {
		seeds = append(seeds, e.Name)
		seeds = append(seeds, e.Aliases...)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		lf := NewLocksFlag("paper")
		if err := lf.Set(spec); err != nil {
			t.Fatalf("Set(%q) = %v; Set defers validation and must not fail", spec, err)
		}
		var buf strings.Builder
		entries, listed, err := lf.Resolve(&buf)
		if listed {
			if !strings.EqualFold(strings.TrimSpace(spec), "list") {
				t.Fatalf("Resolve(%q) listed, but the spec is not 'list'", spec)
			}
			if entries != nil || err != nil || !strings.Contains(buf.String(), "Lock catalog") {
				t.Fatalf("list mode: entries=%v err=%v output=%q", entries, err, buf.String())
			}
			return
		}
		if err != nil {
			if entries != nil {
				t.Fatalf("Resolve(%q) returned entries alongside error %v", spec, err)
			}
			return
		}
		if len(entries) == 0 {
			t.Fatalf("Resolve(%q) succeeded with zero entries", spec)
		}
		seen := map[string]bool{}
		for _, e := range entries {
			if seen[e.Name] {
				t.Fatalf("Resolve(%q) returned %s twice", spec, e.Name)
			}
			seen[e.Name] = true
			live, ok := Lookup(e.Name)
			if !ok || live.Name != e.Name {
				t.Fatalf("Resolve(%q) returned %q, which Lookup does not resolve", spec, e.Name)
			}
			if e.New == nil {
				t.Fatalf("entry %s has a nil factory", e.Name)
			}
		}
		// Case-insensitivity (only meaningful for valid UTF-8: ToLower
		// replaces invalid bytes with the replacement rune).
		if utf8.ValidString(spec) {
			lower := NewLocksFlag("paper")
			lower.Set(strings.ToLower(spec))
			lentries, _, lerr := lower.Resolve(&buf)
			if lerr != nil {
				t.Fatalf("Resolve(%q) passed but its lower-case form failed: %v", spec, lerr)
			}
			if len(lentries) != len(entries) {
				t.Fatalf("Resolve(%q) selected %d entries, lower-case form %d", spec, len(entries), len(lentries))
			}
			for i := range entries {
				if entries[i].Name != lentries[i].Name {
					t.Fatalf("Resolve(%q) order diverges from lower-case form at %d: %s vs %s",
						spec, i, entries[i].Name, lentries[i].Name)
				}
			}
		}
	})
}
