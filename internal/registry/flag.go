package registry

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/table"
)

// FlagUsage is the shared help text for the -locks flag. Every
// lock-consuming command (mutexbench, kvbench, torture, atomicbench)
// registers the flag with this exact usage so the selection syntax is
// identical everywhere.
const FlagUsage = "comma-separated lock names/aliases, 'paper' (Figure 1 set), 'all', or 'list' to print the catalog with its capability matrix"

// LocksFlag is the shared -locks flag value. It implements flag.Value;
// register it with flag.Var and interpret it after flag.Parse with
// Resolve:
//
//	locksF := registry.NewLocksFlag("paper")
//	flag.Var(locksF, "locks", registry.FlagUsage)
//	flag.Parse()
//	lfs, listed, err := locksF.Resolve(os.Stdout)
//	if err != nil { ... os.Exit(2) }
//	if listed { return }
type LocksFlag struct {
	spec string
	def  string
}

// NewLocksFlag returns a flag value whose unset default is the given
// selection spec ("paper" or "all").
func NewLocksFlag(def string) *LocksFlag { return &LocksFlag{def: def} }

// String reports the effective spec (the default until Set is called).
func (f *LocksFlag) String() string {
	if f == nil || f.spec == "" {
		if f == nil {
			return ""
		}
		return f.def
	}
	return f.spec
}

// Set records the spec. Validation is deferred to Resolve so that
// "list" — not a selection — is accepted.
func (f *LocksFlag) Set(s string) error {
	f.spec = s
	return nil
}

// Resolve interprets the flag. For the literal spec "list" it prints
// the capability catalog to list and reports listed=true (the caller
// should exit without running); otherwise it returns the selected
// entries in selection order.
func (f *LocksFlag) Resolve(list io.Writer) (entries []Entry, listed bool, err error) {
	spec := f.String()
	if strings.EqualFold(strings.TrimSpace(spec), "list") {
		FprintCatalog(list)
		return nil, true, nil
	}
	entries, err = Select(spec)
	return entries, false, err
}

// FprintCatalog renders the full catalog with its capability matrix —
// the output of "-locks list".
func FprintCatalog(w io.Writer) {
	t := table.New("Lock catalog — capability matrix",
		"Lock", "Aliases", "Family", "Paper", "TryLock", "Bounded", "Park", "AllocFree", "SimTwin", "ReadShared", "OptRead", "Description")
	for _, e := range All() {
		twin := e.SimTwin
		if twin == "" {
			twin = "-"
		}
		t.Add(e.Name,
			strings.Join(e.Aliases, ","),
			string(e.Family),
			yn(e.Paper),
			yn(e.Caps.Has(CapTryLock)),
			e.BoundedTier(),
			yn(e.Caps.Has(CapPark)),
			yn(e.Caps.Has(CapAllocFree)),
			twin,
			yn(e.Caps.Has(CapReadShared)),
			yn(e.Caps.Has(CapOptimisticRead)),
			e.Doc)
	}
	t.Render(w)
	fmt.Fprintln(w, "\nBounded: native = abandonable in-algorithm LockFor/LockCtx; polling = TryLock retry fallback (barges).")
	fmt.Fprintln(w, "SimTwin: the internal/simlocks model checked against this lock by the differential conformance harness.")
	fmt.Fprintln(w, "ReadShared/OptRead: RLock shared readers / version-stamped optimistic reads; derive over any TryLock base with rw:<lock>, seq:<lock>, occ:<lock>.")
	fmt.Fprintln(w, "Select with -locks=<name,...|paper|all>; names and aliases are case-insensitive.")
}

func yn(v bool) string {
	if v {
		return "yes"
	}
	return "-"
}
