package registry

import (
	"os"
	"strings"
	"testing"
)

func TestLocksFlagDefault(t *testing.T) {
	f := NewLocksFlag("paper")
	if f.String() != "paper" {
		t.Fatalf("default spec = %q", f.String())
	}
	lfs, listed, err := f.Resolve(nil)
	if err != nil || listed {
		t.Fatalf("Resolve default: listed=%v err=%v", listed, err)
	}
	if len(lfs) != len(Paper()) {
		t.Fatalf("default resolved %d entries, want the paper set", len(lfs))
	}
}

func TestLocksFlagSelection(t *testing.T) {
	f := NewLocksFlag("all")
	if err := f.Set("mcs,L2park"); err != nil {
		t.Fatal(err)
	}
	lfs, listed, err := f.Resolve(nil)
	if err != nil || listed {
		t.Fatalf("listed=%v err=%v", listed, err)
	}
	if len(lfs) != 2 || lfs[0].Name != "MCS" || lfs[1].Name != "Recipro-L2park" {
		t.Fatalf("resolved %+v", lfs)
	}

	f.Set("bogus")
	if _, _, err := f.Resolve(nil); err == nil {
		t.Fatal("bogus spec resolved")
	}
}

func TestLocksFlagList(t *testing.T) {
	f := NewLocksFlag("paper")
	f.Set("list")
	var buf strings.Builder
	lfs, listed, err := f.Resolve(&buf)
	if err != nil || !listed || lfs != nil {
		t.Fatalf("list: entries=%v listed=%v err=%v", lfs, listed, err)
	}
	out := buf.String()
	if !strings.Contains(out, "Lock catalog") {
		t.Fatal("list output missing title")
	}
	// Every catalog row and every capability column header must appear.
	for _, e := range All() {
		if !strings.Contains(out, e.Name) {
			t.Errorf("list output missing entry %s", e.Name)
		}
	}
	for _, h := range []string{"TryLock", "Bounded", "Park", "AllocFree", "Family", "Paper", "SimTwin", "ReadShared", "OptRead"} {
		if !strings.Contains(out, h) {
			t.Errorf("list output missing column %s", h)
		}
	}
}

// The capability matrix published in ALGORITHMS.md must match the live
// catalog row for row — documentation cannot drift from the registry.
func TestDocsMatrixMatchesCatalog(t *testing.T) {
	raw, err := os.ReadFile("../../ALGORITHMS.md")
	if err != nil {
		t.Fatal(err)
	}
	const begin, end = "<!-- registry-capability-matrix:begin -->", "<!-- registry-capability-matrix:end -->"
	doc := string(raw)
	i, j := strings.Index(doc, begin), strings.Index(doc, end)
	if i < 0 || j < i {
		t.Fatal("ALGORITHMS.md lost its registry-capability-matrix markers")
	}

	yn := func(v bool) string {
		if v {
			return "yes"
		}
		return "-"
	}
	twin := func(e Entry) string {
		if e.SimTwin == "" {
			return "-"
		}
		return e.SimTwin
	}
	var rows []string
	for _, line := range strings.Split(doc[i+len(begin):j], "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") || strings.HasPrefix(line, "| Lock") || strings.HasPrefix(line, "|--") {
			continue
		}
		rows = append(rows, line)
	}
	all := All()
	if len(rows) != len(all) {
		t.Fatalf("ALGORITHMS.md matrix has %d rows, catalog has %d entries", len(rows), len(all))
	}
	for k, e := range all {
		want := "| " + strings.Join([]string{
			e.Name, string(e.Family), yn(e.Paper),
			yn(e.Caps.Has(CapTryLock)), e.BoundedTier(),
			yn(e.Caps.Has(CapPark)), yn(e.Caps.Has(CapAllocFree)),
			twin(e),
			yn(e.Caps.Has(CapReadShared)), yn(e.Caps.Has(CapOptimisticRead)),
		}, " | ") + " |"
		if rows[k] != want {
			t.Errorf("ALGORITHMS.md matrix row %d:\n  doc:     %s\n  catalog: %s", k, rows[k], want)
		}
	}
}
