package registry

import (
	"testing"
	"time"

	"repro/internal/bounded"
	"repro/internal/clock"
)

// Entries whose base lock accepts no injected clock: the Go runtime
// baselines wait inside the runtime, which we cannot re-clock.
var unclockable = map[string]bool{"GoMutex": true, "GoRWMutex": true}

// Every catalog entry either builds under WithClock (through the full
// veto+bounded+stats pipeline where supported) or is a known runtime
// baseline that must refuse, so a virtual-time harness can never
// silently get a wall-clocked lock.
func TestBuildWithClockCoverage(t *testing.T) {
	v := clock.NewVirtual()
	for _, e := range All() {
		l, err := e.Build(WithClock(v))
		if unclockable[e.Name] {
			if err == nil {
				t.Errorf("%s: expected clock-injection refusal, got a lock", e.Name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: WithClock build failed: %v", e.Name, err)
			continue
		}
		// The built lock must still work (uncontended paths never touch
		// the clock, so no driving is needed).
		l.Lock()
		l.Unlock()
	}
}

// A bounded acquisition against a held lock expires on virtual time:
// no wall waiting beyond the hot spin phase, and the reported timeout
// arrives only once the virtual clock passes the deadline.
func TestBuildWithClockVirtualLockForExpires(t *testing.T) {
	v := clock.NewVirtual()
	l, err := Build("Recipro", WithClock(v), WithBounded())
	if err != nil {
		t.Fatal(err)
	}
	b := l.(bounded.Locker)
	l.Lock()
	res := make(chan bool, 1)
	go func() { res <- b.LockFor(10 * time.Millisecond) }()
	// Drive the virtual clock until the waiter's escalated (virtual)
	// sleeps carry it past the deadline.
	deadline := time.Now().Add(30 * time.Second)
	for {
		select {
		case ok := <-res:
			if ok {
				t.Fatal("LockFor acquired a held lock")
			}
			if now := v.Now(); now < 10*time.Millisecond {
				t.Fatalf("timeout reported at virtual %v, before the 10ms deadline", now)
			}
			l.Unlock()
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("LockFor never expired under the virtual clock")
		}
		v.Advance(time.Millisecond)
		time.Sleep(50 * time.Microsecond)
	}
}
