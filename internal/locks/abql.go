package locks

import (
	"sync/atomic"

	"repro/internal/pad"
	"repro/internal/waiter"
)

// ABQLock is Anderson's array-based queue lock [5, 6]: a ticket lock
// whose waiters each spin on a private slot of a per-lock array,
// giving FIFO admission with local spinning. Its drawbacks — the
// reason §5 excludes this family for general-purpose use — are the
// T*L space footprint and the fixed capacity: the maximum number of
// simultaneous participants must be known when the lock is created.
type ABQLock struct {
	slots []struct {
		flag atomic.Uint32
		_    [pad.SectorSize - 4]byte
	}
	ticket atomic.Uint64
	// self is the owner's slot index (acquire-to-release context,
	// owner-owned).
	self   uint64
	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock
}

// NewABQL creates a lock supporting at most capacity simultaneous
// participants (holders plus waiters).
func NewABQL(capacity int) *ABQLock {
	if capacity < 1 {
		panic("locks: ABQL capacity must be positive")
	}
	l := &ABQLock{}
	l.slots = make([]struct {
		flag atomic.Uint32
		_    [pad.SectorSize - 4]byte
	}, capacity)
	l.slots[0].flag.Store(1) // slot 0 starts granted
	return l
}

// Lock acquires l. More than cap simultaneous participants is a usage
// error and corrupts the queue, exactly as with the original.
func (l *ABQLock) Lock() {
	tx := l.ticket.Add(1) - 1
	idx := tx % uint64(len(l.slots))
	w := waiter.NewClocked(l.Policy, l.Clk)
	for l.slots[idx].flag.Load() == 0 {
		w.Pause()
	}
	l.slots[idx].flag.Store(0) // consume the grant for the next lap
	l.self = idx
}

// TryLock attempts a non-blocking acquire. Soundness: a posted grant
// in slot ticket%cap can only belong to ticket itself — a stale-lap
// coincidence would require more than Capacity simultaneous
// participants, which is excluded by the lock's usage contract — so
// observing flag==1 for the current ticket value and then winning the
// ticket CAS proves the lock was free and hands us that grant. Racing
// TryLocks are serialized by the CAS; the loser never touches the
// slot.
func (l *ABQLock) TryLock() bool {
	if siteTryABQL.Fail() {
		return false
	}
	t := l.ticket.Load()
	idx := t % uint64(len(l.slots))
	if l.slots[idx].flag.Load() == 0 {
		return false
	}
	if !l.ticket.CompareAndSwap(t, t+1) {
		return false
	}
	l.slots[idx].flag.Store(0)
	l.self = idx
	return true
}

// Unlock releases l, granting the next slot.
func (l *ABQLock) Unlock() {
	next := (l.self + 1) % uint64(len(l.slots))
	l.slots[next].flag.Store(1)
}

// Capacity reports the maximum supported participants.
func (l *ABQLock) Capacity() int { return len(l.slots) }
