package locks

import (
	"sync/atomic"

	"repro/internal/futex"
	"repro/internal/waiter"
)

// FutexMutex is the classic three-state futex mutex (Drepper,
// "Futexes Are Tricky") — the shape of the default Linux
// pthread_mutex that §5 contrasts Reciprocating Locks with: compact
// and fast, but non-FIFO, with barging admission and therefore
// unbounded bypass and potential indefinite starvation. It serves as
// the "real-world default" baseline for the bypass-bound experiments.
//
// States: 0 unlocked, 1 locked, 2 locked with (possible) waiters.
// The zero value is an unlocked mutex.
type FutexMutex struct {
	state  atomic.Uint32
	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock
}

// Lock acquires m.
func (m *FutexMutex) Lock() {
	if m.state.CompareAndSwap(0, 1) {
		return // uncontended fast path
	}
	// Short adaptive spin before sleeping, like adaptive pthread
	// mutexes.
	w := waiter.NewClocked(m.Policy, m.Clk)
	for i := 0; i < 32; i++ {
		if m.state.Load() == 0 && m.state.CompareAndSwap(0, 1) {
			return
		}
		w.Pause()
	}
	// Slow path: advertise waiters and sleep. Swapping 2 both claims
	// the lock when it was free and marks contention when it wasn't.
	for m.state.Swap(2) != 0 {
		// Futex parks bypass Pause; report them to the telemetry
		// sink through the waiter's attached sink.
		if s := w.Sink(); s != nil {
			s.CountPark()
		}
		futex.Wait(&m.state, 2)
	}
}

// Unlock releases m, waking one waiter if contention was advertised.
func (m *FutexMutex) Unlock() {
	if m.state.Swap(0) == 2 {
		futex.Wake(&m.state, 1)
	}
}

// TryLock attempts a non-blocking acquire.
func (m *FutexMutex) TryLock() bool { return m.state.CompareAndSwap(0, 1) }
