package locks

import "repro/internal/clock"

// Clock aliases clock.Clock so each baseline's struct can declare its
// Clk field without every file importing the clock package.
type Clock = clock.Clock

// SetClock implementations: every baseline satisfies clock.Clocked, so
// registry.WithClock can thread an injected time source (nil restores
// the wall clock) through any catalog entry. The clock paces waiting —
// park sleeps and bounded-acquisition deadlines — and is read only on
// those slow paths; the uncontended fast paths never touch it.

func (l *TASLock) SetClock(c clock.Clock)            { l.Clk = c }
func (l *TTASLock) SetClock(c clock.Clock)           { l.Clk = c }
func (l *TicketLock) SetClock(c clock.Clock)         { l.Clk = c }
func (l *MCSLock) SetClock(c clock.Clock)            { l.Clk = c }
func (l *CLHLock) SetClock(c clock.Clock)            { l.Clk = c }
func (l *ChenLock) SetClock(c clock.Clock)           { l.Clk = c }
func (l *ABQLock) SetClock(c clock.Clock)            { l.Clk = c }
func (l *RetrogradeLock) SetClock(c clock.Clock)     { l.Clk = c }
func (l *RetrogradeRandLock) SetClock(c clock.Clock) { l.Clk = c }
func (l *HemLock) SetClock(c clock.Clock)            { l.Clk = c }
func (l *TWALock) SetClock(c clock.Clock)            { l.Clk = c }
func (m *FutexMutex) SetClock(c clock.Clock)         { m.Clk = c }

var (
	_ clock.Clocked = (*TASLock)(nil)
	_ clock.Clocked = (*TTASLock)(nil)
	_ clock.Clocked = (*TicketLock)(nil)
	_ clock.Clocked = (*MCSLock)(nil)
	_ clock.Clocked = (*CLHLock)(nil)
	_ clock.Clocked = (*ChenLock)(nil)
	_ clock.Clocked = (*ABQLock)(nil)
	_ clock.Clocked = (*RetrogradeLock)(nil)
	_ clock.Clocked = (*RetrogradeRandLock)(nil)
	_ clock.Clocked = (*HemLock)(nil)
	_ clock.Clocked = (*TWALock)(nil)
	_ clock.Clocked = (*FutexMutex)(nil)
)
