package locks

import (
	"sync/atomic"

	"repro/internal/waiter"
)

// RetrogradeLock is Appendix G's retrograde ticket lock (Listing 7):
// a classic ticket-lock doorway whose Release walks the entry segment
// in *descending* ticket order, reproducing the admission schedule of
// Reciprocating Locks (LIFO within a segment, FIFO between segments)
// inside a ticket framework. Top and Base are accessed only by the
// current holder — the lock protects its own bookkeeping.
//
// Invariant: Ticket >= Top >= Grant >= Base. Tickets in (Base, Top]
// are the entry segment, admitted in reverse; (Top, Ticket) is the
// arrival segment. 64-bit tickets make overflow a non-issue.
//
// The zero value is an unlocked lock.
type RetrogradeLock struct {
	ticket atomic.Int64
	grant  atomic.Int64
	// top and base are owner-owned (Listing 7: "only the current lock
	// holder accesses Top and Base").
	top    int64
	base   int64
	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock
}

// Lock acquires l; the doorway is identical to the classic ticket
// lock.
func (l *RetrogradeLock) Lock() {
	tx := l.ticket.Add(1) - 1
	w := waiter.NewClocked(l.Policy, l.Clk)
	for l.grant.Load() != tx {
		w.Pause()
	}
}

// TryLock attempts a non-blocking acquire. The CAS on the ticket word
// is sound because tickets are monotone and Ticket >= Grant always
// holds: success means the ticket word still equalled the loaded grant
// value at the CAS, which pins Grant == Ticket (free) at that instant,
// and we took ticket g exactly as Lock's fetch-add would have. The
// owner-side segment bookkeeping (top/base) is read only at Unlock, so
// a try-acquired episode releases identically to a queued one.
func (l *RetrogradeLock) TryLock() bool {
	if siteTryRetro.Fail() {
		return false
	}
	g := l.grant.Load()
	return l.ticket.CompareAndSwap(g, g+1)
}

// Unlock releases l, admitting the entry segment in descending ticket
// order and reprovisioning it from the arrivals when exhausted.
func (l *RetrogradeLock) Unlock() {
	g := l.grant.Load() - 1
	if g > l.base {
		// Region of reverse admission: keep walking backward.
		l.grant.Store(g)
		return
	}
	hi := l.top
	l.base = hi
	tmp := l.ticket.Load()
	l.top = tmp - 1
	if tmp == hi+1 {
		// Apparently no waiters: revert to unlocked (Ticket==Grant).
		// Benign if Ticket advances concurrently after the load — the
		// newcomer will be admitted by its own spin once we store.
		l.top = tmp
		l.base = tmp
		l.grant.Store(tmp)
	} else {
		// Waiters exist: the arrival segment (hi, tmp-1] becomes the
		// entry segment, admitted from its most recent arrival.
		l.grant.Store(tmp - 1)
	}
}

// RetrogradeRandLock is Appendix G's randomized succession variant:
// the Release operator usually extracts the successor from the head
// of the remaining entry segment (the most recently arrived thread —
// retrograde order) but occasionally, governed by a CountDown counter
// refreshed from a Marsaglia xorshift generator, extracts from the
// tail instead. Ticket-based succession permits admitting an
// arbitrary segment member in constant time — latitude Reciprocating
// Locks itself lacks — and the stochastic head/tail mix breaks
// long-term palindromic unfairness while preserving bounded bypass
// (all reordering is intra-segment).
//
// The zero value is an unlocked lock with TailPeriod defaulted.
type RetrogradeRandLock struct {
	ticket atomic.Int64
	grant  atomic.Int64

	// Owner-owned: the remaining (un-admitted) entry segment is the
	// half-open ticket interval [lo, hi); seghi is the highest ticket
	// consumed by segments or direct admission so far; countdown
	// triggers the occasional tail extraction; rng drives refreshes.
	lo, hi    int64
	seghi     int64
	countdown int64
	rng       uint64

	// TailPeriod is the mean number of head extractions between tail
	// extractions (the Bernoulli bias M). Zero selects 8.
	TailPeriod int
	Policy     waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock
}

// Lock acquires l (classic ticket doorway).
func (l *RetrogradeRandLock) Lock() {
	tx := l.ticket.Add(1) - 1
	w := waiter.NewClocked(l.Policy, l.Clk)
	for l.grant.Load() != tx {
		w.Pause()
	}
}

// TryLock attempts a non-blocking acquire; same soundness argument as
// RetrogradeLock.TryLock (lo/hi/seghi are owner-owned and consulted
// only at Unlock).
func (l *RetrogradeRandLock) TryLock() bool {
	if siteTryRetroRand.Fail() {
		return false
	}
	g := l.grant.Load()
	return l.ticket.CompareAndSwap(g, g+1)
}

// Unlock releases l.
func (l *RetrogradeRandLock) Unlock() {
	if l.lo < l.hi {
		// Entry segment non-empty: pick head (retrograde) unless the
		// countdown has expired, then pick tail (prograde) and
		// refresh the countdown with a small uniform random value.
		var nxt int64
		l.countdown--
		if l.countdown > 0 {
			l.hi--
			nxt = l.hi
		} else {
			nxt = l.lo
			l.lo++
			l.countdown = 1 + int64(l.nextRand())
		}
		l.grant.Store(nxt)
		return
	}
	// Reprovision: arrivals are (seghi, tmp-1].
	tmp := l.ticket.Load()
	if tmp == l.seghi+1 {
		// No waiters: unlock with Ticket==Grant; the next arrival
		// (ticket tmp) is admitted directly and counts as consumed.
		l.seghi = tmp
		l.grant.Store(tmp)
		return
	}
	// The arrival segment becomes the new entry segment; admit its
	// most recent member now.
	l.lo = l.seghi + 1
	l.hi = tmp - 1 // half-open: members are [lo, tmp-1), plus nxt below
	l.seghi = tmp - 1
	l.grant.Store(tmp - 1)
}

// nextRand draws a small uniform value in [0, TailPeriod).
func (l *RetrogradeRandLock) nextRand() uint32 {
	m := l.TailPeriod
	if m <= 0 {
		m = 8
	}
	x := l.rng
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	l.rng = x
	// Marsaglia xorshift (the "simple low-latency low-quality"
	// generator Appendix G recommends), inlined to keep Release flat.
	return uint32((uint64(uint32(x)) * uint64(m)) >> 32)
}
