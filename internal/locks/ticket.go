package locks

import (
	"sync/atomic"

	"repro/internal/waiter"
)

// TicketLock is the classic FIFO ticket lock (TKT): two words,
// constant-time doorway and release, excellent uncontended latency,
// but all waiters spin globally on the grant word, so each handoff
// invalidates every waiter's cache line — T misses per episode (§6,
// Table 1).
//
// The zero value is an unlocked lock.
type TicketLock struct {
	ticket atomic.Uint64
	grant  atomic.Uint64
	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock
}

// Lock acquires l.
func (l *TicketLock) Lock() {
	tx := l.ticket.Add(1) - 1
	w := waiter.NewClocked(l.Policy, l.Clk)
	for l.grant.Load() != tx {
		w.Pause()
	}
}

// Unlock releases l. Only the holder writes grant, so a plain
// load-increment-store suffices (no atomic RMW in Release).
func (l *TicketLock) Unlock() {
	l.grant.Store(l.grant.Load() + 1)
}

// TryLock attempts a non-blocking acquire.
func (l *TicketLock) TryLock() bool {
	if siteTryTicket.Fail() {
		return false
	}
	g := l.grant.Load()
	return l.ticket.CompareAndSwap(g, g+1)
}

// Holder reports the currently granted ticket (diagnostics).
func (l *TicketLock) Holder() uint64 { return l.grant.Load() }
