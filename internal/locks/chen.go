package locks

import (
	"sync/atomic"

	"repro/internal/pad"
	"repro/internal/waiter"
)

// chenNode is a Chen-lock stack element; it carries no flag because
// all waiting is global: waiters watch the lock's central current
// word for their own element's address.
type chenNode struct {
	_ [pad.SectorSize]byte
}

// chenNEMO is the locked-with-empty-stack sentinel.
var chenNEMO chenNode

// ChenLock models Chen & Huang's fair, space-efficient mutual
// exclusion algorithm [11, 12] — the closest related work to
// Reciprocating Locks (§6): arriving threads exchange themselves onto
// a LIFO stack; a new stack is detached ("closed") when the current
// one is exhausted, giving the same LIFO-within/FIFO-between
// admission order and bounded-bypass property as Reciprocating.
// The difference the paper emphasizes: ownership is published through
// central shared words (current and eos), so every waiter spins
// globally and every release mutates shared globals, increasing
// coherence traffic.
//
// The zero value is an unlocked lock.
type ChenLock struct {
	arrivals atomic.Pointer[chenNode]
	_        [pad.SectorSize - 8]byte
	// current globally publishes the element now admitted; all
	// waiters spin here (global spinning — the key contrast with
	// Reciprocating's local spinning).
	current atomic.Pointer[chenNode]
	_       [pad.SectorSize - 8]byte
	// eos publishes the detached segment's zombie terminus.
	eos atomic.Pointer[chenNode]
	_   [pad.SectorSize - 8]byte

	// Owner-owned context.
	succ *chenNode
	cur  *chenNode

	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock
}

// Lock acquires l.
func (l *ChenLock) Lock() {
	e := &chenNode{} // cheap: contains only padding; no pool needed
	succ := l.arrivals.Swap(e)
	if succ == nil {
		// Uncontended: publish ourselves as the prospective terminus.
		l.eos.Store(e)
		l.succ, l.cur = nil, e
		return
	}
	if succ == &chenNEMO {
		succ = nil
	}
	// Global spinning on the central current word.
	w := waiter.NewClocked(l.Policy, l.Clk)
	for l.current.Load() != e {
		w.Pause()
	}
	if veos := l.eos.Load(); veos == succ && succ != nil {
		succ = nil
		l.eos.Store(&chenNEMO)
	}
	l.succ, l.cur = succ, e
}

// Unlock releases l; every contended release writes the shared
// current word.
func (l *ChenLock) Unlock() {
	succ, e := l.succ, l.cur
	l.succ, l.cur = nil, nil
	if succ != nil {
		l.current.Store(succ)
		return
	}
	k := l.arrivals.Load()
	if k == e || k == &chenNEMO {
		if l.arrivals.CompareAndSwap(k, nil) {
			return
		}
	}
	w := l.arrivals.Swap(&chenNEMO)
	l.current.Store(w)
}

// TryLock attempts a non-blocking acquire: the mirror of the
// Reciprocating TryLock, claiming the empty arrival word with the
// locked-empty sentinel and clearing the zombie-terminus word so a
// waiter queuing behind this episode cannot observe a stale marker.
func (l *ChenLock) TryLock() bool {
	if siteTryChen.Fail() {
		return false
	}
	if l.arrivals.CompareAndSwap(nil, &chenNEMO) {
		l.eos.Store(&chenNEMO)
		l.succ, l.cur = nil, nil
		return true
	}
	return false
}
