package locks

import (
	"sync"
	"sync/atomic"

	"repro/internal/pad"
	"repro/internal/waiter"
)

// clhNode is a CLH queue node. Under CLH, nodes migrate between
// threads: a releasing thread's node is inherited (and here recycled)
// by its successor, which the paper flags as NUMA-unfriendly and as
// the source of CLH's extra indirection (§8).
type clhNode struct {
	succMustWait atomic.Uint32
	_            [pad.SectorSize - 4]byte
}

var clhPool = sync.Pool{New: func() any { return new(clhNode) }}

// CLHLock is the CLH queue lock in the standard-interface form of
// Scott's Figure 4.14 [52]: the lock body carries the tail and the
// owner's node (head), so nothing needs to be passed by the caller.
// The required dummy node is installed lazily on first acquisition,
// mirroring the paper's handling of trivially initialized
// pthread_mutex instances (§7.1): the zero value is an unlocked lock.
//
// Note CLH's arrival performs a dependent load on the address
// returned by the exchange — the waiter cannot know where it will
// spin until the exchange completes (§8's stall analysis).
type CLHLock struct {
	tail atomic.Pointer[clhNode]
	// head is the owner's node (owner-owned acquire-to-release
	// context), making the lock body two words as in Table 1.
	head   *clhNode
	Policy waiter.Policy
}

// ensureInit installs the dummy node on first use.
func (l *CLHLock) ensureInit() {
	if l.tail.Load() != nil {
		return
	}
	dummy := clhPool.Get().(*clhNode)
	dummy.succMustWait.Store(0)
	if !l.tail.CompareAndSwap(nil, dummy) {
		clhPool.Put(dummy) // raced; someone else initialized
	}
}

// Lock acquires l.
func (l *CLHLock) Lock() {
	l.ensureInit()
	n := clhPool.Get().(*clhNode)
	n.succMustWait.Store(1)
	pred := l.tail.Swap(n)
	// Dependent load chain: spin on the predecessor's node.
	w := waiter.New(l.Policy)
	for pred.succMustWait.Load() != 0 {
		w.Pause()
	}
	// We own the lock. The predecessor's node is now ours to recycle
	// (nodes circulate); our own node stays enqueued until release.
	clhPool.Put(pred)
	l.head = n
}

// Unlock releases l: a single store, constant time, no atomics (§6).
func (l *CLHLock) Unlock() {
	n := l.head
	l.head = nil
	n.succMustWait.Store(0)
}

// CLH deliberately offers no TryLock: because nodes circulate through
// the pool, a load-check-CAS attempt is exposed to A-B-A on the tail
// (the observed node can be recycled and re-pushed between the check
// and the CAS), which would break mutual exclusion.
