package locks

import (
	"sync"
	"sync/atomic"

	"repro/internal/pad"
	"repro/internal/waiter"
)

// clhNode is a CLH queue node. Under CLH, nodes migrate between
// threads: a releasing thread's node is inherited (and here recycled)
// by its successor, which the paper flags as NUMA-unfriendly and as
// the source of CLH's extra indirection (§8).
type clhNode struct {
	succMustWait atomic.Uint32
	// aband supports bounded acquisition. A waiter that gives up
	// publishes, in its own node, the predecessor it was spinning on
	// and then never touches the queue again; the node's unique
	// successor observes aband, hops its spin target to that
	// predecessor, and reclaims this node. Any grant already posted in
	// the predecessor's word persists until the inheriting spinner
	// consumes it, so abandonment needs no CAS and cannot lose a
	// wakeup.
	aband atomic.Pointer[clhNode]
	_     [pad.SectorSize - 16]byte
}

var clhPool = sync.Pool{New: func() any { return new(clhNode) }}

// CLHLock is the CLH queue lock in the standard-interface form of
// Scott's Figure 4.14 [52]: the lock body carries the tail and the
// owner's node (head), so nothing needs to be passed by the caller.
// The required dummy node is installed lazily on first acquisition,
// mirroring the paper's handling of trivially initialized
// pthread_mutex instances (§7.1): the zero value is an unlocked lock.
//
// Note CLH's arrival performs a dependent load on the address
// returned by the exchange — the waiter cannot know where it will
// spin until the exchange completes (§8's stall analysis).
type CLHLock struct {
	tail atomic.Pointer[clhNode]
	// head is the owner's node (owner-owned acquire-to-release
	// context), making the lock body two words as in Table 1.
	head   *clhNode
	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock
}

// ensureInit installs the dummy node on first use.
func (l *CLHLock) ensureInit() {
	if l.tail.Load() != nil {
		return
	}
	dummy := clhPool.Get().(*clhNode)
	dummy.succMustWait.Store(0)
	dummy.aband.Store(nil)
	if !l.tail.CompareAndSwap(nil, dummy) {
		clhPool.Put(dummy) // raced; someone else initialized
	}
}

// enqueue checks out a fresh node, publishes it as the tail, and
// returns (node, displaced predecessor).
func (l *CLHLock) enqueue() (n, pred *clhNode) {
	n = clhPool.Get().(*clhNode)
	n.succMustWait.Store(1)
	n.aband.Store(nil)
	pred = l.tail.Swap(n)
	siteClhArrive.Hit()
	return n, pred
}

// hop advances past an abandoned predecessor: it returns the node the
// abandoner was spinning on and reclaims the abandoned node, which no
// other thread can still reference (we were its unique successor and
// the abandoner's aband store was its final access).
func hop(pred, a *clhNode) *clhNode {
	clhPool.Put(pred)
	return a
}

// Lock acquires l.
func (l *CLHLock) Lock() {
	l.ensureInit()
	n, pred := l.enqueue()
	// Dependent load chain: spin on the predecessor's node.
	w := waiter.NewClocked(l.Policy, l.Clk)
	for pred.succMustWait.Load() != 0 {
		if a := pred.aband.Load(); a != nil {
			pred = hop(pred, a)
			continue
		}
		w.Pause()
	}
	// We own the lock. The predecessor's node is now ours to recycle
	// (nodes circulate); our own node stays enqueued until release.
	clhPool.Put(pred)
	l.head = n
}

// Unlock releases l: a single store, constant time, no atomics (§6).
func (l *CLHLock) Unlock() {
	n := l.head
	l.head = nil
	n.succMustWait.Store(0)
}

// TryLock attempts a non-blocking acquire. A load-then-CAS doorway
// would be unsound here (nodes circulate through the pool, exposing
// the tail to A-B-A between the check and the CAS), but the
// abandonment protocol makes a correct TryLock possible: enqueue
// unconditionally, hop past any abandoned predecessors, check the
// live predecessor's word once, and on failure abandon the fresh node
// immediately. Each failed attempt parks one node in the queue for
// the next arrival to consume, so repeated failures do not accumulate
// state.
func (l *CLHLock) TryLock() bool {
	if siteTryCLH.Fail() {
		return false
	}
	l.ensureInit()
	n, pred := l.enqueue()
	for {
		if pred.succMustWait.Load() == 0 {
			clhPool.Put(pred)
			l.head = n
			return true
		}
		if a := pred.aband.Load(); a != nil {
			pred = hop(pred, a)
			continue
		}
		siteClhAbandonTry.Hit()
		n.aband.Store(pred)
		return false
	}
}
