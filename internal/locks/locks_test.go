package locks

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func baselines() []struct {
	name string
	mk   func() sync.Locker
} {
	return []struct {
		name string
		mk   func() sync.Locker
	}{
		{"TAS", func() sync.Locker { return new(TASLock) }},
		{"TTAS", func() sync.Locker { return new(TTASLock) }},
		{"Ticket", func() sync.Locker { return new(TicketLock) }},
		{"TWA", func() sync.Locker { return new(TWALock) }},
		{"ABQL", func() sync.Locker { return NewABQL(64) }},
		{"MCS", func() sync.Locker { return new(MCSLock) }},
		{"CLH", func() sync.Locker { return new(CLHLock) }},
		{"HemLock", func() sync.Locker { return new(HemLock) }},
		{"Chen", func() sync.Locker { return new(ChenLock) }},
		{"Retrograde", func() sync.Locker { return new(RetrogradeLock) }},
		{"RetrogradeRand", func() sync.Locker { return new(RetrogradeRandLock) }},
		{"FutexMutex", func() sync.Locker { return new(FutexMutex) }},
	}
}

func TestMutualExclusion(t *testing.T) {
	for _, v := range baselines() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			l := v.mk()
			const goroutines = 8
			const iters = 2500
			counter := 0
			var inside int32
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						l.Lock()
						inside++
						if inside != 1 {
							panic("mutual exclusion violated")
						}
						counter++
						inside--
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			if counter != goroutines*iters {
				t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
			}
		})
	}
}

func TestUncontendedCycle(t *testing.T) {
	for _, v := range baselines() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			l := v.mk()
			for i := 0; i < 10000; i++ {
				l.Lock()
				l.Unlock()
			}
		})
	}
}

func TestAllWaitersEventuallyAdmitted(t *testing.T) {
	for _, v := range baselines() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			l := v.mk()
			l.Lock()
			const waiters = 12
			var started, finished sync.WaitGroup
			for i := 0; i < waiters; i++ {
				started.Add(1)
				finished.Add(1)
				go func() {
					started.Done()
					l.Lock()
					l.Unlock()
					finished.Done()
				}()
			}
			started.Wait()
			time.Sleep(10 * time.Millisecond)
			l.Unlock()
			done := make(chan struct{})
			go func() { finished.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("waiters starved")
			}
		})
	}
}

func TestPluralLocking(t *testing.T) {
	for _, v := range baselines() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			const depth = 44
			ls := make([]sync.Locker, depth)
			for i := range ls {
				ls[i] = v.mk()
			}
			for round := 0; round < 30; round++ {
				for _, l := range ls {
					l.Lock()
				}
				// Non-LIFO release order: evens forward then odds
				// backward.
				for i := 0; i < depth; i += 2 {
					ls[i].Unlock()
				}
				for i := depth - 1; i >= 1; i -= 2 {
					ls[i].Unlock()
				}
			}
		})
	}
}

// Contended handoff under forced overlap: a yield inside the critical
// section guarantees queue buildup on a single-processor scheduler.
func TestContendedHandoff(t *testing.T) {
	for _, v := range baselines() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			l := v.mk()
			counter := 0
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 600; i++ {
						l.Lock()
						counter++
						if i%4 == 0 {
							runtime.Gosched()
						}
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			if counter != 6*600 {
				t.Fatalf("counter = %d, want %d", counter, 6*600)
			}
		})
	}
}

func TestTryLockSemantics(t *testing.T) {
	type tryLocker interface {
		sync.Locker
		TryLock() bool
	}
	mks := []struct {
		name string
		mk   func() tryLocker
	}{
		{"TAS", func() tryLocker { return new(TASLock) }},
		{"TTAS", func() tryLocker { return new(TTASLock) }},
		{"Ticket", func() tryLocker { return new(TicketLock) }},
		{"TWA", func() tryLocker { return new(TWALock) }},
		{"MCS", func() tryLocker { return new(MCSLock) }},
		{"CLH", func() tryLocker { return new(CLHLock) }},
		{"HemLock", func() tryLocker { return new(HemLock) }},
		{"Chen", func() tryLocker { return new(ChenLock) }},
		{"Retrograde", func() tryLocker { return new(RetrogradeLock) }},
		{"RetroRand", func() tryLocker { return new(RetrogradeRandLock) }},
		{"ABQL", func() tryLocker { return NewABQL(8) }},
		{"FutexMutex", func() tryLocker { return new(FutexMutex) }},
	}
	for _, m := range mks {
		m := m
		t.Run(m.name, func(t *testing.T) {
			l := m.mk()
			if !l.TryLock() {
				t.Fatal("TryLock on free lock failed")
			}
			if l.TryLock() {
				t.Fatal("TryLock on held lock succeeded")
			}
			l.Unlock()
			if !l.TryLock() {
				t.Fatal("TryLock after Unlock failed")
			}
			l.Unlock()
		})
	}
}

// The retrograde lock must reproduce Reciprocating admission order:
// with a holder and three queued waiters, admission runs newest-first
// (descending tickets), then FIFO between segments (Appendix G).
func TestRetrogradeAdmissionOrder(t *testing.T) {
	var l RetrogradeLock
	l.Lock() // holder takes ticket 0

	var mu sync.Mutex
	var order []int64
	var wg sync.WaitGroup
	// Enqueue three waiters with deterministic tickets 1,2,3.
	for i := int64(1); i <= 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Lock()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			l.Unlock()
		}()
		// Wait until the ticket is actually taken so arrival order is
		// deterministic.
		deadline := time.Now().Add(30 * time.Second)
		for l.ticket.Load() != i+1 {
			if time.Now().After(deadline) {
				t.Fatal("ticket never taken")
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	l.Unlock()
	wg.Wait()

	want := []int64{3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admission order %v, want %v (retrograde)", order, want)
		}
	}
}

// Same shape for the randomized variant: all waiters admitted exactly
// once regardless of head/tail extraction choices.
func TestRetrogradeRandAdmitsAll(t *testing.T) {
	for _, period := range []int{1, 2, 8} {
		l := &RetrogradeRandLock{TailPeriod: period}
		counter := 0
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					l.Lock()
					counter++
					if i%8 == 0 {
						runtime.Gosched()
					}
					l.Unlock()
				}
			}()
		}
		wg.Wait()
		if counter != 8*1000 {
			t.Fatalf("period %d: counter = %d, want %d", period, counter, 8*1000)
		}
		if l.ticket.Load() != l.grant.Load() {
			t.Fatalf("period %d: lock not quiesced (ticket %d grant %d)",
				period, l.ticket.Load(), l.grant.Load())
		}
	}
}

func TestABQLCapacity(t *testing.T) {
	l := NewABQL(3)
	if l.Capacity() != 3 {
		t.Fatalf("Capacity = %d", l.Capacity())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewABQL(0) should panic")
		}
	}()
	NewABQL(0)
}

func TestCLHLazyInitRace(t *testing.T) {
	// Many goroutines racing on first use must agree on one dummy.
	for round := 0; round < 50; round++ {
		var l CLHLock
		var wg sync.WaitGroup
		counter := 0
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				l.Lock()
				counter++
				l.Unlock()
			}()
		}
		wg.Wait()
		if counter != 8 {
			t.Fatalf("round %d: counter = %d", round, counter)
		}
	}
}

// HemLock's release must not retire its element before the successor
// acknowledges: hammer handoffs and rely on -race to catch lifecycle
// violations.
func TestHemLockHandoffLifecycle(t *testing.T) {
	var l HemLock
	var wg sync.WaitGroup
	shared := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1500; i++ {
				l.Lock()
				shared++
				if i%16 == 0 {
					runtime.Gosched()
				}
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if shared != 8*1500 {
		t.Fatalf("shared = %d", shared)
	}
}

// Ticket and TWA must agree on admission order (TWA only changes the
// waiting mechanism, not the schedule).
func TestTWAFIFOOrder(t *testing.T) {
	var l TWALock
	l.Lock()
	var mu sync.Mutex
	var order []uint64
	var wg sync.WaitGroup
	for i := uint64(1); i <= 5; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Lock()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			l.Unlock()
		}()
		deadline := time.Now().Add(30 * time.Second)
		for l.ticket.Load() != i+1 {
			if time.Now().After(deadline) {
				t.Fatal("ticket never taken")
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	l.Unlock()
	wg.Wait()
	for i := range order {
		if order[i] != uint64(i+1) {
			t.Fatalf("TWA admission order %v, want FIFO", order)
		}
	}
}

func BenchmarkUncontendedBaselines(b *testing.B) {
	for _, v := range baselines() {
		v := v
		b.Run(v.name, func(b *testing.B) {
			l := v.mk()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l.Lock()
				l.Unlock()
			}
		})
	}
}
