package locks

import (
	"sync/atomic"

	"repro/internal/waiter"
	"repro/internal/xrand"
)

// twaTableSize is the size of the process-global waiting array shared
// by all TWA lock instances and threads; the paper's implementation
// uses 4096 words (§6 "Space Complexity").
const twaTableSize = 4096

// twaTable is the global waiting array. Slots hold modification
// counters: long-term waiters snapshot their hashed slot and spin
// until it changes, at which point they revert to classic short-term
// spinning on the grant word.
var twaTable [twaTableSize]struct {
	seq atomic.Uint64
	_   [56]byte // one slot per cache line
}

// twaIDSource assigns per-lock identities for hash mixing.
var twaIDSource atomic.Uint64

// twaSlot hashes a (lock identity, ticket) pair into the waiting
// array, mixing with the Fibonacci hash the paper attributes much of
// TWA's path complexity to.
func twaSlot(id, ticket uint64) *atomic.Uint64 {
	h := (id ^ ticket) * 0x9e3779b97f4a7c15
	return &twaTable[(h>>52)&(twaTableSize-1)].seq
}

// TWALock is a ticket lock augmented with a waiting array (Dice &
// Kogan, Euro-Par 2019). Threads whose ticket is far from the grant
// cursor wait on a hashed slot of the global array rather than on the
// grant word, so at any instant at most one thread (distance 1) spins
// globally; the releasing thread bumps the slot of the ticket that
// should move from long-term to short-term waiting. Collisions in the
// array only cause spurious re-checks, never missed wakeups, because
// waiters re-validate the grant distance after every slot change.
//
// The zero value is an unlocked lock.
type TWALock struct {
	ticket atomic.Uint64
	grant  atomic.Uint64
	id     atomic.Uint64
	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock
}

// longTermThreshold is the grant distance at or beyond which a waiter
// parks on the waiting array. 1 matches the paper: only the immediate
// successor spins on grant.
const longTermThreshold = 1

func (l *TWALock) lockID() uint64 {
	if id := l.id.Load(); id != 0 {
		return id
	}
	// First use: assign a process-unique identity (racy CAS; the
	// loser adopts the winner's value).
	next := xrand.HashPhi32(uint32(twaIDSource.Add(1)))
	l.id.CompareAndSwap(0, uint64(next)|1) // |1 keeps it nonzero
	return l.id.Load()
}

// Lock acquires l.
func (l *TWALock) Lock() {
	tx := l.ticket.Add(1) - 1
	if tx == l.grant.Load() {
		// Uncontended: granted immediately, no waiter state needed.
		return
	}
	id := l.lockID()
	w := waiter.NewClocked(l.Policy, l.Clk)
	for {
		dist := tx - l.grant.Load()
		if dist == 0 {
			return
		}
		if dist <= longTermThreshold {
			// Short-term: classic global spinning on grant.
			w.Pause()
			continue
		}
		// Long-term: wait on the hashed slot until it changes, then
		// re-validate the distance. The releaser bumps our slot when
		// our ticket enters short-term range.
		slot := twaSlot(id, tx)
		s := slot.Load()
		for slot.Load() == s && tx-l.grant.Load() > longTermThreshold {
			w.Pause()
		}
	}
}

// Unlock releases l and promotes the next long-term waiter.
func (l *TWALock) Unlock() {
	g := l.grant.Load() + 1
	l.grant.Store(g)
	// The thread holding ticket g+longTermThreshold (if any) may now
	// move from the waiting array to grant spinning.
	twaSlot(l.lockID(), g+longTermThreshold).Add(1)
}

// TryLock attempts a non-blocking acquire.
func (l *TWALock) TryLock() bool {
	g := l.grant.Load()
	return l.ticket.CompareAndSwap(g, g+1)
}
