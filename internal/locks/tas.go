package locks

import (
	"sync/atomic"

	"repro/internal/waiter"
)

// TASLock is a test-and-set spin lock: one word, no fairness, no
// scalability — every acquisition attempt writes the lock word,
// generating an invalidation storm under contention (§6).
//
// The zero value is an unlocked lock.
type TASLock struct {
	word   atomic.Uint32
	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock
}

// Lock acquires l.
func (l *TASLock) Lock() {
	w := waiter.NewClocked(l.Policy, l.Clk)
	for l.word.Swap(1) != 0 {
		w.Pause()
	}
}

// Unlock releases l.
func (l *TASLock) Unlock() { l.word.Store(0) }

// TryLock attempts a non-blocking acquire.
func (l *TASLock) TryLock() bool {
	return !siteTryTAS.Fail() && l.word.Swap(1) == 0
}

// TTASLock is the "polite" test-and-test-and-set lock [52]: spin
// reading (shared state, no traffic) and attempt the swap only when
// the word is observed free.
//
// The zero value is an unlocked lock.
type TTASLock struct {
	word   atomic.Uint32
	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock
}

// Lock acquires l.
func (l *TTASLock) Lock() {
	w := waiter.NewClocked(l.Policy, l.Clk)
	for {
		if l.word.Load() == 0 && l.word.Swap(1) == 0 {
			return
		}
		w.Pause()
	}
}

// Unlock releases l.
func (l *TTASLock) Unlock() { l.word.Store(0) }

// TryLock attempts a non-blocking acquire.
func (l *TTASLock) TryLock() bool {
	return !siteTryTTAS.Fail() && l.word.Load() == 0 && l.word.Swap(1) == 0
}
