package locks

import (
	"sync"
	"sync/atomic"

	"repro/internal/pad"
	"repro/internal/waiter"
)

// hemNode carries HemLock's per-thread Grant field: ownership is
// transferred address-wise — the releasing thread publishes the
// address of the lock being released in its own node, and the waiter
// watching that node recognizes the lock it is waiting for. The
// address-based protocol is what lets a single element serve a thread
// holding several contended locks (with the multi-waiting caveat the
// paper analyzes).
type hemNode struct {
	grant atomic.Pointer[HemLock]
	_     [pad.SectorSize - 8]byte
}

var hemPool = sync.Pool{New: func() any { return new(hemNode) }}

// HemLock is Dice & Kogan's HemLock (SPAA 2021) with the CTR
// (coherence traffic reduction) acknowledgement: the lock body is a
// single tail word; waiters spin on their predecessor's element; the
// releasing thread publishes the lock address in its own element and
// then waits for the successor to acknowledge consumption before the
// element can be reused — the synchronous back-and-forth that costs
// HemLock its constant-time release (§6, Table 1).
//
// The zero value is an unlocked lock.
type HemLock struct {
	tail atomic.Pointer[hemNode]
	// self is the owner's element (owner-owned context).
	self   *hemNode
	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock
}

// Lock acquires l.
func (l *HemLock) Lock() {
	n := hemPool.Get().(*hemNode)
	n.grant.Store(nil)
	pred := l.tail.Swap(n)
	if pred != nil {
		// Semi-local spinning on the predecessor's element, waiting
		// for it to publish this lock's address.
		w := waiter.NewClocked(l.Policy, l.Clk)
		for pred.grant.Load() != l {
			w.Pause()
		}
		// CTR acknowledgement: consume the grant so the predecessor
		// may retire its element.
		pred.grant.Store(nil)
	}
	l.self = n
}

// Unlock releases l. Unlocking an unlocked HemLock panics: without
// the guard the nil owner element would be pooled as a typed nil
// (sync.Pool's nil check misses it) and poison a later acquisition —
// of any HemLock instance — with a delayed nil dereference.
func (l *HemLock) Unlock() {
	n := l.self
	if n == nil {
		panic("locks: HemLock.Unlock of unlocked lock")
	}
	l.self = nil
	if l.tail.Load() == n && l.tail.CompareAndSwap(n, nil) {
		// Uncontended: constant-time release.
		hemPool.Put(n)
		return
	}
	// Contended: publish ownership address-wise, then wait for the
	// successor's acknowledgement to protect the element lifecycle.
	n.grant.Store(l)
	w := waiter.NewClocked(l.Policy, l.Clk)
	for n.grant.Load() != nil {
		w.Pause()
	}
	hemPool.Put(n)
}

// TryLock attempts a non-blocking acquire.
func (l *HemLock) TryLock() bool {
	n := hemPool.Get().(*hemNode)
	n.grant.Store(nil)
	if l.tail.CompareAndSwap(nil, n) {
		l.self = n
		return true
	}
	hemPool.Put(n)
	return false
}
