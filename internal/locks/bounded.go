package locks

import (
	"context"
	"time"

	"repro/internal/bounded"
	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/waiter"
)

// Bounded (cancellable) acquisition for the baseline locks. Each
// family gets the strongest discipline its protocol admits:
//
//   - TAS/TTAS have no admission state at all, so bounding is just a
//     deadline-aware retry of the atomic doorway.
//   - Ticket (and its retrograde descendants) cannot abandon a taken
//     ticket — the grant chain would wedge on the unclaimed number —
//     so the bounded path barges: it polls the TryLock doorway and
//     never takes a ticket it might have to abandon, trading FIFO
//     admission for abandonability (the classic timedlock-over-ticket
//     compromise).
//   - MCS abandons by publishing mcsAbandoned into its own node with a
//     CAS; the release cascades through abandoned nodes (unlockNode).
//   - CLH abandons by publishing its spin target in its own node's
//     aband word; successors hop past and reclaim abandoned nodes.
//
// The remaining baselines (Chen, Retrograde*, ABQL, TWA, HemLock,
// FutexMutex) are served by the generic bounded.Polling fallback over
// their TryLock.

var (
	chLocksTry   = chaos.NewPoint("locks.trylock")
	chMcsArrive  = chaos.NewPoint("mcs.arrive")
	chMcsGrant   = chaos.NewPoint("mcs.grant")
	chMcsAbandon = chaos.NewPoint("mcs.abandon")
	chClhArrive  = chaos.NewPoint("clh.arrive")
	chClhAbandon = chaos.NewPoint("clh.abandon")
)

// Labeled sites: locks.trylock serves every baseline TryLock doorway
// and the queue points serve both the blocking and bounded paths, so
// each call site gets a label for stall/violation dumps.
var (
	siteTryTAS        = chLocksTry.Site("TASLock.TryLock")
	siteTryTTAS       = chLocksTry.Site("TTASLock.TryLock")
	siteTryTicket     = chLocksTry.Site("TicketLock.TryLock")
	siteTryMCS        = chLocksTry.Site("MCSLock.TryLock")
	siteTryCLH        = chLocksTry.Site("CLHLock.TryLock")
	siteTryChen       = chLocksTry.Site("ChenLock.TryLock")
	siteTryABQL       = chLocksTry.Site("ABQLock.TryLock")
	siteTryRetro      = chLocksTry.Site("RetrogradeLock.TryLock")
	siteTryRetroRand  = chLocksTry.Site("RetrogradeRandLock.TryLock")
	siteMcsArriveBnd  = chMcsArrive.Site("MCSLock.lockBounded")
	siteMcsArriveLock = chMcsArrive.Site("MCSLock.Lock")
	siteMcsGrant      = chMcsGrant.Site("MCSLock.unlockNode")
	siteMcsAbandon    = chMcsAbandon.Site("MCSLock.lockBounded")
	siteClhArrive     = chClhArrive.Site("CLHLock.enqueue")
	siteClhAbandonBnd = chClhAbandon.Site("CLHLock.lockBounded")
	siteClhAbandonTry = chClhAbandon.Site("CLHLock.TryLock")
)

// Interface conformance for the natively bounded baselines.
var (
	_ bounded.Locker = (*TASLock)(nil)
	_ bounded.Locker = (*TTASLock)(nil)
	_ bounded.Locker = (*TicketLock)(nil)
	_ bounded.Locker = (*MCSLock)(nil)
	_ bounded.Locker = (*CLHLock)(nil)
)

// LockFor acquires l like Lock but gives up after d, reporting whether
// the lock was acquired. LockFor(0) is equivalent to TryLock.
func (l *TASLock) LockFor(d time.Duration) bool {
	if d <= 0 {
		return l.TryLock()
	}
	return l.lockBounded(clock.Or(l.Clk).Now()+d, nil)
}

// LockCtx acquires l unless ctx is cancelled or expires first.
func (l *TASLock) LockCtx(ctx context.Context) error {
	return bounded.CtxFrom(l.Clk, ctx, l.lockBounded)
}

func (l *TASLock) lockBounded(deadline time.Duration, done <-chan struct{}) bool {
	w := waiter.NewClocked(l.Policy, l.Clk)
	for l.word.Swap(1) != 0 {
		if !w.PauseBounded(deadline, done) {
			return false
		}
	}
	return true
}

// LockFor acquires l like Lock but gives up after d, reporting whether
// the lock was acquired. LockFor(0) is equivalent to TryLock.
func (l *TTASLock) LockFor(d time.Duration) bool {
	if d <= 0 {
		return l.TryLock()
	}
	return l.lockBounded(clock.Or(l.Clk).Now()+d, nil)
}

// LockCtx acquires l unless ctx is cancelled or expires first.
func (l *TTASLock) LockCtx(ctx context.Context) error {
	return bounded.CtxFrom(l.Clk, ctx, l.lockBounded)
}

func (l *TTASLock) lockBounded(deadline time.Duration, done <-chan struct{}) bool {
	w := waiter.NewClocked(l.Policy, l.Clk)
	for {
		if l.word.Load() == 0 && l.word.Swap(1) == 0 {
			return true
		}
		if !w.PauseBounded(deadline, done) {
			return false
		}
	}
}

// LockFor acquires l, giving up after d. The bounded path barges via
// the TryLock doorway instead of taking a ticket (see the file
// comment), so it does not participate in the lock's FIFO order.
func (l *TicketLock) LockFor(d time.Duration) bool {
	if d <= 0 {
		return l.TryLock()
	}
	return l.lockBounded(clock.Or(l.Clk).Now()+d, nil)
}

// LockCtx acquires l unless ctx is cancelled or expires first.
func (l *TicketLock) LockCtx(ctx context.Context) error {
	return bounded.CtxFrom(l.Clk, ctx, l.lockBounded)
}

func (l *TicketLock) lockBounded(deadline time.Duration, done <-chan struct{}) bool {
	w := waiter.NewClocked(l.Policy, l.Clk)
	for !l.TryLock() {
		if !w.PauseBounded(deadline, done) {
			return false
		}
	}
	return true
}

// LockFor acquires l like Lock but gives up after d, reporting whether
// the lock was acquired. LockFor(0) is equivalent to TryLock.
func (l *MCSLock) LockFor(d time.Duration) bool {
	if d <= 0 {
		return l.TryLock()
	}
	return l.lockBounded(clock.Or(l.Clk).Now()+d, nil)
}

// LockCtx acquires l unless ctx is cancelled or expires first.
func (l *MCSLock) LockCtx(ctx context.Context) error {
	return bounded.CtxFrom(l.Clk, ctx, l.lockBounded)
}

func (l *MCSLock) lockBounded(deadline time.Duration, done <-chan struct{}) bool {
	n := mcsPool.Get().(*mcsNode)
	n.next.Store(nil)
	n.locked.Store(mcsWaiting)
	pred := l.tail.Swap(n)
	siteMcsArriveBnd.Hit()
	if pred == nil {
		l.head = n
		return true
	}
	pred.next.Store(n)
	w := waiter.NewClocked(l.Policy, l.Clk)
	for n.locked.Load() != mcsGranted {
		if !w.PauseBounded(deadline, done) {
			siteMcsAbandon.Hit()
			if n.locked.CompareAndSwap(mcsWaiting, mcsAbandoned) {
				// Node ownership transferred to the eventual releaser;
				// we must not touch n again.
				return false
			}
			// Lost the race to the grant: we hold the lock. Accept,
			// then immediately release and report failure.
			l.unlockNode(n)
			return false
		}
	}
	l.head = n
	return true
}

// LockFor acquires l like Lock but gives up after d, reporting whether
// the lock was acquired. LockFor(0) is equivalent to TryLock.
func (l *CLHLock) LockFor(d time.Duration) bool {
	if d <= 0 {
		return l.TryLock()
	}
	return l.lockBounded(clock.Or(l.Clk).Now()+d, nil)
}

// LockCtx acquires l unless ctx is cancelled or expires first.
func (l *CLHLock) LockCtx(ctx context.Context) error {
	return bounded.CtxFrom(l.Clk, ctx, l.lockBounded)
}

func (l *CLHLock) lockBounded(deadline time.Duration, done <-chan struct{}) bool {
	l.ensureInit()
	n, pred := l.enqueue()
	w := waiter.NewClocked(l.Policy, l.Clk)
	for pred.succMustWait.Load() != 0 {
		if a := pred.aband.Load(); a != nil {
			pred = hop(pred, a)
			continue
		}
		if !w.PauseBounded(deadline, done) {
			if pred.succMustWait.Load() == 0 {
				// The grant landed as the budget expired: take it.
				break
			}
			siteClhAbandonBnd.Hit()
			n.aband.Store(pred)
			return false
		}
	}
	clhPool.Put(pred)
	l.head = n
	return true
}
