package locks

import (
	"sync"
	"sync/atomic"

	"repro/internal/pad"
	"repro/internal/waiter"
)

// mcsNode is an MCS queue node. Nodes are recycled through a pool:
// the paper's pthread implementation keeps a thread-local free stack
// for the same purpose, because a node cannot be reclaimed until the
// matching unlock (§7.1).
type mcsNode struct {
	next   atomic.Pointer[mcsNode]
	locked atomic.Uint32
	_      [pad.SectorSize - 12]byte
}

var mcsPool = sync.Pool{New: func() any { return new(mcsNode) }}

// mcsNode.locked states. A bounded waiter that times out publishes
// mcsAbandoned with a CAS against mcsWaiting; winning the CAS hands
// ownership of the node to the eventual releaser, which continues the
// release through it (unlockNode). Losing the CAS means the grant
// already landed, so the waiter accepts and immediately releases.
const (
	mcsGranted   = 0
	mcsWaiting   = 1
	mcsAbandoned = 2
)

// MCSLock is the classic Mellor-Crummey–Scott queue lock: FIFO, local
// spinning on one's own node, explicit next pointers (the queue can
// be edited, unlike CLH/HemLock/Reciprocating). The owner's node is
// kept in the lock body as acquire-to-release context, making the
// lock two words as in the paper's Table 1 accounting.
//
// The zero value is an unlocked lock.
type MCSLock struct {
	tail atomic.Pointer[mcsNode]
	// head is the owner's node (owner-owned context).
	head   *mcsNode
	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock
}

// Lock acquires l.
func (l *MCSLock) Lock() {
	n := mcsPool.Get().(*mcsNode)
	n.next.Store(nil)
	n.locked.Store(mcsWaiting)
	pred := l.tail.Swap(n)
	siteMcsArriveLock.Hit()
	if pred != nil {
		// Enqueue behind pred and spin locally on our own node.
		pred.next.Store(n)
		w := waiter.NewClocked(l.Policy, l.Clk)
		for n.locked.Load() != mcsGranted {
			w.Pause()
		}
	}
	l.head = n
}

// Unlock releases l.
func (l *MCSLock) Unlock() {
	n := l.head
	l.head = nil
	l.unlockNode(n)
}

// unlockNode releases the lock held at node n. The grant is a Swap
// rather than a plain store so the releaser learns whether the
// successor it just granted had abandoned its acquisition; if so, the
// successor's node now belongs to the releaser (the abandoning waiter
// CAS-transferred ownership and will never touch it again) and the
// release cascades through it until a live waiter or the queue tail is
// reached.
func (l *MCSLock) unlockNode(n *mcsNode) {
	for {
		if n.next.Load() == nil {
			// Appears uncontended: try to swing the tail back to nil.
			if l.tail.CompareAndSwap(n, nil) {
				mcsPool.Put(n)
				return
			}
			// A successor is mid-enqueue: wait for its link to appear.
			// This is the non-constant-time release path of MCS (§6).
			w := waiter.NewClocked(l.Policy, l.Clk)
			for n.next.Load() == nil {
				w.Pause()
			}
		}
		succ := n.next.Load()
		siteMcsGrant.Hit()
		old := succ.locked.Swap(mcsGranted)
		mcsPool.Put(n)
		if old != mcsAbandoned {
			return
		}
		n = succ
	}
}

// TryLock attempts a non-blocking acquire.
func (l *MCSLock) TryLock() bool {
	if siteTryMCS.Fail() {
		return false
	}
	n := mcsPool.Get().(*mcsNode)
	n.next.Store(nil)
	n.locked.Store(0)
	if l.tail.CompareAndSwap(nil, n) {
		l.head = n
		return true
	}
	mcsPool.Put(n)
	return false
}
