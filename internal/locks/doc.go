// Package locks implements every baseline mutual-exclusion algorithm
// the paper evaluates Reciprocating Locks against (§6, §7), plus the
// Appendix G retrograde ticket locks:
//
//	TASLock        test-and-set; compact, unfair, unscalable.
//	TTASLock       polite test-and-test-and-set.
//	TicketLock     classic FIFO ticket lock (TKT); global spinning.
//	TWALock        ticket lock augmented with a waiting array [22]:
//	               long-distance waiters park on a hashed slot of a
//	               global array, leaving at most one global spinner.
//	ABQLock        Anderson's array-based queue lock: FIFO, local
//	               spinning, but T*L space and a fixed capacity.
//	MCSLock        classic MCS with a per-episode node recycled
//	               through a pool (the paper's implementations use a
//	               thread-local free stack for the same reason).
//	CLHLock        CLH in Scott's Figure 4.14 standard-interface form:
//	               the head (owner) node is stored in the lock body,
//	               the dummy node is installed lazily on first use,
//	               and nodes circulate between threads.
//	HemLock        Dice & Kogan's HemLock: per-episode element,
//	               address-based ownership transfer, synchronous
//	               release-side acknowledgement (CTR handshake).
//	ChenLock       Chen & Huang's stack-based bounded-bypass lock —
//	               the closest related work: exchange-arrival LIFO
//	               stack with detach-on-exhaustion, but ownership is
//	               published through central words, so all waiting is
//	               global spinning and every release mutates shared
//	               globals.
//	RetrogradeLock Appendix G Listing 7: a ticket lock whose Release
//	               walks the entry segment in descending ticket order,
//	               reproducing the Reciprocating admission schedule.
//	RetrogradeRandLock Appendix G's randomized variant: Bernoulli
//	               head/tail succession with a CountDown refresh,
//	               breaking palindromic cycles while keeping bounded
//	               bypass.
//
// Every lock implements sync.Locker with a usable zero value unless
// noted (ABQLock requires a capacity, so it has a constructor).
// Acquire-to-release context, where an algorithm needs it, lives in
// owner-owned words of the lock body — the same convention the
// paper's pthread interposition library uses (§7).
package locks
