package cluster

import (
	"fmt"
	"time"

	"repro/internal/bounded"
	"repro/internal/clock"
	"repro/internal/registry"
)

// lease is one shard's lease record at the lock service.
type lease struct {
	holder int // node id, or -1 when free
	epoch  uint64
	expiry time.Duration // service-clock expiry; lazily evaluated
}

// lockService is the cluster's lease-based lock manager: one logical
// actor (reached through the simulated network, so partitions and
// delays apply to it like any node) that grants per-shard leases
// carrying monotonically increasing fencing epochs. Expiry is lazy —
// evaluated against the simulation clock whenever a request arrives —
// which keeps the service timer-free and the event stream small.
//
// With Config.RealLockName set, every shard's lease is additionally
// backed by a real registry-built lock on a virtual clock slaved to
// simulated time: the service acquires the real lock at grant,
// releases it at release and at lazy lapse, and requires the real
// TryLock doorway to agree with the abstract bookkeeping at every
// transition. The sim runs on one goroutine, so the service drives
// the real locks synchronously; uncontended TryLock/Unlock never park,
// and the injected clock keeps any slow-path or telemetry timestamps
// on the simulation's time axis rather than the wall's.
type lockService struct {
	s      *sim
	leases []lease

	real     []bounded.TryLocker // per-shard real locks, nil without RealLockName
	realHeld []bool              // which real locks the service holds for a lease
	realClk  *clock.Virtual      // time source of the real locks, slaved to s.now
}

func newLockService(s *sim, shards int) (*lockService, error) {
	svc := &lockService{s: s, leases: make([]lease, shards)}
	for i := range svc.leases {
		svc.leases[i].holder = -1
	}
	if name := s.cfg.RealLockName; name != "" {
		svc.realClk = clock.NewVirtual()
		svc.realHeld = make([]bool, shards)
		svc.real = make([]bounded.TryLocker, shards)
		for i := range svc.real {
			l, err := registry.Build(name, registry.WithClock(svc.realClk))
			if err != nil {
				return nil, fmt.Errorf("cluster: building real lock for shard %d: %w", i, err)
			}
			t, ok := l.(bounded.TryLocker)
			if !ok {
				return nil, fmt.Errorf("cluster: real lock %s has no TryLock doorway to bridge", name)
			}
			svc.real[i] = t
		}
	}
	return svc, nil
}

// realSync slaves the real locks' virtual clock to the simulation
// clock. Called on every service transition so lock-internal
// timestamps and any escalated waiting advance with simulated time.
func (svc *lockService) realSync() {
	if svc.realClk != nil {
		svc.realClk.AdvanceTo(svc.s.now)
	}
}

// realAcquire drives the real lock's TryLock at an abstract grant.
// The doorway must admit: the abstract bookkeeping says the shard is
// free (or just lapsed), and the service released the real lock on
// that path, so a refusal means the two admissions diverged.
func (svc *lockService) realAcquire(shard int, to int, epoch uint64) {
	if svc.real == nil {
		return
	}
	if !svc.real[shard].TryLock() {
		svc.s.check.fail(ClassRealLock,
			"shard %d: abstract grant e%d to %s but the real %s lock refused TryLock",
			shard, epoch, epName(to), svc.s.cfg.RealLockName)
		return
	}
	svc.realHeld[shard] = true
}

// realRelease returns the shard's real lock at an abstract lease end
// (explicit release or lazy lapse). An abstract lease ending without
// the service holding the real lock means an earlier divergence.
func (svc *lockService) realRelease(shard int) {
	if svc.real == nil {
		return
	}
	if !svc.realHeld[shard] {
		svc.s.check.fail(ClassRealLock,
			"shard %d: abstract lease ended but the service holds no real %s lock",
			shard, svc.s.cfg.RealLockName)
		return
	}
	svc.real[shard].Unlock()
	svc.realHeld[shard] = false
}

// realCheckDenied cross-checks an abstract denial: the shard's lease
// is live, so the service must still hold the real lock — and the real
// doorway must refuse a probe, exactly as the abstract service does.
func (svc *lockService) realCheckDenied(shard int) {
	if svc.real == nil {
		return
	}
	if !svc.realHeld[shard] {
		svc.s.check.fail(ClassRealLock,
			"shard %d: abstract deny while the service holds no real %s lock",
			shard, svc.s.cfg.RealLockName)
		return
	}
	if svc.real[shard].TryLock() {
		svc.real[shard].Unlock()
		svc.s.check.fail(ClassRealLock,
			"shard %d: abstract deny but the real %s lock admitted a probe while held",
			shard, svc.s.cfg.RealLockName)
	}
}

func (svc *lockService) handle(m *message) {
	s := svc.s
	svc.realSync()
	l := &svc.leases[m.shard]
	expired := l.holder != -1 && s.now >= l.expiry
	switch m.kind {
	case mAcquire:
		if l.holder != -1 && !expired {
			svc.realCheckDenied(m.shard)
			s.counters.Denies++
			s.send(&message{kind: mDeny, from: svcID, to: m.from, shard: m.shard})
			return
		}
		if expired {
			s.tracef("svc: lease s%d e%d (held by %s) lapsed", m.shard, l.epoch, epName(l.holder))
			s.check.onLeaseEnd(m.shard, s.now)
			svc.realRelease(m.shard)
		}
		l.epoch++
		l.holder = m.from
		l.expiry = s.now + s.cfg.TTL
		s.counters.Grants++
		s.check.onGrant(m.shard, l.epoch, m.from, s.now, l.expiry)
		svc.realAcquire(m.shard, m.from, l.epoch)
		s.send(&message{kind: mGrant, from: svcID, to: m.from, shard: m.shard, epoch: l.epoch})
	case mRenew:
		if l.holder == m.from && l.epoch == m.epoch && !expired {
			l.expiry = s.now + s.cfg.TTL
			s.check.onRenew(m.shard, l.expiry)
			s.send(&message{kind: mRenewOK, from: svcID, to: m.from, shard: m.shard, epoch: m.epoch})
			return
		}
		s.send(&message{kind: mRenewDeny, from: svcID, to: m.from, shard: m.shard, epoch: m.epoch})
	case mRelease:
		if l.holder == m.from && l.epoch == m.epoch {
			l.holder = -1
			s.check.onLeaseEnd(m.shard, s.now)
			svc.realRelease(m.shard)
		}
	default:
		s.tracef("svc: unexpected %s", m)
	}
}

// forceExpire implements the "expire shard" fault: the service
// unilaterally lapses the current lease, as a real lock service does
// when an operator fences a wedged holder. The holder is not told —
// it discovers the loss at its next renewal, or by having its writes
// fenced. The real-lock bridge stays lazy here too: the real lock is
// released at the next acquire's lapse handling, mirroring when the
// abstract record is actually overwritten.
func (svc *lockService) forceExpire(shard int) {
	l := &svc.leases[shard]
	if l.holder == -1 {
		return
	}
	l.expiry = svc.s.now
	svc.s.check.onLeaseEnd(shard, svc.s.now)
	svc.s.tracef("svc: force-expire s%d e%d (held by %s)", shard, l.epoch, epName(l.holder))
}

// A forceExpire'd lease ends twice in the abstract bookkeeping's eyes
// (once at the fault, once at lazy lapse); realRelease must therefore
// only be driven from the lapse/release paths above, where the record
// transitions, never from forceExpire.
