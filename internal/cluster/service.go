package cluster

import "time"

// lease is one shard's lease record at the lock service.
type lease struct {
	holder int // node id, or -1 when free
	epoch  uint64
	expiry time.Duration // service-clock expiry; lazily evaluated
}

// lockService is the cluster's lease-based lock manager: one logical
// actor (reached through the simulated network, so partitions and
// delays apply to it like any node) that grants per-shard leases
// carrying monotonically increasing fencing epochs. Expiry is lazy —
// evaluated against the simulation clock whenever a request arrives —
// which keeps the service timer-free and the event stream small.
type lockService struct {
	s      *sim
	leases []lease
}

func newLockService(s *sim, shards int) *lockService {
	svc := &lockService{s: s, leases: make([]lease, shards)}
	for i := range svc.leases {
		svc.leases[i].holder = -1
	}
	return svc
}

func (svc *lockService) handle(m *message) {
	s := svc.s
	l := &svc.leases[m.shard]
	expired := l.holder != -1 && s.now >= l.expiry
	switch m.kind {
	case mAcquire:
		if l.holder != -1 && !expired {
			s.counters.Denies++
			s.send(&message{kind: mDeny, from: svcID, to: m.from, shard: m.shard})
			return
		}
		if expired {
			s.tracef("svc: lease s%d e%d (held by %s) lapsed", m.shard, l.epoch, epName(l.holder))
			s.check.onLeaseEnd(m.shard, s.now)
		}
		l.epoch++
		l.holder = m.from
		l.expiry = s.now + s.cfg.TTL
		s.counters.Grants++
		s.check.onGrant(m.shard, l.epoch, m.from, s.now, l.expiry)
		s.send(&message{kind: mGrant, from: svcID, to: m.from, shard: m.shard, epoch: l.epoch})
	case mRenew:
		if l.holder == m.from && l.epoch == m.epoch && !expired {
			l.expiry = s.now + s.cfg.TTL
			s.check.onRenew(m.shard, l.expiry)
			s.send(&message{kind: mRenewOK, from: svcID, to: m.from, shard: m.shard, epoch: m.epoch})
			return
		}
		s.send(&message{kind: mRenewDeny, from: svcID, to: m.from, shard: m.shard, epoch: m.epoch})
	case mRelease:
		if l.holder == m.from && l.epoch == m.epoch {
			l.holder = -1
			s.check.onLeaseEnd(m.shard, s.now)
		}
	default:
		s.tracef("svc: unexpected %s", m)
	}
}

// forceExpire implements the "expire shard" fault: the service
// unilaterally lapses the current lease, as a real lock service does
// when an operator fences a wedged holder. The holder is not told —
// it discovers the loss at its next renewal, or by having its writes
// fenced.
func (svc *lockService) forceExpire(shard int) {
	l := &svc.leases[shard]
	if l.holder == -1 {
		return
	}
	l.expiry = svc.s.now
	svc.s.check.onLeaseEnd(shard, svc.s.now)
	svc.s.tracef("svc: force-expire s%d e%d (held by %s)", shard, l.epoch, epName(l.holder))
}
