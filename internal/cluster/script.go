package cluster

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// A fault script is a declarative, seed-replayable schedule of faults:
// one step per line, executed at simulated times in the fault event
// band. The grammar (canonical form, as Format emits it):
//
//	at <time> pause <node> for <dur>
//	at <time> crash <node>
//	at <time> restart <node>
//	at <time> skew <node> <±dur>
//	at <time> expire shard <i>
//	at <time> cut <ep>-><ep> for <dur>
//	at <time> drop <ep>-><ep> p=<prob> for <dur>
//	at <time> dup <ep>-><ep> p=<prob> for <dur>
//	at <time> delay <ep>-><ep> <dur>..<dur> for <dur>
//
// where <node> is n0..n(N-1), and a link endpoint <ep> is a node, svc
// (the lock service), or * (any). Blank lines and #-comments are
// ignored. Link faults are directional: "cut n0->svc" severs only the
// node-to-service direction (asymmetric partition); cut both ways with
// two steps.

// StepKind enumerates fault step verbs.
type StepKind int

const (
	StepPause StepKind = iota
	StepCrash
	StepRestart
	StepSkew
	StepExpire
	StepCut
	StepDrop
	StepDup
	StepDelay
)

var stepVerbs = map[StepKind]string{
	StepPause: "pause", StepCrash: "crash", StepRestart: "restart",
	StepSkew: "skew", StepExpire: "expire", StepCut: "cut",
	StepDrop: "drop", StepDup: "dup", StepDelay: "delay",
}

// AnyEndpoint is the wildcard link endpoint.
const AnyEndpoint = -2

// ServiceEndpoint is the lock service's endpoint id (nodes are
// 0..N-1); schedule controllers see it as a ReadyEvent.Endpoint.
const ServiceEndpoint = -1

// svcID is the lock service's endpoint id, package-internal alias.
const svcID = ServiceEndpoint

// Step is one fault. Which fields are meaningful depends on Kind:
// Node for pause/crash/restart/skew; Shard for expire; From/To, P and
// the delay range for link faults; For for every fault with a window.
type Step struct {
	At   time.Duration
	Kind StepKind

	Node  int
	Shard int

	From, To int // link endpoints: node id, svcID, or AnyEndpoint

	P        float64       // drop/dup probability
	DelayMin time.Duration // delay range
	DelayMax time.Duration

	Skew time.Duration // signed clock-skew offset

	For time.Duration // fault window (pause length, link-rule lifetime)
}

// Script is a parsed fault script.
type Script struct {
	Steps []Step
}

// ParseScript parses the textual script format. Steps may appear in
// any order; execution order is by At (ties by line order).
func ParseScript(text string) (*Script, error) {
	var sc Script
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		step, err := parseStep(line)
		if err != nil {
			return nil, fmt.Errorf("script line %d: %w", ln+1, err)
		}
		sc.Steps = append(sc.Steps, step)
	}
	sort.SliceStable(sc.Steps, func(i, j int) bool { return sc.Steps[i].At < sc.Steps[j].At })
	return &sc, nil
}

func parseStep(line string) (Step, error) {
	f := strings.Fields(line)
	if len(f) < 3 || f[0] != "at" {
		return Step{}, fmt.Errorf("want %q, got %q", "at <time> <verb> ...", line)
	}
	at, err := parseDur(f[1])
	if err != nil {
		return Step{}, fmt.Errorf("bad time %q: %v", f[1], err)
	}
	st := Step{At: at}
	args := f[3:]
	switch f[2] {
	case "pause":
		st.Kind = StepPause
		if st.Node, err = parseNode(args, 0); err == nil {
			st.For, err = parseFor(args, 1)
		}
	case "crash":
		st.Kind = StepCrash
		st.Node, err = parseNode(args, 0)
	case "restart":
		st.Kind = StepRestart
		st.Node, err = parseNode(args, 0)
	case "skew":
		st.Kind = StepSkew
		if st.Node, err = parseNode(args, 0); err == nil {
			if len(args) < 2 {
				err = fmt.Errorf("skew needs an offset")
			} else {
				st.Skew, err = parseSignedDur(args[1])
			}
		}
	case "expire":
		st.Kind = StepExpire
		if len(args) < 2 || args[0] != "shard" {
			err = fmt.Errorf("want %q", "expire shard <i>")
		} else {
			st.Shard, err = strconv.Atoi(args[1])
		}
	case "cut":
		st.Kind = StepCut
		if st.From, st.To, err = parseLink(args, 0); err == nil {
			st.For, err = parseFor(args, 1)
		}
	case "drop", "dup":
		st.Kind = StepDrop
		if f[2] == "dup" {
			st.Kind = StepDup
		}
		if st.From, st.To, err = parseLink(args, 0); err == nil {
			if st.P, err = parseProb(args, 1); err == nil {
				st.For, err = parseFor(args, 2)
			}
		}
	case "delay":
		st.Kind = StepDelay
		if st.From, st.To, err = parseLink(args, 0); err == nil {
			if len(args) < 2 {
				err = fmt.Errorf("delay needs a range")
			} else if lo, hi, ok := strings.Cut(args[1], ".."); !ok {
				err = fmt.Errorf("bad delay range %q", args[1])
			} else if st.DelayMin, err = parseDur(lo); err == nil {
				if st.DelayMax, err = parseDur(hi); err == nil {
					st.For, err = parseFor(args, 2)
				}
			}
		}
		if err == nil && st.DelayMax < st.DelayMin {
			err = fmt.Errorf("delay range inverted")
		}
	default:
		err = fmt.Errorf("unknown verb %q", f[2])
	}
	if err != nil {
		return Step{}, err
	}
	if st.At < 0 || st.For < 0 {
		return Step{}, fmt.Errorf("negative time")
	}
	return st, nil
}

func parseDur(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return d, nil
}

func parseSignedDur(s string) (time.Duration, error) {
	neg := strings.HasPrefix(s, "-")
	if !neg && !strings.HasPrefix(s, "+") {
		return 0, fmt.Errorf("offset %q needs an explicit sign (+5ms / -5ms)", s)
	}
	d, err := time.ParseDuration(strings.TrimPrefix(s, "+"))
	if err != nil {
		return 0, err
	}
	if neg != (d < 0) { // "-5ms" parses negative already; reject "--"
		return 0, fmt.Errorf("bad offset %q", s)
	}
	return d, nil
}

func parseNode(args []string, i int) (int, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing node")
	}
	return parseEndpoint(args[i], false)
}

func parseEndpoint(s string, allowSpecial bool) (int, error) {
	if allowSpecial {
		switch s {
		case "svc":
			return svcID, nil
		case "*":
			return AnyEndpoint, nil
		}
	}
	if strings.HasPrefix(s, "n") {
		if n, err := strconv.Atoi(s[1:]); err == nil && n >= 0 {
			return n, nil
		}
	}
	return 0, fmt.Errorf("bad endpoint %q", s)
}

func parseLink(args []string, i int) (from, to int, err error) {
	if i >= len(args) {
		return 0, 0, fmt.Errorf("missing link")
	}
	a, b, ok := strings.Cut(args[i], "->")
	if !ok {
		return 0, 0, fmt.Errorf("bad link %q", args[i])
	}
	if from, err = parseEndpoint(a, true); err != nil {
		return
	}
	to, err = parseEndpoint(b, true)
	return
}

func parseProb(args []string, i int) (float64, error) {
	if i >= len(args) || !strings.HasPrefix(args[i], "p=") {
		return 0, fmt.Errorf("missing p=<prob>")
	}
	p, err := strconv.ParseFloat(args[i][2:], 64)
	if err != nil || math.IsNaN(p) || p < 0 || p > 1 {
		return 0, fmt.Errorf("bad probability %q", args[i])
	}
	return p, nil
}

func parseFor(args []string, i int) (time.Duration, error) {
	if i+1 >= len(args) || args[i] != "for" {
		return 0, fmt.Errorf("missing %q window", "for <dur>")
	}
	return parseDur(args[i+1])
}

// Format renders the script in canonical form; ParseScript(Format(s))
// reproduces s exactly (the round-trip FuzzFaultScript pins).
func (sc *Script) Format() string {
	var b strings.Builder
	for _, st := range sc.Steps {
		fmt.Fprintf(&b, "at %s %s", st.At, stepVerbs[st.Kind])
		switch st.Kind {
		case StepPause:
			fmt.Fprintf(&b, " %s for %s", epName(st.Node), st.For)
		case StepCrash, StepRestart:
			fmt.Fprintf(&b, " %s", epName(st.Node))
		case StepSkew:
			sign := "+"
			if st.Skew < 0 {
				sign = "" // the duration renders its own minus
			}
			fmt.Fprintf(&b, " %s %s%s", epName(st.Node), sign, st.Skew)
		case StepExpire:
			fmt.Fprintf(&b, " shard %d", st.Shard)
		case StepCut:
			fmt.Fprintf(&b, " %s->%s for %s", epName(st.From), epName(st.To), st.For)
		case StepDrop, StepDup:
			fmt.Fprintf(&b, " %s->%s p=%s for %s", epName(st.From), epName(st.To),
				strconv.FormatFloat(st.P, 'g', -1, 64), st.For)
		case StepDelay:
			fmt.Fprintf(&b, " %s->%s %s..%s for %s", epName(st.From), epName(st.To),
				st.DelayMin, st.DelayMax, st.For)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatStep renders step i alone (failure dumps).
func (sc *Script) FormatStep(i int) string {
	if i < 0 || i >= len(sc.Steps) {
		return "<none>"
	}
	one := Script{Steps: []Step{sc.Steps[i]}}
	return strings.TrimSuffix(one.Format(), "\n")
}

func epName(id int) string {
	switch id {
	case svcID:
		return "svc"
	case AnyEndpoint:
		return "*"
	default:
		return fmt.Sprintf("n%d", id)
	}
}

// Neuter returns a copy of the script with every step defanged: link
// probabilities zeroed, delay ranges and pause windows collapsed to
// zero, skews zeroed, and steps with no zero-effect form (crash,
// restart, expire, cut) removed. A neutered script still schedules its
// surviving steps in the fault band; because fault events order in a
// separate band, running a neutered script must be indistinguishable
// from running no script at all — the property FuzzFaultScript checks.
func (sc *Script) Neuter() *Script {
	out := &Script{}
	for _, st := range sc.Steps {
		switch st.Kind {
		case StepCrash, StepRestart, StepExpire, StepCut:
			continue
		case StepPause:
			st.For = 0
		case StepSkew:
			st.Skew = 0
		case StepDrop, StepDup:
			st.P = 0
		case StepDelay:
			st.DelayMin, st.DelayMax = 0, 0
		}
		out.Steps = append(out.Steps, st)
	}
	return out
}

// Validate checks the script against a cluster size: node endpoints
// and shard indices must exist.
func (sc *Script) Validate(nodes, shards int) error {
	okEp := func(id int) bool {
		return id == svcID || id == AnyEndpoint || (id >= 0 && id < nodes)
	}
	for i, st := range sc.Steps {
		switch st.Kind {
		case StepPause, StepCrash, StepRestart, StepSkew:
			if st.Node < 0 || st.Node >= nodes {
				return fmt.Errorf("step %d: node n%d out of range (nodes=%d)", i, st.Node, nodes)
			}
		case StepExpire:
			if st.Shard < 0 || st.Shard >= shards {
				return fmt.Errorf("step %d: shard %d out of range (shards=%d)", i, st.Shard, shards)
			}
		default:
			if !okEp(st.From) || !okEp(st.To) {
				return fmt.Errorf("step %d: link endpoint out of range", i)
			}
		}
	}
	return nil
}
