package cluster

import (
	"fmt"
	"time"

	"repro/internal/backoff"
	"repro/internal/kvstore"
	"repro/internal/xrand"
)

// leaseState is one node's view of its lease FSM for one shard.
type leaseState int

const (
	lsIdle       leaseState = iota
	lsRequesting            // acquire sent, awaiting grant/deny
	lsBackoff               // denied; waiting out a jittered backoff
	lsSyncing               // granted; merging replica states
	lsWriting               // critical section: issuing fenced writes
	lsHolding               // writes done; holding until release
)

var leaseStateNames = [...]string{"idle", "requesting", "backoff", "syncing", "writing", "holding"}

type shardLease struct {
	state leaseState
	epoch uint64
	// localExpiry is when this node stops trusting the lease, on its
	// own (possibly skewed) clock: grant receipt + TTL - guard band.
	localExpiry time.Duration
	bo          *backoff.Backoff
	reqSeq      int  // matches acquire timeouts to the outstanding request
	reconcile   bool // post-heal anti-entropy acquisition

	syncPending map[int]bool
	views       map[int]map[string]versioned // responder (and self) shard states
	writesLeft  int
}

// writeRec tracks one replicated write at its origin: which peers have
// not acknowledged it (retransmit targets), whether it was fenced off
// (abandoned), and whether every replica has it (committed). The
// record set is volatile — a crash wipes the retransmit obligation,
// which is exactly the divergence sync rounds must repair.
type writeRec struct {
	wid      int
	shard    int
	epoch    uint64
	seq      uint64
	key, val string

	pending   map[int]bool
	abandoned bool
	committed bool
}

// node is one simulated cluster member: a durable fenced replica plus
// volatile protocol state. Crash loses everything volatile; pause
// buffers the inbox and defers timers (the GC-pause model: the node's
// world stops, the cluster's does not).
type node struct {
	s  *sim
	id int

	// Durable across crash/restart.
	store    *kvstore.Fenced
	versions map[string]versioned
	wseq     uint64 // durable write-log position: ids stay unique across incarnations

	// Volatile.
	alive    bool
	paused   bool
	gen      uint64
	inbox    []*message
	deferred []*event
	skew     time.Duration
	leases   []shardLease
	outbox   []*writeRec
	wmap     map[uint64]*writeRec // write seq -> record, for ack routing
}

func (n *node) localNow() time.Duration { return n.s.now + n.skew }

// rng is the stream this node's own draws come from: the shared
// simulation stream classically, or the node's private stream under
// Config.SplitRNG (so that reordering events on other endpoints cannot
// change what this node draws — the commutativity the explorer's
// independence relation needs).
func (n *node) rng() *xrand.XorShift64 {
	if n.s.nodeRngs != nil {
		return n.s.nodeRngs[n.id]
	}
	return n.s.rng
}

// timer schedules a node-local timer guarded by the current generation.
func (n *node) timer(delay time.Duration, tk timerKind, shard, wid int) {
	n.s.schedule(n.s.now+delay, &event{
		kind: evTimer, node: n.id, tk: tk, shard: shard, gen: n.gen, wid: wid,
	})
}

func (n *node) peers() []int {
	out := make([]int, 0, len(n.s.nodes)-1)
	for i := range n.s.nodes {
		if i != n.id {
			out = append(out, i)
		}
	}
	return out
}

// --- acquisition ---

func (n *node) tryAcquire(shard int, reconcile bool) {
	ls := &n.leases[shard]
	ls.state = lsRequesting
	ls.reconcile = reconcile
	ls.reqSeq++
	n.s.check.onAcquireSend(n.id, shard, n.s.now)
	n.s.send(&message{kind: mAcquire, from: n.id, to: svcID, shard: shard})
	n.timer(n.s.cfg.AcquireTimeout, tAcquireTO, shard, ls.reqSeq)
}

// backoffRetry handles a deny (explicit or by timeout): draw the next
// capped decorrelated-jitter delay and schedule the retry. The first
// delay of an episode is exactly the policy Base — the floor the
// livelock checker asserts.
func (n *node) backoffRetry(shard int) {
	ls := &n.leases[shard]
	if ls.bo == nil {
		ls.bo = backoff.New(n.s.cfg.Backoff, n.rng().Uint64())
	}
	d := ls.bo.Next()
	n.s.check.onDeny(n.id, shard, n.s.now)
	ls.state = lsBackoff
	n.timer(d, tRetry, shard, 0)
}

func (n *node) onGrant(m *message) {
	ls := &n.leases[m.shard]
	if ls.state != lsRequesting {
		// Late grant (we timed out and moved on): never use it; the
		// lease lapses at the service by TTL.
		n.s.tracef("n%d: ignoring late %s (state %s)", n.id, m, leaseStateNames[ls.state])
		return
	}
	ls.state = lsSyncing
	ls.epoch = m.epoch
	ls.localExpiry = n.localNow() + n.s.cfg.TTL - n.s.cfg.GuardBand
	ls.bo = nil
	n.s.check.onGrantSeen(n.id, m.shard)
	n.store.Advance(m.shard, m.epoch)

	// Sync round: collect every peer's shard state, so writes admitted
	// under earlier epochs but not fully replicated get repaired under
	// this epoch's authority before (and instead of) diverging.
	ls.syncPending = make(map[int]bool)
	ls.views = map[int]map[string]versioned{n.id: n.snapshotShard(m.shard)}
	for _, p := range n.peers() {
		ls.syncPending[p] = true
		n.s.send(&message{kind: mSyncReq, from: n.id, to: p, shard: m.shard, epoch: m.epoch})
	}
	if len(ls.syncPending) == 0 {
		n.finishSync(m.shard)
	} else if !ls.reconcile {
		n.timer(n.s.cfg.SyncTimeout, tSyncTO, m.shard, int(m.epoch))
	}
	n.timer(n.s.cfg.TTL/2, tRenew, m.shard, int(m.epoch))
	if !ls.reconcile {
		n.timer(n.s.cfg.Hold, tRelease, m.shard, int(m.epoch))
	}
}

func (n *node) snapshotShard(shard int) map[string]versioned {
	out := make(map[string]versioned)
	for key, v := range n.versions {
		if n.s.keyShard[key] == shard {
			out[key] = v
		}
	}
	return out
}

// finishSync merges the collected views and re-replicates, under the
// new epoch, every key some view disagrees on. A normal grant then
// enters its critical section; a reconcile grant waits for the diff
// writes to drain and releases.
func (n *node) finishSync(shard int) {
	ls := &n.leases[shard]
	merged := make(map[string]versioned)
	for _, view := range ls.views {
		for key, v := range view {
			if cur, ok := merged[key]; !ok || cur.less(v) {
				merged[key] = v
			}
		}
	}
	diff := make([]string, 0)
	for key, maxv := range merged {
		for _, view := range ls.views {
			if v, ok := view[key]; !ok || v != maxv {
				diff = append(diff, key)
				break
			}
		}
	}
	sortStrings(diff)
	for _, key := range diff {
		if !n.issueWrite(shard, key, merged[key].val) {
			return // fenced at origin: lease already dead
		}
		n.s.counters.SyncDiffs++
	}
	if ls.reconcile {
		ls.state = lsHolding
		n.maybeFinishReconcile(shard)
		return
	}
	ls.state = lsWriting
	ls.writesLeft = n.s.cfg.WritesPerCS
	n.timer(n.s.cfg.WriteGap, tWrite, shard, int(ls.epoch))
}

// --- writes ---

// issueWrite applies one fenced write locally and replicates it to all
// peers with retransmission until acknowledged. Reports false when the
// write was fenced off at the origin itself — the lease is dead and
// the caller must stop its critical section.
func (n *node) issueWrite(shard int, key, val string) bool {
	ls := &n.leases[shard]
	n.wseq++
	v := versioned{epoch: ls.epoch, seq: n.wseq, val: val}
	if err := n.store.Apply([]byte(key), []byte(val), ls.epoch); err != nil {
		n.s.counters.FencedWrites++
		n.s.tracef("n%d: own write %s w%d fenced at origin (e%d < fence)", n.id, key, n.wseq, ls.epoch)
		n.abortLease(shard, "fenced at origin")
		return false
	}
	n.applyVersion(key, v)
	rec := &writeRec{
		wid: len(n.outbox), shard: shard, epoch: ls.epoch, seq: n.wseq,
		key: key, val: val, pending: make(map[int]bool),
	}
	n.outbox = append(n.outbox, rec)
	n.wmap[rec.seq] = rec
	n.s.counters.Writes++
	n.s.allWrites = append(n.s.allWrites, rec)
	for _, p := range n.peers() {
		rec.pending[p] = true
		n.s.send(&message{kind: mWrite, from: n.id, to: p, shard: shard,
			epoch: rec.epoch, seq: rec.seq, key: key, val: val})
	}
	n.timer(n.s.cfg.RetransTick, tRetransmit, shard, rec.wid)
	return true
}

func (n *node) applyVersion(key string, v versioned) {
	n.s.check.onVersion(n.id, key, v)
	n.versions[key] = v
}

func (n *node) onWrite(m *message) {
	v := versioned{epoch: m.epoch, seq: m.seq, val: m.val}
	ack := &message{kind: mAck, from: n.id, to: m.from, shard: m.shard, epoch: m.epoch, seq: m.seq}
	if cur, ok := n.versions[m.key]; ok && !cur.less(v) && !n.s.cfg.BreakDedup {
		// Duplicate or superseded: already at this version or newer.
		n.s.send(ack)
		return
	}
	if err := n.store.Apply([]byte(m.key), []byte(m.val), m.epoch); err != nil {
		// Stale fencing token: a newer lease's authority reached this
		// replica first. Reject, and tell the origin to stop trying.
		n.s.counters.StaleRejected++
		ack.stale = true
		n.s.send(ack)
		return
	}
	n.applyVersion(m.key, v)
	n.s.send(ack)
}

func (n *node) onAck(m *message) {
	rec := n.wmap[m.seq]
	if rec == nil || rec.abandoned || rec.committed {
		return
	}
	if m.stale {
		rec.abandoned = true
		n.s.counters.FencedWrites++
		n.s.tracef("n%d: write w%d %s abandoned: fenced at %s", n.id, rec.seq, rec.key, epName(m.from))
		// The lease this write rode on is dead; stop the critical
		// section if it is still running under that epoch.
		ls := &n.leases[rec.shard]
		if ls.epoch == rec.epoch && (ls.state == lsSyncing || ls.state == lsWriting || ls.state == lsHolding) {
			n.abortLease(rec.shard, "write fenced by newer epoch")
		}
		return
	}
	delete(rec.pending, m.from)
	if len(rec.pending) == 0 {
		rec.committed = true
		n.s.counters.Committed++
		n.maybeFinishReconcile(rec.shard)
	}
}

// --- lease lifecycle ---

func (n *node) abortLease(shard int, why string) {
	ls := &n.leases[shard]
	n.s.tracef("n%d: abandoning lease s%d e%d (%s): %s", n.id, shard, ls.epoch, leaseStateNames[ls.state], why)
	if ls.reconcile {
		// Reconcile must complete: go back to acquiring.
		ls.state = lsIdle
		n.timer(n.s.cfg.RetransTick, tReconcile, shard, 0)
		return
	}
	ls.state = lsIdle
}

func (n *node) maybeFinishReconcile(shard int) {
	ls := &n.leases[shard]
	if !ls.reconcile || ls.state != lsHolding {
		return
	}
	for _, rec := range n.outbox {
		if rec.shard == shard && rec.epoch == ls.epoch && !rec.committed && !rec.abandoned {
			return
		}
	}
	n.s.send(&message{kind: mRelease, from: n.id, to: svcID, shard: shard, epoch: ls.epoch})
	ls.state = lsIdle
	ls.reconcile = false
	n.s.reconciled[shard] = true
	n.s.tracef("n%d: reconciled s%d at e%d", n.id, shard, ls.epoch)
}

func (n *node) leaseValid(ls *shardLease) bool { return n.localNow() < ls.localExpiry }

// --- message dispatch ---

func (n *node) handle(m *message) {
	switch m.kind {
	case mGrant:
		n.onGrant(m)
	case mDeny:
		if n.leases[m.shard].state == lsRequesting {
			n.backoffRetry(m.shard)
		}
	case mRenewOK:
		ls := &n.leases[m.shard]
		if ls.epoch == m.epoch && ls.state >= lsSyncing {
			ls.localExpiry = n.localNow() + n.s.cfg.TTL - n.s.cfg.GuardBand
		}
	case mRenewDeny:
		ls := &n.leases[m.shard]
		if ls.epoch == m.epoch && ls.state >= lsSyncing {
			n.abortLease(m.shard, "renewal denied")
		}
	case mSyncReq:
		// Learning of the new lease advances this replica's fence even
		// before the holder's first write — prompt fencing is what
		// bounds the stale-write window after an expiry.
		n.store.Advance(m.shard, m.epoch)
		n.s.send(&message{kind: mSyncResp, from: n.id, to: m.from, shard: m.shard,
			epoch: m.epoch, state: n.snapshotShard(m.shard)})
	case mSyncResp:
		ls := &n.leases[m.shard]
		if ls.state != lsSyncing || ls.epoch != m.epoch {
			return
		}
		ls.views[m.from] = m.state
		delete(ls.syncPending, m.from)
		if len(ls.syncPending) == 0 {
			n.finishSync(m.shard)
		}
	case mWrite:
		n.onWrite(m)
	case mAck:
		n.onAck(m)
	default:
		n.s.tracef("n%d: unexpected %s", n.id, m)
	}
}

// --- timers ---

func (n *node) onTimer(e *event) {
	ls := &n.leases[e.shard]
	switch e.tk {
	case tWorkload:
		if n.s.now < n.s.cfg.Duration {
			shard := n.rng().Intn(n.s.cfg.Shards)
			if n.leases[shard].state == lsIdle {
				n.tryAcquire(shard, false)
			}
			jitter := time.Duration(n.rng().Uint64() % uint64(n.s.cfg.WorkloadEvery/2+1))
			n.timer(n.s.cfg.WorkloadEvery+jitter, tWorkload, 0, 0)
		}
	case tRetry:
		if ls.state == lsBackoff {
			n.tryAcquire(e.shard, ls.reconcile)
		}
	case tAcquireTO:
		if ls.state == lsRequesting && ls.reqSeq == e.wid {
			n.backoffRetry(e.shard)
		}
	case tRenew:
		if ls.epoch == uint64(e.wid) && ls.state >= lsSyncing && n.leaseValid(ls) {
			n.s.send(&message{kind: mRenew, from: n.id, to: svcID, shard: e.shard, epoch: ls.epoch})
			n.timer(n.s.cfg.TTL/2, tRenew, e.shard, e.wid)
		}
	case tSyncTO:
		if ls.state == lsSyncing && ls.epoch == uint64(e.wid) {
			n.s.tracef("n%d: sync s%d e%d proceeding with %d/%d peers",
				n.id, e.shard, ls.epoch, len(ls.views)-1, len(n.s.nodes)-1)
			n.finishSync(e.shard)
		}
	case tWrite:
		if ls.state != lsWriting || ls.epoch != uint64(e.wid) {
			return
		}
		if !n.leaseValid(ls) {
			n.abortLease(e.shard, "lease expired mid-critical-section")
			return
		}
		keys := n.s.shardKeys[e.shard]
		key := keys[n.rng().Intn(len(keys))]
		val := fmt.Sprintf("n%d.e%d.w%d", n.id, ls.epoch, n.wseq+1)
		if !n.issueWrite(e.shard, key, val) {
			return
		}
		ls.writesLeft--
		if ls.writesLeft > 0 {
			n.timer(n.s.cfg.WriteGap, tWrite, e.shard, e.wid)
		} else {
			ls.state = lsHolding
		}
	case tRelease:
		if ls.epoch == uint64(e.wid) && ls.state >= lsSyncing && !ls.reconcile {
			if n.leaseValid(ls) {
				n.s.send(&message{kind: mRelease, from: n.id, to: svcID, shard: e.shard, epoch: ls.epoch})
			}
			ls.state = lsIdle
		}
	case tRetransmit:
		if e.wid >= len(n.outbox) {
			return
		}
		rec := n.outbox[e.wid]
		if rec.abandoned || rec.committed {
			return
		}
		targets := make([]int, 0, len(rec.pending))
		for p := range rec.pending {
			targets = append(targets, p)
		}
		sortInts(targets)
		for _, p := range targets {
			n.s.counters.Retransmits++
			n.s.send(&message{kind: mWrite, from: n.id, to: p, shard: rec.shard,
				epoch: rec.epoch, seq: rec.seq, key: rec.key, val: rec.val})
		}
		n.timer(n.s.cfg.RetransTick, tRetransmit, rec.shard, rec.wid)
	case tReconcile:
		if ls.state == lsIdle {
			n.tryAcquire(e.shard, true)
		} else {
			n.timer(n.s.cfg.RetransTick, tReconcile, e.shard, 0)
		}
	}
}

// --- faults ---

func (n *node) pause() {
	if n.paused || !n.alive {
		return
	}
	n.paused = true
}

func (n *node) unpause() {
	if !n.paused {
		return
	}
	n.paused = false
	deferred := n.deferred
	n.deferred = nil
	for _, e := range deferred {
		if n.alive && e.gen == n.gen {
			n.onTimer(e)
		}
	}
	inbox := n.inbox
	n.inbox = nil
	for _, m := range inbox {
		if n.alive {
			n.handle(m)
		}
	}
}

func (n *node) crash() {
	if !n.alive {
		return
	}
	n.alive = false
	n.paused = false
	n.gen++
	n.inbox, n.deferred = nil, nil
	lost := 0
	for _, rec := range n.outbox {
		if !rec.committed && !rec.abandoned {
			rec.abandoned = true
			lost++
		}
	}
	n.s.counters.LostWrites += uint64(lost)
	n.outbox, n.wmap = nil, make(map[uint64]*writeRec)
	for i := range n.leases {
		n.leases[i] = shardLease{}
	}
}

func (n *node) restart() {
	if n.alive {
		return
	}
	n.alive = true
	n.gen++
	if n.s.now < n.s.cfg.Duration {
		jitter := time.Duration(n.rng().Uint64() % uint64(n.s.cfg.WorkloadEvery+1))
		n.timer(jitter, tWorkload, 0, 0)
	}
}
