// Package cluster is a deterministic discrete-event simulation of a
// replicated, sharded kvstore cluster coordinated by a lease-based
// lock service that issues monotonically increasing fencing tokens.
//
// N nodes each hold a full replica (a kvstore.Fenced over a sharded
// store). To write a shard, a node acquires that shard's lease from
// the lock service; the grant carries a fencing epoch that the holder
// advertises in a sync round and stamps on every replicated write, and
// every replica's apply path rejects writes fenced below its
// high-water epoch. Leases expire (TTL with half-TTL renewal), holders
// pause, crash, restart, clocks skew, and the network delays, drops,
// duplicates, and partitions — all driven by a declarative fault
// script (see script.go) replayable from a single seed.
//
// Everything runs on one goroutine: a single event queue ordered by
// (time, band, seq) and a single seeded PRNG, no wall clock anywhere.
// The same (seed, script) therefore produces a byte-identical event
// trace and final replica state, which is what turns any invariant
// violation into a one-command repro. Invariant checkers (see
// invariants.go) run continuously during the simulation and a final
// audit runs after the cluster heals and quiesces.
package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/kvstore"
	"repro/internal/xrand"
)

// Config parameterizes one simulation run. The zero value of every
// field selects a sensible default (see withDefaults); the canonical
// scripts are tuned for the default topology and timing.
type Config struct {
	Nodes  int
	Shards int
	Seed   uint64
	Script *Script

	// Duration is the workload horizon: no new workload acquisitions
	// start after it, and the heal fires at it. Heal bounds the drain
	// window after the heal; a run that has not quiesced by
	// Duration+Heal is reported as a livelock.
	Duration time.Duration
	Heal     time.Duration

	// Lease timing: TTL with renewal at TTL/2; a holder stops trusting
	// its lease GuardBand before the TTL it computed at grant receipt
	// (the guard absorbs grant-delivery delay and modest clock skew).
	TTL       time.Duration
	GuardBand time.Duration
	// Hold is how long a workload lease is kept before release.
	Hold time.Duration

	// Workload shape.
	WorkloadEvery time.Duration
	WritesPerCS   int
	WriteGap      time.Duration
	KeysPerShard  int

	// Network timing. NetJitter zero selects the default; a negative
	// value disables jitter entirely (fixed latency, no PRNG draw per
	// send) — the explorer presets use that, since under a Scheduler
	// the schedule window models jitter as an enumerated choice rather
	// than a seeded draw.
	NetDelay  time.Duration
	NetJitter time.Duration

	// Protocol timeouts.
	RetransTick    time.Duration
	SyncTimeout    time.Duration
	AcquireTimeout time.Duration
	ReconcileDelay time.Duration

	// Backoff is the capped decorrelated-jitter policy denied
	// acquirers retry under (shared with internal/bounded's poller).
	Backoff backoff.Policy

	// MaxEvents is the runaway backstop; exceeding it is a violation.
	MaxEvents uint64

	// DisableFencing turns off the replica apply gate on every node,
	// so stale-fenced writes land — and the no-stale-apply checker
	// must catch them. For the negative test only.
	DisableFencing bool

	// BreakDedup disables the replica-side (epoch, seq) duplicate
	// check on the write path: redelivered writes are re-applied and
	// the version-monotonicity checker must catch the regression. For
	// mutation tests only (the explorer must find the interleaving —
	// a retransmit racing its own ack — that exposes it).
	BreakDedup bool

	// SkipReconcile drops the post-heal reconcile acquisitions, so the
	// final anti-entropy pass never runs and the reconciliation (and
	// usually convergence) invariants must fire. For mutation tests.
	SkipReconcile bool

	// Scheduler, when non-nil, turns the simulator into a controlled-
	// schedule machine: it is consulted on every dispatch with the
	// ready set (see popNext for the window semantics) and, when two
	// or more events are ready, its return value picks which one runs
	// next. internal/cluster/explore drives this to enumerate delivery
	// and timer orders exhaustively.
	Scheduler func(ready []ReadyEvent) int

	// ScheduleWindow is how far apart two pending normal-band events'
	// nominal times may be while still counting as racing (reorderable)
	// under a Scheduler. Zero defaults to NetDelay. Ignored without a
	// Scheduler.
	ScheduleWindow time.Duration

	// SplitRNG gives every node its own seeded PRNG stream (and leaves
	// the shared stream to the network) instead of the single global
	// stream. Under a Scheduler this is what makes events on distinct
	// endpoints genuinely commute — with one shared stream, dispatch
	// order decides which draws each handler sees, and no two events
	// are independent. Changes traces, so it is opt-in; the explorer
	// and its presets set it.
	SplitRNG bool

	// NewLock builds each replica's per-shard store lock (the cluster
	// runs single-threaded, so any sync.Locker is safe; conformance
	// plugs in each registry entry here). Nil selects sync.Mutex.
	NewLock func() sync.Locker

	// RealLockName, when non-empty, backs every shard's lease at the
	// lock service with a real registry-built lock of that name
	// (constructed through the full decorator pipeline on a virtual
	// clock slaved to the simulation clock). Every grant, deny, lapse,
	// and release transition of the abstract lease bookkeeping then
	// drives the real lock's TryLock/Unlock doorway, and any
	// disagreement between the two admissions is a ClassRealLock
	// violation — the abstract FSM and the actual lock implementation
	// are required to agree on every admission decision of the run.
	RealLockName string
}

func (c Config) withDefaults() Config {
	def := func(d *time.Duration, v time.Duration) {
		if *d <= 0 {
			*d = v
		}
	}
	if c.Nodes <= 0 {
		c.Nodes = 5
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	def(&c.Duration, 1500*time.Millisecond)
	def(&c.Heal, 2*time.Second)
	def(&c.TTL, 120*time.Millisecond)
	def(&c.GuardBand, 30*time.Millisecond)
	def(&c.Hold, 50*time.Millisecond)
	def(&c.WorkloadEvery, 60*time.Millisecond)
	if c.WritesPerCS <= 0 {
		c.WritesPerCS = 3
	}
	def(&c.WriteGap, 3*time.Millisecond)
	if c.KeysPerShard <= 0 {
		c.KeysPerShard = 4
	}
	def(&c.NetDelay, time.Millisecond)
	if c.NetJitter == 0 {
		c.NetJitter = 500 * time.Microsecond
	} else if c.NetJitter < 0 {
		c.NetJitter = 0
	}
	def(&c.RetransTick, 15*time.Millisecond)
	def(&c.SyncTimeout, 30*time.Millisecond)
	def(&c.AcquireTimeout, 60*time.Millisecond)
	def(&c.ReconcileDelay, 150*time.Millisecond)
	c.Backoff = c.Backoff.WithDefaults()
	if c.Backoff.Base >= c.TTL {
		c.Backoff.Base = c.TTL / 8
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 2_000_000
	}
	if c.Scheduler != nil {
		def(&c.ScheduleWindow, c.NetDelay)
	}
	if c.NewLock == nil {
		c.NewLock = func() sync.Locker { return &sync.Mutex{} }
	}
	return c
}

// Counters are the run's aggregate statistics.
type Counters struct {
	Sent          uint64 // messages entering the network
	Dropped       uint64 // lost to drop/cut rules or crashed receivers
	Duplicated    uint64 // extra copies from dup rules
	Retransmits   uint64 // write re-sends
	Grants        uint64
	Denies        uint64
	Writes        uint64 // writes issued by holders (incl. sync diffs)
	Committed     uint64 // writes acknowledged by every replica
	StaleRejected uint64 // replica applies fenced off as stale
	FencedWrites  uint64 // origin-side writes abandoned to fencing
	LostWrites    uint64 // uncommitted writes wiped by crashes
	SyncDiffs     uint64 // divergent cells repaired by sync rounds
}

// Result is one simulation run's outcome.
type Result struct {
	Config     Config
	Violations []Violation
	Counters   Counters
	Events     uint64
	End        time.Duration // simulated time at quiescence
	// FinalState is node 0's replica rendered canonically; when the
	// convergence invariant holds it is every replica's state.
	FinalState string
	// Trace is the full event trace ("[time] what"), byte-identical
	// across runs of the same (seed, script).
	Trace []string
}

// TraceTail returns the last k trace lines.
func (r *Result) TraceTail(k int) []string {
	if k > len(r.Trace) {
		k = len(r.Trace)
	}
	return r.Trace[len(r.Trace)-k:]
}

// FailureReport renders violations with everything needed to replay
// them: the seed, the script, the offending steps, and the trace
// suffix. reproCmd, when non-empty, is echoed as the one-command
// repro line (cmd/clustersim passes its own invocation).
func (r *Result) FailureReport(reproCmd string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d invariant violation(s), seed=%d\n", len(r.Violations), r.Config.Seed)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	if r.Config.Script != nil && len(r.Config.Script.Steps) > 0 {
		b.WriteString("fault script:\n")
		for _, line := range strings.Split(strings.TrimSpace(r.Config.Script.Format()), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	tail := r.TraceTail(40)
	fmt.Fprintf(&b, "trace (last %d of %d events):\n", len(tail), len(r.Trace))
	for _, line := range tail {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	if reproCmd != "" {
		fmt.Fprintf(&b, "repro: %s\n", reproCmd)
	}
	return b.String()
}

// sim is the running simulation.
type sim struct {
	cfg Config
	rng *xrand.XorShift64
	// nodeRngs holds the per-node streams under Config.SplitRNG; nil
	// means every draw comes from the shared rng (the classic mode).
	nodeRngs []*xrand.XorShift64

	queue    eventQueue
	seq      uint64
	faultSeq uint64
	now      time.Duration
	events   uint64

	nodes   []*node
	service *lockService
	check   *checker
	rules   []linkRule

	shardKeys  [][]string
	keyShard   map[string]int
	reconciled []bool
	allWrites  []*writeRec

	counters Counters
	trace    []string
	lastStep int
}

// Run executes one simulation. It returns an error only for invalid
// configuration; protocol misbehavior surfaces as Result.Violations.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Script != nil {
		if err := cfg.Script.Validate(cfg.Nodes, cfg.Shards); err != nil {
			return nil, err
		}
	}
	s := &sim{
		cfg:        cfg,
		rng:        xrand.NewXorShift64(cfg.Seed),
		keyShard:   make(map[string]int),
		reconciled: make([]bool, cfg.Shards),
		lastStep:   -1,
	}
	if cfg.SplitRNG {
		// Derive independent streams: the shared rng keeps the first
		// SplitMix word (network draws), each node gets its own.
		sm := xrand.NewSplitMix64(cfg.Seed)
		s.rng = xrand.NewXorShift64(sm.Uint64())
		s.nodeRngs = make([]*xrand.XorShift64, cfg.Nodes)
		for i := range s.nodeRngs {
			s.nodeRngs[i] = xrand.NewXorShift64(sm.Uint64())
		}
	}
	s.check = newChecker(s, cfg.Shards)
	svc, err := newLockService(s, cfg.Shards)
	if err != nil {
		return nil, err
	}
	s.service = svc

	for i := 0; i < cfg.Nodes; i++ {
		n := &node{
			s: s, id: i, alive: true,
			versions: make(map[string]versioned),
			leases:   make([]shardLease, cfg.Shards),
			wmap:     make(map[uint64]*writeRec),
		}
		n.store = kvstore.NewFenced(kvstore.OpenSharded(kvstore.ShardedOptions{
			Shards:  cfg.Shards,
			NewLock: cfg.NewLock,
		}))
		n.store.DisableFencing = cfg.DisableFencing
		id := i
		n.store.OnApply = func(rec kvstore.ApplyRecord) { s.check.onApply(id, rec) }
		s.nodes = append(s.nodes, n)
	}
	s.buildKeys()

	// Initial workload ticks, staggered per node.
	for _, n := range s.nodes {
		jitter := time.Duration(n.rng().Uint64() % uint64(cfg.WorkloadEvery+1))
		n.timer(jitter, tWorkload, 0, 0)
	}
	// Script steps and the heal, in the fault band.
	if cfg.Script != nil {
		for i := range cfg.Script.Steps {
			s.scheduleFault(cfg.Script.Steps[i].At, &event{kind: evFault, step: i})
		}
	}
	s.scheduleFault(cfg.Duration, &event{kind: evHeal})

	deadline := cfg.Duration + cfg.Heal
	for len(s.queue) > 0 {
		e := s.popNext()
		if e.at > deadline {
			s.now = deadline
			s.check.fail(ClassQuiesce, "failed to quiesce: events still pending %v after the heal window (next at %v)",
				cfg.Heal, e.at)
			break
		}
		// Under a Scheduler a chosen event may be dispatched after a
		// later-stamped one already ran (a late delivery); the clock
		// only ever moves forward.
		if e.at > s.now {
			s.now = e.at
		}
		s.events++
		if s.events > cfg.MaxEvents {
			s.check.fail(ClassLivelock, "livelock: exceeded %d events at %v", cfg.MaxEvents, s.now)
			break
		}
		s.dispatch(e)
	}
	s.check.finish()

	return &Result{
		Config:     cfg,
		Violations: s.check.violations,
		Counters:   s.counters,
		Events:     s.events,
		End:        s.now,
		FinalState: dumpReplica(s.nodes[0].versions),
		Trace:      s.trace,
	}, nil
}

// buildKeys assigns KeysPerShard keys to every shard by probing key
// names until each shard's quota fills — the sim's shard of a key is
// exactly the store's hash shard, so fences and keys always agree.
func (s *sim) buildKeys() {
	s.shardKeys = make([][]string, s.cfg.Shards)
	idx := s.nodes[0].store.Store()
	need := s.cfg.Shards * s.cfg.KeysPerShard
	for i := 0; need > 0; i++ {
		key := fmt.Sprintf("key-%03d", i)
		sh := idx.ShardIndex([]byte(key))
		if len(s.shardKeys[sh]) < s.cfg.KeysPerShard {
			s.shardKeys[sh] = append(s.shardKeys[sh], key)
			s.keyShard[key] = sh
			need--
		}
	}
}

func (s *sim) dispatch(e *event) {
	switch e.kind {
	case evDeliver:
		s.tracef("deliver %s", e.msg)
		s.deliver(e.msg)
	case evTimer:
		n := s.nodes[e.node]
		if !n.alive || e.gen != n.gen {
			return
		}
		if n.paused {
			n.deferred = append(n.deferred, e)
			return
		}
		n.onTimer(e)
	case evFault:
		s.applyStep(e.step)
	case evUnpause:
		s.nodes[e.node].unpause()
	case evHeal:
		s.heal()
	}
}

// applyStep executes one script step. Every trace line it emits is
// prefixed "fault:" so the fuzz harness can filter fault narration
// when comparing a neutered run against a script-free one.
func (s *sim) applyStep(i int) {
	st := s.cfg.Script.Steps[i]
	s.lastStep = i
	s.tracef("fault: %s", s.cfg.Script.FormatStep(i))
	switch st.Kind {
	case StepPause:
		s.nodes[st.Node].pause()
		s.scheduleFault(s.now+st.For, &event{kind: evUnpause, node: st.Node})
	case StepCrash:
		s.nodes[st.Node].crash()
	case StepRestart:
		s.nodes[st.Node].restart()
	case StepSkew:
		s.nodes[st.Node].skew = st.Skew
	case StepExpire:
		s.service.forceExpire(st.Shard)
	case StepCut, StepDrop, StepDup, StepDelay:
		s.rules = append(s.rules, linkRule{
			kind: st.Kind, from: st.From, to: st.To,
			p: st.P, dmin: st.DelayMin, dmax: st.DelayMax,
			until: s.now + st.For,
		})
	}
}

// heal ends the fault era: every node is unpaused and restarted,
// skews and link rules clear, and one reconcile acquisition per shard
// is scheduled — the final anti-entropy pass that guarantees replica
// convergence before the end-of-run audit.
func (s *sim) heal() {
	s.tracef("heal: faults end, reconciling %d shards", s.cfg.Shards)
	for _, n := range s.nodes {
		n.unpause()
		n.restart()
		n.skew = 0
	}
	s.rules = nil
	if s.cfg.SkipReconcile {
		s.tracef("heal: reconcile skipped (mutation)")
		return
	}
	for shard := 0; shard < s.cfg.Shards; shard++ {
		target := s.nodes[shard%s.cfg.Nodes]
		delay := s.cfg.ReconcileDelay + time.Duration(shard)*5*time.Millisecond
		s.schedule(s.now+delay, &event{
			kind: evTimer, node: target.id, tk: tReconcile, shard: shard, gen: target.gen,
		})
	}
}

func (s *sim) tracef(format string, args ...any) {
	s.trace = append(s.trace, fmt.Sprintf("[%v] ", s.now)+fmt.Sprintf(format, args...))
}

func (s *sim) lastStepText() string {
	if s.cfg.Script == nil || s.lastStep < 0 {
		return "<none>"
	}
	return s.cfg.Script.FormatStep(s.lastStep)
}

func sortStrings(v []string) { sort.Strings(v) }
func sortInts(v []int)       { sort.Ints(v) }
