package cluster

import (
	"fmt"
	"sort"
)

// CanonicalScripts are the named fault schedules shipped with the
// simulator (cmd/clustersim -script <name>) and run as the cluster
// test tier across fixed seeds. Each targets one failure family the
// lease/fencing protocol must degrade gracefully under; they assume
// the default topology (5 nodes, 4 shards) but Validate against any
// cluster at least that large.
var CanonicalScripts = map[string]string{
	// A holder is paused (GC-pause model: inbox buffered, timers
	// deferred) for longer than the lease TTL. The service re-grants;
	// when the holder wakes, its buffered retransmits carry the old
	// epoch and must be fenced off everywhere.
	"lease-expiry-mid-cs": `
at 180ms pause n1 for 400ms
at 900ms pause n3 for 350ms
at 1400ms expire shard 0
at 1400ms expire shard 1
`,
	// Every lease for a while is cut short at the service, so all
	// nodes pile onto re-acquisition at once. Backoff jitter must
	// spread the herd instead of letting it livelock.
	"thundering-herd": `
at 100ms expire shard 0
at 100ms expire shard 1
at 100ms expire shard 2
at 100ms expire shard 3
at 300ms expire shard 0
at 300ms expire shard 1
at 300ms expire shard 2
at 300ms expire shard 3
at 500ms expire shard 0
at 500ms expire shard 2
`,
	// Asymmetric partition: n2 can hear the service but not reach it,
	// and loses its outbound path to n0. Grants and acks keep arriving
	// while requests, renewals, and writes vanish — the classic
	// half-open link.
	"asym-partition": `
at 150ms cut n2->svc for 600ms
at 150ms cut n2->n0 for 600ms
at 850ms drop n2->* p=0.4 for 300ms
`,
	// One slow node: every message to and from n4 crawls. Its leases
	// arrive nearly expired (the grant guard band eats the rest), its
	// renewals miss, and everyone else's sync rounds must not stall on
	// it past the sync deadline.
	"slow-node": `
at 100ms delay n4->* 30ms..60ms for 900ms
at 100ms delay *->n4 30ms..60ms for 900ms
at 1100ms delay svc->n4 20ms..40ms for 400ms
`,
	// A holder crashes mid-critical-section, then restarts cold: its
	// outbox (and with it the retransmit obligations) is gone, so the
	// writes it applied locally but never fully replicated must be
	// repaired by later sync rounds.
	"crash-during-handoff": `
at 200ms crash n0
at 600ms restart n0
at 900ms crash n2
at 950ms expire shard 2
at 1300ms restart n2
`,
	// Forced expiries in quick succession on one shard: every few tens
	// of milliseconds the current lease is cut short, so epochs churn
	// while writes from the deposed holder are still in flight. Small
	// enough to validate against the explorer's 2-node/1-shard preset;
	// also runs (shard 0 only) on the default topology.
	"expire-churn": `
at 50ms expire shard 0
at 90ms expire shard 0
at 130ms expire shard 0
`,
	// The same churn compressed to the explorer presets' short horizon
	// (see internal/cluster/presets.go): expiries land while a holder
	// is mid-critical-section, so old-epoch writes are still in flight
	// when the next epoch's fence spreads. This is the script the
	// schedule explorer's mutation hunts run under.
	"expire-churn-tiny": `
at 8ms expire shard 0
at 16ms expire shard 0
`,
	// Restart storm with duplicate delivery: nodes bounce while the
	// network double-delivers, so replicas see every write many times
	// across incarnations. Version dedup must keep applies monotone.
	"restart-storm": `
at 100ms dup *->* p=0.3 for 1200ms
at 200ms crash n1
at 350ms restart n1
at 450ms crash n3
at 600ms restart n3
at 700ms crash n1
at 850ms restart n1
at 900ms skew n2 -8ms
`,
}

// ScriptNames returns the canonical script names, sorted.
func ScriptNames() []string {
	names := make([]string, 0, len(CanonicalScripts))
	for n := range CanonicalScripts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LoadScript resolves name as a canonical script and parses it.
func LoadScript(name string) (*Script, error) {
	text, ok := CanonicalScripts[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown script %q (have %v)", name, ScriptNames())
	}
	return ParseScript(text)
}
