package cluster

import (
	"strings"
	"testing"
)

const kitchenSink = `
# every construct the grammar supports
at 10ms pause n0 for 250ms
at 20ms crash n1
at 30ms restart n1
at 40ms delay n0->n1 30ms..60ms for 500ms
at 50ms drop n2->* p=0.25 for 400ms
at 60ms dup *->n0 p=0.1 for 300ms
at 70ms skew n3 +5ms
at 80ms skew n3 -5ms
at 90ms cut n0->svc for 200ms
at 100ms expire shard 2
`

// Format(Parse(x)) must be a fixed point: parsing the canonical form
// reproduces it byte-for-byte. This is the property the fuzzer leans
// on, pinned here for the hand-written grammar tour.
func TestScriptRoundTrip(t *testing.T) {
	s, err := ParseScript(kitchenSink)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Steps) != 10 {
		t.Fatalf("parsed %d steps, want 10", len(s.Steps))
	}
	canon := s.Format()
	s2, err := ParseScript(canon)
	if err != nil {
		t.Fatalf("canonical form does not reparse: %v\n%s", err, canon)
	}
	if got := s2.Format(); got != canon {
		t.Fatalf("round-trip not a fixed point:\n--- first\n%s\n--- second\n%s", canon, got)
	}
}

func TestScriptParseErrors(t *testing.T) {
	for _, bad := range []string{
		"pause n0 for 10ms\n",               // missing at
		"at 10ms pause n0\n",                // pause needs for
		"at 10ms drop n0->n1 for 10ms\n",    // drop needs p=
		"at 10ms drop n0->n1 p=1.5\n",       // p out of range
		"at 10ms delay n0->n1 60ms..30ms\n", // inverted range
		"at 10ms skew n0 5ms\n",             // skew needs sign
		"at 10ms explode n0\n",              // unknown verb
		"at 10ms expire shard x\n",          // bad shard
	} {
		if _, err := ParseScript(bad); err == nil {
			t.Errorf("ParseScript accepted %q", strings.TrimSpace(bad))
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("error for %q lacks line number: %v", strings.TrimSpace(bad), err)
		}
	}
}

// Steps are replayed in At order regardless of source order, with
// source order breaking ties — a stable sort, pinned here.
func TestScriptSortStable(t *testing.T) {
	s, err := ParseScript(`
at 50ms crash n1
at 10ms crash n0
at 50ms restart n1
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []StepKind{StepCrash, StepCrash, StepRestart}
	for i, st := range s.Steps {
		if st.Kind != want[i] {
			t.Fatalf("step %d kind %v, want %v (order: %s)", i, st.Kind, want[i], s.Format())
		}
	}
	if s.Steps[0].Node != 0 {
		t.Fatalf("earliest step should be the 10ms crash of n0, got n%d", s.Steps[0].Node)
	}
}

// Neuter must strip every step of its effect while preserving shape:
// the fuzz invariant is that a neutered script replays identically to
// an empty one.
func TestScriptNeuter(t *testing.T) {
	s, err := ParseScript(kitchenSink)
	if err != nil {
		t.Fatal(err)
	}
	n := s.Neuter()
	if len(n.Steps) >= len(s.Steps) {
		t.Fatalf("Neuter kept %d steps of %d; crash/restart/expire/cut must vanish", len(n.Steps), len(s.Steps))
	}
	for _, st := range n.Steps {
		switch st.Kind {
		case StepCrash, StepRestart, StepExpire, StepCut:
			t.Fatalf("Neuter left a %v step", st.Kind)
		case StepPause:
			if st.For != 0 {
				t.Fatalf("neutered pause still lasts %v", st.For)
			}
		case StepSkew:
			if st.Skew != 0 {
				t.Fatalf("neutered skew still %v", st.Skew)
			}
		case StepDrop, StepDup:
			if st.P != 0 {
				t.Fatalf("neutered %v still has p=%v", st.Kind, st.P)
			}
		case StepDelay:
			if st.DelayMin != 0 || st.DelayMax != 0 {
				t.Fatalf("neutered delay still %v..%v", st.DelayMin, st.DelayMax)
			}
		}
	}
}

func TestScriptValidate(t *testing.T) {
	s, err := ParseScript("at 10ms expire shard 5\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(3, 4); err == nil {
		t.Fatal("Validate accepted shard 5 in a 4-shard cluster")
	}
	if err := s.Validate(3, 8); err != nil {
		t.Fatalf("Validate rejected an in-range script: %v", err)
	}
}

func TestCanonicalScriptsParse(t *testing.T) {
	names := ScriptNames()
	if len(names) < 6 {
		t.Fatalf("only %d canonical scripts, the contract promises 6", len(names))
	}
	for _, name := range names {
		s, err := LoadScript(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(s.Steps) == 0 {
			t.Fatalf("%s: empty script", name)
		}
		if err := s.Validate(5, 4); err != nil {
			t.Fatalf("%s does not fit the default 5-node 4-shard topology: %v", name, err)
		}
	}
	if _, err := LoadScript("no-such-script"); err == nil {
		t.Fatal("LoadScript accepted an unknown name")
	}
}
