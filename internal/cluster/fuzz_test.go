package cluster

import (
	"strings"
	"testing"
	"time"
)

// fuzzConfig is the fixed topology the fuzzer replays scripts under:
// small enough that two full simulations per input stay cheap.
func fuzzConfig(seed uint64, script *Script) Config {
	return Config{
		Nodes: 3, Shards: 2, Seed: seed,
		Duration: 300 * time.Millisecond,
		Heal:     900 * time.Millisecond,
		Script:   script,
	}
}

// normalTrace strips fault-band narration ("fault: ..." step lines)
// from a trace, leaving only protocol events.
func normalTrace(trace []string) string {
	var b strings.Builder
	for _, line := range trace {
		if strings.Contains(line, "] fault:") {
			continue
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// FuzzFaultScript drives the script parser and the fault interpreter
// with arbitrary inputs and checks two properties on everything that
// parses:
//
//  1. Canonical form is a fixed point: Format(Parse(x)) reparses to
//     the same canonical text (the parser and printer agree).
//  2. A neutered script is a no-op: running Neuter(script) must be
//     indistinguishable — byte-identical protocol trace, final state,
//     and counters — from running with no script at all. This pins the
//     fault machinery's determinism contract: fault events occupy a
//     separate scheduling band with a separate sequence counter, and
//     zero-effect faults draw nothing from the PRNG, so scheduling
//     them cannot perturb the normal event stream.
func FuzzFaultScript(f *testing.F) {
	for _, name := range ScriptNames() {
		s, err := LoadScript(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(s.Format(), uint64(1))
	}
	f.Add("at 10ms pause n0 for 20ms\nat 15ms skew n1 +3ms\nat 40ms drop n0->* p=0.5 for 100ms\n", uint64(7))
	f.Add("# comment\n\nat 1ms delay *->svc 2ms..9ms for 50ms\nat 2ms dup n2->n0 p=1 for 10ms\n", uint64(9))
	f.Add("at 0s expire shard 1\nat 3ms crash n2\nat 5ms restart n2\nat 9ms cut svc->n1 for 40ms\n", uint64(3))

	f.Fuzz(func(t *testing.T, text string, seed uint64) {
		script, err := ParseScript(text)
		if err != nil {
			return // rejected inputs are out of scope
		}

		canon := script.Format()
		re, err := ParseScript(canon)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\n%s", err, canon)
		}
		if got := re.Format(); got != canon {
			t.Fatalf("canonical form is not a fixed point:\n--- first\n%s\n--- second\n%s", canon, got)
		}

		cfg := fuzzConfig(seed%64+1, nil)
		if script.Validate(cfg.Nodes, cfg.Shards) != nil {
			return // out-of-topology endpoints are Run-time config errors
		}
		for _, st := range script.Steps {
			if st.At > cfg.Duration+cfg.Heal {
				return // a step beyond the horizon can never run
			}
		}

		neutered := script.Neuter()
		base, err := Run(cfg)
		if err != nil {
			t.Fatalf("baseline run: %v", err)
		}
		cfgN := cfg
		cfgN.Script = neutered
		defanged, err := Run(cfgN)
		if err != nil {
			t.Fatalf("neutered run: %v", err)
		}

		if base.FinalState != defanged.FinalState {
			t.Fatalf("neutered script changed the final state:\nscript:\n%s\nbase: %s\nneutered: %s",
				canon, base.FinalState, defanged.FinalState)
		}
		if a, b := normalTrace(base.Trace), normalTrace(defanged.Trace); a != b {
			t.Fatalf("neutered script perturbed the protocol trace:\nscript:\n%s\n--- base\n%s--- neutered\n%s",
				canon, a, b)
		}
		if base.Counters != defanged.Counters {
			t.Fatalf("neutered script changed counters: %+v vs %+v", base.Counters, defanged.Counters)
		}
		if len(base.Violations) != 0 || len(defanged.Violations) != 0 {
			t.Fatalf("violations in a faultless run: base %v, neutered %v", base.Violations, defanged.Violations)
		}
	})
}
