package cluster

import (
	"fmt"
	"time"
)

type msgKind int

const (
	mAcquire msgKind = iota
	mGrant
	mDeny
	mRenew
	mRenewOK
	mRenewDeny
	mRelease
	mWrite
	mAck
	mSyncReq
	mSyncResp
)

var msgNames = [...]string{"acquire", "grant", "deny", "renew", "renew-ok",
	"renew-deny", "release", "write", "ack", "sync-req", "sync-resp"}

// versioned is one replicated cell: the value and the (epoch, seq)
// version that wrote it. Versions order lexicographically; the fencing
// epoch dominates, the writer-local sequence breaks ties within a
// lease.
type versioned struct {
	epoch uint64
	seq   uint64
	val   string
}

func (v versioned) less(o versioned) bool {
	if v.epoch != o.epoch {
		return v.epoch < o.epoch
	}
	return v.seq < o.seq
}

type message struct {
	kind     msgKind
	from, to int
	shard    int
	epoch    uint64
	seq      uint64 // write sequence (mWrite/mAck)
	key, val string
	stale    bool                 // mAck: write was fenced off; stop retransmitting
	state    map[string]versioned // mSyncResp payload: the shard's cells
}

func (m *message) String() string {
	s := fmt.Sprintf("%s %s->%s s%d", msgNames[m.kind], epName(m.from), epName(m.to), m.shard)
	if m.epoch > 0 {
		s += fmt.Sprintf(" e%d", m.epoch)
	}
	if m.kind == mWrite || m.kind == mAck {
		s += fmt.Sprintf(" w%d %s", m.seq, m.key)
	}
	if m.stale {
		s += " stale"
	}
	return s
}

// linkRule is one active network fault from a script step. Rules are
// matched at send time in installation order and expire lazily (a rule
// applies only while sendTime < until), so no extra events are needed.
type linkRule struct {
	kind     StepKind // StepCut, StepDrop, StepDup, StepDelay
	from, to int      // AnyEndpoint matches all
	p        float64
	dmin     time.Duration
	dmax     time.Duration
	until    time.Duration
}

func (r *linkRule) matches(from, to int, now time.Duration) bool {
	if now >= r.until {
		return false
	}
	if r.from != AnyEndpoint && r.from != from {
		return false
	}
	if r.to != AnyEndpoint && r.to != to {
		return false
	}
	return true
}

// send routes m through the simulated network: fixed base latency plus
// seeded jitter, then every matching script rule in installation
// order — cut drops outright, drop rolls p, dup schedules a second
// copy, delay adds a uniform draw from its range.
//
// Determinism contract: a rule consumes PRNG state only when it can
// have an effect (p > 0, or a nonzero delay range). A fully neutered
// rule draws nothing, so installing it cannot perturb the run — the
// invariant the fuzz harness leans on.
func (s *sim) send(m *message) {
	delay := s.cfg.NetDelay
	if s.cfg.NetJitter > 0 {
		delay += time.Duration(s.rng.Uint64() % uint64(s.cfg.NetJitter))
	}
	dups := 0
	for _, r := range s.rules {
		if !r.matches(m.from, m.to, s.now) {
			continue
		}
		switch r.kind {
		case StepCut:
			s.counters.Dropped++
			s.tracef("net: cut %s", m)
			return
		case StepDrop:
			if r.p > 0 && s.rng.Bernoulli(r.p) {
				s.counters.Dropped++
				s.tracef("net: drop %s", m)
				return
			}
		case StepDup:
			if r.p > 0 && s.rng.Bernoulli(r.p) {
				dups++
			}
		case StepDelay:
			if r.dmax > 0 {
				span := uint64(r.dmax-r.dmin) + 1
				delay += r.dmin + time.Duration(s.rng.Uint64()%span)
			}
		}
	}
	s.counters.Sent++
	s.schedule(s.now+delay, &event{kind: evDeliver, node: m.to, msg: m})
	for i := 0; i < dups; i++ {
		s.counters.Duplicated++
		extra := time.Duration(s.rng.Uint64() % uint64(s.cfg.NetDelay+1))
		s.schedule(s.now+delay+extra, &event{kind: evDeliver, node: m.to, msg: m})
	}
}

// deliver dispatches an arrived message: the service handles it
// immediately; a crashed node drops it (retransmission recovers); a
// paused node buffers it for the unpause drain.
func (s *sim) deliver(m *message) {
	if m.to == svcID {
		s.service.handle(m)
		return
	}
	n := s.nodes[m.to]
	if !n.alive {
		s.tracef("drop at crashed %s: %s", epName(m.to), m)
		return
	}
	if n.paused {
		n.inbox = append(n.inbox, m)
		return
	}
	n.handle(m)
}
