package cluster

import (
	"container/heap"
	"time"
)

// Event bands. All fault-machinery events (script steps, unpauses,
// the heal) live in band 0 with their own sequence counter; everything
// the protocol itself does lives in band 1. Ordering compares
// (time, band, seq), so at any instant the fault machinery runs first
// and — crucially — scheduling a fault event never shifts the
// tiebreak order of normal events. That separation is what makes a
// neutered (all no-op) fault script produce a byte-identical trace to
// running with no script at all, which FuzzFaultScript pins.
const (
	bandFault  = 0
	bandNormal = 1
)

type eventKind int

const (
	evDeliver eventKind = iota // message delivery at a node or the service
	evTimer                    // node-local timer callback
	evFault                    // one script step fires
	evUnpause                  // end of a pause step
	evHeal                     // global heal: faults end, reconcile begins
)

// timerKind discriminates node-local timers. Every timer carries the
// node's generation at scheduling time; a crash bumps the generation,
// so timers from a previous incarnation arrive dead and are dropped.
type timerKind int

const (
	tWorkload   timerKind = iota // pick a shard, try to acquire
	tRetry                       // backoff expired: retry the acquire
	tAcquireTO                   // acquire request timed out (lost grant/deny)
	tRenew                       // half-TTL lease renewal
	tSyncTO                      // sync round deadline (proceed with partial state)
	tWrite                       // issue the next critical-section write
	tRelease                     // hold time over: release the lease
	tRetransmit                  // re-send a write's unacked copies
	tReconcile                   // post-heal reconcile acquire for one shard
)

type event struct {
	at   time.Duration
	band int
	seq  uint64

	kind eventKind
	node int // target node; svcID for the lock service
	msg  *message
	// timer payload
	tk    timerKind
	shard int
	gen   uint64
	wid   int // write index for tRetransmit
	// fault payload
	step int // index into the script's steps
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.band != b.band {
		return a.band < b.band
	}
	return a.seq < b.seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// schedule enqueues e in the normal band at time at.
func (s *sim) schedule(at time.Duration, e *event) {
	e.at = at
	e.band = bandNormal
	s.seq++
	e.seq = s.seq
	heap.Push(&s.queue, e)
}

// scheduleFault enqueues e in the fault band at time at.
func (s *sim) scheduleFault(at time.Duration, e *event) {
	e.at = at
	e.band = bandFault
	s.faultSeq++
	e.seq = s.faultSeq
	heap.Push(&s.queue, e)
}
