package cluster

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Event bands. All fault-machinery events (script steps, unpauses,
// the heal) live in band 0 with their own sequence counter; everything
// the protocol itself does lives in band 1. Ordering compares
// (time, band, seq), so at any instant the fault machinery runs first
// and — crucially — scheduling a fault event never shifts the
// tiebreak order of normal events. That separation is what makes a
// neutered (all no-op) fault script produce a byte-identical trace to
// running with no script at all, which FuzzFaultScript pins.
const (
	bandFault  = 0
	bandNormal = 1
)

type eventKind int

const (
	evDeliver eventKind = iota // message delivery at a node or the service
	evTimer                    // node-local timer callback
	evFault                    // one script step fires
	evUnpause                  // end of a pause step
	evHeal                     // global heal: faults end, reconcile begins
)

// timerKind discriminates node-local timers. Every timer carries the
// node's generation at scheduling time; a crash bumps the generation,
// so timers from a previous incarnation arrive dead and are dropped.
type timerKind int

const (
	tWorkload   timerKind = iota // pick a shard, try to acquire
	tRetry                       // backoff expired: retry the acquire
	tAcquireTO                   // acquire request timed out (lost grant/deny)
	tRenew                       // half-TTL lease renewal
	tSyncTO                      // sync round deadline (proceed with partial state)
	tWrite                       // issue the next critical-section write
	tRelease                     // hold time over: release the lease
	tRetransmit                  // re-send a write's unacked copies
	tReconcile                   // post-heal reconcile acquire for one shard
)

var timerNames = [...]string{"workload", "retry", "acquire-to", "renew",
	"sync-to", "write", "release", "retransmit", "reconcile"}

type event struct {
	at   time.Duration
	band int
	seq  uint64

	kind eventKind
	node int // target node; svcID for the lock service
	msg  *message
	// timer payload
	tk    timerKind
	shard int
	gen   uint64
	wid   int // write index for tRetransmit
	// fault payload
	step int // index into the script's steps
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.band != b.band {
		return a.band < b.band
	}
	return a.seq < b.seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// ReadyEvent describes one dispatch candidate offered to a schedule
// controller (Config.Scheduler). Desc is a canonical one-line identity:
// for a fixed choice prefix it is byte-identical across replays, which
// is what lets a controller recognize "the same pending event" across
// sibling schedules (the sleep-set bookkeeping the explorer relies on).
// Within one ready set descriptors are unique: when two in-flight
// events render identically (a dup-rule extra copy whose drawn delay
// is zero, next to the original), later occurrences carry a " #n"
// suffix so Desc-keyed controller maps never conflate them.
type ReadyEvent struct {
	At      time.Duration
	Fault   bool // fault-band event: forced, dependent with everything
	Deliver bool // message delivery (vs a node-local timer)
	// Endpoint is the state the dispatch mutates: the target node id,
	// ServiceEndpoint, or AnyEndpoint for global events (the heal).
	Endpoint int
	Shard    int // -1 when not shard-specific (workload ticks, faults)
	Desc     string
}

// describeEvent renders the stable descriptor for one pending event.
func describeEvent(e *event) ReadyEvent {
	r := ReadyEvent{At: e.at, Fault: e.band == bandFault, Shard: -1}
	switch e.kind {
	case evDeliver:
		r.Deliver = true
		r.Endpoint = e.msg.to
		r.Shard = e.msg.shard
		r.Desc = fmt.Sprintf("deliver@%v %s", e.at, e.msg)
	case evTimer:
		r.Endpoint = e.node
		r.Shard = e.shard
		r.Desc = fmt.Sprintf("timer@%v %s %s s%d g%d w%d",
			e.at, epName(e.node), timerNames[e.tk], e.shard, e.gen, e.wid)
	case evFault:
		r.Endpoint = AnyEndpoint
		r.Desc = fmt.Sprintf("fault@%v step %d", e.at, e.step)
	case evUnpause:
		r.Endpoint = e.node
		r.Desc = fmt.Sprintf("unpause@%v %s", e.at, epName(e.node))
	case evHeal:
		r.Endpoint = AnyEndpoint
		r.Desc = fmt.Sprintf("heal@%v", e.at)
	}
	return r
}

// popNext removes and returns the next event to dispatch.
//
// Without a Scheduler this is exactly heap order — (time, band, seq) —
// and the run is byte-identical to the pre-explorer simulator. With a
// Scheduler, the fault band still runs strictly on time (scripted
// faults are the experiment, not the nondeterminism under test), but
// normal-band events race: every pending normal event due within
// ScheduleWindow of the earliest one (clipped at the next fault) is
// "ready", and the controller picks which is delivered first. The
// simulation clock then advances to the maximum dispatched time rather
// than tracking each event, so choosing a later event first models the
// earlier one arriving late — bounded network/timer jitter made into an
// enumerable choice instead of a seeded draw.
//
// The Scheduler is invoked for every dispatch, including forced ones
// (singleton ready sets and fault-band events), so a controller can
// observe the full action sequence; its return value is honored only
// when the ready set has at least two candidates.
func (s *sim) popNext() *event {
	if s.cfg.Scheduler == nil {
		return heap.Pop(&s.queue).(*event)
	}
	min := s.queue[0]
	if min.band == bandFault {
		s.cfg.Scheduler([]ReadyEvent{describeEvent(min)})
		return heap.Pop(&s.queue).(*event)
	}
	horizon := min.at + s.cfg.ScheduleWindow
	if s.now > horizon {
		horizon = s.now
	}
	for _, e := range s.queue {
		if e.band == bandFault && e.at < horizon {
			horizon = e.at
		}
	}
	var cands []*event
	for _, e := range s.queue {
		if e.band == bandNormal && e.at <= horizon {
			cands = append(cands, e)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].at != cands[j].at {
			return cands[i].at < cands[j].at
		}
		return cands[i].seq < cands[j].seq
	})
	ready := make([]ReadyEvent, len(cands))
	for i, e := range cands {
		ready[i] = describeEvent(e)
	}
	disambiguate(ready)
	pick := 0
	if got := s.cfg.Scheduler(ready); len(cands) > 1 && got > 0 && got < len(cands) {
		pick = got
	}
	chosen := cands[pick]
	for i, e := range s.queue {
		if e == chosen {
			heap.Remove(&s.queue, i)
			break
		}
	}
	return chosen
}

// disambiguate suffixes repeated descriptors in one ready set with a
// replay-stable occurrence ordinal (" #2", " #3", …). Two distinct
// pending events can render identically — same payload, same due time —
// and a controller keying tried/sleep maps on Desc would silently
// conflate them, under-exploring. The ordinal follows the candidates'
// (time, seq) sort order, which is deterministic for a fixed choice
// prefix, so suffixed descriptors are as replay-stable as plain ones.
func disambiguate(ready []ReadyEvent) {
	if len(ready) < 2 {
		return
	}
	seen := make(map[string]int, len(ready))
	for i := range ready {
		seen[ready[i].Desc]++
		if n := seen[ready[i].Desc]; n > 1 {
			ready[i].Desc = fmt.Sprintf("%s #%d", ready[i].Desc, n)
		}
	}
}

// schedule enqueues e in the normal band at time at.
func (s *sim) schedule(at time.Duration, e *event) {
	e.at = at
	e.band = bandNormal
	s.seq++
	e.seq = s.seq
	heap.Push(&s.queue, e)
}

// scheduleFault enqueues e in the fault band at time at.
func (s *sim) scheduleFault(at time.Duration, e *event) {
	e.at = at
	e.band = bandFault
	s.faultSeq++
	e.seq = s.faultSeq
	heap.Push(&s.queue, e)
}
