package cluster

import "testing"

// The real-lock bridge must be admission-transparent: backing the lock
// service's leases with real registry-built locks changes no decision,
// so the same (seed, script) produces the byte-identical event trace
// and final state with the bridge on and off — and zero violations,
// meaning the real lock agreed with the abstract FSM at every grant,
// deny, lapse, and release of the run.
func TestRealLockBridgeTransparent(t *testing.T) {
	script, err := LoadScript("expire-churn")
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []*Script{nil, script} {
		for seed := uint64(1); seed <= 3; seed++ {
			cfg, err := Preset("real-lock-small")
			if err != nil {
				t.Fatal(err)
			}
			cfg.Seed = seed
			cfg.Script = sc
			real, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if len(real.Violations) != 0 {
				t.Fatalf("seed %d script=%v: real-lock run not clean:\n%s",
					seed, sc != nil, real.FailureReport(""))
			}
			cfg.RealLockName = ""
			abstract, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if len(real.Trace) != len(abstract.Trace) {
				t.Fatalf("seed %d: trace lengths diverge with bridge on (%d) vs off (%d)",
					seed, len(real.Trace), len(abstract.Trace))
			}
			for i := range real.Trace {
				if real.Trace[i] != abstract.Trace[i] {
					t.Fatalf("seed %d: traces diverge at line %d:\nreal:     %s\nabstract: %s",
						seed, i, real.Trace[i], abstract.Trace[i])
				}
			}
			if real.FinalState != abstract.FinalState {
				t.Fatalf("seed %d: final states diverge with the bridge on", seed)
			}
		}
	}
}

// The bridge's cross-checks are only meaningful if the run actually
// exercises contended transitions: grants, denials (live-lease
// TryLock probes), and lapses under the expire-churn script.
func TestRealLockBridgeExercisesTransitions(t *testing.T) {
	script, err := LoadScript("expire-churn")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := Preset("real-lock-small")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 1
	cfg.Script = script
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Grants == 0 {
		t.Error("no grants: the real lock's TryLock admission path never ran")
	}
	if res.Counters.Denies == 0 {
		t.Error("no denies: the real lock's held-probe cross-check never ran")
	}
}

// Each natively bounded catalog lock can back the bridge, not just the
// preset's Reciprocating default: the abstract FSM is algorithm-blind,
// so every implementation must agree with it.
func TestRealLockBridgeAcrossLocks(t *testing.T) {
	for _, name := range []string{"Recipro", "Recipro-L2", "MCS", "CLH", "TKT"} {
		cfg, err := Preset("real-lock-small")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Seed = 2
		cfg.RealLockName = name
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Violations) != 0 {
			t.Errorf("%s: real-lock run not clean:\n%s", name, res.FailureReport(""))
		}
	}
}

// Config validation: an unknown lock name and a lock that refuses
// clock injection (the Go runtime baseline) both fail Run up front
// instead of silently running the abstract service alone.
func TestRealLockBridgeBadNames(t *testing.T) {
	for _, name := range []string{"NoSuchLock", "GoMutex"} {
		cfg, err := Preset("real-lock-small")
		if err != nil {
			t.Fatal(err)
		}
		cfg.RealLockName = name
		if _, err := Run(cfg); err == nil {
			t.Errorf("RealLockName=%q: want a build error, got a run", name)
		}
	}
}
