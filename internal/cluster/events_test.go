package cluster

import (
	"testing"
	"time"
)

// TestDisambiguateReadySet pins the uniqueness contract ReadyEvent.Desc
// documents: identical descriptors in one ready set (two in-flight
// events with the same payload due at the same instant, e.g. a dup-rule
// copy whose drawn extra delay was zero) get replay-stable " #n"
// suffixes by occurrence order, so a Desc-keyed controller map never
// conflates distinct candidates.
func TestDisambiguateReadySet(t *testing.T) {
	mk := func(d string) ReadyEvent { return ReadyEvent{Desc: d} }

	ready := []ReadyEvent{mk("a"), mk("b"), mk("a"), mk("a"), mk("b")}
	disambiguate(ready)
	want := []string{"a", "b", "a #2", "a #3", "b #2"}
	for i := range ready {
		if ready[i].Desc != want[i] {
			t.Errorf("ready[%d].Desc = %q, want %q", i, ready[i].Desc, want[i])
		}
	}

	// No duplicates: untouched.
	clean := []ReadyEvent{mk("x"), mk("y")}
	disambiguate(clean)
	if clean[0].Desc != "x" || clean[1].Desc != "y" {
		t.Errorf("distinct descs rewritten: %q %q", clean[0].Desc, clean[1].Desc)
	}

	// Singletons are forced dispatches; never suffixed.
	single := []ReadyEvent{mk("a")}
	disambiguate(single)
	if single[0].Desc != "a" {
		t.Errorf("singleton suffixed: %q", single[0].Desc)
	}
}

// TestReadySetDescsUnique runs a duplicate-heavy simulation (every
// message double-delivered, widened schedule window) under a recording
// scheduler and asserts every offered ready set carries pairwise
// distinct descriptors — the invariant the explorer's tried/sleep
// bookkeeping is keyed on.
func TestReadySetDescsUnique(t *testing.T) {
	cfg, err := Preset("explore-small")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ParseScript("at 1ms dup *->* p=1 for 30ms")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Script = sc
	cfg.ScheduleWindow = time.Millisecond

	branches := 0
	cfg.Scheduler = func(ready []ReadyEvent) int {
		seen := make(map[string]bool, len(ready))
		for _, r := range ready {
			if seen[r.Desc] {
				t.Fatalf("duplicate desc %q in a %d-candidate ready set", r.Desc, len(ready))
			}
			seen[r.Desc] = true
		}
		if len(ready) > 1 {
			branches++
		}
		return 0
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if branches == 0 {
		t.Fatal("no multi-candidate ready sets offered — the run exercised nothing")
	}
}
