package cluster

import (
	"strings"
	"testing"
	"time"

	"repro/internal/kvstore"
)

// bareSim builds the minimal sim a checker needs for white-box tests:
// a config with defaults applied, a working trace sink, and (when
// nodes > 0) real fenced stores so finish() can walk them.
func bareSim(t *testing.T, nodes, shards int) *sim {
	t.Helper()
	cfg := Config{Nodes: nodes, Shards: shards}.withDefaults()
	s := &sim{cfg: cfg, reconciled: make([]bool, shards), lastStep: -1}
	for i := 0; i < nodes; i++ {
		n := &node{s: s, id: i, versions: make(map[string]versioned)}
		n.store = kvstore.NewFenced(kvstore.OpenSharded(kvstore.ShardedOptions{Shards: shards}))
		s.nodes = append(s.nodes, n)
	}
	s.check = newChecker(s, shards)
	return s
}

func classes(c *checker) []string {
	var out []string
	for _, v := range c.violations {
		out = append(out, v.Class)
	}
	return out
}

func hasViolation(c *checker, class string) bool {
	for _, v := range c.violations {
		if v.Class == class {
			return true
		}
	}
	return false
}

// TestBackoffFloorBoundary pins the exact boundary of the graceful-
// degradation invariant: a retry one instant before the backoff base
// elapses is a violation; a retry at exactly the base is legal; and a
// grant clears the denial so an immediate next acquire is also legal.
func TestBackoffFloorBoundary(t *testing.T) {
	s := bareSim(t, 0, 1)
	base := s.cfg.Backoff.Base
	if base <= 0 {
		t.Fatalf("defaults gave non-positive backoff base %v", base)
	}

	deny := 10 * time.Millisecond
	s.check.onDeny(0, 0, deny)

	s.now = deny + base - time.Nanosecond
	s.check.onAcquireSend(0, 0, s.now)
	if !hasViolation(s.check, ClassBackoffFloor) {
		t.Errorf("retry %v before the base should violate; got %v", time.Nanosecond, classes(s.check))
	}

	s.check.violations = nil
	s.check.onDeny(0, 0, deny)
	s.now = deny + base
	s.check.onAcquireSend(0, 0, s.now)
	if len(s.check.violations) != 0 {
		t.Errorf("retry at exactly the base should be legal; got %v", classes(s.check))
	}

	// A grant wipes the denial record: the next acquire has no floor.
	s.check.onDeny(0, 0, deny)
	s.check.onGrantSeen(0, 0)
	s.check.onAcquireSend(0, 0, deny+time.Nanosecond)
	if len(s.check.violations) != 0 {
		t.Errorf("acquire after a grant should be legal; got %v", classes(s.check))
	}

	// The floor is per (node, shard): a denial on one pair never
	// constrains another.
	s.check.onDeny(1, 0, deny)
	s.check.onAcquireSend(1, 1, deny)
	s.check.onAcquireSend(2, 0, deny)
	if len(s.check.violations) != 0 {
		t.Errorf("floor leaked across (node, shard) pairs; got %v", classes(s.check))
	}
}

// TestQuiesceCap pins the quiescence invariant end to end: with a heal
// window far too short for the post-heal reconcile pass, the run must
// fail with ClassQuiesce instead of silently truncating.
func TestQuiesceCap(t *testing.T) {
	cfg, err := Preset("explore-small")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 1
	cfg.Heal = 2 * time.Millisecond // reconcile starts at +25ms: unreachable
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		if v.Class == ClassQuiesce {
			found = true
			if !strings.Contains(v.Msg, "still pending") {
				t.Errorf("quiesce message: %q", v.Msg)
			}
		}
	}
	if !found {
		t.Fatalf("no %s violation with a 2ms heal window: %v", ClassQuiesce, res.Violations)
	}
}

// TestLivelockCap pins the runaway backstop: an event budget smaller
// than any honest run must trip ClassLivelock, and the run must stop
// near the cap instead of burning the full horizon.
func TestLivelockCap(t *testing.T) {
	cfg, err := Preset("explore-small")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 1
	cfg.MaxEvents = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		found = found || v.Class == ClassLivelock
	}
	if !found {
		t.Fatalf("no %s violation with MaxEvents=5: %v", ClassLivelock, res.Violations)
	}
	if res.Events != cfg.MaxEvents+1 {
		t.Errorf("run dispatched %d events past a cap of %d", res.Events, cfg.MaxEvents)
	}
}

// TestDurabilityZeroCommitted pins the vacuous case of the durability
// check: writes that never committed (e.g. lost to a crash before the
// ack) impose nothing on the final state, even when the final state is
// empty.
func TestDurabilityZeroCommitted(t *testing.T) {
	s := bareSim(t, 2, 1)
	for i := range s.reconciled {
		s.reconciled[i] = true
	}
	s.allWrites = []*writeRec{
		{key: "key-000", epoch: 1, seq: 1, val: "lost", committed: false},
		{key: "key-001", epoch: 1, seq: 2, val: "lost too", committed: false},
	}
	s.check.finish()
	if hasViolation(s.check, ClassDurability) {
		t.Errorf("uncommitted writes must not trigger durability: %v", classes(s.check))
	}

	// Control: the same write marked committed but absent from every
	// replica is exactly what the check exists to catch.
	s2 := bareSim(t, 2, 1)
	for i := range s2.reconciled {
		s2.reconciled[i] = true
	}
	s2.allWrites = []*writeRec{{key: "key-000", epoch: 1, seq: 1, val: "v", committed: true}}
	s2.check.finish()
	if !hasViolation(s2.check, ClassDurability) {
		t.Errorf("committed-but-absent write must trigger durability: %v", classes(s2.check))
	}
}

// TestDurabilityCrashRestartNoCommits runs a full crash-restart
// simulation whose horizon is too short for any write to commit: the
// durability check must stay quiet (no committed writes, nothing owed)
// and the run must otherwise be clean.
func TestDurabilityCrashRestartNoCommits(t *testing.T) {
	cfg, err := Preset("explore-small")
	if err != nil {
		t.Fatal(err)
	}
	// Writes start flowing only after acquire+sync+write+ack round
	// trips; a short horizon with a crash outage in the middle leaves
	// none committed for most seeds — scan for one, since the workload
	// jitter is seed-dependent.
	cfg.Duration = 8 * time.Millisecond
	sc, err := ParseScript("at 1ms crash n0\nat 2ms crash n1\nat 5ms restart n0\nat 6ms restart n1")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Script = sc
	for seed := uint64(1); seed <= 10; seed++ {
		cfg.Seed = seed
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Counters.Committed != 0 {
			continue
		}
		for _, v := range res.Violations {
			if v.Class == ClassDurability {
				t.Errorf("seed %d: durability violation with zero committed writes: %v", seed, v)
			}
		}
		return
	}
	t.Fatal("no seed in 1..10 produced a zero-commit crash-restart run")
}
