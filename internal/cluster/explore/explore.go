// Package explore is a stateless model checker for the cluster
// simulation: it enumerates the delivery and timer orders a
// Config.Scheduler can impose, replaying the deterministic simulation
// once per schedule and running the full invariant battery at every
// leaf. The search is depth-first over branch points (dispatches where
// two or more normal-band events are ready), replay-based (no state
// snapshotting — a prefix of choices re-executes the sim up to the
// frontier), and pruned with sleep sets keyed on event independence.
//
// Independence is deliberately conservative. Two ready events commute
// only when they carry the same timestamp and target distinct
// endpoints (and neither is fault-band or global): the simulation
// clock clamps to the dispatched event's time, so reordering events
// with different stamps changes the time every downstream handler
// observes — execution time is part of the state, and only equal-time
// events truly commute. Endpoint granularity (not (endpoint, shard))
// is forced by node-global state: a node's write-log position and
// outbox are shared across its shards, so two deliveries to the same
// node never commute even on different shards.
//
// Even that relation is sound only when dispatch order cannot change
// what anything draws from the shared PRNG stream: Prunable requires
// Config.SplitRNG (per-node streams), disabled network jitter, and a
// fault script whose rules never roll the dice (see Prunable). For any
// other configuration the search still enumerates correctly — it just
// keeps sleep sets empty and explores the full tree.
package explore

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
)

// Unbounded disables delay bounding (full DFS); see Options.Delays.
const Unbounded = -1

// DefaultBudget caps completed schedules when Options.Budget is zero.
const DefaultBudget = 200_000

// Options configures one search.
type Options struct {
	// Config is the simulation under test: topology, timing, seed,
	// script, mutations. Its Scheduler field is owned by the search.
	Config cluster.Config

	// MaxBranch caps branch points per schedule; beyond it the run
	// continues canonically and the search reports DepthCapped (the
	// tree was truncated, so a clean result is INCOMPLETE, not
	// VERIFIED). Zero means unlimited.
	MaxBranch int

	// Budget caps completed schedules; exhausting it with work left
	// reports an incomplete search. Zero selects DefaultBudget;
	// negative means unlimited.
	Budget int

	// Delays is the delay-bounding budget: picking candidate j at a
	// branch point costs j (it delays j earlier-due events), and a
	// schedule's total cost may not exceed Delays. Zero explores
	// exactly the canonical schedule; Unbounded (negative) disables
	// the bound. Note the zero value is the tightest bound, not the
	// default — use DefaultOptions for exhaustive search.
	Delays int

	// NoPrune disables sleep-set pruning even when Prunable allows it.
	NoPrune bool
}

// DefaultOptions is an exhaustive (unbounded-delay, default-budget)
// search over cfg.
func DefaultOptions(cfg cluster.Config) Options {
	return Options{Config: cfg, Delays: Unbounded}
}

// Stats counts search work.
type Stats struct {
	Schedules   int // completed schedules (each a full simulation run)
	PrunedTails int // schedules abandoned because every ready candidate was slept
	Branches    int // distinct branch points discovered
	Slept       int // candidate selections skipped by sleep sets
	MaxDepth    int // deepest branch-point stack reached
}

// Result is one search's outcome.
type Result struct {
	// Complete reports that the schedule tree (within the configured
	// MaxBranch/Delays bounds) was exhausted.
	Complete bool
	// DepthCapped reports that some schedule hit MaxBranch and ran a
	// canonical tail — the tree was truncated below the cap.
	DepthCapped bool
	// Pruning reports whether sleep-set pruning was active (Prunable
	// and not NoPrune).
	Pruning bool

	// Violation is the first violating run found, nil if none; Schedule
	// is its branch-choice sequence, replayable with Replay.
	Violation *cluster.Result
	Schedule  []int

	Stats Stats
}

// Verified reports a clean exhaustive result: no violation, the tree
// exhausted, no depth truncation. A clean but un-Verified result is
// the INCOMPLETE verdict.
func (r *Result) Verified() bool {
	return r.Violation == nil && r.Complete && !r.DepthCapped
}

// Independent reports whether two ready events commute: equal
// timestamps, distinct non-global endpoints, neither fault-band. See
// the package comment for why both conditions are load-bearing.
func Independent(a, b cluster.ReadyEvent) bool {
	if a.Fault || b.Fault {
		return false
	}
	if a.Endpoint == cluster.AnyEndpoint || b.Endpoint == cluster.AnyEndpoint {
		return false
	}
	if a.At != b.At {
		return false
	}
	return a.Endpoint != b.Endpoint
}

// Prunable reports whether sleep-set pruning is sound for cfg: every
// PRNG draw must be unaffected by dispatch order. That needs per-node
// streams (SplitRNG), explicitly disabled network jitter (negative
// NetJitter — zero would select the default), and a script none of
// whose rules consume shared-stream randomness: drop with 0<p<1 rolls
// per message, dup with p>0 draws an extra-copy delay, delay with a
// nonzero range draws from it. (Drop with p exactly 0 or 1 and all
// non-link faults are deterministic.)
func Prunable(cfg cluster.Config) bool {
	if !cfg.SplitRNG || cfg.NetJitter >= 0 {
		return false
	}
	if cfg.Script == nil {
		return true
	}
	for _, st := range cfg.Script.Steps {
		switch st.Kind {
		case cluster.StepDrop:
			if st.P > 0 && st.P < 1 {
				return false
			}
		case cluster.StepDup:
			if st.P > 0 {
				return false
			}
		case cluster.StepDelay:
			if st.DelayMax > 0 {
				return false
			}
		}
	}
	return true
}

// errPruned aborts a run whose remaining tree is covered elsewhere
// (sleep-set theory: every enabled action slept ⇒ every continuation
// is equivalent to one explored in a sibling subtree).
var errPruned = errors.New("explore: schedule pruned")

// frame is one branch point on the DFS stack.
type frame struct {
	cands  []cluster.ReadyEvent          // the ready set, identical on every replay
	choice int                           // index currently being explored
	order  []int                         // indices explored so far, in order (last = choice)
	tried  map[string]bool               // descriptors of explored candidates
	sleep  map[string]cluster.ReadyEvent // sleep set on entry (never mutated)
}

type search struct {
	opts     Options
	prunable bool
	stack    []*frame
	stats    Stats
	capped   bool
}

// Search runs the model checker. It returns an error only for invalid
// configuration or a broken determinism contract (a replayed prefix
// producing a different ready set); violations come back in Result.
func Search(opts Options) (*Result, error) {
	if opts.Budget == 0 {
		opts.Budget = DefaultBudget
	}
	s := &search{opts: opts, prunable: !opts.NoPrune && Prunable(opts.Config)}
	res := &Result{Pruning: s.prunable}
	for {
		if opts.Budget > 0 && s.stats.Schedules >= opts.Budget {
			break // budget exhausted with work remaining: incomplete
		}
		out, pruned, err := s.runOne()
		if err != nil {
			return nil, err
		}
		if pruned {
			s.stats.PrunedTails++
		} else {
			s.stats.Schedules++
			if len(out.Violations) > 0 {
				res.Violation = out
				res.Schedule = s.schedule()
				res.Stats = s.stats
				return res, nil
			}
		}
		if !s.advance() {
			res.Complete = true
			break
		}
	}
	res.DepthCapped = s.capped
	res.Stats = s.stats
	return res, nil
}

// schedule returns the current stack's choice sequence.
func (s *search) schedule() []int {
	out := make([]int, len(s.stack))
	for i, f := range s.stack {
		out[i] = f.choice
	}
	return out
}

// runOne replays the stack's choice prefix and extends it to a leaf,
// pushing a frame for every new branch point. It reports pruned=true
// when the run was abandoned at an all-slept frontier.
func (s *search) runOne() (res *cluster.Result, pruned bool, err error) {
	depth := 0
	delaysUsed := 0
	capped := false
	pend := map[string]cluster.ReadyEvent{} // sleep set for the next frontier

	cfg := s.opts.Config
	cfg.Scheduler = func(ready []cluster.ReadyEvent) int {
		if len(ready) < 2 {
			// Forced dispatch. A forced normal event that is itself
			// slept means this whole continuation is covered elsewhere
			// (faults never enter sleep sets — Independent rejects
			// them — so the prune check stays gated on non-fault).
			if len(ready) == 1 {
				if s.prunable && !ready[0].Fault {
					if _, ok := pend[ready[0].Desc]; ok {
						panic(errPruned)
					}
				}
				// Executing ANY event wakes every sleeping event
				// dependent with it — including fault/heal dispatches,
				// which are dependent with everything and so empty the
				// set. Skipping this for faults would let events sleep
				// across a dispatch that does not commute with them,
				// wrongly pruning schedules near fault timestamps.
				pend = filterIndependent(pend, ready[0])
			}
			return 0
		}
		if depth < len(s.stack) {
			// Replaying the prefix.
			f := s.stack[depth]
			if msg := mismatch(f.cands, ready); msg != "" {
				panic(fmt.Errorf("explore: nondeterministic replay at branch %d: %s", depth, msg))
			}
			depth++
			delaysUsed += f.choice
			pend = s.childSleep(f, ready[f.choice])
			return f.choice
		}
		// Frontier: a new branch point.
		if capped || (s.opts.MaxBranch > 0 && len(s.stack) >= s.opts.MaxBranch) {
			capped = true
			pend = filterIndependent(pend, ready[0])
			return 0
		}
		f := &frame{
			cands: append([]cluster.ReadyEvent(nil), ready...),
			tried: make(map[string]bool),
			sleep: pend,
		}
		j := s.selectNext(f, delaysUsed)
		if j < 0 {
			panic(errPruned)
		}
		f.choice = j
		f.tried[ready[j].Desc] = true
		f.order = append(f.order, j)
		s.stack = append(s.stack, f)
		s.stats.Branches++
		if len(s.stack) > s.stats.MaxDepth {
			s.stats.MaxDepth = len(s.stack)
		}
		depth++
		delaysUsed += j
		pend = s.childSleep(f, ready[j])
		return j
	}

	defer func() {
		if r := recover(); r != nil {
			if r == errPruned {
				res, pruned, err = nil, true, nil
				// Abandon any frames this run pushed beyond the prune
				// point? None: the prune fires before pushing.
				return
			}
			if e, ok := r.(error); ok {
				res, pruned, err = nil, false, e
				return
			}
			panic(r)
		}
	}()

	out, rerr := cluster.Run(cfg)
	if rerr != nil {
		return nil, false, rerr
	}
	if capped {
		s.capped = true
	}
	return out, false, nil
}

// selectNext picks the lowest-index candidate of f not yet tried, not
// slept, and within the delay budget. Candidate j costs j delays, so
// costs rise with the index and the scan can stop at the budget.
func (s *search) selectNext(f *frame, delaysUsed int) int {
	for j := 0; j < len(f.cands); j++ {
		if s.opts.Delays >= 0 && delaysUsed+j > s.opts.Delays {
			break
		}
		d := f.cands[j].Desc
		if f.tried[d] {
			continue
		}
		if s.prunable {
			if _, ok := f.sleep[d]; ok {
				s.stats.Slept++
				continue
			}
		}
		return j
	}
	return -1
}

// advance moves the DFS to the next unexplored schedule: find the
// deepest frame with an untried, unslept, in-budget candidate, select
// it, and drop everything deeper. False means the tree is exhausted.
func (s *search) advance() bool {
	for len(s.stack) > 0 {
		f := s.stack[len(s.stack)-1]
		used := 0
		for _, g := range s.stack[:len(s.stack)-1] {
			used += g.choice
		}
		if j := s.selectNext(f, used); j >= 0 {
			f.choice = j
			f.tried[f.cands[j].Desc] = true
			f.order = append(f.order, j)
			return true
		}
		s.stack = s.stack[:len(s.stack)-1]
	}
	return false
}

// childSleep computes the sleep set below frame f's current choice:
// f's own sleep set plus every candidate explored at f before this
// choice, keeping only events independent of the chosen one.
func (s *search) childSleep(f *frame, chosen cluster.ReadyEvent) map[string]cluster.ReadyEvent {
	out := make(map[string]cluster.ReadyEvent)
	if !s.prunable {
		return out
	}
	for d, e := range f.sleep {
		if Independent(e, chosen) {
			out[d] = e
		}
	}
	for _, j := range f.order[:len(f.order)-1] {
		if e := f.cands[j]; Independent(e, chosen) {
			out[e.Desc] = e
		}
	}
	return out
}

// filterIndependent wakes every sleeping event dependent with the
// executed one: sleep persists only across independent actions. The
// input map is never mutated (frames alias it).
func filterIndependent(sleep map[string]cluster.ReadyEvent, executed cluster.ReadyEvent) map[string]cluster.ReadyEvent {
	if len(sleep) == 0 {
		return sleep
	}
	out := make(map[string]cluster.ReadyEvent, len(sleep))
	for d, e := range sleep {
		if Independent(e, executed) {
			out[d] = e
		}
	}
	return out
}

// mismatch compares a frame's recorded ready set with the one seen on
// replay; any difference breaks the determinism contract.
func mismatch(want, got []cluster.ReadyEvent) string {
	if len(want) != len(got) {
		return fmt.Sprintf("ready set size %d, recorded %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Desc != got[i].Desc {
			return fmt.Sprintf("candidate %d is %q, recorded %q", i, got[i].Desc, want[i].Desc)
		}
	}
	return ""
}
