package explore

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cluster"
)

// FixedSchedule is a Config.Scheduler that replays a branch-choice
// sequence: at the i-th branch point (a call with two or more ready
// candidates) it picks choices[i], and past the end of the list — or
// for out-of-range entries — it falls back to the canonical choice.
// Calls with fewer than two candidates never consume a choice, which
// keeps search and replay aligned on what counts as a branch.
func FixedSchedule(choices []int) func([]cluster.ReadyEvent) int {
	i := 0
	return func(ready []cluster.ReadyEvent) int {
		if len(ready) < 2 {
			return 0
		}
		if i >= len(choices) {
			return 0
		}
		c := choices[i]
		i++
		if c < 0 || c >= len(ready) {
			return 0
		}
		return c
	}
}

// Replay runs cfg once under the given branch-choice schedule. An
// empty (or nil) schedule is the canonical order.
func Replay(cfg cluster.Config, schedule []int) (*cluster.Result, error) {
	cfg.Scheduler = FixedSchedule(schedule)
	return cluster.Run(cfg)
}

// FormatSchedule renders a schedule as a comma-joined list ("2,0,1");
// the empty schedule renders as "" and means canonical order.
func FormatSchedule(schedule []int) string {
	parts := make([]string, len(schedule))
	for i, c := range schedule {
		parts[i] = strconv.Itoa(c)
	}
	return strings.Join(parts, ",")
}

// ParseSchedule parses FormatSchedule's output.
func ParseSchedule(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		c, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || c < 0 {
			return nil, fmt.Errorf("explore: bad schedule entry %q", p)
		}
		out[i] = c
	}
	return out, nil
}
