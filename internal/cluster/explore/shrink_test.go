package explore

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestShrinkDeterministic pins that shrinking is a pure function: the
// same failing input always reduces to the identical repro.
func TestShrinkDeterministic(t *testing.T) {
	cfg := huntCfg(t, 1)
	cfg.BreakDedup = true
	opts := DefaultOptions(cfg)
	opts.Delays = 2
	res, err := Search(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("hunt found nothing")
	}
	a, err := Shrink(cfg, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Shrink(cfg, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if a.Class != b.Class || !reflect.DeepEqual(a.Schedule, b.Schedule) {
		t.Errorf("shrink not deterministic: (%s, %v) vs (%s, %v)", a.Class, a.Schedule, b.Class, b.Schedule)
	}
	af, bf := "", ""
	if a.Script != nil {
		af = a.Script.Format()
	}
	if b.Script != nil {
		bf = b.Script.Format()
	}
	if af != bf {
		t.Errorf("shrunk scripts differ:\n%s\nvs\n%s", af, bf)
	}
}

// TestShrinkCanonicalFailure pins the easy path: a mutation that fails
// on every schedule shrinks to the empty schedule, and script steps
// irrelevant to the class are dropped entirely.
func TestShrinkCanonicalFailure(t *testing.T) {
	cfg := huntCfg(t, 1)
	cfg.SkipReconcile = true
	sh, err := Shrink(cfg, []int{0, 1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Class != cluster.ClassReconcile {
		t.Fatalf("class %s, want %s", sh.Class, cluster.ClassReconcile)
	}
	if len(sh.Schedule) != 0 {
		t.Errorf("schedule should shrink to empty, got %v", sh.Schedule)
	}
	if sh.Script != nil {
		t.Errorf("script should shrink away entirely, kept %d steps", len(sh.Script.Steps))
	}
}

// TestShrinkCleanInput pins the error contract: shrinking a passing
// run is refused rather than returning a vacuous repro.
func TestShrinkCleanInput(t *testing.T) {
	if _, err := Shrink(smallCfg(t, 1, ""), nil); err == nil {
		t.Fatal("Shrink of a clean run should error")
	}
}

// FuzzShrink drives the shrinker over arbitrary scripts, schedules,
// and mutation combinations: whenever the input replays to a failure,
// the shrunk repro must preserve the class, be replayable, and be
// 1-minimal in its schedule entries.
func FuzzShrink(f *testing.F) {
	// The seed corpus encodes the three mutation hunts' found
	// schedules (2 bits per branch choice, little-endian): stale-apply
	// needs flips at branches 4 and 9, version-regress one flip at
	// branch 20, reconcile none.
	f.Add("at 8ms expire shard 0\nat 16ms expire shard 0", uint64(0), uint64(1<<8|1<<18), byte(1))
	f.Add("at 8ms expire shard 0\nat 16ms expire shard 0", uint64(0), uint64(1)<<40, byte(2))
	f.Add("", uint64(1), uint64(9), byte(4))
	f.Add("at 5ms crash n0\nat 9ms restart n0", uint64(2), uint64(2), byte(3))
	f.Fuzz(func(t *testing.T, scriptText string, seed, schedBits uint64, muts byte) {
		cfg, err := cluster.Preset("explore-small")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Seed = seed%8 + 1
		cfg.ScheduleWindow = time.Millisecond
		cfg.DisableFencing = muts&1 != 0
		cfg.BreakDedup = muts&2 != 0
		cfg.SkipReconcile = muts&4 != 0
		if scriptText != "" {
			sc, err := cluster.ParseScript(scriptText)
			if err != nil || len(sc.Steps) > 6 {
				t.Skip()
			}
			if sc.Validate(cfg.Nodes, cfg.Shards) != nil {
				t.Skip()
			}
			for _, st := range sc.Steps {
				if st.At > cfg.Duration || st.For > cfg.Heal/2 {
					t.Skip() // keep runs short and inside the horizon
				}
			}
			cfg.Script = sc
		}
		// Decode up to twenty-four 2-bit schedule choices from
		// schedBits; trailing zeros are canonical no-ops.
		var sched []int
		for i := 0; i < 24; i++ {
			sched = append(sched, int(schedBits>>(2*i))&3)
		}

		probe, err := Replay(cfg, sched)
		if err != nil || len(probe.Violations) == 0 {
			t.Skip() // clean or invalid input: nothing to shrink
		}
		sh, err := Shrink(cfg, sched)
		if err != nil {
			t.Fatalf("shrink of a failing input errored: %v", err)
		}
		if sh.Class != probe.Violations[0].Class {
			t.Fatalf("shrunk class %s, input failed with %s", sh.Class, probe.Violations[0].Class)
		}
		c := cfg
		c.Script = sh.Script
		rep, err := Replay(c, sh.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		if !hasClass(rep, sh.Class) {
			t.Fatal("shrunk repro does not replay")
		}
		for i := range sh.Schedule {
			trial := append(append([]int(nil), sh.Schedule[:i]...), sh.Schedule[i+1:]...)
			r, err := Replay(c, trial)
			if err == nil && hasClass(r, sh.Class) {
				t.Fatalf("not 1-minimal: schedule entry %d removable", i)
			}
		}
	})
}
