package explore

import (
	"strings"
	"testing"

	"repro/internal/cluster"
)

// mutations is the table of seeded protocol breaks the explorer must
// catch, each with the invariant class that must pin it.
var mutations = []struct {
	name  string
	apply func(*cluster.Config)
	class string
	// needsSearch pins that the canonical schedule alone does NOT
	// expose the bug — the enumeration is what finds it.
	needsSearch bool
}{
	{
		name:        "no-fencing",
		apply:       func(c *cluster.Config) { c.DisableFencing = true },
		class:       cluster.ClassStaleApply,
		needsSearch: true,
	},
	{
		name:        "break-dedup",
		apply:       func(c *cluster.Config) { c.BreakDedup = true },
		class:       cluster.ClassVersionRegres,
		needsSearch: true,
	},
	{
		name:  "skip-reconcile",
		apply: func(c *cluster.Config) { c.SkipReconcile = true },
		class: cluster.ClassReconcile,
		// finish() notices the missing reconcile on every schedule.
		needsSearch: false,
	},
}

func hasClass(r *cluster.Result, class string) bool {
	if r == nil {
		return false
	}
	for _, v := range r.Violations {
		if v.Class == class {
			return true
		}
	}
	return false
}

// TestExploreFindsMutations is the mutation battery: for each seeded
// bug the delay-bounded hunt must find a violating schedule of the
// right class, the shrinker must reduce it to a 1-minimal repro of the
// same class, and that repro must replay.
func TestExploreFindsMutations(t *testing.T) {
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			cfg := huntCfg(t, 1)
			m.apply(&cfg)

			if m.needsSearch {
				canon, err := Replay(cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(canon.Violations) != 0 {
					t.Fatalf("canonical schedule already fails — mutation needs no search:\n%s",
						canon.FailureReport(""))
				}
			}

			opts := DefaultOptions(cfg)
			opts.Delays = 2
			res, err := Search(opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation == nil {
				t.Fatalf("hunt missed the %s mutation: %+v", m.name, res.Stats)
			}
			if got := res.Violation.Violations[0].Class; got != m.class {
				t.Fatalf("first violation class %s, want %s", got, m.class)
			}

			sh, err := Shrink(cfg, res.Schedule)
			if err != nil {
				t.Fatal(err)
			}
			if sh.Class != m.class {
				t.Fatalf("shrunk class %s, want %s", sh.Class, m.class)
			}
			if !hasClass(sh.Result, m.class) {
				t.Fatal("shrunk repro does not replay its own class")
			}
			if len(sh.Schedule) > len(res.Schedule) {
				t.Errorf("shrink grew the schedule: %d > %d", len(sh.Schedule), len(res.Schedule))
			}

			// Independent replay of the shrunk repro, as cmd/clustersim
			// would run it: fresh config, fixed schedule, no search.
			c := cfg
			c.Script = sh.Script
			rep, err := Replay(c, sh.Schedule)
			if err != nil {
				t.Fatal(err)
			}
			if !hasClass(rep, m.class) {
				t.Fatalf("independent replay lost the violation:\n%s", rep.FailureReport(""))
			}

			assertOneMinimal(t, c, sh)
		})
	}
}

// assertOneMinimal verifies the shrinker's contract directly: removing
// any single schedule entry or script step from the shrunk repro makes
// the violation class disappear.
func assertOneMinimal(t *testing.T, cfg cluster.Config, sh *Shrunk) {
	t.Helper()
	fails := func(sc *cluster.Script, sched []int) bool {
		c := cfg
		c.Script = sc
		r, err := Replay(c, sched)
		return err == nil && hasClass(r, sh.Class)
	}
	for i := range sh.Schedule {
		trial := append(append([]int(nil), sh.Schedule[:i]...), sh.Schedule[i+1:]...)
		if fails(sh.Script, trial) {
			t.Errorf("not 1-minimal: schedule entry %d removable", i)
		}
	}
	if sh.Script != nil {
		for i := range sh.Script.Steps {
			trial := &cluster.Script{
				Steps: append(append([]cluster.Step(nil), sh.Script.Steps[:i]...), sh.Script.Steps[i+1:]...),
			}
			if fails(trial, sh.Schedule) {
				t.Errorf("not 1-minimal: script step %d removable", i)
			}
		}
	}
}

// TestReproFileRoundTrip pins that the emitted repro file's body is a
// parseable canonical script and the header carries the schedule.
func TestReproFileRoundTrip(t *testing.T) {
	cfg := huntCfg(t, 1)
	cfg.DisableFencing = true
	opts := DefaultOptions(cfg)
	opts.Delays = 2
	res, err := Search(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("hunt found nothing")
	}
	sh, err := Shrink(cfg, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	text := sh.ReproFile("explore-small", 1, []string{"-no-fencing"})
	if !strings.Contains(text, "class="+sh.Class) {
		t.Errorf("repro file missing class header:\n%s", text)
	}
	if !strings.Contains(text, "# schedule: "+FormatSchedule(sh.Schedule)) {
		t.Errorf("repro file missing schedule header:\n%s", text)
	}
	parsed, err := cluster.ParseScript(text)
	if err != nil {
		t.Fatalf("repro file does not parse as a script: %v", err)
	}
	wantSteps := 0
	if sh.Script != nil {
		wantSteps = len(sh.Script.Steps)
	}
	if len(parsed.Steps) != wantSteps {
		t.Errorf("repro file has %d steps, shrunk script has %d", len(parsed.Steps), wantSteps)
	}
}
