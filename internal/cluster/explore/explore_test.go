package explore

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

// smallCfg returns the explore-small preset with the given seed and
// optional canonical script.
func smallCfg(t *testing.T, seed uint64, scriptName string) cluster.Config {
	t.Helper()
	cfg, err := cluster.Preset("explore-small")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = seed
	if scriptName != "" {
		sc, err := cluster.LoadScript(scriptName)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Script = sc
	}
	return cfg
}

// huntCfg is the mutation-hunt configuration: the expire-churn-tiny
// script with the schedule window widened to one network delay, so
// retransmit-versus-ack reorders are in scope (see the preset comment).
func huntCfg(t *testing.T, seed uint64) cluster.Config {
	cfg := smallCfg(t, seed, "expire-churn-tiny")
	cfg.ScheduleWindow = time.Millisecond
	return cfg
}

// TestExploreSmallVerified pins the tentpole's clean half: the honest
// protocol survives exhaustive schedule enumeration on the small
// preset — bare and under the tiny churn script — and the wider
// delay-bounded hunt, all VERIFIED (complete, uncapped, no violation).
func TestExploreSmallVerified(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		res, err := Search(DefaultOptions(smallCfg(t, seed, "")))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified() {
			t.Errorf("seed %d bare: not verified: %+v", seed, res.Stats)
		}
		if !res.Pruning {
			t.Errorf("seed %d: preset should be prunable", seed)
		}
	}
	res, err := Search(DefaultOptions(smallCfg(t, 1, "expire-churn-tiny")))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified() {
		t.Errorf("script exhaustive: not verified: %+v", res.Stats)
	}

	opts := DefaultOptions(huntCfg(t, 1))
	opts.Delays = 2
	hres, err := Search(opts)
	if err != nil {
		t.Fatal(err)
	}
	if hres.Violation != nil {
		t.Errorf("honest hunt found a violation:\n%s", hres.Violation.FailureReport(""))
	}
	if !hres.Complete {
		t.Errorf("honest hunt did not exhaust its bound: %+v", hres.Stats)
	}
}

// TestExploreDeterministic pins that the search is a pure function of
// its options: identical stats on a clean tree, identical violating
// schedule on a mutated one.
func TestExploreDeterministic(t *testing.T) {
	a, err := Search(DefaultOptions(smallCfg(t, 3, "")))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(DefaultOptions(smallCfg(t, 3, "")))
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Errorf("stats differ across identical searches:\n%+v\n%+v", a.Stats, b.Stats)
	}

	mut := func() *Result {
		cfg := huntCfg(t, 1)
		cfg.BreakDedup = true
		opts := DefaultOptions(cfg)
		opts.Delays = 2
		r, err := Search(opts)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := mut(), mut()
	if r1.Violation == nil || r2.Violation == nil {
		t.Fatal("mutation search found nothing")
	}
	if !reflect.DeepEqual(r1.Schedule, r2.Schedule) {
		t.Errorf("violating schedules differ: %v vs %v", r1.Schedule, r2.Schedule)
	}
	if r1.Violation.Violations[0].String() != r2.Violation.Violations[0].String() {
		t.Errorf("violations differ: %s vs %s", r1.Violation.Violations[0], r2.Violation.Violations[0])
	}
}

// TestExploreCanonicalEquivalence pins the scheduler-hook contract: a
// controller that always defers to the canonical choice produces a
// byte-identical trace to running with no Scheduler at all.
func TestExploreCanonicalEquivalence(t *testing.T) {
	for _, script := range []string{"", "expire-churn-tiny"} {
		plain, err := cluster.Run(smallCfg(t, 1, script))
		if err != nil {
			t.Fatal(err)
		}
		scheduled, err := Replay(smallCfg(t, 1, script), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.Trace, scheduled.Trace) {
			t.Errorf("script=%q: canonical scheduler diverged from plain run", script)
		}
		if plain.FinalState != scheduled.FinalState {
			t.Errorf("script=%q: final states differ", script)
		}
	}
}

// TestExploreDelayZero pins the delay-bound floor: a budget of zero
// delays explores exactly the canonical schedule.
func TestExploreDelayZero(t *testing.T) {
	opts := DefaultOptions(smallCfg(t, 3, ""))
	opts.Delays = 0
	res, err := Search(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Schedules != 1 {
		t.Errorf("Delays=0 ran %d schedules, want exactly 1", res.Stats.Schedules)
	}
	if !res.Complete || res.Violation != nil {
		t.Errorf("Delays=0 should complete cleanly: %+v", res)
	}
}

// TestExploreBudgetIncomplete pins budget exhaustion: a tree larger
// than the budget reports an incomplete (unverified) clean search.
func TestExploreBudgetIncomplete(t *testing.T) {
	opts := DefaultOptions(smallCfg(t, 3, ""))
	opts.Budget = 5
	res, err := Search(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected violation:\n%s", res.Violation.FailureReport(""))
	}
	if res.Complete || res.Verified() {
		t.Errorf("budget-capped search must be incomplete: %+v", res.Stats)
	}
	if res.Stats.Schedules > 5 {
		t.Errorf("ran %d schedules past a budget of 5", res.Stats.Schedules)
	}
}

// TestExploreMaxBranch pins depth capping: truncating the tree keeps
// the search from claiming VERIFIED.
func TestExploreMaxBranch(t *testing.T) {
	opts := DefaultOptions(smallCfg(t, 3, ""))
	opts.MaxBranch = 2
	res, err := Search(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected violation:\n%s", res.Violation.FailureReport(""))
	}
	if !res.DepthCapped {
		t.Error("MaxBranch=2 search should report DepthCapped")
	}
	if res.Verified() {
		t.Error("depth-capped search must not verify")
	}
	if res.Stats.MaxDepth > 2 {
		t.Errorf("stack grew to %d past MaxBranch=2", res.Stats.MaxDepth)
	}
}

// TestFaultDispatchWakesSleepers pins the wake-up rule the forced
// dispatch path relies on: a fault-band event is dependent with
// everything (Independent rejects faults outright), so filtering a
// sleep set through a fault or heal dispatch must empty it. Leaving
// events asleep across a fault would wrongly prune schedules that
// reorder normal events around the fault's timestamp — exactly where
// violations live.
func TestFaultDispatchWakesSleepers(t *testing.T) {
	a := cluster.ReadyEvent{At: time.Millisecond, Endpoint: 0, Desc: "timer@1ms n0 write s0 g1 w0"}
	b := cluster.ReadyEvent{At: time.Millisecond, Endpoint: 1, Deliver: true, Desc: "deliver@1ms x"}
	sleep := map[string]cluster.ReadyEvent{a.Desc: a, b.Desc: b}
	for _, forced := range []cluster.ReadyEvent{
		{At: time.Millisecond, Fault: true, Endpoint: cluster.AnyEndpoint, Desc: "fault@1ms step 0"},
		{At: time.Millisecond, Fault: true, Endpoint: cluster.AnyEndpoint, Desc: "heal@1ms"},
	} {
		if got := filterIndependent(sleep, forced); len(got) != 0 {
			t.Errorf("sleep set survived %q: %v", forced.Desc, got)
		}
	}
	// Sanity: a dispatch independent of both sleepers keeps them.
	other := cluster.ReadyEvent{At: time.Millisecond, Endpoint: 2, Desc: "timer@1ms n2 x"}
	if got := filterIndependent(sleep, other); len(got) != 2 {
		t.Errorf("independent sleepers woken: %v", got)
	}
}

// TestPruningAgreesWithUnpruned is the sleep-set soundness net over
// fault scripts: on hunts whose schedules cross fault-band dispatches
// (expire-churn-tiny fires twice inside the horizon), the pruned and
// unpruned searches must reach the same verdict — same completeness
// on the honest build, same violation class under every planted
// mutation. A pruning bug that silently skips schedules near fault
// timestamps shows up here as a verdict mismatch.
func TestPruningAgreesWithUnpruned(t *testing.T) {
	run := func(mutate func(*cluster.Config), noPrune bool) *Result {
		cfg := huntCfg(t, 1)
		if mutate != nil {
			mutate(&cfg)
		}
		opts := DefaultOptions(cfg)
		opts.Delays = 2
		opts.NoPrune = noPrune
		res, err := Search(opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	honest, honestFull := run(nil, false), run(nil, true)
	if !honest.Pruning || honestFull.Pruning {
		t.Fatalf("pruning flags: pruned=%v unpruned=%v", honest.Pruning, honestFull.Pruning)
	}
	if honest.Violation != nil || honestFull.Violation != nil {
		t.Fatal("honest hunt found a violation")
	}
	if honest.Complete != honestFull.Complete {
		t.Errorf("completeness disagrees: pruned=%v unpruned=%v", honest.Complete, honestFull.Complete)
	}
	if honest.Stats.Schedules > honestFull.Stats.Schedules {
		t.Errorf("pruned search ran MORE schedules (%d) than unpruned (%d)",
			honest.Stats.Schedules, honestFull.Stats.Schedules)
	}

	for _, m := range mutations {
		pruned, full := run(m.apply, false), run(m.apply, true)
		if pruned.Violation == nil || full.Violation == nil {
			t.Fatalf("%s: violation missed (pruned=%v unpruned=%v)",
				m.name, pruned.Violation != nil, full.Violation != nil)
		}
		pc := pruned.Violation.Violations[0].Class
		fc := full.Violation.Violations[0].Class
		if pc != m.class || fc != m.class {
			t.Errorf("%s: classes pruned=%s unpruned=%s, want %s", m.name, pc, fc, m.class)
		}
	}
}

// TestPrunable pins the soundness guard for sleep-set pruning.
func TestPrunable(t *testing.T) {
	base := smallCfg(t, 1, "")
	if !Prunable(base) {
		t.Error("preset should be prunable")
	}
	c := base
	c.SplitRNG = false
	if Prunable(c) {
		t.Error("shared RNG must not be prunable")
	}
	c = base
	c.NetJitter = 0 // zero selects the jittered default
	if Prunable(c) {
		t.Error("defaulted jitter must not be prunable")
	}
	for _, tc := range []struct {
		script string
		want   bool
	}{
		{"at 1ms drop n0->n1 p=0.5 for 5ms", false},
		{"at 1ms dup n0->n1 p=0.1 for 5ms", false},
		{"at 1ms delay n0->n1 1ms..2ms for 5ms", false},
		{"at 1ms drop n0->n1 p=1 for 5ms", true},
		{"at 1ms cut n0->n1 for 5ms\nat 2ms expire shard 0\nat 3ms crash n0", true},
	} {
		sc, err := cluster.ParseScript(tc.script)
		if err != nil {
			t.Fatal(err)
		}
		c = base
		c.Script = sc
		if got := Prunable(c); got != tc.want {
			t.Errorf("Prunable(%q) = %v, want %v", strings.TrimSpace(tc.script), got, tc.want)
		}
	}
}

// TestScheduleRoundTrip pins the textual schedule form used on repro
// lines.
func TestScheduleRoundTrip(t *testing.T) {
	for _, sched := range [][]int{nil, {0}, {2, 0, 1}, {0, 0, 0, 5}} {
		got, err := ParseSchedule(FormatSchedule(sched))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(sched) {
			t.Fatalf("round-trip %v -> %v", sched, got)
		}
		for i := range got {
			if got[i] != sched[i] {
				t.Fatalf("round-trip %v -> %v", sched, got)
			}
		}
	}
	for _, bad := range []string{"1,-2", "a", "1,,2"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) should fail", bad)
		}
	}
}
