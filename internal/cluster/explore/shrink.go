package explore

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
)

// Shrunk is a minimized failing repro: the smallest (script, schedule)
// pair the shrinker could reach that still produces a violation of the
// original class under the same Config (seed, topology, mutations).
type Shrunk struct {
	Class    string          // violation class being preserved
	Schedule []int           // minimized branch choices
	Script   *cluster.Script // minimized fault script (nil if none needed)
	Result   *cluster.Result // the replay of the minimized repro
}

// Shrink delta-debugs a failing (Config, schedule) pair down to a
// locally minimal repro. The reduction target is the class of the
// first violation the input produces: every accepted reduction must
// still yield at least one violation of that class, so the shrunk
// repro fails the same way, not merely somehow.
//
// Reductions, applied to fixpoint: drop the whole schedule (canonical
// order), remove single schedule entries, zero nonzero entries, and
// remove single script steps. At the fixpoint no single removal
// reproduces the class — the result is 1-minimal. The shrinker is a
// pure function of its inputs (every trial is a deterministic replay),
// so the same failure always shrinks to the same repro.
func Shrink(cfg cluster.Config, schedule []int) (*Shrunk, error) {
	cfg.Scheduler = nil
	base, err := Replay(cfg, schedule)
	if err != nil {
		return nil, err
	}
	if len(base.Violations) == 0 {
		return nil, fmt.Errorf("explore: input does not reproduce any violation")
	}
	class := base.Violations[0].Class

	fails := func(sc *cluster.Script, sched []int) bool {
		c := cfg
		c.Script = sc
		r, rerr := Replay(c, sched)
		if rerr != nil {
			return false
		}
		for _, v := range r.Violations {
			if v.Class == class {
				return true
			}
		}
		return false
	}

	sched := append([]int(nil), schedule...)
	script := cfg.Script
	for changed := true; changed; {
		changed = false
		// Whole-schedule drop first: most repros need no reordering at
		// all once the script is in place, and this skips the slow
		// per-entry walk for them.
		if len(sched) > 0 && fails(script, nil) {
			sched = nil
			changed = true
		}
		for i := 0; i < len(sched); i++ {
			trial := append(append([]int(nil), sched[:i]...), sched[i+1:]...)
			if fails(script, trial) {
				sched = trial
				changed = true
				i--
			}
		}
		for i := range sched {
			if sched[i] == 0 {
				continue
			}
			trial := append([]int(nil), sched...)
			trial[i] = 0
			if fails(script, trial) {
				sched = trial
				changed = true
			}
		}
		if script != nil {
			for i := 0; i < len(script.Steps); i++ {
				trial := &cluster.Script{
					Steps: append(append([]cluster.Step(nil), script.Steps[:i]...), script.Steps[i+1:]...),
				}
				if fails(trial, sched) {
					script = trial
					changed = true
					i--
				}
			}
			if len(script.Steps) == 0 {
				script = nil
			}
		}
	}

	c := cfg
	c.Script = script
	final, err := Replay(c, sched)
	if err != nil {
		return nil, err
	}
	return &Shrunk{Class: class, Schedule: sched, Script: script, Result: final}, nil
}

// ReproFile renders the shrunk repro as a canonical fault-script file
// with a commented header carrying everything else needed to replay
// it: the preset, seed, mutation flags, and branch schedule. The body
// parses with cluster.ParseScript (comments are ignored), so the file
// doubles as the -script-file input to cmd/clustersim.
func (sh *Shrunk) ReproFile(preset string, seed uint64, mutations []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# shrunk repro: class=%s\n", sh.Class)
	fmt.Fprintf(&b, "# preset=%s seed=%d\n", preset, seed)
	if len(mutations) > 0 {
		fmt.Fprintf(&b, "# mutations: %s\n", strings.Join(mutations, " "))
	}
	fmt.Fprintf(&b, "# schedule: %s\n", FormatSchedule(sh.Schedule))
	if sh.Script != nil {
		b.WriteString(sh.Script.Format())
	}
	return b.String()
}
