package cluster

import "testing"

// TestPresetsHonestPass pins the contract the explorer relies on: every
// preset, run canonically (no Scheduler) with an honest protocol, has
// zero violations — bare and under the expire-churn script, across a
// few seeds. If a preset's timing drifts out of tune, the exhaustive
// search would report canonical-order "violations" that are really
// configuration bugs; this catches that directly.
func TestPresetsHonestPass(t *testing.T) {
	script, err := LoadScript("expire-churn")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range PresetNames() {
		for _, sc := range []*Script{nil, script} {
			for seed := uint64(1); seed <= 3; seed++ {
				cfg, err := Preset(name)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Seed = seed
				cfg.Script = sc
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s seed %d: %v", name, seed, err)
				}
				if len(res.Violations) != 0 {
					t.Errorf("%s seed %d script=%v: canonical run not clean:\n%s",
						name, seed, sc != nil, res.FailureReport(""))
				}
			}
		}
	}
}

// TestPresetUnknown pins the error path.
func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("no-such-preset"); err == nil {
		t.Fatal("want error for unknown preset")
	}
}
