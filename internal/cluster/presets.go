package cluster

import (
	"fmt"
	"sort"
	"time"
)

// Presets are named Config bundles shared between the schedule
// explorer (internal/cluster/explore, cmd/clusterexplore) and the
// replayer (cmd/clustersim -preset). A repro line emitted by the
// explorer names its preset, so replaying it reconstructs the exact
// same topology and timing without copying a dozen flags.
//
// Explorer presets are deliberately tiny and draw-free outside the
// node streams: topologies of 2–3 nodes over 1–2 shards, short
// horizons so a single schedule replays in well under a millisecond,
// NetJitter disabled (the schedule window is the jitter model), and
// SplitRNG on so events on distinct endpoints commute and sleep-set
// pruning is sound.
var presets = map[string]Config{
	// The exhaustive-search workhorse: 2 nodes contending for 1 shard
	// over a horizon of roughly one workload round, kept small enough
	// that the bare schedule tree exhausts in seconds. RetransTick
	// (3ms) exceeds the write round-trip (2×NetDelay = 2ms), so in
	// canonical order every ack lands before its write's retransmit
	// fires and the retransmit is cancelled; the explorer can reorder
	// the retransmit ahead of the ack within the 1ms window, which is
	// exactly the race the BreakDedup mutation needs exposed.
	"explore-small": {
		Nodes:          2,
		Shards:         1,
		Duration:       24 * time.Millisecond,
		Heal:           200 * time.Millisecond,
		TTL:            40 * time.Millisecond,
		GuardBand:      8 * time.Millisecond,
		Hold:           10 * time.Millisecond,
		WorkloadEvery:  16 * time.Millisecond,
		WritesPerCS:    1,
		WriteGap:       3 * time.Millisecond,
		KeysPerShard:   2,
		NetDelay:       time.Millisecond,
		NetJitter:      -1,
		RetransTick:    3 * time.Millisecond,
		SyncTimeout:    6 * time.Millisecond,
		AcquireTimeout: 6 * time.Millisecond,
		ReconcileDelay: 25 * time.Millisecond,
		ScheduleWindow: 100 * time.Microsecond,
		SplitRNG:       true,
	},
	// The explore-small topology with every shard lease backed by a
	// real registry-built Reciprocating lock at the service (see
	// Config.RealLockName): the abstract lease FSM and the actual lock
	// implementation must agree on every admission of the run. Not an
	// explorer preset — it keeps jitter and the shared RNG so it runs
	// as a plain seeded simulation under clustersim.
	"real-lock-small": {
		Nodes:          2,
		Shards:         1,
		Duration:       200 * time.Millisecond,
		Heal:           400 * time.Millisecond,
		TTL:            40 * time.Millisecond,
		GuardBand:      8 * time.Millisecond,
		Hold:           10 * time.Millisecond,
		WorkloadEvery:  16 * time.Millisecond,
		WritesPerCS:    1,
		WriteGap:       3 * time.Millisecond,
		KeysPerShard:   2,
		NetDelay:       time.Millisecond,
		RetransTick:    3 * time.Millisecond,
		SyncTimeout:    6 * time.Millisecond,
		AcquireTimeout: 6 * time.Millisecond,
		ReconcileDelay: 25 * time.Millisecond,
		RealLockName:   "Recipro",
	},
	// The wider topology: 3 nodes over 2 shards with a longer horizon.
	// Too big for exhaustive search at useful depth; meant for
	// delay-bounded exploration (-delays) and budgeted sampling.
	"explore-wide": {
		Nodes:          3,
		Shards:         2,
		Duration:       60 * time.Millisecond,
		Heal:           300 * time.Millisecond,
		TTL:            40 * time.Millisecond,
		GuardBand:      8 * time.Millisecond,
		Hold:           10 * time.Millisecond,
		WorkloadEvery:  16 * time.Millisecond,
		WritesPerCS:    1,
		WriteGap:       3 * time.Millisecond,
		KeysPerShard:   2,
		NetDelay:       time.Millisecond,
		NetJitter:      -1,
		RetransTick:    3 * time.Millisecond,
		SyncTimeout:    6 * time.Millisecond,
		AcquireTimeout: 6 * time.Millisecond,
		ReconcileDelay: 25 * time.Millisecond,
		ScheduleWindow: time.Millisecond,
		SplitRNG:       true,
	},
}

// PresetNames returns the preset names, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Preset returns a copy of the named preset Config. Callers fill in
// Seed, Script, and (for controlled runs) Scheduler.
func Preset(name string) (Config, error) {
	c, ok := presets[name]
	if !ok {
		return Config{}, fmt.Errorf("cluster: unknown preset %q (have %v)", name, PresetNames())
	}
	return c, nil
}
