package cluster

import (
	"strings"
	"testing"
	"time"
)

// shortConfig is a fast topology for protocol tests.
func shortConfig(seed uint64) Config {
	return Config{
		Nodes: 3, Shards: 2, Seed: seed,
		Duration: 600 * time.Millisecond,
		Heal:     1500 * time.Millisecond,
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// A fault-free run must satisfy every invariant and actually exercise
// the protocol: grants happen, writes commit, replicas converge.
func TestNoFaultRun(t *testing.T) {
	res := mustRun(t, shortConfig(1))
	if len(res.Violations) != 0 {
		t.Fatalf("violations in a fault-free run:\n%s", res.FailureReport(""))
	}
	c := res.Counters
	if c.Grants == 0 || c.Writes == 0 || c.Committed == 0 {
		t.Fatalf("protocol idle: %+v", c)
	}
	if c.Dropped != 0 || c.Duplicated != 0 {
		t.Fatalf("faults fired without a script: %+v", c)
	}
	if res.FinalState == "" {
		t.Fatal("empty final state after a run with committed writes")
	}
}

// Determinism is the tentpole property: the same (seed, script) must
// produce a byte-identical event trace and final replica state, and a
// different seed must diverge.
func TestDeterministicReplay(t *testing.T) {
	script, err := LoadScript("lease-expiry-mid-cs")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 7, Script: script}

	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.FinalState != b.FinalState {
		t.Fatalf("final states differ across identical runs:\n%s\n%s", a.FinalState, b.FinalState)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("trace diverges at line %d:\n%s\n%s", i, a.Trace[i], b.Trace[i])
		}
	}
	if a.Counters != b.Counters {
		t.Fatalf("counters differ: %+v vs %+v", a.Counters, b.Counters)
	}

	cfg.Seed = 8
	c := mustRun(t, cfg)
	if strings.Join(c.Trace, "\n") == strings.Join(a.Trace, "\n") {
		t.Fatal("seeds 7 and 8 produced identical traces")
	}
}

// Every canonical script must pass every invariant across fixed seeds
// — this is the same matrix `make cluster` runs.
func TestCanonicalScripts(t *testing.T) {
	for _, name := range ScriptNames() {
		script, err := LoadScript(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, seed := range []uint64{1, 2, 3} {
			res := mustRun(t, Config{Seed: seed, Script: script})
			if len(res.Violations) != 0 {
				t.Errorf("script %s seed %d:\n%s", name, seed, res.FailureReport(""))
			}
		}
	}
}

// expiryScript hammers one shard with pause-the-holder + forced expiry
// so stale-fenced writes are generated: paused holders wake with
// unexpired-looking leases and retransmit under dead epochs.
const expiryScript = `
at 100ms pause n0 for 300ms
at 120ms expire shard 0
at 500ms pause n1 for 300ms
at 520ms expire shard 0
at 900ms pause n2 for 300ms
at 920ms expire shard 0
`

func expiryConfig(seed uint64) Config {
	return Config{
		Nodes: 3, Shards: 1, Seed: seed,
		Duration:      1300 * time.Millisecond,
		Heal:          1500 * time.Millisecond,
		WorkloadEvery: 30 * time.Millisecond,
	}
}

// The fencing gate must actually be load-bearing. With fencing ON the
// expiry gauntlet produces stale rejections and zero violations; with
// fencing OFF (DisableFencing) the same schedules apply stale writes
// and the no-stale-apply checker must report them — the negative test
// proving the checker catches real fencing violations, with a
// one-command repro in the failure report.
func TestStaleFenceNegative(t *testing.T) {
	script, err := ParseScript(expiryScript)
	if err != nil {
		t.Fatal(err)
	}
	var staleSeeds []uint64
	var caught *Result
	for seed := uint64(1); seed <= 20 && caught == nil; seed++ {
		cfg := expiryConfig(seed)
		cfg.Script = script

		honest := mustRun(t, cfg)
		if len(honest.Violations) != 0 {
			t.Fatalf("fencing on, seed %d: unexpected violations:\n%s", seed, honest.FailureReport(""))
		}
		if honest.Counters.StaleRejected == 0 {
			continue // this seed never created stale pressure
		}
		staleSeeds = append(staleSeeds, seed)

		cfg.DisableFencing = true
		broken := mustRun(t, cfg)
		for _, v := range broken.Violations {
			if strings.Contains(v.Msg, "applied stale-fenced write") {
				caught = broken
				break
			}
		}
	}
	if len(staleSeeds) == 0 {
		t.Fatal("no seed in 1..20 produced stale-fenced writes; the gauntlet lost its teeth")
	}
	if caught == nil {
		t.Fatalf("fencing off never applied a stale write on stale-pressure seeds %v", staleSeeds)
	}

	report := caught.FailureReport("clustersim -nodes 3 -shards 1 -seed N -script expiry.script -no-fencing")
	for _, want := range []string{"seed=", "applied stale-fenced write", "trace (last", "repro: clustersim"} {
		if !strings.Contains(report, want) {
			t.Fatalf("failure report missing %q:\n%s", want, report)
		}
	}
}

// A paused-then-healed cluster must converge: replica dumps are
// compared by the convergence checker, so it suffices that a run with
// heavy faults ends violation-free, but pin the convergence directly
// too for one adversarial case.
func TestConvergenceAfterPartition(t *testing.T) {
	script, err := ParseScript(`
at 50ms cut n0->n1 for 300ms
at 50ms cut n1->n0 for 300ms
at 80ms drop n2->* p=0.6 for 250ms
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := shortConfig(11)
	cfg.Script = script
	res := mustRun(t, cfg)
	if len(res.Violations) != 0 {
		t.Fatalf("partition run:\n%s", res.FailureReport(""))
	}
	if res.Counters.Dropped == 0 {
		t.Fatal("cut/drop rules never fired")
	}
}

// Script validation rejects out-of-range endpoints at Run time.
func TestRunValidatesScript(t *testing.T) {
	script, err := ParseScript("at 10ms crash n9\n")
	if err != nil {
		t.Fatal(err)
	}
	cfg := shortConfig(1)
	cfg.Script = script
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted a script referencing n9 in a 3-node cluster")
	}
}
