package cluster

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/kvstore"
)

// Violation classes: which invariant family a breach belongs to. The
// class is the label the fault-script shrinker preserves while
// minimizing a repro — a shrunk script must fail the same way, not
// merely fail.
const (
	ClassExclusivity   = "lease-exclusivity"
	ClassEpochRegress  = "epoch-regress"
	ClassStaleApply    = "stale-apply"
	ClassVersionRegres = "version-regress"
	ClassBackoffFloor  = "backoff-floor"
	ClassQuiesce       = "quiesce"
	ClassLivelock      = "livelock"
	ClassReconcile     = "reconcile"
	ClassNoProgress    = "no-progress"
	ClassDivergence    = "divergence"
	ClassFenceLag      = "fence-lag"
	ClassDurability    = "durability"
	ClassRealLock      = "real-lock-divergence"
)

// Violation is one invariant breach, stamped with the simulated time
// and the last fault-script step that had been applied when it was
// detected (the step most likely to have provoked it).
type Violation struct {
	At    time.Duration
	Class string // one of the Class* constants
	Msg   string
	Step  string // canonical text of the last applied script step, or "<none>"
}

func (v Violation) String() string {
	return fmt.Sprintf("[%v] %s: %s (last fault: %s)", v.At, v.Class, v.Msg, v.Step)
}

// grantWindow is the checker's view of one shard's active lease.
type grantWindow struct {
	holder int
	epoch  uint64
	expiry time.Duration
	open   bool
}

// checker runs the continuous invariants. It observes the run through
// narrow hooks — grants, denials, applies, version updates — and
// accumulates violations instead of stopping, so one run reports every
// breach it can reach.
//
// Invariants:
//
//  1. Lease exclusivity: at most one holder per shard at a time, and
//     fencing epochs strictly increase per shard.
//  2. No stale apply: no replica ever applies a write whose fencing
//     token is below that replica's fence (kvstore.Fenced reports every
//     apply; any Stale && Applied record is a breach).
//  3. Version monotonicity: per replica, per key, applied (epoch, seq)
//     versions strictly increase — duplicates and reordered
//     retransmissions must never regress a cell.
//  4. Graceful degradation: after a denial, the next acquire for that
//     (node, shard) must wait at least the backoff Base — retry storms
//     are bounded below, never tight loops.
type checker struct {
	s          *sim
	violations []Violation

	windows  []grantWindow // per shard
	maxEpoch []uint64      // per shard

	lastDeny map[[2]int]time.Duration     // (node, shard) -> time of last denial
	versions map[int]map[string]versioned // node -> key -> last applied version
}

func newChecker(s *sim, shards int) *checker {
	return &checker{
		s:        s,
		windows:  make([]grantWindow, shards),
		maxEpoch: make([]uint64, shards),
		lastDeny: make(map[[2]int]time.Duration),
		versions: make(map[int]map[string]versioned),
	}
}

func (c *checker) fail(class, format string, args ...any) {
	v := Violation{At: c.s.now, Class: class, Msg: fmt.Sprintf(format, args...), Step: c.s.lastStepText()}
	c.violations = append(c.violations, v)
	c.s.tracef("VIOLATION(%s): %s", v.Class, v.Msg)
}

// onGrant checks lease exclusivity and epoch monotonicity at the
// service's grant linearization point.
func (c *checker) onGrant(shard int, epoch uint64, holder int, now, expiry time.Duration) {
	w := &c.windows[shard]
	if w.open && now < w.expiry {
		c.fail(ClassExclusivity, "shard %d granted to n%d (e%d) while n%d still holds e%d until %v",
			shard, holder, epoch, w.holder, w.epoch, w.expiry)
	}
	if epoch <= c.maxEpoch[shard] {
		c.fail(ClassEpochRegress, "shard %d epoch regressed: granted e%d after e%d", shard, epoch, c.maxEpoch[shard])
	}
	c.maxEpoch[shard] = epoch
	c.windows[shard] = grantWindow{holder: holder, epoch: epoch, expiry: expiry, open: true}
}

func (c *checker) onRenew(shard int, expiry time.Duration) {
	c.windows[shard].expiry = expiry
}

// onLeaseEnd marks the shard's window closed (release, forced expiry,
// or observed lapse).
func (c *checker) onLeaseEnd(shard int, now time.Duration) {
	w := &c.windows[shard]
	w.open = false
	if w.expiry > now {
		w.expiry = now
	}
}

func (c *checker) onGrantSeen(node, shard int) {
	delete(c.lastDeny, [2]int{node, shard})
}

// onApply consumes every kvstore.Fenced apply record from every node.
func (c *checker) onApply(node int, rec kvstore.ApplyRecord) {
	if rec.Stale && rec.Applied {
		c.fail(ClassStaleApply, "n%d applied stale-fenced write: key %s epoch %d below fence %d (shard %d)",
			node, rec.Key, rec.Epoch, rec.Fence, rec.Shard)
	}
}

// onVersion checks per-replica per-key version monotonicity.
func (c *checker) onVersion(node int, key string, v versioned) {
	m := c.versions[node]
	if m == nil {
		m = make(map[string]versioned)
		c.versions[node] = m
	}
	if cur, ok := m[key]; ok && !cur.less(v) {
		c.fail(ClassVersionRegres, "n%d version regressed on %s: applied e%d.w%d over e%d.w%d",
			node, key, v.epoch, v.seq, cur.epoch, cur.seq)
	}
	m[key] = v
}

func (c *checker) onDeny(node, shard int, now time.Duration) {
	c.lastDeny[[2]int{node, shard}] = now
}

func (c *checker) onAcquireSend(node, shard int, now time.Duration) {
	if last, ok := c.lastDeny[[2]int{node, shard}]; ok {
		if gap := now - last; gap < c.s.cfg.Backoff.Base {
			c.fail(ClassBackoffFloor, "n%d retried shard %d only %v after a denial (backoff base %v)",
				node, shard, gap, c.s.cfg.Backoff.Base)
		}
	}
}

// finish runs the end-of-run checks after the event queue drained:
// every shard reconciled, all replicas byte-identical, every fence at
// the maximum issued epoch, and every committed write durable (present
// at its version, or superseded by a higher one).
func (c *checker) finish() {
	for shard, done := range c.s.reconciled {
		if !done {
			c.fail(ClassReconcile, "shard %d never completed post-heal reconciliation", shard)
		}
	}
	var grants uint64
	for _, e := range c.maxEpoch {
		grants += e
	}
	if int(grants) < c.s.cfg.Shards {
		c.fail(ClassNoProgress, "no progress: %d grants across %d shards", grants, c.s.cfg.Shards)
	}

	dumps := make([]string, len(c.s.nodes))
	for i, n := range c.s.nodes {
		dumps[i] = dumpReplica(n.versions)
	}
	for i := 1; i < len(dumps); i++ {
		if dumps[i] != dumps[0] {
			c.fail(ClassDivergence, "replicas diverged after heal: n0 and n%d disagree\nn0: %s\nn%d: %s",
				i, dumps[0], i, dumps[i])
		}
	}
	for _, n := range c.s.nodes {
		for shard := 0; shard < c.s.cfg.Shards; shard++ {
			if got := n.store.Fence(shard); got != c.maxEpoch[shard] {
				c.fail(ClassFenceLag, "n%d fence for shard %d is %d, want max issued epoch %d",
					n.id, shard, got, c.maxEpoch[shard])
			}
		}
	}
	final := c.s.nodes[0].versions
	for _, rec := range c.s.allWrites {
		if !rec.committed {
			continue
		}
		v := versioned{epoch: rec.epoch, seq: rec.seq, val: rec.val}
		cur, ok := final[rec.key]
		if !ok || cur.less(v) {
			c.fail(ClassDurability, "committed write lost: %s=e%d.w%d absent from the final state", rec.key, rec.epoch, rec.seq)
		} else if cur.epoch == v.epoch && cur.seq == v.seq && cur.val != rec.val {
			c.fail(ClassDurability, "committed write corrupted: %s final value %q, wrote %q", rec.key, cur.val, rec.val)
		}
	}
}

// dumpReplica renders a replica's state canonically for convergence
// comparison and the determinism test.
func dumpReplica(versions map[string]versioned) string {
	keys := make([]string, 0, len(versions))
	for k := range versions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		v := versions[k]
		out += fmt.Sprintf("%s=e%d.w%d:%s;", k, v.epoch, v.seq, v.val)
	}
	return out
}
