// Package stats provides the summary statistics used by the benchmark
// harnesses and fairness analyses: medians (the paper reports medians
// of 7 runs), percentiles, Jain's fairness index, and admission-count
// disparity ratios (§9.2's 2× bound).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Median returns the median of xs (mean of the two central elements
// for even lengths). It returns NaN for empty input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0
// for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the smallest element, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// JainIndex computes Jain's fairness index (sum x)^2 / (n * sum x^2):
// 1.0 is perfectly fair, 1/n is maximally unfair. Returns NaN for empty
// input and 1 for an all-zero allocation.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// DisparityRatio returns max/min of the per-participant tallies —
// the paper's long-term unfairness metric, bounded at 2× for the
// palindromic schedules of §9.2. A zero minimum yields +Inf; empty
// input yields NaN.
func DisparityRatio(counts []int64) float64 {
	if len(counts) == 0 {
		return math.NaN()
	}
	mn, mx := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < mn {
			mn = c
		}
		if c > mx {
			mx = c
		}
	}
	if mn == 0 {
		if mx == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(mx) / float64(mn)
}

// Histogram accumulates values into fixed-width buckets over [lo, hi);
// out-of-range values land in the first/last bucket.
type Histogram struct {
	lo, hi  float64
	width   float64
	Buckets []int64
	Count   int64
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), Buckets: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
	h.Count++
}

// String renders a compact ASCII bar view.
func (h *Histogram) String() string {
	max := int64(1)
	for _, b := range h.Buckets {
		if b > max {
			max = b
		}
	}
	out := ""
	for i, b := range h.Buckets {
		lo := h.lo + float64(i)*h.width
		bar := int(b * 40 / max)
		out += fmt.Sprintf("%10.3g | %-40s %d\n", lo, repeat('#', bar), b)
	}
	return out
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
