package stats

import (
	"math"
	"testing"
)

// Percentile clamps out-of-range ranks: anything at or below 0 is the
// minimum, anything at or past 100 the maximum — callers passing a
// computed rank (e.g. 100*(1-1/n)) must not fall off either end.
func TestPercentileClampsOutOfRangeRanks(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	for _, p := range []float64{-10, -0.001, 0} {
		if got := Percentile(xs, p); got != 1 {
			t.Errorf("Percentile(%v) = %v, want min 1", p, got)
		}
	}
	for _, p := range []float64{100, 100.001, 150} {
		if got := Percentile(xs, p); got != 9 {
			t.Errorf("Percentile(%v) = %v, want max 9", p, got)
		}
	}
	// Single-element input: every rank, in-range or not, is that element.
	for _, p := range []float64{-5, 0, 37, 100, 200} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Errorf("Percentile([7], %v) = %v, want 7", p, got)
		}
	}
}

// A NaN sample behaves per sort.Float64s: NaNs order below every real
// value, so one NaN shifts the order statistics like a -Inf sample
// would, rather than poisoning the median. Mean, by contrast,
// propagates NaN arithmetically. Both behaviors are relied on by the
// harness (scores are finite by construction; a NaN would signal a
// driver bug and should surface loudly in Mean/StdDev summaries).
func TestNaNSampleBehavior(t *testing.T) {
	nan := math.NaN()
	// Sorted view: [NaN, 2, 4, 6] — even length, median (2+4)/2.
	if got := Median([]float64{2, nan, 4, 6}); got != 3 {
		t.Errorf("Median with NaN sample = %v, want 3 (NaN sorts below reals)", got)
	}
	// Odd length with NaN landing at the middle index is impossible
	// (NaN sorts first), so only an all-NaN input yields a NaN median.
	if got := Median([]float64{nan}); !math.IsNaN(got) {
		t.Errorf("Median([NaN]) = %v, want NaN", got)
	}
	if got := Mean([]float64{1, nan, 3}); !math.IsNaN(got) {
		t.Errorf("Mean with NaN sample = %v, want NaN (arithmetic propagation)", got)
	}
	if got := StdDev([]float64{1, nan, 3}); !math.IsNaN(got) {
		t.Errorf("StdDev with NaN sample = %v, want NaN", got)
	}
}

// Jain's index over an all-zero admission vector is defined as 1
// (perfectly fair: everyone got equally nothing), never 0/0 = NaN —
// the harness hits this for zero-duration or instantly-stopped runs.
func TestJainAllZeroAdmissions(t *testing.T) {
	if got := JainIndex([]float64{0, 0, 0, 0}); got != 1 {
		t.Errorf("JainIndex(all-zero) = %v, want 1", got)
	}
	if got := DisparityRatio([]int64{0, 0, 0}); got != 1 {
		t.Errorf("DisparityRatio(all-zero) = %v, want 1", got)
	}
}
