package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1}, 1},
		{[]float64{1, 2}, 1.5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{5, 5, 5, 5, 5, 5, 5}, 5},
	}
	for _, c := range cases {
		if got := Median(c.in); !almostEq(got, c.want) {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if got := Percentile(xs, 0); !almostEq(got, 10) {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); !almostEq(got, 50) {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); !almostEq(got, 30) {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(xs, 25); !almostEq(got, 20) {
		t.Errorf("p25 = %v", got)
	}
	if got := Percentile(xs, 12.5); !almostEq(got, 15) {
		t.Errorf("p12.5 = %v, want interpolated 15", got)
	}
}

func TestPercentileMedianAgreement(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 || len(xs)%2 == 0 {
			return true // median interpolation differs for even n
		}
		return almostEq(Percentile(xs, 50), Median(xs))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPercentileMonotone(t *testing.T) {
	err := quick.Check(func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(xs, p1) <= Percentile(xs, p2)+1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEq(got, 5) {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample stddev of that set: variance = 32/7.
	if got := StdDev(xs); !almostEq(got, math.Sqrt(32.0/7.0)) {
		t.Errorf("StdDev = %v", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev of singleton should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); !almostEq(got, 1) {
		t.Errorf("equal allocation JainIndex = %v, want 1", got)
	}
	// One participant takes everything: index = 1/n.
	if got := JainIndex([]float64{10, 0, 0, 0}); !almostEq(got, 0.25) {
		t.Errorf("monopolized JainIndex = %v, want 0.25", got)
	}
	if got := JainIndex([]float64{0, 0}); !almostEq(got, 1) {
		t.Errorf("all-zero JainIndex = %v, want 1", got)
	}
}

func TestJainIndexBounds(t *testing.T) {
	err := quick.Check(func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		j := JainIndex(xs)
		return j >= 1/float64(len(xs))-1e-9 && j <= 1+1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDisparityRatio(t *testing.T) {
	// §9.2: palindromic cycle ABCDEDCB admits B,C,D twice and A,E once
	// per period — a disparity of exactly 2.
	if got := DisparityRatio([]int64{1, 2, 2, 2, 1}); !almostEq(got, 2) {
		t.Errorf("palindromic cycle disparity = %v, want 2", got)
	}
	if got := DisparityRatio([]int64{3, 3, 3}); !almostEq(got, 1) {
		t.Errorf("fair disparity = %v, want 1", got)
	}
	if !math.IsInf(DisparityRatio([]int64{0, 5}), 1) {
		t.Error("starved participant should yield +Inf")
	}
	if got := DisparityRatio([]int64{0, 0}); !almostEq(got, 1) {
		t.Errorf("all-zero disparity = %v, want 1", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0, 1, 2.5, 9.9, 100, -5} {
		h.Add(v)
	}
	if h.Count != 6 {
		t.Errorf("Count = %d", h.Count)
	}
	if h.Buckets[0] != 3 { // 0, 1, -5(clamped)
		t.Errorf("bucket 0 = %d, want 3", h.Buckets[0])
	}
	if h.Buckets[1] != 1 { // 2.5
		t.Errorf("bucket 1 = %d, want 1", h.Buckets[1])
	}
	if h.Buckets[4] != 2 { // 9.9, 100(clamped)
		t.Errorf("bucket 4 = %d, want 2", h.Buckets[4])
	}
	if h.String() == "" {
		t.Error("String() empty")
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid shape")
		}
	}()
	NewHistogram(1, 1, 3)
}

func TestPercentileMatchesSortedSelection(t *testing.T) {
	err := quick.Check(func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return almostEq(Percentile(xs, 0), sorted[0]) &&
			almostEq(Percentile(xs, 100), sorted[len(sorted)-1])
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// Edge case: every summary function must handle the empty sample set
// without panicking, returning its documented sentinel.
func TestEmptySampleSet(t *testing.T) {
	var none []float64
	for name, got := range map[string]float64{
		"Median":     Median(none),
		"Percentile": Percentile(none, 50),
		"Mean":       Mean(none),
		"Min":        Min(none),
		"Max":        Max(none),
		"JainIndex":  JainIndex(none),
	} {
		if !math.IsNaN(got) {
			t.Errorf("%s(empty) = %v, want NaN", name, got)
		}
	}
	if got := StdDev(none); got != 0 {
		t.Errorf("StdDev(empty) = %v, want 0", got)
	}
	if got := DisparityRatio(nil); !math.IsNaN(got) {
		t.Errorf("DisparityRatio(empty) = %v, want NaN", got)
	}
}

// Edge case: a single sample is its own median, mean, min, max and
// every percentile; spread measures are zero/identity.
func TestSingleSample(t *testing.T) {
	xs := []float64{42.5}
	for name, got := range map[string]float64{
		"Median": Median(xs),
		"Mean":   Mean(xs),
		"Min":    Min(xs),
		"Max":    Max(xs),
		"P0":     Percentile(xs, 0),
		"P50":    Percentile(xs, 50),
		"P99":    Percentile(xs, 99),
		"P100":   Percentile(xs, 100),
	} {
		if got != 42.5 {
			t.Errorf("%s([42.5]) = %v, want 42.5", name, got)
		}
	}
	if got := StdDev(xs); got != 0 {
		t.Errorf("StdDev(single) = %v, want 0", got)
	}
	if got := JainIndex(xs); got != 1 {
		t.Errorf("JainIndex(single) = %v, want 1", got)
	}
	if got := DisparityRatio([]int64{7}); got != 1 {
		t.Errorf("DisparityRatio(single) = %v, want 1", got)
	}
}

// Edge case: all-equal samples — zero spread, perfect fairness,
// every order statistic equal to the common value.
func TestAllEqualSamples(t *testing.T) {
	xs := []float64{3, 3, 3, 3, 3, 3}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %v, want 3", got)
	}
	if got := Mean(xs); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := StdDev(xs); got != 0 {
		t.Errorf("StdDev = %v, want 0", got)
	}
	for _, p := range []float64{0, 25, 50, 75, 100} {
		if got := Percentile(xs, p); got != 3 {
			t.Errorf("Percentile(%v) = %v, want 3", p, got)
		}
	}
	if got := JainIndex(xs); math.Abs(got-1) > 1e-12 {
		t.Errorf("JainIndex = %v, want 1", got)
	}
	if got := DisparityRatio([]int64{5, 5, 5}); got != 1 {
		t.Errorf("DisparityRatio = %v, want 1", got)
	}
	// All-zero allocation is defined as perfectly fair.
	if got := JainIndex([]float64{0, 0, 0}); got != 1 {
		t.Errorf("JainIndex(zeros) = %v, want 1", got)
	}
}

// Edge case: histogram bucket boundary values. With n buckets over
// [lo, hi), a value exactly on an interior boundary belongs to the
// higher bucket, lo belongs to bucket 0, and out-of-range values are
// clamped into the first/last bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(0, 10, 10) // buckets [0,1) [1,2) ... [9,10)
	cases := []struct {
		x      float64
		bucket int
	}{
		{0, 0},     // lower bound → first bucket
		{0.999, 0}, // just under first boundary
		{1, 1},     // interior boundary → higher bucket
		{5, 5},
		{8.999, 8},
		{9, 9},     // last interior boundary
		{9.999, 9}, // just under upper bound
		{10, 9},    // upper bound clamps into last bucket
		{1e9, 9},   // far overflow clamps
		{-1, 0},    // underflow clamps
	}
	for _, c := range cases {
		before := h.Buckets[c.bucket]
		h.Add(c.x)
		if h.Buckets[c.bucket] != before+1 {
			for i, b := range h.Buckets {
				if b > 0 {
					t.Logf("bucket[%d] = %d", i, b)
				}
			}
			t.Fatalf("Add(%v): bucket %d not incremented", c.x, c.bucket)
		}
	}
	if h.Count != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count, len(cases))
	}
	// Invalid shapes must panic rather than mis-bucket silently.
	for _, bad := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(10, 10, 4) },
		func() { NewHistogram(10, 0, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid histogram shape did not panic")
				}
			}()
			bad()
		}()
	}
}
