package verdict

import (
	"strings"
	"testing"
)

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		Verified: "VERIFIED", Violation: "FAIL", Incomplete: "INCOMPLETE",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s, want)
		}
	}
}

// TestExitFolding pins the dominance order: a violation anywhere beats
// incompleteness anywhere beats verified, and the codes match the
// documented CLI contract (0/1/3; 2 is reserved for usage errors).
func TestExitFolding(t *testing.T) {
	cases := []struct {
		in   []Status
		want int
	}{
		{nil, ExitVerified},
		{[]Status{Verified, Verified}, 0},
		{[]Status{Verified, Incomplete}, 3},
		{[]Status{Incomplete, Violation, Verified}, 1},
		{[]Status{Violation}, 1},
	}
	for _, c := range cases {
		if got := Exit(c.in...); got != c.want {
			t.Errorf("Exit(%v) = %d, want %d", c.in, got, c.want)
		}
	}
	if ExitVerified != 0 || ExitViolation != 1 || ExitUsage != 2 || ExitIncomplete != 3 {
		t.Error("exit code constants drifted from the documented convention")
	}
}

func TestLine(t *testing.T) {
	got := Line("TKT", Verified, "all 100 interleavings pass")
	if !strings.HasPrefix(got, "TKT") || !strings.Contains(got, "VERIFIED: all 100") {
		t.Errorf("Line = %q", got)
	}
	multi := Line("x", Violation, "first\nsecond")
	if !strings.Contains(multi, "\n    second") {
		t.Errorf("multi-line detail not indented: %q", multi)
	}
}
