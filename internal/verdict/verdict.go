// Package verdict is the shared exit-code and report convention for
// the model-checking commands (cmd/modelcheck, cmd/clusterexplore):
// a checker's outcome is exactly one of VERIFIED, FAIL, or INCOMPLETE,
// and the process exit code keeps the three distinguishable so a CI
// gate keying on exit 0 can never mistake a truncated search for a
// proof.
package verdict

import (
	"fmt"
	"strings"
)

// Status is one check target's outcome.
type Status int

const (
	// Verified: the full (bounded) search space was explored and no
	// invariant failed — a proof relative to the stated bounds.
	Verified Status = iota
	// Violation: a failing schedule was found.
	Violation
	// Incomplete: no violation, but the search was truncated (budget
	// or depth); explicitly not a verification result.
	Incomplete
)

func (s Status) String() string {
	switch s {
	case Verified:
		return "VERIFIED"
	case Violation:
		return "FAIL"
	case Incomplete:
		return "INCOMPLETE"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Process exit codes. ExitUsage is reserved for flag and argument
// errors, which is why Incomplete maps to 3, not 2.
const (
	ExitVerified   = 0
	ExitViolation  = 1
	ExitUsage      = 2
	ExitIncomplete = 3
)

// Exit folds per-target statuses into the process exit code: any
// violation dominates, then any incomplete, else verified. No
// statuses folds to ExitVerified (vacuously checked).
func Exit(statuses ...Status) int {
	code := ExitVerified
	for _, s := range statuses {
		switch s {
		case Violation:
			return ExitViolation
		case Incomplete:
			code = ExitIncomplete
		}
	}
	return code
}

// Line renders the conventional one-line report: a padded target name,
// the status word, and the detail. Multi-line details are indented
// under the first line.
func Line(name string, s Status, detail string) string {
	text := fmt.Sprintf("%-14s %s: %s", name, s, detail)
	return strings.ReplaceAll(text, "\n", "\n    ")
}
