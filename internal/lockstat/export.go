package lockstat

import (
	"expvar"
	"fmt"
	"io"

	"repro/internal/table"
	"repro/internal/waiter"
)

// Publish exposes s under the given expvar name as a JSON snapshot
// (e.g. lockstat.Recipro). Re-publishing an existing name is a no-op
// rather than the expvar panic, so harnesses can publish per-run.
func Publish(name string, s *Stats) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return s.Snapshot() }))
}

// InstallWaiterSink routes waiting-policy transitions (spin/yield/
// park) to s and returns a restore function reinstating the previous
// sink. Install around the measurement window of one lock for exact
// attribution; a nil s uninstalls.
func InstallWaiterSink(s *Stats) (restore func()) {
	prev := waiter.ActiveSink()
	if s == nil {
		waiter.SetSink(nil)
	} else {
		waiter.SetSink(s)
	}
	return func() { waiter.SetSink(prev) }
}

// BuildTable renders named snapshots as a telemetry table, one row per
// lock in the order given. Latency columns are bucket-midpoint
// estimates from the log₂ histograms.
func BuildTable(title string, names []string, snaps map[string]Snapshot) *table.Table {
	t := table.New(title,
		"Lock", "Acquire", "Contended", "Cont%", "Handover", "Abandon",
		"Spin", "Yield", "Park",
		"RLock", "OptRead", "OptRetry",
		"AcqP50", "AcqP99", "HoldP50", "HoldP99", "ReadP50", "ReadP99")
	for _, name := range names {
		s, ok := snaps[name]
		if !ok {
			continue
		}
		t.Add(name,
			table.U(s.Acquisitions),
			table.U(s.Contended),
			table.F(100*s.ContendedFraction(), 1),
			table.U(s.Handovers),
			table.U(s.Abandons),
			table.U(s.Spins),
			table.U(s.Yields),
			table.U(s.Parks),
			table.U(s.RLocks),
			table.U(s.OptReads),
			table.U(s.OptRetries),
			s.Acquire.Quantile(0.50).String(),
			s.Acquire.Quantile(0.99).String(),
			s.Hold.Quantile(0.50).String(),
			s.Hold.Quantile(0.99).String(),
			s.ReadAcq.Quantile(0.50).String(),
			s.ReadAcq.Quantile(0.99).String(),
		)
	}
	return t
}

// FprintReport writes the standard -lockstat report: the summary
// table (text or CSV) followed, in text mode, by each lock's
// acquire-latency histogram.
func FprintReport(w io.Writer, title string, names []string, snaps map[string]Snapshot, csv bool) {
	t := BuildTable(title, names, snaps)
	if csv {
		t.RenderCSV(w)
		return
	}
	t.Render(w)
	for _, name := range names {
		s, ok := snaps[name]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "\n-- %s acquire latency --\n%s", name, s.Acquire.String())
	}
}
