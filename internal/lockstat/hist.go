package lockstat

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// HistBuckets is the fixed bucket count of the log₂ latency histogram.
// Bucket 0 holds sub-nanosecond observations; bucket i (i ≥ 1) holds
// latencies in [2^(i-1), 2^i) ns. 40 buckets therefore span 1 ns to
// ~9 minutes, with everything larger clamped into the last bucket.
const HistBuckets = 40

// Hist is a fixed-bucket log-scale latency histogram with atomic
// buckets. The zero value is ready to use. Recording is one atomic
// increment — no locks, no allocation, wait-free.
type Hist struct {
	buckets [HistBuckets]counterSlim
}

// counterSlim is an unpadded atomic bucket: histogram buckets are
// written sparsely (a given workload hits a handful of adjacent
// buckets), so padding all 40 to full lines would cost 2.5 KiB per
// histogram for little contention relief.
type counterSlim struct{ v atomic.Uint64 }

func (c *counterSlim) add(n uint64) { c.v.Add(n) }
func (c *counterSlim) load() uint64 { return c.v.Load() }

// Observe records one latency observation in nanoseconds. Negative
// values (clock anomalies) are clamped to bucket 0.
func (h *Hist) Observe(ns int64) {
	h.bucketFor(ns).add(1)
}

func (h *Hist) bucketFor(ns int64) *counterSlim {
	var b int
	if ns > 0 {
		b = bits.Len64(uint64(ns)) // ns ∈ [2^(b-1), 2^b)
		if b >= HistBuckets {
			b = HistBuckets - 1
		}
	}
	return &h.buckets[b]
}

// Snapshot copies the bucket counts.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].load()
	}
	return s
}

// BucketBounds returns the half-open latency range [lo, hi) covered by
// bucket i.
func BucketBounds(i int) (lo, hi time.Duration) {
	if i <= 0 {
		return 0, 1
	}
	return time.Duration(1) << (i - 1), time.Duration(1) << i
}

// HistSnapshot is a point-in-time copy of a Hist.
type HistSnapshot struct {
	Buckets [HistBuckets]uint64 `json:"buckets"`
}

// Count returns the total number of observations.
func (h HistSnapshot) Count() uint64 {
	var n uint64
	for _, b := range h.Buckets {
		n += b
	}
	return n
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) as the geometric
// midpoint of the bucket containing the q-th observation. Returns 0
// for an empty histogram.
func (h HistSnapshot) Quantile(q float64) time.Duration {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, b := range h.Buckets {
		cum += b
		if cum >= rank {
			lo, hi := BucketBounds(i)
			return time.Duration(math.Sqrt(float64(lo) * float64(hi)))
		}
	}
	lo, hi := BucketBounds(HistBuckets - 1)
	return time.Duration(math.Sqrt(float64(lo) * float64(hi)))
}

// String renders the non-zero buckets as an ASCII bar view, one line
// per bucket with its latency range, count and a scaled bar — the same
// presentation style as stats.Histogram, adapted to log-scale duration
// bounds.
func (h HistSnapshot) String() string {
	max := uint64(1)
	for _, b := range h.Buckets {
		if b > max {
			max = b
		}
	}
	var sb strings.Builder
	for i, b := range h.Buckets {
		if b == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		bar := int(b * 40 / max)
		fmt.Fprintf(&sb, "%10v … %-10v | %-40s %d\n", lo, hi, strings.Repeat("#", bar), b)
	}
	if sb.Len() == 0 {
		return "(empty)\n"
	}
	return sb.String()
}
