package lockstat

import (
	"sync"
	"testing"

	"repro/internal/rwlock"
)

func TestInstrumentedReadPathCounters(t *testing.T) {
	s := New()
	i := Wrap(rwlock.NewRW(&sync.Mutex{}), s)

	for n := 0; n < 3; n++ {
		i.RLock()
		i.RUnlock()
	}
	snap := s.Snapshot()
	if snap.RLocks != 3 {
		t.Fatalf("RLocks = %d, want 3", snap.RLocks)
	}
	if snap.ReadAcq.Count() != 3 {
		t.Fatalf("read-acquire histogram count = %d, want 3", snap.ReadAcq.Count())
	}
	if snap.Acquisitions != 0 {
		t.Fatalf("RLock leaked into exclusive acquisitions (%d)", snap.Acquisitions)
	}
}

func TestInstrumentedOptimisticCounters(t *testing.T) {
	s := New()
	seq := rwlock.NewSeqlock(&sync.Mutex{})
	i := Wrap(seq, s)

	i.OptimisticRead(func() {})
	snap := s.Snapshot()
	if snap.OptReads != 1 || snap.OptRetries != 0 {
		t.Fatalf("quiescent OptimisticRead: reads=%d retries=%d, want 1/0", snap.OptReads, snap.OptRetries)
	}
	if snap.ReadAcq.Count() != 1 {
		t.Fatalf("read-acquire histogram count = %d, want 1", snap.ReadAcq.Count())
	}

	// A failed manual validation counts one optimistic retry.
	stamp := i.ReadBegin()
	i.Lock()
	if i.ReadValidate(stamp) {
		t.Fatal("validated across a held writer")
	}
	i.Unlock()
	if got := s.Snapshot().OptRetries; got != 1 {
		t.Fatalf("OptRetries = %d after failed validation, want 1", got)
	}
}

// An inner lock with no read path degrades the wrapper's read surface
// to exclusive sections — correct, recorded as exclusive acquisitions.
func TestInstrumentedReadFallbackIsExclusive(t *testing.T) {
	s := New()
	i := Wrap(&sync.Mutex{}, s)

	i.RLock()
	i.RUnlock()
	ran := false
	i.OptimisticRead(func() { ran = true })
	if !ran {
		t.Fatal("fallback OptimisticRead never ran its section")
	}
	if i.ReadBegin() != 0 || i.ReadValidate(0) {
		t.Fatal("read-path-less inner lock must report permanently conflicted stamps")
	}
	snap := s.Snapshot()
	if snap.RLocks != 0 || snap.OptReads != 0 {
		t.Fatalf("fallback paths recorded as read acquisitions: rlocks=%d optReads=%d", snap.RLocks, snap.OptReads)
	}
	if snap.Acquisitions != 2 {
		t.Fatalf("fallback paths recorded %d exclusive acquisitions, want 2", snap.Acquisitions)
	}
}

func TestInstrumentedNilStatsReadPath(t *testing.T) {
	i := Wrap(rwlock.NewSeqlock(&sync.Mutex{}), nil)
	var x uint64
	f := func() { x++ }
	if n := testing.AllocsPerRun(2000, func() {
		i.OptimisticRead(f)
	}); n != 0 {
		t.Fatalf("nil-Stats OptimisticRead allocates %.1f/op, want 0", n)
	}
}
