package lockstat

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bounded"
	"repro/internal/clock"
)

// TryLocker is the non-blocking-acquire interface implemented by the
// Reciprocating variants, FutexMutex and sync.Mutex.
type TryLocker interface {
	sync.Locker
	TryLock() bool
}

// lockedProber is implemented by locks exposing a diagnostic holder
// probe (core.Lock.Locked et al.); the wrapper uses it to classify
// acquisitions as contended without perturbing admission order.
type lockedProber interface {
	Locked() bool
}

// readShared and optimistic mirror rwlock.RWLocker/OptimisticLocker
// structurally (no internal/rwlock import), the read-path surfaces the
// wrapper forwards when the inner lock offers them.
type readShared interface {
	RLock()
	RUnlock()
}

type optimistic interface {
	ReadBegin() uint64
	ReadValidate(s uint64) bool
	OptimisticRead(f func())
}

// ContendedThreshold is the acquire latency at or above which an
// acquisition is classified as contended even when no direct evidence
// (queued waiter, held-lock probe) was observed. Uncontended
// acquisitions of every lock in the repository complete in well under
// a microsecond; a waiting episode that reaches the scheduler cannot.
const ContendedThreshold = time.Microsecond

// nanotime reads the wrapper's timestamp source: the injected clock
// when one is set, else the wall clock (whose epoch is process start,
// preserving the old monotonic-since-init timestamps).
func (i *Instrumented) nanotime() int64 { return int64(clock.Or(i.clk).Now()) }

// Instrumented wraps an inner lock with telemetry. It implements
// sync.Locker and TryLock (TryLock reports false when the inner lock
// has no TryLock). A nil-Stats wrapper is a pass-through: Lock and
// Unlock reduce to one nil check plus the inner call, so permanently
// wrapping a lock and enabling telemetry only when wanted is cheap.
//
// The wrapper is as concurrency-safe as the lock it wraps; like any
// sync.Locker, Unlock must be called by the holder.
type Instrumented struct {
	inner sync.Locker
	stats *Stats

	// bnd is the bounded adaptation of inner, resolved once at Wrap
	// time (nil when inner is unboundable); it backs LockFor/LockCtx
	// without a per-call interface probe or wrapper allocation.
	bnd bounded.Locker

	// rw/opt are inner's read-path surfaces, resolved once at Wrap
	// (nil when absent — the read methods then degrade to exclusive
	// sections, which is semantically sound; callers wanting actual
	// sharing gate on the registry capability bits).
	rw  readShared
	opt optimistic

	// waiting counts goroutines currently inside inner.Lock. It drives
	// two classifications: an arriving goroutine that sees waiting > 0
	// is contended, and an unlock that sees waiting > 0 is a handover.
	waiting atomic.Int64

	// holdStart is the nanotime at which the current holder acquired.
	// Written by the acquiring holder, read by the (same) releasing
	// holder; atomic so cross-episode accesses are race-clean.
	holdStart atomic.Int64

	// clk is the timestamp source (nil = wall clock).
	clk clock.Clock
}

// SetClock injects the time source for latency timestamps, forwarding
// to the inner lock when it accepts one, so registry.WithClock reaches
// both the telemetry layer and the algorithm beneath it.
func (i *Instrumented) SetClock(c clock.Clock) {
	i.clk = c
	if cl, ok := i.inner.(clock.Clocked); ok {
		cl.SetClock(c)
	}
}

// Wrap returns l instrumented with s. A nil s disables recording but
// keeps the wrapper usable (the nil-Stats fast path).
func Wrap(l sync.Locker, s *Stats) *Instrumented {
	i := &Instrumented{inner: l, stats: s}
	if b, ok := bounded.For(l); ok {
		i.bnd = b
	}
	if r, ok := l.(readShared); ok {
		i.rw = r
	}
	if o, ok := l.(optimistic); ok {
		i.opt = o
	}
	return i
}

// Boundable reports whether the wrapped lock supports bounded
// acquisition (LockFor/LockCtx can succeed).
func (i *Instrumented) Boundable() bool { return i.bnd != nil }

// Stats returns the attached Stats (nil when uninstrumented).
func (i *Instrumented) Stats() *Stats { return i.stats }

// Inner returns the wrapped lock.
func (i *Instrumented) Inner() sync.Locker { return i.inner }

// Lock acquires the inner lock, recording the acquisition, its
// latency, and whether it was contended.
func (i *Instrumented) Lock() {
	s := i.stats
	if s == nil {
		i.inner.Lock()
		return
	}
	// Contention evidence gathered before entering the queue: another
	// goroutine already waiting, or the lock observably held. Both
	// probes are racy reads — acceptable for telemetry, and strictly
	// under-counting races are caught by the latency threshold below.
	contended := i.waiting.Load() > 0
	if !contended {
		if lp, ok := i.inner.(lockedProber); ok && lp.Locked() {
			contended = true
		}
	}
	t0 := i.nanotime()
	i.waiting.Add(1)
	i.inner.Lock()
	i.waiting.Add(-1)
	t1 := i.nanotime()
	d := time.Duration(t1 - t0)
	if d >= ContendedThreshold {
		contended = true
	}
	s.RecordAcquire(contended, d)
	i.holdStart.Store(t1)
}

// Unlock releases the inner lock, recording the hold time and whether
// the release handed ownership to a queued waiter.
func (i *Instrumented) Unlock() {
	s := i.stats
	if s == nil {
		i.inner.Unlock()
		return
	}
	held := time.Duration(i.nanotime() - i.holdStart.Load())
	s.RecordRelease(i.waiting.Load() > 0, held)
	i.inner.Unlock()
}

// TryLock attempts a non-blocking acquire of the inner lock. It
// reports false when the inner lock does not support TryLock.
// Successful tries count as (uncontended) acquisitions so the
// acquisitions == unlocks and histogram-count invariants hold.
func (i *Instrumented) TryLock() bool {
	tl, ok := i.inner.(TryLocker)
	if !ok {
		return false
	}
	s := i.stats
	if s == nil {
		return tl.TryLock()
	}
	t0 := i.nanotime()
	if !tl.TryLock() {
		s.RecordTryFail()
		return false
	}
	t1 := i.nanotime()
	s.RecordAcquire(false, time.Duration(t1-t0))
	i.holdStart.Store(t1)
	return true
}

// LockFor attempts a bounded acquire of the inner lock, recording an
// acquisition on success and an abandon on timeout. It reports false
// immediately when the inner lock is unboundable.
func (i *Instrumented) LockFor(d time.Duration) bool {
	b := i.bnd
	if b == nil {
		return false
	}
	s := i.stats
	if s == nil {
		return b.LockFor(d)
	}
	t0 := i.nanotime()
	i.waiting.Add(1)
	acquired := b.LockFor(d)
	i.waiting.Add(-1)
	t1 := i.nanotime()
	if !acquired {
		s.RecordAbandon()
		return false
	}
	el := time.Duration(t1 - t0)
	s.RecordAcquire(el >= ContendedThreshold, el)
	i.holdStart.Store(t1)
	return true
}

// LockCtx attempts a context-bounded acquire of the inner lock,
// recording an acquisition on success and an abandon on cancellation.
// An unboundable inner lock yields bounded.ErrUnboundable immediately.
func (i *Instrumented) LockCtx(ctx context.Context) error {
	b := i.bnd
	if b == nil {
		return bounded.ErrUnboundable
	}
	s := i.stats
	if s == nil {
		return b.LockCtx(ctx)
	}
	t0 := i.nanotime()
	i.waiting.Add(1)
	err := b.LockCtx(ctx)
	i.waiting.Add(-1)
	t1 := i.nanotime()
	if err != nil {
		s.RecordAbandon()
		return err
	}
	el := time.Duration(t1 - t0)
	s.RecordAcquire(el >= ContendedThreshold, el)
	i.holdStart.Store(t1)
	return nil
}

// capProber mirrors rwlock's probe (see bounded.Polling): the
// wrapper's read methods are total, so actual read capability is
// reported through these instead of the interface surface.
type capProber interface {
	ReadSharedCapable() bool
	OptimisticCapable() bool
}

// ReadSharedCapable reports whether RLock actually shares rather than
// falling back to an exclusive Lock.
func (i *Instrumented) ReadSharedCapable() bool {
	if i.rw == nil {
		return false
	}
	if pr, ok := i.inner.(capProber); ok {
		return pr.ReadSharedCapable()
	}
	return true
}

// OptimisticCapable reports whether the optimistic read surface is
// real rather than the exclusive fallback.
func (i *Instrumented) OptimisticCapable() bool {
	if i.opt == nil {
		return false
	}
	if pr, ok := i.inner.(capProber); ok {
		return pr.OptimisticCapable()
	}
	return true
}

// RLock acquires the inner lock's shared read path, recording the
// read acquisition and its latency; it degrades to an exclusive Lock
// when the inner lock has no read path.
func (i *Instrumented) RLock() {
	r := i.rw
	if r == nil {
		i.Lock()
		return
	}
	s := i.stats
	if s == nil {
		r.RLock()
		return
	}
	t0 := i.nanotime()
	r.RLock()
	s.RecordRLock(time.Duration(i.nanotime() - t0))
}

// RUnlock releases a shared-read admission (or the exclusive fallback
// taken by RLock).
func (i *Instrumented) RUnlock() {
	r := i.rw
	if r == nil {
		i.Unlock()
		return
	}
	r.RUnlock()
}

// ReadBegin samples the inner optimistic stamp; with no inner
// optimistic path it reports a permanently conflicted stamp (validate
// always fails), so manual loops must gate on CapOptimisticRead.
func (i *Instrumented) ReadBegin() uint64 {
	if o := i.opt; o != nil {
		return o.ReadBegin()
	}
	return 0
}

// ReadValidate validates an optimistic section, recording failed
// validations as optimistic retries.
func (i *Instrumented) ReadValidate(stamp uint64) bool {
	o := i.opt
	if o == nil {
		return false
	}
	ok := o.ReadValidate(stamp)
	if !ok {
		if s := i.stats; s != nil {
			s.RecordOptRetry()
		}
	}
	return ok
}

// OptimisticRead runs an optimistic read section, recording its
// end-to-end latency and absorbed retries (re-executions of f); it
// degrades to an exclusive section when the inner lock has no
// optimistic path.
func (i *Instrumented) OptimisticRead(f func()) {
	o := i.opt
	if o == nil {
		i.Lock()
		f()
		i.Unlock()
		return
	}
	s := i.stats
	if s == nil {
		o.OptimisticRead(f)
		return
	}
	var calls uint64
	t0 := i.nanotime()
	o.OptimisticRead(func() { calls++; f() })
	d := time.Duration(i.nanotime() - t0)
	var retries uint64
	if calls > 0 {
		retries = calls - 1
	}
	s.RecordOptimisticRead(retries, d)
}

// WrapFactory lifts Wrap over a lock constructor: every lock the
// returned constructor creates shares the same Stats. This is the
// shape the benchmark harnesses need (one Stats per lock algorithm,
// fresh lock instance per run).
func WrapFactory(newLock func() sync.Locker, s *Stats) func() sync.Locker {
	return func() sync.Locker { return Wrap(newLock(), s) }
}
