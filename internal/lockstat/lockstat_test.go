package lockstat

import (
	"expvar"
	"math/bits"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/waiter"
)

func TestHistBucketPlacement(t *testing.T) {
	cases := []struct {
		ns     int64
		bucket int
	}{
		{-5, 0}, // clock anomaly clamps low
		{0, 0},
		{1, 1}, // [1,2)
		{2, 2}, // [2,4)
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
		{1 << 38, HistBuckets - 1},
		{1 << 62, HistBuckets - 1}, // clamps high
	}
	for _, c := range cases {
		var h Hist
		h.Observe(c.ns)
		s := h.Snapshot()
		if s.Buckets[c.bucket] != 1 {
			got := -1
			for i, b := range s.Buckets {
				if b == 1 {
					got = i
				}
			}
			t.Errorf("Observe(%d): bucket %d, want %d", c.ns, got, c.bucket)
		}
	}
}

func TestHistBucketBoundsTile(t *testing.T) {
	// Buckets must tile [0, 2^(HistBuckets-1)) without gap or overlap.
	var prevHi time.Duration
	for i := 0; i < HistBuckets; i++ {
		lo, hi := BucketBounds(i)
		if i > 0 && lo != prevHi {
			t.Fatalf("bucket %d: lo %v != previous hi %v", i, lo, prevHi)
		}
		if hi <= lo {
			t.Fatalf("bucket %d: empty range [%v,%v)", i, lo, hi)
		}
		prevHi = hi
	}
	// Placement must agree with the declared bounds at every boundary.
	for i := 1; i < HistBuckets-1; i++ {
		lo, hi := BucketBounds(i)
		for _, ns := range []int64{int64(lo), int64(hi) - 1} {
			b := bits.Len64(uint64(ns))
			if b != i {
				t.Fatalf("ns=%d maps to bucket %d, bounds say %d", ns, b, i)
			}
		}
	}
}

func TestHistQuantile(t *testing.T) {
	var empty HistSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}

	var h Hist
	h.Observe(100) // bucket 7: [64,128)
	s := h.Snapshot()
	lo, hi := BucketBounds(7)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		got := s.Quantile(q)
		if got < lo || got >= hi {
			t.Errorf("single-sample Quantile(%v) = %v, want within [%v,%v)", q, got, lo, hi)
		}
	}

	// 90 fast + 10 slow observations: p50 must sit in the fast bucket,
	// p99 in the slow bucket.
	var h2 Hist
	for i := 0; i < 90; i++ {
		h2.Observe(100) // bucket 7
	}
	for i := 0; i < 10; i++ {
		h2.Observe(1 << 20) // bucket 21
	}
	s2 := h2.Snapshot()
	if got := s2.Quantile(0.50); got >= hi {
		t.Errorf("p50 = %v, want fast bucket", got)
	}
	slowLo, _ := BucketBounds(21)
	if got := s2.Quantile(0.99); got < slowLo {
		t.Errorf("p99 = %v, want slow bucket ≥ %v", got, slowLo)
	}
	if s2.Count() != 100 {
		t.Errorf("Count = %d, want 100", s2.Count())
	}
}

func TestStatsImplementsWaiterSink(t *testing.T) {
	var _ waiter.Sink = New()
	s := New()
	s.CountSpin()
	s.CountSpin()
	s.CountYield()
	s.CountPark()
	snap := s.Snapshot()
	if snap.Spins != 2 || snap.Yields != 1 || snap.Parks != 1 {
		t.Errorf("sink counts = %d/%d/%d, want 2/1/1", snap.Spins, snap.Yields, snap.Parks)
	}
}

func TestInstrumentedNilStatsPassThrough(t *testing.T) {
	l := Wrap(new(core.Lock), nil)
	l.Lock()
	if !l.Inner().(*core.Lock).Locked() {
		t.Fatal("inner lock not held after Lock")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock failed on free lock")
	}
	l.Unlock()
	if l.Stats() != nil {
		t.Fatal("Stats() != nil for nil-stats wrapper")
	}
}

func TestInstrumentedCountsUncontended(t *testing.T) {
	s := New()
	l := Wrap(new(core.Lock), s)
	const n = 100
	for i := 0; i < n; i++ {
		l.Lock()
		l.Unlock()
	}
	snap := s.Snapshot()
	if snap.Acquisitions != n || snap.Unlocks != n {
		t.Fatalf("acq/unlock = %d/%d, want %d/%d", snap.Acquisitions, snap.Unlocks, n, n)
	}
	if snap.Acquire.Count() != n || snap.Hold.Count() != n {
		t.Fatalf("hist counts = %d/%d, want %d", snap.Acquire.Count(), snap.Hold.Count(), n)
	}
	if snap.Handovers != 0 {
		t.Errorf("handovers = %d on single-goroutine run, want 0", snap.Handovers)
	}
}

func TestInstrumentedDetectsContention(t *testing.T) {
	s := New()
	l := Wrap(new(core.Lock), s)
	// Force a contended acquisition deterministically: hold the lock
	// while a second goroutine attempts to acquire.
	l.Lock()
	entered := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(entered)
		l.Lock()
		l.Unlock()
		close(done)
	}()
	<-entered
	// Wait until the second goroutine is observably queued.
	for l.waiting.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	l.Unlock()
	<-done
	snap := s.Snapshot()
	if snap.Contended == 0 {
		t.Error("no contended acquisition recorded")
	}
	if snap.Handovers == 0 {
		t.Error("no handover recorded for release-to-waiter")
	}
	if snap.Contended > snap.Acquisitions {
		t.Errorf("contended %d > acquisitions %d", snap.Contended, snap.Acquisitions)
	}
}

func TestInstrumentedTryLock(t *testing.T) {
	s := New()
	l := Wrap(new(core.Lock), s)
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	snap := s.Snapshot()
	if snap.Acquisitions != 1 || snap.Unlocks != 1 || snap.TryFails != 1 {
		t.Fatalf("acq/unlock/tryfail = %d/%d/%d, want 1/1/1",
			snap.Acquisitions, snap.Unlocks, snap.TryFails)
	}
	if snap.Acquire.Count() != snap.Acquisitions {
		t.Fatalf("acquire hist %d != acquisitions %d", snap.Acquire.Count(), snap.Acquisitions)
	}

	// A lock without TryLock: wrapper must report false, not panic.
	noTry := Wrap(minimalLocker{new(sync.Mutex)}, New())
	if noTry.TryLock() {
		t.Fatal("TryLock succeeded on a lock without TryLock support")
	}
}

// minimalLocker hides sync.Mutex's TryLock.
type minimalLocker struct{ mu *sync.Mutex }

func (m minimalLocker) Lock()   { m.mu.Lock() }
func (m minimalLocker) Unlock() { m.mu.Unlock() }

func TestWrapFactorySharesStats(t *testing.T) {
	s := New()
	nf := WrapFactory(func() sync.Locker { return new(core.Lock) }, s)
	a, b := nf(), nf()
	a.Lock()
	a.Unlock()
	b.Lock()
	b.Unlock()
	if got := s.Snapshot().Acquisitions; got != 2 {
		t.Fatalf("shared stats acquisitions = %d, want 2", got)
	}
}

func TestInstallWaiterSinkRestores(t *testing.T) {
	if waiter.ActiveSink() != nil {
		t.Fatal("pre-existing global sink")
	}
	s := New()
	restore := InstallWaiterSink(s)
	if waiter.ActiveSink() != waiter.Sink(s) {
		t.Fatal("sink not installed")
	}
	restore()
	if waiter.ActiveSink() != nil {
		t.Fatal("sink not restored to nil")
	}
	// Nil install is an uninstall.
	waiter.SetSink(s)
	restore = InstallWaiterSink(nil)
	if waiter.ActiveSink() != nil {
		t.Fatal("nil install did not clear sink")
	}
	restore()
	if waiter.ActiveSink() != waiter.Sink(s) {
		t.Fatal("restore did not reinstate previous sink")
	}
	waiter.SetSink(nil)
}

func TestPublishIdempotent(t *testing.T) {
	s := New()
	s.RecordAcquire(false, time.Microsecond)
	Publish("lockstat.test", s)
	Publish("lockstat.test", s) // must not panic
	v := expvar.Get("lockstat.test")
	if v == nil {
		t.Fatal("var not published")
	}
	if js := v.String(); !strings.Contains(js, "\"acquisitions\":1") {
		t.Errorf("published JSON missing acquisitions: %s", js)
	}
}

func TestBuildTableAndReport(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.RecordAcquire(i%2 == 0, 100*time.Nanosecond)
		s.RecordRelease(false, 50*time.Nanosecond)
	}
	snaps := map[string]Snapshot{"Recipro": s.Snapshot()}
	tab := BuildTable("telemetry", []string{"Recipro", "missing"}, snaps)
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (missing names skipped)", len(tab.Rows))
	}
	out := tab.String()
	if !strings.Contains(out, "Recipro") || !strings.Contains(out, "Contended") {
		t.Errorf("table rendering missing content:\n%s", out)
	}

	var sb strings.Builder
	FprintReport(&sb, "telemetry", []string{"Recipro"}, snaps, false)
	if !strings.Contains(sb.String(), "acquire latency") {
		t.Errorf("text report missing histogram section:\n%s", sb.String())
	}
	sb.Reset()
	FprintReport(&sb, "telemetry", []string{"Recipro"}, snaps, true)
	if strings.Contains(sb.String(), "==") || !strings.Contains(sb.String(), "Lock,") {
		t.Errorf("csv report malformed:\n%s", sb.String())
	}
}
