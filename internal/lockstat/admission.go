package lockstat

import (
	"fmt"
	"sync"
)

// AdmissionLog is the admission-order probe of the conformance
// subsystem: critical sections bracket themselves with Enter/Exit and
// the log records the order in which the lock admitted them while
// simultaneously checking mutual exclusion — a second Enter before the
// holder's Exit is recorded as a violation rather than a panic, so the
// harness can report it with context.
//
// The log is safe for concurrent use; its own mutex orders the
// bracketing calls, which is sound because callers invoke Enter
// strictly after acquiring and Exit strictly before releasing the lock
// under test.
// Shared-read bracketing: readers bracket with EnterShared/ExitShared.
// An exclusive Enter while readers are inside, or a shared Enter while
// an exclusive holder is inside, is a violation; concurrent shared
// admissions are legal and their high-water mark is reported by
// MaxShared (the evidence CheckReadSharing uses to prove readers were
// actually admitted together rather than serialized).
type AdmissionLog struct {
	mu        sync.Mutex
	order     []int
	inside    int
	holder    int
	shared    int
	maxShared int
	err       error
}

// NewAdmissionLog returns an empty log.
func NewAdmissionLog() *AdmissionLog { return &AdmissionLog{holder: -1} }

// Enter records admission of id (called immediately after acquiring).
func (l *AdmissionLog) Enter(id int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inside != 0 && l.err == nil {
		l.err = fmt.Errorf("mutual exclusion violated: %d entered while %d holds (admission %d)",
			id, l.holder, len(l.order))
	}
	if l.shared != 0 && l.err == nil {
		l.err = fmt.Errorf("read exclusion violated: writer %d entered with %d readers inside (admission %d)",
			id, l.shared, len(l.order))
	}
	l.inside++
	l.holder = id
	l.order = append(l.order, id)
}

// EnterShared records admission of reader id (called immediately after
// RLock or a validated optimistic begin).
func (l *AdmissionLog) EnterShared(id int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inside != 0 && l.err == nil {
		l.err = fmt.Errorf("read exclusion violated: reader %d entered while writer %d holds (admission %d)",
			id, l.holder, len(l.order))
	}
	l.shared++
	if l.shared > l.maxShared {
		l.maxShared = l.shared
	}
	l.order = append(l.order, id)
}

// ExitShared records release by reader id (called immediately before
// RUnlock).
func (l *AdmissionLog) ExitShared(id int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.shared < 1 && l.err == nil {
		l.err = fmt.Errorf("unbalanced shared exit: reader %d exited with shared=%d", id, l.shared)
	}
	l.shared--
}

// MaxShared reports the highest number of readers ever inside
// simultaneously.
func (l *AdmissionLog) MaxShared() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.maxShared
}

// Exit records release by id (called immediately before releasing).
func (l *AdmissionLog) Exit(id int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if (l.inside != 1 || l.holder != id) && l.err == nil {
		l.err = fmt.Errorf("unbalanced exit: %d exited with inside=%d holder=%d",
			id, l.inside, l.holder)
	}
	l.inside--
}

// Order returns a copy of the admission order so far.
func (l *AdmissionLog) Order() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]int(nil), l.order...)
}

// Len reports the number of admissions so far.
func (l *AdmissionLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.order)
}

// Last returns the most recently admitted id (-1 when empty).
func (l *AdmissionLog) Last() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.order) == 0 {
		return -1
	}
	return l.order[len(l.order)-1]
}

// Err returns the first bracketing violation observed, if any.
func (l *AdmissionLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}
