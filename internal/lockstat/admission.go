package lockstat

import (
	"fmt"
	"sync"
)

// AdmissionLog is the admission-order probe of the conformance
// subsystem: critical sections bracket themselves with Enter/Exit and
// the log records the order in which the lock admitted them while
// simultaneously checking mutual exclusion — a second Enter before the
// holder's Exit is recorded as a violation rather than a panic, so the
// harness can report it with context.
//
// The log is safe for concurrent use; its own mutex orders the
// bracketing calls, which is sound because callers invoke Enter
// strictly after acquiring and Exit strictly before releasing the lock
// under test.
type AdmissionLog struct {
	mu     sync.Mutex
	order  []int
	inside int
	holder int
	err    error
}

// NewAdmissionLog returns an empty log.
func NewAdmissionLog() *AdmissionLog { return &AdmissionLog{holder: -1} }

// Enter records admission of id (called immediately after acquiring).
func (l *AdmissionLog) Enter(id int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inside != 0 && l.err == nil {
		l.err = fmt.Errorf("mutual exclusion violated: %d entered while %d holds (admission %d)",
			id, l.holder, len(l.order))
	}
	l.inside++
	l.holder = id
	l.order = append(l.order, id)
}

// Exit records release by id (called immediately before releasing).
func (l *AdmissionLog) Exit(id int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if (l.inside != 1 || l.holder != id) && l.err == nil {
		l.err = fmt.Errorf("unbalanced exit: %d exited with inside=%d holder=%d",
			id, l.inside, l.holder)
	}
	l.inside--
}

// Order returns a copy of the admission order so far.
func (l *AdmissionLog) Order() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]int(nil), l.order...)
}

// Len reports the number of admissions so far.
func (l *AdmissionLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.order)
}

// Last returns the most recently admitted id (-1 when empty).
func (l *AdmissionLog) Last() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.order) == 0 {
		return -1
	}
	return l.order[len(l.order)-1]
}

// Err returns the first bracketing violation observed, if any.
func (l *AdmissionLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}
