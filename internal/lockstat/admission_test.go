package lockstat

import (
	"reflect"
	"strings"
	"testing"
)

func TestAdmissionLogRecordsOrder(t *testing.T) {
	l := NewAdmissionLog()
	if l.Len() != 0 || l.Last() != -1 || l.Err() != nil {
		t.Fatal("fresh log not empty")
	}
	for _, id := range []int{3, 1, 2, 1} {
		l.Enter(id)
		l.Exit(id)
	}
	if got := l.Order(); !reflect.DeepEqual(got, []int{3, 1, 2, 1}) {
		t.Fatalf("order = %v", got)
	}
	if l.Len() != 4 || l.Last() != 1 {
		t.Fatalf("len=%d last=%d", l.Len(), l.Last())
	}
	if l.Err() != nil {
		t.Fatalf("balanced bracketing reported %v", l.Err())
	}
}

// A second Enter before the holder's Exit is the mutual-exclusion
// violation the log exists to catch; it must be recorded (first
// violation wins) rather than panicking, and must identify the holder.
func TestAdmissionLogDetectsOverlap(t *testing.T) {
	l := NewAdmissionLog()
	l.Enter(7)
	l.Enter(9)
	err := l.Err()
	if err == nil {
		t.Fatal("overlapping Enter not detected")
	}
	if !strings.Contains(err.Error(), "mutual exclusion") || !strings.Contains(err.Error(), "7") {
		t.Fatalf("error %q does not identify the violation", err)
	}
	l.Exit(9)
	l.Exit(7)
	if got := l.Err(); got != err {
		t.Fatalf("first violation must be sticky; got %v", got)
	}
}

func TestAdmissionLogDetectsUnbalancedExit(t *testing.T) {
	l := NewAdmissionLog()
	l.Exit(4)
	if err := l.Err(); err == nil || !strings.Contains(err.Error(), "unbalanced exit") {
		t.Fatalf("exit-without-enter reported %v", err)
	}

	l = NewAdmissionLog()
	l.Enter(1)
	l.Exit(2)
	if err := l.Err(); err == nil || !strings.Contains(err.Error(), "unbalanced exit") {
		t.Fatalf("exit by a non-holder reported %v", err)
	}
}
