// Package lockstat is the repository's lock telemetry layer: a
// low-overhead set of atomic counters and log-scale latency histograms
// that any lock can opt into, turning every benchmark and example into
// a measurement instrument.
//
// The quantities collected are exactly the ones the paper's evaluation
// reasons about offline in the coherence simulator — contended vs.
// uncontended acquisitions, handover counts, waiting-policy behavior
// (spin/yield/park transitions), and acquire/hold latency shapes — but
// measured on the live Track-A locks.
//
// Three pieces cooperate:
//
//   - Stats: padded atomic counters plus two fixed-bucket log₂ latency
//     histograms (acquire latency and hold time). Stats implements
//     waiter.Sink, so spin/yield/park transitions are counted at the
//     policy layer with no per-lock instrumentation.
//   - Instrumented: a sync.Locker (and TryLock) wrapper around any
//     lock in internal/core or internal/locks. A nil-Stats wrapper
//     degenerates to one nil check plus the inner call.
//   - Export: expvar publication and text/CSV table dumps built on
//     internal/table, wired into cmd/mutexbench, cmd/kvbench and
//     cmd/torture behind their -lockstat flags.
//
// Attribution model: per-lock counters (acquisitions, contention,
// handovers, latencies) are exact, recorded by the wrapper. Waiting-
// policy transitions are recorded through the process-wide waiter sink
// (see waiter.SetSink), so they are attributed to whichever Stats is
// installed while the waiting happens — exact when one lock is hot per
// installation window, which is how the benchmark harnesses use it.
package lockstat

import (
	"sync/atomic"
	"time"

	"repro/internal/pad"
)

// counter is a cache-line-padded atomic counter: each counter owns a
// full line so concurrent writers of different counters never
// false-share (the same sequestration discipline the locks themselves
// follow).
type counter struct {
	v atomic.Uint64
	_ [pad.CacheLineSize - 8]byte
}

func (c *counter) add(n uint64) { c.v.Add(n) }
func (c *counter) load() uint64 { return c.v.Load() }
func (c *counter) inc()         { c.v.Add(1) }

// Stats accumulates telemetry for one lock (or one group of locks
// sharing a sink). The zero value is ready to use. All methods are
// safe for concurrent use.
type Stats struct {
	acquisitions counter // total successful acquisitions (Lock + successful TryLock)
	contended    counter // acquisitions that observed a holder or measurable wait
	handovers    counter // unlocks performed while at least one waiter was queued
	unlocks      counter // total unlocks
	tryFails     counter // failed TryLock attempts
	abandons     counter // bounded acquisitions abandoned (timeout/cancel)
	spins        counter // hot spin iterations (waiter policy layer)
	yields       counter // scheduler yields (waiter policy layer)
	parks        counter // blocking waits: policy sleeps + futex parks
	rlocks       counter // shared-read acquisitions (RLock)
	optReads     counter // completed optimistic read sections (OptimisticRead)
	optRetries   counter // optimistic validations that failed (manual or in-section)

	acquire Hist // acquire latency, ns
	hold    Hist // hold time (Lock return to Unlock entry), ns
	readAcq Hist // read-path latency (RLock acquire / OptimisticRead total), ns
}

// New returns a fresh Stats.
func New() *Stats { return new(Stats) }

// CountSpin implements waiter.Sink.
func (s *Stats) CountSpin() { s.spins.inc() }

// CountYield implements waiter.Sink.
func (s *Stats) CountYield() { s.yields.inc() }

// CountPark implements waiter.Sink.
func (s *Stats) CountPark() { s.parks.inc() }

// RecordAcquire records one successful acquisition with its latency.
func (s *Stats) RecordAcquire(contended bool, d time.Duration) {
	s.acquisitions.inc()
	if contended {
		s.contended.inc()
	}
	s.acquire.Observe(d.Nanoseconds())
}

// RecordRelease records one unlock with the episode's hold time;
// handover reports whether a waiter was queued at release time.
func (s *Stats) RecordRelease(handover bool, held time.Duration) {
	s.unlocks.inc()
	if handover {
		s.handovers.inc()
	}
	s.hold.Observe(held.Nanoseconds())
}

// RecordTryFail records one failed TryLock attempt.
func (s *Stats) RecordTryFail() { s.tryFails.inc() }

// RecordAbandon records one bounded acquisition (LockFor/LockCtx) that
// gave up — by deadline or cancellation — without acquiring. Chaos
// runs read this column as the degradation rate.
func (s *Stats) RecordAbandon() { s.abandons.inc() }

// RecordRLock records one shared-read acquisition with its latency.
func (s *Stats) RecordRLock(d time.Duration) {
	s.rlocks.inc()
	s.readAcq.Observe(d.Nanoseconds())
}

// RecordOptimisticRead records one completed optimistic read section:
// its end-to-end latency and how many validation failures (retries) it
// absorbed before succeeding.
func (s *Stats) RecordOptimisticRead(retries uint64, d time.Duration) {
	s.optReads.inc()
	if retries > 0 {
		s.optRetries.add(retries)
	}
	s.readAcq.Observe(d.Nanoseconds())
}

// RecordOptRetry records one failed optimistic validation observed on
// the manual ReadBegin/ReadValidate surface.
func (s *Stats) RecordOptRetry() { s.optRetries.inc() }

// Snapshot returns a consistent-enough point-in-time copy for
// reporting. Individual counters are loaded independently; between
// loads other goroutines may progress, so cross-counter invariants
// (acquisitions == unlocks) hold exactly only at quiescence.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Acquisitions: s.acquisitions.load(),
		Contended:    s.contended.load(),
		Handovers:    s.handovers.load(),
		Unlocks:      s.unlocks.load(),
		TryFails:     s.tryFails.load(),
		Abandons:     s.abandons.load(),
		Spins:        s.spins.load(),
		Yields:       s.yields.load(),
		Parks:        s.parks.load(),
		RLocks:       s.rlocks.load(),
		OptReads:     s.optReads.load(),
		OptRetries:   s.optRetries.load(),
		Acquire:      s.acquire.Snapshot(),
		Hold:         s.hold.Snapshot(),
		ReadAcq:      s.readAcq.Snapshot(),
	}
}

// Snapshot is a plain-value copy of a Stats, JSON-serializable for the
// expvar export.
type Snapshot struct {
	Acquisitions uint64       `json:"acquisitions"`
	Contended    uint64       `json:"contended"`
	Handovers    uint64       `json:"handovers"`
	Unlocks      uint64       `json:"unlocks"`
	TryFails     uint64       `json:"try_fails"`
	Abandons     uint64       `json:"abandons"`
	Spins        uint64       `json:"spins"`
	Yields       uint64       `json:"yields"`
	Parks        uint64       `json:"parks"`
	RLocks       uint64       `json:"rlocks"`
	OptReads     uint64       `json:"opt_reads"`
	OptRetries   uint64       `json:"opt_retries"`
	Acquire      HistSnapshot `json:"acquire_ns"`
	Hold         HistSnapshot `json:"hold_ns"`
	ReadAcq      HistSnapshot `json:"read_acquire_ns"`
}

// ContendedFraction returns contended/acquisitions in [0,1], or 0 for
// no acquisitions.
func (s Snapshot) ContendedFraction() float64 {
	if s.Acquisitions == 0 {
		return 0
	}
	return float64(s.Contended) / float64(s.Acquisitions)
}
