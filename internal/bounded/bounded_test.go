// Cancellation-contract tests, table-driven over every boundable lock
// in the repository. The package is bounded_test so the table can pull
// in internal/core and internal/locks without an import cycle.
package bounded_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bounded"
	"repro/internal/core"
	"repro/internal/locks"
)

// boundables enumerates every lock the bounded contract covers: the
// native implementations (Reciprocating variants, spin and queue
// baselines) and representatives of the Polling fallback tier.
func boundables() []struct {
	name string
	mk   func() bounded.Locker
} {
	get := func(l sync.Locker) bounded.Locker {
		b, ok := bounded.For(l)
		if !ok {
			panic("table entry is not boundable")
		}
		return b
	}
	return []struct {
		name string
		mk   func() bounded.Locker
	}{
		// Native tier.
		{"Recipro", func() bounded.Locker { return new(core.Lock) }},
		{"Simplified", func() bounded.Locker { return new(core.SimplifiedLock) }},
		{"SimplifiedPark", func() bounded.Locker { return &core.SimplifiedLock{Park: true} }},
		{"TAS", func() bounded.Locker { return new(locks.TASLock) }},
		{"TTAS", func() bounded.Locker { return new(locks.TTASLock) }},
		{"Ticket", func() bounded.Locker { return new(locks.TicketLock) }},
		{"MCS", func() bounded.Locker { return new(locks.MCSLock) }},
		{"CLH", func() bounded.Locker { return new(locks.CLHLock) }},
		// Polling tier (TryLock-capable locks adapted by For).
		{"Fair/poll", func() bounded.Locker { return get(new(core.FairLock)) }},
		{"TWA/poll", func() bounded.Locker { return get(new(locks.TWALock)) }},
		{"Chen/poll", func() bounded.Locker { return get(new(locks.ChenLock)) }},
		{"Retrograde/poll", func() bounded.Locker { return get(new(locks.RetrogradeLock)) }},
		{"RetroRand/poll", func() bounded.Locker { return get(new(locks.RetrogradeRandLock)) }},
		{"HemLock/poll", func() bounded.Locker { return get(new(locks.HemLock)) }},
		{"FutexMutex/poll", func() bounded.Locker { return get(new(locks.FutexMutex)) }},
	}
}

// LockFor(0) must behave exactly like TryLock: immediate success on a
// free lock, immediate failure on a held one, no residue either way.
func TestLockForZeroIsTryLock(t *testing.T) {
	for _, v := range boundables() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			l := v.mk()
			if !l.LockFor(0) {
				t.Fatal("LockFor(0) on free lock failed")
			}
			if l.LockFor(0) {
				t.Fatal("LockFor(0) on held lock succeeded")
			}
			if l.TryLock() {
				t.Fatal("TryLock on held lock succeeded")
			}
			l.Unlock()
			if !l.TryLock() {
				t.Fatal("lock unusable after LockFor(0) episode")
			}
			l.Unlock()
		})
	}
}

// A waiter whose budget expires must return false, must not hold the
// lock afterward, and must return within a small multiple of its
// budget even while the lock stays held throughout.
func TestLockForTimesOutPromptly(t *testing.T) {
	for _, v := range boundables() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			l := v.mk()
			l.Lock()
			const budget = 250 * time.Millisecond
			start := time.Now()
			if l.LockFor(budget) {
				t.Fatal("LockFor acquired a continuously held lock")
			}
			if el := time.Since(start); el > 2*budget {
				t.Fatalf("LockFor(%v) returned after %v (> 2x budget)", budget, el)
			}
			l.Unlock()
			// The abandonment must leave no residue: a fresh acquire
			// and a queued waiter must both work.
			l.Lock()
			done := make(chan struct{})
			go func() {
				l.Lock()
				l.Unlock()
				close(done)
			}()
			time.Sleep(2 * time.Millisecond)
			l.Unlock()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("waiter starved after abandonment")
			}
		})
	}
}

// LockCtx must honor both cancellation flavors: an already-cancelled
// context fails immediately with the context's error, and a deadline
// expiring mid-wait fails within 2x the deadline, never holding the
// lock on the failure path.
func TestLockCtxCancellation(t *testing.T) {
	for _, v := range boundables() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			l := v.mk()

			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if err := l.LockCtx(ctx); err != context.Canceled {
				t.Fatalf("LockCtx(cancelled) = %v, want context.Canceled", err)
			}

			l.Lock()
			const budget = 250 * time.Millisecond
			dctx, dcancel := context.WithTimeout(context.Background(), budget)
			start := time.Now()
			err := l.LockCtx(dctx)
			el := time.Since(start)
			dcancel()
			if err == nil {
				t.Fatal("LockCtx acquired a continuously held lock")
			}
			if err != context.DeadlineExceeded {
				t.Fatalf("LockCtx = %v, want context.DeadlineExceeded", err)
			}
			if el > 2*budget {
				t.Fatalf("LockCtx returned after %v (> 2x %v deadline)", el, budget)
			}
			l.Unlock()

			// Free lock: LockCtx must succeed and hold.
			octx, ocancel := context.WithTimeout(context.Background(), time.Second)
			if err := l.LockCtx(octx); err != nil {
				t.Fatalf("LockCtx on free lock = %v", err)
			}
			ocancel()
			l.Unlock()
		})
	}
}

// A cancelled waiter must never end up holding the lock: while a
// holder cycles the lock rapidly, cancellers race tiny deadlines
// against grants. Whatever the outcome of each race, the inside
// counter must stay exact, and failed attempts must leave the
// goroutine lock-free (verified by the holder's continued progress).
func TestCancelledWaiterNeverHoldsLock(t *testing.T) {
	for _, v := range boundables() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			l := v.mk()
			var inside int32
			var stop atomic.Bool
			var wg sync.WaitGroup

			enter := func() {
				if atomic.AddInt32(&inside, 1) != 1 {
					panic("mutual exclusion violated")
				}
				atomic.AddInt32(&inside, -1)
				l.Unlock()
			}

			// Holder lane: ordinary acquire/release churn.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					l.Lock()
					enter()
				}
			}()

			// Canceller lanes: deadlines short enough to usually lose
			// the race to the holder lane.
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; !stop.Load(); i++ {
						if g == 0 {
							if l.LockFor(time.Duration(i%50) * time.Microsecond) {
								enter()
							}
						} else {
							ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i%50)*time.Microsecond)
							if l.LockCtx(ctx) == nil {
								enter()
							}
							cancel()
						}
					}
				}(g)
			}

			time.Sleep(200 * time.Millisecond)
			stop.Store(true)
			wg.Wait()
			// Lock must be free and fully usable afterward.
			if !l.TryLock() {
				t.Fatal("lock left held after cancellation stress")
			}
			l.Unlock()
		})
	}
}

// A lock must survive many consecutive abandonments and then admit
// both the abandoning goroutine and fresh waiters normally.
func TestUsableAfterRepeatedAbandonment(t *testing.T) {
	for _, v := range boundables() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			l := v.mk()
			l.Lock()
			for i := 0; i < 32; i++ {
				if l.LockFor(100 * time.Microsecond) {
					t.Fatal("LockFor acquired a held lock")
				}
			}
			l.Unlock()
			for i := 0; i < 100; i++ {
				if !l.LockFor(time.Second) {
					t.Fatal("LockFor on free lock failed after abandonments")
				}
				l.Unlock()
				l.Lock()
				l.Unlock()
			}
		})
	}
}

// Mixed-mode stress: unbounded Lock, bounded LockFor/LockCtx and
// TryLock all race on one lock; the shared counter must come out
// exact. Run under -race this validates the abandonment protocol's
// happens-before edges.
func TestMixedModeStress(t *testing.T) {
	for _, v := range boundables() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			l := v.mk()
			var inside int32
			var acquired atomic.Int64
			shared := 0
			var wg sync.WaitGroup
			const goroutines = 6
			const iters = 400
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						got := false
						switch (g + i) % 4 {
						case 0:
							l.Lock()
							got = true
						case 1:
							got = l.TryLock()
						case 2:
							got = l.LockFor(time.Duration(i%20) * time.Microsecond)
						default:
							ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i%20)*time.Microsecond)
							got = l.LockCtx(ctx) == nil
							cancel()
						}
						if !got {
							continue
						}
						if atomic.AddInt32(&inside, 1) != 1 {
							panic("mutual exclusion violated")
						}
						shared++
						acquired.Add(1)
						atomic.AddInt32(&inside, -1)
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			if int64(shared) != acquired.Load() {
				t.Fatalf("shared = %d, acquired = %d (lost updates)", shared, acquired.Load())
			}
		})
	}
}

// The adapter must refuse locks with no bounded tier: the Gated and
// TwoLane appendix variants have neither a safe abandonment protocol
// nor a TryLock doorway.
func TestUnboundableLocks(t *testing.T) {
	for _, l := range []sync.Locker{new(core.GatedLock), new(core.TwoLaneLock)} {
		if bounded.Boundable(l) {
			t.Fatalf("%T reported boundable", l)
		}
		if b, ok := bounded.For(l); ok || b != nil {
			t.Fatalf("For(%T) = %v, %v; want nil, false", l, b, ok)
		}
	}
}
