package bounded_test

import (
	"sync"
	"testing"

	"repro/internal/bounded"
	"repro/internal/rwlock"
)

// The polling adapter must pass read surfaces through to the inner
// lock: an adapted combinator keeps real read sharing.
func TestPollingPassesReadPathThrough(t *testing.T) {
	rw := rwlock.NewRW(&sync.Mutex{})
	b, ok := bounded.For(rw)
	if !ok {
		t.Fatal("For rejected a TryLock-capable lock")
	}
	p, ok := b.(*bounded.Polling)
	if !ok {
		t.Fatalf("expected the polling adapter, got %T", b)
	}
	p.RLock()
	if rw.Readers() != 1 {
		t.Fatalf("inner reader count = %d after adapted RLock, want 1", rw.Readers())
	}
	p.RUnlock()

	seq := rwlock.NewSeqlock(&sync.Mutex{})
	b, _ = bounded.For(seq)
	p = b.(*bounded.Polling)
	s := p.ReadBegin()
	if !p.ReadValidate(s) {
		t.Fatal("adapted quiescent optimistic section failed to validate")
	}
	seq.Lock()
	if p.ReadValidate(s) {
		t.Fatal("adapted stamp validated across a held writer")
	}
	seq.Unlock()
	ran := false
	p.OptimisticRead(func() { ran = true })
	if !ran {
		t.Fatal("adapted OptimisticRead never ran its section")
	}
}

// Without an inner read path the adapter degrades to exclusive
// sections and permanently conflicted stamps.
func TestPollingReadFallback(t *testing.T) {
	var mu sync.Mutex
	b, _ := bounded.For(&mu)
	p := b.(*bounded.Polling)
	p.RLock()
	if mu.TryLock() {
		t.Fatal("fallback RLock did not hold the inner lock exclusively")
	}
	p.RUnlock()
	if p.ReadBegin() != 0 || p.ReadValidate(0) {
		t.Fatal("read-path-less inner lock must report permanently conflicted stamps")
	}
	ran := false
	p.OptimisticRead(func() { ran = true })
	if !ran {
		t.Fatal("fallback OptimisticRead never ran its section")
	}
}
