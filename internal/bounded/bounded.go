// Package bounded defines the repository's cancellable-acquisition
// contract: every lock that can give up on an acquisition — by
// deadline (LockFor) or by context (LockCtx) — implements Locker.
//
// Two implementation tiers exist:
//
//   - Native: the canonical Reciprocating variants (internal/core Lock
//     and SimplifiedLock) and the queue baselines (internal/locks MCS,
//     CLH) implement bounded acquisition inside the algorithm, with
//     safe abandonment of an already-published waiter; TAS/TTAS/ticket
//     implement it as deadline-aware spinning on the try path.
//   - Polling: any lock exposing TryLock can be adapted with the
//     Polling wrapper, which retries TryLock under a deadline-aware
//     waiter pause. Polling acquisition barges (it never enters the
//     lock's queue), so it trades the lock's admission order for the
//     ability to abandon instantly; that is the standard fallback
//     trade-off (cf. pthread_mutex_timedlock over try-loops).
//
// For adapts a sync.Locker to the strongest available tier.
package bounded

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/clock"
	"repro/internal/waiter"
)

// ErrUnboundable is returned by bounded entry points of adapters whose
// underlying lock supports neither native bounded acquisition nor
// TryLock polling.
var ErrUnboundable = errors.New("bounded: lock does not support bounded acquisition")

// TryLocker is the non-blocking-acquire surface.
type TryLocker interface {
	sync.Locker
	TryLock() bool
}

// Locker is the bounded-acquisition contract.
//
// LockFor acquires the lock, giving up after d; it reports whether the
// lock was acquired. LockFor(0) is equivalent to TryLock. After a
// false return the caller does not hold the lock and the lock remains
// fully usable by other goroutines.
//
// LockCtx acquires the lock unless ctx is cancelled or its deadline
// passes first, returning nil exactly when the lock was acquired and
// the context's error otherwise. A waiter that loses the race between
// cancellation and a lock grant releases the lock before reporting
// failure — it never returns non-nil while holding the lock.
type Locker interface {
	TryLocker
	LockFor(d time.Duration) bool
	LockCtx(ctx context.Context) error
}

// For adapts l to the bounded contract: the lock itself when it
// implements Locker natively, a Polling wrapper when it only offers
// TryLock, and ok=false when it supports neither (locks whose
// admission protocol cannot be abandoned and which expose no
// non-blocking doorway, e.g. the Gated and TwoLane appendix variants).
func For(l sync.Locker) (Locker, bool) {
	if b, ok := l.(Locker); ok {
		return b, true
	}
	if t, ok := l.(TryLocker); ok {
		return &Polling{L: t}, true
	}
	return nil, false
}

// Boundable reports whether For can adapt l.
func Boundable(l sync.Locker) bool {
	_, ok := For(l)
	return ok
}

// Polling adapts any TryLock-capable lock to the bounded contract by
// retrying TryLock under a deadline-aware pause: a short hot phase
// driven by the waiter policy, then capped decorrelated-jitter sleeps
// from the shared backoff package (the same policy the cluster
// simulation's lease client retries under), which desynchronizes
// competing pollers instead of letting them re-collide on a fixed
// schedule. See the package comment for the admission-order caveat.
type Polling struct {
	L      TryLocker
	Policy waiter.Policy
	// Backoff overrides the sleep schedule used once an episode
	// escalates past the hot phase; zero fields select pollDefaults.
	Backoff backoff.Policy
	// Clk is the time source for deadlines and escalated sleeps; nil
	// selects clock.Wall.
	Clk clock.Clock
	// Seed, when nonzero, pins the jitter stream of every polling
	// episode instead of drawing per-episode seeds from the process
	// counter — the deterministic mode virtual-time schedules need.
	Seed uint64
}

// SetClock injects the time source (registry.WithClock threads through
// here when the polling adapter wraps a try-only lock).
func (p *Polling) SetClock(c clock.Clock) {
	p.Clk = c
	if cl, ok := p.L.(clock.Clocked); ok {
		cl.SetClock(c)
	}
}

// pollSpinBudget is how many waiter pauses a polling episode spends in
// its hot phase (spins and yields) before escalating to jittered
// sleeps — the same escalation point as waiter.PolicyAdaptive's
// spin+yield budgets.
const pollSpinBudget = 96

// pollDefaults is the sleep schedule for escalated polling episodes:
// short enough that tight LockFor deadlines stay responsive, capped so
// an unlucky draw never oversleeps a grant by more than 1ms.
var pollDefaults = backoff.Policy{Base: 20 * time.Microsecond, Cap: time.Millisecond}

// pollSeq decorrelates concurrent polling episodes: each draws its
// jitter stream from a distinct seed, deterministically per process.
var pollSeq atomic.Uint64

// wait is the shared LockFor/LockCtx retry loop. The deadline is an
// absolute instant on the adapter's clock; zero means unbounded.
func (p *Polling) wait(deadline time.Duration, done <-chan struct{}) bool {
	c := clock.Or(p.Clk)
	w := waiter.NewClocked(p.Policy, p.Clk)
	var bo *backoff.Backoff
	for {
		if p.L.TryLock() {
			return true
		}
		if w.Spins() < pollSpinBudget {
			if !w.PauseBounded(deadline, done) {
				return false
			}
			continue
		}
		// Escalated phase: decorrelated-jitter sleeps, clamped to the
		// deadline and interruptible by done. Each sleep is a park in
		// the waiter's transition taxonomy.
		if bo == nil {
			policy := p.Backoff
			if policy == (backoff.Policy{}) {
				policy = pollDefaults
			}
			seed := p.Seed
			if seed == 0 {
				seed = pollSeq.Add(1)
			}
			bo = backoff.New(policy, seed)
		}
		d := bo.Next()
		if deadline != 0 {
			rem := deadline - c.Now()
			if rem <= 0 {
				return false
			}
			if d > rem {
				d = rem
			}
		}
		if s := w.Sink(); s != nil {
			s.CountPark()
		}
		if !c.ParkFor(d, done) {
			return false
		}
	}
}

// Lock acquires the inner lock (unbounded, via the lock's own queue).
func (p *Polling) Lock() { p.L.Lock() }

// Unlock releases the inner lock.
func (p *Polling) Unlock() { p.L.Unlock() }

// TryLock attempts a non-blocking acquire of the inner lock.
func (p *Polling) TryLock() bool { return p.L.TryLock() }

// LockFor implements Locker by polling TryLock until the deadline.
func (p *Polling) LockFor(d time.Duration) bool {
	if p.L.TryLock() {
		return true
	}
	if d <= 0 {
		return false
	}
	return p.wait(clock.Or(p.Clk).Now()+d, nil)
}

// readShared and optimistic mirror rwlock.RWLocker/OptimisticLocker
// structurally, so the read-path pass-through below does not couple
// this package to internal/rwlock.
type readShared interface {
	RLock()
	RUnlock()
}

type optimistic interface {
	ReadBegin() uint64
	ReadValidate(s uint64) bool
	OptimisticRead(f func())
}

// capProber mirrors rwlock's probe: because the adapter's read methods
// are total (exclusive fallback), rwlock.IsReadShared/IsOptimistic ask
// through this instead of trusting the interface surface.
type capProber interface {
	ReadSharedCapable() bool
	OptimisticCapable() bool
}

// ReadSharedCapable reports whether RLock actually shares (the inner
// lock has a real read path) rather than falling back to Lock.
func (p *Polling) ReadSharedCapable() bool {
	if pr, ok := p.L.(capProber); ok {
		return pr.ReadSharedCapable()
	}
	_, ok := p.L.(readShared)
	return ok
}

// OptimisticCapable reports whether the optimistic read surface is
// real rather than the exclusive fallback.
func (p *Polling) OptimisticCapable() bool {
	if pr, ok := p.L.(capProber); ok {
		return pr.OptimisticCapable()
	}
	_, ok := p.L.(optimistic)
	return ok
}

// RLock passes a shared-read acquire through to the inner lock,
// degrading to exclusive Lock when the inner lock has no read path.
// The degradation is semantically sound (exclusion implies sharing's
// guarantees); callers wanting actual sharing gate on CapReadShared.
func (p *Polling) RLock() {
	if r, ok := p.L.(readShared); ok {
		r.RLock()
		return
	}
	p.L.Lock()
}

// RUnlock releases an RLock admission.
func (p *Polling) RUnlock() {
	if r, ok := p.L.(readShared); ok {
		r.RUnlock()
		return
	}
	p.L.Unlock()
}

// ReadBegin passes through to the inner optimistic read path. An inner
// lock with no such path reports a permanently conflicted stamp
// (ReadValidate always false), so manual begin/validate loops must
// gate on CapOptimisticRead; OptimisticRead remains total either way.
func (p *Polling) ReadBegin() uint64 {
	if o, ok := p.L.(optimistic); ok {
		return o.ReadBegin()
	}
	return 0
}

// ReadValidate passes through; false (conflicted) for inner locks with
// no optimistic read path.
func (p *Polling) ReadValidate(s uint64) bool {
	if o, ok := p.L.(optimistic); ok {
		return o.ReadValidate(s)
	}
	return false
}

// OptimisticRead passes through, degrading to an exclusive section
// when the inner lock has no optimistic read path.
func (p *Polling) OptimisticRead(f func()) {
	if o, ok := p.L.(optimistic); ok {
		o.OptimisticRead(f)
		return
	}
	p.L.Lock()
	f()
	p.L.Unlock()
}

// LockCtx implements Locker by polling TryLock until ctx is done.
func (p *Polling) LockCtx(ctx context.Context) error {
	return CtxFrom(p.Clk, ctx, p.wait)
}

// CtxFrom adapts a lock's deadline/done-aware bounded acquire into the
// LockCtx surface: it maps the context onto (deadline, done) — the
// deadline re-anchored as an absolute instant on c (nil = Wall) via
// clock.Deadline — runs the acquire, and converts a false return into
// the context's error. The native implementations in internal/core and
// internal/locks share this glue.
func CtxFrom(c clock.Clock, ctx context.Context, lockBounded func(deadline time.Duration, done <-chan struct{}) bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var deadline time.Duration
	if t, ok := ctx.Deadline(); ok {
		deadline = clock.Deadline(clock.Or(c), t)
	}
	if lockBounded(deadline, ctx.Done()) {
		return nil
	}
	return ctxError(ctx)
}

// ctxError returns ctx's error, defaulting to DeadlineExceeded for the
// skew window where the deadline has passed by our clock but the
// context's own timer has not fired yet.
func ctxError(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.DeadlineExceeded
}
