// Package pad provides cache-line padding helpers used to sequester hot
// fields onto private cache sectors.
//
// The paper aligns wait elements and lock instances at 128-byte
// boundaries ("sequestered at 128-byte boundaries") to defeat false
// sharing and to match the 128-byte sector size used by the prefetchers
// on the evaluated Intel parts. We follow the same convention: a sector
// is 128 bytes even on machines whose coherence granule is 64 bytes,
// because adjacent-line prefetchers make the effective false-sharing
// granule two lines.
package pad

// SectorSize is the alignment/padding quantum applied to contended
// structures, in bytes.
const SectorSize = 128

// CacheLineSize is the assumed coherence granule in bytes.
const CacheLineSize = 64

// Line pads a struct to the size of one cache line when embedded after
// a field smaller than a line. Embed it to push the next field onto a
// fresh line.
type Line [CacheLineSize]byte

// Sector pads a struct to one 128-byte sector. Embed it after hot
// fields so that two logically distinct hot fields never share a
// sector.
type Sector [SectorSize]byte

// SectorAfter returns the number of padding bytes needed after a field
// of the given size so that the enclosing struct occupies a whole
// number of sectors.
func SectorAfter(fieldSize uintptr) uintptr {
	r := fieldSize % SectorSize
	if r == 0 {
		return 0
	}
	return SectorSize - r
}
