package pad

import (
	"testing"
	"unsafe"
)

func TestSectorAfter(t *testing.T) {
	cases := []struct {
		in, want uintptr
	}{
		{0, 0},
		{1, 127},
		{8, 120},
		{64, 64},
		{127, 1},
		{128, 0},
		{129, 127},
		{256, 0},
	}
	for _, c := range cases {
		if got := SectorAfter(c.in); got != c.want {
			t.Errorf("SectorAfter(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSectorAfterProducesSectorMultiple(t *testing.T) {
	for sz := uintptr(0); sz < 4*SectorSize; sz++ {
		total := sz + SectorAfter(sz)
		if total%SectorSize != 0 {
			t.Fatalf("size %d: padded total %d not a sector multiple", sz, total)
		}
		if SectorAfter(sz) >= SectorSize {
			t.Fatalf("size %d: padding %d is a full sector or more", sz, SectorAfter(sz))
		}
	}
}

func TestPadTypesHaveDeclaredSizes(t *testing.T) {
	if unsafe.Sizeof(Line{}) != CacheLineSize {
		t.Errorf("Line size = %d, want %d", unsafe.Sizeof(Line{}), CacheLineSize)
	}
	if unsafe.Sizeof(Sector{}) != SectorSize {
		t.Errorf("Sector size = %d, want %d", unsafe.Sizeof(Sector{}), SectorSize)
	}
}

// A struct embedding Sector after a word must not share its sector with
// a following struct in an array.
func TestSectorSeparationInArray(t *testing.T) {
	type padded struct {
		v uint64
		_ [SectorSize - 8]byte
	}
	var arr [2]padded
	a := uintptr(unsafe.Pointer(&arr[0].v))
	b := uintptr(unsafe.Pointer(&arr[1].v))
	if b-a < SectorSize {
		t.Errorf("array elements %d bytes apart, want >= %d", b-a, SectorSize)
	}
}
