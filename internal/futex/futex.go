// Package futex provides address-based waiting — a user-space analog of
// the Linux futex(2) primitive discussed in §8 of the paper as the
// substrate for "polite" waiting policies.
//
// Wait(addr, val) blocks the caller while *addr still contains val at
// registration time; Wake(addr, n) releases up to n waiters queued on
// addr. As with the kernel primitive, spurious wakeups are permitted
// and callers must re-check their predicate in a loop; the chaos layer
// (internal/chaos) exercises that obligation by injecting them.
//
// The implementation hashes the address into a fixed set of shards,
// each holding a FIFO of per-waiter channels keyed by address. The
// "compare under the shard lock" step provides the atomicity that makes
// the classic publish-then-wake pattern race-free:
//
//	waiter:              waker:
//	  w := load(addr)      store(addr, new)
//	  ...                  futex.Wake(addr, 1)
//	  futex.Wait(addr, w)
//
// If the store lands before the waiter registers, the value check fails
// and Wait returns immediately; if it lands after, the waker's Wake
// serializes behind the registration on the shard lock and finds the
// waiter queued.
package futex

import (
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/chaos"
	"repro/internal/clock"
)

// chWait injects spurious wakeups (kernel futexes are allowed to
// return spuriously; this implementation otherwise never does, so the
// injection keeps callers honest about re-checking their predicate).
var (
	chWait          = chaos.NewPoint("futex.wait")
	siteWait        = chWait.Site("futex.Wait")
	siteWaitTimeout = chWait.Site("futex.WaitTimeout")
)

const shardCount = 64 // power of two

type waiterNode struct {
	ch   chan struct{}
	next *waiterNode
}

type queue struct {
	head, tail *waiterNode
	n          int
}

func (q *queue) push(w *waiterNode) {
	if q.tail == nil {
		q.head, q.tail = w, w
	} else {
		q.tail.next = w
		q.tail = w
	}
	q.n++
}

func (q *queue) pop() *waiterNode {
	w := q.head
	if w == nil {
		return nil
	}
	q.head = w.next
	if q.head == nil {
		q.tail = nil
	}
	w.next = nil
	q.n--
	return w
}

// remove unlinks w if it is still queued and reports whether it was.
func (q *queue) remove(w *waiterNode) bool {
	var prev *waiterNode
	for cur := q.head; cur != nil; cur = cur.next {
		if cur == w {
			if prev == nil {
				q.head = cur.next
			} else {
				prev.next = cur.next
			}
			if q.tail == cur {
				q.tail = prev
			}
			w.next = nil
			q.n--
			return true
		}
		prev = cur
	}
	return false
}

type shard struct {
	mu sync.Mutex
	m  map[uintptr]*queue
	_  [40]byte // keep shards off each other's cache lines
}

var shards [shardCount]shard

func init() {
	for i := range shards {
		shards[i].m = make(map[uintptr]*queue)
	}
}

func shardFor(key uintptr) *shard {
	// Fibonacci hashing spreads nearby addresses across shards.
	h := uint64(key) * 0x9e3779b97f4a7c15
	return &shards[(h>>58)&(shardCount-1)]
}

// Wait blocks the caller until a Wake on addr, provided *addr == val at
// registration time. It returns immediately if the value has already
// changed. Spurious returns do not occur from this implementation
// except under chaos fault injection, but callers must loop,
// futex-style, regardless.
func Wait(addr *atomic.Uint32, val uint32) {
	if siteWait.Wake() {
		return
	}
	key := uintptr(unsafe.Pointer(addr))
	s := shardFor(key)
	s.mu.Lock()
	if addr.Load() != val {
		s.mu.Unlock()
		return
	}
	q := s.m[key]
	if q == nil {
		q = &queue{}
		s.m[key] = q
	}
	w := &waiterNode{ch: make(chan struct{})}
	q.push(w)
	s.mu.Unlock()
	<-w.ch
}

// WaitTimeout is Wait with a deadline; it reports false on timeout.
// Like Wait, it may return true spuriously under chaos fault
// injection.
func WaitTimeout(addr *atomic.Uint32, val uint32, d time.Duration) bool {
	return WaitTimeoutClock(addr, val, d, nil)
}

// WaitTimeoutClock is WaitTimeout with the timeout measured on c (nil
// selects clock.Wall) — the variant clocked locks park through so a
// virtual clock can expire their waits deterministically.
func WaitTimeoutClock(addr *atomic.Uint32, val uint32, d time.Duration, c clock.Clock) bool {
	if siteWaitTimeout.Wake() {
		return true
	}
	key := uintptr(unsafe.Pointer(addr))
	s := shardFor(key)
	s.mu.Lock()
	if addr.Load() != val {
		s.mu.Unlock()
		return true
	}
	q := s.m[key]
	if q == nil {
		q = &queue{}
		s.m[key] = q
	}
	w := &waiterNode{ch: make(chan struct{})}
	q.push(w)
	s.mu.Unlock()

	// ParkFor parks on the clock's timer racing the wake channel;
	// d <= 0 would park unboundedly, so treat it as already expired.
	if d > 0 && !clock.Or(c).ParkFor(d, w.ch) {
		return true
	}
	// Timed out. Race: a waker may pop us between the timeout firing
	// and the removal below; in that case report success.
	s.mu.Lock()
	removed := false
	if q2 := s.m[key]; q2 != nil {
		removed = q2.remove(w)
		if q2.n == 0 {
			delete(s.m, key)
		}
	}
	s.mu.Unlock()
	if !removed {
		<-w.ch // wake already committed to us
		return true
	}
	return false
}

// Wake releases up to n waiters queued on addr and returns the number
// released. n <= 0 releases none.
func Wake(addr *atomic.Uint32, n int) int {
	key := uintptr(unsafe.Pointer(addr))
	s := shardFor(key)
	s.mu.Lock()
	q := s.m[key]
	woke := 0
	for woke < n && q != nil {
		w := q.pop()
		if w == nil {
			break
		}
		close(w.ch)
		woke++
	}
	if q != nil && q.n == 0 {
		delete(s.m, key)
	}
	s.mu.Unlock()
	return woke
}

// WakeAll releases every waiter queued on addr.
func WakeAll(addr *atomic.Uint32) int {
	return Wake(addr, int(^uint(0)>>1))
}

// Waiters reports how many waiters are currently queued on addr.
// Intended for tests and diagnostics.
func Waiters(addr *atomic.Uint32) int {
	key := uintptr(unsafe.Pointer(addr))
	s := shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if q := s.m[key]; q != nil {
		return q.n
	}
	return 0
}
