package futex

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWaitReturnsImmediatelyOnChangedValue(t *testing.T) {
	var a atomic.Uint32
	a.Store(7)
	done := make(chan struct{})
	go func() {
		Wait(&a, 3) // value is 7, not 3: must not block
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait blocked despite value mismatch")
	}
}

func TestWakeReleasesWaiter(t *testing.T) {
	var a atomic.Uint32
	done := make(chan struct{})
	go func() {
		Wait(&a, 0)
		close(done)
	}()
	// Let the waiter register.
	for Waiters(&a) == 0 {
		time.Sleep(time.Millisecond)
	}
	a.Store(1)
	if n := Wake(&a, 1); n != 1 {
		t.Fatalf("Wake released %d waiters, want 1", n)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not released by Wake")
	}
}

func TestWakeCountAndFIFO(t *testing.T) {
	var a atomic.Uint32
	const n = 8
	order := make(chan int, n)
	// Launch waiters one at a time so registration (and thus FIFO
	// order) is deterministic.
	for i := 0; i < n; i++ {
		i := i
		go func() {
			Wait(&a, 0)
			order <- i
		}()
		for Waiters(&a) != i+1 {
			time.Sleep(100 * time.Microsecond)
		}
	}
	if got := Wake(&a, 3); got != 3 {
		t.Fatalf("Wake(3) released %d", got)
	}
	// Wake pops in FIFO order, so the released set must be the three
	// earliest registrants {0,1,2}; the goroutines race to report, so
	// check set membership rather than report order.
	woken := map[int]bool{}
	for i := 0; i < 3; i++ {
		select {
		case v := <-order:
			woken[v] = true
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for woken waiter")
		}
	}
	for i := 0; i < 3; i++ {
		if !woken[i] {
			t.Errorf("waiter %d not among the first 3 woken (%v)", i, woken)
		}
	}
	if got := Waiters(&a); got != n-3 {
		t.Fatalf("Waiters = %d, want %d", got, n-3)
	}
	if got := WakeAll(&a); got != n-3 {
		t.Fatalf("WakeAll released %d, want %d", got, n-3)
	}
	for i := 3; i < n; i++ {
		<-order
	}
}

func TestWaitTimeout(t *testing.T) {
	var a atomic.Uint32
	start := time.Now()
	if WaitTimeout(&a, 0, 20*time.Millisecond) {
		t.Fatal("WaitTimeout reported wakeup, want timeout")
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("WaitTimeout returned before deadline")
	}
	if Waiters(&a) != 0 {
		t.Fatal("timed-out waiter left registered")
	}
	// And the success path:
	done := make(chan bool, 1)
	go func() { done <- WaitTimeout(&a, 0, 10*time.Second) }()
	for Waiters(&a) == 0 {
		time.Sleep(time.Millisecond)
	}
	Wake(&a, 1)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("WaitTimeout reported timeout, want wakeup")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("woken WaitTimeout did not return")
	}
}

// The canonical publish-then-wake pattern must not lose wakeups under
// concurrency: a flag flip paired with Wake must always release a
// waiter looping on Wait.
func TestNoLostWakeups(t *testing.T) {
	const rounds = 200
	var flag atomic.Uint32
	for r := 0; r < rounds; r++ {
		flag.Store(0)
		done := make(chan struct{})
		go func() {
			for flag.Load() == 0 {
				Wait(&flag, 0)
			}
			close(done)
		}()
		flag.Store(1)
		WakeAll(&flag)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: lost wakeup", r)
		}
	}
}

func TestManyAddressesIndependent(t *testing.T) {
	var addrs [32]atomic.Uint32
	var wg sync.WaitGroup
	for i := range addrs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			Wait(&addrs[i], 0)
		}()
	}
	for i := range addrs {
		for Waiters(&addrs[i]) == 0 {
			time.Sleep(100 * time.Microsecond)
		}
	}
	// Waking one address must not disturb the others.
	Wake(&addrs[0], 1)
	time.Sleep(10 * time.Millisecond)
	for i := 1; i < len(addrs); i++ {
		if Waiters(&addrs[i]) != 1 {
			t.Fatalf("address %d lost its waiter", i)
		}
	}
	for i := 1; i < len(addrs); i++ {
		Wake(&addrs[i], 1)
	}
	wg.Wait()
}
