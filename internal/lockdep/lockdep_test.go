package lockdep

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

func collect(d *Dep) *[]Violation {
	out := &[]Violation{}
	d.OnViolation = func(v *Violation) { *out = append(*out, *v) }
	return out
}

func TestCleanOrderingNoViolation(t *testing.T) {
	d := New()
	vs := collect(d)
	a := d.Wrap(new(core.Lock), "A")
	b := d.Wrap(new(core.Lock), "B")
	w := d.NewWorker()
	for i := 0; i < 10; i++ {
		w.Lock(a)
		w.Lock(b)
		w.Unlock(b)
		w.Unlock(a)
	}
	if len(*vs) != 0 {
		t.Fatalf("violations on consistent order: %v", *vs)
	}
}

func TestInversionDetected(t *testing.T) {
	d := New()
	vs := collect(d)
	a := d.Wrap(new(core.Lock), "A")
	b := d.Wrap(new(core.Lock), "B")
	w := d.NewWorker()
	w.Lock(a)
	w.Lock(b) // learn A→B
	w.Unlock(b)
	w.Unlock(a)
	w.Lock(b)
	w.Lock(a) // inversion: would close B→A→B
	w.Unlock(a)
	w.Unlock(b)
	if len(*vs) != 1 {
		t.Fatalf("violations = %v, want exactly 1", *vs)
	}
	cyc := strings.Join((*vs)[0].Cycle, "→")
	if !strings.Contains(cyc, "A") || !strings.Contains(cyc, "B") {
		t.Fatalf("cycle %q should mention A and B", cyc)
	}
}

func TestTransitiveInversion(t *testing.T) {
	d := New()
	vs := collect(d)
	a := d.Wrap(new(core.Lock), "A")
	b := d.Wrap(new(core.Lock), "B")
	c := d.Wrap(new(core.Lock), "C")
	w := d.NewWorker()
	// Learn A→B and B→C.
	w.Lock(a)
	w.Lock(b)
	w.Unlock(b)
	w.Unlock(a)
	w.Lock(b)
	w.Lock(c)
	w.Unlock(c)
	w.Unlock(b)
	// C then A closes the transitive cycle A→B→C→A.
	w.Lock(c)
	w.Lock(a)
	w.Unlock(a)
	w.Unlock(c)
	if len(*vs) != 1 {
		t.Fatalf("transitive inversion not detected: %v", *vs)
	}
}

func TestSelfRelockDetected(t *testing.T) {
	d := New()
	vs := collect(d)
	a := d.Wrap(new(core.Lock), "A")
	w := d.NewWorker()
	w.Lock(a)
	// Re-acquiring a held (non-reentrant) lock is self-deadlock.
	func() {
		defer func() { recover() }() // the wrapped Lock would block; violation fires first
		d.before(w, a)
	}()
	if len(*vs) != 1 {
		t.Fatalf("self-relock not reported: %v", *vs)
	}
	w.Unlock(a)
}

func TestImbalancedReleaseAllowed(t *testing.T) {
	d := New()
	vs := collect(d)
	guards := make([]*Guard, 8)
	for i := range guards {
		guards[i] = d.Wrap(new(core.Lock), string(rune('A'+i)))
	}
	w := d.NewWorker()
	for _, g := range guards {
		w.Lock(g)
	}
	if len(w.Held()) != 8 {
		t.Fatalf("held = %v", w.Held())
	}
	// Release evens first, then odds — non-LIFO.
	for i := 0; i < 8; i += 2 {
		w.Unlock(guards[i])
	}
	for i := 1; i < 8; i += 2 {
		w.Unlock(guards[i])
	}
	if len(*vs) != 0 || len(w.Held()) != 0 {
		t.Fatalf("violations %v, held %v", *vs, w.Held())
	}
}

func TestUnlockNotHeldPanics(t *testing.T) {
	d := New()
	a := d.Wrap(new(core.Lock), "A")
	w := d.NewWorker()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Unlock(a)
}

func TestMaxDepthEnforced(t *testing.T) {
	d := New()
	w := d.NewWorker()
	defer func() {
		if recover() == nil {
			t.Fatal("expected MaxLockDepth panic")
		}
		// Unwind what we hold so the test leaves no locks dangling.
		for _, name := range w.Held() {
			_ = name
		}
	}()
	for i := 0; ; i++ {
		g := d.Wrap(new(core.Lock), "L")
		w.Lock(g)
		if i > MaxLockDepth+1 {
			t.Fatal("depth limit never enforced")
		}
	}
}

func TestConcurrentWorkersConsistentOrder(t *testing.T) {
	d := New()
	vs := collect(d)
	guards := make([]*Guard, 6)
	for i := range guards {
		guards[i] = d.Wrap(new(core.Lock), string(rune('A'+i)))
	}
	var wg sync.WaitGroup
	for t0 := 0; t0 < 6; t0++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := d.NewWorker()
			for i := 0; i < 300; i++ {
				// Always acquire in index order: no inversions.
				w.Lock(guards[1])
				w.Lock(guards[3])
				w.Lock(guards[4])
				w.Unlock(guards[1])
				w.Unlock(guards[4])
				w.Unlock(guards[3])
			}
		}()
	}
	wg.Wait()
	if len(*vs) != 0 {
		t.Fatalf("false positives under concurrency: %v", *vs)
	}
}

func TestTryLockEdges(t *testing.T) {
	d := New()
	vs := collect(d)
	a := d.Wrap(new(core.Lock), "A")
	b := d.Wrap(new(core.Lock), "B")
	w := d.NewWorker()
	w.Lock(a)
	if !w.TryLock(b) {
		t.Fatal("TryLock on free lock failed")
	}
	w.Unlock(b)
	w.Unlock(a)
	// Inverted trylock still learns/detects the edge.
	w.Lock(b)
	if !w.TryLock(a) {
		t.Fatal("TryLock failed")
	}
	w.Unlock(a)
	w.Unlock(b)
	if len(*vs) != 1 {
		t.Fatalf("trylock inversion not recorded: %v", *vs)
	}
}
