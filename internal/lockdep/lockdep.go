// Package lockdep is a lock-order validator in the spirit of the
// Linux kernel's lockdep facility, which the paper cites when
// motivating the plural-locking requirement (§5: 40+ locks held
// simultaneously, tracked in an explicit per-thread list via
// MAX_LOCK_DEPTH). It wraps any sync.Locker, records the set of locks
// a worker currently holds, learns held→acquired ordering edges, and
// reports a potential deadlock the first time an acquisition would
// close a cycle in the global lock-order graph — catching A→B vs B→A
// inversions even when they never actually deadlock during the run.
//
// Go has no thread-local storage, so each worker explicitly owns a
// *Worker handle (the analog of the kernel's per-task held-locks
// array).
//
//	dep := lockdep.New()
//	a := dep.Wrap(&muA, "A")
//	b := dep.Wrap(&muB, "B")
//	w := dep.NewWorker()
//	w.Lock(a); w.Lock(b)   // learns A→B
//	w.Unlock(b); w.Unlock(a)
//	// any worker later doing Lock(b); Lock(a) gets an ordering report
package lockdep

import (
	"fmt"
	"sync"
)

// MaxLockDepth mirrors the kernel tunable: the maximum number of
// locks one worker may hold simultaneously.
const MaxLockDepth = 48

// Guard is a validated lock: the wrapped Locker plus its identity in
// the order graph.
type Guard struct {
	mu   sync.Locker
	id   int
	name string
}

// Name returns the guard's registration name.
func (g *Guard) Name() string { return g.name }

// Violation describes a detected ordering problem.
type Violation struct {
	// Cycle is the chain of guard names forming the inversion, e.g.
	// ["B", "A", "B"]: acquiring B while holding A would close the
	// cycle A→B→...→A.
	Cycle []string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("lockdep: lock-order inversion: %v", v.Cycle)
}

// Dep is a lock-order registry. All methods are safe for concurrent
// use.
type Dep struct {
	mu sync.Mutex
	// edges[a][b] records that some worker acquired b while holding a.
	edges  []map[int]bool
	guards []*Guard

	// OnViolation, if non-nil, receives each violation; the default
	// panics, kernel-style ("lockdep splat").
	OnViolation func(*Violation)
}

// New creates an empty registry.
func New() *Dep { return &Dep{} }

// Wrap registers a lock under a name and returns its guard.
func (d *Dep) Wrap(mu sync.Locker, name string) *Guard {
	d.mu.Lock()
	defer d.mu.Unlock()
	g := &Guard{mu: mu, id: len(d.guards), name: name}
	d.guards = append(d.guards, g)
	d.edges = append(d.edges, map[int]bool{})
	return g
}

// Worker tracks one goroutine's held locks.
type Worker struct {
	dep  *Dep
	held []*Guard
}

// NewWorker creates a handle for one goroutine. Handles must not be
// shared between concurrently running goroutines.
func (d *Dep) NewWorker() *Worker { return &Worker{dep: d} }

// Lock validates ordering, records edges, and acquires g.
func (w *Worker) Lock(g *Guard) {
	w.dep.before(w, g)
	g.mu.Lock()
	w.held = append(w.held, g)
}

// TryLockable is the optional interface for guards whose underlying
// lock supports TryLock.
type TryLockable interface {
	TryLock() bool
}

// TryLock attempts a non-blocking acquire; ordering edges are recorded
// only on success (a failed trylock cannot deadlock).
func (w *Worker) TryLock(g *Guard) bool {
	tl, ok := g.mu.(TryLockable)
	if !ok {
		panic("lockdep: underlying lock does not support TryLock")
	}
	if !tl.TryLock() {
		return false
	}
	w.dep.before(w, g) // edges recorded post-hoc; still validates order
	w.held = append(w.held, g)
	return true
}

// Unlock releases g, which may be any currently held lock (non-LIFO
// imbalanced release is expected and legal, §5).
func (w *Worker) Unlock(g *Guard) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i] == g {
			w.held = append(w.held[:i], w.held[i+1:]...)
			g.mu.Unlock()
			return
		}
	}
	panic(fmt.Sprintf("lockdep: unlock of %q which is not held", g.name))
}

// Held returns the names of currently held locks, innermost last.
func (w *Worker) Held() []string {
	out := make([]string, len(w.held))
	for i, g := range w.held {
		out[i] = g.name
	}
	return out
}

// before validates and records ordering prior to acquiring g.
func (d *Dep) before(w *Worker, g *Guard) {
	if len(w.held) >= MaxLockDepth {
		panic(fmt.Sprintf("lockdep: worker exceeds MaxLockDepth=%d", MaxLockDepth))
	}
	for _, h := range w.held {
		if h == g {
			d.report(&Violation{Cycle: []string{g.name, g.name}})
			return
		}
	}
	d.mu.Lock()
	// Would adding held→g close a cycle? Check whether g already
	// reaches any held lock.
	var bad []string
	for _, h := range w.held {
		if path := d.pathLocked(g.id, h.id); path != nil {
			bad = append([]string{h.name}, path...)
			break
		}
	}
	if bad == nil {
		for _, h := range w.held {
			d.edges[h.id][g.id] = true
		}
	}
	d.mu.Unlock()
	if bad != nil {
		d.report(&Violation{Cycle: bad})
	}
}

// pathLocked returns the guard-name path from a to b through recorded
// edges, or nil. Caller holds d.mu.
func (d *Dep) pathLocked(a, b int) []string {
	visited := make([]bool, len(d.guards))
	var dfs func(cur int, acc []string) []string
	dfs = func(cur int, acc []string) []string {
		if cur == b {
			return append(acc, d.guards[cur].name)
		}
		if visited[cur] {
			return nil
		}
		visited[cur] = true
		for nxt := range d.edges[cur] {
			if p := dfs(nxt, append(acc, d.guards[cur].name)); p != nil {
				return p
			}
		}
		return nil
	}
	return dfs(a, nil)
}

func (d *Dep) report(v *Violation) {
	if d.OnViolation != nil {
		d.OnViolation(v)
		return
	}
	panic(v.Error())
}
