package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/pad"
)

// WaitElement is the per-worker waiting element for the pointer-Gate
// variants (Lock, FairLock). A worker waits on at most one lock at a
// time, so a single element per worker suffices regardless of how many
// locks the worker holds (§2, §5 "plural locking").
//
// Gate doubles as the wakeup flag and the channel through which the
// end-of-segment address propagates toward the tail of the entry
// segment: nil means "keep waiting"; any other value grants ownership
// and identifies the segment terminus.
type WaitElement struct {
	gate     atomic.Pointer[WaitElement]
	deferred atomic.Pointer[WaitElement] // used only by FairLock
	_        [pad.SectorSize - 16]byte
}

// lockedEmptySentinel is the Go rendering of the paper's LOCKEDEMPTY
// encoding (the tagged value 1): a distinguished, never-dereferenced
// element address meaning "locked, arrival segment empty". A single
// process-wide sentinel serves every lock instance, as the constant 1
// does in C++.
var lockedEmptySentinel WaitElement

// LockedEmpty returns the distinguished locked-with-empty-arrivals
// marker. Exported within the package tree for tests and diagnostics.
func LockedEmpty() *WaitElement { return &lockedEmptySentinel }

// elementPool recycles wait elements for the convenience Lock/Unlock
// API. Elements re-enter the pool only at Unlock time — never at the
// end of Acquire — which preserves the TLS-singleton lifecycle rule
// the algorithm's zombie end-of-segment reasoning depends on (see the
// package comment).
var elementPool = sync.Pool{New: func() any { return new(WaitElement) }}

func getElement() *WaitElement  { return elementPool.Get().(*WaitElement) }
func putElement(e *WaitElement) { elementPool.Put(e) }

// flagElement is the element type for variants whose Gate is a plain
// flag (SimplifiedLock, RelayLock, CombinedLock): Listings 2, 3, 5, 6
// use std::atomic<int> Gate. The eos field exists for the variants
// that convey the terminus through the element (Listings 5 and 6) and
// is ignored by the others.
type flagElement struct {
	gate atomic.Uint32
	_    [pad.CacheLineSize - 4]byte
	eos  atomic.Pointer[flagElement]
	_    [pad.CacheLineSize - 8]byte
}

// flagLockedEmpty mirrors lockedEmptySentinel for flagElement-based
// variants.
var flagLockedEmptySentinel flagElement

var flagElementPool = sync.Pool{New: func() any { return new(flagElement) }}

func getFlagElement() *flagElement { return flagElementPool.Get().(*flagElement) }
func putFlagElement(e *flagElement) {
	flagElementPool.Put(e)
}
