package core

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// Parked waiters must actually block (no busy CPU burn) and still be
// woken promptly on release.
func TestParkingWakesPromptly(t *testing.T) {
	l := &SimplifiedLock{Park: true}
	l.Lock()
	released := make(chan time.Duration, 1)
	go func() {
		start := time.Now()
		l.Lock()
		released <- time.Since(start)
		l.Unlock()
	}()
	// Give the waiter time to spin out and park.
	time.Sleep(20 * time.Millisecond)
	l.Unlock()
	select {
	case <-released:
	case <-time.After(10 * time.Second):
		t.Fatal("parked waiter never woke")
	}
}

// Heavy contended churn with parking on: mutual exclusion, no lost
// wakeups across thousands of park/wake pairs.
func TestParkingContendedChurn(t *testing.T) {
	l := &SimplifiedLock{Park: true}
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Lock()
				counter++
				if i%8 == 0 {
					// Force queue buildup so waiters reach the
					// parking threshold.
					runtime.Gosched()
				}
				l.Unlock()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("parking lock lost a wakeup")
	}
	if counter != 8*2000 {
		t.Fatalf("counter = %d, want %d", counter, 8*2000)
	}
}

// Parking must interoperate with TryLock-held episodes.
func TestParkingBehindTryLock(t *testing.T) {
	l := &SimplifiedLock{Park: true}
	if !l.TryLock() {
		t.Fatal("TryLock failed")
	}
	done := make(chan struct{})
	go func() {
		l.Lock()
		l.Unlock()
		close(done)
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park
	l.Unlock()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("waiter parked behind TryLock never woke")
	}
}
