package core

import (
	"sync/atomic"

	"repro/internal/futex"
	"repro/internal/pad"
	"repro/internal/waiter"
)

// SimplifiedLock is the Listing 2 (Appendix E) variant the paper
// recommends implementors start from. The end-of-segment marker lives
// in a dedicated, sequestered word of the lock body instead of being
// conveyed through the wait elements, and the element Gate is a plain
// flag. The eos word is written only in the Acquire phase and is
// stable under steady-state sustained contention, so it generates no
// coherence misses in that regime.
//
// The zero value is an unlocked lock ready for use.
type SimplifiedLock struct {
	arrivals atomic.Pointer[flagElement]
	_        [pad.SectorSize - 8]byte

	// eos is the terminus end-of-segment sentinel, sequestered on its
	// own sector (Listing 2 line 10). NEMO (the flag-element
	// LOCKEDEMPTY sentinel) marks "no zombie terminus".
	eos atomic.Pointer[flagElement]
	_   [pad.SectorSize - 8]byte

	// Owner-owned context for the Lock/Unlock interface.
	succ *flagElement
	cur  *flagElement

	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock

	// Park enables futex-style address-based waiting (§8 "polite
	// waiting"): after a short adaptive spin, waiters block on their
	// gate address and releases post a wake. Constant-time paths make
	// this safe — a waiter has exactly one waiting phase and one
	// condition, so the park/wake pairing is one-to-one.
	Park bool
}

// nemo is Listing 2's NEMO sentinel (encoded as 1 in C++): locked with
// an empty, previously detached arrival list.
func nemo() *flagElement { return &flagLockedEmptySentinel }

// Acquire enters the lock with the supplied element and returns the
// successor context for Release.
func (l *SimplifiedLock) Acquire(e *flagElement) *flagElement {
	e.gate.Store(0)
	succ := l.arrivals.Swap(e)
	siteSArriveAcquire.Hit()
	if succ == nil {
		// Fast-path uncontended acquire: publish our element as the
		// segment terminus (Listing 2 line 23).
		l.eos.Store(e)
		return nil
	}
	// Coerce NEMO to nil: no predecessor on this segment.
	if succ == nemo() {
		succ = nil
	}
	w := waiter.NewClocked(l.Policy, l.Clk)
	for e.gate.Load() == 0 {
		if l.Park && w.Spins() >= parkThreshold {
			// A futex park bypasses Pause, so report it to the
			// telemetry sink directly; each (re-)park counts once.
			if s := w.Sink(); s != nil {
				s.CountPark()
			}
			futex.Wait(&e.gate, 0)
			continue
		}
		w.Pause()
	}
	// Check for the eos-terminated entry segment chain. Crucially the
	// eos word does not change under sustained contention, so this
	// load tends to hit in-cache.
	veos := l.eos.Load()
	if succ == veos && succ != nil {
		succ = nil
		l.eos.Store(nemo())
	}
	return succ
}

// Release exits the lock; succ must be the value returned by the
// matching Acquire and e the element passed to it.
func (l *SimplifiedLock) Release(succ, e *flagElement) {
	if succ != nil {
		// Entry list populated: appoint the successor.
		l.grant(succ)
		return
	}
	for {
		// Entry list empty: try the uncontended fast-path unlock.
		k := l.arrivals.Load()
		if k == e || k == nemo() {
			if l.arrivals.CompareAndSwap(k, nil) {
				return
			}
		}
		// Arrivals populated: detach the segment and grant its head.
		siteSDetachRelease.Hit()
		w := l.arrivals.Swap(nemo())
		if w != e && w != nemo() {
			l.grant(w)
			return
		}
		// Bounded waiters self-removed the arrival stack back down to
		// our own fast-path marker between the load and the detach (see
		// bounded.go); granting it would wedge the lock. The marker is
		// now off the stack, so its prospective-terminus registration
		// in the eos word is stale — clear it, then retry the unlock
		// against the NEMO root the Swap installed.
		l.eos.Store(nemo())
	}
}

// parkThreshold is the spin budget before a parking waiter blocks.
const parkThreshold = 64

// grant conveys ownership, waking a parked waiter when parking is on.
// The store-then-wake order plus futex.Wait's compare-under-lock makes
// the pairing lose-free.
func (l *SimplifiedLock) grant(succ *flagElement) {
	siteSGrant.Hit()
	succ.gate.Store(1)
	if l.Park {
		futex.Wake(&succ.gate, 1)
	}
}

// Lock acquires l (sync.Locker).
func (l *SimplifiedLock) Lock() {
	e := getFlagElement()
	l.succ, l.cur = l.Acquire(e), e
}

// Unlock releases l (sync.Locker).
func (l *SimplifiedLock) Unlock() {
	succ, e := l.succ, l.cur
	l.succ, l.cur = nil, nil
	l.Release(succ, e)
	if e != nil {
		putFlagElement(e)
	}
}

// TryLock attempts a non-blocking acquire.
func (l *SimplifiedLock) TryLock() bool {
	if siteSTryLock.Fail() {
		return false
	}
	if l.arrivals.CompareAndSwap(nil, nemo()) {
		// Keep the eos word consistent with "no zombie terminus" so a
		// waiter that queues behind this episode cannot observe a
		// stale marker.
		l.eos.Store(nemo())
		l.succ, l.cur = nil, nil
		return true
	}
	return false
}

// Locked reports whether the lock was held at the instant of the load.
func (l *SimplifiedLock) Locked() bool { return l.arrivals.Load() != nil }
