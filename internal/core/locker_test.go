package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// tryLocker is implemented by the variants that support TryLock.
type tryLocker interface {
	sync.Locker
	TryLock() bool
}

// variants enumerates every lock implemented by this package; each
// test case gets fresh instances via the factory.
func variants() []struct {
	name string
	mk   func() sync.Locker
} {
	return []struct {
		name string
		mk   func() sync.Locker
	}{
		{"Reciprocating", func() sync.Locker { return new(Lock) }},
		{"Simplified", func() sync.Locker { return new(SimplifiedLock) }},
		{"SimplifiedPark", func() sync.Locker { return &SimplifiedLock{Park: true} }},
		{"Relay", func() sync.Locker { return new(RelayLock) }},
		{"FetchAdd", func() sync.Locker { return new(FetchAddLock) }},
		{"SimplifiedEOS", func() sync.Locker { return new(SimplifiedEOSLock) }},
		{"Combined", func() sync.Locker { return new(CombinedLock) }},
		{"Gated", func() sync.Locker { return new(GatedLock) }},
		{"TwoLane", func() sync.Locker { return new(TwoLaneLock) }},
		{"Fair", func() sync.Locker { return new(FairLock) }},
		{"FairAlways", func() sync.Locker { return &FairLock{DeferProb: 256} }},
		{"CTR", func() sync.Locker { return new(CTRLock) }},
	}
}

// Mutual exclusion: concurrent increments of an unguarded counter must
// never be lost, and at most one goroutine may be inside the critical
// section. Run under -race this also validates the happens-before
// edges of the handoff protocol.
func TestMutualExclusion(t *testing.T) {
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			l := v.mk()
			const goroutines = 8
			const iters = 3000
			var counter int // deliberately unguarded by atomics
			var inside int32
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						l.Lock()
						inside++
						if inside != 1 {
							panic("mutual exclusion violated")
						}
						counter++
						inside--
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			if counter != goroutines*iters {
				t.Fatalf("counter = %d, want %d (lost updates)", counter, goroutines*iters)
			}
		})
	}
}

// A single goroutine must be able to lock and unlock repeatedly with
// no interference (uncontended fast paths).
func TestUncontendedCycle(t *testing.T) {
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			l := v.mk()
			for i := 0; i < 10000; i++ {
				l.Lock()
				l.Unlock()
			}
		})
	}
}

// Plural locking (§5): one thread holds many distinct locks at once
// and releases them in an arbitrary, non-LIFO order. Exceeds the Linux
// MAX_LOCK_DEPTH anecdote of 40.
func TestPluralLockingImbalancedRelease(t *testing.T) {
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			const depth = 48
			locks := make([]sync.Locker, depth)
			for i := range locks {
				locks[i] = v.mk()
			}
			rng := rand.New(rand.NewSource(1))
			for round := 0; round < 50; round++ {
				for _, l := range locks {
					l.Lock()
				}
				// Release in a random (generally non-LIFO) order.
				perm := rng.Perm(depth)
				for _, i := range perm {
					locks[i].Unlock()
				}
			}
		})
	}
}

// Acquire in one function, release in another (common kernel pattern
// the paper calls out): exercised via closures crossing frames.
func TestLockCrossesFrames(t *testing.T) {
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			l := v.mk()
			acquire := func() { l.Lock() }
			release := func() { l.Unlock() }
			for i := 0; i < 1000; i++ {
				acquire()
				release()
			}
		})
	}
}

// Lock handoff chain: the holder releases into a set of known waiters;
// every waiter must eventually run.
func TestAllWaitersEventuallyAdmitted(t *testing.T) {
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			l := v.mk()
			const waiters = 16
			l.Lock()
			var started, finished sync.WaitGroup
			for i := 0; i < waiters; i++ {
				started.Add(1)
				finished.Add(1)
				go func() {
					started.Done()
					l.Lock()
					l.Unlock()
					finished.Done()
				}()
			}
			started.Wait()
			time.Sleep(10 * time.Millisecond) // let waiters enqueue
			l.Unlock()
			done := make(chan struct{})
			go func() { finished.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("waiters starved after release")
			}
		})
	}
}

// Hammer the lock with goroutine churn: new goroutines constantly
// arrive, lock once, and exit — dynamic thread creation/destruction
// per §5's "large numbers of extant threads".
func TestGoroutineChurn(t *testing.T) {
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			l := v.mk()
			var wg sync.WaitGroup
			shared := 0
			for i := 0; i < 400; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					l.Lock()
					shared++
					l.Unlock()
				}()
			}
			wg.Wait()
			if shared != 400 {
				t.Fatalf("shared = %d, want 400", shared)
			}
		})
	}
}

// Many lock instances created and abandoned dynamically (§5: support
// for large numbers of extant locks; trivial constructors mean
// abandonment must not leak or corrupt).
func TestManyDynamicLocks(t *testing.T) {
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						l := v.mk()
						l.Lock()
						l.Unlock()
						// abandoned: no destructor exists to call
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TryLock semantics for the variants that provide it.
func TestTryLock(t *testing.T) {
	mks := []struct {
		name string
		mk   func() tryLocker
	}{
		{"Reciprocating", func() tryLocker { return new(Lock) }},
		{"Simplified", func() tryLocker { return new(SimplifiedLock) }},
		{"Relay", func() tryLocker { return new(RelayLock) }},
		{"FetchAdd", func() tryLocker { return new(FetchAddLock) }},
		{"SimplifiedEOS", func() tryLocker { return new(SimplifiedEOSLock) }},
		{"Combined", func() tryLocker { return new(CombinedLock) }},
		{"Fair", func() tryLocker { return new(FairLock) }},
	}
	for _, m := range mks {
		m := m
		t.Run(m.name, func(t *testing.T) {
			l := m.mk()
			if !l.TryLock() {
				t.Fatal("TryLock on free lock failed")
			}
			if l.TryLock() {
				t.Fatal("TryLock on held lock succeeded")
			}
			l.Unlock()
			if !l.TryLock() {
				t.Fatal("TryLock after unlock failed")
			}
			// Waiters enqueued behind a TryLock-held lock must be
			// granted on release.
			done := make(chan struct{})
			go func() {
				l.Lock()
				l.Unlock()
				close(done)
			}()
			time.Sleep(5 * time.Millisecond)
			l.Unlock()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("waiter behind TryLock-held lock starved")
			}
		})
	}
}

// Mixed TryLock / Lock contention must preserve mutual exclusion.
func TestTryLockMixedContention(t *testing.T) {
	mks := []struct {
		name string
		mk   func() tryLocker
	}{
		{"Reciprocating", func() tryLocker { return new(Lock) }},
		{"Simplified", func() tryLocker { return new(SimplifiedLock) }},
		{"Relay", func() tryLocker { return new(RelayLock) }},
		{"FetchAdd", func() tryLocker { return new(FetchAddLock) }},
		{"SimplifiedEOS", func() tryLocker { return new(SimplifiedEOSLock) }},
		{"Combined", func() tryLocker { return new(CombinedLock) }},
		{"Fair", func() tryLocker { return new(FairLock) }},
	}
	for _, m := range mks {
		m := m
		t.Run(m.name, func(t *testing.T) {
			l := m.mk()
			counter := 0
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 1500; i++ {
						if g%2 == 0 || !l.TryLock() {
							l.Lock()
						}
						counter++
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			if counter != 6*1500 {
				t.Fatalf("counter = %d, want %d", counter, 6*1500)
			}
		})
	}
}

// A goroutine must be able to interleave episodes on two locks using
// the same general pattern a pthread would with one TLS element: the
// Lock/Unlock API draws fresh pool elements, and the explicit API
// reuses one element sequentially.
func TestTwoLocksAlternating(t *testing.T) {
	var a, b Lock
	e := new(WaitElement)
	for i := 0; i < 2000; i++ {
		ta := a.Acquire(e)
		a.Release(ta)
		tb := b.Acquire(e)
		b.Release(tb)
	}
	if a.Locked() || b.Locked() {
		t.Fatal("locks left held")
	}
}

// Nested holds: acquire A then B with separate elements (plural
// locking via the explicit API — one element per lock episode in
// flight is required while both are held... the paper's singleton
// suffices because the element is only needed while *waiting*; the
// token API allows the element to be reused as soon as Acquire
// returns only if no zombie hazard exists, so we use distinct
// elements here, matching the implementation's pool behavior).
func TestNestedHoldsExplicitAPI(t *testing.T) {
	var a, b Lock
	ea, eb := new(WaitElement), new(WaitElement)
	for i := 0; i < 2000; i++ {
		ta := a.Acquire(ea)
		tb := b.Acquire(eb)
		b.Release(tb)
		a.Release(ta)
	}
}

func TestLockedDiagnostics(t *testing.T) {
	type lockedReporter interface {
		sync.Locker
		Locked() bool
	}
	mks := []struct {
		name string
		mk   func() lockedReporter
	}{
		{"Reciprocating", func() lockedReporter { return new(Lock) }},
		{"Simplified", func() lockedReporter { return new(SimplifiedLock) }},
		{"Relay", func() lockedReporter { return new(RelayLock) }},
		{"FetchAdd", func() lockedReporter { return new(FetchAddLock) }},
		{"SimplifiedEOS", func() lockedReporter { return new(SimplifiedEOSLock) }},
		{"Combined", func() lockedReporter { return new(CombinedLock) }},
		{"Gated", func() lockedReporter { return new(GatedLock) }},
		{"Fair", func() lockedReporter { return new(FairLock) }},
	}
	for _, m := range mks {
		m := m
		t.Run(m.name, func(t *testing.T) {
			l := m.mk()
			if l.Locked() {
				t.Fatal("fresh lock reports held")
			}
			l.Lock()
			if !l.Locked() {
				t.Fatal("held lock reports free")
			}
			l.Unlock()
			if l.Locked() {
				t.Fatal("released lock reports held")
			}
		})
	}
}

// Randomized stress: random critical/non-critical section lengths,
// random per-goroutine iteration counts. Shape mirrors MutexBench.
func TestRandomizedStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			l := v.mk()
			var shared [4]uint64
			var wg sync.WaitGroup
			total := 0
			var mu sync.Mutex
			for g := 0; g < 10; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					n := 500 + rng.Intn(1500)
					for i := 0; i < n; i++ {
						l.Lock()
						// Critical section touching several lines.
						for j := range shared {
							shared[j]++
						}
						l.Unlock()
						if rng.Intn(4) == 0 {
							time.Sleep(time.Microsecond)
						}
					}
					mu.Lock()
					total += n
					mu.Unlock()
				}()
			}
			wg.Wait()
			for j := range shared {
				if shared[j] != uint64(total) {
					t.Fatalf("slot %d = %d, want %d", j, shared[j], total)
				}
			}
		})
	}
}

func BenchmarkUncontendedVariants(b *testing.B) {
	for _, v := range variants() {
		v := v
		b.Run(v.name, func(b *testing.B) {
			l := v.mk()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l.Lock()
				l.Unlock()
			}
		})
	}
}

func ExampleLock() {
	var l Lock
	var wg sync.WaitGroup
	counter := 0
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	fmt.Println(counter)
	// Output: 4000
}
