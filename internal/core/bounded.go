package core

import (
	"context"
	"time"

	"repro/internal/bounded"
	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/futex"
	"repro/internal/waiter"
)

// Bounded (cancellable) acquisition for the canonical Reciprocating
// variants. The admission chain makes abandonment the algorithm's
// hardest robustness question: a waiter's element address is live
// context — it is the CAS comparand of the next arrival's succ link
// and may become an end-of-segment marker — so a waiter cannot simply
// leave. Two exits exist, in preference order:
//
//  1. Self-removal. While arrivals still equals our element e, no
//     later thread has swapped over us, so nobody captured e as a
//     successor and no release detached a segment containing e. The
//     doorway was a Swap(tail→e); CompareAndSwap(e→tail) is its exact
//     inverse and linearizes against both arrivals (Swap) and releases
//     (detach-Swap / fast-path CAS). One restriction: the displaced
//     tail must be a real element. Restoring LOCKEDEMPTY can interleave
//     between a releaser's failed fast-path CAS and its detach Swap,
//     handing the releaser the un-grantable sentinel and losing the
//     wakeup — and a waiter that displaced LOCKEDEMPTY is the entire
//     entry segment, so the very next release must grant it anyway.
//  2. Accept-then-release. Once published (buried by a later arrival,
//     or self-removal forbidden by rule 1), the waiter degrades to
//     accepting the eventual grant — performing the full terminus
//     bookkeeping — and immediately releasing, reporting failure. The
//     succession invariants are preserved because the abandoning
//     thread is, for one instant, an ordinary owner.
//
// A buried waiter retries self-removal while waiting: admission within
// a segment is LIFO, so the threads above it either self-remove
// (surfacing it back to the top of the arrivals stack) or are granted
// and release onto it; both resolutions are driven by live threads.

var (
	chArrive   = chaos.NewPoint("reciprocating.arrive")
	chGrant    = chaos.NewPoint("reciprocating.grant")
	chDetach   = chaos.NewPoint("reciprocating.detach")
	chTry      = chaos.NewPoint("reciprocating.trylock")
	chAbandon  = chaos.NewPoint("reciprocating.abandon")
	chSArrive  = chaos.NewPoint("simplified.arrive")
	chSGrant   = chaos.NewPoint("simplified.grant")
	chSDetach  = chaos.NewPoint("simplified.detach")
	chSTry     = chaos.NewPoint("simplified.trylock")
	chSAbandon = chaos.NewPoint("simplified.abandon")
)

// Labeled sites: several points serve more than one call site (the
// blocking and bounded acquire paths share arrival points; TryLock
// vetoes fire from three methods), so each call site hits the point
// through a label that stall/violation dumps can name.
var (
	siteArriveLock     = chArrive.Site("Lock.Acquire")
	siteArriveBounded  = chArrive.Site("Lock.lockBounded")
	siteGrantRelease   = chGrant.Site("Lock.Release")
	siteDetachRelease  = chDetach.Site("Lock.Release")
	siteTryLock        = chTry.Site("Lock.TryLock")
	siteTryLockFor     = chTry.Site("Lock.LockFor")
	siteTryFair        = chTry.Site("FairLock.TryLock")
	siteAbandonBounded = chAbandon.Site("Lock.lockBounded")
	siteSArriveAcquire = chSArrive.Site("SimplifiedLock.Acquire")
	siteSArriveBounded = chSArrive.Site("SimplifiedLock.lockBounded")
	siteSGrant         = chSGrant.Site("SimplifiedLock.grant")
	siteSDetachRelease = chSDetach.Site("SimplifiedLock.Release")
	siteSTryLock       = chSTry.Site("SimplifiedLock.TryLock")
	siteSTryLockFor    = chSTry.Site("SimplifiedLock.LockFor")
	siteSAbandon       = chSAbandon.Site("tryAbandonSimplified")
)

// Interface conformance: the canonical variants satisfy the
// repository-wide bounded contract.
var (
	_ bounded.Locker = (*Lock)(nil)
	_ bounded.Locker = (*SimplifiedLock)(nil)
)

// LockFor acquires l like Lock but gives up after d, reporting whether
// the lock was acquired. LockFor(0) is equivalent to TryLock. A false
// return guarantees the caller does not hold the lock and left no
// residue in the admission chain that could block other threads.
func (l *Lock) LockFor(d time.Duration) bool {
	if siteTryLockFor.Fail() {
		return false
	}
	if d <= 0 {
		return l.TryLock()
	}
	return l.lockBounded(clock.Or(l.Clk).Now()+d, nil)
}

// LockCtx acquires l unless ctx is cancelled or expires first. It
// returns nil exactly when the lock was acquired.
func (l *Lock) LockCtx(ctx context.Context) error {
	return bounded.CtxFrom(l.Clk, ctx, l.lockBounded)
}

// lockBounded is the deadline/cancellation-aware acquire. On success
// it installs the owner context exactly as Lock does.
func (l *Lock) lockBounded(deadline time.Duration, done <-chan struct{}) bool {
	e := getElement()
	e.gate.Store(nil)
	var succ *WaitElement
	eos := e

	tail := l.arrivals.Swap(e)
	siteArriveBounded.Hit()
	if tail == nil {
		// Uncontended fast path: identical to Acquire.
		l.succ, l.eos, l.cur = nil, e, e
		return true
	}
	if tail != &lockedEmptySentinel {
		succ = tail
	}

	w := waiter.NewClocked(l.Policy, l.Clk)
	timedOut := false
	for {
		eos = e.gate.Load()
		if eos != nil {
			break
		}
		if timedOut {
			// Exit 1: self-removal, retried as threads above us in the
			// LIFO segment drain. Legal only when the displaced tail is
			// a real element (see the file comment).
			if tail != &lockedEmptySentinel && l.arrivals.Load() == e {
				siteAbandonBounded.Hit()
				if l.arrivals.CompareAndSwap(e, tail) {
					putElement(e)
					return false
				}
			}
			w.Pause()
			continue
		}
		if !w.PauseBounded(deadline, done) {
			timedOut = true
		}
	}

	// Granted. Normal terminus bookkeeping.
	if succ == eos {
		succ = nil
		eos = &lockedEmptySentinel
	}
	if timedOut {
		// Exit 2: accept-then-release — we are momentarily an ordinary
		// owner, so the standard Release preserves succession.
		l.Release(Token{succ: succ, eos: eos, elem: e})
		putElement(e)
		return false
	}
	l.succ, l.eos, l.cur = succ, eos, e
	return true
}

// LockFor acquires l like Lock but gives up after d, reporting whether
// the lock was acquired. LockFor(0) is equivalent to TryLock.
func (l *SimplifiedLock) LockFor(d time.Duration) bool {
	if siteSTryLockFor.Fail() {
		return false
	}
	if d <= 0 {
		return l.TryLock()
	}
	return l.lockBounded(clock.Or(l.Clk).Now()+d, nil)
}

// LockCtx acquires l unless ctx is cancelled or expires first. It
// returns nil exactly when the lock was acquired.
func (l *SimplifiedLock) LockCtx(ctx context.Context) error {
	return bounded.CtxFrom(l.Clk, ctx, l.lockBounded)
}

// lockBounded mirrors (*Lock).lockBounded for the Listing 2 layout:
// the same two abandonment exits, with NEMO in the LOCKEDEMPTY role
// and the sequestered eos word handled as in Acquire. In Park mode a
// bounded waiter blocks with futex.WaitTimeout in short slices so the
// deadline and done channel stay honored without a dedicated wakeup
// from the releaser.
func (l *SimplifiedLock) lockBounded(deadline time.Duration, done <-chan struct{}) bool {
	e := getFlagElement()
	e.gate.Store(0)

	succRaw := l.arrivals.Swap(e)
	siteSArriveBounded.Hit()
	if succRaw == nil {
		l.eos.Store(e)
		l.succ, l.cur = nil, e
		return true
	}
	succ := succRaw
	if succ == nemo() {
		succ = nil
	}

	w := waiter.NewClocked(l.Policy, l.Clk)
	timedOut := false
	for e.gate.Load() == 0 {
		if timedOut {
			if tryAbandonSimplified(l, e, succRaw) {
				putFlagElement(e)
				return false
			}
			if l.Park && w.Spins() >= parkThreshold {
				if s := w.Sink(); s != nil {
					s.CountPark()
				}
				futex.Wait(&e.gate, 0)
				continue
			}
			w.Pause()
			continue
		}
		if l.Park && w.Spins() >= parkThreshold {
			if s := w.Sink(); s != nil {
				s.CountPark()
			}
			// Parked bounded waiting: slice the sleep so cancellation
			// is observed promptly even though releases only post one
			// wake per grant.
			slice := parkSlice
			if deadline != 0 {
				if rem := deadline - clock.Or(l.Clk).Now(); rem <= 0 {
					timedOut = true
					continue
				} else if rem < slice {
					slice = rem
				}
			}
			if done != nil {
				select {
				case <-done:
					timedOut = true
					continue
				default:
				}
			}
			futex.WaitTimeoutClock(&e.gate, 0, slice, l.Clk)
			continue
		}
		if !w.PauseBounded(deadline, done) {
			timedOut = true
		}
	}

	veos := l.eos.Load()
	if succ == veos && succ != nil {
		succ = nil
		l.eos.Store(nemo())
	}
	if timedOut {
		l.Release(succ, e)
		putFlagElement(e)
		return false
	}
	l.succ, l.cur = succ, e
	return true
}

// parkSlice bounds one futex sleep of a bounded parked waiter.
const parkSlice = 100 * time.Microsecond

// tryAbandonSimplified attempts the self-removal exit for e, which
// displaced succRaw at arrival. Same legality rule as the canonical
// variant: never restore the NEMO sentinel.
func tryAbandonSimplified(l *SimplifiedLock, e, succRaw *flagElement) bool {
	if succRaw == nemo() || l.arrivals.Load() != e {
		return false
	}
	siteSAbandon.Hit()
	return l.arrivals.CompareAndSwap(e, succRaw)
}
