package core

import (
	"sync/atomic"

	"repro/internal/waiter"
)

// Lock is the canonical Reciprocating Lock of Listing 1.
//
// The lock consists of a single arrival word. Context passed from the
// acquire phase to the matching release (the successor on the entry
// segment and the end-of-segment marker) is kept in owner-owned words
// of the lock body, as in the paper's pthread implementation; the
// Token API variants keep that context with the caller instead, making
// the lock body effectively one word.
//
// The zero value is an unlocked lock ready for use; no constructor or
// destructor is required (§5, §6 "Explicit CTOR/DTOR Required").
type Lock struct {
	arrivals atomic.Pointer[WaitElement]

	// Owner-owned context (protected by the lock itself): the entry-
	// segment successor and end-of-segment marker for the current
	// holder, plus the pool element to recycle at Unlock.
	succ *WaitElement
	eos  *WaitElement
	cur  *WaitElement

	// Policy selects the busy-wait strategy; the zero value is the
	// adaptive spin-then-yield policy.
	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock

	// PoliteRelease conditions the release-path CAS on an immediate
	// prior load, reducing futile CAS attempts when new arrivals are
	// already visible. The paper measured this optimization and found
	// no observable benefit (§4), leaving it off by default; it is
	// kept here for the ablation benchmarks.
	PoliteRelease bool
}

// Token carries acquire-to-release context for the allocation-free
// API, mirroring the succ/eos locals that Listing 1 threads through
// its critical-section lambda.
type Token struct {
	succ *WaitElement
	eos  *WaitElement
	elem *WaitElement
}

// Acquire enters the lock using the caller-supplied wait element e and
// returns the context token that must be passed to Release. The
// element may be reused for another Acquire (on any lock) only after
// the corresponding Release has returned.
func (l *Lock) Acquire(e *WaitElement) Token {
	// Listing 1 line 17: re-arm the gate before publication.
	e.gate.Store(nil)
	var succ *WaitElement
	eos := e // anticipate uncontended fast path (line 19)

	tail := l.arrivals.Swap(e) // the doorway: one wait-free exchange
	siteArriveLock.Hit()
	if tail != nil {
		// Contention. Coerce LOCKEDEMPTY to nil (line 25): the
		// sentinel means "no successor precedes us on this segment".
		if tail != &lockedEmptySentinel {
			succ = tail
		}

		// Waiting phase: local spinning on our own element. The
		// eventual non-nil Gate value both grants ownership and
		// conveys the end-of-segment address.
		w := waiter.NewClocked(l.Policy, l.Clk)
		for {
			eos = e.gate.Load()
			if eos != nil {
				break
			}
			w.Pause()
		}

		// Detect the logical end-of-segment sentinel (line 37): if
		// our successor is the segment terminus — possibly a zombie
		// element buried on the arrival stack — the entry segment is
		// exhausted after us.
		if succ == eos {
			succ = nil
			eos = &lockedEmptySentinel
		}
	}
	return Token{succ: succ, eos: eos, elem: e}
}

// Release exits the lock using the context produced by Acquire.
func (l *Lock) Release(t Token) {
	if t.succ != nil {
		// Entry segment populated: grant the successor, propagating
		// the end-of-segment identity toward the tail (line 58).
		siteGrantRelease.Hit()
		t.succ.gate.Store(t.eos)
		return
	}

	// Entry segment empty; eos is our unlock marker — our own element
	// (fast-path acquire) or LOCKEDEMPTY (granted at a segment end).
	eos := t.eos
	for {
		// Try the uncontended fast-path unlock: the arrival word still
		// holds the marker, and reverting it to nil unlocks (line 66).
		if !l.PoliteRelease || l.arrivals.Load() == eos {
			if l.arrivals.CompareAndSwap(eos, nil) {
				return
			}
		}

		// Threads arrived and pushed onto the arrival stack. Detach the
		// whole segment — it becomes the next entry segment — and grant
		// its head, conveying the end-of-segment marker (lines 73-76).
		// Only the lock holder ever detaches, which is what makes the
		// pop-stack A-B-A immune. (The chaos point sits in the window
		// between the failed fast-path CAS and the detach Swap — the
		// window bounded abandonment must respect; see bounded.go.)
		siteDetachRelease.Hit()
		w := l.arrivals.Swap(&lockedEmptySentinel)
		if w != eos && w != &lockedEmptySentinel {
			w.gate.Store(eos)
			return
		}
		// Bounded waiters self-removed the stack back down to our own
		// marker between the failed CAS and the detach (see bounded.go:
		// a waiter may restore the tail it displaced). The marker — and
		// the zombie-terminus role it carried — is now off the stack,
		// whose root became LOCKEDEMPTY with the Swap above; granting
		// it would wedge the lock. Retry the unlock with the sentinel
		// as both the comparand and the conveyed end-of-segment.
		eos = &lockedEmptySentinel
	}
}

// Lock acquires l, drawing a wait element from the internal pool. It
// implements sync.Locker together with Unlock.
func (l *Lock) Lock() {
	e := getElement()
	t := l.Acquire(e)
	// Owner-owned context: safe to store in plain fields; successive
	// owners are ordered by the Gate/arrival-word atomics.
	l.succ, l.eos, l.cur = t.succ, t.eos, t.elem
}

// Unlock releases l. It must be called by the holder.
func (l *Lock) Unlock() {
	t := Token{succ: l.succ, eos: l.eos, elem: l.cur}
	l.succ, l.eos, l.cur = nil, nil, nil
	l.Release(t)
	// Recycle only after Release completes: the element's address may
	// have been live context (CAS expectation or eos marker) until
	// just now. TryLock acquisitions have no element.
	if t.elem != nil {
		putElement(t.elem)
	}
}

// TryLock attempts to acquire the lock without waiting and reports
// whether it succeeded. A successful TryLock leaves the arrival word
// in the LOCKEDEMPTY state, which the normal Release path reverts.
func (l *Lock) TryLock() bool {
	if siteTryLock.Fail() {
		return false
	}
	if l.arrivals.CompareAndSwap(nil, &lockedEmptySentinel) {
		l.succ, l.eos, l.cur = nil, &lockedEmptySentinel, nil
		return true
	}
	return false
}

// Locked reports whether the lock was held at the instant of the
// load. Intended for tests and diagnostics only.
func (l *Lock) Locked() bool { return l.arrivals.Load() != nil }

// Do runs fn while holding the lock, mirroring the paper's
// critical-section-as-lambda interface (Listing 1's operator+). The
// caller supplies the wait element, enabling allocation-free episodes.
func (l *Lock) Do(e *WaitElement, fn func()) {
	t := l.Acquire(e)
	fn()
	l.Release(t)
}
