//go:build race

package core

// raceEnabled reports whether the race detector is active. Under the
// race detector sync.Pool intentionally drops items to shake out
// lifecycle bugs, which perturbs pool-recycling expectations in tests.
const raceEnabled = true
