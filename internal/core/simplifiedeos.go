package core

import (
	"sync/atomic"

	"repro/internal/pad"
	"repro/internal/waiter"
)

// SimplifiedEOSLock is the Listing 5 variant: the tagged fetch-add
// arrival word of Listing 4, but on an arrival race the owner retains
// the lock — the freshly detached chain becomes its entry segment and
// the owner plants its own buried element's identity in the head's
// eos field as the chain's logical end-of-segment marker. The marker
// is consulted and propagated only in that rare onset-of-contention
// case; eos is always nil in steady state, so no coherence traffic is
// generated for it under sustained contention.
//
// The zero value is an unlocked lock ready for use.
type SimplifiedEOSLock struct {
	arrivals atomic.Uint64
	_        [pad.SectorSize - 8]byte

	succ *taggedElement
	cur  *taggedElement

	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock

	races atomic.Uint64
}

func (l *SimplifiedEOSLock) fetchAndMark() uint64 { return l.arrivals.Add(1) - 1 }

// Acquire enters the lock and returns the successor context for
// Release.
func (l *SimplifiedEOSLock) Acquire(e *taggedElement) *taggedElement {
	e.eos.Store(nil)
	e.gate.Store(0)
	prev := l.arrivals.Swap(encode(e))
	if prev == 0 || prev&tagUnlocked != 0 {
		// Uncontended acquisition.
		r := l.fetchAndMark()
		if r == encode(e) {
			return nil // fast path
		}
		// Arrival race: new threads pushed in the exchange/fetch-add
		// window; r heads the detached chain, our element is buried
		// at its distal end. Retain ownership; the chain becomes our
		// entry segment, terminated by our zombie element, whose
		// identity we convey through the head's eos field so the
		// penultimate waiter can recognize the logical end.
		l.races.Add(1)
		rElem := taggedReg.lookup(r >> 2)
		rElem.eos.Store(e)
		return rElem
	}

	succ := annulMarked(prev)
	w := waiter.NewClocked(l.Policy, l.Clk)
	for e.gate.Load() == 0 {
		w.Pause()
	}
	// Rare: set only when the initial owner raced at contention onset
	// and became a zombie terminus.
	if eos := e.eos.Load(); eos != nil {
		if eos == succ {
			succ = nil // segment ends at the zombie
		} else {
			succ.eos.Store(eos) // propagate toward the tail
		}
	}
	return succ
}

// Release exits the lock.
func (l *SimplifiedEOSLock) Release(succ *taggedElement) {
	if succ != nil {
		succ.gate.Store(1)
		return
	}
	old := l.fetchAndMark()
	if old&tagLockedDetached != 0 {
		return // detached+empty → unlocked
	}
	taggedReg.lookup(old >> 2).gate.Store(1)
}

// Lock acquires l (sync.Locker).
func (l *SimplifiedEOSLock) Lock() {
	e := getTaggedElement()
	l.succ, l.cur = l.Acquire(e), e
}

// Unlock releases l (sync.Locker).
func (l *SimplifiedEOSLock) Unlock() {
	succ, e := l.succ, l.cur
	l.succ, l.cur = nil, nil
	l.Release(succ)
	if e != nil {
		putTaggedElement(e)
	}
}

// TryLock attempts a non-blocking acquire.
func (l *SimplifiedEOSLock) TryLock() bool {
	v := l.arrivals.Load()
	if v != 0 && v&tagUnlocked == 0 {
		return false
	}
	if l.arrivals.CompareAndSwap(v, (v&^uint64(tagMask))|tagLockedDetached) {
		l.succ, l.cur = nil, nil
		return true
	}
	return false
}

// Races reports how many onset-of-contention races occurred.
func (l *SimplifiedEOSLock) Races() uint64 { return l.races.Load() }

// Locked reports whether the lock was held at the instant of the load.
func (l *SimplifiedEOSLock) Locked() bool {
	v := l.arrivals.Load()
	return v != 0 && v&tagUnlocked == 0
}
