package core

import (
	"testing"
	"unsafe"

	"repro/internal/pad"
)

// The paper sequesters waiting elements at 128-byte boundaries (§7).
// Element types must each occupy whole sectors so that pool-allocated
// neighbors never false-share.
func TestWaitElementSectorLayout(t *testing.T) {
	if got := unsafe.Sizeof(WaitElement{}); got != pad.SectorSize {
		t.Errorf("WaitElement size = %d, want %d", got, pad.SectorSize)
	}
	if got := unsafe.Sizeof(flagElement{}); got%pad.CacheLineSize != 0 {
		t.Errorf("flagElement size = %d, want line multiple", got)
	}
	if got := unsafe.Sizeof(gElement{}); got != pad.SectorSize {
		t.Errorf("gElement size = %d, want %d", got, pad.SectorSize)
	}
	if got := unsafe.Sizeof(taggedElement{}); got%pad.CacheLineSize != 0 {
		t.Errorf("taggedElement size = %d, want line multiple", got)
	}
}

// The flag element's gate and eos live on different cache lines, per
// the sequestration the Listing 2/5/6 variants assume.
func TestFlagElementFieldSeparation(t *testing.T) {
	var e flagElement
	gate := uintptr(unsafe.Pointer(&e.gate))
	eos := uintptr(unsafe.Pointer(&e.eos))
	if eos-gate < pad.CacheLineSize {
		t.Errorf("gate/eos separated by %d bytes, want >= %d", eos-gate, pad.CacheLineSize)
	}
}

// The core lock bodies stay compact: the arrival word plus owner
// context. The paper's Table 1 charges Reciprocating S=2 words; our
// Lock carries the arrival word plus three context words and a policy
// — still well under one cache line.
func TestLockBodyCompact(t *testing.T) {
	if got := unsafe.Sizeof(Lock{}); got > pad.CacheLineSize {
		t.Errorf("Lock body = %d bytes, want <= one line", got)
	}
	if got := unsafe.Sizeof(FetchAddLock{}); got > 3*pad.SectorSize {
		t.Errorf("FetchAddLock body = %d bytes", got)
	}
}
