package core

import (
	"sync/atomic"

	"repro/internal/pad"
	"repro/internal/waiter"
)

// CombinedLock is the Listing 6 variant, combining the double-swap
// arrival of Listing 3 with the per-element eos conveyance of Listing
// 5: on an arrival race the owner *retains* the lock (no abdication),
// adopts the freshly detached chain as its entry segment, and plants
// its own (now buried) element address as the chain's end-of-segment
// marker in the head element's eos field. The marker propagates toward
// the tail only in that rare onset-of-contention case; under sustained
// steady-state contention no eos stores occur at all.
//
// Only the successor needs to be passed from Acquire to Release. The
// zero value is an unlocked lock ready for use.
type CombinedLock struct {
	arrivals atomic.Pointer[flagElement]
	_        [pad.SectorSize - 8]byte

	succ *flagElement
	cur  *flagElement

	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock

	// races counts swap-swap window races (diagnostics/ablation).
	races atomic.Uint64
}

// Acquire enters the lock and returns the successor context for
// Release.
func (l *CombinedLock) Acquire(e *flagElement) *flagElement {
	e.eos.Store(nil)
	e.gate.Store(0)
	var succ *flagElement

	tail := l.arrivals.Swap(e)
	if tail == nil {
		// Fast path: we hold the lock; try to replace our element
		// with LOCKEDEMPTY.
		r := l.arrivals.Swap(nemo())
		if r != e {
			// Arrival race: r heads a detached chain with our element
			// buried at its distal end. Keep ownership, adopt the
			// chain as our entry segment, and convey our address as
			// its logical end-of-segment marker.
			l.races.Add(1)
			r.eos.Store(e)
			succ = r
		}
		return succ
	}

	// Contended slow path.
	if tail != nemo() {
		succ = tail
	}
	w := waiter.NewClocked(l.Policy, l.Clk)
	for e.gate.Load() == 0 {
		w.Pause()
	}
	// Rare: only at contention onset when the initial owner raced in
	// its swap-swap window and its element became a zombie terminus.
	if eos := e.eos.Load(); eos != nil {
		if eos == succ {
			// Our successor is the zombie: the segment ends here.
			succ = nil
		} else {
			// Propagate the marker toward the tail.
			succ.eos.Store(eos)
		}
	}
	return succ
}

// Release exits the lock.
func (l *CombinedLock) Release(succ *flagElement) {
	if succ == nil {
		// Entry list and (maybe) arrivals empty: fast-path unlock.
		if l.arrivals.CompareAndSwap(nemo(), nil) {
			return
		}
		// Detach a new arrival segment; its head becomes successor.
		succ = l.arrivals.Swap(nemo())
	}
	succ.gate.Store(1)
}

// Lock acquires l (sync.Locker).
func (l *CombinedLock) Lock() {
	e := getFlagElement()
	l.succ, l.cur = l.Acquire(e), e
}

// Unlock releases l (sync.Locker).
func (l *CombinedLock) Unlock() {
	succ, e := l.succ, l.cur
	l.succ, l.cur = nil, nil
	l.Release(succ)
	if e != nil {
		putFlagElement(e)
	}
}

// TryLock attempts a non-blocking acquire.
func (l *CombinedLock) TryLock() bool {
	if l.arrivals.CompareAndSwap(nil, nemo()) {
		l.succ, l.cur = nil, nil
		return true
	}
	return false
}

// Races reports how many swap-swap arrival races have occurred.
func (l *CombinedLock) Races() uint64 { return l.races.Load() }

// Locked reports whether the lock was held at the instant of the load.
func (l *CombinedLock) Locked() bool { return l.arrivals.Load() != nil }
