package core

import (
	"sync/atomic"

	"repro/internal/waiter"
)

// CTRLock explores the paper's §10 future-work direction: applying
// HemLock's CTR (coherence traffic reduction) waiting discipline to
// Reciprocating Locks.
//
// In the canonical Listing 1, a waiter (a) re-arms its Gate with a
// store at the top of Acquire (an S→M upgrade in steady state), then
// (b) busy-waits with plain loads, and the granted value is eventually
// consumed leaving the line in Shared state. Under CTR the waiter
// instead *consumes* the grant with an atomic exchange, swapping nil
// back into its own Gate the moment the grant is observed. The line
// then finishes the episode in Modified state in the waiter's cache,
// so the next episode's re-arm store is a local hit — the upgrade
// disappears from the steady-state path. On hardware with
// MONITOR/MWAIT (Intel) or WFE (ARM), the paper notes the same idea
// becomes "wait for invalidation of the line, then exchange to claim",
// avoiding all intermediate Shared→Modified transitions; the simulator
// twin of this lock (simlocks.ReciproCTR) models that form and drops
// the steady-state episode cost from 4 coherence events to 3.
//
// Semantics are identical to Lock in every other respect; the zero
// value is an unlocked lock.
type CTRLock struct {
	arrivals atomic.Pointer[WaitElement]

	succ *WaitElement
	eos  *WaitElement
	cur  *WaitElement

	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock
}

// Acquire enters the lock with the supplied element and returns the
// release token.
func (l *CTRLock) Acquire(e *WaitElement) Token {
	// CTR invariant: our Gate is already nil — either the element is
	// fresh, or the previous episode's consuming exchange reset it.
	// A cheap load guards pool elements that were last used by a
	// non-CTR lock.
	if e.gate.Load() != nil {
		e.gate.Store(nil)
	}
	var succ *WaitElement
	eos := e

	tail := l.arrivals.Swap(e)
	if tail != nil {
		if tail != &lockedEmptySentinel {
			succ = tail
		}
		// Wait politely, then consume the grant with an exchange so
		// the Gate line retires Modified in our cache.
		w := waiter.NewClocked(l.Policy, l.Clk)
		for {
			if e.gate.Load() != nil {
				eos = e.gate.Swap(nil)
				if eos != nil {
					break
				}
			}
			w.Pause()
		}
		if succ == eos {
			succ = nil
			eos = &lockedEmptySentinel
		}
	}
	return Token{succ: succ, eos: eos, elem: e}
}

// Release exits the lock (identical to Lock.Release).
func (l *CTRLock) Release(t Token) {
	if t.succ != nil {
		t.succ.gate.Store(t.eos)
		return
	}
	if l.arrivals.CompareAndSwap(t.eos, nil) {
		return
	}
	w := l.arrivals.Swap(&lockedEmptySentinel)
	w.gate.Store(t.eos)
}

// Lock acquires l (sync.Locker).
func (l *CTRLock) Lock() {
	e := getElement()
	t := l.Acquire(e)
	l.succ, l.eos, l.cur = t.succ, t.eos, t.elem
}

// Unlock releases l (sync.Locker).
func (l *CTRLock) Unlock() {
	t := Token{succ: l.succ, eos: l.eos, elem: l.cur}
	l.succ, l.eos, l.cur = nil, nil, nil
	l.Release(t)
	if t.elem != nil {
		putElement(t.elem)
	}
}

// TryLock attempts a non-blocking acquire.
func (l *CTRLock) TryLock() bool {
	if l.arrivals.CompareAndSwap(nil, &lockedEmptySentinel) {
		l.succ, l.eos, l.cur = nil, &lockedEmptySentinel, nil
		return true
	}
	return false
}

// Locked reports whether the lock was held at the instant of the load.
func (l *CTRLock) Locked() bool { return l.arrivals.Load() != nil }
