package core

import (
	"sync/atomic"

	"repro/internal/pad"
	"repro/internal/waiter"
)

// FetchAddLock is the Listing 4 variant: the arrival word is a tagged
// value whose low two bits form a state machine driven by fetch-add
// (arrived → detached → unlocked), eliminating both the LOCKEDEMPTY
// sentinel and end-of-segment conveyance. The Release path executes
// exactly one atomic operation. Arrival remains a single wait-free
// exchange (plus one fetch-add on the uncontended path).
//
// Like Listing 3, an arrival race in the exchange/fetch-add window is
// resolved by delegating ownership to the head of the freshly detached
// segment and joining the waiters.
//
// The zero value is an unlocked lock ready for use.
type FetchAddLock struct {
	arrivals atomic.Uint64
	_        [pad.SectorSize - 8]byte

	succ *taggedElement
	cur  *taggedElement

	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock

	delegations atomic.Uint64
}

// fetchAndMark is Listing 4's FetchAndMark: atomically increment the
// arrival word's tag, returning the prior word. It converts
// locked+arrived to locked+detached, and locked+detached to unlocked.
func (l *FetchAddLock) fetchAndMark() uint64 { return l.arrivals.Add(1) - 1 }

// Acquire enters the lock and returns the successor context for
// Release.
func (l *FetchAddLock) Acquire(e *taggedElement) *taggedElement {
	e.gate.Store(0)
	prev := l.arrivals.Swap(encode(e))
	if prev == 0 || prev&tagUnlocked != 0 {
		// Uncontended acquisition: the exchange moved the word from
		// unlocked to locked+arrived. Mark the stack detached,
		// extracting our own element if nothing raced in.
		r := l.fetchAndMark()
		if r == encode(e) {
			return nil // fast path
		}
		// New arrivals landed in the exchange/fetch-add window; r
		// heads the detached segment and our element lies buried at
		// its distal end. Delegate ownership to r and wait for
		// natural succession to reach us.
		l.delegations.Add(1)
		rElem := taggedReg.lookup(r >> 2)
		rElem.gate.Store(1)
		// Our successor is nil: we terminate the detached segment.
		l.waitGate(e)
		return nil
	}
	succ := annulMarked(prev)
	l.waitGate(e)
	return succ
}

func (l *FetchAddLock) waitGate(e *taggedElement) {
	w := waiter.NewClocked(l.Policy, l.Clk)
	for e.gate.Load() == 0 {
		w.Pause()
	}
}

// Release exits the lock with a single atomic in every case.
func (l *FetchAddLock) Release(succ *taggedElement) {
	if succ == nil {
		old := l.fetchAndMark()
		if old&tagLockedDetached != 0 {
			return // detached+empty → unlocked
		}
		// We just detached fresh arrivals; grant the head.
		succ = taggedReg.lookup(old >> 2)
	}
	succ.gate.Store(1)
}

// Lock acquires l (sync.Locker).
func (l *FetchAddLock) Lock() {
	e := getTaggedElement()
	l.succ, l.cur = l.Acquire(e), e
}

// Unlock releases l (sync.Locker).
func (l *FetchAddLock) Unlock() {
	succ, e := l.succ, l.cur
	l.succ, l.cur = nil, nil
	l.Release(succ)
	if e != nil {
		putTaggedElement(e)
	}
}

// TryLock attempts a non-blocking acquire. On success the word is in
// the locked+detached state, which Release's fetch-add reverts.
func (l *FetchAddLock) TryLock() bool {
	v := l.arrivals.Load()
	if v != 0 && v&tagUnlocked == 0 {
		return false
	}
	// Transition unlocked → locked+detached in one CAS, preserving
	// the fetch-add protocol (tag 10 → 01 is not an increment, so a
	// dedicated encoding change: reuse stale upper bits with tag 01).
	if l.arrivals.CompareAndSwap(v, (v&^uint64(tagMask))|tagLockedDetached) {
		l.succ, l.cur = nil, nil
		return true
	}
	return false
}

// Delegations reports how many arrival-race delegations occurred.
func (l *FetchAddLock) Delegations() uint64 { return l.delegations.Load() }

// Locked reports whether the lock was held at the instant of the load.
func (l *FetchAddLock) Locked() bool {
	v := l.arrivals.Load()
	return v != 0 && v&tagUnlocked == 0
}
