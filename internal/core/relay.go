package core

import (
	"sync/atomic"

	"repro/internal/pad"
	"repro/internal/waiter"
)

// RelayLock is the Listing 3 (Appendix F) "Relay" variant. Arrival
// uses a double swap: a thread that finds the lock free immediately
// exchanges LOCKEDEMPTY back into the arrival word to try to extract
// its own element from the stack. If other threads raced into the
// window between the two swaps, the second swap detached them as a
// fresh entry segment; the owner then abdicates, relaying ownership
// directly to the head of that segment, and joins the waiters itself.
//
// The variant needs no end-of-segment marker at all — the racing
// thread's element is a live waiter, not a zombie, and terminates the
// chain naturally — at the cost of losing the constant-time doorway
// when the (rare) race fires, since ownership must pass through the
// victim.
//
// The zero value is an unlocked lock ready for use.
type RelayLock struct {
	arrivals atomic.Pointer[flagElement]
	_        [pad.SectorSize - 8]byte

	succ *flagElement
	cur  *flagElement

	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock

	// relays counts arrival-race abdications, which the paper argues
	// are rare (the window closes as fast as the interconnect can
	// re-arbitrate the line). Exposed for tests and ablations.
	relays atomic.Uint64
}

// Acquire enters the lock and returns the successor context for
// Release.
func (l *RelayLock) Acquire(e *flagElement) *flagElement {
	e.gate.Store(0)
	tail := l.arrivals.Swap(e)
	if tail == nil {
		// Fast path: we hold the lock. Try to reclaim our element by
		// swapping LOCKEDEMPTY over it.
		r := l.arrivals.Swap(nemo())
		if r == e {
			return nil // clean uncontended acquire
		}
		// Threads arrived in the swap-swap window; r heads a detached
		// segment with our element buried at its distal end. Cede
		// ownership to r and fall through into waiting: natural
		// succession through the segment will reach our element.
		l.relays.Add(1)
		r.gate.Store(1)
		// tail was nil, so our successor is nil: we are the natural
		// end of the detached segment.
	}
	succ := tail
	if succ == nemo() {
		succ = nil
	}
	w := waiter.NewClocked(l.Policy, l.Clk)
	for e.gate.Load() == 0 {
		w.Pause()
	}
	return succ
}

// Release exits the lock.
func (l *RelayLock) Release(succ *flagElement) {
	if succ != nil {
		succ.gate.Store(1)
		return
	}
	// Entry list empty: fast-path unlock expects LOCKEDEMPTY.
	if l.arrivals.CompareAndSwap(nemo(), nil) {
		return
	}
	// Arrivals populated: detach and grant the head.
	w := l.arrivals.Swap(nemo())
	w.gate.Store(1)
}

// Lock acquires l (sync.Locker).
func (l *RelayLock) Lock() {
	e := getFlagElement()
	l.succ, l.cur = l.Acquire(e), e
}

// Unlock releases l (sync.Locker).
func (l *RelayLock) Unlock() {
	succ, e := l.succ, l.cur
	l.succ, l.cur = nil, nil
	l.Release(succ)
	if e != nil {
		putFlagElement(e)
	}
}

// TryLock attempts a non-blocking acquire.
func (l *RelayLock) TryLock() bool {
	if l.arrivals.CompareAndSwap(nil, nemo()) {
		l.succ, l.cur = nil, nil
		return true
	}
	return false
}

// Relays reports how many arrival-race abdications have occurred.
func (l *RelayLock) Relays() uint64 { return l.relays.Load() }

// Locked reports whether the lock was held at the instant of the load.
func (l *RelayLock) Locked() bool { return l.arrivals.Load() != nil }
