package core

import (
	"sync/atomic"

	"repro/internal/pad"
	"repro/internal/waiter"
	"repro/internal/xrand"
)

// TwoLaneLock is the Appendix I "2 Lanes" formulation: two concurrent
// pop-stack lanes whose arriving threads pick a lane at random, plus a
// thread-oblivious ticket lock arbitrating between the (at most two)
// lane leaders. The randomized lane selection perturbs the admission
// schedule enough to impose long-term statistical fairness — defeating
// the palindromic admission cycles of §9 — while preserving every
// other Reciprocating property: constant-time arrival and release
// paths, bounded bypass, and single-phase waiting per thread.
//
// The zero value is an unlocked lock ready for use.
type TwoLaneLock struct {
	lanes [2]struct {
		tail atomic.Pointer[gElement]
		_    [pad.SectorSize - 8]byte
	}

	// Leader lock, implemented as a ticket lock. 64-bit tickets make
	// rollover aliasing a non-issue (Appendix G's 200-year argument).
	ticket atomic.Uint64
	grant  atomic.Uint64
	_      [pad.SectorSize - 16]byte

	// cbrn is the counter feeding the Appendix I counter-based RNG
	// (HashPhi32 Fibonacci hashing) for lane selection. The paper
	// keeps it in TLS; a shared counter perturbs at least as strongly.
	cbrn atomic.Uint32

	// Owner-owned context.
	isLeader bool
	lane     int
	prv, eos *gElement
	cur      *gElement

	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock
}

// tlToken carries acquire context for the explicit API.
type tlToken struct {
	leader   bool
	lane     int
	prv, eos *gElement
	elem     *gElement
}

// Acquire enters the lock with the supplied element.
func (l *TwoLaneLock) Acquire(e *gElement) tlToken {
	e.eos.Store(nil)
	// Select a lane via a Bernoulli trial on the counter-based RNG.
	lane := int(xrand.HashPhi32(l.cbrn.Add(1)) & 1)

	prv := l.lanes[lane].tail.Swap(e)
	if prv != nil {
		// Follower within this lane's segment.
		w := waiter.NewClocked(l.Policy, l.Clk)
		var eos *gElement
		for {
			eos = e.eos.Load()
			if eos != nil {
				break
			}
			w.Pause()
		}
		return tlToken{leader: false, lane: lane, prv: prv, eos: eos, elem: e}
	}
	// Lane leader: acquire the leader ticket lock. With two lanes at
	// most two threads compete here at any time, so a ticket lock
	// scales fine in this regime.
	tx := l.ticket.Add(1) - 1
	w := waiter.NewClocked(l.Policy, l.Clk)
	for l.grant.Load() != tx {
		w.Pause()
	}
	return tlToken{leader: true, lane: lane, elem: e}
}

// Release exits the lock.
func (l *TwoLaneLock) Release(t tlToken) {
	if t.leader {
		detached := l.lanes[t.lane].tail.Swap(nil)
		if detached != t.elem {
			// Followers accumulated while we ran; relay ownership
			// down the detached chain, conveying our buried element
			// as the logical end-of-segment. The leader lock remains
			// held by the segment and is surrendered by its terminal
			// element.
			detached.eos.Store(t.elem)
		} else {
			// No followers: release the leader lock directly.
			l.grant.Add(1)
		}
		return
	}
	if t.eos != t.prv {
		// Systolic propagation through the entry segment.
		t.prv.eos.Store(t.eos)
	} else {
		// Terminus — the leader's buried element. The segment is
		// exhausted: surrender the leader lock.
		l.grant.Add(1)
	}
}

// Lock acquires l (sync.Locker).
func (l *TwoLaneLock) Lock() {
	e := getGElement()
	t := l.Acquire(e)
	l.isLeader, l.lane, l.prv, l.eos, l.cur = t.leader, t.lane, t.prv, t.eos, t.elem
}

// Unlock releases l (sync.Locker).
func (l *TwoLaneLock) Unlock() {
	t := tlToken{leader: l.isLeader, lane: l.lane, prv: l.prv, eos: l.eos, elem: l.cur}
	l.isLeader, l.lane, l.prv, l.eos, l.cur = false, 0, nil, nil, nil
	l.Release(t)
	if t.elem != nil {
		putGElement(t.elem)
	}
}

// LeaderLocked reports whether the leader ticket lock appeared held
// (Appendix I's LeaderIsLocked diagnostic).
func (l *TwoLaneLock) LeaderLocked() bool {
	return l.ticket.Load() != l.grant.Load()
}
