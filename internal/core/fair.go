package core

import (
	"sync/atomic"

	"repro/internal/waiter"
	"repro/internal/xrand"
)

// FairLock is the §9.4 mitigation applied to the canonical Listing 1
// algorithm: an incoming owner whose entry segment is non-empty
// occasionally — on a Bernoulli trial — defers, immediately ceding
// ownership to its successor and arranging to be re-granted at the
// logical end of the segment. The stochastic perturbation breaks the
// repeating palindromic admission cycles of §9.1 and restores
// long-term statistical fairness.
//
// All reordering is strictly intra-segment, so the bounded-bypass and
// anti-starvation guarantees are preserved. As §9.4 notes, the
// constant-time arrival property is surrendered: a deferring thread
// waits in two phases within one acquisition episode. A thread defers
// at most once per episode.
//
// The deferred thread's identity percolates toward the segment tail
// through the wait elements' deferred fields, alongside the normal
// Gate conveyance; the segment's terminus consumes it and grants the
// deferred thread last.
//
// The zero value is an unlocked lock with the default deferral
// probability, ready for use.
type FairLock struct {
	arrivals atomic.Pointer[WaitElement]

	// DeferProb is the per-acquisition deferral probability in units
	// of 1/256 (0 disables, 256 always defers when possible). The
	// zero value selects DefaultDeferProb.
	DeferProb int

	succ *WaitElement
	eos  *WaitElement
	defp *WaitElement // deferred element carried to Release
	cur  *WaitElement

	rng atomic.Uint64 // xorshift state for the Bernoulli trial

	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock

	deferrals atomic.Uint64
}

// DefaultDeferProb is the default deferral probability (16/256 = 1/16).
const DefaultDeferProb = 16

// fairToken is the acquire-to-release context.
type fairToken struct {
	succ *WaitElement
	eos  *WaitElement
	def  *WaitElement // deferred element to percolate onward
	elem *WaitElement
}

// bernoulli runs one lock-local trial with probability DeferProb/256.
func (l *FairLock) bernoulli() bool {
	p := l.DeferProb
	if p == 0 {
		p = DefaultDeferProb
	}
	// Single-word Marsaglia xorshift (Appendix G's recommendation),
	// advanced with a CAS-free racy update: losing an update merely
	// repeats a draw, which is harmless for a perturbation source.
	x := l.rng.Load()
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	l.rng.Store(x)
	return int(x&255) < p
}

// Acquire enters the lock with the supplied element.
func (l *FairLock) Acquire(e *WaitElement) fairToken {
	e.gate.Store(nil)
	e.deferred.Store(nil)
	var succ *WaitElement
	eos := e

	tail := l.arrivals.Swap(e)
	if tail == nil {
		// Uncontended fast path: nothing to defer to.
		return fairToken{succ: nil, eos: eos, elem: e}
	}
	if tail != &lockedEmptySentinel {
		succ = tail
	}

	deferred := false
	w := waiter.NewClocked(l.Policy, l.Clk)
	for {
		// Waiting phase.
		for {
			eos = e.gate.Load()
			if eos != nil {
				break
			}
			w.Pause()
		}
		d := e.deferred.Swap(nil)

		if succ == eos {
			// Terminus: the segment ends with us. Re-grant any
			// percolated deferred thread as the segment's final
			// member.
			succ = d
			d = nil
			eos = &lockedEmptySentinel
		}
		if succ == nil && d != nil {
			// We were granted as a segment's final member (e.g. we
			// are a re-granted deferred thread) yet carry a deferred
			// element: it becomes our successor so it cannot be
			// dropped.
			succ = d
			d = nil
		}

		// We own the lock. Perhaps defer: only once per episode,
		// only when a successor exists to defer to, and only when no
		// other deferred thread is already percolating.
		if succ != nil && d == nil && !deferred && l.bernoulli() {
			deferred = true
			l.deferrals.Add(1)
			// Re-arm our gate, then cede ownership to succ,
			// registering ourselves as the percolating deferred
			// element. We will be re-granted by the terminus.
			e.gate.Store(nil)
			s := succ
			succ = nil // when re-granted we carry no successor
			s.deferred.Store(e)
			s.gate.Store(eos)
			w.Reset()
			continue
		}
		return fairToken{succ: succ, eos: eos, def: d, elem: e}
	}
}

// Release exits the lock.
func (l *FairLock) Release(t fairToken) {
	if t.succ != nil {
		// Percolate any deferred element toward the tail before the
		// granting store publishes it.
		if t.def != nil {
			t.succ.deferred.Store(t.def)
		}
		t.succ.gate.Store(t.eos)
		return
	}
	// Entry segment empty (and no deferred element can be in hand:
	// the terminus consumed it into succ).
	if l.arrivals.CompareAndSwap(t.eos, nil) {
		return
	}
	w := l.arrivals.Swap(&lockedEmptySentinel)
	w.gate.Store(t.eos)
}

// Lock acquires l (sync.Locker).
func (l *FairLock) Lock() {
	e := getElement()
	t := l.Acquire(e)
	l.succ, l.eos, l.defp, l.cur = t.succ, t.eos, t.def, t.elem
}

// Unlock releases l (sync.Locker).
func (l *FairLock) Unlock() {
	t := fairToken{succ: l.succ, eos: l.eos, def: l.defp, elem: l.cur}
	l.succ, l.eos, l.defp, l.cur = nil, nil, nil, nil
	l.Release(t)
	if t.elem != nil {
		putElement(t.elem)
	}
}

// TryLock attempts a non-blocking acquire. As with the canonical
// variant, success leaves the arrival word in the LOCKEDEMPTY state and
// the normal Release path reverts it; no deferral can occur on a
// try-acquired episode (there is no successor to defer to).
func (l *FairLock) TryLock() bool {
	if siteTryFair.Fail() {
		return false
	}
	if l.arrivals.CompareAndSwap(nil, &lockedEmptySentinel) {
		l.succ, l.eos, l.defp, l.cur = nil, &lockedEmptySentinel, nil, nil
		return true
	}
	return false
}

// Deferrals reports how many Bernoulli deferrals have fired.
func (l *FairLock) Deferrals() uint64 { return l.deferrals.Load() }

// Locked reports whether the lock was held at the instant of the load.
func (l *FairLock) Locked() bool { return l.arrivals.Load() != nil }

// seedRNG lets tests make the Bernoulli stream deterministic.
func (l *FairLock) seedRNG(seed uint64) {
	r := xrand.NewXorShift64(seed)
	l.rng.Store(r.Uint64())
}
