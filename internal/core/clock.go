package core

import "repro/internal/clock"

// Clock aliases clock.Clock so each variant's struct can declare its
// Clk field without every file importing the clock package.
type Clock = clock.Clock

// SetClock implementations: every variant satisfies clock.Clocked, so
// registry.WithClock can thread an injected time source (nil restores
// the wall clock) through any catalog entry. The clock paces waiting —
// park sleeps and bounded-acquisition deadlines — and is read only on
// those slow paths; the uncontended fast paths never touch it.

func (l *Lock) SetClock(c clock.Clock)              { l.Clk = c }
func (l *SimplifiedLock) SetClock(c clock.Clock)    { l.Clk = c }
func (l *SimplifiedEOSLock) SetClock(c clock.Clock) { l.Clk = c }
func (l *CombinedLock) SetClock(c clock.Clock)      { l.Clk = c }
func (l *CTRLock) SetClock(c clock.Clock)           { l.Clk = c }
func (l *FairLock) SetClock(c clock.Clock)          { l.Clk = c }
func (l *FetchAddLock) SetClock(c clock.Clock)      { l.Clk = c }
func (l *GatedLock) SetClock(c clock.Clock)         { l.Clk = c }
func (l *RelayLock) SetClock(c clock.Clock)         { l.Clk = c }
func (l *TwoLaneLock) SetClock(c clock.Clock)       { l.Clk = c }

var (
	_ clock.Clocked = (*Lock)(nil)
	_ clock.Clocked = (*SimplifiedLock)(nil)
	_ clock.Clocked = (*SimplifiedEOSLock)(nil)
	_ clock.Clocked = (*CombinedLock)(nil)
	_ clock.Clocked = (*CTRLock)(nil)
	_ clock.Clocked = (*FairLock)(nil)
	_ clock.Clocked = (*FetchAddLock)(nil)
	_ clock.Clocked = (*GatedLock)(nil)
	_ clock.Clocked = (*RelayLock)(nil)
	_ clock.Clocked = (*TwoLaneLock)(nil)
)
