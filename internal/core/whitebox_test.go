package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitForArrivalTop spins until the lock's arrival word equals want,
// letting tests build deterministic arrival stacks.
func waitForArrivalTop(t *testing.T, l *Lock, want *WaitElement) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for l.arrivals.Load() != want {
		if time.Now().After(deadline) {
			t.Fatal("arrival word never reached expected state")
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// Reproduces §4 "Onset of contention": T1 fast-path acquires, T2 and
// T3 push, T1's release CAS fails, the segment [E3, E2, zombie E1] is
// detached, and admission proceeds T3 then T2 with E1 acting as the
// conveyed end-of-segment zombie.
func TestOnsetOfContentionScenario(t *testing.T) {
	var l Lock
	e1, e2, e3 := new(WaitElement), new(WaitElement), new(WaitElement)

	// Step 1-2: T1 acquires uncontended.
	t1 := l.Acquire(e1)
	if t1.succ != nil || t1.eos != e1 {
		t.Fatalf("fast path token: succ=%v eos==e1:%v", t1.succ, t1.eos == e1)
	}
	if l.arrivals.Load() != e1 {
		t.Fatal("arrival word should hold E1")
	}

	order := make(chan string, 3)
	var wg sync.WaitGroup

	// Step 3: T2 arrives and waits; its successor is T1's element.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tok := l.Acquire(e2)
		order <- "T2"
		// T2 must detect the zombie end-of-segment: its successor E1
		// equals the conveyed eos, so succ is quashed.
		if tok.succ != nil {
			panic("T2 should have quashed its zombie successor")
		}
		if tok.eos != &lockedEmptySentinel {
			panic("T2's eos should be LOCKEDEMPTY after quash")
		}
		l.Release(tok)
	}()
	waitForArrivalTop(t, &l, e2)

	// Step 4: T3 arrives and waits; its successor is E2.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tok := l.Acquire(e3)
		order <- "T3"
		if tok.succ != e2 {
			panic("T3's successor should be E2")
		}
		if tok.eos != e1 {
			panic("T3 should have received E1 as end-of-segment")
		}
		l.Release(tok)
	}()
	waitForArrivalTop(t, &l, e3)

	// Steps 5-6: T1 releases; CAS fails (arrivals == E3), segment is
	// detached and T3 granted with eos = E1.
	l.Release(t1)
	wg.Wait()
	close(order)

	var got []string
	for s := range order {
		got = append(got, s)
	}
	if len(got) != 2 || got[0] != "T3" || got[1] != "T2" {
		t.Fatalf("admission order %v, want [T3 T2] (LIFO within segment)", got)
	}
	if l.arrivals.Load() != nil {
		t.Fatal("lock should be fully unlocked at the end")
	}
}

// Admission is LIFO within a segment but FIFO between segments: build
// two generations of waiters and verify group ordering (§2). Waiters
// 0,1,2 enqueue while the holder runs (generation 1); waiter 2 — the
// head of the detached segment, hence first admitted — enqueues 3,4,5
// from inside its critical section (generation 2). Expected admission:
// 2,1,0 (LIFO within gen 1), then 5,4,3 (LIFO within gen 2).
func TestSegmentFIFOBetweenLIFOWithin(t *testing.T) {
	var l Lock
	holder := l.Acquire(new(WaitElement))

	var order []int
	var mu sync.Mutex
	record := func(id int) {
		mu.Lock()
		order = append(order, id)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	// spawn launches waiter i and returns only once its push has
	// landed on the arrival stack, serializing arrival order. inCS
	// runs inside the waiter's critical section.
	var spawn func(i int, inCS func())
	spawn = func(i int, inCS func()) {
		e := new(WaitElement)
		wg.Add(1)
		go func() {
			defer wg.Done()
			tok := l.Acquire(e)
			record(i)
			if inCS != nil {
				inCS()
			}
			l.Release(tok)
		}()
		deadline := time.Now().Add(30 * time.Second)
		for l.arrivals.Load() != e {
			if time.Now().After(deadline) {
				panic("push never observed")
			}
			time.Sleep(20 * time.Microsecond)
		}
	}

	spawn(0, nil)
	spawn(1, nil)
	spawn(2, func() {
		spawn(3, nil)
		spawn(4, nil)
		spawn(5, nil)
	})

	l.Release(holder) // detach generation 1: admission 2,1,0
	wg.Wait()

	want := []int{2, 1, 0, 5, 4, 3}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admission order %v, want %v", order, want)
		}
	}
}

// §4 "Simple uncontended Acquire and Release": the CAS reverts the
// arrival word to unlocked.
func TestUncontendedScenario(t *testing.T) {
	var l Lock
	e := new(WaitElement)
	tok := l.Acquire(e)
	if l.arrivals.Load() != e {
		t.Fatal("arrival word should hold our element while locked")
	}
	l.Release(tok)
	if l.arrivals.Load() != nil {
		t.Fatal("arrival word should revert to nil")
	}
}

// The explicit-element API must be allocation-free on both paths.
func TestAcquireReleaseAllocFree(t *testing.T) {
	var l Lock
	e := new(WaitElement)
	allocs := testing.AllocsPerRun(1000, func() {
		tok := l.Acquire(e)
		l.Release(tok)
	})
	if allocs != 0 {
		t.Fatalf("Acquire/Release allocated %v per op, want 0", allocs)
	}
}

// Prompt lock "destruction": after a full quiesce the lock word is nil
// and the memory can be reused as a fresh lock (Go analog of §5's
// prompt-destruction safety — no release-side accesses follow the
// store that surrenders ownership on the uncontended path).
func TestQuiescentStateIsZeroValue(t *testing.T) {
	var l Lock
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Lock()
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if l.arrivals.Load() != nil || l.succ != nil || l.eos != nil || l.cur != nil {
		t.Fatal("quiesced lock is not back to its zero state")
	}
}

// FairLock with deterministic always-defer policy: every contended
// acquisition defers exactly once and the lock still drains. Verifies
// the §9.4 mitigation cannot deadlock or strand the deferred element.
func TestFairLockAlwaysDeferDrains(t *testing.T) {
	l := &FairLock{DeferProb: 256}
	l.seedRNG(42)
	var wg sync.WaitGroup
	counter := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Lock()
				counter++
				if i%8 == 0 {
					// Yield while holding so other goroutines pile
					// up behind the lock even on one processor.
					runtime.Gosched()
				}
				l.Unlock()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("always-defer FairLock deadlocked")
	}
	if counter != 8*2000 {
		t.Fatalf("counter = %d, want %d", counter, 8*2000)
	}
	if l.Deferrals() == 0 {
		t.Fatal("always-defer policy recorded no deferrals")
	}
}

// FairLock with deferral disabled must never defer.
func TestFairLockDisabledNeverDefers(t *testing.T) {
	l := &FairLock{DeferProb: -1}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Lock()
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if l.Deferrals() != 0 {
		t.Fatalf("disabled FairLock deferred %d times", l.Deferrals())
	}
}

// Deterministic FairLock deferral scenario: holder + two waiters, the
// new owner always defers; admission must still include everyone
// exactly once per acquisition.
func TestFairLockDeferralAdmission(t *testing.T) {
	l := &FairLock{DeferProb: 256}
	l.seedRNG(7)
	hold := l.Acquire(new(WaitElement))
	var admitted atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := new(WaitElement)
			tok := l.Acquire(e)
			admitted.Add(1)
			l.Release(tok)
		}()
	}
	// Let them enqueue.
	time.Sleep(20 * time.Millisecond)
	l.Release(hold)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("deferral stranded waiters: admitted %d/5", admitted.Load())
	}
	if admitted.Load() != 5 {
		t.Fatalf("admitted %d, want 5", admitted.Load())
	}
}

// The tagged-element registry must stay bounded under churn: pool
// recycling means IDs are reused, not re-registered per acquisition.
func TestTaggedRegistryBounded(t *testing.T) {
	if raceEnabled {
		// The race detector makes sync.Pool drop items randomly to
		// stress lifecycles, so pool-recycling bounds don't hold.
		t.Skip("pool recycling is intentionally defeated under -race")
	}
	before := TaggedRegistrySize()
	var l FetchAddLock
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Lock()
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	grown := TaggedRegistrySize() - before
	// The pool may miss across GCs, but growth must be nowhere near
	// the 16000 acquisitions performed.
	if grown > 1000 {
		t.Fatalf("registry grew by %d entries over 16000 episodes", grown)
	}
}

// Gated: after full quiesce the gate must be open and the tail empty.
func TestGatedQuiescentState(t *testing.T) {
	var l GatedLock
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Lock()
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if l.leaderGate.Load() != 0 {
		t.Fatal("leader gate left closed")
	}
	if l.tail.Load() != nil {
		t.Fatal("tail not empty after quiesce")
	}
}

// TwoLane: ticket and grant must match after quiesce (leader lock
// free) and both lanes must be empty.
func TestTwoLaneQuiescentState(t *testing.T) {
	var l TwoLaneLock
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Lock()
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if l.LeaderLocked() {
		t.Fatal("leader ticket lock left held")
	}
	for i := range l.lanes {
		if l.lanes[i].tail.Load() != nil {
			t.Fatalf("lane %d not empty after quiesce", i)
		}
	}
}

// The Do (critical-section-as-lambda) interface mirrors Listing 1's
// operator+.
func TestDoLambdaInterface(t *testing.T) {
	var l Lock
	e := new(WaitElement)
	v := 5
	l.Do(e, func() { v += 2 })
	if v != 7 {
		t.Fatalf("v = %d, want 7", v)
	}
	if l.Locked() {
		t.Fatal("lock held after Do")
	}
}
