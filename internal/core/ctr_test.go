package core

import (
	"runtime"
	"sync"
	"testing"
)

// CTR invariant: after a contended episode, the consuming exchange has
// left the owner's gate nil, so the next acquire needs no re-arm
// store.
func TestCTRConsumesGrant(t *testing.T) {
	var l CTRLock
	e1, e2 := new(WaitElement), new(WaitElement)

	t1 := l.Acquire(e1)
	done := make(chan Token, 1)
	go func() {
		done <- l.Acquire(e2)
	}()
	// Wait for e2 to land on the arrival stack.
	for l.arrivals.Load() != e2 {
		runtime.Gosched()
	}
	l.Release(t1)
	t2 := <-done
	// The grant arrived through e2's gate and was consumed by the
	// CTR exchange: the gate is nil again.
	if e2.gate.Load() != nil {
		t.Fatal("CTR did not consume the grant (gate non-nil)")
	}
	l.Release(t2)
	if l.Locked() {
		t.Fatal("lock left held")
	}
}

// Elements must be freely recyclable between CTR and non-CTR locks:
// the plain Lock leaves a consumed-looking or stale gate, and CTR's
// guard re-arms as needed.
func TestCTRPoolInteropWithPlainLock(t *testing.T) {
	var plain Lock
	var ctr CTRLock
	e := new(WaitElement)
	for i := 0; i < 2000; i++ {
		tp := plain.Acquire(e)
		plain.Release(tp)
		tc := ctr.Acquire(e)
		ctr.Release(tc)
	}
	if plain.Locked() || ctr.Locked() {
		t.Fatal("locks left held")
	}
}

// CTR contended churn: mutual exclusion and liveness with the
// exchange-consume waiting discipline.
func TestCTRContendedChurn(t *testing.T) {
	var l CTRLock
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Lock()
				counter++
				if i%8 == 0 {
					runtime.Gosched()
				}
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 8*2000 {
		t.Fatalf("counter = %d", counter)
	}
}

// The PoliteRelease option must preserve correctness under contention.
func TestPoliteReleaseCorrect(t *testing.T) {
	l := &Lock{PoliteRelease: true}
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1500; i++ {
				l.Lock()
				counter++
				if i%8 == 0 {
					runtime.Gosched()
				}
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 6*1500 {
		t.Fatalf("counter = %d", counter)
	}
	if l.arrivals.Load() != nil {
		t.Fatal("lock not quiesced")
	}
}

// FairLock's seeded RNG makes deferral streams reproducible.
func TestFairLockSeededDeterminism(t *testing.T) {
	run := func() uint64 {
		l := &FairLock{DeferProb: 128}
		l.seedRNG(99)
		// Single-goroutine draws: bernoulli only fires on contended
		// paths, so drive the internal generator directly.
		hits := uint64(0)
		for i := 0; i < 1000; i++ {
			if l.bernoulli() {
				hits++
			}
		}
		return hits
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("seeded deferral streams diverged: %d vs %d", a, b)
	}
	if a < 400 || a > 600 {
		t.Fatalf("p=1/2 Bernoulli hit %d/1000", a)
	}
}
