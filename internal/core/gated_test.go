package core

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// Gated: the leader (first pusher onto an empty tail) must close the
// gate, and the segment's terminal follower must reopen it.
func TestGatedLeaderGateProtocol(t *testing.T) {
	var l GatedLock
	// Leader acquires: empty tail → leader role, gate closes.
	e1 := getGElement()
	t1 := l.Acquire(e1)
	if !t1.leader {
		t.Fatal("first acquirer should be the leader")
	}
	if l.leaderGate.Load() != 1 {
		t.Fatal("leader did not close the gate")
	}

	// A follower enqueues while the leader holds.
	done := make(chan gToken, 1)
	e2 := getGElement()
	go func() { done <- l.Acquire(e2) }()
	for l.tail.Load() != e2 {
		runtime.Gosched()
	}

	// Leader releases: detaches [e2, buried e1], relays to e2 with e1
	// as the conveyed terminus.
	l.Release(t1)
	t2 := <-done
	if t2.leader {
		t.Fatal("follower misidentified as leader")
	}
	if t2.eos != e1 {
		t.Fatal("follower did not receive the leader's buried element as terminus")
	}
	if l.leaderGate.Load() != 1 {
		t.Fatal("gate must stay closed while the segment drains")
	}
	// Terminal follower (prv == eos) reopens the gate.
	l.Release(t2)
	if l.leaderGate.Load() != 0 {
		t.Fatal("terminal follower did not reopen the gate")
	}
	putGElement(e1)
	putGElement(e2)
}

// TwoLane: lane selection must spread arrivals across both lanes.
func TestTwoLaneSelectionSpreads(t *testing.T) {
	var l TwoLaneLock
	lanes := [2]int{}
	for i := 0; i < 2000; i++ {
		l.Lock()
		lanes[l.lane]++
		l.Unlock()
	}
	for i, n := range lanes {
		if n < 2000*35/100 {
			t.Fatalf("lane %d chosen only %d/2000 times (biased selection)", i, n)
		}
	}
}

// TwoLane under a two-phase workload: leaders from both lanes must
// arbitrate correctly through the ticket leader lock.
func TestTwoLaneCrossLaneArbitration(t *testing.T) {
	var l TwoLaneLock
	var inCS int32
	var wg sync.WaitGroup
	stop := time.Now().Add(300 * time.Millisecond)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				l.Lock()
				inCS++
				if inCS != 1 {
					panic("two owners")
				}
				inCS--
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if l.LeaderLocked() {
		t.Fatal("leader lock left held")
	}
}

// The pools must never hand out an element that is still in use:
// sustained churn across every pool-backed variant with -race enabled
// gives the detector a chance at any aliasing bug.
func TestPoolsUnderCrossVariantChurn(t *testing.T) {
	var a Lock
	var b SimplifiedLock
	var c CTRLock
	var d GatedLock
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1500; i++ {
				a.Lock()
				a.Unlock()
				b.Lock()
				b.Unlock()
				c.Lock()
				c.Unlock()
				d.Lock()
				d.Unlock()
			}
		}()
	}
	wg.Wait()
}
