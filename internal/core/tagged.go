package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/pad"
)

// The Listing 4/5 variants encode the arrival word as a tagged
// pointer whose two low-order bits drive a state machine advanced by
// fetch-add:
//
//	E:00  locked, arrival stack populated, E = most recent arrival
//	E:01  locked, arrival segment logically detached and empty
//	*:10  unlocked (upper bits stale and meaningless)
//	*:11  illegal
//
// fetch_add(1) transitions arrived→detached→unlocked in one atomic.
//
// C++ packs the element's address into the upper bits. Doing that in
// Go would hide heap pointers from the garbage collector inside a
// uintptr, so we instead pack a small element ID assigned by an
// append-only registry: the encoding, atomicity, and state machine are
// identical, the registry lookup is one slice index, and every element
// reachable from a lock word is pinned by the registry for the life of
// the process. The zero value of the word (id 0, tag 00) is treated as
// unlocked so that zero-value locks work without constructors.

// taggedElement is the wait element for FetchAddLock and
// SimplifiedEOSLock. Elements are created via the internal pool and
// registered once; their IDs are stable for the process lifetime.
type taggedElement struct {
	gate atomic.Uint32
	_    [pad.CacheLineSize - 4]byte
	eos  atomic.Pointer[taggedElement] // Listing 5 only
	id   uint64
	_    [pad.CacheLineSize - 16]byte
}

const (
	tagLockedStack    = 0 // E:00
	tagLockedDetached = 1 // E:01
	tagUnlocked       = 2 // *:10
	tagMask           = 3
)

// encode packs an element ID with the locked-populated tag.
func encode(e *taggedElement) uint64 { return e.id << 2 }

// taggedRegistry maps IDs to elements with lock-free lookups and
// mutex-guarded growth.
type taggedRegistry struct {
	mu   sync.Mutex
	snap atomic.Pointer[[]*taggedElement]
}

var taggedReg = func() *taggedRegistry {
	r := &taggedRegistry{}
	initial := []*taggedElement{nil} // ID 0 reserved: "no element"
	r.snap.Store(&initial)
	return r
}()

// register assigns e a fresh ID and pins it for the process lifetime.
func (r *taggedRegistry) register(e *taggedElement) {
	r.mu.Lock()
	old := *r.snap.Load()
	next := make([]*taggedElement, len(old)+1)
	copy(next, old)
	e.id = uint64(len(old))
	next[len(old)] = e
	r.snap.Store(&next)
	r.mu.Unlock()
}

// lookup resolves an ID to its element. IDs embedded in lock words are
// always valid because registration precedes any publication.
func (r *taggedRegistry) lookup(id uint64) *taggedElement {
	return (*r.snap.Load())[id]
}

// Size reports how many elements have ever been registered
// (diagnostics; bounded by peak element churn, not workload length,
// because the pool recycles elements).
func (r *taggedRegistry) size() int { return len(*r.snap.Load()) - 1 }

var taggedPool = sync.Pool{New: func() any {
	e := new(taggedElement)
	taggedReg.register(e)
	return e
}}

func getTaggedElement() *taggedElement  { return taggedPool.Get().(*taggedElement) }
func putTaggedElement(e *taggedElement) { taggedPool.Put(e) }

// annulMarked reproduces Listing 4's AnnulMarked: a word tagged
// "detached" (low bit set) carries no successor; otherwise the word
// names the predecessor element. The caller guarantees the tag is
// 00 or 01.
func annulMarked(word uint64) *taggedElement {
	if word&tagLockedDetached != 0 {
		return nil
	}
	return taggedReg.lookup(word >> 2)
}

// TaggedRegistrySize is exposed for tests.
func TaggedRegistrySize() int { return taggedReg.size() }
