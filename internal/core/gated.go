package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/pad"
	"repro/internal/waiter"
)

// gElement is the wait element for the Gated and TwoLane variants
// (Appendices H and I): a single eos field serves as both the
// transfer-of-ownership flag and the channel conveying the
// end-of-segment address through the chain.
type gElement struct {
	eos atomic.Pointer[gElement]
	_   [pad.SectorSize - 8]byte
}

var gElementPool = sync.Pool{New: func() any { return new(gElement) }}

func getGElement() *gElement  { return gElementPool.Get().(*gElement) }
func putGElement(e *gElement) { gElementPool.Put(e) }

// GatedLock is the Appendix H "Gated" formulation: a concurrent
// pop-stack (the Tail word) plus a LeaderGate interlock that separates
// segment generations. The first thread to push onto an empty stack is
// the segment's leader; it waits (1-versus-1) for the previous
// generation to drain, takes the gate, runs, then detaches the stack
// it anchors and relays ownership down the detached chain. The thread
// that reaches the chain's logical end — the leader's buried element —
// reopens the gate for the next generation's leader.
//
// Admission is LIFO within a segment and FCFS between segments, so the
// lock retains population-bounded bypass, constant-time arrival and
// release, and single-phase waiting; the leader's spin on LeaderGate
// is private (at most one spinner) though not local.
//
// The zero value is an unlocked lock ready for use.
type GatedLock struct {
	tail atomic.Pointer[gElement]
	_    [pad.SectorSize - 8]byte

	// leaderGate: 0 = previous generation drained; 1 = a generation
	// is in flight. Only the incoming leader transitions 0→1 and only
	// the thread at a segment's end transitions 1→0.
	leaderGate atomic.Uint32
	_          [pad.SectorSize - 4]byte

	// Owner-owned context.
	isLeader bool
	prv, eos *gElement
	cur      *gElement

	Policy waiter.Policy
	// Clk is the injected time source for waiting (nil = wall clock).
	Clk Clock
}

// gToken carries the acquire context for the explicit API.
type gToken struct {
	leader   bool
	prv, eos *gElement
	elem     *gElement
}

// Acquire enters the lock with the supplied element.
func (l *GatedLock) Acquire(e *gElement) gToken {
	e.eos.Store(nil)
	prv := l.tail.Swap(e)
	if prv != nil {
		// Follower within a segment: wait for ownership plus the
		// end-of-segment address to arrive through our element.
		w := waiter.NewClocked(l.Policy, l.Clk)
		var eos *gElement
		for {
			eos = e.eos.Load()
			if eos != nil {
				break
			}
			w.Pause()
		}
		return gToken{leader: false, prv: prv, eos: eos, elem: e}
	}
	// Segment leader: wait for the previous generation to depart. At
	// most one thread waits here at a time (the stack was empty, and
	// it stays non-empty until this leader detaches it).
	w := waiter.NewClocked(l.Policy, l.Clk)
	for l.leaderGate.Load() != 0 {
		w.Pause()
	}
	l.leaderGate.Store(1)
	return gToken{leader: true, elem: e}
}

// Release exits the lock.
func (l *GatedLock) Release(t gToken) {
	if t.leader {
		// Detach the arrival segment we anchor. If followers have
		// accumulated, start relaying ownership down the chain,
		// conveying our (now buried) element as the logical
		// end-of-segment; otherwise reopen the gate.
		detached := l.tail.Swap(nil)
		if detached != t.elem {
			detached.eos.Store(t.elem)
		} else {
			l.leaderGate.Store(0)
		}
		return
	}
	if t.eos != t.prv {
		// Systolic propagation: enable prv and convey the terminus.
		t.prv.eos.Store(t.eos)
	} else {
		// We reached the leader's buried element: the segment is
		// exhausted; admit the next generation.
		l.leaderGate.Store(0)
	}
}

// Lock acquires l (sync.Locker).
func (l *GatedLock) Lock() {
	e := getGElement()
	t := l.Acquire(e)
	l.isLeader, l.prv, l.eos, l.cur = t.leader, t.prv, t.eos, t.elem
}

// Unlock releases l (sync.Locker).
func (l *GatedLock) Unlock() {
	t := gToken{leader: l.isLeader, prv: l.prv, eos: l.eos, elem: l.cur}
	l.isLeader, l.prv, l.eos, l.cur = false, nil, nil, nil
	l.Release(t)
	if t.elem != nil {
		putGElement(t.elem)
	}
}

// Locked reports whether the lock appeared held at the instant of the
// loads (diagnostic).
func (l *GatedLock) Locked() bool {
	return l.leaderGate.Load() != 0 || l.tail.Load() != nil
}
