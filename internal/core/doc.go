// Package core implements Reciprocating Locks (Dice & Kogan, PPoPP
// 2025) — the paper's primary contribution — together with every
// published variant:
//
//	Lock            Listing 1: the canonical algorithm; the end-of-
//	                segment (eos) address is conveyed through the wait
//	                elements' Gate fields, CNA-style, so the lock body
//	                stays a single word.
//	SimplifiedLock  Listing 2 (Appendix E): the recommended starting
//	                point; eos lives in a sequestered field of the lock
//	                body and Gate is a plain flag.
//	RelayLock       Listing 3 (Appendix F): double-swap arrival; on an
//	                arrival race the owner abdicates and relays
//	                ownership to the head of the freshly detached
//	                segment. No eos anywhere.
//	FetchAddLock    Listing 4: tagged-pointer arrival word driven by
//	                fetch-add; a single atomic in the Release path.
//	SimplifiedEOSLock Listing 5: tagged-pointer arrival word, per-
//	                element eos field used only at contention onset.
//	CombinedLock    Listing 6: Listings 3+5 combined — double swap,
//	                per-element eos, no fetch-add, no tagged pointers.
//	GatedLock       Appendix H: concurrent pop-stack + a LeaderGate
//	                interlock separating segment generations.
//	TwoLaneLock     Appendix I: two pop-stack lanes with randomized
//	                lane selection under a ticket-lock leader gate;
//	                imposes long-term statistical admission fairness.
//	FairLock        §9.4: Listing 1 plus a Bernoulli-trial deferral
//	                that breaks repeating palindromic admission cycles
//	                while preserving the bounded-bypass guarantee.
//
// # Algorithm recap
//
// A lock instance is one word, the arrival word. nil encodes unlocked;
// a distinguished sentinel ("LOCKEDEMPTY") encodes locked with an empty
// arrival segment; any other value is the top of a stack of recently
// arrived waiters (the arrival segment). Arriving threads push
// themselves with a single wait-free atomic exchange and learn their
// admission-order successor from the exchange's return value — the
// stack is implicit, with no next pointers in memory. The releasing
// owner first grants any successor on the detached entry segment;
// when the entry segment is exhausted it detaches the whole arrival
// segment with one exchange, which becomes the next entry segment.
// Admission is therefore LIFO within a segment and FIFO between
// segments, giving population-bounded bypass and starvation freedom.
//
// # Go-specific adaptations
//
// Go has no thread-local storage and no stable thread identity, so the
// paper's TLS-singleton wait element becomes either (a) an explicit
// per-worker Handle for allocation-free hot paths, or (b) an internal
// recycling pool used by the plain Lock/Unlock methods. Recycled
// elements are returned to the pool only when the corresponding
// Release completes; that timing reproduces the TLS lifecycle rule
// (an element address may be re-pushed only after the episode that
// used it has fully released), which the paper's zombie end-of-segment
// analysis requires. Returning elements any earlier is unsound: the
// address could be re-pushed while still being the release CAS's
// expected value, and the CAS would then unlock the lock out from
// under a live waiter.
//
// The C++ listings compare possibly-dangling addresses ("zombie"
// end-of-segment markers), which Appendix B concedes is undefined
// behavior in C++. In Go the conveyed marker is a real *WaitElement
// reference, so the garbage collector keeps the address unique for as
// long as anyone could compare against it — the technique is fully
// defined here.
//
// Context that the paper passes from Acquire to Release (succ, eos) is
// stored in extra owner-owned words of the lock body, exactly the
// strategy §7 uses for its pthread_mutex implementations; the
// allocation-free Token API passes the same context through the caller
// instead.
package core
