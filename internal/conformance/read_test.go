package conformance

import (
	"testing"

	"repro/internal/registry"
)

// The rendered columns come from CheckNames; Run must emit exactly
// that list, in that order (the cmd/conformance header once drifted
// from the suite — this pins them together).
func TestRunMatchesCheckNames(t *testing.T) {
	e, ok := registry.Lookup("Recipro")
	if !ok {
		t.Fatal("Recipro missing from catalog")
	}
	r := Run(e, testOptions())
	names := CheckNames()
	if len(r.Results) != len(names) {
		t.Fatalf("Run emitted %d results, CheckNames lists %d", len(r.Results), len(names))
	}
	for i, c := range r.Results {
		if c.Check != names[i] {
			t.Fatalf("result %d is %q, CheckNames says %q", i, c.Check, names[i])
		}
	}
}

// Read-path capability claims bind to behavior: every entry claiming
// CapReadShared or CapOptimisticRead must pass CheckReadSharing, and
// an entry claiming neither must skip.
func TestCheckReadSharingPerClaim(t *testing.T) {
	o := testOptions()
	for _, e := range registry.All() {
		e := e
		claims := e.Caps.Has(registry.CapReadShared) || e.Caps.Has(registry.CapOptimisticRead)
		t.Run(e.Name, func(t *testing.T) {
			err := CheckReadSharing(e, o)
			switch {
			case !claims && !Skipped(err):
				t.Fatalf("entry without read caps did not skip: %v", err)
			case claims && err != nil:
				t.Fatalf("read-capable entry failed: %v", err)
			}
		})
	}
}

// Derived combinators over non-default bases go through the same
// check: the dynamic lookup path must yield read-conformant locks too.
func TestCheckReadSharingDerived(t *testing.T) {
	o := testOptions()
	for _, name := range []string{"rw:MCS", "seq:TKT", "occ:CLH"} {
		e, ok := registry.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if err := CheckReadSharing(e, o); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
