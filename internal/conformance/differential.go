package conformance

import (
	"fmt"

	"repro/internal/registry"
	"repro/internal/simlocks"
	"repro/internal/xrand"
)

// DiffResult summarizes one entry's differential run.
type DiffResult struct {
	Entry     string
	Twin      string
	Schedules int
	Events    int
	MaxBypass int
	// Detaches is the total model segment-detach count across all
	// schedules; SimDetaches is the sim lock's own counter when it
	// exposes one (-1 otherwise). For sim Recipro both must agree.
	Detaches    int
	SimDetaches int
}

// ErrNoTwin reports a differential request for an entry without a sim
// twin.
type ErrNoTwin struct{ Entry string }

func (e *ErrNoTwin) Error() string {
	return fmt.Sprintf("entry %s declares no sim twin", e.Entry)
}

// RunDifferential drives entry's real lock and its declared sim twin
// through `schedules` generated admission programs (derived from seed)
// and verifies, per program, that real lock, sim twin, and the
// abstract admission model produce the same admission order, that the
// segment/detach structure matches, that bypass stays within the
// discipline's bound, and that both tracks preserve mutual exclusion
// over a guarded counter.
func RunDifferential(e registry.Entry, seed uint64, schedules int) (DiffResult, error) {
	res := DiffResult{Entry: e.Name, Twin: e.SimTwin, SimDetaches: -1}
	if e.SimTwin == "" {
		return res, &ErrNoTwin{Entry: e.Name}
	}
	mk := simlocks.ByName(e.SimTwin)
	if mk == nil {
		return res, fmt.Errorf("entry %s: sim twin %q not found in simlocks", e.Name, e.SimTwin)
	}
	kind, ok := ModelKindFor(e)
	if !ok {
		return res, fmt.Errorf("entry %s: family %s has no admission model", e.Name, e.Family)
	}

	rng := xrand.NewSplitMix64(seed)
	simDetaches := 0
	sawSimDetaches := false
	for s := 0; s < schedules; s++ {
		threads := 2 + int(rng.Uint64()%4)  // 2..5 logical threads
		episodes := 1 + int(rng.Uint64()%3) // 1..3 episodes each
		p := NewProgram(rng.Uint64(), threads, episodes, kind)
		if err := p.Validate(); err != nil {
			return res, fmt.Errorf("schedule %d: generator self-check: %w", s, err)
		}
		if err := runReal(e.New(), p); err != nil {
			return res, fmt.Errorf("schedule %d (seed %#x, %d threads × %d episodes): real %s: %w",
				s, p.Seed, threads, episodes, e.Name, err)
		}
		sd, err := runSim(mk, p)
		if err != nil {
			return res, fmt.Errorf("schedule %d (seed %#x, %d threads × %d episodes): sim %s: %w",
				s, p.Seed, threads, episodes, e.SimTwin, err)
		}
		if sd >= 0 {
			sawSimDetaches = true
			simDetaches += sd
			if sd != p.Detaches {
				return res, fmt.Errorf("schedule %d: sim %s detached %d segments, model expects %d",
					s, e.SimTwin, sd, p.Detaches)
			}
		}
		res.Schedules++
		res.Events += len(p.Events)
		res.Detaches += p.Detaches
		if b := p.MaxBypass(); b > res.MaxBypass {
			res.MaxBypass = b
		}
	}
	if sawSimDetaches {
		res.SimDetaches = simDetaches
	}
	return res, nil
}

// TwinEntries returns the catalog entries declaring a sim twin, in
// catalog order.
func TwinEntries() []registry.Entry {
	var out []registry.Entry
	for _, e := range registry.All() {
		if e.SimTwin != "" {
			out = append(out, e)
		}
	}
	return out
}
