package conformance

import (
	"errors"
	"testing"

	"repro/internal/registry"
)

// Every twin-declaring entry must survive the differential checker:
// real lock, sim twin, and abstract model agreeing on admission order,
// segment structure, and bypass bound over seeded schedules. (The
// 100-schedule acceptance run is `make conformance`; this keeps a
// smaller profile in tier-1.)
func TestDifferentialTwins(t *testing.T) {
	o := testOptions()
	twins := TwinEntries()
	if len(twins) == 0 {
		t.Fatal("no registry entry declares a sim twin")
	}
	for _, e := range twins {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			res, err := RunDifferential(e, o.Seed, o.Schedules)
			if err != nil {
				t.Fatal(err)
			}
			if res.Schedules != o.Schedules {
				t.Fatalf("ran %d schedules, want %d", res.Schedules, o.Schedules)
			}
			kind, _ := ModelKindFor(e)
			if res.MaxBypass > kind.BypassBound() {
				t.Fatalf("max bypass %d exceeds bound %d", res.MaxBypass, kind.BypassBound())
			}
			if kind == KindSegment && res.Detaches == 0 {
				t.Errorf("no schedule exercised a segment detach — coverage went soft")
			}
			if res.SimDetaches >= 0 && res.SimDetaches != res.Detaches {
				t.Errorf("sim detached %d segments, model expects %d", res.SimDetaches, res.Detaches)
			}
		})
	}
}

// A differential request for an entry without a twin must fail loudly
// with ErrNoTwin, not run vacuously.
func TestDifferentialNoTwin(t *testing.T) {
	e, ok := registry.Lookup("TAS")
	if !ok {
		t.Fatal("TAS missing from catalog")
	}
	if e.SimTwin != "" {
		t.Fatal("test premise broken: TAS now declares a twin")
	}
	_, err := RunDifferential(e, 1, 5)
	var noTwin *ErrNoTwin
	if !errors.As(err, &noTwin) {
		t.Fatalf("RunDifferential(TAS) = %v, want ErrNoTwin", err)
	}
}

// The differential checker is only trustworthy if it actually rejects
// a policy mismatch: a FIFO program driven through the segment model's
// expectations (and vice versa) must diverge somewhere in the sweep.
func TestDifferentialDetectsPolicyMismatch(t *testing.T) {
	clh, ok := registry.Lookup("CLH")
	if !ok {
		t.Fatal("CLH missing from catalog")
	}
	// Lie about the family so ModelKindFor picks the segment model for
	// a strict-FIFO lock. Some schedule must then fail.
	liar := clh
	liar.Family = registry.FamilyReciprocating
	if _, err := RunDifferential(liar, 1, 50); err == nil {
		t.Fatal("CLH passed against the segment admission model — the checker cannot distinguish policies")
	}
}
