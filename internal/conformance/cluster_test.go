package conformance

import (
	"strings"
	"testing"

	"repro/internal/registry"
)

// The cluster composition must catch a lock whose store-level mutual
// exclusion is broken. The simulation is single-threaded, so a broken
// Locker cannot corrupt the store — instead this pins the negative
// direction the cluster check CAN see: with fencing disabled at every
// replica, the same faults that pass with fencing on must produce a
// reported stale-apply violation. (The fencing-on direction for every
// entry is covered by TestSuiteAllEntries via cluster-fence.)
func TestClusterCheckWiredIntoSuite(t *testing.T) {
	entries := registry.All()
	if len(entries) == 0 {
		t.Fatal("empty registry")
	}
	r := Run(entries[0], Options{Seed: 1, Goroutines: 2, Iters: 100, Schedules: 4})
	var haveFence, haveLease bool
	for _, c := range r.Results {
		switch c.Check {
		case "cluster-fence":
			haveFence = true
		case "lease-reacquire":
			haveLease = true
		}
	}
	if !haveFence || !haveLease {
		t.Fatalf("suite missing cluster checks: fence=%v lease=%v", haveFence, haveLease)
	}
}

// Named lease-client coverage: the three queue-lock families the
// roadmap calls out must pass the expiry → backoff → re-acquire cycle
// under chaos. TestSuiteAllEntries covers every entry; this pins the
// three by name so a registry reshuffle cannot silently drop them.
func TestLeaseReacquireCoreFamilies(t *testing.T) {
	want := []string{"recipro", "mcs", "clh"}
	for _, frag := range want {
		found := false
		for _, e := range registry.All() {
			if !strings.Contains(strings.ToLower(e.Name), frag) || !e.Boundable() {
				continue
			}
			found = true
			if err := CheckLeaseReacquire(e, Options{Seed: 7}); err != nil {
				t.Errorf("%s: %v", e.Name, err)
			}
			break
		}
		if !found {
			t.Errorf("no boundable registry entry matching %q", frag)
		}
	}
}
