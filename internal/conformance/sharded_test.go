package conformance

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/registry"
)

// brokenEntry fabricates a catalog-shaped entry around an arbitrary
// locker so the shard checks can be shown to actually detect defects,
// not just rubber-stamp the catalog.
func brokenEntry(name string, mk func() sync.Locker) registry.Entry {
	return registry.Entry{
		Name:    name,
		Family:  registry.FamilySpin,
		Caps:    registry.CapSimTwin, // opt in to the shard checks
		SimTwin: "TKT",               // never resolved by these checks
		New:     mk,
	}
}

// nopLocker admits everyone at once.
type nopLocker struct{}

func (nopLocker) Lock()   {}
func (nopLocker) Unlock() {}

// TestShardedChecksDetectBrokenLock proves the per-shard
// mutual-exclusion property has teeth: a no-op "lock" must trip the
// AdmissionLog overlap detector on at least one shard.
func TestShardedChecksDetectBrokenLock(t *testing.T) {
	if raceEnabled {
		t.Skip("intentionally races store state; the detector would (correctly) flag it")
	}
	e := brokenEntry("nop", func() sync.Locker { return nopLocker{} })
	o := testOptions()
	o.Goroutines = 8
	o.Iters = 4000
	err := CheckShardedMutualExclusion(e, o)
	if err == nil {
		t.Fatalf("CheckShardedMutualExclusion passed a no-op lock")
	}
	if Skipped(err) {
		t.Fatalf("no-op lock was skipped, not failed: %v", err)
	}
	if !strings.Contains(err.Error(), "shard") {
		t.Errorf("failure should name the offending shard: %v", err)
	}
}

// TestShardedChecksSkipWithoutSimTwin pins the gating rule: entries
// outside the CapSimTwin subset are skipped by both shard checks, so
// `make conformance` time stays proportionate to the verified subset.
func TestShardedChecksSkipWithoutSimTwin(t *testing.T) {
	var plain registry.Entry
	for _, e := range registry.All() {
		if !e.Caps.Has(registry.CapSimTwin) {
			plain = e
			break
		}
	}
	if plain.Name == "" {
		t.Skip("catalog has no non-SimTwin entry")
	}
	if err := CheckShardedMutualExclusion(plain, testOptions()); !Skipped(err) {
		t.Errorf("shard-mutex on %s: got %v, want skip", plain.Name, err)
	}
	if err := CheckShardedIterator(plain, testOptions()); !Skipped(err) {
		t.Errorf("shard-iter on %s: got %v, want skip", plain.Name, err)
	}
}

// TestShardedIteratorWithRealLock runs the torn-batch property against
// one real catalog lock directly (the full matrix runs via
// TestSuiteAllEntries); this keeps a fast, focused repro entry point
// when the property regresses.
func TestShardedIteratorWithRealLock(t *testing.T) {
	e, ok := registry.Lookup("Recipro")
	if !ok {
		t.Fatal("Recipro not in catalog")
	}
	if err := CheckShardedIterator(e, testOptions()); err != nil {
		t.Fatalf("CheckShardedIterator(Recipro): %v", err)
	}
}
