package conformance

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bounded"
	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/lockstat"
	"repro/internal/registry"
	"repro/internal/xrand"
)

// Options tune the invariant suite. Zero values select defaults.
type Options struct {
	// Seed derives every randomized schedule in the suite; the same
	// seed reproduces the same run.
	Seed uint64
	// Goroutines is the concurrency of the contention checks
	// (default 8).
	Goroutines int
	// Iters is the per-goroutine episode count of the contention
	// checks (default 2000).
	Iters int
	// Schedules is the differential checker's program count
	// (default 100).
	Schedules int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Goroutines == 0 {
		o.Goroutines = 8
	}
	if o.Iters == 0 {
		o.Iters = 2000
	}
	if o.Schedules == 0 {
		o.Schedules = 100
	}
	return o
}

// skipError marks a check that does not apply to the entry; Report
// renders it as a skip, not a failure.
type skipError string

func (s skipError) Error() string { return string(s) }

// Skipped reports whether err is a conformance skip marker.
func Skipped(err error) bool {
	_, ok := err.(skipError)
	return ok
}

// CheckMutualExclusion verifies the guarded-counter invariant under
// seeded randomized goroutine schedules: every critical section
// increments a plain counter and brackets itself in an AdmissionLog
// (which detects overlapping holders), with per-goroutine seeded
// perturbation — occasional yields before and inside the critical
// section — to vary the interleavings from run to run reproducibly.
func CheckMutualExclusion(e registry.Entry, o Options) error {
	o = o.withDefaults()
	l := e.New()
	log := lockstat.NewAdmissionLog()
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < o.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.NewXorShift64(o.Seed + uint64(g)*0x9e3779b9)
			for i := 0; i < o.Iters; i++ {
				if rng.Intn(8) == 0 {
					runtime.Gosched()
				}
				l.Lock()
				log.Enter(g)
				counter++
				if rng.Intn(16) == 0 {
					runtime.Gosched()
				}
				log.Exit(g)
				l.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if err := log.Err(); err != nil {
		return err
	}
	if want := o.Goroutines * o.Iters; counter != want {
		return fmt.Errorf("guarded counter = %d, want %d (lost increments ⇒ mutual exclusion violated)", counter, want)
	}
	return nil
}

// CheckTryLock verifies TryLock soundness under contention for
// CapTryLock entries: half the goroutines acquire with Lock, half
// with TryLock retries; successful acquisitions bracket an
// AdmissionLog (no false success — a TryLock success while the lock
// is held would trip the overlap check) and every success is
// released (no lost unlocks — the lock must be immediately
// re-acquirable when the goroutines drain).
func CheckTryLock(e registry.Entry, o Options) error {
	if !e.Caps.Has(registry.CapTryLock) {
		return skipError("no TryLock capability")
	}
	o = o.withDefaults()
	l := e.New()
	tl := l.(bounded.TryLocker)
	log := lockstat.NewAdmissionLog()
	counter := 0
	var successes, attempts atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < o.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.NewXorShift64(o.Seed ^ (uint64(g+1) << 32))
			for i := 0; i < o.Iters; i++ {
				if g%2 == 0 {
					l.Lock()
				} else {
					attempts.Add(1)
					if !tl.TryLock() {
						if rng.Intn(4) == 0 {
							runtime.Gosched()
						}
						continue
					}
				}
				successes.Add(1)
				log.Enter(g)
				counter++
				log.Exit(g)
				l.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if err := log.Err(); err != nil {
		return fmt.Errorf("false TryLock success: %w", err)
	}
	if int64(log.Len()) != successes.Load() || int64(counter) != successes.Load() {
		return fmt.Errorf("acquire/release imbalance: %d successes, %d admissions, counter %d",
			successes.Load(), log.Len(), counter)
	}
	// No lost unlocks: the drained lock must be immediately acquirable
	// and exclusive.
	if !tl.TryLock() {
		return fmt.Errorf("lock not re-acquirable after %d balanced episodes (lost unlock)", successes.Load())
	}
	if tl.TryLock() {
		return fmt.Errorf("TryLock succeeded on a held lock")
	}
	tl.Unlock()
	return nil
}

// CheckBounded verifies the bounded-acquisition contract for Boundable
// entries: LockFor(0) behaves like TryLock on both free and held
// locks, LockFor respects its deadline while the lock is held — also
// with chaos stalls armed — and LockCtx honors pre-cancelled contexts
// and deadlines, leaving the lock usable after every abandoned wait.
func CheckBounded(e registry.Entry, o Options) error {
	if !e.Boundable() {
		return skipError("not boundable")
	}
	o = o.withDefaults()
	bl, ok := bounded.For(e.New())
	if !ok {
		return fmt.Errorf("entry is Boundable() but bounded.For failed")
	}

	// LockFor(0) == TryLock: succeeds on a free lock, fails fast on a
	// held one.
	if !bl.LockFor(0) {
		return fmt.Errorf("LockFor(0) failed on a free lock")
	}
	bl.Unlock()
	bl.Lock()
	start := clock.Wall.Now()
	if bl.LockFor(0) {
		return fmt.Errorf("LockFor(0) succeeded on a held lock")
	}
	if el := clock.Wall.Now() - start; el > time.Second {
		return fmt.Errorf("LockFor(0) on a held lock took %v", el)
	}

	// Deadline respected while held.
	start = clock.Wall.Now()
	if bl.LockFor(25 * time.Millisecond) {
		return fmt.Errorf("LockFor succeeded on a held lock")
	}
	if el := clock.Wall.Now() - start; el < 25*time.Millisecond || el > 5*time.Second {
		return fmt.Errorf("LockFor(25ms) on a held lock returned after %v", el)
	}

	// Deadline respected under chaos stalls.
	chaos.Enable(chaos.DefaultConfig(o.Seed))
	start = clock.Wall.Now()
	got := bl.LockFor(25 * time.Millisecond)
	chaos.Disable()
	if got {
		return fmt.Errorf("LockFor under chaos succeeded on a held lock")
	}
	if el := clock.Wall.Now() - start; el > 5*time.Second {
		return fmt.Errorf("LockFor(25ms) under chaos returned after %v", el)
	}
	bl.Unlock()

	// Pre-cancelled context: no acquisition, correct error, lock left
	// free.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := bl.LockCtx(ctx); err != context.Canceled {
		return fmt.Errorf("LockCtx(cancelled) = %v, want context.Canceled", err)
	}
	if !bl.TryLock() {
		return fmt.Errorf("lock not free after cancelled LockCtx")
	}
	bl.Unlock()

	// Context deadline while held.
	bl.Lock()
	dctx, dcancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer dcancel()
	if err := bl.LockCtx(dctx); err != context.DeadlineExceeded {
		return fmt.Errorf("LockCtx(deadline) on a held lock = %v, want DeadlineExceeded", err)
	}
	bl.Unlock()

	// Usable after all abandoned waits.
	bl.Lock()
	bl.Unlock()
	return nil
}

// CheckAbandonment verifies abandonment safety with the chaos fault
// points armed: goroutines mix unbounded Lock with short LockFor
// deadlines (many of which abandon mid-queue, amplified by chaos
// delays, preemptions, and spurious wakes); every successful
// acquisition is counted under the lock, and afterwards the counter
// must equal the successes and the lock must still hand itself over
// cleanly.
func CheckAbandonment(e registry.Entry, o Options) error {
	if !e.Boundable() {
		return skipError("not boundable")
	}
	o = o.withDefaults()
	bl, ok := bounded.For(e.New())
	if !ok {
		return fmt.Errorf("entry is Boundable() but bounded.For failed")
	}
	chaos.Enable(chaos.DefaultConfig(o.Seed))
	defer chaos.Disable()

	log := lockstat.NewAdmissionLog()
	counter := 0
	var successes atomic.Int64
	iters := o.Iters / 4
	if iters < 50 {
		iters = 50
	}
	var wg sync.WaitGroup
	for g := 0; g < o.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.NewXorShift64(o.Seed + uint64(g)*0x517cc1b727220a95)
			for i := 0; i < iters; i++ {
				acquired := true
				if rng.Intn(2) == 0 {
					bl.Lock()
				} else {
					acquired = bl.LockFor(time.Duration(rng.Intn(50)) * time.Microsecond)
				}
				if !acquired {
					continue
				}
				successes.Add(1)
				log.Enter(g)
				counter++
				log.Exit(g)
				bl.Unlock()
			}
		}(g)
	}
	wg.Wait()
	chaos.Disable()
	if err := log.Err(); err != nil {
		return err
	}
	if int64(counter) != successes.Load() {
		return fmt.Errorf("counter %d != %d successes after abandonment storm", counter, successes.Load())
	}
	// The lock must have survived the storm.
	bl.Lock()
	bl.Unlock()
	return nil
}
