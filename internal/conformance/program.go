package conformance

import (
	"fmt"

	"repro/internal/xrand"
)

// EventKind distinguishes program events.
type EventKind uint8

const (
	// EvArrive starts one acquisition attempt: instance Inst calls
	// Lock and either acquires immediately (lock free) or publishes
	// itself and begins waiting.
	EvArrive EventKind = iota
	// EvRelease makes the current holder leave its critical section.
	EvRelease
)

// Event is one step of an admission program. For EvArrive, Inst is the
// arriving instance; for EvRelease it is the expected holder. Admits
// is the instance the abstract model expects to be admitted by this
// event, or -1 when the event admits nobody.
type Event struct {
	Kind   EventKind
	Inst   int
	Admits int
}

// Program is one deterministic admission schedule: a seeded sequence
// of arrive/release events over Threads logical threads performing
// Episodes acquisitions each, together with the abstract model's
// expected admission order. Each acquisition attempt is a distinct
// instance (numbered in arrival order); ThreadOf maps instances back
// to logical threads for fairness/bypass metrics. A logical thread
// never has two instances in flight at once, which requires the
// generator to know who holds the lock at each release — that is why
// the program is generated jointly with (and is specific to) one
// admission ModelKind.
type Program struct {
	Seed      uint64
	Kind      ModelKind
	Threads   int
	Episodes  int
	Instances int
	ThreadOf  []int
	Events    []Event
	// Expected is the model's admission order over instances; its
	// length is always Instances.
	Expected []int
	// Detaches is the model's segment-detach count (0 for FIFO kinds).
	Detaches int
}

// NewProgram generates the deterministic program for (seed, threads,
// episodes, kind). The generator biases toward arrivals (~60%) so
// queues build up and segment structure is exercised, and it keeps the
// program well-formed: a release is only issued while the lock is
// held, and the final events drain every outstanding holder.
func NewProgram(seed uint64, threads, episodes int, kind ModelKind) Program {
	if threads < 1 || episodes < 1 {
		panic("conformance: NewProgram needs threads, episodes >= 1")
	}
	rng := xrand.NewXorShift64(seed)
	m := newModel(kind)
	p := Program{Seed: seed, Kind: kind, Threads: threads, Episodes: episodes}

	remaining := make([]int, threads)
	for t := range remaining {
		remaining[t] = episodes
	}
	inflight := make([]bool, threads)
	outstanding := 0

	for {
		var eligible []int
		for t := 0; t < threads; t++ {
			if remaining[t] > 0 && !inflight[t] {
				eligible = append(eligible, t)
			}
		}
		if len(eligible) == 0 && outstanding == 0 {
			break
		}
		arrive := len(eligible) > 0 && (outstanding == 0 || rng.Intn(100) < 60)
		if arrive {
			t := eligible[rng.Intn(len(eligible))]
			inst := len(p.ThreadOf)
			p.ThreadOf = append(p.ThreadOf, t)
			remaining[t]--
			inflight[t] = true
			outstanding++
			adm := m.arrive(inst)
			if adm >= 0 {
				p.Expected = append(p.Expected, adm)
			}
			p.Events = append(p.Events, Event{Kind: EvArrive, Inst: inst, Admits: adm})
		} else {
			h := m.holder()
			inflight[p.ThreadOf[h]] = false
			outstanding--
			adm := m.release()
			if adm >= 0 {
				p.Expected = append(p.Expected, adm)
			}
			p.Events = append(p.Events, Event{Kind: EvRelease, Inst: h, Admits: adm})
		}
	}
	p.Instances = len(p.ThreadOf)
	p.Detaches = m.detaches()
	return p
}

// MaxBypass computes the paper's bypass metric over the program's
// expected schedule: for each waiting interval (an instance's arrival
// event to its admission event), the number of admissions of any
// single other logical thread within the interval. The paper
// guarantees ≤ 2 for the Reciprocating discipline and FIFO locks give
// ≤ 1.
func (p Program) MaxBypass() int {
	// Event index at which each instance arrives and is admitted.
	arriveAt := make([]int, p.Instances)
	admitAt := make([]int, p.Instances)
	for idx, ev := range p.Events {
		if ev.Kind == EvArrive {
			arriveAt[ev.Inst] = idx
		}
		if ev.Admits >= 0 {
			admitAt[ev.Admits] = idx
		}
	}
	max := 0
	counts := make([]int, p.Threads)
	for inst := 0; inst < p.Instances; inst++ {
		for t := range counts {
			counts[t] = 0
		}
		for idx := arriveAt[inst] + 1; idx <= admitAt[inst]; idx++ {
			if a := p.Events[idx].Admits; a >= 0 && a != inst {
				counts[p.ThreadOf[a]]++
				if counts[p.ThreadOf[a]] > max {
					max = counts[p.ThreadOf[a]]
				}
			}
		}
	}
	return max
}

// Validate checks the program's internal consistency (generator
// self-test): every instance admitted exactly once, events balanced,
// bypass within the kind's bound.
func (p Program) Validate() error {
	if len(p.Expected) != p.Instances {
		return fmt.Errorf("%d admissions for %d instances", len(p.Expected), p.Instances)
	}
	seen := make([]bool, p.Instances)
	for _, i := range p.Expected {
		if i < 0 || i >= p.Instances || seen[i] {
			return fmt.Errorf("admission order %v is not a permutation", p.Expected)
		}
		seen[i] = true
	}
	arr, rel := 0, 0
	for _, ev := range p.Events {
		if ev.Kind == EvArrive {
			arr++
		} else {
			rel++
		}
	}
	if arr != p.Instances || rel != p.Instances {
		return fmt.Errorf("events unbalanced: %d arrivals, %d releases, %d instances", arr, rel, p.Instances)
	}
	if got, bound := p.MaxBypass(), p.Kind.BypassBound(); got > bound {
		return fmt.Errorf("model bypass %d exceeds the discipline's bound %d", got, bound)
	}
	return nil
}
