package conformance

import (
	"testing"

	"repro/internal/registry"
)

// Conformance tests must not run in parallel: the suite owns two
// process-global knobs — the waiter sink (real.go swaps in an
// ArrivalProbe per arrival) and the chaos switch (CheckBounded and
// CheckAbandonment arm it). t.Parallel here would cross-contaminate
// entries.

// testOptions scales the suite to the test tier: plain `go test`
// (tier-1) runs a moderate profile, -short drops to a smoke profile,
// and the full 100-schedule differential tier lives in
// `make conformance` (cmd/conformance).
func testOptions() Options {
	if testing.Short() {
		return Options{Seed: 1, Goroutines: 4, Iters: 150, Schedules: 8}
	}
	return Options{Seed: 1, Goroutines: 8, Iters: 600, Schedules: 25}
}

// Every catalog entry — both tracks' registry surface — must pass the
// whole suite: mutual exclusion, TryLock soundness, the bounded
// contract (plain and under chaos), abandonment safety, unlock
// discipline, and (for twin-declaring entries) the differential
// checker.
func TestSuiteAllEntries(t *testing.T) {
	o := testOptions()
	for _, e := range registry.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			r := Run(e, o)
			for _, c := range r.Results {
				switch {
				case c.Err == nil:
				case Skipped(c.Err):
					t.Logf("%s: skip: %v", c.Check, c.Err)
				default:
					t.Errorf("%s: %v", c.Check, c.Err)
				}
			}
			if r.Diff != nil && !r.Failed() {
				t.Logf("differential: %d schedules, %d events, max bypass %d, %d detaches",
					r.Diff.Schedules, r.Diff.Events, r.Diff.MaxBypass, r.Diff.Detaches)
			}
		})
	}
}
