package conformance

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/bounded"
	"repro/internal/clock"
	"repro/internal/registry"
	"repro/internal/xrand"
)

// Deterministic virtual-time conformance: real catalog locks driven
// through seeded bounded-acquisition and backoff schedules under
// clock.Virtual. The virtual runner admits exactly one runnable worker
// at a time — a timer fires only when every registered worker is
// blocked in a virtual wait, and after the clock refactor every wait
// in these locks (spin escalation sleeps, bounded deadlines, backoff
// delays) is clock-paced — so the interleaving, and therefore the
// event trace, is a pure function of the seed. Same seed, same trace,
// byte for byte; that is the property CheckVTime pins.
//
// This is weaker than the exhaustive explorer over the abstract
// cluster FSM (internal/explore) but runs the *actual* lock code:
// the Reciprocating admission chain, MCS/CLH queue handoff, the
// waiter escalation ladder, and the decorrelated-jitter backoff all
// execute their real paths, just on a synthetic time axis.

// VTimeLocks are the catalog entries exercised by the virtual-time
// schedules: the paper's lock plus the two classic queue baselines,
// all natively bounded so LockFor runs the real abandonment paths.
var VTimeLocks = []string{"Recipro", "MCS", "CLH"}

const (
	vtWorkers = 4
	vtRounds  = 6
)

// vtBackoffPolicy is the retry policy timed-out workers sleep under
// between LockFor attempts. Mult is left at the default (3) so the
// decorrelated-jitter draw is exercised; determinism comes from the
// per-worker seed, not from suppressing jitter.
var vtBackoffPolicy = backoff.Policy{
	Base: 50 * time.Microsecond,
	Cap:  800 * time.Microsecond,
}

// VTimeTrace builds lockName through the registry pipeline on a fresh
// virtual clock and runs the seeded schedule to completion, returning
// the merged event trace. Workers alternate between unbounded Lock
// (even ids) and LockFor with backoff-paced retries (odd ids); every
// acquire, timeout, backoff delay, and release is logged with its
// virtual timestamp.
func VTimeTrace(lockName string, seed uint64) (string, error) {
	v := clock.NewVirtual()
	l, err := registry.Build(lockName, registry.WithClock(v), registry.WithBounded())
	if err != nil {
		return "", err
	}
	b, ok := l.(bounded.Locker)
	if !ok {
		return "", fmt.Errorf("vtime: %s did not build as a bounded.Locker", lockName)
	}

	var mu sync.Mutex
	var lines []string
	logf := func(w int, format string, a ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf("%9dns w%d %s", v.Now().Nanoseconds(), w, fmt.Sprintf(format, a...)))
		mu.Unlock()
	}

	for wi := 0; wi < vtWorkers; wi++ {
		wi := wi
		rng := xrand.NewXorShift64(seed ^ (uint64(wi+1) * 0x9e3779b97f4a7c15))
		bo := backoff.New(vtBackoffPolicy, seed+uint64(wi)*7919)
		v.Go(func() {
			for r := 0; r < vtRounds; r++ {
				// Distinct, seeded arrival instants: the +1µs floor and
				// per-worker stream keep same-instant collisions rare, and
				// when they do collide the virtual clock's (when, seq)
				// tiebreak keeps the firing order deterministic anyway.
				v.Sleep(time.Duration(1+rng.Intn(120)) * time.Microsecond)
				acquired := false
				if wi%2 == 0 {
					b.Lock()
					acquired = true
					logf(wi, "acquire r%d", r)
				} else {
					budget := time.Duration(20+rng.Intn(100)) * time.Microsecond
					for attempt := 0; attempt < 4; attempt++ {
						if b.LockFor(budget) {
							acquired = true
							logf(wi, "acquire r%d attempt%d", r, attempt)
							bo.Reset()
							break
						}
						logf(wi, "timeout r%d attempt%d budget=%v", r, attempt, budget)
						d := bo.Next()
						logf(wi, "backoff r%d sleep=%v", r, d)
						v.Sleep(d)
					}
					if !acquired {
						logf(wi, "giveup r%d", r)
						continue
					}
				}
				// Hold the lock across a virtual sleep so contenders pile
				// up and the queue handoff paths actually run.
				v.Sleep(time.Duration(5+rng.Intn(40)) * time.Microsecond)
				logf(wi, "release r%d", r)
				b.Unlock()
			}
			logf(wi, "exit")
		})
		// Serialize startup: worker wi must reach its first virtual sleep
		// before wi+1 is registered, so registration order is pinned.
		v.WaitBlocked(wi + 1)
	}
	if err := v.Run(); err != nil {
		return "", fmt.Errorf("vtime: %s seed %d: %w", lockName, seed, err)
	}
	return strings.Join(lines, "\n") + "\n", nil
}

// CheckVTime runs the schedule twice per (lock, seed) and fails on any
// byte difference between the traces — the determinism contract of the
// virtual-time substrate, checked over the real lock implementations.
// It returns the traces of the first run keyed by "lock/seed" so
// callers can report sizes or pin goldens.
func CheckVTime(lockNames []string, seeds []uint64) (map[string]string, error) {
	traces := make(map[string]string, len(lockNames)*len(seeds))
	for _, name := range lockNames {
		for _, seed := range seeds {
			a, err := VTimeTrace(name, seed)
			if err != nil {
				return nil, err
			}
			b, err := VTimeTrace(name, seed)
			if err != nil {
				return nil, err
			}
			if a != b {
				return nil, fmt.Errorf("vtime: %s seed %d: traces diverge across runs\n--- first (%d bytes)\n%s\n--- second (%d bytes)\n%s",
					name, seed, len(a), a, len(b), b)
			}
			traces[fmt.Sprintf("%s/%d", name, seed)] = a
		}
	}
	return traces, nil
}
