package conformance

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/bounded"
	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/registry"
)

// Cluster-level properties: the deterministic cluster simulation
// (internal/cluster) is parameterized over the per-shard store lock,
// so every registry entry can be dropped under a replicated, fenced,
// fault-scripted kvstore cluster — the strongest composition the
// repository can subject a lock to. The companion re-acquisition check
// exercises the lease-client pattern (bounded acquisition, expiry,
// backoff, retry) against the real lock implementation under chaos.

// clusterScript is a compressed fault gauntlet that fits the small
// conformance topology: a paused holder with a forced expiry (the
// stale-write window), then a crash/restart through a lease handoff.
const clusterScript = `
at 80ms pause n0 for 150ms
at 100ms expire shard 0
at 120ms expire shard 1
at 200ms crash n1
at 280ms restart n1
`

// CheckClusterFencing runs the cluster simulation with the entry as
// every replica's per-shard store lock and demands a violation-free
// run: lease exclusivity, no stale-fenced applies, version
// monotonicity, bounded retry, and post-heal convergence all hold with
// this lock under the store. The simulation is single-threaded, so
// this is a composition check (the lock behind kvstore.Fenced behind a
// replicated protocol), not a concurrency check — the concurrency
// checks live in the rest of the suite.
func CheckClusterFencing(e registry.Entry, o Options) error {
	if !e.Caps.Has(registry.CapSimTwin) {
		return skipError("cluster properties run on the CapSimTwin subset")
	}
	o = o.withDefaults()
	script, err := cluster.ParseScript(clusterScript)
	if err != nil {
		return fmt.Errorf("internal: bad cluster script: %w", err)
	}
	res, err := cluster.Run(cluster.Config{
		Nodes: 3, Shards: 2, Seed: o.Seed,
		Duration: 450 * time.Millisecond,
		Heal:     1200 * time.Millisecond,
		Script:   script,
		NewLock:  func() sync.Locker { return e.New() },
	})
	if err != nil {
		return err
	}
	if len(res.Violations) > 0 {
		return fmt.Errorf("cluster invariants broke over this lock:\n%s", res.FailureReport(""))
	}
	if res.Counters.Grants == 0 || res.Counters.Committed == 0 {
		return fmt.Errorf("cluster made no progress over this lock: %+v", res.Counters)
	}
	return nil
}

// CheckLeaseReacquire verifies the lease-client acquisition pattern on
// Boundable entries with the chaos fault points armed: a bounded
// acquisition against a held lock must expire (LockFor returning
// false, LockCtx returning DeadlineExceeded — the local analogue of a
// lease lapsing mid-wait), and the expired waiter must then re-acquire
// after backoff once the holder releases, leaving the lock clean. Both
// bounded forms are exercised for several rounds.
func CheckLeaseReacquire(e registry.Entry, o Options) error {
	if !e.Boundable() {
		return skipError("not boundable")
	}
	o = o.withDefaults()
	bl, ok := bounded.For(e.New())
	if !ok {
		return fmt.Errorf("entry is Boundable() but bounded.For failed")
	}
	chaos.Enable(chaos.DefaultConfig(o.Seed))
	defer chaos.Disable()

	const rounds = 6
	pol := backoff.Policy{Base: 200 * time.Microsecond, Cap: 5 * time.Millisecond}
	for round := 0; round < rounds; round++ {
		useCtx := round%2 == 1
		bl.Lock() // the incumbent lease holder

		// The bounded wait must expire while the lock is held.
		if useCtx {
			ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
			err := bl.LockCtx(ctx)
			cancel()
			if err != context.DeadlineExceeded {
				bl.Unlock()
				return fmt.Errorf("round %d: LockCtx on a held lock = %v, want DeadlineExceeded", round, err)
			}
		} else if bl.LockFor(time.Millisecond) {
			bl.Unlock()
			return fmt.Errorf("round %d: LockFor(1ms) succeeded on a held lock", round)
		}

		// An expired waiter retries under backoff while the holder
		// finishes; it must re-acquire (and releases its own
		// acquisition — unlock stays on the acquiring goroutine).
		done := make(chan error, 1)
		go func() {
			bo := backoff.New(pol, o.Seed+uint64(round))
			deadline := clock.Wall.Now() + 10*time.Second
			attempts := 0
			for clock.Wall.Now() < deadline {
				attempts++
				if useCtx {
					ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
					err := bl.LockCtx(ctx)
					cancel()
					if err == nil {
						bl.Unlock()
						done <- nil
						return
					}
					if err != context.DeadlineExceeded {
						done <- fmt.Errorf("LockCtx retry = %v", err)
						return
					}
				} else if bl.LockFor(2 * time.Millisecond) {
					bl.Unlock()
					done <- nil
					return
				}
				clock.Wall.Sleep(bo.Next())
			}
			done <- fmt.Errorf("no re-acquisition within 10s (%d attempts)", attempts)
		}()

		clock.Wall.Sleep(3 * time.Millisecond) // hold across a few retry attempts
		bl.Unlock()

		if err := <-done; err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}

		// The lock must still hand itself over cleanly. Blocking
		// acquire, not LockFor(0): abandoned waiters may leave
		// transient queue residue that the next full acquisition
		// sweeps out (CheckAbandonment's drain probe is blocking for
		// the same reason).
		bl.Lock()
		bl.Unlock()
	}
	return nil
}
