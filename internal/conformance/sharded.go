package conformance

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/kvstore"
	"repro/internal/lockstat"
	"repro/internal/registry"
	"repro/internal/xrand"
)

// Shard-aware properties: the sharded kvstore is the repository's
// first composite subject — many locks cooperating behind one store —
// so the suite checks the composition, not just each lock alone.
// Both checks run on the CapSimTwin subset of the catalog (the
// entries with a verified deterministic model), which keeps the
// `make conformance` tier's runtime proportionate while still
// covering every algorithm family that the differential harness
// vouches for.

// shardCheckShards is the partition count of the conformance store.
const shardCheckShards = 8

// admissionLocker brackets every critical section of one shard's lock
// in a lockstat.AdmissionLog — the same overlapping-holder probe the
// flat mutual-exclusion check uses, here applied per shard. The
// holder id is fixed at 0: the log's overlap detection is what the
// property needs, and goroutine identity is not observable from
// inside a sync.Locker. Every few acquisitions the probe yields while
// inside the critical section — without that, a single-P scheduler
// almost never preempts the store's short guarded regions and a
// broken lock would sail through undetected (CheckMutualExclusion
// yields the same way).
type admissionLocker struct {
	inner sync.Locker
	log   *lockstat.AdmissionLog
	ticks atomic.Uint64
}

func (a *admissionLocker) Lock() {
	a.inner.Lock()
	a.log.Enter(0)
	if a.ticks.Add(1)%7 == 0 {
		runtime.Gosched()
	}
}

func (a *admissionLocker) Unlock() {
	a.log.Exit(0)
	a.inner.Unlock()
}

// shardedUnderTest builds a sharded store whose per-shard locks are
// fresh instances of e wrapped in admission logs, returning the store
// and the logs in shard order.
func shardedUnderTest(e registry.Entry) (*kvstore.ShardedDB, []*lockstat.AdmissionLog) {
	logs := make([]*lockstat.AdmissionLog, 0, shardCheckShards)
	db := kvstore.OpenSharded(kvstore.ShardedOptions{
		Shards:        shardCheckShards,
		MemTableBytes: 4 << 10,
		MaxRuns:       2,
		NewLock: func() sync.Locker {
			log := lockstat.NewAdmissionLog()
			logs = append(logs, log)
			return &admissionLocker{inner: e.New(), log: log}
		},
	})
	return db, logs
}

// CheckShardedMutualExclusion verifies per-shard mutual exclusion in
// the sharded kvstore: goroutines hammer the store with a seeded mix
// of single-key operations and cross-shard batches while every
// shard's lock reports its admissions through an AdmissionLog; any
// overlapping holders on any shard — including a cross-shard batch
// racing a single-key writer for the same shard — fail the check.
// Every shard must also have actually admitted work, so a broken hash
// cannot pass by starving shards.
func CheckShardedMutualExclusion(e registry.Entry, o Options) error {
	if !e.Caps.Has(registry.CapSimTwin) {
		return skipError("shard properties run on the CapSimTwin subset")
	}
	o = o.withDefaults()
	db, logs := shardedUnderTest(e)
	iters := o.Iters / 4
	if iters < 100 {
		iters = 100
	}
	var wg sync.WaitGroup
	for g := 0; g < o.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.NewXorShift64(o.Seed + uint64(g)*0xa24baed4963ee407)
			for i := 0; i < iters; i++ {
				k := kvstore.Key(uint64(rng.Intn(256)))
				switch rng.Intn(6) {
				case 0:
					db.Put(k, k)
				case 1:
					db.Delete(k)
				case 2:
					var b kvstore.Batch
					for j := 0; j < 4; j++ {
						b.Put(kvstore.Key(uint64(rng.Intn(256))), k)
					}
					db.Write(&b)
				default:
					db.Get(k)
				}
				if rng.Intn(16) == 0 {
					runtime.Gosched()
				}
			}
		}(g)
	}
	wg.Wait()
	for s, log := range logs {
		if err := log.Err(); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		if log.Len() == 0 {
			return fmt.Errorf("shard %d admitted no critical sections over %d ops (hash starvation)", s, o.Goroutines*iters)
		}
	}
	return nil
}

// CheckShardedIterator verifies cross-shard snapshot consistency: a
// writer repeatedly applies one atomic batch stamping the same
// generation onto a key group that spans every shard, while readers
// take iterator snapshots and demand a single generation across the
// whole group — a torn multi-key batch (some shards new, some old)
// fails immediately. The store's stripe table makes this hold by
// construction (batches and snapshots both hold all involved shard
// locks); the check guards the discipline against regression under
// every lock algorithm.
func CheckShardedIterator(e registry.Entry, o Options) error {
	if !e.Caps.Has(registry.CapSimTwin) {
		return skipError("shard properties run on the CapSimTwin subset")
	}
	o = o.withDefaults()
	db, _ := shardedUnderTest(e)

	// One key per shard, so every batch straddles all of them.
	group := make([][]byte, shardCheckShards)
	for s, u := 0, uint64(0); s < shardCheckShards; u++ {
		k := kvstore.Key(u)
		if db.ShardIndex(k) == s {
			group[s] = k
			s++
		}
	}
	write := func(gen uint64) {
		var b kvstore.Batch
		var v [8]byte
		binary.BigEndian.PutUint64(v[:], gen)
		for _, k := range group {
			b.Put(k, v[:])
		}
		db.Write(&b)
	}
	write(0)

	snapshots := o.Iters / 8
	if snapshots < 50 {
		snapshots = 50
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for gen := uint64(1); ; gen++ {
			select {
			case <-stop:
				return
			default:
				write(gen)
			}
		}
	}()
	defer func() {
		close(stop)
		wg.Wait()
	}()

	for i := 0; i < snapshots; i++ {
		it := db.NewIterator()
		gens := map[uint64]bool{}
		found := 0
		for it.Next() {
			for _, k := range group {
				if bytes.Equal(it.Key(), k) {
					gens[binary.BigEndian.Uint64(it.Value())] = true
					found++
				}
			}
		}
		if found != shardCheckShards {
			return fmt.Errorf("snapshot %d: saw %d of %d group keys (batch atomicity or iterator completeness broken)",
				i, found, shardCheckShards)
		}
		if len(gens) != 1 {
			return fmt.Errorf("snapshot %d observed a torn cross-shard batch: generations %v", i, keysOf(gens))
		}
	}
	return nil
}

func keysOf(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
