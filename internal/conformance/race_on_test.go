//go:build race

package conformance

// raceEnabled reports whether the race detector is active. The
// broken-lock negative test intentionally violates mutual exclusion
// over real store state, which the detector (correctly) reports as a
// data race; the test skips there and runs in plain builds.
const raceEnabled = true
