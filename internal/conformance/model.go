// Package conformance is the cross-track correctness harness: one
// registry-driven property suite that every catalog lock passes
// through, plus a differential checker that drives a Track A (real Go)
// lock and its Track B (coherence-simulated) twin through the same
// deterministic admission schedule and demands identical behavior.
//
// Three independent legs produce the admission order for one generated
// event program:
//
//   - an abstract admission model (this file): a few lines of pure
//     bookkeeping encoding the paper's admission discipline — FIFO for
//     ticket/queue locks, LIFO-within-segment / FIFO-between-segments
//     for the Reciprocating family and Chen's stack lock;
//   - the real lock, serialized by the event driver (real.go) and
//     observed through lockstat.AdmissionLog and waiter.ArrivalProbe;
//   - the sim twin, driven one memory operation at a time through
//     coherence.Stepper (sim.go) with admissions from Ctx.Admit.
//
// All three must agree exactly; any divergence — a sim twin drifting
// from its real lock, or either drifting from the paper's discipline —
// is a conformance failure.
package conformance

import "repro/internal/registry"

// ModelKind selects the abstract admission discipline of a lock
// family.
type ModelKind int

const (
	// KindFIFO: strict arrival-order admission (ticket and queue
	// locks).
	KindFIFO ModelKind = iota
	// KindSegment: the paper's Reciprocating discipline — arrivals
	// push onto a stack; a release with no entry-segment successor
	// detaches the stack into a new entry segment admitted LIFO, so
	// admission is LIFO within a segment and FIFO between segments,
	// with bypass bounded by 2 (§3, §9).
	KindSegment
)

// BypassBound is the paper's per-waiter bypass guarantee for the kind:
// while one thread waits, any single other thread may be admitted at
// most this many times.
func (k ModelKind) BypassBound() int {
	if k == KindSegment {
		return 2
	}
	return 1
}

// ModelKindFor maps a registry entry to its admission discipline by
// family. The second result is false for families whose admission
// order is unspecified (spin, futex, runtime locks are admission-
// anarchic: whoever's CAS lands first wins).
func ModelKindFor(e registry.Entry) (ModelKind, bool) {
	switch e.Family {
	case registry.FamilyReciprocating, registry.FamilySegment:
		return KindSegment, true
	case registry.FamilyQueue, registry.FamilyTicket:
		return KindFIFO, true
	default:
		return 0, false
	}
}

// admissionModel replays admission decisions for one event program.
// arrive and release return the instance admitted by the event, or -1
// when the event admits nobody (a queued arrival; a release that
// leaves the lock free).
type admissionModel interface {
	arrive(inst int) int
	release() int
	holder() int
	detaches() int
}

func newModel(kind ModelKind) admissionModel {
	if kind == KindSegment {
		return &segmentModel{hold: -1}
	}
	return &fifoModel{hold: -1}
}

// fifoModel admits strictly in arrival order.
type fifoModel struct {
	q    []int
	hold int
}

func (m *fifoModel) arrive(inst int) int {
	if m.hold < 0 {
		m.hold = inst
		return inst
	}
	m.q = append(m.q, inst)
	return -1
}

func (m *fifoModel) release() int {
	if len(m.q) == 0 {
		m.hold = -1
		return -1
	}
	m.hold = m.q[0]
	m.q = m.q[1:]
	return m.hold
}

func (m *fifoModel) holder() int   { return m.hold }
func (m *fifoModel) detaches() int { return 0 }

// segmentModel is the paper's two-list discipline (Listing 1 in ~15
// lines): waiters accumulate on an arrival stack; when the entry
// segment is empty a release detaches the stack, reversing it into the
// new entry segment (newest arrival first), and admits its head.
type segmentModel struct {
	hold   int
	entry  []int // detached segment, in admission order
	stack  []int // arrivals since the last detach, oldest first
	detach int
}

func (m *segmentModel) arrive(inst int) int {
	if m.hold < 0 {
		m.hold = inst
		return inst
	}
	m.stack = append(m.stack, inst)
	return -1
}

func (m *segmentModel) release() int {
	if len(m.entry) > 0 {
		m.hold = m.entry[0]
		m.entry = m.entry[1:]
		return m.hold
	}
	if len(m.stack) == 0 {
		m.hold = -1
		return -1
	}
	m.detach++
	for i := len(m.stack) - 1; i >= 0; i-- {
		m.entry = append(m.entry, m.stack[i])
	}
	m.stack = m.stack[:0]
	m.hold = m.entry[0]
	m.entry = m.entry[1:]
	return m.hold
}

func (m *segmentModel) holder() int   { return m.hold }
func (m *segmentModel) detaches() int { return m.detach }
