package conformance

import (
	"testing"

	"repro/internal/registry"
)

// The discipline declaration table must cover exactly the probe-able
// catalog: every non-runtime entry declared, no stale names for locks
// that left the catalog. (Whether each declaration matches observed
// behavior is CheckUnlockDiscipline's job, exercised per entry by
// TestSuiteAllEntries.)
func TestDisciplineDeclarationsComplete(t *testing.T) {
	inCatalog := map[string]bool{}
	for _, e := range registry.All() {
		if e.Family == registry.FamilyRuntime {
			if _, ok := unlockDiscipline[e.Name]; ok {
				t.Errorf("%s: runtime-family entries throw unrecoverably and must not be declared", e.Name)
			}
			continue
		}
		inCatalog[e.Name] = true
		if _, ok := DeclaredDiscipline(e); !ok {
			t.Errorf("%s: no declared unlock-of-unlocked discipline", e.Name)
		}
	}
	for name := range unlockDiscipline {
		if !inCatalog[name] {
			t.Errorf("unlockDiscipline declares %q, which is not in the catalog", name)
		}
	}
}

func TestDisciplineString(t *testing.T) {
	for d, want := range map[Discipline]string{
		DisciplineTolerate: "tolerates",
		DisciplinePanic:    "panics",
		DisciplineWedge:    "wedges",
	} {
		if got := d.String(); got != want {
			t.Errorf("Discipline(%d).String() = %q, want %q", d, got, want)
		}
	}
}
