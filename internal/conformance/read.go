package conformance

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/lockstat"
	"repro/internal/registry"
	"repro/internal/rwlock"
	"repro/internal/xrand"
)

// CheckReadSharing verifies the read-path contract for entries
// claiming CapReadShared or CapOptimisticRead (and skips for everyone
// else):
//
//   - the claimed surface is real — the built lock implements the
//     interface and rwlock.IsReadShared/IsOptimistic confirm it is not
//     a decorator's exclusive fallback;
//   - shared readers are actually admitted together (a second reader
//     gets in while the first holds RLock, and a randomized storm's
//     AdmissionLog records MaxShared ≥ 2) while writers fully exclude
//     them (the log's shared/exclusive overlap checks);
//   - optimistic readers never trust torn state: validated sections
//     observed a consistent guarded pair, odd (writer-held) stamps
//     never validate;
//   - a writer conflict storm — with the chaos fault points armed —
//     cannot make OptimisticRead spin unboundedly: the combinators'
//     escalation to the internal/backoff jitter floor (and, for OCC,
//     the real-lock fallback) must let a fixed batch of reads
//     terminate.
func CheckReadSharing(e registry.Entry, o Options) error {
	claimsRW := e.Caps.Has(registry.CapReadShared)
	claimsOpt := e.Caps.Has(registry.CapOptimisticRead)
	if !claimsRW && !claimsOpt {
		return skipError("no read-path capability")
	}
	o = o.withDefaults()
	l := e.New()
	if claimsRW {
		rw, ok := l.(rwlock.RWLocker)
		if !ok || !rwlock.IsReadShared(l) {
			return fmt.Errorf("CapReadShared claimed but the built lock's RLock path does not share")
		}
		if err := checkConcurrentReaders(rw); err != nil {
			return err
		}
		if err := checkReaderWriterStorm(rw, o); err != nil {
			return err
		}
	}
	if claimsOpt {
		opt, ok := l.(rwlock.OptimisticLocker)
		if !ok || !rwlock.IsOptimistic(l) {
			return fmt.Errorf("CapOptimisticRead claimed but the built lock's optimistic path is not real")
		}
		if err := checkOptimisticConsistency(opt); err != nil {
			return err
		}
		if err := checkConflictStormTerminates(opt, o); err != nil {
			return err
		}
	}
	return nil
}

// checkConcurrentReaders is the deterministic sharing witness: a
// second reader must be admitted while the first still holds RLock. A
// lock that serializes readers deadlocks here instead, so the wait is
// bounded and reported.
func checkConcurrentReaders(rw rwlock.RWLocker) error {
	rw.RLock()
	admitted := make(chan struct{})
	go func() {
		rw.RLock()
		close(admitted)
		rw.RUnlock()
	}()
	if clock.Wall.ParkFor(10*time.Second, admitted) {
		rw.RUnlock()
		return fmt.Errorf("second reader was not admitted while the first held RLock (readers serialize)")
	}
	rw.RUnlock()
	return nil
}

// checkReaderWriterStorm mixes shared and exclusive acquirers over an
// AdmissionLog: any reader inside with a writer (either direction) is
// a violation, and the storm must exhibit actual reader overlap
// (MaxShared ≥ 2), not just legality.
func checkReaderWriterStorm(rw rwlock.RWLocker, o Options) error {
	log := lockstat.NewAdmissionLog()
	iters := o.Iters / 2
	if iters < 100 {
		iters = 100
	}
	var wg sync.WaitGroup
	for g := 0; g < o.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.NewXorShift64(o.Seed ^ (uint64(g+1) * 0x2545f4914f6cdd1d))
			writer := g%4 == 0
			for i := 0; i < iters; i++ {
				if writer {
					rw.Lock()
					log.Enter(g)
					if rng.Intn(16) == 0 {
						runtime.Gosched()
					}
					log.Exit(g)
					rw.Unlock()
				} else {
					rw.RLock()
					log.EnterShared(g)
					if rng.Intn(4) == 0 {
						runtime.Gosched()
					}
					log.ExitShared(g)
					rw.RUnlock()
				}
			}
		}(g)
	}
	wg.Wait()
	if err := log.Err(); err != nil {
		return err
	}
	if log.MaxShared() < 2 {
		return fmt.Errorf("readers never overlapped across %d shared admissions (MaxShared=%d) — the shared path appears serialized", log.Len(), log.MaxShared())
	}
	return nil
}

// checkOptimisticConsistency races manual ReadBegin/ReadValidate
// sections against a writer that keeps a guarded pair in lockstep
// (y == x+1): a validated section must have observed a consistent
// pair, and a stamp taken mid-write (odd) or while the writer holds
// the lock must never validate.
func checkOptimisticConsistency(opt rwlock.OptimisticLocker) error {
	var x, y atomic.Uint64
	y.Store(1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var g uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			g++
			opt.Lock()
			x.Store(g)
			y.Store(g + 1)
			opt.Unlock()
			runtime.Gosched()
		}
	}()
	defer func() {
		close(stop)
		wg.Wait()
	}()

	validated := 0
	deadline := clock.Wall.Now() + 20*time.Second
	for validated < 200 {
		if clock.Wall.Now() > deadline {
			return fmt.Errorf("optimistic reads starved under a single writer: only %d of 200 sections validated", validated)
		}
		s := opt.ReadBegin()
		if s&1 == 1 {
			if opt.ReadValidate(s) {
				return fmt.Errorf("odd (writer-held) stamp %d validated", s)
			}
			runtime.Gosched()
			continue
		}
		gx, gy := x.Load(), y.Load()
		if opt.ReadValidate(s) {
			if gy != gx+1 {
				return fmt.Errorf("validated section observed torn state: x=%d y=%d", gx, gy)
			}
			validated++
		}
	}
	return nil
}

// checkConflictStormTerminates arms the chaos fault points and storms
// writers while a reader works through a fixed batch of
// OptimisticReads: the batch must finish — bounded hot retries
// escalating to jittered sleeps (and the OCC fallback) may slow it,
// but unbounded spinning or livelock trips the deadline.
func checkConflictStormTerminates(opt rwlock.OptimisticLocker, o Options) error {
	chaos.Enable(chaos.DefaultConfig(o.Seed))
	defer chaos.Disable()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				opt.Lock()
				opt.Unlock()
			}
		}()
	}
	done := make(chan struct{})
	var reads atomic.Uint64
	go func() {
		defer close(done)
		var sink uint64
		for i := 0; i < 50; i++ {
			opt.OptimisticRead(func() { sink++ })
			reads.Add(1)
		}
	}()
	var err error
	if clock.Wall.ParkFor(30*time.Second, done) {
		err = fmt.Errorf("OptimisticRead livelocked under a writer conflict storm: %d of 50 reads completed", reads.Load())
	}
	close(stop)
	wg.Wait()
	return err
}
