package conformance

import (
	"fmt"
	"reflect"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/lockstat"
	"repro/internal/waiter"
)

// eventTimeout bounds every wait in the real-side driver so a
// divergence (a lock admitting the wrong waiter, or nobody) surfaces
// as a diagnostic failure instead of a hang.
const eventTimeout = 10 * time.Second

// runReal drives a real lock through the program's event script and
// checks its admission order against the model's expectation.
//
// The driver serializes all lock-state transitions, which makes an
// otherwise racy real lock deterministic: each instance runs on its
// own goroutine that acquires, reports admission, then blocks on a
// per-instance release gate until the script releases it. Between
// script events the lock's state is quiescent — the holder is parked
// on its gate and every waiter is inside its lock's waiting loop.
//
// Two probes make the serialization sound:
//
//   - admission is observed through a lockstat.AdmissionLog (which
//     doubles as a mutual-exclusion check) plus a buffered channel, so
//     the driver knows exactly when a handoff completed;
//   - a contended arrival is confirmed through a waiter.ArrivalProbe
//     installed as the process sink just before the goroutine starts:
//     every catalog lock publishes its arrival before first pausing,
//     so the probe's first transition certifies the arrival is visible
//     to the lock and the next event may be issued. (This is why the
//     driver must not run in parallel with other sink users.)
func runReal(l sync.Locker, p Program) error {
	log := lockstat.NewAdmissionLog()
	admitted := make(chan int, p.Instances)
	unlocked := make(chan int, p.Instances)
	rel := make([]chan struct{}, p.Instances)
	defer waiter.SetSink(nil)

	body := func(inst int) {
		l.Lock()
		log.Enter(inst)
		admitted <- inst
		<-rel[inst]
		log.Exit(inst)
		l.Unlock()
		unlocked <- inst
	}

	recv := func(ch chan int, what string, evIdx int) (int, error) {
		t := clock.Wall.NewTimer(eventTimeout)
		defer t.Stop()
		select {
		case v := <-ch:
			return v, nil
		case <-t.C():
			return -1, fmt.Errorf("event %d: timed out waiting for %s (admissions so far %v)",
				evIdx, what, log.Order())
		}
	}

	started, drained := 0, 0
	gateOpen := make([]bool, p.Instances)
	// fail unblocks every started instance before reporting a
	// divergence: with all release gates open the lock drains on its
	// own, so no goroutine is left spinning in a waiting loop after the
	// driver walks away. (The admission log keeps recording during the
	// drain; it is no longer consulted.)
	fail := func(err error) error {
		for i := range rel {
			if rel[i] != nil && !gateOpen[i] {
				close(rel[i])
				gateOpen[i] = true
			}
		}
		for drained < started {
			t := clock.Wall.NewTimer(eventTimeout)
			select {
			case <-unlocked:
				t.Stop()
				drained++
			case <-t.C():
				return err
			}
		}
		return err
	}

	outstanding := 0
	holder := -1
	for evIdx, ev := range p.Events {
		switch ev.Kind {
		case EvArrive:
			inst := ev.Inst
			rel[inst] = make(chan struct{})
			probe := waiter.NewArrivalProbe(nil)
			waiter.SetSink(probe)
			go body(inst)
			started++
			if outstanding == 0 {
				got, err := recv(admitted, fmt.Sprintf("admission of arriving %d", inst), evIdx)
				if err != nil {
					return fail(err)
				}
				if got != ev.Admits || got != inst {
					return fail(fmt.Errorf("event %d: free-lock arrival admitted %d, want %d", evIdx, got, inst))
				}
				holder = got
			} else {
				// Held lock: wait only for the arrival to become
				// visible (first waiting transition), not for
				// admission.
				if clock.Wall.ParkFor(eventTimeout, probe.Published()) {
					return fail(fmt.Errorf("event %d: arrival %d never published (no waiting transition)", evIdx, inst))
				}
			}
			outstanding++
		case EvRelease:
			if holder != ev.Inst {
				return fail(fmt.Errorf("event %d: driver holder %d, script expects %d", evIdx, holder, ev.Inst))
			}
			close(rel[holder])
			gateOpen[holder] = true
			if _, err := recv(unlocked, fmt.Sprintf("unlock by %d", holder), evIdx); err != nil {
				return fail(err)
			}
			drained++
			outstanding--
			if ev.Admits >= 0 {
				got, err := recv(admitted, fmt.Sprintf("handoff admission of %d", ev.Admits), evIdx)
				if err != nil {
					return fail(err)
				}
				if got != ev.Admits {
					return fail(fmt.Errorf("event %d: admitted %d after release, model expects %d (so far %v, expected %v)",
						evIdx, got, ev.Admits, log.Order(), p.Expected))
				}
				holder = got
			} else {
				holder = -1
			}
		}
	}

	if err := log.Err(); err != nil {
		return err
	}
	if got := log.Order(); !reflect.DeepEqual(got, p.Expected) {
		return fmt.Errorf("admission order %v, model expects %v", got, p.Expected)
	}
	return nil
}
