package conformance

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bounded"
	"repro/internal/clock"
	"repro/internal/registry"
)

// Discipline classifies what a lock does when Unlock is called on an
// unlocked instance — a caller bug, but one whose consequences differ
// per algorithm and must not drift silently.
type Discipline int

const (
	// DisciplineTolerate: the misuse is absorbed; the lock stays
	// usable. (It may still corrupt fairness or admit a phantom
	// permit — tolerate means "does not panic or wedge", not
	// "harmless".)
	DisciplineTolerate Discipline = iota
	// DisciplinePanic: the misuse panics (recoverable), the Go
	// idiom for sync.Mutex-style "unlock of unlocked mutex" —
	// except sync.Mutex itself throws unrecoverably, so the
	// runtime family is exempt from this check.
	DisciplinePanic
	// DisciplineWedge: the misuse silently corrupts the handoff
	// state so subsequent acquisitions block forever (e.g. a ticket
	// lock whose grant cursor advances past its ticket counter).
	DisciplineWedge
)

func (d Discipline) String() string {
	switch d {
	case DisciplinePanic:
		return "panics"
	case DisciplineWedge:
		return "wedges"
	default:
		return "tolerates"
	}
}

// unlockDiscipline declares every entry's expected unlock-of-unlocked
// behavior. Completeness (every catalog entry present or runtime-
// family) is enforced by the package tests; CheckUnlockDiscipline
// enforces that observed behavior matches the declaration.
var unlockDiscipline = map[string]Discipline{
	"TKT":            DisciplineWedge,
	"MCS":            DisciplinePanic,
	"CLH":            DisciplinePanic,
	"TWA":            DisciplineWedge,
	"HemLock":        DisciplinePanic,
	"Recipro":        DisciplineTolerate,
	"TAS":            DisciplineTolerate,
	"TTAS":           DisciplineTolerate,
	"ABQL":           DisciplineTolerate,
	"Chen":           DisciplineTolerate,
	"Retrograde":     DisciplineWedge,
	"RetroRand":      DisciplineWedge,
	"Recipro-L2":     DisciplineTolerate,
	"Recipro-L3":     DisciplinePanic,
	"Recipro-L4":     DisciplinePanic,
	"Recipro-L5":     DisciplinePanic,
	"Recipro-L6":     DisciplinePanic,
	"Gated":          DisciplineTolerate,
	"TwoLane":        DisciplineWedge,
	"Fair":           DisciplineTolerate,
	"Recipro-CTR":    DisciplineTolerate,
	"Recipro-L2park": DisciplineTolerate,
	"FutexMutex":     DisciplineTolerate,
	// The read-path combinators forward the stray Unlock to their inner
	// Recipro, which absorbs it (the seqlock stamp parity is corrupted,
	// but the lock itself stays usable — the tolerate contract).
	"RW-Recipro":  DisciplineTolerate,
	"Seq-Recipro": DisciplineTolerate,
	"OCC-Recipro": DisciplineTolerate,
}

// DeclaredDiscipline returns the declared unlock-of-unlocked class for
// an entry (ok=false for the runtime family, which throws unrecoverably
// inside the Go runtime and cannot be probed).
func DeclaredDiscipline(e registry.Entry) (Discipline, bool) {
	if e.Family == registry.FamilyRuntime {
		return 0, false
	}
	d, ok := unlockDiscipline[e.Name]
	return d, ok
}

// CheckUnlockDiscipline performs an unlock on a fresh (unlocked)
// instance and verifies the outcome matches the entry's declared
// Discipline. Wedge verification needs TryLock (a bounded probe of the
// corrupted lock); tolerate verification re-acquires the lock with a
// timeout guard.
func CheckUnlockDiscipline(e registry.Entry) error {
	want, ok := DeclaredDiscipline(e)
	if !ok {
		if e.Family == registry.FamilyRuntime {
			return skipError("runtime mutex throws unrecoverably on unlock-of-unlocked")
		}
		return fmt.Errorf("entry %s has no declared unlock discipline", e.Name)
	}

	l := e.New()
	panicked := false
	func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		l.Unlock()
	}()

	if panicked != (want == DisciplinePanic) {
		got := DisciplineTolerate
		if panicked {
			got = DisciplinePanic
		}
		return fmt.Errorf("unlock-of-unlocked: observed %v, declared %v", got, want)
	}
	if panicked {
		return nil
	}

	usable := probeUsable(l)
	switch {
	case want == DisciplineWedge && usable:
		return fmt.Errorf("unlock-of-unlocked: lock still usable, but declared %v", want)
	case want == DisciplineTolerate && !usable:
		return fmt.Errorf("unlock-of-unlocked: lock wedged, but declared %v", want)
	}
	return nil
}

// probeUsable reports whether l can still complete an acquisition
// within a short budget. Locks with TryLock are probed non-blockingly;
// the rest get a goroutine with a timeout (which leaks a spinning
// goroutine only if a declared-tolerate lock actually wedged — i.e.
// only on the way to a failure report).
func probeUsable(l sync.Locker) bool {
	const budget = 500 * time.Millisecond
	if tl, ok := l.(bounded.TryLocker); ok {
		deadline := clock.Wall.Now() + budget
		for clock.Wall.Now() < deadline {
			if tl.TryLock() {
				tl.Unlock()
				return true
			}
			clock.Wall.Sleep(100 * time.Microsecond)
		}
		return false
	}
	done := make(chan struct{})
	go func() {
		l.Lock()
		l.Unlock()
		close(done)
	}()
	// ParkFor returns false when done fires before the budget — i.e.
	// the Lock/Unlock pair completed and the lock is usable.
	return !clock.Wall.ParkFor(budget, done)
}
