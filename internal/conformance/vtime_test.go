package conformance

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden traces")

// Same seed ⇒ byte-identical trace, for every vtime lock across
// several seeds. This is the acceptance property of the virtual-time
// substrate: real Reciprocating/MCS/CLH schedules replay exactly.
func TestVTimeDeterministic(t *testing.T) {
	traces, err := CheckVTime(VTimeLocks, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for key, tr := range traces {
		if len(tr) == 0 {
			t.Errorf("%s: empty trace", key)
		}
	}
}

// The schedule must actually exercise both advertised regimes: the
// bounded-acquisition timeout/abandonment path and the backoff-paced
// retry path. A schedule that never times out would pin nothing.
func TestVTimeScheduleExercisesBoundedAndBackoff(t *testing.T) {
	for _, name := range VTimeLocks {
		found := map[string]bool{}
		for seed := uint64(1); seed <= 3; seed++ {
			tr, err := VTimeTrace(name, seed)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range []string{"acquire", "timeout", "backoff", "release"} {
				if strings.Contains(tr, ev) {
					found[ev] = true
				}
			}
		}
		for _, ev := range []string{"acquire", "timeout", "backoff", "release"} {
			if !found[ev] {
				t.Errorf("%s: no %q event in any seed-1..3 trace", name, ev)
			}
		}
	}
}

// Different seeds must yield different schedules — otherwise the rng
// threading is broken and the determinism check is vacuous.
func TestVTimeSeedsDiffer(t *testing.T) {
	a, err := VTimeTrace("Recipro", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := VTimeTrace("Recipro", 2)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("seeds 1 and 2 produced identical traces")
	}
}

// Golden pin: the seed-1 traces are committed under testdata so any
// change to the waiter escalation ladder, backoff draw, or lock
// handoff order that silently shifts the schedule shows up as a
// reviewable diff. Regenerate with: go test ./internal/conformance
// -run TestVTimeGolden -update
func TestVTimeGolden(t *testing.T) {
	for _, name := range VTimeLocks {
		tr, err := VTimeTrace(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", "vtime_"+strings.ToLower(name)+"_seed1.trace")
		if *updateGolden {
			if err := os.WriteFile(path, []byte(tr), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (run with -update): %v", name, err)
		}
		if string(want) != tr {
			t.Errorf("%s: trace diverged from golden %s (len got %d, want %d); rerun with -update if the schedule change is intended",
				name, path, len(tr), len(want))
		}
	}
}
